package pia

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestMetricsHammer runs a two-node cluster with coalescing, seeded
// WAN faults, and resumable sessions — every observable surface the
// framework has — while goroutines hammer every Stats()/snapshot
// accessor concurrently with the live traffic. Run under -race (the
// Makefile `metrics` target does), it pins the contract that every
// one of these accessors is safe from any goroutine at any time, so
// future counters can't regress into data races.
func TestMetricsHammer(t *testing.T) {
	src := &pingState{N: 300}
	dst := &pongState{}
	b := NewSystem("hammer").
		AddComponent("src", "ssA", src, "out").
		AddComponent("dst", "ssB", dst, "in").
		AddNet("wire", 0, "src.out", "dst.in").
		SetDefaultChannel(Conservative, LinkModel{Latency: Microseconds(50), PerMessage: Microseconds(10)}).
		SetCoalescing(DefaultCoalesce).
		SetFaults(FaultConfig{
			Seed:        11,
			DropProb:    0.02,
			DupProb:     0.02,
			ReorderProb: 0.02,
			CorruptProb: 0.01,
			Partitions:  []FaultPartition{{AtFrame: 50, Heal: 20 * time.Millisecond}},
		}).
		SetResilience(ResilienceConfig{Heartbeat: 100 * time.Millisecond, Seed: 11}).
		SetWorkers(2).
		SetOptimism(Microseconds(4))
	n1, n2 := NewNode("hammer-n1"), NewNode("hammer-n2")
	cl, err := b.BuildOnNodes(map[string]*Node{"ssA": n1, "ssB": n2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	reg := cl.EnableMetrics(NewMetricsRegistry())
	rec := NewTraceRecorder(64) // small limit: the ring wraps under fire
	for _, sub := range cl.Subsystems {
		rec.Attach(sub)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// The new registry surface, all three exposition paths.
				_ = reg.Snapshot()
				_ = reg.WriteJSON(io.Discard)
				_ = reg.WritePrometheus(io.Discard)
				_ = Metrics() // process-default registry

				// Kernel scheduler.
				for _, sub := range cl.Subsystems {
					_ = sub.Stats()
					_, _ = sub.PublishedTimes()
				}
				// Channel endpoints.
				for _, hub := range cl.Hubs {
					for _, ep := range hub.Endpoints() {
						_ = ep.Stats()
						_ = ep.PendingOut()
						_ = ep.SentCount()
						_ = ep.QueuedCount()
						_ = ep.HandledCount()
					}
				}
				// Wire conns, fault links, resilient sessions.
				for _, n := range []*Node{n1, n2} {
					_ = n.WireStats()
					_ = n.FaultStats()
					for _, l := range n.FaultLinks() {
						_ = l.Stats()
						_ = l.Broken()
					}
					_ = n.ResilienceStats()
					_, _ = n.SessionHealth()
				}
				// Trace recorder (ring buffer under concurrent record).
				_ = rec.Len()
				_ = rec.Digest()
				_ = rec.Events()
			}
		}()
	}

	err = cl.Run(Time(Seconds(1)))
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(dst.Got) != src.N {
		t.Fatalf("delivered %d/%d through the faulted link", len(dst.Got), src.N)
	}
	for i, v := range dst.Got {
		if v != i {
			t.Fatalf("order broken at %d: %v...", i, dst.Got[:i+1])
		}
	}

	// The registry must have seen the traffic: scheduler steps and
	// wire frames land in the final snapshot.
	snap := reg.Snapshot()
	byName := map[string]int64{}
	for _, s := range snap {
		byName[s.Name] = s.Value
	}
	if byName[`pia_sched_steps{sub="ssA"}`] == 0 {
		t.Fatalf("no scheduler steps in snapshot (%d samples)", len(snap))
	}
	if byName[`pia_wire_frames_out{node="hammer-n1"}`] == 0 {
		t.Fatal("no wire frames in snapshot")
	}
	if byName[`pia_session_resumes{node="hammer-n1"}`] == 0 {
		t.Fatal("no session resumes in snapshot")
	}
	// The Time Warp counters are exported through the same pull
	// collector (and hammered through the same Stats() accessor);
	// single-component subsystems never speculate, so presence — not
	// value — is the contract here.
	for _, series := range []string{
		`pia_optimistic_rounds{sub="ssA"}`,
		`pia_optimistic_members{sub="ssA"}`,
		`pia_optimistic_commits{sub="ssA"}`,
		`pia_optimistic_rollbacks{sub="ssA"}`,
		`pia_optimistic_rolled_back_events{sub="ssA"}`,
	} {
		if _, ok := byName[series]; !ok {
			t.Fatalf("optimistic series %s missing from snapshot", series)
		}
	}
}
