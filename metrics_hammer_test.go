package pia

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestMetricsHammer runs a two-node cluster with coalescing, seeded
// WAN faults, and resumable sessions — every observable surface the
// framework has — while goroutines hammer every Stats()/snapshot
// accessor concurrently with the live traffic, a live SSE /watch
// client streams telemetry, a second /watch client deliberately
// stalls, and GET /debug/flight is served throughout. Run under -race
// (the Makefile `metrics` and `obs` targets do), it pins the contract
// that every one of these accessors is safe from any goroutine at any
// time, and that a stalled watcher is dropped without ever blocking a
// publisher.
func TestMetricsHammer(t *testing.T) {
	src := &pingState{N: 300}
	dst := &pongState{}
	b := NewSystem("hammer").
		AddComponent("src", "ssA", src, "out").
		AddComponent("dst", "ssB", dst, "in").
		AddNet("wire", 0, "src.out", "dst.in").
		SetDefaultChannel(Conservative, LinkModel{Latency: Microseconds(50), PerMessage: Microseconds(10)}).
		SetCoalescing(DefaultCoalesce).
		SetFaults(FaultConfig{
			Seed:        11,
			DropProb:    0.02,
			DupProb:     0.02,
			ReorderProb: 0.02,
			CorruptProb: 0.01,
			Partitions:  []FaultPartition{{AtFrame: 50, Heal: 20 * time.Millisecond}},
		}).
		SetResilience(ResilienceConfig{Heartbeat: 100 * time.Millisecond, Seed: 11}).
		SetWorkers(2).
		SetOptimism(Microseconds(4))
	n1, n2 := NewNode("hammer-n1"), NewNode("hammer-n2")
	cl, err := b.BuildOnNodes(map[string]*Node{"ssA": n1, "ssB": n2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	reg := cl.EnableMetrics(NewMetricsRegistry())
	rec := NewTraceRecorder(64) // small limit: the ring wraps under fire
	for _, sub := range cl.Subsystems {
		rec.Attach(sub)
	}

	// The full flight stack: recorder + hub on the cluster's failure
	// triggers, cost attribution on every dispatch, and a sampler
	// feeding /watch at an aggressive cadence.
	frec := NewFlightRecorder(128) // small ring: wraps under fire
	fhub := NewFlightHub()
	fobs := &FlightObserver{Rec: frec, Hub: fhub}
	frec.AttachRegistry(reg)
	cl.EnableFlight(fobs)
	cl.EnableCostAttribution(reg, 3)
	sampler := NewFlightSampler(reg, frec, fhub, 5*time.Millisecond)
	sampler.Start()
	defer sampler.Stop()

	mux := http.NewServeMux()
	mux.Handle("/watch", fhub)
	mux.Handle("/debug/flight", frec)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	defer srv.CloseClientConnections() // unblock any handler mid-write

	// A healthy streaming client drains the live SSE feed for the
	// whole run.
	healthy, err := http.Get(srv.URL + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Body.Close()
	healthyDone := make(chan struct{})
	go func() {
		defer close(healthyDone)
		_, _ = io.Copy(io.Discard, healthy.Body)
	}()

	// A second client subscribes and then never reads: its queue must
	// fill and the hub must cut it loose without any publisher ever
	// blocking on it.
	stalled, err := http.Get(srv.URL + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Body.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// The new registry surface, all three exposition paths.
				_ = reg.Snapshot()
				_ = reg.WriteJSON(io.Discard)
				_ = reg.WritePrometheus(io.Discard)
				_ = Metrics() // process-default registry

				// Kernel scheduler.
				for _, sub := range cl.Subsystems {
					_ = sub.Stats()
					_, _ = sub.PublishedTimes()
				}
				// Channel endpoints.
				for _, hub := range cl.Hubs {
					for _, ep := range hub.Endpoints() {
						_ = ep.Stats()
						_ = ep.PendingOut()
						_ = ep.SentCount()
						_ = ep.QueuedCount()
						_ = ep.HandledCount()
					}
				}
				// Wire conns, fault links, resilient sessions.
				for _, n := range []*Node{n1, n2} {
					_ = n.WireStats()
					_ = n.FaultStats()
					for _, l := range n.FaultLinks() {
						_ = l.Stats()
						_ = l.Broken()
					}
					_ = n.ResilienceStats()
					_, _ = n.SessionHealth()
				}
				// Trace recorder (ring buffer under concurrent record).
				_ = rec.Len()
				_ = rec.Digest()
				_ = rec.Events()
				// Flight recorder and hub accessors.
				_ = frec.BuildDump()
				_, _ = frec.Tripped()
				_ = fhub.Subscribers()
				_ = fhub.Dropped()
				_ = fhub.Sent()
			}
		}()
	}

	// One more goroutine serves GET /debug/flight over real HTTP in a
	// loop: the dump is built while the ring, registry, and timeline
	// are all being written.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(srv.URL + "/debug/flight")
			if err != nil {
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	err = cl.Run(Time(Seconds(1)))
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(dst.Got) != src.N {
		t.Fatalf("delivered %d/%d through the faulted link", len(dst.Got), src.N)
	}
	for i, v := range dst.Got {
		if v != i {
			t.Fatalf("order broken at %d: %v...", i, dst.Got[:i+1])
		}
	}

	// The registry must have seen the traffic: scheduler steps and
	// wire frames land in the final snapshot.
	snap := reg.Snapshot()
	byName := map[string]int64{}
	for _, s := range snap {
		byName[s.Name] = s.Value
	}
	if byName[`pia_sched_steps{sub="ssA"}`] == 0 {
		t.Fatalf("no scheduler steps in snapshot (%d samples)", len(snap))
	}
	if byName[`pia_wire_frames_out{node="hammer-n1"}`] == 0 {
		t.Fatal("no wire frames in snapshot")
	}
	if byName[`pia_session_resumes{node="hammer-n1"}`] == 0 {
		t.Fatal("no session resumes in snapshot")
	}
	// The Time Warp counters are exported through the same pull
	// collector (and hammered through the same Stats() accessor);
	// single-component subsystems never speculate, so presence — not
	// value — is the contract here.
	for _, series := range []string{
		`pia_optimistic_rounds{sub="ssA"}`,
		`pia_optimistic_members{sub="ssA"}`,
		`pia_optimistic_commits{sub="ssA"}`,
		`pia_optimistic_rollbacks{sub="ssA"}`,
		`pia_optimistic_rolled_back_events{sub="ssA"}`,
	} {
		if _, ok := byName[series]; !ok {
			t.Fatalf("optimistic series %s missing from snapshot", series)
		}
	}
	// Cost attribution saw every dispatch.
	if byName[`pia_comp_cost_ns_total{sub="ssA",comp="src"}`] <= 0 {
		t.Fatal("no attributed cost for ssA/src in snapshot")
	}
	if byName[`pia_comp_cost_top{sub="ssA",rank="1",comp="src"}`] <= 0 {
		t.Fatal("no top-N cost gauge for ssA in snapshot")
	}

	// The stalled client must be cut loose by a publisher without the
	// publisher ever blocking: burst transitions until the hub drops
	// it. The loop terminating at all IS the non-blocking contract —
	// each publish either enqueues or drops, never waits — and the
	// healthy client keeps streaming throughout.
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; fhub.Dropped() == 0; i++ {
		fobs.Event("health", "hammer", "synthetic burst", int64(i))
		if i%512 == 0 {
			time.Sleep(time.Millisecond) // let the healthy reader drain
			if time.Now().After(deadline) {
				t.Fatal("stalled /watch client was never dropped")
			}
		}
	}
	if got := fhub.Dropped(); got < 1 {
		t.Fatalf("hub dropped %d subscribers, want >= 1", got)
	}
	// The recorder never tripped: faults, rollbacks and the burst are
	// all healthy operation.
	if tripped, reason := frec.Tripped(); tripped {
		t.Fatalf("flight recorder tripped during healthy run: %s", reason)
	}

	// Teardown in dependency order: force-close server conns so the
	// stalled handler's blocked write unwinds, then confirm the healthy
	// stream ends cleanly.
	srv.CloseClientConnections()
	select {
	case <-healthyDone:
	case <-time.After(5 * time.Second):
		t.Fatal("healthy /watch client did not terminate after server close")
	}
}
