package pia

import (
	"errors"
	"testing"

	"repro/internal/graph"
)

func TestBuildOnNodesTwoNodes(t *testing.T) {
	src := &pingState{N: 5}
	dst := &pongState{}
	b := NewSystem("cluster").
		AddComponent("src", "ssA", src, "out").
		AddComponent("dst", "ssB", dst, "in").
		AddNet("wire", 0, "src.out", "dst.in").
		SetDefaultChannel(Conservative, LinkModel{Latency: Microseconds(50), PerMessage: Microseconds(10)})
	n1, n2 := NewNode("node1"), NewNode("node2")
	cl, err := b.BuildOnNodes(map[string]*Node{"ssA": n1, "ssB": n2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Run(Time(Seconds(1))); err != nil {
		t.Fatal(err)
	}
	if len(dst.Got) != 5 {
		t.Fatalf("delivered %v over the cluster", dst.Got)
	}
	for i, v := range dst.Got {
		if v != i {
			t.Fatalf("order broken: %v", dst.Got)
		}
	}
}

func TestBuildOnNodesColocated(t *testing.T) {
	// Two subsystems on ONE node use an in-process pipe.
	src := &pingState{N: 3}
	dst := &pongState{}
	b := NewSystem("colo").
		AddComponent("src", "ssA", src, "out").
		AddComponent("dst", "ssB", dst, "in").
		AddNet("wire", 0, "src.out", "dst.in").
		SetDefaultChannel(Conservative, LinkModel{Latency: Microseconds(1), PerMessage: 100})
	n := NewNode("solo")
	cl, err := b.BuildOnNodes(map[string]*Node{"ssA": n, "ssB": n})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Run(Time(Seconds(1))); err != nil {
		t.Fatal(err)
	}
	if len(dst.Got) != 3 {
		t.Fatalf("delivered %v", dst.Got)
	}
}

func TestBuildOnNodesMissingPlacement(t *testing.T) {
	b := NewSystem("miss").
		AddComponent("a", "s1", &pingState{N: 1}, "out").
		AddComponent("b", "s2", &pongState{}, "in").
		AddNet("w", 0, "a.out", "b.in")
	n := NewNode("n")
	_, err := b.BuildOnNodes(map[string]*Node{"s1": n})
	if err == nil {
		t.Fatal("incomplete placement accepted")
	}
	// The failure is typed and names the first offending component
	// and the host the deployment does not know.
	var uh *graph.UnknownHostError
	if !errors.As(err, &uh) {
		t.Fatalf("want *graph.UnknownHostError, got %T: %v", err, err)
	}
	if uh.Host != "s2" || uh.Component != "b" {
		t.Fatalf("error blames %q on %q, want component \"b\" on host \"s2\"", uh.Component, uh.Host)
	}
}
