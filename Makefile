GO ?= go

.PHONY: ci vet build test race bench-smoke bench

ci: vet build test race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the packages with real concurrency: the wire framing,
# the channel protocol + coalescing, and the kernel scheduler.
race:
	$(GO) test -race -count=1 ./internal/wire/... ./internal/channel/... ./internal/core/... ./internal/node/...

# One iteration of the headline benchmarks, as a smoke test that the
# Table 1 experiments still run end to end (including the coalesced
# remote row).
bench-smoke:
	$(GO) test -run=^$$ -bench=Table1 -benchtime=1x ./...

bench:
	$(GO) test -run=^$$ -bench=. -benchmem ./...
