GO ?= go

.PHONY: ci vet build test race race-core chaos mesh metrics timeline wire optimistic service obs fuzz-smoke bench-smoke bench bench-parallel bench-wire bench-migrate bench-optimistic bench-sessions bench-obs

ci: vet build test race race-core chaos mesh metrics timeline wire optimistic service obs bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the packages with real concurrency: the wire framing,
# the channel protocol + coalescing, the kernel scheduler, and the
# fault-injection / session-recovery layers.
race:
	$(GO) test -race -count=1 ./internal/wire/... ./internal/channel/... ./internal/core/... ./internal/node/... ./internal/faultnet/... ./internal/resilience/...

# The parallel scheduler must be race-clean both when goroutines are
# forced onto one OS thread and when they genuinely interleave.
race-core:
	GOMAXPROCS=1 $(GO) test -race -count=1 ./internal/core/...
	GOMAXPROCS=4 $(GO) test -race -count=1 ./internal/core/...

# The seeded chaos suite: Table-1 workloads under injected WAN faults
# must produce results identical to the fault-free run, under the race
# detector.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/experiments/...

# The mesh gate: the 3-node control plane and live migration under
# the race detector, including the drive-digest equivalence suite
# (stationary vs migrated vs there-and-back vs randomized barriers).
mesh:
	$(GO) test -race -count=1 ./internal/mesh/

# The observability gate: every Stats()/snapshot accessor hammered
# concurrently with live faulted traffic under the race detector, plus
# the guard that the drive fanout hot path still allocates nothing
# with metrics disabled (the registry is pull-based, so shipping it
# must not move this number).
metrics:
	$(GO) vet ./internal/metrics/...
	$(GO) test -race -count=1 -run 'TestMetricsHammer' .
	$(GO) test -count=1 -run 'TestDriveFanoutZeroAlloc' ./internal/event/

# The timeline gate: determinism (the merged canonical export of the
# faulted two-node run is byte-identical across same-seed reruns),
# rewind semantics (rolled-back spans drop from the export), and the
# disabled-path guard (the nil-recorder emitters and the drive fanout
# hot path stay at exactly 0 allocs/op with the timeline off).
timeline:
	$(GO) test -count=1 ./internal/timeline/ ./internal/trace/
	$(GO) test -count=1 -run 'TestTimelineChaos' ./internal/experiments/
	$(GO) test -count=1 -run 'TestDriveFanoutZeroAlloc' ./internal/event/

# The wire gate: the zero-copy hot path's allocation guards (encode,
# decode and queue scan must stay at 0 allocs/op steady-state), the
# codec microbenchmarks, the cross-node stress tests under the race
# detector, and a fuzz smoke pass over the frame parser and batch
# codec.
wire:
	$(GO) test -count=1 -run 'TestCodecZeroAlloc|TestDecodePacketAmortizedAlloc|TestDecodeLargeWordBoxes' ./internal/channel/
	$(GO) test -count=1 -run 'TestQueueScanZeroAlloc|TestDriveFanoutZeroAlloc' ./internal/event/
	$(GO) test -race -count=1 -run 'TestBidirectionalStress' ./internal/channel/
	$(GO) test -race -count=1 ./internal/wire/ ./internal/node/
	$(GO) test -run=^$$ -bench 'BenchmarkAppendBatch|BenchmarkDecodeBatchInto' -benchtime=1000x ./internal/channel/
	$(MAKE) fuzz-smoke

# A few seconds of fuzzing per target: the frame parser on hostile
# streams, the batch decoder on arbitrary payloads, and the
# encode/decode round trip across the gob-fallback boundary.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzFrameParser -fuzztime=3s ./internal/wire/
	$(GO) test -run=^$$ -fuzz=FuzzDecodeBatch -fuzztime=3s ./internal/channel/
	$(GO) test -run=^$$ -fuzz=FuzzBatchRoundTrip -fuzztime=3s ./internal/channel/

# The Time Warp gate: the three-way equivalence matrix (sequential x
# conservative x optimistic over 50 random topologies, every worker
# count and window bit-identical), the straggler storm (a topology
# built so every speculative round rolls back, exactly converging
# anyway) and the ablation's structural invariants, all under the race
# detector, plus the guards that the disabled paths — straggler span
# emission and inbox truncation — stay at 0 allocs/op.
optimistic:
	$(GO) test -race -count=1 -run 'TestParallelEquivalenceProperty|TestOptimisticStragglerStorm|TestOptimisticThrottleAdapts' ./internal/core/
	$(GO) test -race -count=1 -run 'TestOptimistic' ./internal/experiments/
	$(GO) test -count=1 -run 'TestDisabledTimelineZeroAlloc' ./internal/timeline/
	$(GO) test -count=1 -run 'TestDiscardAfterNoopZeroAlloc' ./internal/event/

# The multi-tenant service gate: the whole catalog package (session
# lifecycle, concurrent churn, shared-listener attach, HTTP API)
# under the race detector, the fair-share determinism proof (tenant
# digests bit-identical to isolated runs at every pool size), and the
# pianode observability-mux suite.
service:
	$(GO) test -race -count=1 ./internal/service/
	$(GO) test -race -count=1 -run 'TestSharedPool' ./internal/core/
	$(GO) test -race -count=1 -run 'TestSessionsExperiment' ./internal/experiments/
	$(GO) test -count=1 ./cmd/pianode/

# The flight-recorder gate: the flight package (ring, trips,
# backpressure hub, SSE end-to-end, sampler) under the race detector,
# the extended hammer (live /watch client + deliberately stalled
# client + /debug/flight served concurrently with faulted traffic),
# and the zero-alloc guards for every disabled and steady-state hot
# path the flight stack touches (nil recorder/observer, enabled ring
# record, attribution accounting).
obs:
	$(GO) vet ./internal/flight/...
	$(GO) test -race -count=1 ./internal/flight/
	$(GO) test -race -count=1 -run 'TestMetricsHammer' .
	$(GO) test -count=1 -run 'TestNilEverythingIsInert|TestDisabledPathZeroAllocs|TestEnabledRecordZeroAllocs' ./internal/flight/
	$(GO) test -count=1 -run 'TestAttributionAccountingZeroAllocs|TestAttributionDigestUnchanged' ./internal/core/
	$(GO) test -race -count=1 -run 'TestObs' ./internal/experiments/ ./cmd/pianode/

# The session-service benchmark: steady-state concurrent tenants at
# each pool size, lifecycle churn throughput, and the deterministic
# admission/eviction probes; piabench exits non-zero if any tenant
# digest deviates from its isolated reference — the BENCH_6 artifact.
bench-sessions:
	$(GO) run ./cmd/piabench -exp sessions -json BENCH_6.json

# The wire-codec ablation: coalesced remote legs, gob fallback vs
# zero-copy binary, with codec allocs/op — the BENCH_3 artifact.
bench-wire:
	$(GO) run ./cmd/piabench -exp wire -json BENCH_3.json

# One iteration of the headline benchmarks, as a smoke test that the
# Table 1 experiments still run end to end (including the coalesced
# remote row).
bench-smoke:
	$(GO) test -run=^$$ -bench=Table1 -benchtime=1x ./...

# The worker-pool sweep: piabench exits non-zero if any parallel leg
# diverges from the sequential reference, so this doubles as a
# determinism gate.
bench-parallel:
	$(GO) run ./cmd/piabench -exp parallel -json BENCH_2.json

# The live-migration experiment: zero virtual downtime and
# bit-identical digests across stationary, migrated and chaos legs
# (piabench exits non-zero on divergence), plus the wall-clock
# migration and epoch-propagation costs — the BENCH_4 artifact.
bench-migrate:
	$(GO) run ./cmd/piabench -exp migrate -json BENCH_4.json

# The Time Warp ablation: lookahead x mode x workers; piabench exits
# non-zero if any leg's drive digest deviates from the sequential
# reference — the BENCH_5 artifact.
bench-optimistic:
	$(GO) run ./cmd/piabench -exp optimistic -json BENCH_5.json

# The observability overhead benchmark: remote-word and steady
# sessions legs, metrics baseline vs full flight stack (recorder +
# sampler + live SSE watcher + cost attribution); piabench exits
# non-zero if any virtual result moves with observers attached — the
# BENCH_7 artifact.
bench-obs:
	$(GO) run ./cmd/piabench -exp obs -json BENCH_7.json

bench: bench-parallel
	$(GO) test -run=^$$ -bench=. -benchmem ./...
