GO ?= go

.PHONY: ci vet build test race chaos bench-smoke bench

ci: vet build test race chaos bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the packages with real concurrency: the wire framing,
# the channel protocol + coalescing, the kernel scheduler, and the
# fault-injection / session-recovery layers.
race:
	$(GO) test -race -count=1 ./internal/wire/... ./internal/channel/... ./internal/core/... ./internal/node/... ./internal/faultnet/... ./internal/resilience/...

# The seeded chaos suite: Table-1 workloads under injected WAN faults
# must produce results identical to the fault-free run, under the race
# detector.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/experiments/...

# One iteration of the headline benchmarks, as a smoke test that the
# Table 1 experiments still run end to end (including the coalesced
# remote row).
bench-smoke:
	$(GO) test -run=^$$ -bench=Table1 -benchtime=1x ./...

bench:
	$(GO) test -run=^$$ -bench=. -benchmem ./...
