// wubbleu runs the paper's WubbleU page-load experiment from the
// command line: locally (the whole design in one subsystem), locally
// distributed (two subsystems bridged in-process), or against a
// remote pianode serving the modem site.
//
//	wubbleu                               # local, packet level
//	wubbleu -level wordLevel              # local, word passage
//	wubbleu -remote 127.0.0.1:7777        # dial a pianode
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	pia "repro"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/node"
	"repro/internal/resilience"
	"repro/internal/vtime"
	"repro/internal/wubbleu"
)

func main() {
	level := flag.String("level", "packetLevel", "DMA detail level (hardwareLevel|wordLevel|packetLevel)")
	remote := flag.String("remote", "", "address of a pianode serving the modem site (empty: simulate locally)")
	pageKB := flag.Int("page", 66, "page size in KB")
	images := flag.Int("images", 4, "images embedded in the page")
	loads := flag.Int("loads", 1, "page loads to perform")
	script := flag.String("script", "", "simulation run control file with switchpoint rules (local runs only)")

	// Deterministic fault injection on this side's egress, and the
	// resumable session protocol to survive it (remote runs only;
	// mirror of pianode's flags — a resilient pianode needs a
	// resilient dialer).
	seed := flag.Int64("seed", 1, "fault-schedule seed; same seed reproduces the same faults")
	faultDrop := flag.Float64("fault-drop", 0, "probability a frame is dropped")
	faultDup := flag.Float64("fault-dup", 0, "probability a frame is duplicated")
	faultReorder := flag.Float64("fault-reorder", 0, "probability a frame is swapped with its successor")
	faultCorrupt := flag.Float64("fault-corrupt", 0, "probability one frame byte is flipped")
	faultLatency := flag.Duration("fault-latency", 0, "fixed wall-clock delay per frame")
	faultJitter := flag.Duration("fault-jitter", 0, "uniform random extra delay per frame")
	faultBW := flag.Int64("fault-bw", 0, "bandwidth cap in bits/s (0 = uncapped)")
	faultPartition := flag.String("fault-partition", "", "scripted partitions, \"atframe:healms[,...]\" e.g. \"50:15\"")
	resilient := flag.Bool("resilient", false, "speak the resumable session protocol (peer must too)")
	heartbeat := flag.Duration("heartbeat", time.Second, "session heartbeat interval")
	flag.Parse()

	cfg := wubbleu.DefaultConfig()
	cfg.PageSize = *pageKB * 1024
	cfg.Images = *images
	cfg.Loads = *loads
	cfg.Level = *level
	cfg.NoCache = *loads > 1

	fcfg := faultnet.Config{
		Seed:         *seed,
		Latency:      *faultLatency,
		Jitter:       *faultJitter,
		BandwidthBps: *faultBW,
		DropProb:     *faultDrop,
		DupProb:      *faultDup,
		ReorderProb:  *faultReorder,
		CorruptProb:  *faultCorrupt,
	}
	if *faultPartition != "" {
		parts, err := faultnet.ParsePartitions(*faultPartition)
		if err != nil {
			log.Fatalf("wubbleu: -fault-partition: %v", err)
		}
		fcfg.Partitions = parts
	}
	var rcfg resilience.Config
	if *resilient {
		rcfg = resilience.Config{Heartbeat: *heartbeat, Seed: *seed}
	}

	if *remote == "" {
		if fcfg.Enabled() || *resilient {
			log.Fatal("wubbleu: -fault-*/-resilient apply to remote runs (local runs have no network link)")
		}
		runLocal(cfg, *script)
		return
	}
	if *script != "" {
		log.Fatal("wubbleu: -script applies to local runs (the remote node owns the ASIC's runlevel)")
	}
	if fcfg.Enabled() && !*resilient {
		log.Print("wubbleu: warning: faults armed without -resilient; the connection will not survive them")
	}
	runRemote(cfg, *remote, fcfg, rcfg, *resilient)
}

func runLocal(cfg wubbleu.Config, script string) {
	b := pia.NewSystem("wubbleu")
	app, err := wubbleu.Install(b, cfg, wubbleu.LocalPlacement())
	if err != nil {
		log.Fatal(err)
	}
	sim, err := b.BuildLocal()
	if err != nil {
		log.Fatal(err)
	}
	if script != "" {
		// The paper's "switchpoint defined in the simulation run
		// control file": rules like
		//   when browser >= 790_000_000: asic->packetLevel
		src, err := os.ReadFile(script)
		if err != nil {
			log.Fatal(err)
		}
		engine := sim.Engines["main"]
		if err := engine.LoadScript(string(src)); err != nil {
			log.Fatalf("wubbleu: %s: %v", script, err)
		}
		fmt.Printf("loaded %d switchpoints from %s\n", len(engine.Switchpoints()), script)
	}
	start := time.Now()
	if err := sim.Run(pia.Infinity); err != nil {
		log.Fatal(err)
	}
	report(app.Result(), cfg, time.Since(start), "local")
}

func runRemote(cfg wubbleu.Config, addr string, fcfg faultnet.Config, rcfg resilience.Config, resilient bool) {
	sub := core.NewSubsystem("handheld")
	half, err := wubbleu.InstallHandheld(sub, cfg)
	if err != nil {
		log.Fatal(err)
	}
	n := node.New("designer-node")
	if fcfg.Enabled() {
		n.SetFaults(fcfg)
	}
	if resilient {
		n.SetResilience(rcfg)
	}
	n.Host(sub)
	ep, err := n.Connect("handheld", addr, "modemsite", pia.Conservative, pia.LoopbackLink)
	if err != nil {
		log.Fatal(err)
	}
	if err := ep.BindNet(sub.Net("dma"), "dma"); err != nil {
		log.Fatal(err)
	}
	n.FinishAgents()

	// Generous virtual horizon: radio time dominates.
	horizon := vtime.Time(vtime.Duration(int64(cfg.PageSize)*8*int64(vtime.Second)/cfg.RadioBitsPerSec) * 100 * vtime.Duration(cfg.Loads))
	start := time.Now()
	if err := sub.Run(horizon); err != nil {
		log.Fatal(err)
	}
	n.CloseChannels()
	n.Close()

	res := resultOf(half)
	report(res, cfg, time.Since(start), "remote "+addr)
}

func resultOf(h *wubbleu.HandheldHalf) wubbleu.Result {
	r := wubbleu.Result{Loads: h.UI.Done, PageBytes: h.UI.Bytes, CacheHits: h.Cache.Hits}
	for i := 0; i < h.UI.Done; i++ {
		if d, err := h.UI.LoadTime(i); err == nil {
			r.LoadVirt = append(r.LoadVirt, d)
		}
	}
	return r
}

func report(res wubbleu.Result, cfg wubbleu.Config, wall time.Duration, where string) {
	fmt.Printf("WubbleU %s, %s, %d KB page\n", where, cfg.Level, cfg.PageSize/1024)
	if res.Loads != cfg.Loads {
		log.Fatalf("only %d/%d loads completed", res.Loads, cfg.Loads)
	}
	for i, d := range res.LoadVirt {
		fmt.Printf("  load %d: %v virtual time, %d bytes\n", i+1, d, res.PageBytes[i])
	}
	if res.DMADrives > 0 {
		fmt.Printf("  DMA drives on the switchable link: %d\n", res.DMADrives)
	}
	fmt.Printf("  simulation time (wall clock): %v\n", wall)
}
