// pianode runs a standalone Pia node serving the modem site of the
// WubbleU design: the cellular communication ASIC plus the dedicated
// server behind its wireless link. This is the parts-vendor scenario
// the paper motivates — a component made available over the network
// for designers to patch into their simulated circuits.
//
// Start the server:
//
//	pianode -listen 127.0.0.1:7777 -level packetLevel
//
// then run the handheld side against it:
//
//	wubbleu -remote 127.0.0.1:7777
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/vtime"
	"repro/internal/wubbleu"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7777", "address to serve Pia channels on")
	level := flag.String("level", "packetLevel", "initial DMA detail level (hardwareLevel|wordLevel|packetLevel)")
	pageKB := flag.Int("page", 66, "page size in KB served by the web store")
	images := flag.Int("images", 4, "images embedded in the page")
	verbose := flag.Bool("v", false, "log channel activity")
	coalesce := flag.Bool("coalesce", false, "coalesce egress messages into batched wire frames")
	coalesceMsgs := flag.Int("coalesce-msgs", channel.DefaultCoalesce.MaxMsgs, "flush a batch at this many queued messages")
	coalesceBytes := flag.Int("coalesce-bytes", channel.DefaultCoalesce.MaxBytes, "flush a batch at this many queued payload bytes (0 = no byte budget)")
	coalesceHold := flag.Int64("coalesce-hold", 0, "flush when queued drives span this many virtual ns (0 = unbounded)")
	flag.Parse()

	cfg := wubbleu.DefaultConfig()
	cfg.PageSize = *pageKB * 1024
	cfg.Images = *images
	cfg.Level = *level

	sub := core.NewSubsystem("modemsite")
	if _, err := wubbleu.InstallModemSite(sub, cfg); err != nil {
		log.Fatal(err)
	}

	n := node.New("modem-node")
	if *verbose {
		n.Tracer = func(s string) { log.Print(s) }
	}
	if *coalesce {
		n.SetCoalescing(channel.CoalesceConfig{
			MaxMsgs:  *coalesceMsgs,
			MaxBytes: *coalesceBytes,
			MaxHold:  vtime.Duration(*coalesceHold),
		})
	}
	hosted := n.Host(sub)
	// When a designer's node connects, splice the incoming channel
	// into our fragment of the split "dma" net.
	hosted.OnChannel = func(ep *channel.Endpoint) {
		if err := ep.BindNet(sub.Net("dma"), "dma"); err != nil {
			log.Printf("pianode: bind dma: %v", err)
		}
	}

	addr, err := n.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pianode: serving subsystem %q (level %s, %d KB page) on %s\n",
		sub.Name(), cfg.Level, *pageKB, addr)

	// The listening socket is a standing ingress source: the
	// subsystem must not declare the simulation over just because no
	// designer has connected yet.
	sub.AddExternal()

	done := make(chan error, 1)
	go func() { done <- sub.Run(vtime.Infinity) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	select {
	case err := <-done:
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("pianode: simulation complete")
	case <-sig:
		fmt.Println("pianode: interrupted")
		sub.Stop()
		<-done
	}
	n.Close()
}
