// pianode runs a standalone Pia node serving the modem site of the
// WubbleU design: the cellular communication ASIC plus the dedicated
// server behind its wireless link. This is the parts-vendor scenario
// the paper motivates — a component made available over the network
// for designers to patch into their simulated circuits.
//
// Start the server:
//
//	pianode -listen 127.0.0.1:7777 -level packetLevel
//
// then run the handheld side against it:
//
//	wubbleu -remote 127.0.0.1:7777
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/node"
	"repro/internal/resilience"
	"repro/internal/vtime"
	"repro/internal/wubbleu"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7777", "address to serve Pia channels on")
	level := flag.String("level", "packetLevel", "initial DMA detail level (hardwareLevel|wordLevel|packetLevel)")
	pageKB := flag.Int("page", 66, "page size in KB served by the web store")
	images := flag.Int("images", 4, "images embedded in the page")
	verbose := flag.Bool("v", false, "log channel activity")
	workers := flag.Int("workers", 0, "scheduler worker-pool size (0 = sequential; results are identical)")
	coalesce := flag.Bool("coalesce", false, "coalesce egress messages into batched wire frames")
	coalesceMsgs := flag.Int("coalesce-msgs", channel.DefaultCoalesce.MaxMsgs, "flush a batch at this many queued messages")
	coalesceBytes := flag.Int("coalesce-bytes", channel.DefaultCoalesce.MaxBytes, "flush a batch at this many queued payload bytes (0 = no byte budget)")
	coalesceHold := flag.Int64("coalesce-hold", 0, "flush when queued drives span this many virtual ns (0 = unbounded)")

	// Deterministic fault injection on accepted connections (chaos
	// testing a designer's link against this vendor node).
	seed := flag.Int64("seed", 1, "fault-schedule seed; same seed reproduces the same faults")
	faultDrop := flag.Float64("fault-drop", 0, "probability a frame is dropped")
	faultDup := flag.Float64("fault-dup", 0, "probability a frame is duplicated")
	faultReorder := flag.Float64("fault-reorder", 0, "probability a frame is swapped with its successor")
	faultCorrupt := flag.Float64("fault-corrupt", 0, "probability one frame byte is flipped")
	faultLatency := flag.Duration("fault-latency", 0, "fixed wall-clock delay per frame")
	faultJitter := flag.Duration("fault-jitter", 0, "uniform random extra delay per frame")
	faultBW := flag.Int64("fault-bw", 0, "bandwidth cap in bits/s (0 = uncapped)")
	faultPartition := flag.String("fault-partition", "", "scripted partitions, \"atframe:healms[,...]\" e.g. \"50:15\"")

	// Resumable sessions: survive connection loss and injected faults.
	resilient := flag.Bool("resilient", false, "speak the resumable session protocol (peer must too)")
	heartbeat := flag.Duration("heartbeat", time.Second, "session heartbeat interval")
	heartbeatMiss := flag.Int("heartbeat-miss", 0, "missed heartbeats before the connection is declared dead (0 = default)")
	retryBase := flag.Duration("retry-base", 0, "initial reconnect backoff (0 = default)")
	retryMax := flag.Int("retry-max", 0, "reconnect attempts per outage before giving up (0 = default)")
	retentionFrames := flag.Int("retention-frames", 0, "unacked frames retained for resume (0 = default)")
	retentionBytes := flag.Int("retention-bytes", 0, "unacked bytes retained for resume (0 = default)")
	flag.Parse()

	cfg := wubbleu.DefaultConfig()
	cfg.PageSize = *pageKB * 1024
	cfg.Images = *images
	cfg.Level = *level

	sub := core.NewSubsystem("modemsite")
	sub.SetWorkers(*workers)
	if _, err := wubbleu.InstallModemSite(sub, cfg); err != nil {
		log.Fatal(err)
	}

	n := node.New("modem-node")
	if *verbose {
		n.Tracer = func(s string) { log.Print(s) }
	}
	if *coalesce {
		n.SetCoalescing(channel.CoalesceConfig{
			MaxMsgs:  *coalesceMsgs,
			MaxBytes: *coalesceBytes,
			MaxHold:  vtime.Duration(*coalesceHold),
		})
	}
	fcfg := faultnet.Config{
		Seed:         *seed,
		Latency:      *faultLatency,
		Jitter:       *faultJitter,
		BandwidthBps: *faultBW,
		DropProb:     *faultDrop,
		DupProb:      *faultDup,
		ReorderProb:  *faultReorder,
		CorruptProb:  *faultCorrupt,
	}
	if *faultPartition != "" {
		parts, err := faultnet.ParsePartitions(*faultPartition)
		if err != nil {
			log.Fatalf("pianode: -fault-partition: %v", err)
		}
		fcfg.Partitions = parts
	}
	if fcfg.Enabled() {
		n.SetFaults(fcfg)
		if !*resilient {
			log.Print("pianode: warning: faults armed without -resilient; connections will not survive them")
		}
	}
	if *resilient {
		n.SetResilience(resilience.Config{
			Heartbeat:       *heartbeat,
			HeartbeatMiss:   *heartbeatMiss,
			RetryBase:       *retryBase,
			RetryMax:        *retryMax,
			RetentionFrames: *retentionFrames,
			RetentionBytes:  *retentionBytes,
			Seed:            *seed,
		})
	}
	hosted := n.Host(sub)
	// When a designer's node connects, splice the incoming channel
	// into our fragment of the split "dma" net.
	hosted.OnChannel = func(ep *channel.Endpoint) {
		if err := ep.BindNet(sub.Net("dma"), "dma"); err != nil {
			log.Printf("pianode: bind dma: %v", err)
		}
	}

	addr, err := n.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pianode: serving subsystem %q (level %s, %d KB page) on %s\n",
		sub.Name(), cfg.Level, *pageKB, addr)

	// The listening socket is a standing ingress source: the
	// subsystem must not declare the simulation over just because no
	// designer has connected yet.
	sub.AddExternal()

	done := make(chan error, 1)
	go func() { done <- sub.Run(vtime.Infinity) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	select {
	case err := <-done:
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("pianode: simulation complete")
	case <-sig:
		fmt.Println("pianode: interrupted")
		sub.Stop()
		<-done
	}
	n.Close()
}
