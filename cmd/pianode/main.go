// pianode runs a standalone Pia node serving the modem site of the
// WubbleU design: the cellular communication ASIC plus the dedicated
// server behind its wireless link. This is the parts-vendor scenario
// the paper motivates — a component made available over the network
// for designers to patch into their simulated circuits.
//
// Start the server:
//
//	pianode -listen 127.0.0.1:7777 -level packetLevel
//
// then run the handheld side against it:
//
//	wubbleu -remote 127.0.0.1:7777
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/resilience"
	"repro/internal/timeline"
	"repro/internal/vtime"
	"repro/internal/wubbleu"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7777", "address to serve Pia channels on")
	level := flag.String("level", "packetLevel", "initial DMA detail level (hardwareLevel|wordLevel|packetLevel)")
	pageKB := flag.Int("page", 66, "page size in KB served by the web store")
	images := flag.Int("images", 4, "images embedded in the page")
	verbose := flag.Bool("v", false, "log channel activity")
	workers := flag.Int("workers", 0, "scheduler worker-pool size (0 = sequential; results are identical)")
	coalesce := flag.Bool("coalesce", false, "coalesce egress messages into batched wire frames")
	coalesceMsgs := flag.Int("coalesce-msgs", channel.DefaultCoalesce.MaxMsgs, "flush a batch at this many queued messages")
	coalesceBytes := flag.Int("coalesce-bytes", channel.DefaultCoalesce.MaxBytes, "flush a batch at this many queued payload bytes (0 = no byte budget)")
	coalesceHold := flag.Int64("coalesce-hold", 0, "flush when queued drives span this many virtual ns (0 = unbounded)")
	wireGob := flag.Bool("wire-gob", false, "force the gob fallback wire codec on every batch entry (the pre-zero-copy format; decoders accept both, so only the sender needs the flag)")

	// Deterministic fault injection on accepted connections (chaos
	// testing a designer's link against this vendor node).
	seed := flag.Int64("seed", 1, "fault-schedule seed; same seed reproduces the same faults")
	faultDrop := flag.Float64("fault-drop", 0, "probability a frame is dropped")
	faultDup := flag.Float64("fault-dup", 0, "probability a frame is duplicated")
	faultReorder := flag.Float64("fault-reorder", 0, "probability a frame is swapped with its successor")
	faultCorrupt := flag.Float64("fault-corrupt", 0, "probability one frame byte is flipped")
	faultLatency := flag.Duration("fault-latency", 0, "fixed wall-clock delay per frame")
	faultJitter := flag.Duration("fault-jitter", 0, "uniform random extra delay per frame")
	faultBW := flag.Int64("fault-bw", 0, "bandwidth cap in bits/s (0 = uncapped)")
	faultPartition := flag.String("fault-partition", "", "scripted partitions, \"atframe:healms[,...]\" e.g. \"50:15\"")

	// Resumable sessions: survive connection loss and injected faults.
	resilient := flag.Bool("resilient", false, "speak the resumable session protocol (peer must too)")
	heartbeat := flag.Duration("heartbeat", time.Second, "session heartbeat interval")
	heartbeatMiss := flag.Int("heartbeat-miss", 0, "missed heartbeats before the connection is declared dead (0 = default)")
	retryBase := flag.Duration("retry-base", 0, "initial reconnect backoff (0 = default)")
	retryMax := flag.Int("retry-max", 0, "reconnect attempts per outage before giving up (0 = default)")
	retentionFrames := flag.Int("retention-frames", 0, "unacked frames retained for resume (0 = default)")
	retentionBytes := flag.Int("retention-bytes", 0, "unacked bytes retained for resume (0 = default)")

	// Observability: the unified metrics registry, exposed over HTTP
	// and/or as periodic run-report lines.
	metricsAddr := flag.String("metrics", "", "serve /metrics (JSON + Prometheus text) and /healthz on this address (empty = off)")
	report := flag.Duration("report", 0, "print a structured run-report line at this interval (0 = off)")
	pprofOn := flag.Bool("pprof", false, "also serve /debug/pprof/ on the -metrics address")
	timelinePath := flag.String("timeline", "", "record a structured timeline and write it (per-node native JSON) to this file at shutdown")
	timelineMerge := flag.String("timeline-merge", "", "merge per-node timeline files (remaining args) into a Perfetto trace at this path, then exit")
	flag.Parse()
	channel.SetForceGob(*wireGob)

	// Merge mode: stitch per-node timeline files from a distributed
	// run into one Perfetto trace and exit without serving anything.
	//
	//	pianode -timeline-merge trace.json node-a.json node-b.json
	if *timelineMerge != "" {
		if flag.NArg() == 0 {
			log.Fatal("pianode: -timeline-merge needs at least one per-node timeline file argument")
		}
		out, err := os.Create(*timelineMerge)
		if err != nil {
			log.Fatal(err)
		}
		if err := timeline.MergeFiles(out, flag.Args()...); err != nil {
			out.Close()
			log.Fatalf("pianode: -timeline-merge: %v", err)
		}
		if err := out.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pianode: merged %d timeline file(s) into %s (open at ui.perfetto.dev)\n",
			flag.NArg(), *timelineMerge)
		return
	}
	if *pprofOn && *metricsAddr == "" {
		log.Fatal("pianode: -pprof needs -metrics to provide the HTTP listener")
	}

	cfg := wubbleu.DefaultConfig()
	cfg.PageSize = *pageKB * 1024
	cfg.Images = *images
	cfg.Level = *level

	sub := core.NewSubsystem("modemsite")
	sub.SetWorkers(*workers)
	if _, err := wubbleu.InstallModemSite(sub, cfg); err != nil {
		log.Fatal(err)
	}

	n := node.New("modem-node")
	if *verbose {
		n.Tracer = func(s string) { log.Print(s) }
	}
	if *coalesce {
		n.SetCoalescing(channel.CoalesceConfig{
			MaxMsgs:  *coalesceMsgs,
			MaxBytes: *coalesceBytes,
			MaxHold:  vtime.Duration(*coalesceHold),
		})
	}
	fcfg := faultnet.Config{
		Seed:         *seed,
		Latency:      *faultLatency,
		Jitter:       *faultJitter,
		BandwidthBps: *faultBW,
		DropProb:     *faultDrop,
		DupProb:      *faultDup,
		ReorderProb:  *faultReorder,
		CorruptProb:  *faultCorrupt,
	}
	if *faultPartition != "" {
		parts, err := faultnet.ParsePartitions(*faultPartition)
		if err != nil {
			log.Fatalf("pianode: -fault-partition: %v", err)
		}
		fcfg.Partitions = parts
	}
	if fcfg.Enabled() {
		n.SetFaults(fcfg)
		if !*resilient {
			log.Print("pianode: warning: faults armed without -resilient; connections will not survive them")
		}
	}
	if *resilient {
		n.SetResilience(resilience.Config{
			Heartbeat:       *heartbeat,
			HeartbeatMiss:   *heartbeatMiss,
			RetryBase:       *retryBase,
			RetryMax:        *retryMax,
			RetentionFrames: *retentionFrames,
			RetentionBytes:  *retentionBytes,
			Seed:            *seed,
		})
	}
	hosted := n.Host(sub)
	// When a designer's node connects, splice the incoming channel
	// into our fragment of the split "dma" net.
	hosted.OnChannel = func(ep *channel.Endpoint) {
		if err := ep.BindNet(sub.Net("dma"), "dma"); err != nil {
			log.Printf("pianode: bind dma: %v", err)
		}
	}

	// The metrics registry is created only when something will read
	// it; with both flags off the node runs on the zero-overhead
	// disabled path (nil registry, nil scheduler gauges).
	var reg *metrics.Registry
	if *metricsAddr != "" || *report > 0 {
		reg = metrics.NewRegistry()
		n.EnableMetrics(reg)
	}
	// The timeline recorder, like the registry, exists only when asked
	// for; otherwise every hook stays nil and the hot path is
	// allocation-free.
	if *timelinePath != "" {
		n.EnableTimeline(timeline.NewRecorder(0))
	}

	addr, err := n.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pianode: serving subsystem %q (level %s, %d KB page) on %s\n",
		sub.Name(), cfg.Level, *pageKB, addr)

	if *metricsAddr != "" {
		maddr, err := serveMetrics(*metricsAddr, reg, n, *resilient, *pprofOn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pianode: metrics on http://%s/metrics, health on http://%s/healthz\n", maddr, maddr)
		if *pprofOn {
			fmt.Printf("pianode: profiles on http://%s/debug/pprof/\n", maddr)
		}
	}
	if *report > 0 {
		t := time.NewTicker(*report)
		defer t.Stop()
		go func() {
			for range t.C {
				fmt.Println(reportLine(sub, n))
			}
		}()
	}

	// The listening socket is a standing ingress source: the
	// subsystem must not declare the simulation over just because no
	// designer has connected yet.
	sub.AddExternal()

	done := make(chan error, 1)
	go func() { done <- sub.Run(vtime.Infinity) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	select {
	case err := <-done:
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("pianode: simulation complete")
	case <-sig:
		fmt.Println("pianode: interrupted")
		sub.Stop()
		<-done
	}
	if *timelinePath != "" {
		if err := n.WriteTimeline(*timelinePath); err != nil {
			log.Printf("pianode: -timeline: %v", err)
		} else {
			fmt.Printf("pianode: timeline written to %s (merge with -timeline-merge)\n", *timelinePath)
		}
	}
	n.Close()
}

// serveMetrics starts the observability HTTP listener: /metrics in
// Prometheus text by default (JSON via ?format=json or an Accept
// header asking for application/json), /healthz reporting session
// liveness, and — when enabled — the net/http/pprof profile surface
// under /debug/pprof/. Returns the bound address.
func serveMetrics(addr string, reg *metrics.Registry, n *node.Node, resilient, pprofOn bool) (string, error) {
	mux := http.NewServeMux()
	if pprofOn {
		// The handlers register themselves on http.DefaultServeMux at
		// import time; this mux is a private one, so wire them in
		// explicitly. Index serves every named profile (heap,
		// goroutine, allocs, ...) under the prefix.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" ||
			strings.Contains(r.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json")
			reg.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		total, alive := n.SessionHealth()
		rs := n.ResilienceStats()
		status := "ok"
		code := http.StatusOK
		// A dead session is one that exhausted its retry budget or
		// hit an unresumable gap: the designer on its far end is
		// gone for good, which is exactly what a health probe should
		// surface. Sessions mid-outage still count as alive.
		if resilient && total > alive {
			status = "degraded"
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(map[string]any{
			"status":          status,
			"resilient":       resilient,
			"sessions":        total,
			"sessions_alive":  alive,
			"epoch_deaths":    rs.EpochDeaths,
			"resumes":         rs.Resumes,
			"replayed_frames": rs.ReplayedFrames,
			"rewinds":         rs.Rewinds,
		})
	})
	srv := &http.Server{Handler: mux}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("pianode: -metrics %s: %w", addr, err)
	}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("pianode: metrics server: %v", err)
		}
	}()
	return ln.Addr().String(), nil
}

// reportLine renders one structured run-report line from the node's
// race-safe accessors: virtual progress, scheduler counters, wire
// and session totals. One line per -report interval, logfmt-style,
// so a long-running vendor node can be tailed without a scraper.
func reportLine(sub *core.Subsystem, n *node.Node) string {
	now, key := sub.PublishedTimes()
	st := sub.Stats()
	ws := n.WireStats()
	rs := n.ResilienceStats()
	total, alive := n.SessionHealth()
	keyStr := "inf"
	if key != vtime.Infinity {
		keyStr = fmt.Sprintf("%d", int64(key))
	}
	return fmt.Sprintf("pia-report t=%s vnow=%d vnext=%s steps=%d deliveries=%d drives=%d stalls=%d par_rounds=%d "+
		"frames_out=%d frames_in=%d bytes_out=%d bytes_in=%d sessions=%d/%d epoch_deaths=%d resumes=%d rewinds=%d",
		time.Now().UTC().Format("15:04:05.000"), int64(now), keyStr,
		st.Steps, st.Deliveries, st.Drives, st.Stalls, st.ParRounds,
		ws.FramesOut, ws.FramesIn, ws.BytesOut, ws.BytesIn,
		alive, total, rs.EpochDeaths, rs.Resumes, rs.Rewinds)
}
