// pianode runs a standalone Pia node serving the modem site of the
// WubbleU design: the cellular communication ASIC plus the dedicated
// server behind its wireless link. This is the parts-vendor scenario
// the paper motivates — a component made available over the network
// for designers to patch into their simulated circuits.
//
// Start the server:
//
//	pianode -listen 127.0.0.1:7777 -level packetLevel
//
// then run the handheld side against it:
//
//	wubbleu -remote 127.0.0.1:7777
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/flight"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/resilience"
	"repro/internal/service"
	"repro/internal/timeline"
	"repro/internal/vtime"
	"repro/internal/wubbleu"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7777", "address to serve Pia channels on")
	level := flag.String("level", "packetLevel", "initial DMA detail level (hardwareLevel|wordLevel|packetLevel)")
	pageKB := flag.Int("page", 66, "page size in KB served by the web store")
	images := flag.Int("images", 4, "images embedded in the page")
	verbose := flag.Bool("v", false, "log channel activity")
	workers := flag.Int("workers", 0, "scheduler worker-pool size (0 = sequential; results are identical)")
	optimism := flag.Int64("optimism", 0, "speculate this many virtual ns past the safe horizon when workers would idle (0 = conservative; results are identical)")
	coalesce := flag.Bool("coalesce", false, "coalesce egress messages into batched wire frames")
	coalesceMsgs := flag.Int("coalesce-msgs", channel.DefaultCoalesce.MaxMsgs, "flush a batch at this many queued messages")
	coalesceBytes := flag.Int("coalesce-bytes", channel.DefaultCoalesce.MaxBytes, "flush a batch at this many queued payload bytes (0 = no byte budget)")
	coalesceHold := flag.Int64("coalesce-hold", 0, "flush when queued drives span this many virtual ns (0 = unbounded)")
	wireGob := flag.Bool("wire-gob", false, "force the gob fallback wire codec on every batch entry (the pre-zero-copy format; decoders accept both, so only the sender needs the flag)")

	// Deterministic fault injection on accepted connections (chaos
	// testing a designer's link against this vendor node).
	seed := flag.Int64("seed", 1, "fault-schedule seed; same seed reproduces the same faults")
	faultDrop := flag.Float64("fault-drop", 0, "probability a frame is dropped")
	faultDup := flag.Float64("fault-dup", 0, "probability a frame is duplicated")
	faultReorder := flag.Float64("fault-reorder", 0, "probability a frame is swapped with its successor")
	faultCorrupt := flag.Float64("fault-corrupt", 0, "probability one frame byte is flipped")
	faultLatency := flag.Duration("fault-latency", 0, "fixed wall-clock delay per frame")
	faultJitter := flag.Duration("fault-jitter", 0, "uniform random extra delay per frame")
	faultBW := flag.Int64("fault-bw", 0, "bandwidth cap in bits/s (0 = uncapped)")
	faultPartition := flag.String("fault-partition", "", "scripted partitions, \"atframe:healms[,...]\" e.g. \"50:15\"")

	// Resumable sessions: survive connection loss and injected faults.
	resilient := flag.Bool("resilient", false, "speak the resumable session protocol (peer must too)")
	heartbeat := flag.Duration("heartbeat", time.Second, "session heartbeat interval")
	heartbeatMiss := flag.Int("heartbeat-miss", 0, "missed heartbeats before the connection is declared dead (0 = default)")
	retryBase := flag.Duration("retry-base", 0, "initial reconnect backoff (0 = default)")
	retryMax := flag.Int("retry-max", 0, "reconnect attempts per outage before giving up (0 = default)")
	retentionFrames := flag.Int("retention-frames", 0, "unacked frames retained for resume (0 = default)")
	retentionBytes := flag.Int("retention-bytes", 0, "unacked bytes retained for resume (0 = default)")

	// Observability: the unified metrics registry, exposed over HTTP
	// and/or as periodic run-report lines.
	metricsAddr := flag.String("metrics", "", "serve /metrics (JSON + Prometheus text) and /healthz on this address (empty = off)")
	report := flag.Duration("report", 0, "print a structured run-report line at this interval (0 = off)")
	pprofOn := flag.Bool("pprof", false, "also serve /debug/pprof/ on the -metrics address")
	timelinePath := flag.String("timeline", "", "record a structured timeline and write it (per-node native JSON) to this file at shutdown")
	flightDump := flag.String("flight-dump", "", "write flight-recorder post-mortem JSON dumps into this directory when a failure trigger trips (requires -metrics)")
	watchEvery := flag.Duration("watch-interval", time.Second, "sampling cadence for the /watch telemetry stream and the flight recorder's metric deltas")
	attribTop := flag.Int("attrib-top", 0, "per-component wall-cost attribution: export cost histograms plus a top-N ranking in /metrics (0 = off; requires -metrics)")
	timelineMerge := flag.String("timeline-merge", "", "merge per-node timeline files (remaining args) into a Perfetto trace at this path, then exit")

	// Service mode: a multi-tenant session catalog replaces the single
	// modem-site subsystem. Designers create sessions over HTTP and
	// attach over the shared data listener by session id.
	serviceMode := flag.Bool("service", false, "run the multi-tenant session service (session API on the -metrics address, data channels on -listen)")
	maxSessions := flag.Int("max-sessions", 0, "service mode: admission cap on concurrent sessions (0 = unlimited)")
	maxMem := flag.Int64("max-mem", 0, "service mode: admission cap on total session footprint bytes (0 = unlimited)")
	maxSessionMem := flag.Int64("max-session-mem", 0, "service mode: admission cap on a single session's footprint bytes (0 = unlimited)")
	maxSteps := flag.Int64("max-steps", 0, "service mode: per-session scheduler-step budget; crossing it evicts the tenant (0 = unlimited)")

	// Mesh mode: join an N-node control plane running the shared
	// migration demo workload instead of serving the modem site.
	meshName := flag.String("mesh-name", "", "join a mesh as this member and run the migration demo workload (requires -peers)")
	meshPeers := flag.String("peers", "", "static mesh peer list: comma-separated name=host:port control addresses including this member's own entry (bare host:port entries get names derived from the address)")
	meshStep := flag.Duration("mesh-step", 25*time.Millisecond, "mesh lock-step round length in virtual time")
	meshUntil := flag.Duration("mesh-until", 0, "virtual horizon for the mesh run (0 = the demo workload's natural horizon)")
	meshMigrate := flag.String("mesh-migrate", "", "scripted live migration, \"component:dest@virtualtime\" e.g. \"hot:bravo@50ms\" (leader only)")
	flag.Parse()
	channel.SetForceGob(*wireGob)

	// Merge mode: stitch per-node timeline files from a distributed
	// run into one Perfetto trace and exit without serving anything.
	//
	//	pianode -timeline-merge trace.json node-a.json node-b.json
	if *timelineMerge != "" {
		if flag.NArg() == 0 {
			log.Fatal("pianode: -timeline-merge needs at least one per-node timeline file argument")
		}
		out, err := os.Create(*timelineMerge)
		if err != nil {
			log.Fatal(err)
		}
		if err := timeline.MergeFiles(out, flag.Args()...); err != nil {
			out.Close()
			log.Fatalf("pianode: -timeline-merge: %v", err)
		}
		if err := out.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pianode: merged %d timeline file(s) into %s (open at ui.perfetto.dev)\n",
			flag.NArg(), *timelineMerge)
		return
	}
	if *pprofOn && *metricsAddr == "" {
		log.Fatal("pianode: -pprof needs -metrics to provide the HTTP listener")
	}
	if *flightDump != "" && *metricsAddr == "" {
		log.Fatal("pianode: -flight-dump needs -metrics to enable the flight recorder")
	}
	if *serviceMode {
		if *meshName != "" || *meshPeers != "" {
			log.Fatal("pianode: -service and mesh mode are mutually exclusive")
		}
		if *metricsAddr == "" {
			log.Fatal("pianode: -service needs -metrics to provide the session API listener")
		}
	}

	fcfg := faultnet.Config{
		Seed:         *seed,
		Latency:      *faultLatency,
		Jitter:       *faultJitter,
		BandwidthBps: *faultBW,
		DropProb:     *faultDrop,
		DupProb:      *faultDup,
		ReorderProb:  *faultReorder,
		CorruptProb:  *faultCorrupt,
	}
	if *faultPartition != "" {
		parts, err := faultnet.ParsePartitions(*faultPartition)
		if err != nil {
			log.Fatalf("pianode: -fault-partition: %v", err)
		}
		fcfg.Partitions = parts
	}
	rcfg := resilience.Config{
		Heartbeat:       *heartbeat,
		HeartbeatMiss:   *heartbeatMiss,
		RetryBase:       *retryBase,
		RetryMax:        *retryMax,
		RetentionFrames: *retentionFrames,
		RetentionBytes:  *retentionBytes,
		Seed:            *seed,
	}

	if *serviceMode {
		if err := runService(serviceOptions{
			listen:      *listen,
			metricsAddr: *metricsAddr,
			verbose:     *verbose,
			pprofOn:     *pprofOn,
			resilient:   *resilient,
			workers:     *workers,
			limits: service.Limits{
				MaxSessions:        *maxSessions,
				MaxMemBytes:        *maxMem,
				MaxSessionMemBytes: *maxSessionMem,
				MaxSteps:           *maxSteps,
			},
			faults:     fcfg,
			res:        rcfg,
			flightDump: *flightDump,
			watchEvery: *watchEvery,
			attribTop:  *attribTop,
		}); err != nil {
			log.Fatal(err)
		}
		return
	}

	// Mesh mode replaces the modem-site server wholesale: the node
	// becomes one member of an N-node control plane running the shared
	// migration demo workload in lock step.
	if *meshName != "" || *meshPeers != "" {
		if *meshName == "" {
			log.Fatal("pianode: -peers needs -mesh-name to say which member this node is")
		}
		// The single-node default port would collide between co-hosted
		// members; mesh mode defaults to an ephemeral data port (the
		// control plane exchanges the bound addresses) unless -listen
		// was given explicitly.
		dataListen := "127.0.0.1:0"
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "listen" {
				dataListen = *listen
			}
		})
		if err := runMesh(meshOptions{
			name:         *meshName,
			peers:        *meshPeers,
			dataListen:   dataListen,
			metricsAddr:  *metricsAddr,
			timelinePath: *timelinePath,
			migrate:      *meshMigrate,
			pprofOn:      *pprofOn,
			verbose:      *verbose,
			resilient:    *resilient,
			step:         *meshStep,
			until:        *meshUntil,
			faults:       fcfg,
			res:          rcfg,
			flightDump:   *flightDump,
			watchEvery:   *watchEvery,
			attribTop:    *attribTop,
		}); err != nil {
			log.Fatal(err)
		}
		return
	}

	cfg := wubbleu.DefaultConfig()
	cfg.PageSize = *pageKB * 1024
	cfg.Images = *images
	cfg.Level = *level

	sub := core.NewSubsystem("modemsite")
	sub.SetWorkers(*workers)
	if *optimism > 0 {
		sub.SetOptimism(vtime.Duration(*optimism))
	}
	if _, err := wubbleu.InstallModemSite(sub, cfg); err != nil {
		log.Fatal(err)
	}

	n := node.New("modem-node")
	if *verbose {
		n.Tracer = func(s string) { log.Print(s) }
	}
	if *coalesce {
		n.SetCoalescing(channel.CoalesceConfig{
			MaxMsgs:  *coalesceMsgs,
			MaxBytes: *coalesceBytes,
			MaxHold:  vtime.Duration(*coalesceHold),
		})
	}
	if fcfg.Enabled() {
		n.SetFaults(fcfg)
		if !*resilient {
			log.Print("pianode: warning: faults armed without -resilient; connections will not survive them")
		}
	}
	if *resilient {
		n.SetResilience(rcfg)
	}
	hosted := n.Host(sub)
	// When a designer's node connects, splice the incoming channel
	// into our fragment of the split "dma" net.
	hosted.OnChannel = func(ep *channel.Endpoint) {
		if err := ep.BindNet(sub.Net("dma"), "dma"); err != nil {
			log.Printf("pianode: bind dma: %v", err)
		}
	}

	// The metrics registry is created only when something will read
	// it; with both flags off the node runs on the zero-overhead
	// disabled path (nil registry, nil scheduler gauges).
	var reg *metrics.Registry
	if *metricsAddr != "" || *report > 0 {
		reg = metrics.NewRegistry()
		metrics.RegisterBuildInfo(reg, "modemsite")
		n.EnableMetrics(reg)
	}
	if *attribTop > 0 {
		if reg == nil {
			log.Fatal("pianode: -attrib-top needs -metrics (or -report) to provide the registry")
		}
		sub.EnableCostAttribution(reg, *attribTop)
	}
	// The timeline recorder, like the registry, exists only when asked
	// for; otherwise every hook stays nil and the hot path is
	// allocation-free.
	if *timelinePath != "" {
		n.EnableTimeline(timeline.NewRecorder(0))
	}
	// The flight recorder and /watch hub ride on the metrics listener:
	// with -metrics off the observer stays nil and every trigger path
	// pays one nil check.
	var fobs *flight.Observer
	if *metricsAddr != "" {
		var fsmp *flight.Sampler
		fobs, fsmp = newFlight(reg, *flightDump, "modemsite", *watchEvery)
		n.EnableFlight(fobs)
		sub.OnThrottleCollapse = func(spec, aborted int) {
			fobs.Event("throttle", sub.Name(), "rollback storm: speculation window collapsed", int64(aborted))
			fobs.Trip("rollback-storm", sub.Name())
		}
		fsmp.Start()
		defer fsmp.Stop()
	}

	addr, err := n.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pianode: serving subsystem %q (level %s, %d KB page) on %s\n",
		sub.Name(), cfg.Level, *pageKB, addr)

	var obsSrv *http.Server
	if *metricsAddr != "" {
		srv, maddr, err := serveObs(*metricsAddr, obsConfig{
			reg: reg, health: n, resilient: *resilient, pprofOn: *pprofOn,
			rec: fobs.Rec, hub: fobs.Hub,
		})
		if err != nil {
			log.Fatal(err)
		}
		obsSrv = srv
		fmt.Printf("pianode: metrics on http://%s/metrics, health on http://%s/healthz\n", maddr, maddr)
		fmt.Printf("pianode: live telemetry on http://%s/watch, flight recorder on http://%s/debug/flight\n", maddr, maddr)
		if *pprofOn {
			fmt.Printf("pianode: profiles on http://%s/debug/pprof/\n", maddr)
		}
	}
	if *report > 0 {
		t := time.NewTicker(*report)
		defer t.Stop()
		go func() {
			for range t.C {
				fmt.Println(reportLine(sub, n))
			}
		}()
	}

	// The listening socket is a standing ingress source: the
	// subsystem must not declare the simulation over just because no
	// designer has connected yet.
	sub.AddExternal()

	done := make(chan error, 1)
	go func() { done <- sub.Run(vtime.Infinity) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	select {
	case err := <-done:
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("pianode: simulation complete")
	case <-sig:
		fmt.Println("pianode: interrupted")
		sub.Stop()
		<-done
	}
	if *timelinePath != "" {
		if err := n.WriteTimeline(*timelinePath); err != nil {
			log.Printf("pianode: -timeline: %v", err)
		} else {
			fmt.Printf("pianode: timeline written to %s (merge with -timeline-merge)\n", *timelinePath)
		}
	}
	shutdownObs(obsSrv)
	n.Close()
}

// healthSource is the slice of the node the health endpoint reads —
// an interface so the handler can be exercised against fabricated
// session states.
type healthSource interface {
	SessionHealth() (total, alive int)
	ResilienceStats() resilience.Stats
}

// migrator is the slice of the mesh member the admin endpoints use —
// an interface so the mux can be tested without forming a mesh.
// *mesh.Member implements it.
type migrator interface {
	Health() mesh.Health
	Name() string
	Leader() string
	Epoch() uint64
	Placement() map[string]string
	Members() []string
	RequestMigration(comp, dest string) error
}

// obsConfig selects what the observability mux serves.
type obsConfig struct {
	reg       *metrics.Registry
	health    healthSource
	resilient bool
	pprofOn   bool
	mem       migrator         // mesh mode: membership health + migration admin
	catalog   *service.Catalog // service mode: session API + per-tenant health
	rec       *flight.Recorder // GET /debug/flight post-mortem view
	hub       *flight.Hub      // GET /watch SSE telemetry stream
}

// newObsMux assembles the observability surface: /metrics in
// Prometheus text by default (JSON via ?format=json or an Accept
// header asking for application/json), /healthz reporting session
// liveness, and — when enabled — the net/http/pprof profile surface
// under /debug/pprof/. With a mesh member, /healthz switches to the
// membership view and POST /migrate becomes the live-migration admin
// endpoint; with a session catalog, the /sessions API is mounted and
// /healthz gains per-tenant liveness.
func newObsMux(o obsConfig) *http.ServeMux {
	mux := http.NewServeMux()
	if o.pprofOn {
		// The handlers register themselves on http.DefaultServeMux at
		// import time; this mux is a private one, so wire them in
		// explicitly. Index serves every named profile (heap,
		// goroutine, allocs, ...) under the prefix.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var err error
		if r.URL.Query().Get("format") == "json" ||
			strings.Contains(r.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json")
			err = o.reg.WriteJSON(w)
		} else {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			err = o.reg.WritePrometheus(w)
		}
		if err != nil {
			log.Printf("pianode: writing /metrics response: %v", err)
		}
	})
	if o.rec != nil {
		mux.Handle("/debug/flight", o.rec)
	}
	if o.hub != nil {
		mux.Handle("/watch", o.hub)
	}
	if o.mem != nil {
		mux.HandleFunc("/migrate", func(w http.ResponseWriter, r *http.Request) {
			handleMigrate(w, r, o.mem)
		})
	}
	if o.catalog != nil {
		api := service.Handler(o.catalog)
		mux.Handle("/sessions", api)
		mux.Handle("/sessions/", api)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if o.mem != nil {
			meshHealth(w, o.mem)
			return
		}
		nodeHealth(w, o)
	})
	return mux
}

// nodeHealth reports session liveness. A dead session is one that
// exhausted its retry budget or hit an unresumable gap: the designer
// on its far end is gone for good, which is exactly what a health
// probe should surface — whether or not -resilient armed the
// resumable protocol. Sessions mid-outage still count as alive. In
// service mode the tenant catalog is folded in: a failed or evicted
// tenant degrades the probe the same way.
func nodeHealth(w http.ResponseWriter, o obsConfig) {
	total, alive := o.health.SessionHealth()
	rs := o.health.ResilienceStats()
	status, code := "ok", http.StatusOK
	if total > alive {
		status, code = "degraded", http.StatusServiceUnavailable
	}
	body := map[string]any{
		"resilient":       o.resilient,
		"sessions":        total,
		"sessions_alive":  alive,
		"epoch_deaths":    rs.EpochDeaths,
		"resumes":         rs.Resumes,
		"replayed_frames": rs.ReplayedFrames,
		"rewinds":         rs.Rewinds,
	}
	if o.catalog != nil {
		infos, rev := o.catalog.List()
		tenants := make(map[string]string, len(infos))
		dead := 0
		for _, in := range infos {
			tenants[in.ID] = string(in.State)
			if in.State == service.StateFailed || in.State == service.StateEvicted {
				dead++
			}
		}
		if dead > 0 && code == http.StatusOK {
			status, code = "degraded", http.StatusServiceUnavailable
		}
		body["service"] = true
		body["catalog_rev"] = rev
		body["tenants"] = tenants
		body["tenants_failed"] = dead
	}
	body["status"] = status
	writeObsJSON(w, code, body)
}

// writeObsJSON writes a JSON response and logs the failure a bare
// Encode would swallow — a probe hanging up mid-body otherwise looks
// identical to a served request.
func writeObsJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("pianode: writing response: %v", err)
	}
}

// serveObs starts the observability HTTP listener. Returns the
// server (so the caller can drain it at shutdown) and the bound
// address.
func serveObs(addr string, o obsConfig) (*http.Server, string, error) {
	srv := &http.Server{
		Handler: newObsMux(o),
		// Slow-client bounds: a scraper that stalls mid-headers or
		// mid-read cannot pin a connection open forever. The write
		// budget is generous because /debug/pprof/profile streams
		// for its ?seconds= argument (30s by default) before the
		// response completes.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("pianode: -metrics %s: %w", addr, err)
	}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("pianode: metrics server: %v", err)
		}
	}()
	return srv, ln.Addr().String(), nil
}

// shutdownObs drains in-flight scrapes before the process exits. A
// nil server (observability was never enabled) is a no-op.
func shutdownObs(srv *http.Server) {
	if srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("pianode: metrics shutdown: %v", err)
	}
}

// newFlight assembles the flight-recorder stack for one mode: the
// ring recorder (stamped with the mode and wired to the registry),
// the /watch streaming hub, and the sampler feeding both with metric
// deltas. When dumpDir is set, a trip writes the post-mortem there as
// a self-contained JSON file.
func newFlight(reg *metrics.Registry, dumpDir, mode string, every time.Duration) (*flight.Observer, *flight.Sampler) {
	rec := flight.New(0)
	rec.SetInfo("mode", mode)
	rec.AttachRegistry(reg)
	hub := flight.NewHub()
	if dumpDir != "" {
		if err := os.MkdirAll(dumpDir, 0o755); err != nil {
			log.Fatalf("pianode: -flight-dump: %v", err)
		}
		rec.OnTrip(func(d *flight.Dump) {
			path := filepath.Join(dumpDir, fmt.Sprintf("flight-%s-%d.json", mode, d.GeneratedNS))
			f, err := os.Create(path)
			if err != nil {
				log.Printf("pianode: flight dump: %v", err)
				return
			}
			if err := d.WriteJSON(f); err != nil {
				log.Printf("pianode: flight dump: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Printf("pianode: flight dump: %v", err)
				return
			}
			fmt.Printf("pianode: flight recorder tripped (%s): post-mortem written to %s\n", d.Reason, path)
		})
	}
	smp := flight.NewSampler(reg, rec, hub, every)
	return &flight.Observer{Rec: rec, Hub: hub}, smp
}

// meshHealth reports this member's view of the mesh: every member
// with its join/leave state and last-heartbeat age. The probe fails
// (503) only when a quorum of members is dead; losing one peer of a
// larger mesh reports "degraded" but stays 200, because the mesh is
// still able to coordinate rounds once the peer returns.
func meshHealth(w http.ResponseWriter, mem migrator) {
	h := mem.Health()
	status, code := "ok", http.StatusOK
	switch {
	case h.QuorumDead:
		status, code = "quorum-dead", http.StatusServiceUnavailable
	case h.Alive < h.Total:
		status = "degraded"
	}
	writeObsJSON(w, code, map[string]any{
		"status":     status,
		"mesh":       true,
		"self":       mem.Name(),
		"leader":     mem.Leader(),
		"epoch":      mem.Epoch(),
		"placement":  mem.Placement(),
		"members":    h.Members,
		"alive":      h.Alive,
		"total":      h.Total,
		"quorumDead": h.QuorumDead,
	})
}

// handleMigrate accepts POST /migrate?component=hot&dest=bravo on any
// member and forwards the request to the mesh leader, which performs
// the migration at the next held drain barrier. The response only
// acknowledges acceptance; completion shows up as an epoch bump in
// /healthz.
func handleMigrate(w http.ResponseWriter, r *http.Request, mem migrator) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	comp := r.FormValue("component")
	if comp == "" {
		comp = r.FormValue("comp")
	}
	dest := r.FormValue("dest")
	if comp == "" || dest == "" {
		http.Error(w, "need component= and dest= parameters", http.StatusBadRequest)
		return
	}
	if _, ok := mem.Placement()[comp]; !ok {
		http.Error(w, fmt.Sprintf("unknown component %q", comp), http.StatusNotFound)
		return
	}
	known := false
	for _, name := range mem.Members() {
		known = known || name == dest
	}
	if !known {
		http.Error(w, fmt.Sprintf("unknown member %q", dest), http.StatusNotFound)
		return
	}
	if err := mem.RequestMigration(comp, dest); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeObsJSON(w, http.StatusOK, map[string]any{
		"accepted":  true,
		"component": comp,
		"dest":      dest,
		"leader":    mem.Leader(),
	})
}

// serviceOptions carries the parsed flag values into service mode.
type serviceOptions struct {
	listen, metricsAddr string
	verbose, pprofOn    bool
	resilient           bool
	workers             int
	limits              service.Limits
	faults              faultnet.Config
	res                 resilience.Config
	flightDump          string
	watchEvery          time.Duration
	attribTop           int
}

// runService turns the node into a multi-tenant simulation service:
// a session catalog managed over HTTP on the -metrics address, every
// live session hosted under its id behind the one shared data
// listener, all of them fair-sharing one bounded worker pool.
func runService(o serviceOptions) error {
	n := node.New("service-node")
	if o.verbose {
		n.Tracer = func(s string) { log.Print(s) }
	}
	if o.faults.Enabled() {
		n.SetFaults(o.faults)
		if !o.resilient {
			log.Print("pianode: warning: faults armed without -resilient; connections will not survive them")
		}
	}
	if o.resilient {
		n.SetResilience(o.res)
	}
	defer n.Close()

	// One shared registry backs the scrape, but the node is NOT wired
	// into it: each session runs its own registry (so its samples can
	// carry the tenant label), and the catalog's collector re-emits
	// them all into this one at snapshot time.
	reg := metrics.NewRegistry()
	metrics.RegisterBuildInfo(reg, "service")
	fobs, fsmp := newFlight(reg, o.flightDump, "service", o.watchEvery)
	n.EnableFlight(fobs)
	fsmp.Start()
	defer fsmp.Stop()
	cat := service.NewCatalog(service.Config{
		Workers:         o.workers,
		Limits:          o.limits,
		Node:            n,
		Metrics:         reg,
		Flight:          fobs,
		AttributionTopN: o.attribTop,
	})
	defer cat.Close()

	addr, err := n.Listen(o.listen)
	if err != nil {
		return err
	}
	srv, maddr, err := serveObs(o.metricsAddr, obsConfig{
		reg: reg, health: n, resilient: o.resilient,
		pprofOn: o.pprofOn, catalog: cat,
		rec: fobs.Rec, hub: fobs.Hub,
	})
	if err != nil {
		return err
	}
	fmt.Printf("pianode: session service up: data channels on %s, session API on http://%s/sessions\n",
		addr, maddr)
	fmt.Printf("pianode: metrics on http://%s/metrics, health on http://%s/healthz\n", maddr, maddr)
	fmt.Printf("pianode: live telemetry on http://%s/watch (?session= filters a tenant), flight recorder on http://%s/debug/flight\n", maddr, maddr)
	if o.pprofOn {
		fmt.Printf("pianode: profiles on http://%s/debug/pprof/\n", maddr)
	}
	if o.workers > 0 {
		fmt.Printf("pianode: sessions fair-share a %d-worker pool\n", o.workers)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("pianode: interrupted")
	shutdownObs(srv)
	st := cat.Stats()
	fmt.Printf("pianode: service done: live=%d created=%d stopped=%d evicted=%d rejected=%d\n",
		st.Live, st.Created, st.Stopped, st.Evicted, st.Rejected)
	return nil
}

// meshOptions carries the parsed flag values into mesh mode.
type meshOptions struct {
	name, peers, dataListen, metricsAddr, timelinePath, migrate string
	pprofOn, verbose, resilient                                 bool
	step, until                                                 time.Duration
	faults                                                      faultnet.Config
	res                                                         resilience.Config
	flightDump                                                  string
	watchEvery                                                  time.Duration
	attribTop                                                   int
}

// runMesh joins the static mesh as one member and runs the shared
// migration demo workload in lock step with its peers. The
// lexicographically smallest member leads; every member prints its
// per-component drive digests at the end, so bit-identical output
// across a migrated and a stationary run can be checked from the
// shell.
func runMesh(o meshOptions) error {
	peers, err := parsePeers(o.peers)
	if err != nil {
		return err
	}
	self, ok := peers[o.name]
	if !ok {
		return fmt.Errorf("pianode: -peers has no entry for this member %q", o.name)
	}
	names := make([]string, 0, len(peers))
	for name := range peers {
		names = append(names, name)
	}
	sort.Strings(names)
	// The control plane is N-node; the demo workload is written for
	// exactly three members (DemoBlueprint rejects other sizes).
	params := mesh.DemoParams{Members: names}
	bp, err := mesh.DemoBlueprint(params)
	if err != nil {
		return err
	}

	nd := node.New(o.name)
	if o.verbose {
		nd.Tracer = func(s string) { log.Print(s) }
	}
	if o.faults.Enabled() {
		nd.SetFaults(o.faults)
		if !o.resilient {
			log.Print("pianode: warning: faults armed without -resilient; data channels will not survive them")
		}
	}
	if o.resilient {
		nd.SetResilience(o.res)
	}
	var reg *metrics.Registry
	if o.metricsAddr != "" {
		reg = metrics.NewRegistry()
		metrics.RegisterBuildInfo(reg, "mesh")
		nd.EnableMetrics(reg)
	}
	cfg := mesh.Config{
		Name:       o.name,
		Blueprint:  bp,
		Node:       nd,
		CtlListen:  self,
		DataListen: o.dataListen,
	}
	if o.timelinePath != "" {
		cfg.Timeline = timeline.NewRecorder(0)
	}
	mem, err := mesh.New(cfg)
	if err != nil {
		return err
	}
	defer mem.Close()
	fmt.Printf("pianode: mesh member %q: control on %s, data on %s\n",
		o.name, mem.CtlAddr(), mem.DataAddr())

	// Flight stack: peer-loss trips via the node, quorum death via the
	// sampler's poll hook (membership health is not registry-driven).
	var fobs *flight.Observer
	if o.metricsAddr != "" {
		fobs2, fsmp := newFlight(reg, o.flightDump, "mesh", o.watchEvery)
		fobs = fobs2
		fobs.Rec.SetInfo("member", o.name)
		nd.EnableFlight(fobs)
		fsmp.SetPoll(func() {
			if h := mem.Health(); h.QuorumDead {
				fobs.Event("health", o.name, fmt.Sprintf("quorum dead: %d/%d members alive", h.Alive, h.Total), int64(h.Alive))
				fobs.Trip("quorum-dead", fmt.Sprintf("%s sees %d/%d alive", o.name, h.Alive, h.Total))
			}
		})
		fsmp.Start()
		defer fsmp.Stop()
		if o.attribTop > 0 {
			mem.Subsystem().EnableCostAttribution(reg, o.attribTop)
		}
	}

	// Admin/metrics listener comes up before the (blocking) mesh
	// formation so probes can watch the mesh assemble.
	var obsSrv *http.Server
	defer func() { shutdownObs(obsSrv) }()
	if o.metricsAddr != "" {
		srv, maddr, err := serveObs(o.metricsAddr, obsConfig{
			reg: reg, health: nd, resilient: o.resilient, pprofOn: o.pprofOn, mem: mem,
			rec: fobs.Rec, hub: fobs.Hub,
		})
		if err != nil {
			return err
		}
		obsSrv = srv
		fmt.Printf("pianode: mesh health on http://%s/healthz, migration admin on http://%s/migrate\n",
			maddr, maddr)
	}

	others := make(map[string]string, len(peers))
	for name, addr := range peers {
		if name != o.name {
			others[name] = addr
		}
	}
	if err := mem.Start(others); err != nil {
		return err
	}
	fmt.Printf("pianode: mesh up: %d members, leader %q\n", len(names), mem.Leader())

	if o.migrate != "" {
		comp, dest, at, err := parseMigrate(o.migrate)
		if err != nil {
			return err
		}
		if mem.IsLeader() {
			if err := mem.MigrateAt(at, comp, dest); err != nil {
				return err
			}
			fmt.Printf("pianode: migration of %q to %q scheduled at vt=%d\n", comp, dest, int64(at))
		} else {
			log.Print("pianode: -mesh-migrate ignored on a follower; pass it to the leader (or POST /migrate to any member)")
		}
	}

	until := vtime.Time(o.until.Nanoseconds())
	if o.until <= 0 {
		until = params.Horizon()
	}
	done := make(chan error, 1)
	go func() {
		if mem.IsLeader() {
			done <- mem.Lead(until, vtime.Duration(o.step.Nanoseconds()))
		} else {
			done <- mem.Wait()
		}
	}()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	select {
	case err := <-done:
		if err != nil {
			return err
		}
	case <-sig:
		fmt.Println("pianode: interrupted")
		mem.Close()
		<-done
		return nil
	}

	st := mem.Stats()
	fmt.Printf("pianode: mesh run complete: rounds=%d reissues=%d migrations=%d epoch=%d\n",
		st.Rounds, st.Reissues, st.Migrations, st.Epoch)
	if st.Migrations > 0 {
		fmt.Printf("pianode: last migration: virtual downtime=%dns wall=%s epoch_propagation=%s\n",
			int64(st.MigrationVirtual), st.MigrationWall, st.EpochPropagation)
	}
	digs := mem.Digests()
	comps := make([]string, 0, len(digs))
	for c := range digs {
		comps = append(comps, c)
	}
	sort.Strings(comps)
	for _, c := range comps {
		fmt.Printf("pianode: digest %s=%016x\n", c, digs[c])
	}
	if o.timelinePath != "" {
		if err := nd.WriteTimeline(o.timelinePath); err != nil {
			log.Printf("pianode: -timeline: %v", err)
		} else {
			fmt.Printf("pianode: timeline written to %s (merge with -timeline-merge)\n", o.timelinePath)
		}
	}
	return nil
}

// parsePeers parses the static member list. Entries are
// name=host:port; a bare host:port gets a deterministic name derived
// from the address so every member derives the same set.
func parsePeers(s string) (map[string]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("pianode: mesh mode needs -peers name=host:port[,name=host:port...]")
	}
	peers := make(map[string]string)
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		name, addr, ok := strings.Cut(ent, "=")
		if !ok {
			name, addr = "m-"+strings.NewReplacer(":", "-", "/", "-").Replace(ent), ent
		}
		if name == "" || addr == "" {
			return nil, fmt.Errorf("pianode: bad -peers entry %q (want name=host:port)", ent)
		}
		if prev, dup := peers[name]; dup {
			return nil, fmt.Errorf("pianode: duplicate -peers name %q (%s and %s)", name, prev, addr)
		}
		peers[name] = addr
	}
	return peers, nil
}

// parseMigrate parses "component:dest@virtualtime" where virtualtime
// is a Go duration measured from virtual zero, e.g. "hot:bravo@50ms".
func parseMigrate(s string) (comp, dest string, at vtime.Time, err error) {
	spec, atStr, ok := strings.Cut(s, "@")
	if !ok {
		return "", "", 0, fmt.Errorf("pianode: bad -mesh-migrate %q (want component:dest@virtualtime)", s)
	}
	comp, dest, ok = strings.Cut(spec, ":")
	if !ok || comp == "" || dest == "" {
		return "", "", 0, fmt.Errorf("pianode: bad -mesh-migrate %q (want component:dest@virtualtime)", s)
	}
	d, err := time.ParseDuration(atStr)
	if err != nil {
		return "", "", 0, fmt.Errorf("pianode: bad -mesh-migrate time %q: %v", atStr, err)
	}
	return comp, dest, vtime.Time(d.Nanoseconds()), nil
}

// reportLine renders one structured run-report line from the node's
// race-safe accessors: virtual progress, scheduler counters, wire
// and session totals. One line per -report interval, logfmt-style,
// so a long-running vendor node can be tailed without a scraper.
func reportLine(sub *core.Subsystem, n *node.Node) string {
	now, key := sub.PublishedTimes()
	st := sub.Stats()
	ws := n.WireStats()
	rs := n.ResilienceStats()
	total, alive := n.SessionHealth()
	keyStr := "inf"
	if key != vtime.Infinity {
		keyStr = fmt.Sprintf("%d", int64(key))
	}
	return fmt.Sprintf("pia-report t=%s vnow=%d vnext=%s steps=%d deliveries=%d drives=%d stalls=%d par_rounds=%d "+
		"frames_out=%d frames_in=%d bytes_out=%d bytes_in=%d sessions=%d/%d epoch_deaths=%d resumes=%d rewinds=%d",
		time.Now().UTC().Format("15:04:05.000"), int64(now), keyStr,
		st.Steps, st.Deliveries, st.Drives, st.Stalls, st.ParRounds,
		ws.FramesOut, ws.FramesIn, ws.BytesOut, ws.BytesIn,
		alive, total, rs.EpochDeaths, rs.Resumes, rs.Rewinds)
}
