package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/flight"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/resilience"
	"repro/internal/service"
	"repro/internal/vtime"
)

// fakeHealth fabricates node session states the real node only
// reaches after a designer's link dies for good.
type fakeHealth struct {
	total, alive int
	rs           resilience.Stats
}

func (f fakeHealth) SessionHealth() (int, int)         { return f.total, f.alive }
func (f fakeHealth) ResilienceStats() resilience.Stats { return f.rs }

// fakeMesh scripts the migrator surface so /migrate and the mesh
// /healthz view can be driven without forming a three-node mesh.
type fakeMesh struct {
	placement  map[string]string
	members    []string
	health     mesh.Health
	migrateErr error
	requested  [][2]string
}

func (f *fakeMesh) Health() mesh.Health          { return f.health }
func (f *fakeMesh) Name() string                 { return "alpha" }
func (f *fakeMesh) Leader() string               { return "alpha" }
func (f *fakeMesh) Epoch() uint64                { return 3 }
func (f *fakeMesh) Placement() map[string]string { return f.placement }
func (f *fakeMesh) Members() []string            { return f.members }
func (f *fakeMesh) RequestMigration(comp, dest string) error {
	f.requested = append(f.requested, [2]string{comp, dest})
	return f.migrateErr
}

func get(t *testing.T, mux http.Handler, path string, hdr map[string]string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	var body map[string]any
	if strings.HasPrefix(rr.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", path, rr.Body.String(), err)
		}
	}
	return rr, body
}

func postForm(t *testing.T, mux http.Handler, path string, form url.Values) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	return rr
}

// TestMetricsContentNegotiation: Prometheus text is the default;
// JSON comes via ?format=json or an Accept header, and both forms
// carry the registered samples.
func TestMetricsContentNegotiation(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("pia_test_total").Add(7)
	mux := newObsMux(obsConfig{reg: reg, health: fakeHealth{}})

	rr, _ := get(t, mux, "/metrics", nil)
	if rr.Code != http.StatusOK || !strings.HasPrefix(rr.Header().Get("Content-Type"), "text/plain") {
		t.Fatalf("default scrape: %d %q", rr.Code, rr.Header().Get("Content-Type"))
	}
	if !strings.Contains(rr.Body.String(), "pia_test_total 7") {
		t.Fatalf("prometheus body missing sample: %q", rr.Body.String())
	}

	for _, path := range []string{"/metrics?format=json", "/metrics"} {
		hdr := map[string]string{}
		if !strings.Contains(path, "json") {
			hdr["Accept"] = "application/json"
		}
		rr, _ := get(t, mux, path, hdr)
		if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s with %v: Content-Type %q", path, hdr, ct)
		}
		var doc struct {
			Metrics []map[string]any `json:"metrics"`
		}
		if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
			t.Fatalf("%s: bad JSON %q: %v", path, rr.Body.String(), err)
		}
		if len(doc.Metrics) != 1 || doc.Metrics[0]["name"] != "pia_test_total" {
			t.Fatalf("%s: samples %v", path, doc.Metrics)
		}
	}
}

// TestHealthzMatrix covers the status grid: session deficits degrade
// the probe with and without -resilient (a dead designer is a fact
// regardless of which wire protocol lost it), service mode folds in
// tenant liveness, and mesh mode switches to the membership view.
func TestHealthzMatrix(t *testing.T) {
	reg := metrics.NewRegistry()
	cases := []struct {
		name       string
		cfg        obsConfig
		wantCode   int
		wantStatus string
	}{
		{"all-alive", obsConfig{reg: reg, health: fakeHealth{total: 2, alive: 2}}, 200, "ok"},
		{"dead-session", obsConfig{reg: reg, health: fakeHealth{total: 2, alive: 1}}, 503, "degraded"},
		{"dead-session-resilient", obsConfig{reg: reg, health: fakeHealth{total: 2, alive: 1}, resilient: true}, 503, "degraded"},
		{"mesh-degraded", obsConfig{reg: reg, health: fakeHealth{}, mem: &fakeMesh{health: mesh.Health{Alive: 2, Total: 3}}}, 200, "degraded"},
		{"mesh-quorum-dead", obsConfig{reg: reg, health: fakeHealth{}, mem: &fakeMesh{health: mesh.Health{Alive: 1, Total: 3, QuorumDead: true}}}, 503, "quorum-dead"},
	}
	for _, tc := range cases {
		rr, body := get(t, newObsMux(tc.cfg), "/healthz", nil)
		if rr.Code != tc.wantCode || body["status"] != tc.wantStatus {
			t.Fatalf("%s: %d %v, want %d %q", tc.name, rr.Code, body, tc.wantCode, tc.wantStatus)
		}
	}
}

// TestHealthzServiceTenants: a healthy tenant reports 200 with the
// per-tenant section; an evicted tenant flips the probe to 503.
func TestHealthzServiceTenants(t *testing.T) {
	reg := metrics.NewRegistry()
	cat := service.NewCatalog(service.Config{Limits: service.Limits{MaxSteps: 1}, Metrics: reg})
	defer cat.Close()
	mux := newObsMux(obsConfig{reg: reg, health: fakeHealth{}, catalog: cat})

	info, err := cat.Create(service.Spec{ID: "tenant-a"})
	if err != nil {
		t.Fatal(err)
	}
	rr, body := get(t, mux, "/healthz", nil)
	if rr.Code != http.StatusOK || body["service"] != true {
		t.Fatalf("healthy tenant: %d %v", rr.Code, body)
	}
	tenants := body["tenants"].(map[string]any)
	if tenants["tenant-a"] != "ready" {
		t.Fatalf("tenant section: %v", tenants)
	}

	// Step across the 1-step budget: the tenant is evicted but stays
	// visible in the catalog, so the probe must degrade.
	_, err = cat.Step(info.ID, 0, 20*vtime.Millisecond)
	var be *service.BudgetError
	if !errors.As(err, &be) || !be.Evicted {
		t.Fatalf("step past budget: %v", err)
	}
	rr, body = get(t, mux, "/healthz", nil)
	if rr.Code != http.StatusServiceUnavailable || body["tenants_failed"].(float64) != 1 {
		t.Fatalf("evicted tenant: %d %v", rr.Code, body)
	}
}

// TestMigrateEndpoint drives the admin endpoint through its error
// paths and one accepted migration against a scripted mesh.
func TestMigrateEndpoint(t *testing.T) {
	fm := &fakeMesh{
		placement: map[string]string{"hot": "alpha"},
		members:   []string{"alpha", "bravo"},
	}
	reg := metrics.NewRegistry()
	mux := newObsMux(obsConfig{reg: reg, health: fakeHealth{}, mem: fm})

	if rr, _ := get(t, mux, "/migrate", nil); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /migrate: %d", rr.Code)
	}
	cases := []struct {
		form url.Values
		want int
	}{
		{url.Values{}, http.StatusBadRequest},
		{url.Values{"component": {"hot"}}, http.StatusBadRequest},
		{url.Values{"component": {"nope"}, "dest": {"bravo"}}, http.StatusNotFound},
		{url.Values{"component": {"hot"}, "dest": {"ghost"}}, http.StatusNotFound},
		{url.Values{"component": {"hot"}, "dest": {"bravo"}}, http.StatusOK},
	}
	for _, tc := range cases {
		if rr := postForm(t, mux, "/migrate", tc.form); rr.Code != tc.want {
			t.Fatalf("POST /migrate %v: %d, want %d (%s)", tc.form, rr.Code, tc.want, rr.Body.String())
		}
	}
	if len(fm.requested) != 1 || fm.requested[0] != [2]string{"hot", "bravo"} {
		t.Fatalf("migrations requested: %v", fm.requested)
	}

	fm.migrateErr = errors.New("leader unreachable")
	if rr := postForm(t, mux, "/migrate", url.Values{"component": {"hot"}, "dest": {"bravo"}}); rr.Code != http.StatusBadGateway {
		t.Fatalf("failed forward: %d", rr.Code)
	}
}

// TestSessionsMountedOnObsMux: service mode mounts the session API
// on the observability mux, with the API's own method and not-found
// handling intact behind the prefix.
func TestSessionsMountedOnObsMux(t *testing.T) {
	reg := metrics.NewRegistry()
	cat := service.NewCatalog(service.Config{Metrics: reg})
	defer cat.Close()
	mux := newObsMux(obsConfig{reg: reg, health: fakeHealth{}, catalog: cat})

	if rr := postForm(t, mux, "/sessions", url.Values{"id": {"s1"}}); rr.Code != http.StatusCreated {
		t.Fatalf("create via obs mux: %d %s", rr.Code, rr.Body.String())
	}
	rr, body := get(t, mux, "/sessions", nil)
	if rr.Code != http.StatusOK || len(body["sessions"].([]any)) != 1 {
		t.Fatalf("list via obs mux: %d %v", rr.Code, body)
	}
	if rr, _ := get(t, mux, "/sessions/ghost", nil); rr.Code != http.StatusNotFound {
		t.Fatalf("ghost session: %d", rr.Code)
	}
	req := httptest.NewRequest("PUT", "/sessions", nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("PUT /sessions: %d", rec.Code)
	}

	// The catalog's collector feeds the shared scrape: session labels
	// appear on the aggregated /metrics surface.
	rr, _ = get(t, mux, "/metrics", nil)
	if !strings.Contains(rr.Body.String(), `pia_service_sessions_live 1`) {
		t.Fatalf("scrape missing service gauges: %q", rr.Body.String())
	}
	if !strings.Contains(rr.Body.String(), `session="s1"`) {
		t.Fatalf("scrape missing tenant label: %q", rr.Body.String())
	}
}

// TestObsFlightAndWatchMounted: with a flight recorder and hub wired,
// the obs mux serves the post-mortem dump on /debug/flight and the
// SSE stream on /watch; without them both paths 404.
func TestObsFlightAndWatchMounted(t *testing.T) {
	reg := metrics.NewRegistry()
	rec := flight.New(8)
	rec.Record("session", "s1", "created", 0)
	hub := flight.NewHub()
	mux := newObsMux(obsConfig{reg: reg, health: fakeHealth{}, rec: rec, hub: hub})

	rr, body := get(t, mux, "/debug/flight", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /debug/flight: %d %s", rr.Code, rr.Body.String())
	}
	if tripped, ok := body["tripped"].(bool); !ok || tripped {
		t.Fatalf("dump tripped = %v, want false", body["tripped"])
	}
	if n, _ := body["recorded_total"].(float64); n != 1 {
		t.Fatalf("dump recorded_total = %v, want 1", body["recorded_total"])
	}

	// A /watch subscriber whose request is already cancelled gets the
	// hello frame and a clean stream end — enough to prove the SSE
	// endpoint is mounted without holding a live stream open.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", "/watch", nil).WithContext(ctx)
	wrr := httptest.NewRecorder()
	mux.ServeHTTP(wrr, req)
	if wrr.Code != http.StatusOK || !strings.Contains(wrr.Body.String(), "event: hello") {
		t.Fatalf("GET /watch: %d %q", wrr.Code, wrr.Body.String())
	}
	if ct := wrr.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("GET /watch content-type %q", ct)
	}

	// Without the flight stack the endpoints are simply not mounted.
	bare := newObsMux(obsConfig{reg: reg, health: fakeHealth{}})
	if rr, _ := get(t, bare, "/debug/flight", nil); rr.Code != http.StatusNotFound {
		t.Fatalf("bare /debug/flight: %d", rr.Code)
	}
	if rr, _ := get(t, bare, "/watch", nil); rr.Code != http.StatusNotFound {
		t.Fatalf("bare /watch: %d", rr.Code)
	}
}
