// piabench regenerates the paper's evaluation from the command line:
// Table 1 and the Fig. 1-6 scenarios, plus the ablations the design
// document calls out. Each experiment prints the rows the paper
// reports (or the structural facts a figure shows).
//
//	piabench -exp table1
//	piabench -exp chaos -seed 42
//	piabench -exp fig1|fig2|fig3|fig4|fig5|fig6
//	piabench -exp runlevel|policy|checkpoint|incremental|snapshot|memsync
//	piabench -exp all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"text/tabwriter"
	"time"

	pia "repro"
	"repro/internal/channel"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/vtime"
	"repro/internal/wubbleu"
)

// jsonOut, when non-empty, receives the Table 1 rows (including the
// coalesced remote row) as machine-readable JSON — the perf
// trajectory later changes are compared against.
var jsonOut string

// chaosSeed fixes the fault schedule of -exp chaos; the same seed
// reproduces the same drops, reorders and partition, frame for frame.
var chaosSeed int64

// timelineOut, when non-empty, makes -exp chaos (and -exp timeline)
// run the instrumented chaos leg and write its merged canonical
// Perfetto trace to this file.
var timelineOut string

// benchWorkers sizes the scheduler worker pool of every experiment
// that honours it (table1 and the parallel sweep's Table 1 legs).
var benchWorkers int

// benchOptimism, when > 0, overrides the Time Warp window (virtual
// ns) of the optimistic ablation's speculative legs.
var benchOptimism int64

// reportEvery, when > 0, prints one structured run-report line at
// that interval while a metrics-wired experiment leg is running.
var reportEvery time.Duration

// curReg is the registry of the experiment leg currently running —
// what the -report ticker snapshots. Each leg swaps in its own fresh
// registry so successive legs never stack collectors.
var curReg atomic.Pointer[pia.MetricsRegistry]

// collectMetrics reports whether experiment legs should wire a
// metrics registry: when the JSON output wants the unified metrics
// block, or the -report ticker needs something to read.
func collectMetrics() bool { return jsonOut != "" || reportEvery > 0 }

// metricsHooks returns the Table1Config wiring for metrics-aware
// runs: collection on, each leg's registry published to the ticker.
func metricsHooks(cfg *experiments.Table1Config) {
	if !collectMetrics() {
		return
	}
	cfg.CollectMetrics = true
	cfg.OnMetrics = func(r *pia.MetricsRegistry) { curReg.Store(r) }
}

// startReporter launches the -report ticker: one line per interval
// from the current leg's registry, restricted to the scheduler and
// wire series so the line stays tailable (the full set is in -json).
func startReporter() {
	if reportEvery <= 0 {
		return
	}
	t := time.NewTicker(reportEvery)
	go func() {
		for range t.C {
			r := curReg.Load()
			if r == nil {
				continue
			}
			var line []pia.MetricSample
			for _, s := range r.Snapshot() {
				if strings.HasPrefix(s.Name, "pia_sched_") || strings.HasPrefix(s.Name, "pia_wire_") {
					line = append(line, s)
				}
			}
			fmt.Println(metrics.ReportLine(time.Now(), line))
		}
	}()
}

func main() {
	exp := flag.String("exp", "table1", "experiment to run (table1, chaos, timeline, coalesce, wire, parallel, optimistic, migrate, sessions, obs, fig1..fig6, runlevel, policy, checkpoint, incremental, snapshot, memsync, all)")
	wireGob := flag.Bool("wire-gob", false, "force the gob fallback wire codec on every batch entry (the pre-zero-copy format)")
	pageKB := flag.Int("page", 66, "page size in KB for WubbleU experiments")
	flag.StringVar(&jsonOut, "json", "", "write Table 1 (or -exp parallel) results to this file as JSON (e.g. BENCH_1.json)")
	flag.Int64Var(&chaosSeed, "seed", 1, "fault-schedule seed for -exp chaos")
	flag.IntVar(&benchWorkers, "workers", 0, "scheduler worker-pool size per subsystem (0 = sequential)")
	flag.Int64Var(&benchOptimism, "optimism", 0, "override the Time Warp window in virtual ns for -exp optimistic (0 = experiment default)")
	flag.DurationVar(&reportEvery, "report", 0, "print a structured run-report line at this interval while legs run (0 = off)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the experiment to this file")
	flag.StringVar(&timelineOut, "timeline", "", "write the merged canonical Perfetto timeline of the chaos run to this file (with -exp chaos or -exp timeline)")
	flag.Parse()
	channel.SetForceGob(*wireGob)
	startReporter()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatalf("-memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("-memprofile: %v", err)
			}
		}()
	}

	runners := map[string]func(int) error{
		"table1":      table1,
		"chaos":       chaos,
		"timeline":    timelineExp,
		"coalesce":    coalesce,
		"wire":        wireExp,
		"parallel":    parallel,
		"optimistic":  optimisticExp,
		"migrate":     migrateExp,
		"sessions":    sessionsExp,
		"obs":         obsExp,
		"fig1":        fig1,
		"fig2":        fig2,
		"fig3":        fig3,
		"fig4":        fig4,
		"fig5":        fig5,
		"fig6":        fig6,
		"runlevel":    runlevel,
		"policy":      policy,
		"checkpoint":  checkpoint,
		"incremental": incremental,
		"snapshot":    snapshotScale,
		"memsync":     memsync,
	}
	if *exp == "all" {
		for _, name := range []string{"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
			"runlevel", "policy", "checkpoint", "incremental", "snapshot", "memsync"} {
			fmt.Printf("\n================ %s ================\n", name)
			if err := runners[name](*pageKB); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		log.Fatalf("unknown experiment %q", *exp)
	}
	if err := run(*pageKB); err != nil {
		log.Fatal(err)
	}
}

func tw() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func table1(pageKB int) error {
	fmt.Printf("Table 1: time and simulation overhead on several configurations of the WubbleU example (%d KB page)\n\n", pageKB)
	cfg := experiments.Table1Config{PageSize: pageKB * 1024, Images: 4, Workers: benchWorkers}
	metricsHooks(&cfg)
	rows, err := experiments.Table1(cfg)
	if err != nil {
		return err
	}
	// One extra row beyond the paper: the remote word level with
	// egress coalescing — same workload, batched wire frames.
	cfg.Coalesce = pia.DefaultCoalesce
	co, err := experiments.Remote(cfg, "wordLevel")
	if err != nil {
		return err
	}
	co.Location = "remote+coalesce"
	if rows[0].Wall > 0 {
		co.Overhead = float64(co.Wall) / float64(rows[0].Wall)
	}
	rows = append(rows, co)
	w := tw()
	fmt.Fprintln(w, "Location\tDetail level\tsimulation time\tvirtual load\tlink drives\twire frames\twire bytes\toverhead")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%v\t%v\t%d\t%d\t%d\t%.0fx\n", r.Location, r.Level, r.Wall, r.Virt, r.Drives, r.FramesOut, r.WireBytesOut, r.Overhead)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return writeJSON(cfg, rows)
}

// chaos runs the Table 1 remote word-level workload clean and then
// under seeded WAN faults with session recovery, and reports the
// paper-level invariant: identical virtual time and link drives, all
// the damage absorbed in wall clock.
func chaos(pageKB int) error {
	fmt.Printf("Chaos: remote word level under deterministic WAN faults (seed %d, %d KB page)\n\n", chaosSeed, pageKB)
	cfg := experiments.ChaosConfig{
		Table1Config: experiments.Table1Config{PageSize: pageKB * 1024, Images: 4},
		Seed:         chaosSeed,
	}
	clean, faulty, err := experiments.Chaos(cfg)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "mode\twall\tvirtual load\tlink drives\tfaults injected\tepoch deaths\tresumes\treplayed\trewinds")
	for _, r := range []experiments.ChaosRow{clean, faulty} {
		fmt.Fprintf(w, "%s\t%v\t%v\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.Mode, r.Wall, r.Virt, r.Drives, r.Injected(),
			r.Resil.EpochDeaths, r.Resil.Resumes, r.Resil.ReplayedFrames, r.Resil.Rewinds)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("\nresult invariant holds: virtual time %v and %d drives identical across legs\n", faulty.Virt, faulty.Drives)
	fmt.Printf("fault mix: %d dropped, %d duplicated, %d reordered, %d corrupted, %d partition cuts (schedule digests verified)\n",
		faulty.Faults.Dropped, faulty.Faults.Duplicated, faulty.Faults.Reordered, faulty.Faults.Corrupted, faulty.Faults.Cuts)
	if timelineOut != "" {
		return writeChaosTimeline(cfg)
	}
	return nil
}

// writeChaosTimeline runs the instrumented chaos leg (with the
// scripted rewind) and writes the merged canonical Perfetto trace.
func writeChaosTimeline(cfg experiments.ChaosConfig) error {
	res, err := experiments.ChaosTimeline(cfg)
	if err != nil {
		return err
	}
	if err := os.WriteFile(timelineOut, res.Trace, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s: %d canonical events, %d cross-node flows (%d paired deliveries), %d rewind marker(s) — open at ui.perfetto.dev\n",
		timelineOut, res.Canonical, res.Flows, res.Delivers, res.Rewinds)
	return nil
}

// timelineExp measures timeline overhead on the Table 1 remote
// word-level leg: same workload, recorders off and on; virtual results
// must be identical. With -timeline it also writes the merged chaos
// trace.
func timelineExp(pageKB int) error {
	fmt.Printf("Timeline overhead: remote word level, %d KB page, recorders off vs on\n\n", pageKB)
	cfg := experiments.Table1Config{PageSize: pageKB * 1024, Images: 4, Workers: benchWorkers}
	off, on, err := experiments.TimelineOverhead(cfg)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "Location\tsimulation time\tvirtual load\tlink drives\ttimeline events")
	for _, r := range []experiments.Table1Row{off, on} {
		fmt.Fprintf(w, "%s\t%v\t%v\t%d\t%d\n", r.Location, r.Wall, r.Virt, r.Drives, r.TimelineEvents)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if off.Wall > 0 {
		fmt.Printf("\nwall ratio on/off: %.3fx; virtual results bit-identical\n", float64(on.Wall)/float64(off.Wall))
	}
	if timelineOut != "" {
		return writeChaosTimeline(experiments.ChaosConfig{
			Table1Config: experiments.Table1Config{PageSize: pageKB * 1024, Images: 4},
			Seed:         chaosSeed,
		})
	}
	return nil
}

// coalesce runs the coalescing ablation alone: remote word level,
// frames and wall with and without batching on identical workloads.
func coalesce(pageKB int) error {
	fmt.Printf("Coalescing ablation: remote word level, %d KB page\n\n", pageKB)
	cfg := experiments.Table1Config{PageSize: pageKB * 1024, Images: 4}
	metricsHooks(&cfg)
	off, on, err := experiments.CoalescingAblation(cfg, "wordLevel")
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "Location\tsimulation time\tlink drives\twire frames\twire bytes")
	for _, r := range []experiments.Table1Row{off, on} {
		fmt.Fprintf(w, "%s\t%v\t%d\t%d\t%d\n", r.Location, r.Wall, r.Drives, r.FramesOut, r.WireBytesOut)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if on.FramesOut > 0 {
		fmt.Printf("\nframe reduction: %.1fx, wall: %v -> %v\n",
			float64(off.FramesOut)/float64(on.FramesOut), off.Wall, on.Wall)
	}
	return writeJSON(cfg, []experiments.Table1Row{off, on})
}

// wireExp runs the wire-codec ablation: the coalesced remote
// workload at word and packet level, gob fallback vs zero-copy binary
// codec, on identical workloads — plus the codec microbench
// (allocations per batch encoded/decoded with recycled buffers).
func wireExp(pageKB int) error {
	fmt.Printf("Wire codec ablation: coalesced remote legs, %d KB page, gob fallback vs zero-copy\n\n", pageKB)
	cfg := experiments.Table1Config{PageSize: pageKB * 1024, Images: 4}
	rows, err := experiments.WireAblation(cfg)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "Detail level\tcodec\tsimulation time\tlink drives\twire frames\twire bytes\tbytes/frame\tenc allocs/op\tdec allocs/op")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%v\t%d\t%d\t%d\t%.1f\t%.2f\t%.2f\n",
			r.Level, r.Codec, r.Wall, r.Drives, r.FramesOut, r.WireBytesOut, r.BytesPerFrame, r.EncodeAllocs, r.DecodeAllocs)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	for i := 0; i+1 < len(rows); i += 2 {
		gob, zc := rows[i], rows[i+1]
		if zc.Wall > 0 {
			fmt.Printf("\n%s: wall %v -> %v (%.2fx), virtual results bit-identical\n",
				gob.Level, gob.Wall, zc.Wall, float64(gob.Wall)/float64(zc.Wall))
		}
	}
	return writeWireJSON(cfg, rows)
}

// wireRow is the machine-readable form of one wire-ablation leg.
type wireRow struct {
	Level             string  `json:"level"`
	Codec             string  `json:"codec"`
	WallNS            int64   `json:"wall_ns"`
	VirtualNS         int64   `json:"virtual_ns"`
	LinkDrives        int     `json:"link_drives"`
	FramesOut         int64   `json:"frames_out"`
	WireBytesOut      int64   `json:"wire_bytes_out"`
	BytesPerFrame     float64 `json:"bytes_per_frame"`
	EncodeAllocsPerOp float64 `json:"encode_allocs_per_op"`
	DecodeAllocsPerOp float64 `json:"decode_allocs_per_op"`
}

func writeWireJSON(cfg experiments.Table1Config, rows []experiments.WireRow) error {
	if jsonOut == "" {
		return nil
	}
	out := struct {
		Experiment string    `json:"experiment"`
		PageBytes  int       `json:"page_bytes"`
		Images     int       `json:"images"`
		Rows       []wireRow `json:"rows"`
	}{Experiment: "wire", PageBytes: cfg.PageSize, Images: cfg.Images}
	for _, r := range rows {
		out.Rows = append(out.Rows, wireRow{
			Level:             r.Level,
			Codec:             r.Codec,
			WallNS:            r.Wall.Nanoseconds(),
			VirtualNS:         int64(r.Virt),
			LinkDrives:        r.Drives,
			FramesOut:         r.FramesOut,
			WireBytesOut:      r.WireBytesOut,
			BytesPerFrame:     r.BytesPerFrame,
			EncodeAllocsPerOp: r.EncodeAllocs,
			DecodeAllocsPerOp: r.DecodeAllocs,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", jsonOut)
	return nil
}

// parallel sweeps the safe-horizon worker pool over a fan-out
// workload whose services model wall-clock latency (remote probes),
// then cross-checks the Table 1 local word-level leg with 4 workers.
// Any divergence in virtual time, drive counts or the drive digest
// between a parallel leg and the sequential reference is an error.
func parallel(pageKB int) error {
	cfg := experiments.DefaultParallelConfig()
	cfg.PageKB = pageKB
	fmt.Printf("Parallel scheduler: %d services x %d jobs, %v service latency each\n\n",
		cfg.Fanout, cfg.Rounds, cfg.Service)
	rows, table, err := experiments.Parallel(cfg)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "mode\twall\tvirtual\tdrives\tparallel rounds\tdrive digest\tspeedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\t%v\t%d\t%d\t%016x\t%.2fx\n",
			r.Mode, r.Wall, r.Virt, r.Drives, r.ParRounds, r.Digest, r.Speedup)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("\nTable 1 cross-check (local, word level):")
	w = tw()
	fmt.Fprintln(w, "Location\tsimulation time\tvirtual load\tlink drives")
	for _, r := range table {
		fmt.Fprintf(w, "%s\t%v\t%v\t%d\n", r.Location, r.Wall, r.Virt, r.Drives)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("\nresult invariant holds: virtual results identical at every worker count")
	return writeParallelJSON(cfg, rows, table)
}

// parallelRow is the machine-readable form of one sweep leg.
type parallelRow struct {
	Mode      string  `json:"mode"`
	Workers   int     `json:"workers"`
	WallNS    int64   `json:"wall_ns"`
	VirtualNS int64   `json:"virtual_ns"`
	Drives    int64   `json:"drives"`
	ParRounds int64   `json:"parallel_rounds"`
	Digest    string  `json:"drive_digest"`
	Speedup   float64 `json:"speedup"`
}

func writeParallelJSON(cfg experiments.ParallelConfig, rows []experiments.ParallelRow, table []experiments.Table1Row) error {
	if jsonOut == "" {
		return nil
	}
	out := struct {
		Experiment string        `json:"experiment"`
		Fanout     int           `json:"fanout"`
		Rounds     int           `json:"rounds"`
		ServiceNS  int64         `json:"service_ns"`
		Rows       []parallelRow `json:"rows"`
		Table      []benchRow    `json:"table1_local"`
	}{Experiment: "parallel", Fanout: cfg.Fanout, Rounds: cfg.Rounds, ServiceNS: cfg.Service.Nanoseconds()}
	for _, r := range rows {
		out.Rows = append(out.Rows, parallelRow{
			Mode:      r.Mode,
			Workers:   r.Workers,
			WallNS:    r.Wall.Nanoseconds(),
			VirtualNS: int64(r.Virt),
			Drives:    r.Drives,
			ParRounds: r.ParRounds,
			Digest:    fmt.Sprintf("%016x", r.Digest),
			Speedup:   r.Speedup,
		})
	}
	for _, r := range table {
		out.Table = append(out.Table, benchRow{
			Location:   r.Location,
			Level:      r.Level,
			WallNS:     r.Wall.Nanoseconds(),
			VirtualNS:  int64(r.Virt),
			LinkDrives: r.Drives,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", jsonOut)
	return nil
}

// sessionsExp benchmarks the multi-tenant session service: steady
// legs holding the full tenant population live at each shared-pool
// size, a concurrent create/run/stop churn leg, and the
// admission/eviction determinism probes. Per-session drive digests
// are asserted bit-identical to isolated single-session runs inside
// experiments.Sessions; any divergence fails the run. -workers, when
// set, replaces the default 0/2/4 steady sweep with {0, workers}.
func sessionsExp(int) error {
	cfg := experiments.DefaultSessionsConfig()
	if benchWorkers > 0 {
		cfg.Workers = []int{0, benchWorkers}
	}
	fmt.Printf("Multi-tenant session service: %d tenants steady-state, %d churned by %d clients (fan %dx%d)\n\n",
		cfg.Sessions, cfg.Churn, cfg.Clients, cfg.Fanout, cfg.Rounds)
	rows, err := experiments.Sessions(cfg)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "leg\tworkers\tsessions\tpeak live\twall\tsessions/sec\tdigests\trejected\tevicted")
	for _, r := range rows {
		rate := ""
		if r.SessionsPerSec > 0 {
			rate = fmt.Sprintf("%.0f", r.SessionsPerSec)
		}
		ok := "identical"
		if !r.DigestsOK {
			ok = "DIVERGED"
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%v\t%s\t%s\t%d\t%d\n",
			r.Leg, r.Workers, r.Sessions, r.PeakLive, r.Wall.Round(time.Millisecond), rate, ok, r.Rejected, r.Evicted)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("\nresult invariant holds: per-session digests identical to isolated runs at every worker count")
	return writeSessionsJSON(cfg, rows)
}

// sessionsRow is the machine-readable form of one sessions leg.
type sessionsRow struct {
	Leg            string  `json:"leg"`
	Workers        int     `json:"workers"`
	Sessions       int     `json:"sessions"`
	PeakLive       int     `json:"peak_live"`
	WallNS         int64   `json:"wall_ns"`
	SessionsPerSec float64 `json:"sessions_per_sec,omitempty"`
	Steps          int64   `json:"steps,omitempty"`
	DigestsOK      bool    `json:"digests_identical"`
	Rejected       int64   `json:"rejected,omitempty"`
	Evicted        int64   `json:"evicted,omitempty"`
	EvictChunk     int     `json:"evict_chunk,omitempty"`
	EvictSteps     int64   `json:"evict_steps,omitempty"`
}

func writeSessionsJSON(cfg experiments.SessionsConfig, rows []experiments.SessionsRow) error {
	if jsonOut == "" {
		return nil
	}
	out := struct {
		Experiment string        `json:"experiment"`
		Sessions   int           `json:"sessions"`
		Churn      int           `json:"churn"`
		Clients    int           `json:"clients"`
		Fanout     int           `json:"fanout"`
		Rounds     int           `json:"rounds"`
		Seeds      int           `json:"seeds"`
		Rows       []sessionsRow `json:"rows"`
	}{Experiment: "sessions", Sessions: cfg.Sessions, Churn: cfg.Churn, Clients: cfg.Clients,
		Fanout: cfg.Fanout, Rounds: cfg.Rounds, Seeds: cfg.Seeds}
	for _, r := range rows {
		out.Rows = append(out.Rows, sessionsRow{
			Leg:            r.Leg,
			Workers:        r.Workers,
			Sessions:       r.Sessions,
			PeakLive:       r.PeakLive,
			WallNS:         r.Wall.Nanoseconds(),
			SessionsPerSec: r.SessionsPerSec,
			Steps:          r.Steps,
			DigestsOK:      r.DigestsOK,
			Rejected:       r.Rejected,
			Evicted:        r.Evicted,
			EvictChunk:     r.EvictChunk,
			EvictSteps:     r.EvictSteps,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", jsonOut)
	return nil
}

// obsExp measures the observability overhead: the remote word-level
// leg and a steady multi-tenant sessions leg, each bare and then with
// the full flight stack attached (flight recorder, sampler, a live
// SSE /watch subscriber over real HTTP, per-component cost
// attribution). Virtual results must not move; experiments.Obs errors
// on any divergence. -workers sizes the remote leg's pools.
func obsExp(pageKB int) error {
	cfg := experiments.DefaultObsConfig()
	cfg.Table1 = experiments.Table1Config{PageSize: pageKB * 1024, Images: 4, Workers: benchWorkers}
	fmt.Printf("Observability overhead: flight recorder + /watch streaming + cost attribution, off vs on (%d KB page, %d tenants)\n\n",
		pageKB, cfg.Sessions.Sessions)
	rows, err := experiments.Obs(cfg)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "leg\tworkers\twall off\twall on\toverhead\tdigests\tframes streamed\tring recorded\tdropped")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%v\t%v\t%+.1f%%\t%s\t%d\t%d\t%d\n",
			r.Leg, r.Workers, r.OffWall.Round(time.Millisecond), r.OnWall.Round(time.Millisecond),
			r.OverheadPct, matchWord(r.DigestsOK), r.EventsStreamed, r.RingRecorded, r.Dropped)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("\nresult invariant holds: virtual results bit-identical with observers attached")
	return writeObsJSON(cfg, rows)
}

// obsRow is the machine-readable form of one observability leg.
type obsRow struct {
	Leg            string  `json:"leg"`
	Workers        int     `json:"workers"`
	OffWallNS      int64   `json:"off_wall_ns"`
	OnWallNS       int64   `json:"on_wall_ns"`
	OverheadPct    float64 `json:"overhead_pct"`
	DigestsOK      bool    `json:"digests_identical"`
	VirtualNS      int64   `json:"virtual_ns,omitempty"`
	LinkDrives     int     `json:"link_drives,omitempty"`
	Steps          int64   `json:"steps,omitempty"`
	EventsStreamed uint64  `json:"frames_streamed"`
	RingRecorded   uint64  `json:"ring_recorded"`
	Dropped        uint64  `json:"subscribers_dropped"`
}

func writeObsJSON(cfg experiments.ObsConfig, rows []experiments.ObsRow) error {
	if jsonOut == "" {
		return nil
	}
	out := struct {
		Experiment      string   `json:"experiment"`
		PageBytes       int      `json:"page_bytes"`
		Sessions        int      `json:"sessions"`
		Runs            int      `json:"runs"`
		WatchIntervalNS int64    `json:"watch_interval_ns"`
		AttributionTopN int      `json:"attribution_top_n"`
		Rows            []obsRow `json:"rows"`
	}{Experiment: "obs", PageBytes: cfg.Table1.PageSize, Sessions: cfg.Sessions.Sessions,
		Runs: cfg.Runs, WatchIntervalNS: cfg.WatchInterval.Nanoseconds(), AttributionTopN: cfg.TopN}
	for _, r := range rows {
		out.Rows = append(out.Rows, obsRow{
			Leg:            r.Leg,
			Workers:        r.Workers,
			OffWallNS:      r.OffWall.Nanoseconds(),
			OnWallNS:       r.OnWall.Nanoseconds(),
			OverheadPct:    r.OverheadPct,
			DigestsOK:      r.DigestsOK,
			VirtualNS:      int64(r.Virt),
			LinkDrives:     r.Drives,
			Steps:          r.Steps,
			EventsStreamed: r.EventsStreamed,
			RingRecorded:   r.RingRecorded,
			Dropped:        r.Dropped,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", jsonOut)
	return nil
}

// optimisticExp runs the Time Warp ablation: lookahead (high, low,
// zero probe-bus delay) crossed with scheduling mode (conservative vs
// optimistic) and worker-pool size over a fan-out probe workload whose
// services model wall-clock latency. Every leg must match its
// lookahead's sequential reference bit-for-bit; the headline is the
// optimistic-vs-conservative wall-clock ratio per leg — near 1x when
// lookahead already fills the rounds, the worker count when it
// doesn't.
func optimisticExp(int) error {
	cfg := experiments.DefaultOptimisticConfig()
	if benchOptimism > 0 {
		cfg.Window = vtime.Duration(benchOptimism)
	}
	fmt.Printf("Optimistic scheduler: %d probe services x %d batches, %v wall latency per job, window %dns\n\n",
		cfg.Fanout, cfg.Rounds, cfg.Service, int64(cfg.Window))
	rows, err := experiments.Optimistic(cfg)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "lookahead\tmode\tworkers\twall\tpar rounds\tspec rounds\tcommits\trollbacks\tcommit ratio\tspeedup\tvs conservative")
	for _, r := range rows {
		vs := ""
		if r.VsCons > 0 {
			vs = fmt.Sprintf("%.2fx", r.VsCons)
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%v\t%d\t%d\t%d\t%d\t%.2f\t%.2fx\t%s\n",
			r.Lookahead, r.Mode, r.Workers, r.Wall, r.ParRounds, r.SpecRounds,
			r.SpecCommits, r.Rollbacks, r.CommitRatio, r.Speedup, vs)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("\nresult invariant holds: virtual results identical across mode, workers and window")
	return writeOptimisticJSON(cfg, rows)
}

// optimisticRow is the machine-readable form of one ablation leg.
type optimisticRow struct {
	Lookahead   string  `json:"lookahead"`
	Mode        string  `json:"mode"`
	Workers     int     `json:"workers"`
	WallNS      int64   `json:"wall_ns"`
	VirtualNS   int64   `json:"virtual_ns"`
	Drives      int64   `json:"drives"`
	ParRounds   int64   `json:"parallel_rounds"`
	SpecRounds  int64   `json:"spec_rounds"`
	SpecCommits int64   `json:"spec_commits"`
	Rollbacks   int64   `json:"rollbacks"`
	RolledBack  int64   `json:"rolled_back_events"`
	CommitRatio float64 `json:"commit_ratio"`
	Digest      string  `json:"drive_digest"`
	Speedup     float64 `json:"speedup_vs_sequential"`
	VsCons      float64 `json:"speedup_vs_conservative,omitempty"`
}

func writeOptimisticJSON(cfg experiments.OptimisticConfig, rows []experiments.OptimisticRow) error {
	if jsonOut == "" {
		return nil
	}
	out := struct {
		Experiment string          `json:"experiment"`
		Fanout     int             `json:"fanout"`
		Rounds     int             `json:"rounds"`
		ServiceNS  int64           `json:"service_ns"`
		WindowNS   int64           `json:"window_ns"`
		Rows       []optimisticRow `json:"rows"`
	}{Experiment: "optimistic", Fanout: cfg.Fanout, Rounds: cfg.Rounds,
		ServiceNS: cfg.Service.Nanoseconds(), WindowNS: int64(cfg.Window)}
	for _, r := range rows {
		out.Rows = append(out.Rows, optimisticRow{
			Lookahead:   r.Lookahead,
			Mode:        r.Mode,
			Workers:     r.Workers,
			WallNS:      r.Wall.Nanoseconds(),
			VirtualNS:   int64(r.Virt),
			Drives:      r.Drives,
			ParRounds:   r.ParRounds,
			SpecRounds:  r.SpecRounds,
			SpecCommits: r.SpecCommits,
			Rollbacks:   r.Rollbacks,
			RolledBack:  r.RolledBack,
			CommitRatio: r.CommitRatio,
			Digest:      fmt.Sprintf("%016x", r.Digest),
			Speedup:     r.Speedup,
			VsCons:      r.VsCons,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", jsonOut)
	return nil
}

// migrateExp runs the live-migration experiment: the 3-member mesh
// demo workload stationary, with a mid-run migration of the hot
// component, and with the migration under seeded WAN faults. The
// headline is zero virtual downtime and bit-identical drive digests
// across all legs; the measured costs are the migration's wall-clock
// span and the placement-epoch propagation latency.
func migrateExp(int) error {
	fmt.Printf("Live migration: 3-member mesh, hot component moved mid-run (chaos seed %d)\n\n", chaosSeed)
	cfg := experiments.MigrateConfig{Seed: chaosSeed}
	rows, err := experiments.Migrate(cfg)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "mode\twall\trounds\treissues\tmigrations\tepoch\tvirtual downtime\tmigration wall\tepoch propagation\tdigests")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\t%d\t%d\t%d\t%d\t%dns\t%v\t%v\t%s\n",
			r.Mode, r.Wall.Round(time.Millisecond), r.Rounds, r.Reissues, r.Migrations, r.Epoch,
			int64(r.VirtualDowntime), r.MigrationWall, r.EpochPropagation, matchWord(r.DigestsMatch))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("\nresult invariant holds: %d drive digests bit-identical across stationary, migrated and chaos legs\n",
		len(rows[0].Digests))
	return writeMigrateJSON(cfg, rows)
}

func matchWord(ok bool) string {
	if ok {
		return "identical"
	}
	return "DIVERGED"
}

// migrateRow is the machine-readable form of one migration leg.
type migrateRow struct {
	Mode               string            `json:"mode"`
	WallNS             int64             `json:"wall_ns"`
	Rounds             int64             `json:"rounds"`
	Reissues           int64             `json:"reissues"`
	Migrations         int64             `json:"migrations"`
	Epoch              uint64            `json:"epoch"`
	VirtualDowntimeNS  int64             `json:"virtual_downtime_ns"`
	MigrationWallNS    int64             `json:"migration_wall_ns"`
	EpochPropagationNS int64             `json:"epoch_propagation_ns"`
	DigestsMatch       bool              `json:"digests_match"`
	Digests            map[string]string `json:"digests"`
}

func writeMigrateJSON(cfg experiments.MigrateConfig, rows []experiments.MigrateRow) error {
	if jsonOut == "" {
		return nil
	}
	out := struct {
		Experiment string       `json:"experiment"`
		Seed       int64        `json:"seed"`
		Rows       []migrateRow `json:"rows"`
	}{Experiment: "migrate", Seed: cfg.Seed}
	for _, r := range rows {
		jr := migrateRow{
			Mode:               r.Mode,
			WallNS:             r.Wall.Nanoseconds(),
			Rounds:             r.Rounds,
			Reissues:           r.Reissues,
			Migrations:         r.Migrations,
			Epoch:              r.Epoch,
			VirtualDowntimeNS:  int64(r.VirtualDowntime),
			MigrationWallNS:    r.MigrationWall.Nanoseconds(),
			EpochPropagationNS: r.EpochPropagation.Nanoseconds(),
			DigestsMatch:       r.DigestsMatch,
			Digests:            map[string]string{},
		}
		for _, comp := range experiments.DigestComponents(r.Digests) {
			jr.Digests[comp] = fmt.Sprintf("%016x", r.Digests[comp])
		}
		out.Rows = append(out.Rows, jr)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", jsonOut)
	return nil
}

// benchRow is the machine-readable form of one Table 1 row.
type benchRow struct {
	Location     string  `json:"location"`
	Level        string  `json:"level"`
	WallNS       int64   `json:"wall_ns"`
	VirtualNS    int64   `json:"virtual_ns"`
	LinkDrives   int     `json:"link_drives"`
	FramesOut    int64   `json:"frames_out"`
	WireBytesOut int64   `json:"wire_bytes_out"`
	Overhead     float64 `json:"overhead"`
}

func writeJSON(cfg experiments.Table1Config, rows []experiments.Table1Row) error {
	if jsonOut == "" {
		return nil
	}
	out := struct {
		Experiment string     `json:"experiment"`
		PageBytes  int        `json:"page_bytes"`
		Images     int        `json:"images"`
		Rows       []benchRow `json:"rows"`
		// Metrics is the unified metrics block: the full registry
		// snapshot of the last metrics-wired leg (scheduler counters
		// and lag gauges, channel endpoints, wire conns, fault links,
		// sessions).
		Metrics []pia.MetricSample `json:"metrics,omitempty"`
	}{Experiment: "table1", PageBytes: cfg.PageSize, Images: cfg.Images}
	for _, r := range rows {
		if r.Metrics != nil {
			out.Metrics = r.Metrics
		}
	}
	for _, r := range rows {
		out.Rows = append(out.Rows, benchRow{
			Location:     r.Location,
			Level:        r.Level,
			WallNS:       r.Wall.Nanoseconds(),
			VirtualNS:    int64(r.Virt),
			LinkDrives:   r.Drives,
			FramesOut:    r.FramesOut,
			WireBytesOut: r.WireBytesOut,
			Overhead:     r.Overhead,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", jsonOut)
	return nil
}

func fig1(int) error {
	fmt.Println("Fig 1: several Pia nodes connected through the network —")
	fmt.Println("two subsystem nodes over TCP plus a remote hardware connection.")
	res, err := experiments.Fig1()
	if err != nil {
		return err
	}
	fmt.Printf("  page loads completed: %d\n", res.Loads)
	fmt.Printf("  interrupts forwarded from remote hardware: %d\n", res.HWInterrupts)
	fmt.Printf("  wall clock: %v\n", res.Wall)
	return nil
}

func fig2(int) error {
	fmt.Println("Fig 2: a net split across two subsystems gets hidden ports owned by channel components.")
	splits, err := experiments.Fig2()
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "net\tcrossing\tfragments")
	for _, s := range splits {
		fmt.Fprintf(w, "%s\t%v\t%v\n", s.Net, s.Crossing, s.Fragments)
	}
	return w.Flush()
}

func fig3(int) error {
	fmt.Println("Fig 3: Subsystem 1 must stall to maintain continuous consistency (or run optimistically and restore).")
	rows, err := experiments.Fig3(50, 20000)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "policy\twall\tdelivered\tstalls\trestores\tstragglers")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\t%d\t%d\t%d\t%d\n", r.Policy, r.Wall, r.Delivered, r.Stalls, r.Restores, r.Stragglers)
	}
	return w.Flush()
}

func fig4(int) error {
	fmt.Println("Fig 4: SS1 obtains safe times from both SS2 and SS3 before advancing.")
	res, err := experiments.Fig4(20)
	if err != nil {
		return err
	}
	fmt.Printf("  asks to SS2: %d (grants back: %d)\n", res.AsksToSS2, res.GrantsFromSS2)
	fmt.Printf("  asks to SS3: %d (grants back: %d)\n", res.AsksToSS3, res.GrantsFromSS3)
	fmt.Printf("  deliveries: %d, causality violations: %v\n", res.Delivered, res.Violations)
	return nil
}

func fig5(int) error {
	fmt.Println("Fig 5: the WubbleU communication flow graph (module -> module over net).")
	w := tw()
	fmt.Fprintln(w, "net\tendpoints")
	for net, ends := range wubbleu.CommunicationGraph() {
		fmt.Fprintf(w, "%s\t%s <-> %s\n", net, ends[0], ends[1])
	}
	return w.Flush()
}

func fig6(pageKB int) error {
	fmt.Println("Fig 6: the studied architecture — all processes on the CPU except the")
	fmt.Println("network interface on the cellular ASIC; its simulation topology places")
	fmt.Println("the ASIC (and the server behind the wireless link) on the remote subsystem:")
	pl := wubbleu.RemotePlacement()
	fmt.Printf("  CPU subsystem    %q: ui, recog, browser, cache, jpeg\n", pl.CPU)
	fmt.Printf("  remote subsystem %q: asic (network interface, DMA), server\n", pl.Modem)
	row, err := experiments.Remote(experiments.Table1Config{PageSize: pageKB * 1024, Images: 4}, "packetLevel")
	if err != nil {
		return err
	}
	fmt.Printf("  smoke run (remote, packet): %v wall, %v virtual\n", row.Wall, row.Virt)
	return nil
}

func runlevel(pageKB int) error {
	fmt.Println("Dynamic detail switching: fixed word vs fixed packet vs switchpoint mid-run (2 loads).")
	rows, err := experiments.RunlevelSwitch(pageKB * 1024)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "mode\twall\tlink drives")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\t%d\n", r.Mode, r.Wall, r.Drives)
	}
	return w.Flush()
}

func policy(int) error {
	fmt.Println("Channel policy sweep: conservative vs optimistic across communication densities.")
	rows, err := experiments.PolicySweep(50, 20000, []vtime.Duration{20, 200, 2000})
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "period\tpolicy\twall\tstalls\trestores\tstragglers")
	for _, r := range rows {
		fmt.Fprintf(w, "%v\t%s\t%v\t%d\t%d\t%d\n", r.Period, r.Policy, r.Wall, r.Stalls, r.Restores, r.Stragglers)
	}
	return w.Flush()
}

func checkpoint(int) error {
	fmt.Println("Checkpoint interval vs rollback replay cost.")
	rows, err := experiments.CheckpointInterval(20000, []vtime.Duration{10, 100, 1000, 10000})
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "interval\tcheckpoints\treplay steps\twall")
	for _, r := range rows {
		fmt.Fprintf(w, "%v\t%d\t%d\t%v\n", r.Interval, r.Checkpoints, r.ReplaySteps, r.Wall)
	}
	return w.Flush()
}

func incremental(int) error {
	fmt.Println("Full vs incremental checkpoints (the paper's future work).")
	rows, err := experiments.IncrementalCheckpoint(256, 20)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "mode\tcheckpoints\ttotal bytes")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\n", r.Mode, r.Checkpoints, r.TotalBytes)
	}
	return w.Flush()
}

func snapshotScale(int) error {
	fmt.Println("Chandy-Lamport snapshot completion vs subsystem count.")
	rows, err := experiments.SnapshotScale([]int{2, 4, 8, 16})
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "subsystems\twall\tin-flight captured")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%v\t%d\n", r.Subsystems, r.Wall, r.InFlight)
	}
	return w.Flush()
}

func memsync(int) error {
	fmt.Println("Interrupt consistency: static synchronous marking vs optimistic with rewind.")
	rows, err := experiments.Memsync(2000, 10)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "mode\tviolations\trestores\tdynamically marked\twall")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%v\n", r.Mode, r.Violations, r.Restores, r.SyncMarked, r.Wall)
	}
	return w.Flush()
}
