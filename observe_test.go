package pia

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/signal"
)

func TestPublicTraceAndDebug(t *testing.T) {
	src := &pingState{N: 6}
	dst := &pongState{}
	sim, err := NewSystem("obs").
		AddComponent("src", "main", src, "out").
		AddComponent("dst", "main", dst, "in").
		AddNet("wire", 1, "src.out", "dst.in").
		BuildLocal()
	if err != nil {
		t.Fatal(err)
	}
	rec := NewTraceRecorder(0)
	rec.Attach(sim.Subsystem("main"))
	dbg := NewDebugger(sim.Subsystem("main"))
	bp, err := dbg.AddBreak("src >= 30")
	if err != nil {
		t.Fatal(err)
	}

	hit, err := dbg.Continue(Infinity)
	if err != nil {
		t.Fatal(err)
	}
	if hit == nil || hit.Break != bp {
		t.Fatalf("hit %+v", hit)
	}
	comps := dbg.Components()
	if len(comps) != 2 {
		t.Fatalf("components %+v", comps)
	}
	if hit2, err := dbg.Continue(Infinity); err != nil || hit2 != nil {
		t.Fatalf("resume: %+v %v", hit2, err)
	}
	if len(dst.Got) != 6 {
		t.Fatalf("deliveries %v", dst.Got)
	}
	var vcd bytes.Buffer
	if err := rec.WriteVCD(&vcd); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vcd.String(), "$enddefinitions") {
		t.Fatal("VCD export broken through the public API")
	}
}

func TestPublicISS(t *testing.T) {
	prog, err := AssembleISS(`
		li r1, 21
		add r2, r1, r1
		out r2
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(DisassembleISS(prog)) != 4 {
		t.Fatal("disassembly length wrong")
	}
	cpu := &ISSCPU{Prog: prog}
	dst := &pongStateWord{}
	sim, err := NewSystem("puba").
		AddComponent("cpu", "main", cpu, "out", "in").
		AddComponent("dst", "main", dst, "in").
		AddNet("bus", 0, "cpu.out", "dst.in").
		BuildLocal()
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(Infinity); err != nil {
		t.Fatal(err)
	}
	if len(dst.Got) != 1 || dst.Got[0] != 42 {
		t.Fatalf("ISS output %v", dst.Got)
	}
}

// pongStateWord collects signal.Word values as uint32.
type pongStateWord struct {
	Got []uint32
}

func (s *pongStateWord) Run(p *Proc) error {
	for {
		m, ok := p.Recv("in")
		if !ok {
			return nil
		}
		if w, isWord := m.Value.(signal.Word); isWord {
			s.Got = append(s.Got, uint32(w))
		}
	}
}

func (s *pongStateWord) SaveState() ([]byte, error)  { return GobSave(s) }
func (s *pongStateWord) RestoreState(b []byte) error { return GobRestore(s, b) }
