package pia

import (
	"repro/internal/hwstub"
	"repro/internal/loader"
	"repro/internal/proto"
	"repro/internal/timing"
)

// Hardware-in-the-loop surface (package hwstub re-exports).
type (
	// HWDevice is the hardware stub contract (§2.3): set/read time,
	// run for a window, stall, buffer interrupts, access registers.
	HWDevice = hwstub.Device
	// HWInterrupt is an interrupt buffered by hardware.
	HWInterrupt = hwstub.Interrupt
	// SimBoard is a simulated Pamette-style board.
	SimBoard = hwstub.SimBoard
	// HWAdapter patches a device into a simulation as a component.
	HWAdapter = hwstub.Adapter
	// HWLogic programs a SimBoard.
	HWLogic = hwstub.Logic
)

// NewSimBoard creates a simulated board with the given logic.
func NewSimBoard(logic HWLogic) *SimBoard { return hwstub.NewSimBoard(logic) }

// ServeHardware publishes a device on a TCP hardware server and
// returns the server handle and bound address.
func ServeHardware(dev HWDevice, addr string) (*hwstub.Server, string, error) {
	return hwstub.Serve(dev, addr)
}

// DialHardware connects to a remote hardware server.
func DialHardware(addr string) (*hwstub.RemoteDevice, error) { return hwstub.Dial(addr) }

// Protocol library surface (package proto re-exports).
const (
	// LevelHardware renders transfers as individual bus cycles.
	LevelHardware = proto.LevelHardware
	// LevelWord is the paper's word passage (4-byte words).
	LevelWord = proto.LevelWord
	// LevelPacket is the paper's packet passage (1 KB packets).
	LevelPacket = proto.LevelPacket
)

type (
	// ProtoConfig prices a transfer's units.
	ProtoConfig = proto.Config
	// Assembler reassembles transfers at any detail level.
	Assembler = proto.Assembler
)

// DefaultProtoConfig matches the paper's experiment.
var DefaultProtoConfig = proto.DefaultConfig

// SendMessage transfers a payload at the given detail level.
func SendMessage(p *Proc, port string, payload []byte, level string, cfg ProtoConfig) int {
	return proto.SendMessage(p, port, payload, level, cfg)
}

// ReceiveMessage assembles one complete message from a port.
func ReceiveMessage(p *Proc, port string, a *Assembler) ([]byte, bool, error) {
	return proto.ReceiveMessage(p, port, a)
}

// NewAssembler creates an idle assembler.
func NewAssembler() *Assembler { return proto.NewAssembler() }

// Timing estimation surface (package timing re-exports).
type (
	// TimingModel characterizes a processor.
	TimingModel = timing.Model
	// TimingBlock is a basic block's instruction mix.
	TimingBlock = timing.Block
	// Estimator charges basic-block costs against local time.
	Estimator = timing.Estimator
)

// Predefined processor models.
var (
	ModelI960         = timing.I960
	ModelEmbeddedCPU  = timing.EmbeddedCPU
	ModelCellularASIC = timing.CellularASIC
	ModelServerCPU    = timing.ServerCPU
)

// NewEstimator builds an estimator for a model.
func NewEstimator(m *TimingModel) (*Estimator, error) { return timing.NewEstimator(m) }

// Component loading surface (package loader re-exports).
type (
	// Registry resolves component names to factories (the "class
	// loader").
	Registry = loader.Registry
	// Factory builds a behaviour instance.
	Factory = loader.Factory
)

// NewRegistry creates an empty component registry.
func NewRegistry() *Registry { return loader.NewRegistry() }
