// Benchmarks regenerating the paper's evaluation: one benchmark per
// Table 1 row and per figure scenario, plus the ablations DESIGN.md
// calls out. Run them all with
//
//	go test -bench=. -benchmem
//
// Absolute numbers will not match a 1998 testbed (Java RMI between
// 200 MHz workstations); the shape — who wins, by what factor — is
// what these reproduce. cmd/piabench prints the same data as tables.
package pia_test

import (
	"testing"

	pia "repro"
	"repro/internal/experiments"
	"repro/internal/vtime"
)

// benchPage keeps the full paper-size page for Table 1 rows.
var benchPage = experiments.Table1Config{PageSize: 66 * 1024, Images: 4}

func reportRow(b *testing.B, row experiments.Table1Row, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(row.Wall.Nanoseconds()), "wall-ns/load")
	b.ReportMetric(float64(row.Virt), "virtual-ns/load")
	b.ReportMetric(float64(row.Drives), "link-drives")
	if row.FramesOut > 0 {
		b.ReportMetric(float64(row.FramesOut), "wire-frames")
		b.ReportMetric(float64(row.WireBytesOut), "wire-bytes")
	}
}

func BenchmarkTable1_NativeHotJava(b *testing.B) {
	var last experiments.Table1Row
	var err error
	for i := 0; i < b.N; i++ {
		last, err = experiments.Native(benchPage)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRow(b, last, err)
}

func BenchmarkTable1_LocalWord(b *testing.B) {
	var last experiments.Table1Row
	var err error
	for i := 0; i < b.N; i++ {
		last, err = experiments.Local(benchPage, "wordLevel")
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRow(b, last, err)
}

func BenchmarkTable1_LocalPacket(b *testing.B) {
	var last experiments.Table1Row
	var err error
	for i := 0; i < b.N; i++ {
		last, err = experiments.Local(benchPage, "packetLevel")
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRow(b, last, err)
}

func BenchmarkTable1_RemoteWord(b *testing.B) {
	var last experiments.Table1Row
	var err error
	for i := 0; i < b.N; i++ {
		last, err = experiments.Remote(benchPage, "wordLevel")
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRow(b, last, err)
}

func BenchmarkTable1_RemoteWordCoalesced(b *testing.B) {
	page := benchPage
	page.Coalesce = pia.DefaultCoalesce
	var last experiments.Table1Row
	var err error
	for i := 0; i < b.N; i++ {
		last, err = experiments.Remote(page, "wordLevel")
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRow(b, last, err)
}

func BenchmarkTable1_RemotePacket(b *testing.B) {
	var last experiments.Table1Row
	var err error
	for i := 0; i < b.N; i++ {
		last, err = experiments.Remote(benchPage, "packetLevel")
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRow(b, last, err)
}

func BenchmarkFig1_MultiNodeWithRemoteHardware(b *testing.B) {
	var irqs int64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		irqs = res.HWInterrupts
	}
	b.ReportMetric(float64(irqs), "hw-interrupts")
}

func BenchmarkFig2_NetSplit(b *testing.B) {
	crossing := 0
	for i := 0; i < b.N; i++ {
		splits, err := experiments.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		crossing = 0
		for _, s := range splits {
			if s.Crossing {
				crossing++
			}
		}
	}
	b.ReportMetric(float64(crossing), "crossing-nets")
}

func BenchmarkFig3_StallVsOptimistic(b *testing.B) {
	var stalls, restores int64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig3(20, 5000)
		if err != nil {
			b.Fatal(err)
		}
		stalls = rows[0].Stalls
		restores = rows[1].Restores
	}
	b.ReportMetric(float64(stalls), "conservative-stalls")
	b.ReportMetric(float64(restores), "optimistic-restores")
}

func BenchmarkFig4_SafeTimes(b *testing.B) {
	var asks int64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(10)
		if err != nil {
			b.Fatal(err)
		}
		asks = res.AsksToSS2 + res.AsksToSS3
	}
	b.ReportMetric(float64(asks), "asks")
}

func BenchmarkFig5Fig6_WubbleUBuild(b *testing.B) {
	// Figs. 5 and 6 are structural: the module graph and its mapping
	// onto the remote architecture. The bench measures building it.
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(); err != nil { // builds the Fig 6 architecture
			b.Fatal(err)
		}
	}
}

func BenchmarkRunlevelSwitch(b *testing.B) {
	var rows []experiments.SwitchpointResult
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunlevelSwitch(16 * 1024)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Wall.Nanoseconds()), r.Mode+"-wall-ns")
	}
}

func BenchmarkChannelPolicy(b *testing.B) {
	var rows []experiments.PolicyRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.PolicySweep(20, 5000, []vtime.Duration{50, 1000})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		_ = r
	}
}

func BenchmarkCheckpointInterval(b *testing.B) {
	var rows []experiments.CheckpointRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.CheckpointInterval(5000, []vtime.Duration{10, 1000})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].ReplaySteps), "replay-steps-fine")
	b.ReportMetric(float64(rows[1].ReplaySteps), "replay-steps-coarse")
}

func BenchmarkIncrementalCheckpoint(b *testing.B) {
	var rows []experiments.IncrementalRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.IncrementalCheckpoint(128, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].TotalBytes), "full-bytes")
	b.ReportMetric(float64(rows[1].TotalBytes), "incremental-bytes")
}

func BenchmarkSnapshot(b *testing.B) {
	var rows []experiments.SnapshotRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.SnapshotScale([]int{4})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Wall.Nanoseconds()), "snapshot-wall-ns")
}

func BenchmarkMemsync(b *testing.B) {
	var rows []experiments.MemsyncRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Memsync(500, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[1].Violations), "violations")
	b.ReportMetric(float64(rows[1].Restores), "restores")
}
