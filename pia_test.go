package pia

import (
	"strings"
	"testing"
)

type pingState struct {
	Sent int
	N    int
}

func (s *pingState) Run(p *Proc) error {
	for s.Sent < s.N {
		p.Delay(10)
		p.Send("out", s.Sent)
		s.Sent++
	}
	return nil
}

func (s *pingState) SaveState() ([]byte, error)  { return GobSave(s) }
func (s *pingState) RestoreState(b []byte) error { return GobRestore(s, b) }

type pongState struct {
	Got []int
}

func (s *pongState) Run(p *Proc) error {
	for {
		m, ok := p.Recv("in")
		if !ok {
			return nil
		}
		s.Got = append(s.Got, m.Value.(int))
	}
}

func (s *pongState) SaveState() ([]byte, error)  { return GobSave(s) }
func (s *pongState) RestoreState(b []byte) error { return GobRestore(s, b) }

func TestBuildLocalSingleSubsystem(t *testing.T) {
	src := &pingState{N: 4}
	dst := &pongState{}
	b := NewSystem("single").
		AddComponent("src", "main", src, "out").
		AddComponent("dst", "main", dst, "in").
		AddNet("wire", 1, "src.out", "dst.in")
	sim, err := b.BuildLocal()
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(Infinity); err != nil {
		t.Fatal(err)
	}
	if len(dst.Got) != 4 {
		t.Fatalf("delivered %v", dst.Got)
	}
	if sim.Component("src") == nil || sim.Component("ghost") != nil {
		t.Fatal("Component lookup broken")
	}
	if got := sim.SubsystemNames(); len(got) != 1 || got[0] != "main" {
		t.Fatalf("SubsystemNames = %v", got)
	}
}

func TestBuildLocalSplitNet(t *testing.T) {
	src := &pingState{N: 6}
	dst := &pongState{}
	b := NewSystem("split").
		AddComponent("src", "ssA", src, "out").
		AddComponent("dst", "ssB", dst, "in").
		AddNet("wire", 0, "src.out", "dst.in").
		SetDefaultChannel(Conservative, LinkModel{Latency: Microseconds(1), PerMessage: 100})
	sim, err := b.BuildLocal()
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(Time(Seconds(1))); err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if len(dst.Got) != 6 {
		t.Fatalf("delivered %v across split net", dst.Got)
	}
	for i, v := range dst.Got {
		if v != i {
			t.Fatalf("order broken: %v", dst.Got)
		}
	}
	// The split created hidden ports on both fragments.
	for _, sub := range []string{"ssA", "ssB"} {
		n := sim.Subsystem(sub).Net("wire")
		if n == nil {
			t.Fatalf("no fragment of wire on %s", sub)
		}
		hidden := 0
		for _, p := range n.Ports() {
			if p.Hidden() {
				hidden++
			}
		}
		if hidden != 1 {
			t.Fatalf("%s fragment has %d hidden ports, want 1", sub, hidden)
		}
	}
}

func TestMultiSubsystemNeedsHorizon(t *testing.T) {
	b := NewSystem("x").
		AddComponent("a", "s1", &pingState{N: 1}, "out").
		AddComponent("b", "s2", &pongState{}, "in").
		AddNet("w", 0, "a.out", "b.in")
	sim, err := b.BuildLocal()
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Run(Infinity); err == nil {
		t.Fatal("Run(Infinity) on multi-subsystem accepted")
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		build func() *SystemBuilder
		want  string
	}{
		{func() *SystemBuilder {
			return NewSystem("e").AddComponent("", "s", &pongState{})
		}, "needs a name"},
		{func() *SystemBuilder {
			return NewSystem("e").AddComponent("a", "s", &pongState{}, "in").AddComponent("a", "s", &pongState{}, "in")
		}, "duplicate component"},
		{func() *SystemBuilder {
			return NewSystem("e").AddNet("n", 0, "nodot")
		}, "bad port reference"},
		{func() *SystemBuilder {
			return NewSystem("e").AddNet("n", 0, "ghost.p")
		}, "unknown component"},
		{func() *SystemBuilder {
			return NewSystem("e").AddComponent("a", "s", &pongState{}, "in").AddNet("n", 0, "a.nope")
		}, "unknown port"},
		{func() *SystemBuilder {
			return NewSystem("e").AddComponent("a", "s", &pongState{}, "in").
				AddNet("n", 0, "a.in").AddNet("n", 0, "a.in")
		}, "duplicate net"},
		{func() *SystemBuilder {
			return NewSystem("e").SetRunlevel("ghost", "x")
		}, "unknown component"},
	}
	for _, c := range cases {
		b := c.build()
		if b.Err() == nil {
			t.Errorf("builder accepted: want error containing %q", c.want)
			continue
		}
		if !strings.Contains(b.Err().Error(), c.want) {
			t.Errorf("error %q does not contain %q", b.Err(), c.want)
		}
		if _, err := b.BuildLocal(); err == nil {
			t.Error("BuildLocal ignored builder error")
		}
	}
}

func TestConservativeLookaheadValidated(t *testing.T) {
	b := NewSystem("zero").
		AddComponent("a", "s1", &pingState{N: 1}, "out").
		AddComponent("b", "s2", &pongState{}, "in").
		AddNet("w", 0, "a.out", "b.in").
		SetDefaultChannel(Conservative, LinkModel{})
	if _, err := b.BuildLocal(); err == nil {
		t.Fatal("zero-lookahead conservative channel accepted")
	}
}

func TestSetChannelOverride(t *testing.T) {
	src := &pingState{N: 2}
	dst := &pongState{}
	b := NewSystem("ovr").
		AddComponent("src", "ssA", src, "out").
		AddComponent("dst", "ssB", dst, "in").
		AddNet("w", 0, "src.out", "dst.in").
		SetDefaultChannel(Conservative, LinkModel{}). // invalid default...
		SetChannel("ssA", "ssB", Optimistic, LinkModel{Latency: 10})
	sim, err := b.BuildLocal() // ...made irrelevant by the override
	if err != nil {
		t.Fatal(err)
	}
	sim.Subsystems["ssB"].SetAutoCheckpoint(Microseconds(100))
	if err := sim.Run(Time(Seconds(1))); err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if len(dst.Got) != 2 {
		t.Fatalf("delivered %v", dst.Got)
	}
}

func TestSwitchpointViaPublicAPI(t *testing.T) {
	levels := map[string]bool{}
	observer := BehaviorFunc(func(p *Proc) error {
		for i := 0; i < 10; i++ {
			p.Delay(10)
			levels[p.Runlevel()] = true
		}
		return nil
	})
	b := NewSystem("sw").AddComponent("cpu", "main", observer)
	b.SetRunlevel("cpu", "word")
	sim, err := b.BuildLocal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Engines["main"].AddRule("when cpu >= 50: cpu->packet"); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(Infinity); err != nil {
		t.Fatal(err)
	}
	if !levels["word"] || !levels["packet"] {
		t.Fatalf("levels seen: %v", levels)
	}
}

func TestDurationHelpers(t *testing.T) {
	if Seconds(1) != 1_000_000_000 || Milliseconds(2) != 2_000_000 || Microseconds(3) != 3_000 {
		t.Fatal("duration helpers wrong")
	}
}
