// Package pia is the public API of the Pia geographically distributed
// co-simulation framework — a reproduction of Hines & Borriello,
// "A Geographically Distributed Framework for Embedded System Design
// and Validation" (DAC 1998).
//
// A system is described once, in the designer's view: components with
// ports, nets connecting them, and a placement of every component
// onto a named subsystem. The builder then realizes the description
// either locally (all subsystems in one process, bridged by in-memory
// channels) or across Pia nodes connected over TCP. Nets crossing
// subsystem boundaries are split automatically — each fragment gets a
// hidden port owned by a channel endpoint, exactly as in the paper —
// and virtual time is coordinated with conservative (safe-time) or
// optimistic (checkpoint/rollback) channels.
//
//	b := pia.NewSystem("demo")
//	b.AddComponent("cpu", "handheld", cpuBehavior, "bus")
//	b.AddComponent("modem", "basestation", modemBehavior, "bus")
//	b.AddNet("bus", 0, "cpu.bus", "modem.bus")
//	sim, err := b.BuildLocal()
//	err = sim.Run(pia.Seconds(1))
//
// The subpackages remain internal; everything a downstream user needs
// is re-exported here.
package pia

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/detail"
	"repro/internal/faultnet"
	"repro/internal/graph"
	"repro/internal/resilience"
	"repro/internal/snapshot"
	"repro/internal/timeline"
	"repro/internal/vtime"
)

// Re-exported core types: see the internal packages for full
// documentation.
type (
	// Proc is the execution context of a component behaviour.
	Proc = core.Proc
	// Msg is a value delivered to a port.
	Msg = core.Msg
	// Behavior is a component's functionality.
	Behavior = core.Behavior
	// BehaviorFunc adapts a function to Behavior.
	BehaviorFunc = core.BehaviorFunc
	// Reactor is the reactive-component pattern.
	Reactor = core.Reactor
	// StateSaver marks checkpointable behaviours.
	StateSaver = core.StateSaver
	// Subsystem is a scheduler plus a fragment of the design.
	Subsystem = core.Subsystem
	// CheckpointSet is a whole-subsystem checkpoint.
	CheckpointSet = core.CheckpointSet
	// Time is virtual time; Duration a span of it.
	Time = vtime.Time
	// Duration is a span of virtual time.
	Duration = vtime.Duration
	// Policy selects conservative or optimistic channels.
	Policy = channel.Policy
	// LinkModel prices traffic crossing a channel.
	LinkModel = channel.LinkModel
	// Switchpoint is a parsed runlevel switching rule.
	Switchpoint = detail.Switchpoint
	// Engine evaluates switchpoints for a subsystem.
	Engine = detail.Engine
	// Agent coordinates distributed snapshots.
	Agent = snapshot.Agent
)

// Re-exported constants and helpers.
const (
	// Infinity is later than every schedulable event.
	Infinity = vtime.Infinity
	// Conservative channels never violate causality.
	Conservative = channel.Conservative
	// Optimistic channels run ahead and roll back.
	Optimistic = channel.Optimistic
)

// React adapts a Reactor to a Behavior.
func React(r Reactor) Behavior { return core.React(r) }

// GobSave / GobRestore implement StateSaver for gob-encodable state.
func GobSave(v any) ([]byte, error)       { return core.GobSave(v) }
func GobRestore(v any, data []byte) error { return core.GobRestore(v, data) }

// Milliseconds, Microseconds and Seconds build virtual durations.
func Seconds(n int64) Duration      { return Duration(n) * vtime.Second }
func Milliseconds(n int64) Duration { return Duration(n) * vtime.Millisecond }
func Microseconds(n int64) Duration { return Duration(n) * vtime.Microsecond }

// Predefined link models.
var (
	LoopbackLink = channel.LoopbackLink
	LANLink      = channel.LANLink
	InternetLink = channel.InternetLink
)

// CoalesceConfig tunes egress message coalescing on cross-node
// channels; see channel.CoalesceConfig.
type CoalesceConfig = channel.CoalesceConfig

// DefaultCoalesce is the balanced coalescing policy.
var DefaultCoalesce = channel.DefaultCoalesce

// FaultConfig describes deterministic fault injection on cross-node
// links; see faultnet.Config. The zero value injects nothing.
type FaultConfig = faultnet.Config

// FaultPartition is one scripted partition/heal cut in a fault
// schedule; see faultnet.Partition.
type FaultPartition = faultnet.Partition

// FaultStats counts what one faulty link did to its traffic.
type FaultStats = faultnet.Stats

// ResilienceConfig tunes heartbeat liveness, reconnect backoff and
// session-resume retention on cross-node links; see resilience.Config.
// The zero value disables resilience (plain TCP).
type ResilienceConfig = resilience.Config

// ResilienceStats aggregates session-layer recovery counters.
type ResilienceStats = resilience.Stats

// DefaultResilience enables resilient sessions with a 1s heartbeat
// and the default backoff/retention policy.
var DefaultResilience = resilience.DefaultConfig

// ParsePartitions parses a scripted partition schedule written
// "atframe:healms[,atframe:healms...]", e.g. "40:30,200:15".
func ParsePartitions(s string) ([]FaultPartition, error) { return faultnet.ParsePartitions(s) }

// ParseSwitchpoint parses a single switchpoint rule.
func ParseSwitchpoint(src string) (*Switchpoint, error) { return detail.ParseSwitchpoint(src) }

// componentDef is one component in the designer's view.
type componentDef struct {
	name      string
	subsystem string
	behavior  Behavior
	ports     []string
	runlevel  string
}

type netDef struct {
	name  string
	delay Duration
	ports []string // "component.port"
}

type channelCfg struct {
	policy Policy
	link   LinkModel
}

// SystemBuilder accumulates the designer's view of a system.
type SystemBuilder struct {
	name     string
	comps    map[string]*componentDef
	order    []string
	nets     map[string]*netDef
	netOrder []string

	defaultPolicy Policy
	defaultLink   LinkModel
	perPair       map[[2]string]channelCfg

	coalesce    CoalesceConfig
	coalesceSet bool

	faults    FaultConfig
	faultsSet bool
	resil     ResilienceConfig
	resilSet  bool

	workers  int
	optimism vtime.Duration

	err error
}

// NewSystem starts a system description.
func NewSystem(name string) *SystemBuilder {
	return &SystemBuilder{
		name:          name,
		comps:         make(map[string]*componentDef),
		nets:          make(map[string]*netDef),
		defaultPolicy: Conservative,
		defaultLink:   LoopbackLink,
		perPair:       make(map[[2]string]channelCfg),
	}
}

// AddComponent places a component with the given ports on a
// subsystem.
func (b *SystemBuilder) AddComponent(name, subsystem string, bhv Behavior, ports ...string) *SystemBuilder {
	if b.err != nil {
		return b
	}
	if name == "" || subsystem == "" || bhv == nil {
		b.err = fmt.Errorf("pia: component %q needs a name, a subsystem and a behaviour", name)
		return b
	}
	if _, dup := b.comps[name]; dup {
		b.err = fmt.Errorf("pia: duplicate component %q", name)
		return b
	}
	b.comps[name] = &componentDef{name: name, subsystem: subsystem, behavior: bhv, ports: ports}
	b.order = append(b.order, name)
	return b
}

// SetRunlevel sets a component's initial detail level.
func (b *SystemBuilder) SetRunlevel(component, level string) *SystemBuilder {
	if b.err != nil {
		return b
	}
	c := b.comps[component]
	if c == nil {
		b.err = fmt.Errorf("pia: SetRunlevel of unknown component %q", component)
		return b
	}
	c.runlevel = level
	return b
}

// AddNet connects ports (written "component.port") with a net of the
// given propagation delay.
func (b *SystemBuilder) AddNet(name string, delay Duration, portRefs ...string) *SystemBuilder {
	if b.err != nil {
		return b
	}
	if _, dup := b.nets[name]; dup {
		b.err = fmt.Errorf("pia: duplicate net %q", name)
		return b
	}
	for _, ref := range portRefs {
		comp, port, ok := splitRef(ref)
		if !ok {
			b.err = fmt.Errorf("pia: net %q: bad port reference %q (want component.port)", name, ref)
			return b
		}
		c := b.comps[comp]
		if c == nil {
			b.err = fmt.Errorf("pia: net %q references unknown component %q", name, comp)
			return b
		}
		if !contains(c.ports, port) {
			b.err = fmt.Errorf("pia: net %q references unknown port %q on %q", name, port, comp)
			return b
		}
	}
	b.nets[name] = &netDef{name: name, delay: delay, ports: portRefs}
	b.netOrder = append(b.netOrder, name)
	return b
}

// SetDefaultChannel sets the policy and link model used for every
// subsystem pair without an explicit override.
func (b *SystemBuilder) SetDefaultChannel(p Policy, link LinkModel) *SystemBuilder {
	b.defaultPolicy, b.defaultLink = p, link
	return b
}

// SetChannel overrides policy and link for one subsystem pair.
func (b *SystemBuilder) SetChannel(subA, subB string, p Policy, link LinkModel) *SystemBuilder {
	if subA > subB {
		subA, subB = subB, subA
	}
	b.perPair[[2]string{subA, subB}] = channelCfg{policy: p, link: link}
	return b
}

// SetCoalescing applies an egress coalescing policy to every
// cross-node channel the build creates. In-process channels (pipes)
// keep the immediate path — they have no framing cost to amortize.
func (b *SystemBuilder) SetCoalescing(cfg CoalesceConfig) *SystemBuilder {
	b.coalesce = cfg
	b.coalesceSet = true
	return b
}

// SetFaults arms deterministic fault injection on every cross-node
// link the build creates: each node wraps its TCP dials and accepts in
// a faultnet.Link seeded from cfg.Seed and the link name, so the same
// seed reproduces the same fault schedule. In-process channels are
// unaffected. Usually paired with SetResilience so the simulation
// survives the injected faults.
func (b *SystemBuilder) SetFaults(cfg FaultConfig) *SystemBuilder {
	b.faults = cfg
	b.faultsSet = true
	return b
}

// SetResilience makes every cross-node link a resumable session:
// heartbeat liveness detection, reconnect with jittered exponential
// backoff, sequence-numbered replay of unacked frames, and a
// checkpoint-backed rewind when the retention window cannot cover a
// gap. Applied to every node in the placement, so both ends of each
// link agree.
func (b *SystemBuilder) SetResilience(cfg ResilienceConfig) *SystemBuilder {
	b.resil = cfg
	b.resilSet = true
	return b
}

// SetWorkers sets the scheduler worker-pool size applied to every
// subsystem the build creates. With n > 0 each subsystem dispatches
// safe-horizon rounds of independent components to n workers; 0 (the
// default) keeps the classic sequential scheduler. Results are
// bit-for-bit identical either way; see core.Subsystem.SetWorkers.
func (b *SystemBuilder) SetWorkers(n int) *SystemBuilder {
	b.workers = n
	return b
}

// SetOptimism sets the optimistic (Time Warp) window applied to every
// subsystem the build creates. With w > 0 and a worker pool
// configured, rounds whose conservative safe cohort would leave
// workers idle dispatch checkpointable components speculatively up to
// w past the safe horizon, rolling mis-speculations back at merge
// time; results stay bit-identical to the sequential scheduler. 0
// (the default) keeps rounds purely conservative. See
// core.Subsystem.SetOptimism.
func (b *SystemBuilder) SetOptimism(w Duration) *SystemBuilder {
	b.optimism = vtime.Duration(w)
	return b
}

// Err returns the first accumulated builder error.
func (b *SystemBuilder) Err() error { return b.err }

func splitRef(ref string) (comp, port string, ok bool) {
	i := strings.LastIndex(ref, ".")
	if i <= 0 || i == len(ref)-1 {
		return "", "", false
	}
	return ref[:i], ref[i+1:], true
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// view builds the graph-package global view.
func (b *SystemBuilder) view() (*graph.View, error) {
	v := graph.NewView()
	for _, name := range b.order {
		c := b.comps[name]
		if err := v.AddComponent(c.name, c.subsystem); err != nil {
			return nil, err
		}
	}
	for _, name := range b.netOrder {
		n := b.nets[name]
		refs := make([]graph.PortRef, 0, len(n.ports))
		for _, ref := range n.ports {
			comp, port, _ := splitRef(ref)
			refs = append(refs, graph.PortRef{Component: comp, Port: port})
		}
		if err := v.AddNet(n.name, n.delay, refs...); err != nil {
			return nil, err
		}
	}
	return v, nil
}

func (b *SystemBuilder) pairCfg(a, c string) channelCfg {
	if a > c {
		a, c = c, a
	}
	if cfg, ok := b.perPair[[2]string{a, c}]; ok {
		return cfg
	}
	return channelCfg{policy: b.defaultPolicy, link: b.defaultLink}
}

// Simulation is a locally built system: every subsystem in this
// process, channels over in-memory pipes.
type Simulation struct {
	Name       string
	Subsystems map[string]*core.Subsystem
	Hubs       map[string]*channel.Hub
	Agents     map[string]*snapshot.Agent
	Engines    map[string]*detail.Engine

	subOrder []string

	// timelineRec, when non-nil, is the recorder wired by
	// EnableTimeline. For clusters each node owns its own recorder
	// instead (see Cluster.EnableTimeline).
	timelineRec *timeline.Recorder
}

// BuildLocal realizes the description in-process. Conservative
// channel topologies are validated against the paper's
// simple-cycles-only rule.
func (b *SystemBuilder) BuildLocal() (*Simulation, error) {
	if b.err != nil {
		return nil, b.err
	}
	v, err := b.view()
	if err != nil {
		return nil, err
	}
	splits, chans, err := v.Partition()
	if err != nil {
		return nil, err
	}
	if err := b.validateTopology(chans); err != nil {
		return nil, err
	}

	sim := &Simulation{
		Name:       b.name,
		Subsystems: make(map[string]*core.Subsystem),
		Hubs:       make(map[string]*channel.Hub),
		Agents:     make(map[string]*snapshot.Agent),
		Engines:    make(map[string]*detail.Engine),
	}
	for _, subName := range v.Subsystems() {
		s := core.NewSubsystem(subName)
		s.SetWorkers(b.workers)
		if b.optimism > 0 {
			s.SetOptimism(b.optimism)
		}
		sim.Subsystems[subName] = s
		sim.Hubs[subName] = channel.NewHub(s)
		sim.subOrder = append(sim.subOrder, subName)
	}
	if err := b.populate(sim.Subsystems, splits); err != nil {
		return nil, err
	}
	// Bridge the crossing nets.
	endpoints := make(map[[2]string][2]*channel.Endpoint)
	for _, cs := range chans {
		cfg := b.pairCfg(cs.A, cs.B)
		epA, epB, err := channel.Connect(sim.Hubs[cs.A], sim.Hubs[cs.B], cfg.policy, cfg.link)
		if err != nil {
			return nil, err
		}
		endpoints[[2]string{cs.A, cs.B}] = [2]*channel.Endpoint{epA, epB}
		for _, netName := range cs.Nets {
			if err := epA.BindNet(sim.Subsystems[cs.A].Net(netName), netName); err != nil {
				return nil, err
			}
			if err := epB.BindNet(sim.Subsystems[cs.B].Net(netName), netName); err != nil {
				return nil, err
			}
		}
	}
	for name, hub := range sim.Hubs {
		sim.Agents[name] = snapshot.NewAgent(hub)
		sim.Engines[name] = detail.NewEngine(sim.Subsystems[name])
	}
	return sim, nil
}

// populate instantiates components, ports and net fragments into the
// prepared subsystems.
func (b *SystemBuilder) populate(subs map[string]*core.Subsystem, splits []graph.Split) error {
	for _, name := range b.order {
		cd := b.comps[name]
		s := subs[cd.subsystem]
		c, err := s.NewComponent(cd.name, cd.behavior)
		if err != nil {
			return err
		}
		if cd.runlevel != "" {
			c.SetRunlevel(cd.runlevel)
		}
		for _, pn := range cd.ports {
			if _, err := c.AddPort(pn); err != nil {
				return err
			}
		}
	}
	for _, sp := range splits {
		for _, frag := range sp.Fragments {
			s := subs[frag.Subsystem]
			n, err := s.NewNet(sp.Net, sp.Delay)
			if err != nil {
				return err
			}
			ports := make([]*core.Port, 0, len(frag.Ports))
			for _, pr := range frag.Ports {
				ports = append(ports, s.Component(pr.Component).Port(pr.Port))
			}
			if err := s.Connect(n, ports...); err != nil {
				return err
			}
		}
	}
	return nil
}

// validateTopology applies the simple-cycles-only rule to the
// conservative restriction graph.
func (b *SystemBuilder) validateTopology(chans []graph.ChannelSpec) error {
	tp := graph.NewTopology()
	for _, cs := range chans {
		cfg := b.pairCfg(cs.A, cs.B)
		if cfg.policy != Conservative {
			continue
		}
		tp.AddEdge(cs.A, cs.B)
		tp.AddEdge(cs.B, cs.A)
	}
	return tp.Validate()
}

// Subsystem returns a built subsystem by name.
func (sim *Simulation) Subsystem(name string) *core.Subsystem { return sim.Subsystems[name] }

// SetWorkers resizes the scheduler worker pool of every subsystem in
// the simulation. Takes effect at the next Run; 0 restores the
// sequential scheduler.
func (sim *Simulation) SetWorkers(n int) {
	for _, s := range sim.Subsystems {
		s.SetWorkers(n)
	}
}

// SetOptimism sets the optimistic (Time Warp) window of every
// subsystem in the simulation. Takes effect at the next Run; 0
// restores purely conservative rounds.
func (sim *Simulation) SetOptimism(w Duration) {
	for _, s := range sim.Subsystems {
		s.SetOptimism(vtime.Duration(w))
	}
}

// SubsystemNames returns the subsystem names, sorted.
func (sim *Simulation) SubsystemNames() []string {
	out := append([]string(nil), sim.subOrder...)
	sort.Strings(out)
	return out
}

// Component locates a component anywhere in the simulation.
func (sim *Simulation) Component(name string) *core.Component {
	for _, s := range sim.Subsystems {
		if c := s.Component(name); c != nil {
			return c
		}
	}
	return nil
}

// Run executes every subsystem concurrently until the horizon.
// Distributed simulations require a finite horizon; a horizon of
// Infinity is only legal for single-subsystem systems (whose runs
// terminate when all work is exhausted).
//
// For multi-subsystem simulations Run iterates rounds until the
// system is quiescent: every message any channel emitted has reached
// its peer and been fully processed. This makes Run deterministic for
// optimistic channels too, whose subsystems otherwise return from a
// finite-horizon run as soon as their local work is exhausted,
// possibly before in-flight traffic lands.
func (sim *Simulation) Run(until Time) error {
	return sim.runRounds(until, runtime.Gosched)
}

// runRounds is the shared round loop behind Simulation.Run and
// Cluster.Run; backoff is called while waiting for transports to
// flush.
func (sim *Simulation) runRounds(until Time, backoff func()) error {
	if until == Infinity && len(sim.subOrder) > 1 {
		return errors.New("pia: multi-subsystem simulations need a finite horizon (see Simulation.Run)")
	}
	for {
		errs := make([]error, len(sim.subOrder))
		done := make(chan int, len(sim.subOrder))
		for i, name := range sim.subOrder {
			go func(i int, s *core.Subsystem) {
				errs[i] = s.Run(until)
				done <- i
			}(i, sim.Subsystems[name])
		}
		for range sim.subOrder {
			<-done
		}
		if err := errors.Join(errs...); err != nil {
			return err
		}
		if len(sim.subOrder) == 1 {
			return nil
		}
		if sim.quiesce(backoff) {
			return nil
		}
	}
}

// quiesce waits for the transports to flush and reports whether every
// channel message has been handled; false means another round is
// needed.
func (sim *Simulation) quiesce(backoff func()) bool {
	// Wait until everything sent has at least reached the peer's
	// injection queue (in-memory pipes flush promptly).
	for !sim.flushed() {
		backoff()
	}
	for _, name := range sim.subOrder {
		for _, ep := range sim.Hubs[name].Endpoints() {
			if ep.QueuedCount() != ep.HandledCount() {
				return false
			}
		}
	}
	return true
}

// flushed reports whether, for every channel pair, the peer has
// enqueued everything this side sent.
func (sim *Simulation) flushed() bool {
	for _, name := range sim.subOrder {
		for _, ep := range sim.Hubs[name].Endpoints() {
			peerHub := sim.Hubs[ep.Peer()]
			if peerHub == nil {
				continue
			}
			back := peerHub.Endpoint(name)
			if back == nil {
				continue
			}
			if back.QueuedCount() < ep.SentCount() {
				return false
			}
		}
	}
	return true
}

// Stop aborts all subsystem runs.
func (sim *Simulation) Stop() {
	for _, s := range sim.Subsystems {
		s.Stop()
	}
}

// Close announces completion on every channel and unwinds component
// goroutines. Call when done with the simulation.
func (sim *Simulation) Close() error {
	var first error
	for _, h := range sim.Hubs {
		if err := h.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, s := range sim.Subsystems {
		s.Teardown()
	}
	return first
}
