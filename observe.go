package pia

import (
	"repro/internal/debug"
	"repro/internal/iss"
	"repro/internal/trace"
)

// Observability and debugging surface.

type (
	// TraceRecorder taps net drives for waveform/text export.
	TraceRecorder = trace.Recorder
	// TraceEvent is one recorded net drive.
	TraceEvent = trace.Event
	// Debugger adds breakpoints, watchpoints, stepping and
	// inspection to a subsystem.
	Debugger = debug.Debugger
	// Breakpoint pauses a run on a condition over component local
	// times.
	Breakpoint = debug.Breakpoint
	// Watchpoint pauses a run when a net is driven.
	Watchpoint = debug.Watchpoint
	// DebugHit explains why a debugged run paused.
	DebugHit = debug.Hit
)

// NewTraceRecorder creates a recorder retaining at most limit events
// (0 = unlimited). Attach it to subsystems before running.
func NewTraceRecorder(limit int) *TraceRecorder { return trace.NewRecorder(limit) }

// NewDebugger attaches a debugger to a subsystem.
func NewDebugger(sub *Subsystem) *Debugger { return debug.New(sub) }

// Instruction set simulator surface.

type (
	// ISSCPU is an instruction-set-simulator component.
	ISSCPU = iss.CPU
	// ISSInstr is a decoded instruction.
	ISSInstr = iss.Instr
)

// AssembleISS assembles RISC source text into program words for an
// ISSCPU.
func AssembleISS(src string) ([]uint32, error) { return iss.Assemble(src) }

// DisassembleISS renders program words back to text.
func DisassembleISS(prog []uint32) []string { return iss.Disassemble(prog) }
