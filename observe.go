package pia

import (
	"errors"
	"io"
	"time"

	"repro/internal/debug"
	"repro/internal/flight"
	"repro/internal/iss"
	"repro/internal/metrics"
	"repro/internal/timeline"
	"repro/internal/trace"
)

// Observability and debugging surface.

// errTimelineDisabled is returned by WriteTimeline when EnableTimeline
// was never called.
var errTimelineDisabled = errors.New("pia: timeline not enabled")

type (
	// MetricsRegistry is the unified metrics surface: counters,
	// gauges, and histograms from every layer (scheduler, channel
	// endpoints, wire connections, fault links, resilient sessions),
	// collected on demand by Snapshot/WriteJSON/WritePrometheus. A
	// nil registry is inert, which is the zero-overhead disabled
	// path.
	MetricsRegistry = metrics.Registry
	// MetricSample is one metric value at snapshot time.
	MetricSample = metrics.Sample
	// MetricBucket is one cumulative histogram bucket in a sample.
	MetricBucket = metrics.Bucket
)

// NewMetricsRegistry creates an empty metrics registry. Pass it to
// Simulation.EnableMetrics / Cluster.EnableMetrics / Node metrics
// wiring, then read it with Snapshot or serve it over HTTP (see
// cmd/pianode's -metrics flag).
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// defaultMetrics is the process-wide registry behind pia.Metrics():
// the convenience surface for programs with one simulation. Tests and
// multi-simulation processes should pass their own registry to
// EnableMetrics instead, or successive runs will stack collectors
// with colliding series names.
var defaultMetrics = metrics.NewRegistry()

// DefaultMetrics returns the process-wide default registry (the one
// EnableMetrics(nil) wires into and Metrics() snapshots).
func DefaultMetrics() *MetricsRegistry { return defaultMetrics }

// Metrics returns a snapshot of the process-default registry, sorted
// by metric name. Safe to call at any time, including while
// simulations run.
func Metrics() []MetricSample { return defaultMetrics.Snapshot() }

// EnableMetrics wires every subsystem scheduler and channel hub of
// the simulation into reg and returns the registry used. A nil reg
// selects the process-default registry (the one pia.Metrics()
// reads). Call between BuildLocal and Run.
func (sim *Simulation) EnableMetrics(reg *MetricsRegistry) *MetricsRegistry {
	if reg == nil {
		reg = defaultMetrics
	}
	for _, name := range sim.subOrder {
		sim.Subsystems[name].EnableMetrics(reg)
		sim.Hubs[name].EnableMetrics(reg)
	}
	return reg
}

type (
	// TimelineRecorder is the structured span/event tracer: lifecycle
	// intervals and causal edges keyed by virtual time (drives,
	// channel send/delivery flows, checkpoint/restore/rewind markers,
	// runlevel switches, protocol and WAN fault chatter). Distinct
	// from TraceRecorder, which records net waveforms.
	TimelineRecorder = timeline.Recorder
	// TimelineEvent is one recorded timeline event.
	TimelineEvent = timeline.Event
	// TimelineExportOptions controls the Perfetto/logfmt exporters.
	TimelineExportOptions = timeline.ExportOptions
)

// NewTimelineRecorder creates a timeline recorder retaining at most
// limit events (<= 0 selects the default ring size). Pass it to
// Simulation.EnableTimeline or Node wiring before running.
func NewTimelineRecorder(limit int) *TimelineRecorder { return timeline.NewRecorder(limit) }

// EnableTimeline wires every subsystem scheduler, channel hub, and
// detail engine of the simulation into rec and returns the recorder
// used (a fresh default-sized one when rec is nil). Call between
// BuildLocal and Run; with the timeline never enabled the hot paths
// stay hook-free and allocation-free.
func (sim *Simulation) EnableTimeline(rec *TimelineRecorder) *TimelineRecorder {
	if rec == nil {
		rec = NewTimelineRecorder(0)
	}
	sim.timelineRec = rec
	for _, name := range sim.subOrder {
		sim.Subsystems[name].EnableTimeline(rec)
		sim.Hubs[name].EnableTimeline(rec)
		if e := sim.Engines[name]; e != nil {
			e.EnableTimeline(rec)
		}
	}
	return rec
}

// Timeline returns the recorder wired by EnableTimeline, or nil.
func (sim *Simulation) Timeline() *TimelineRecorder { return sim.timelineRec }

// WriteTimeline writes the simulation's canonical timeline as
// Perfetto/Chrome trace JSON: virtual time is the primary clock, and
// only the committed, reproducible event kinds are included, so the
// bytes are identical across reruns of a deterministic run. For the
// full view (stalls, protocol chatter, wall clocks) export through
// the recorder directly with TimelineExportOptions.
func (sim *Simulation) WriteTimeline(w io.Writer) error {
	rec := sim.timelineRec
	if rec == nil {
		return errTimelineDisabled
	}
	return timeline.WritePerfetto(w, timeline.Canonical(rec.Events()), timeline.ExportOptions{})
}

type (
	// FlightRecorder is the bounded black-box ring correlating recent
	// timeline events, metric deltas, and health transitions; on a
	// failure trigger it freezes into a self-contained JSON
	// post-mortem. A nil recorder is inert.
	FlightRecorder = flight.Recorder
	// FlightHub fans live telemetry out to SSE /watch subscribers
	// with per-subscriber bounded queues (slow clients are dropped,
	// never waited on).
	FlightHub = flight.Hub
	// FlightObserver bundles a recorder and hub behind one nil-safe
	// handle for the instrumented layers.
	FlightObserver = flight.Observer
	// FlightSampler periodically snapshots a registry and feeds
	// metric deltas to a recorder and hub.
	FlightSampler = flight.Sampler
	// FlightDump is a frozen post-mortem document.
	FlightDump = flight.Dump
)

// NewFlightRecorder creates a flight recorder retaining at most size
// ring entries (<= 0 selects the default).
func NewFlightRecorder(size int) *FlightRecorder { return flight.New(size) }

// NewFlightHub creates an empty streaming hub. Mount it on an HTTP
// mux as the GET /watch handler.
func NewFlightHub() *FlightHub { return flight.NewHub() }

// NewFlightSampler wires a registry to a recorder and/or hub at the
// given cadence (<= 0 selects the default). Call Start to begin
// sampling and Stop to halt.
func NewFlightSampler(reg *MetricsRegistry, rec *FlightRecorder, hub *FlightHub, every time.Duration) *FlightSampler {
	return flight.NewSampler(reg, rec, hub, every)
}

// EnableFlight wires the simulation's failure triggers into the
// observer: every subsystem's optimistic throttle collapse (a
// rollback storm) records and trips, and the simulation's timeline
// recorder (if enabled) is attached so post-mortems carry the event
// tail. Call between BuildLocal and Run, after EnableTimeline if both
// are wanted. A nil/empty observer leaves the hot paths untouched.
func (sim *Simulation) EnableFlight(o *FlightObserver) {
	if !o.Enabled() {
		return
	}
	if sim.timelineRec != nil {
		o.Rec.AttachTimeline(sim.timelineRec)
	}
	for _, name := range sim.subOrder {
		sub := sim.Subsystems[name]
		name := name
		prev := sub.OnThrottleCollapse
		sub.OnThrottleCollapse = func(spec, aborted int) {
			if prev != nil {
				prev(spec, aborted)
			}
			o.Event("throttle", name, "rollback storm: speculation window collapsed", int64(aborted))
			o.Trip("rollback-storm", name)
		}
	}
}

// EnableCostAttribution turns on per-component wall-clock cost
// attribution for every subsystem: monotonic stamps around each
// dispatch, aggregated into per-component histograms, lifetime
// totals, and a top-N ranking in reg (nil selects the process-default
// registry). topN <= 0 defaults to 5. Call between BuildLocal and
// Run.
func (sim *Simulation) EnableCostAttribution(reg *MetricsRegistry, topN int) *MetricsRegistry {
	if reg == nil {
		reg = defaultMetrics
	}
	for _, name := range sim.subOrder {
		sim.Subsystems[name].EnableCostAttribution(reg, topN)
	}
	return reg
}

type (
	// TraceRecorder taps net drives for waveform/text export.
	TraceRecorder = trace.Recorder
	// TraceEvent is one recorded net drive.
	TraceEvent = trace.Event
	// Debugger adds breakpoints, watchpoints, stepping and
	// inspection to a subsystem.
	Debugger = debug.Debugger
	// Breakpoint pauses a run on a condition over component local
	// times.
	Breakpoint = debug.Breakpoint
	// Watchpoint pauses a run when a net is driven.
	Watchpoint = debug.Watchpoint
	// DebugHit explains why a debugged run paused.
	DebugHit = debug.Hit
)

// NewTraceRecorder creates a recorder retaining at most limit events
// (0 = unlimited). Attach it to subsystems before running.
func NewTraceRecorder(limit int) *TraceRecorder { return trace.NewRecorder(limit) }

// NewDebugger attaches a debugger to a subsystem.
func NewDebugger(sub *Subsystem) *Debugger { return debug.New(sub) }

// Instruction set simulator surface.

type (
	// ISSCPU is an instruction-set-simulator component.
	ISSCPU = iss.CPU
	// ISSInstr is a decoded instruction.
	ISSInstr = iss.Instr
)

// AssembleISS assembles RISC source text into program words for an
// ISSCPU.
func AssembleISS(src string) ([]uint32, error) { return iss.Assemble(src) }

// DisassembleISS renders program words back to text.
func DisassembleISS(prog []uint32) []string { return iss.Disassemble(prog) }
