package pia

import (
	"fmt"
	"io"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/detail"
	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/snapshot"
	"repro/internal/timeline"
)

// Node re-exports the Pia node type for distributed deployments.
type Node = node.Node

// NewNode creates a Pia node.
func NewNode(name string) *Node { return node.New(name) }

// Cluster is a system realized across Pia nodes: a Simulation whose
// subsystems live on (possibly several) nodes, with cross-node
// channels carried over TCP.
type Cluster struct {
	Simulation
	Nodes map[string]*Node // subsystem -> hosting node

	nodeSet   []*Node
	timelines map[string]*TimelineRecorder // node name -> recorder
}

// BuildOnNodes realizes the description across the given nodes:
// placement maps every subsystem name to the node hosting it.
// Subsystem pairs on the same node are bridged in-process; pairs on
// different nodes get a TCP channel (each node listens on an
// ephemeral loopback port unless it is already listening).
func (b *SystemBuilder) BuildOnNodes(placement map[string]*Node) (*Cluster, error) {
	if b.err != nil {
		return nil, b.err
	}
	v, err := b.view()
	if err != nil {
		return nil, err
	}
	splits, chans, err := v.Partition()
	if err != nil {
		return nil, err
	}
	if err := b.validateTopology(chans); err != nil {
		return nil, err
	}
	for _, sub := range v.Subsystems() {
		if placement[sub] == nil {
			e := &graph.UnknownHostError{Host: sub}
			if comps := v.Components(sub); len(comps) > 0 {
				e.Component = comps[0]
			}
			return nil, e
		}
	}

	cl := &Cluster{
		Simulation: Simulation{
			Name:       b.name,
			Subsystems: make(map[string]*core.Subsystem),
			Hubs:       make(map[string]*channel.Hub),
			Agents:     make(map[string]*snapshot.Agent),
			Engines:    make(map[string]*detail.Engine),
		},
		Nodes: make(map[string]*Node),
	}
	seen := map[*Node]bool{}
	addrs := map[*Node]string{}
	for _, subName := range v.Subsystems() {
		n := placement[subName]
		s := core.NewSubsystem(subName)
		s.SetWorkers(b.workers)
		if b.optimism > 0 {
			s.SetOptimism(b.optimism)
		}
		hosted := n.Host(s)
		cl.Subsystems[subName] = s
		cl.Hubs[subName] = hosted.Hub
		cl.Nodes[subName] = n
		cl.subOrder = append(cl.subOrder, subName)
		if !seen[n] {
			seen[n] = true
			cl.nodeSet = append(cl.nodeSet, n)
		}
	}
	if err := b.populate(cl.Subsystems, splits); err != nil {
		return nil, err
	}
	if b.coalesceSet {
		for _, n := range cl.nodeSet {
			n.SetCoalescing(b.coalesce)
		}
	}
	if b.faultsSet {
		for _, n := range cl.nodeSet {
			n.SetFaults(b.faults)
		}
	}
	if b.resilSet {
		for _, n := range cl.nodeSet {
			n.SetResilience(b.resil)
		}
	}

	// Start listeners on nodes that will accept cross-node channels.
	needListen := map[*Node]bool{}
	for _, cs := range chans {
		na, nb := placement[cs.A], placement[cs.B]
		if na != nb {
			needListen[nb] = true
		}
	}
	for n := range needListen {
		addr, err := n.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[n] = addr
	}

	for _, cs := range chans {
		cfg := b.pairCfg(cs.A, cs.B)
		na, nb := placement[cs.A], placement[cs.B]
		var epA, epB *channel.Endpoint
		if na == nb {
			epA, epB, err = channel.Connect(cl.Hubs[cs.A], cl.Hubs[cs.B], cfg.policy, cfg.link)
			if err != nil {
				return nil, err
			}
		} else {
			epA, err = na.Connect(cs.A, addrs[nb], cs.B, cfg.policy, cfg.link)
			if err != nil {
				return nil, err
			}
			epB = cl.Hubs[cs.B].Endpoint(cs.A)
			if epB == nil {
				return nil, fmt.Errorf("pia: handshake for %s<->%s left no endpoint", cs.A, cs.B)
			}
		}
		for _, netName := range cs.Nets {
			if err := epA.BindNet(cl.Subsystems[cs.A].Net(netName), netName); err != nil {
				return nil, err
			}
			if err := epB.BindNet(cl.Subsystems[cs.B].Net(netName), netName); err != nil {
				return nil, err
			}
		}
	}
	for _, n := range cl.nodeSet {
		n.FinishAgents()
	}
	for name, hosted := range cl.Subsystems {
		cl.Agents[name] = cl.Nodes[name].Hosted(name).Agent
		cl.Engines[name] = detail.NewEngine(hosted)
	}
	return cl, nil
}

// EnableMetrics wires the whole cluster into reg and returns the
// registry used: every hosted subsystem and hub (via each node), plus
// the node-level surfaces a local Simulation does not have — wire
// connections, fault-injection links, and resilient sessions. A nil
// reg selects the process-default registry (the one pia.Metrics()
// reads). Call between BuildOnNodes and Run.
func (cl *Cluster) EnableMetrics(reg *MetricsRegistry) *MetricsRegistry {
	if reg == nil {
		reg = DefaultMetrics()
	}
	for _, n := range cl.nodeSet {
		n.EnableMetrics(reg)
	}
	return reg
}

// EnableTimeline gives every node of the cluster its own timeline
// recorder (stamped with the node name so merged exports attribute
// events unambiguously) retaining at most limit events each (<= 0
// selects the default ring size). Each node's hosted subsystems,
// channel hubs, fault links, and resilient sessions feed its
// recorder; detail engines feed the recorder of their hosting node.
// Call between BuildOnNodes and Run. Idempotent.
func (cl *Cluster) EnableTimeline(limit int) map[string]*TimelineRecorder {
	if cl.timelines != nil {
		return cl.timelines
	}
	cl.timelines = make(map[string]*TimelineRecorder, len(cl.nodeSet))
	for _, n := range cl.nodeSet {
		rec := NewTimelineRecorder(limit)
		n.EnableTimeline(rec)
		cl.timelines[n.Name()] = rec
	}
	for _, name := range cl.subOrder {
		if e := cl.Engines[name]; e != nil {
			e.EnableTimeline(cl.timelines[cl.Nodes[name].Name()])
		}
	}
	return cl.timelines
}

// EnableFlight wires the cluster's failure triggers into the
// observer: each node's peer-loss detection (a resumable session
// exhausting its transport) and every subsystem's optimistic throttle
// collapse record and trip, and the first node timeline recorder (if
// EnableTimeline ran) is attached so post-mortems carry an event
// tail. Call between BuildOnNodes and Run. A nil/empty observer
// leaves the hot paths untouched.
func (cl *Cluster) EnableFlight(o *FlightObserver) {
	if !o.Enabled() {
		return
	}
	for _, n := range cl.nodeSet {
		n.EnableFlight(o)
		if rec := cl.timelines[n.Name()]; rec != nil {
			o.Rec.AttachTimeline(rec)
		}
	}
	cl.Simulation.EnableFlight(o)
}

// EnableCostAttribution turns on per-component wall-clock cost
// attribution for every hosted subsystem (see
// Simulation.EnableCostAttribution). Call between BuildOnNodes and
// Run.
func (cl *Cluster) EnableCostAttribution(reg *MetricsRegistry, topN int) *MetricsRegistry {
	return cl.Simulation.EnableCostAttribution(reg, topN)
}

// Timelines returns the per-node recorders wired by EnableTimeline,
// keyed by node name, or nil when the timeline is disabled.
func (cl *Cluster) Timelines() map[string]*TimelineRecorder { return cl.timelines }

// WriteTimeline merges every node's timeline and writes the canonical
// committed view as Perfetto/Chrome trace JSON: virtual time is the
// primary clock, cross-node sends and deliveries are stitched into
// flow arrows, and only reproducible event kinds are included, so the
// bytes are identical across same-seed reruns.
func (cl *Cluster) WriteTimeline(w io.Writer) error {
	if cl.timelines == nil {
		return errTimelineDisabled
	}
	batches := make([][]TimelineEvent, 0, len(cl.nodeSet))
	for _, n := range cl.nodeSet {
		batches = append(batches, cl.timelines[n.Name()].Events())
	}
	merged := timeline.Canonical(timeline.MergeEvents(batches...))
	return timeline.WritePerfetto(w, merged, timeline.ExportOptions{})
}

// Run executes the cluster's subsystems, iterating rounds until
// quiescent like Simulation.Run; TCP flushing is awaited with a
// small backoff.
func (cl *Cluster) Run(until Time) error {
	return cl.Simulation.runRounds(until, func() { time.Sleep(200 * time.Microsecond) })
}

// Close tears down the cluster: channels, subsystems, nodes.
func (cl *Cluster) Close() error {
	err := cl.Simulation.Close()
	for _, n := range cl.nodeSet {
		if cerr := n.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
