// Package loader is the Go analogue of the Pia class loader: a
// component factory registry that resolves component implementations
// by name through a chain of registries, supports re-registration
// (recompile-and-reload without restarting the simulator), and can
// hot-swap the behaviour of a live component between runs, carrying
// its state across.
//
// Pia's loader fetched Java classes on demand from arbitrary URLs and
// fell back to the built-in class loader. Go cannot load code at
// runtime, so the unit of loading is a registered factory: the
// "custom channels" are registries chained with SetParent, and the
// fallback registry plays the role of the built-in loader.
package loader

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// Factory builds a fresh behaviour instance.
type Factory func() core.Behavior

// Registry resolves component names to factories.
type Registry struct {
	mu        sync.Mutex
	factories map[string]*entry
	parent    *Registry
}

type entry struct {
	factory Factory
	version int
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]*entry)}
}

// SetParent chains a fallback registry, consulted when a name is not
// found here (Pia: "If a class cannot be found through the custom
// channels, Pia uses Java's built in class loader").
func (r *Registry) SetParent(p *Registry) { r.parent = p }

// Register installs (or replaces) a factory; each registration bumps
// the name's version.
func (r *Registry) Register(name string, f Factory) error {
	if name == "" || f == nil {
		return fmt.Errorf("loader: empty name or nil factory")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.factories[name]
	if e == nil {
		e = &entry{}
		r.factories[name] = e
	}
	e.factory = f
	e.version++
	return nil
}

// Resolve finds a factory through the registry chain.
func (r *Registry) Resolve(name string) (Factory, error) {
	r.mu.Lock()
	e := r.factories[name]
	r.mu.Unlock()
	if e != nil {
		return e.factory, nil
	}
	if r.parent != nil {
		return r.parent.Resolve(name)
	}
	return nil, fmt.Errorf("loader: no factory for component %q", name)
}

// Version reports how many times the name has been registered here
// (0 if unknown locally; the chain is not consulted).
func (r *Registry) Version(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.factories[name]; e != nil {
		return e.version
	}
	return 0
}

// Names lists locally registered names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.factories))
	for n := range r.factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// New instantiates a behaviour by name.
func (r *Registry) New(name string) (core.Behavior, error) {
	f, err := r.Resolve(name)
	if err != nil {
		return nil, err
	}
	b := f()
	if b == nil {
		return nil, fmt.Errorf("loader: factory for %q produced nil", name)
	}
	return b, nil
}

// Reload swaps a live component's behaviour for a freshly built
// instance of the (possibly re-registered) factory, transferring
// state when both sides support it. Legal between runs.
func (r *Registry) Reload(s *core.Subsystem, component, factoryName string) error {
	b, err := r.New(factoryName)
	if err != nil {
		return err
	}
	return s.ReplaceBehavior(component, b, true)
}
