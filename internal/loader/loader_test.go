package loader

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/vtime"
)

type counter struct {
	N     int
	Bonus int // differs between "versions" of the component
}

func (c *counter) Run(p *core.Proc) error {
	for {
		_, ok := p.Recv("in")
		if !ok {
			return nil
		}
		c.N += 1 + c.Bonus
	}
}

func (c *counter) SaveState() ([]byte, error)  { return core.GobSave(c) }
func (c *counter) RestoreState(b []byte) error { return core.GobRestore(c, b) }

func TestRegisterResolve(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("counter", func() core.Behavior { return &counter{} }); err != nil {
		t.Fatal(err)
	}
	b, err := r.New("counter")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.(*counter); !ok {
		t.Fatalf("wrong type %T", b)
	}
	if _, err := r.New("ghost"); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("missing factory error wrong: %v", err)
	}
	if err := r.Register("", nil); err == nil {
		t.Fatal("empty registration accepted")
	}
}

func TestParentChain(t *testing.T) {
	parent := NewRegistry()
	parent.Register("base", func() core.Behavior { return &counter{} })
	child := NewRegistry()
	child.SetParent(parent)
	if _, err := child.Resolve("base"); err != nil {
		t.Fatalf("fallback chain broken: %v", err)
	}
	// Child shadows parent.
	child.Register("base", func() core.Behavior { return &counter{Bonus: 5} })
	b, _ := child.New("base")
	if b.(*counter).Bonus != 5 {
		t.Fatal("child registration does not shadow parent")
	}
	if parent.Version("base") != 1 || child.Version("base") != 1 || child.Version("other") != 0 {
		t.Fatal("Version bookkeeping wrong")
	}
}

func TestVersionBumps(t *testing.T) {
	r := NewRegistry()
	r.Register("x", func() core.Behavior { return &counter{} })
	r.Register("x", func() core.Behavior { return &counter{Bonus: 1} })
	if r.Version("x") != 2 {
		t.Fatalf("Version = %d, want 2", r.Version("x"))
	}
	names := r.Names()
	if len(names) != 1 || names[0] != "x" {
		t.Fatalf("Names = %v", names)
	}
}

func TestHotReloadCarriesState(t *testing.T) {
	r := NewRegistry()
	r.Register("counter", func() core.Behavior { return &counter{} })

	s := core.NewSubsystem("reload")
	b, _ := r.New("counter")
	cc, _ := s.NewComponent("cnt", b)
	cc.AddPort("in")
	ticker := core.BehaviorFunc(func(p *core.Proc) error {
		for i := 0; i < 3; i++ {
			p.Delay(10)
			p.Send("out", i)
		}
		return nil
	})
	tc, _ := s.NewComponent("tick", ticker)
	tc.AddPort("out")
	n, _ := s.NewNet("w", 0)
	s.Connect(n, tc.Port("out"), cc.Port("in"))

	// Phase 1: three events counted with the old version.
	if err := s.Run(35); err != nil {
		t.Fatal(err)
	}
	if got := b.(*counter).N; got != 3 {
		t.Fatalf("phase1 count = %d", got)
	}

	// "Recompile": register a new code version (a different type with
	// the same state shape), reload the live component, state carried
	// over.
	r.Register("counter", func() core.Behavior { return &counterV2{} })
	if err := r.Reload(s, "cnt", "counter"); err != nil {
		t.Fatal(err)
	}
	tick2 := core.BehaviorFunc(func(p *core.Proc) error {
		p.Delay(50)
		p.Send("out", 99)
		return nil
	})
	t2, _ := s.NewComponent("tick2", tick2)
	t2.AddPort("out")
	s.Connect(n, t2.Port("out"))
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	// New code: carried N=3, then one event counted by tens.
	got, ok := s.Component("cnt").Behavior().(*counterV2)
	if !ok {
		t.Fatalf("reload did not install the new version: %T", s.Component("cnt").Behavior())
	}
	if got.N != 3+10 {
		t.Fatalf("reloaded count = %d, want 13 (3 carried + 1 event counted by 10)", got.N)
	}
}

// counterV2 is the "recompiled" counter: same state shape, new code
// (counts by tens).
type counterV2 struct {
	N int
}

func (c *counterV2) Run(p *core.Proc) error {
	for {
		_, ok := p.Recv("in")
		if !ok {
			return nil
		}
		c.N += 10
	}
}

func (c *counterV2) SaveState() ([]byte, error)  { return core.GobSave(c) }
func (c *counterV2) RestoreState(b []byte) error { return core.GobRestore(c, b) }

func TestReloadErrors(t *testing.T) {
	r := NewRegistry()
	s := core.NewSubsystem("re")
	if err := r.Reload(s, "cnt", "missing"); err == nil {
		t.Fatal("reload with unknown factory accepted")
	}
	r.Register("c", func() core.Behavior { return &counter{} })
	if err := r.Reload(s, "ghost", "c"); err == nil {
		t.Fatal("reload of unknown component accepted")
	}
	if err := r.Register("nilfac", func() core.Behavior { return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := r.New("nilfac"); err == nil {
		t.Fatal("nil-producing factory accepted at New")
	}
}
