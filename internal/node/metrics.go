package node

import (
	"repro/internal/metrics"
	"repro/internal/resilience"
)

// EnableMetrics wires every observable surface the node owns into
// reg: each hosted subsystem's scheduler (steps, lag gauges, runnable
// set), each hub's channel endpoints, and — pull-style, walked at
// snapshot time so late-created objects are covered — the node's wire
// connections, fault-injection links, and resilient sessions.
//
// Call after hosting subsystems and before running; subsystems hosted
// after the call are wired as they are hosted. Idempotent per node.
func (n *Node) EnableMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	n.mu.Lock()
	if n.metricsReg != nil {
		n.mu.Unlock()
		return
	}
	n.metricsReg = reg
	hosted := make([]*Hosted, 0, len(n.hosted))
	for _, h := range n.hosted {
		hosted = append(hosted, h)
	}
	n.mu.Unlock()

	for _, h := range hosted {
		h.Sub.EnableMetrics(reg)
		h.Hub.EnableMetrics(reg)
	}

	name := n.name
	counter := func(emit func(metrics.Sample), metric string, v int64, kv ...string) {
		emit(metrics.Sample{
			Name:  metrics.Label(metric, append([]string{"node", name}, kv...)...),
			Kind:  metrics.KindCounter,
			Value: v,
		})
	}

	// Wire connections: per-node totals across every conn epoch the
	// node has opened or accepted.
	reg.AddCollector(func(emit func(metrics.Sample)) {
		ws := n.WireStats()
		counter(emit, "pia_wire_bytes_in", ws.BytesIn)
		counter(emit, "pia_wire_bytes_out", ws.BytesOut)
		counter(emit, "pia_wire_frames_in", ws.FramesIn)
		counter(emit, "pia_wire_frames_out", ws.FramesOut)
	})

	// Fault links: one series set per link, keyed by the link's
	// deterministic schedule name.
	reg.AddCollector(func(emit func(metrics.Sample)) {
		for _, l := range n.FaultLinks() {
			st := l.Stats()
			link := l.Name()
			counter(emit, "pia_fault_frames", st.Frames, "link", link)
			counter(emit, "pia_fault_forwarded", st.Forwarded, "link", link)
			counter(emit, "pia_fault_dropped", st.Dropped, "link", link)
			counter(emit, "pia_fault_duplicated", st.Duplicated, "link", link)
			counter(emit, "pia_fault_reordered", st.Reordered, "link", link)
			counter(emit, "pia_fault_corrupted", st.Corrupted, "link", link)
			counter(emit, "pia_fault_cuts", st.Cuts, "link", link)
			counter(emit, "pia_fault_bytes_shaped", st.BytesShaped, "link", link)
		}
	})

	// Resilient sessions: node-wide totals plus the liveness pair the
	// /healthz endpoint is built on.
	reg.AddCollector(func(emit func(metrics.Sample)) {
		rs := n.ResilienceStats()
		counter(emit, "pia_session_epoch_deaths", rs.EpochDeaths)
		counter(emit, "pia_session_dial_attempts", rs.DialAttempts)
		counter(emit, "pia_session_resumes", rs.Resumes)
		counter(emit, "pia_session_replayed_frames", rs.ReplayedFrames)
		counter(emit, "pia_session_rewinds", rs.Rewinds)
		counter(emit, "pia_session_gap_kills", rs.GapKills)
		counter(emit, "pia_session_crc_kills", rs.CrcKills)
		counter(emit, "pia_session_dup_frames_in", rs.DupFramesIn)
		counter(emit, "pia_session_frames_out", rs.FramesOut)
		counter(emit, "pia_session_frames_in", rs.FramesIn)
		counter(emit, "pia_session_heartbeats_out", rs.HeartbeatsOut)
		total, alive := n.SessionHealth()
		emit(metrics.Sample{
			Name:  metrics.Label("pia_sessions", "node", name),
			Kind:  metrics.KindGauge,
			Value: int64(total),
		})
		emit(metrics.Sample{
			Name:  metrics.Label("pia_sessions_alive", "node", name),
			Kind:  metrics.KindGauge,
			Value: int64(alive),
		})
	})

	// Timeline recorder health, if a recorder is already wired (the
	// reverse order — timeline enabled after metrics — registers from
	// EnableTimeline instead).
	n.maybeExportTimelineMetrics()
}

// MetricsRegistry returns the registry passed to EnableMetrics, or
// nil when metrics are disabled.
func (n *Node) MetricsRegistry() *metrics.Registry {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.metricsReg
}

// SessionHealth reports how many resilient sessions the node owns and
// how many of them are still alive (not terminally failed). A session
// riding out an outage — dead connection epoch, redial in progress —
// counts as alive; only an exhausted retry budget, an unresumable
// gap, or a peer refusal moves it to dead.
func (n *Node) SessionHealth() (total, alive int) {
	n.mu.Lock()
	sessions := append([]*resilience.Session(nil), n.sessions...)
	n.mu.Unlock()
	for _, s := range sessions {
		total++
		if s.Alive() {
			alive++
		}
	}
	return total, alive
}
