package node

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/vtime"
)

// sender emits Count values on "out".
type sender struct {
	Next, Count int
	Period      vtime.Duration
}

func (s *sender) Run(p *core.Proc) error {
	for s.Next < s.Count {
		p.Delay(s.Period)
		p.Send("out", s.Next)
		s.Next++
	}
	return nil
}

func (s *sender) SaveState() ([]byte, error)  { return core.GobSave(s) }
func (s *sender) RestoreState(b []byte) error { return core.GobRestore(s, b) }

type receiver struct {
	Got []int
}

func (r *receiver) Run(p *core.Proc) error {
	for {
		m, ok := p.Recv("in")
		if !ok {
			return nil
		}
		r.Got = append(r.Got, m.Value.(int))
	}
}

func (r *receiver) SaveState() ([]byte, error)  { return core.GobSave(r) }
func (r *receiver) RestoreState(b []byte) error { return core.GobRestore(r, b) }

// buildRemotePair creates two nodes on loopback TCP with the logical
// net "link" split across them.
func buildRemotePair(t *testing.T, policy channel.Policy, count int) (n1, n2 *Node, s1, s2 *core.Subsystem, rcv *receiver) {
	t.Helper()
	s1 = core.NewSubsystem("handheld")
	s2 = core.NewSubsystem("server")
	snd := &sender{Count: count, Period: 10}
	rcv = &receiver{}
	sc, _ := s1.NewComponent("prod", snd)
	sc.AddPort("out")
	rc, _ := s2.NewComponent("cons", rcv)
	rc.AddPort("in")
	l1, _ := s1.NewNet("link", 0)
	s1.Connect(l1, sc.Port("out"))
	l2, _ := s2.NewNet("link", 0)
	s2.Connect(l2, rc.Port("in"))

	n1 = New("node1")
	n2 = New("node2")
	n1.Host(s1)
	n2.Host(s2)
	addr, err := n2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	link := channel.LinkModel{Latency: 5, PerMessage: 1}
	ep, err := n1.Connect("handheld", addr, "server", policy, link)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.BindNet(l1, "link"); err != nil {
		t.Fatal(err)
	}
	// The server side's endpoint was created by the handshake.
	ep2 := n2.Hosted("server").Hub.Endpoint("handheld")
	if ep2 == nil {
		t.Fatal("server side endpoint missing after handshake")
	}
	if err := ep2.BindNet(l2, "link"); err != nil {
		t.Fatal(err)
	}
	n1.FinishAgents()
	n2.FinishAgents()
	return
}

func TestRemoteChannelDelivery(t *testing.T) {
	n1, n2, s1, s2, rcv := buildRemotePair(t, channel.Conservative, 10)
	defer n1.Close()
	defer n2.Close()
	var wg sync.WaitGroup
	var e1, e2 error
	wg.Add(2)
	go func() { defer wg.Done(); e1 = s1.Run(500) }()
	go func() { defer wg.Done(); e2 = s2.Run(500) }()
	wg.Wait()
	if e1 != nil || e2 != nil {
		t.Fatalf("runs: %v / %v", e1, e2)
	}
	if len(rcv.Got) != 10 {
		t.Fatalf("received %d over TCP, want 10", len(rcv.Got))
	}
	for i, v := range rcv.Got {
		if v != i {
			t.Fatalf("order broken over TCP: %v", rcv.Got)
		}
	}
}

// TestRemoteCoalescedDelivery is the end-to-end check for message
// coalescing: batch frames actually cross a real TCP connection, the
// safe-time protocol still converges, and delivery stays in order.
func TestRemoteCoalescedDelivery(t *testing.T) {
	n1, n2, s1, s2, rcv := buildRemotePair(t, channel.Conservative, 25)
	defer n1.Close()
	defer n2.Close()
	cfg := channel.CoalesceConfig{MaxMsgs: 8, MaxBytes: 32 << 10}
	n1.SetCoalescing(cfg)
	n2.SetCoalescing(cfg)
	var wg sync.WaitGroup
	var e1, e2 error
	wg.Add(2)
	go func() { defer wg.Done(); e1 = s1.Run(500) }()
	go func() { defer wg.Done(); e2 = s2.Run(500) }()
	wg.Wait()
	if e1 != nil || e2 != nil {
		t.Fatalf("runs: %v / %v", e1, e2)
	}
	if len(rcv.Got) != 25 {
		t.Fatalf("received %d over coalesced TCP, want 25", len(rcv.Got))
	}
	for i, v := range rcv.Got {
		if v != i {
			t.Fatalf("order broken over coalesced TCP: %v", rcv.Got)
		}
	}
	ep := n1.Hosted("handheld").Hub.Endpoint("server")
	if st := ep.Stats(); st.Flushes == 0 || st.FlushedMsgs == 0 {
		t.Fatalf("sender never batched: %+v", st)
	}
	ws := n1.WireStats()
	if st := ep.Stats(); ws.FramesOut >= st.FlushedMsgs {
		t.Fatalf("coalescing sent %d frames for %d messages — no batching on the wire",
			ws.FramesOut, st.FlushedMsgs)
	}
}

func TestRemoteInfiniteRunTerminatesViaClose(t *testing.T) {
	n1, n2, s1, s2, rcv := buildRemotePair(t, channel.Conservative, 3)
	defer n1.Close()
	defer n2.Close()
	done2 := make(chan error, 1)
	go func() { done2 <- s2.Run(vtime.Infinity) }()
	if err := s1.Run(100); err != nil {
		t.Fatal(err)
	}
	if err := n1.CloseChannels(); err != nil {
		t.Fatal(err)
	}
	if err := <-done2; err != nil {
		t.Fatal(err)
	}
	if len(rcv.Got) != 3 {
		t.Fatalf("received %v", rcv.Got)
	}
}

func TestConnectUnknownSubsystem(t *testing.T) {
	n2 := New("srv")
	s := core.NewSubsystem("real")
	n2.Host(s)
	addr, err := n2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()

	n1 := New("cli")
	sl := core.NewSubsystem("local")
	n1.Host(sl)
	defer n1.Close()
	_, err = n1.Connect("local", addr, "ghost", channel.Conservative, channel.LinkModel{Latency: 1})
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("expected rejection naming the missing subsystem, got %v", err)
	}
	if _, err := n1.Connect("nolocal", addr, "real", channel.Conservative, channel.LinkModel{Latency: 1}); err == nil {
		t.Fatal("connect from unhosted local subsystem accepted")
	}
}

func TestRunAll(t *testing.T) {
	n1, n2, _, _, rcv := buildRemotePair(t, channel.Conservative, 4)
	defer n1.Close()
	defer n2.Close()
	var wg sync.WaitGroup
	var e1, e2 error
	wg.Add(2)
	go func() { defer wg.Done(); e1 = n1.RunAll(500) }()
	go func() { defer wg.Done(); e2 = n2.RunAll(500) }()
	wg.Wait()
	if e1 != nil || e2 != nil {
		t.Fatalf("RunAll: %v / %v", e1, e2)
	}
	if len(rcv.Got) != 4 {
		t.Fatalf("received %v", rcv.Got)
	}
}

func TestHostIdempotent(t *testing.T) {
	n := New("x")
	s := core.NewSubsystem("s")
	h1 := n.Host(s)
	h2 := n.Host(s)
	if h1 != h2 {
		t.Fatal("Host not idempotent")
	}
	if n.Hosted("s") != h1 || n.Hosted("nope") != nil {
		t.Fatal("Hosted lookup broken")
	}
	if n.Name() != "x" {
		t.Fatal("Name broken")
	}
}

func TestNodeCloseIdempotent(t *testing.T) {
	n := New("c")
	if _, err := n.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}
