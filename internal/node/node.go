// Package node implements Pia nodes: the network servers that host
// subsystems and interconnect them over TCP. Each node serves as both
// a client and a server and handles all inter-node communication so
// that it is hidden from the user; the paper used Java RMI here, this
// implementation speaks the length-prefixed gob protocol of package
// wire. One TCP connection carries one channel, which preserves the
// per-channel FIFO order the time-management protocols require.
package node

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/resilience"
	"repro/internal/snapshot"
	"repro/internal/timeline"
	"repro/internal/vtime"
	"repro/internal/wire"
)

func init() { channel.Register() }

// ErrPeerLost is wrapped by every pump failure caused by losing the
// remote node mid-run — a raw EOF, a dead TCP connection, or an
// exhausted resilient session. A clean channel Close is not a peer
// loss.
var ErrPeerLost = errors.New("node: peer lost")

// PeerLostError carries the context of a lost peer: which subsystem
// vanished and the last channel sequence number processed from it.
type PeerLostError struct {
	Peer    string // peer subsystem name
	LastSeq uint64 // last channel seq processed from the peer
	Cause   error
}

func (e *PeerLostError) Error() string {
	return fmt.Sprintf("node: peer %s lost after seq %d: %v", e.Peer, e.LastSeq, e.Cause)
}

// Unwrap makes errors.Is match both ErrPeerLost and the cause chain
// (e.g. resilience.ErrSessionLost).
func (e *PeerLostError) Unwrap() []error { return []error{ErrPeerLost, e.Cause} }

// hello opens a channel: the dialing node announces which hosted
// subsystem it wants to bind to which remote subsystem.
type hello struct {
	FromNode string
	FromSub  string
	ToSub    string
	Policy   uint8
	Link     channel.LinkModel
}

// helloAck confirms or rejects the binding.
type helloAck struct {
	OK    bool
	Error string
}

// frame is the single frame type exchanged after the handshake.
type frame struct {
	Msg channel.Message
}

// Hosted bundles a subsystem with its channel hub and snapshot agent
// on a node.
type Hosted struct {
	Sub   *core.Subsystem
	Hub   *channel.Hub
	Agent *snapshot.Agent

	// OnChannel, when set, is invoked after an incoming handshake
	// creates a server-side endpoint — the place to bind split nets.
	OnChannel func(ep *channel.Endpoint)

	// sessions, guarded by the node's mu, are the resumable sessions
	// serving this subsystem's channels. The subsystem's departure
	// gate consults them (see bindSession).
	sessions []*resilience.Session
}

// Node is a Pia node: a number of sockets, each of which can
// facilitate a connection to a design tool, a simulator subsystem or
// a remote device.
type Node struct {
	name string

	mu     sync.Mutex
	hosted map[string]*Hosted
	ln     net.Listener
	rln    *resilience.Listener
	conns  []*wire.Conn
	closed bool
	wg     sync.WaitGroup

	coalesce    channel.CoalesceConfig
	coalesceSet bool

	// Fault injection and session resilience, applied to every
	// connection the node creates after the Set call.
	faults    faultnet.Config
	faultsSet bool
	resil     resilience.Config
	resilSet  bool
	flinks    []*faultnet.Link
	sessions  []*resilience.Session

	// metricsReg, when non-nil, is the registry every hosted
	// subsystem and connection surface reports into (see metrics.go).
	metricsReg *metrics.Registry

	// tlRec, when non-nil, is the timeline recorder every hosted
	// subsystem, hub, fault link, and session records into (see
	// timeline.go); tlMetricsOn remembers that its health counters
	// are already exported through metricsReg.
	tlRec       *timeline.Recorder
	tlMetricsOn bool

	// flightObs, when non-nil, is the flight observer notified on
	// connection failures (see flight.go). Error paths pay one
	// nil-guarded accessor, nothing more.
	flightObs *flight.Observer

	// Tracer receives connection-level diagnostics.
	Tracer func(string)
}

// New creates a node.
func New(name string) *Node {
	return &Node{name: name, hosted: make(map[string]*Hosted)}
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Host registers a subsystem on the node, creating its hub and
// snapshot agent. Call before Listen/Connect involving the
// subsystem. Note the agent attaches to endpoints created later, so
// Host wires agents lazily: the agent is created on first use.
func (n *Node) Host(sub *core.Subsystem) *Hosted {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h, ok := n.hosted[sub.Name()]; ok {
		return h
	}
	h := &Hosted{Sub: sub, Hub: channel.NewHub(sub)}
	n.hosted[sub.Name()] = h
	if n.metricsReg != nil {
		h.Sub.EnableMetrics(n.metricsReg)
		h.Hub.EnableMetrics(n.metricsReg)
	}
	if n.tlRec != nil {
		h.Sub.EnableTimeline(n.tlRec)
		h.Hub.EnableTimeline(n.tlRec)
	}
	return h
}

// Unhost removes a hosted subsystem: new dials naming it are
// rejected at the hello handshake and its hub closes, announcing
// completion to any peers still attached. The multi-tenant service
// uses this to retire a stopped session's endpoints from the shared
// listener. Returns false if the name was not hosted.
func (n *Node) Unhost(name string) bool {
	n.mu.Lock()
	h := n.hosted[name]
	delete(n.hosted, name)
	n.mu.Unlock()
	if h == nil {
		return false
	}
	_ = h.Hub.Close()
	return true
}

// Hosted returns the named hosted subsystem, or nil.
func (n *Node) Hosted(name string) *Hosted {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hosted[name]
}

// FinishAgents creates the snapshot agents once all channels exist.
// Call after every Listen/Connect binding is set up and before
// running.
func (n *Node) FinishAgents() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, h := range n.hosted {
		if h.Agent == nil {
			h.Agent = snapshot.NewAgent(h.Hub)
		}
	}
}

// SetCoalescing applies an egress coalescing policy to every channel
// endpoint the node has created and every endpoint it creates later
// (both dialed and accepted). Node transports implement batching, so
// this is the switch that turns one-frame-per-drive into batched
// frames.
func (n *Node) SetCoalescing(cfg channel.CoalesceConfig) {
	n.mu.Lock()
	n.coalesce = cfg
	n.coalesceSet = true
	hosted := make([]*Hosted, 0, len(n.hosted))
	for _, h := range n.hosted {
		hosted = append(hosted, h)
	}
	n.mu.Unlock()
	for _, h := range hosted {
		h.Hub.SetCoalescing(cfg)
	}
}

// applyCoalescing configures a freshly created endpoint with the
// node-wide policy, if one was set.
func (n *Node) applyCoalescing(ep *channel.Endpoint) {
	n.mu.Lock()
	cfg, set := n.coalesce, n.coalesceSet
	n.mu.Unlock()
	if set {
		ep.SetCoalescing(cfg)
	}
}

// SetFaults arms deterministic fault injection on every connection
// the node creates from now on. Each dialed channel gets its own
// faultnet link named "<node>-><remoteSub>"; the accepting side
// shapes all accepted connections through one link named
// "<node>/accept". Link names seed the per-link schedules, so the
// full fault pattern is a pure function of (cfg.Seed, topology).
// Call before Listen/Connect.
func (n *Node) SetFaults(cfg faultnet.Config) {
	n.mu.Lock()
	n.faults = cfg
	n.faultsSet = true
	n.mu.Unlock()
}

// SetResilience arms the resumable session layer on every connection
// the node creates from now on: channels then survive connection
// loss, injected drops, corruption and partitions, and can fall back
// to checkpoint rewinds. Call before Listen/Connect — both nodes of
// a channel must agree (the session handshake is not spoken by a
// plain node).
func (n *Node) SetResilience(cfg resilience.Config) {
	n.mu.Lock()
	n.resil = cfg
	n.resilSet = true
	n.mu.Unlock()
}

func (n *Node) faultLink(name string) *faultnet.Link {
	n.mu.Lock()
	cfg, set := n.faults, n.faultsSet
	n.mu.Unlock()
	if !set || !cfg.Enabled() {
		return nil
	}
	l := faultnet.NewLink(name, cfg)
	l.Tracer = n.Tracer
	n.mu.Lock()
	l.SetTimeline(n.tlRec)
	n.flinks = append(n.flinks, l)
	n.mu.Unlock()
	return l
}

func (n *Node) resilient() (resilience.Config, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.resil, n.resilSet && n.resil.Enabled()
}

func (n *Node) addSession(s *resilience.Session) {
	n.mu.Lock()
	if n.tlRec != nil {
		s.SetTimeline(n.tlRec)
	}
	n.sessions = append(n.sessions, s)
	n.mu.Unlock()
}

// bindSession ties a resumable session to the hosted subsystem it
// serves: finite-horizon departure now additionally waits until the
// session is quiescent — retained egress acked, no outage in
// progress, no rewind pending — and session transitions wake the
// scheduler to re-check. Without this, a run could end while the
// session still held egress that a dead connection would turn into a
// negotiated rewind, which needs exactly the scheduler that just
// left (the hang this gate exists to prevent).
func (n *Node) bindSession(h *Hosted, sess *resilience.Session) {
	n.mu.Lock()
	h.sessions = append(h.sessions, sess)
	first := len(h.sessions) == 1
	n.mu.Unlock()
	if first {
		h.Sub.SetDepartGate(func(vtime.Time) bool {
			n.mu.Lock()
			ss := append([]*resilience.Session(nil), h.sessions...)
			n.mu.Unlock()
			for _, s := range ss {
				if !s.Quiescent() {
					return false
				}
			}
			return true
		})
	}
	sess.SetOnChange(h.Sub.Wake)
}

// BreakConns kills the current TCP connection of every resilient
// session the node owns — chaos injection for reconnect tests. The
// sessions survive and resume; plain (non-resilient) connections are
// untouched.
func (n *Node) BreakConns() {
	n.mu.Lock()
	sessions := append([]*resilience.Session(nil), n.sessions...)
	n.mu.Unlock()
	for _, s := range sessions {
		s.BreakConn()
	}
}

// FaultLinks returns the node's fault-injection links, one per
// shaped connection path — the place to read per-link stats and
// verify schedule digests.
func (n *Node) FaultLinks() []*faultnet.Link {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]*faultnet.Link(nil), n.flinks...)
}

// FaultStats returns per-link fault-injection counters by link name.
func (n *Node) FaultStats() map[string]faultnet.Stats {
	out := make(map[string]faultnet.Stats)
	for _, l := range n.FaultLinks() {
		out[l.Name()] = l.Stats()
	}
	return out
}

// ResilienceStats sums the session counters across every resilient
// connection the node owns.
func (n *Node) ResilienceStats() resilience.Stats {
	n.mu.Lock()
	sessions := append([]*resilience.Session(nil), n.sessions...)
	n.mu.Unlock()
	var total resilience.Stats
	for _, s := range sessions {
		st := s.Stats()
		total.EpochDeaths += st.EpochDeaths
		total.DialAttempts += st.DialAttempts
		total.Resumes += st.Resumes
		total.ReplayedFrames += st.ReplayedFrames
		total.Rewinds += st.Rewinds
		total.GapKills += st.GapKills
		total.CrcKills += st.CrcKills
		total.DupFramesIn += st.DupFramesIn
		total.FramesOut += st.FramesOut
		total.FramesIn += st.FramesIn
		total.HeartbeatsOut += st.HeartbeatsOut
	}
	return total
}

// agentOf returns the snapshot agent of a hosted subsystem under the
// node lock — FinishAgents creates agents after channels are bound,
// so resolution must happen at call time.
func (n *Node) agentOf(sub string) *snapshot.Agent {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h := n.hosted[sub]; h != nil {
		return h.Agent
	}
	return nil
}

// rewindHooks builds the checkpoint hooks a resilient session
// consults during a retention-miss rewind negotiation.
func (n *Node) rewindHooks(sub string) (func() string, func(string) bool) {
	latest := func() string {
		if a := n.agentOf(sub); a != nil {
			return a.LatestTag()
		}
		return ""
	}
	has := func(tag string) bool {
		a := n.agentOf(sub)
		return a != nil && a.HasTag(tag)
	}
	return latest, has
}

// WireStats sums the framing counters of every connection the node
// owns: bytes and frames, in and out. The frame counts are what the
// coalescing ablation reports — fewer frames for the same drives is
// the whole point.
func (n *Node) WireStats() wire.Stats {
	n.mu.Lock()
	conns := append([]*wire.Conn(nil), n.conns...)
	n.mu.Unlock()
	var total wire.Stats
	for _, c := range conns {
		total.Add(c.Stats())
	}
	return total
}

// trace logs through the tracer if set.
func (n *Node) trace(format string, args ...any) {
	if n.Tracer != nil {
		n.Tracer(fmt.Sprintf(format, args...))
	}
}

// Listen starts accepting channel connections on addr (use ":0" for
// an ephemeral port) and returns the bound address. With resilience
// armed, accepted connections speak the resumable session protocol
// (and are shaped by the accept-side fault link, when faults are
// armed too).
func (n *Node) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("node %s: listen: %w", n.name, err)
	}
	if rcfg, ok := n.resilient(); ok {
		rl := resilience.NewListener(ln, rcfg)
		rl.Tracer = n.Tracer
		if flink := n.faultLink(n.name + "/accept"); flink != nil {
			rl.Wrap = flink.Wrap
		}
		n.mu.Lock()
		n.ln = ln
		n.rln = rl
		n.mu.Unlock()
		n.wg.Add(2)
		go func() {
			defer n.wg.Done()
			rl.Serve()
		}()
		go n.acceptSessions(rl)
		return ln.Addr().String(), nil
	}
	n.mu.Lock()
	n.ln = ln
	n.mu.Unlock()
	n.wg.Add(1)
	go n.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (n *Node) acceptLoop(ln net.Listener) {
	defer n.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		if t, ok := c.(*net.TCPConn); ok {
			t.SetNoDelay(true)
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			if err := n.serveConn(wire.NewConn(c), nil); err != nil && !n.isClosed() {
				n.notePeerLost(err)
				n.trace("node %s: connection error: %v", n.name, err)
			}
		}()
	}
}

// acceptSessions accepts resumable sessions: reconnects splice into
// their existing session inside the resilience listener, so each
// session surfaces here exactly once and pumps one channel for its
// whole life, across any number of TCP connections.
func (n *Node) acceptSessions(rl *resilience.Listener) {
	defer n.wg.Done()
	for {
		sess, err := rl.Accept()
		if err != nil {
			return // listener closed
		}
		n.addSession(sess)
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			if err := n.serveConn(wire.NewConn(sess), sess); err != nil && !n.isClosed() {
				n.notePeerLost(err)
				n.trace("node %s: connection error: %v", n.name, err)
			}
		}()
	}
}

// serveConn handles the server side of one channel connection. sess
// is non-nil when the connection is a resumable session.
func (n *Node) serveConn(c *wire.Conn, sess *resilience.Session) error {
	var h hello
	if err := c.Recv(&h); err != nil {
		c.Close()
		return fmt.Errorf("handshake: %w", err)
	}
	hosted := n.Hosted(h.ToSub)
	if hosted == nil {
		_ = c.Send(helloAck{Error: fmt.Sprintf("node %s hosts no subsystem %q", n.name, h.ToSub)})
		c.Close()
		return fmt.Errorf("unknown subsystem %q", h.ToSub)
	}
	ep, err := hosted.Hub.NewEndpoint(h.FromSub, channel.Policy(h.Policy), h.Link, &connTransport{c: c})
	if err != nil {
		_ = c.Send(helloAck{Error: err.Error()})
		c.Close()
		return err
	}
	n.applyCoalescing(ep)
	if sess != nil {
		sess.SetRewindHooks(n.rewindHooks(h.ToSub))
		n.bindSession(hosted, sess)
	}
	if hosted.OnChannel != nil {
		hosted.OnChannel(ep)
	}
	if err := c.Send(helloAck{OK: true}); err != nil {
		c.Close()
		return err
	}
	n.addConn(c)
	n.trace("node %s: accepted channel %s <- %s@%s", n.name, h.ToSub, h.FromSub, h.FromNode)
	return n.pump(c, ep, hosted, sess)
}

// Connect dials a remote node and opens a channel between the local
// hosted subsystem and a subsystem hosted there. Both sides share
// the policy and link model. With resilience armed the connection is
// a resumable session that outlives any single TCP connection; with
// faults armed every dial and every egress frame pass through a
// deterministic fault link named "<node>-><remoteSub>".
func (n *Node) Connect(localSub, addr, remoteSub string, policy channel.Policy, link channel.LinkModel) (*channel.Endpoint, error) {
	hosted := n.Hosted(localSub)
	if hosted == nil {
		return nil, fmt.Errorf("node %s hosts no subsystem %q", n.name, localSub)
	}
	flink := n.faultLink(n.name + "->" + remoteSub)
	dialRaw := func() (io.ReadWriteCloser, error) {
		if flink != nil {
			return flink.Dial("tcp", addr)
		}
		tc, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		if t, ok := tc.(*net.TCPConn); ok {
			t.SetNoDelay(true)
		}
		return tc, nil
	}
	var (
		c    *wire.Conn
		sess *resilience.Session
	)
	if rcfg, ok := n.resilient(); ok {
		s, err := resilience.Dial(dialRaw, rcfg)
		if err != nil {
			return nil, fmt.Errorf("node %s: session to %s: %w", n.name, addr, err)
		}
		s.Tracer = n.Tracer
		s.SetRewindHooks(n.rewindHooks(localSub))
		n.addSession(s)
		n.bindSession(hosted, s)
		sess = s
		c = wire.NewConn(s)
	} else {
		rwc, err := dialRaw()
		if err != nil {
			return nil, err
		}
		c = wire.NewConn(rwc)
	}
	if err := c.Send(hello{FromNode: n.name, FromSub: localSub, ToSub: remoteSub, Policy: uint8(policy), Link: link}); err != nil {
		c.Close()
		return nil, err
	}
	var ack helloAck
	if err := c.Recv(&ack); err != nil {
		c.Close()
		return nil, fmt.Errorf("node %s: handshake with %s: %w", n.name, addr, err)
	}
	if !ack.OK {
		c.Close()
		return nil, fmt.Errorf("node %s: peer rejected channel: %s", n.name, ack.Error)
	}
	ep, err := hosted.Hub.NewEndpoint(remoteSub, policy, link, &connTransport{c: c})
	if err != nil {
		c.Close()
		return nil, err
	}
	n.applyCoalescing(ep)
	n.addConn(c)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		if err := n.pump(c, ep, hosted, sess); err != nil && !n.isClosed() {
			n.notePeerLost(err)
			n.trace("node %s: channel to %s: %v", n.name, remoteSub, err)
		}
	}()
	n.trace("node %s: opened channel %s -> %s@%s", n.name, localSub, remoteSub, addr)
	return ep, nil
}

// pump reads frames and hands them to the endpoint until the
// connection drops. Gob frames carry one message each (the legacy
// path and the fallback); batch frames carry many. Both may
// interleave freely on one connection — the sender picks per flush.
//
// On a resumable session, connection loss never reaches this loop —
// the session reconnects and replays underneath. Two session events
// do surface: a negotiated checkpoint rewind (handled in place, the
// pump continues on the rewound timeline) and terminal session loss.
// Any unrecoverable transport failure is wrapped in PeerLostError.
func (n *Node) pump(c *wire.Conn, ep *channel.Endpoint, h *Hosted, sess *resilience.Session) error {
	dec := channel.NewBatchDecoder()
	var batch []channel.Message
	for {
		kind, payload, err := c.RecvFrame()
		if err != nil {
			var rw *resilience.RewoundError
			if sess != nil && errors.As(err, &rw) {
				if rerr := n.handleRewind(h, ep, sess, rw.Tag); rerr != nil {
					return rerr
				}
				// Fresh timeline: the peer's encoder restarted from
				// scratch, so batch-decoder state must too.
				dec = channel.NewBatchDecoder()
				continue
			}
			return &PeerLostError{Peer: ep.Peer(), LastSeq: ep.LastSeqIn(), Cause: err}
		}
		switch kind {
		case wire.FrameGob:
			var f frame
			if err := wire.DecodeGob(payload, &f); err != nil {
				return &PeerLostError{Peer: ep.Peer(), LastSeq: ep.LastSeqIn(), Cause: err}
			}
			ep.OnMessage(f.Msg)
			if f.Msg.Kind == channel.KindClose {
				return nil
			}
		case wire.FrameBatch:
			// Decode the whole frame into a reused buffer and hand it to
			// the endpoint as one batch: one scheduler injection per
			// frame. OnMessages copies the batch, so the buffer (and the
			// wire receive buffer the decoder read from) is immediately
			// reusable for the next frame.
			msgs, closed, err := dec.DecodeBatchInto(payload, batch)
			batch = msgs
			if err != nil {
				return &PeerLostError{Peer: ep.Peer(), LastSeq: ep.LastSeqIn(), Cause: err}
			}
			ep.OnMessages(msgs)
			if closed {
				return nil
			}
		default:
			return &PeerLostError{Peer: ep.Peer(), LastSeq: ep.LastSeqIn(),
				Cause: fmt.Errorf("node %s: unknown frame kind %d", n.name, kind)}
		}
	}
}

// handleRewind executes this node's share of a negotiated checkpoint
// rewind: once everything the dead connection already delivered has
// drained through the scheduler, the channel protocol resets, the
// tagged snapshot restores, egress reopens, and the session stream
// restarts from sequence one. Blocks the pump until the restore
// completes — nothing may be read from the rewound session before
// the protocol state is clean.
func (n *Node) handleRewind(h *Hosted, ep *channel.Endpoint, sess *resilience.Session, tag string) error {
	n.trace("node %s: rewinding channel %s to checkpoint %q", n.name, ep.Name(), tag)
	agent := n.agentOf(h.Sub.Name())
	if agent == nil {
		return fmt.Errorf("node %s: rewind to %q with no snapshot agent", n.name, tag)
	}
	done := make(chan error, 1)
	agent.RewindTo(tag,
		func() { ep.ResetProtocol() },
		func() {
			// Reopen before the in-flight replay: replayed drives may
			// forward across the channel immediately.
			sess.ClearRewind()
			ep.ResumeProtocol()
		},
		func(err error) { done <- err })
	if err := <-done; err != nil {
		// Abandon the session: the peer must see a terminal death
		// rather than wait forever for post-rewind traffic this
		// side can no longer produce.
		sess.Close()
		return &PeerLostError{Peer: ep.Peer(), LastSeq: ep.LastSeqIn(), Cause: err}
	}
	return nil
}

func (n *Node) addConn(c *wire.Conn) {
	n.mu.Lock()
	n.conns = append(n.conns, c)
	n.mu.Unlock()
}

func (n *Node) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

// RunAll runs every hosted subsystem concurrently until the horizon
// and returns the first error.
func (n *Node) RunAll(until vtime.Time) error {
	n.mu.Lock()
	hosted := make([]*Hosted, 0, len(n.hosted))
	for _, h := range n.hosted {
		hosted = append(hosted, h)
	}
	n.mu.Unlock()
	errs := make([]error, len(hosted))
	var wg sync.WaitGroup
	for i, h := range hosted {
		wg.Add(1)
		go func(i int, h *Hosted) {
			defer wg.Done()
			errs[i] = h.Sub.Run(until)
		}(i, h)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// CloseChannels announces completion on every hosted hub (grants of
// Infinity / Close messages) without tearing down the node.
func (n *Node) CloseChannels() error {
	n.mu.Lock()
	hosted := make([]*Hosted, 0, len(n.hosted))
	for _, h := range n.hosted {
		hosted = append(hosted, h)
	}
	n.mu.Unlock()
	var first error
	for _, h := range hosted {
		if err := h.Hub.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close tears the node down: listener, connections, hubs.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	ln := n.ln
	rln := n.rln
	conns := n.conns
	sessions := n.sessions
	n.mu.Unlock()
	_ = n.CloseChannels()
	if rln != nil {
		rln.Close() // closes the net listener too
	} else if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	for _, s := range sessions {
		s.Close()
	}
	n.wg.Wait()
	return nil
}

// connTransport adapts a wire.Conn to channel.Transport and
// channel.BatchTransport.
type connTransport struct {
	c *wire.Conn
}

func (t *connTransport) Send(m channel.Message) error { return t.c.Send(frame{Msg: m}) }
func (t *connTransport) Close() error                 { return nil } // node owns the conn

// SendBatch encodes the messages into as few batch frames as the
// frame limit allows (almost always one) and flushes them with a
// single Write. The messages are encoded directly into the
// connection's recycled egress buffer — no intermediate frame copy —
// so a steady-state flush allocates nothing beyond what gob fallback
// entries need, and the whole batch costs one syscall (and, on a
// resilient session, one CRC envelope).
func (t *connTransport) SendBatch(msgs []channel.Message) error {
	eg := t.c.BeginEgress()
	defer eg.Close()
	for len(msgs) > 0 {
		buf := eg.BeginFrame(wire.FrameBatch)
		buf, done, err := channel.AppendBatch(buf, msgs, wire.MaxFrame)
		if err != nil {
			return err
		}
		if err := eg.EndFrame(buf); err != nil {
			return err
		}
		msgs = msgs[done:]
	}
	return eg.Flush()
}
