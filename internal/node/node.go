// Package node implements Pia nodes: the network servers that host
// subsystems and interconnect them over TCP. Each node serves as both
// a client and a server and handles all inter-node communication so
// that it is hidden from the user; the paper used Java RMI here, this
// implementation speaks the length-prefixed gob protocol of package
// wire. One TCP connection carries one channel, which preserves the
// per-channel FIFO order the time-management protocols require.
package node

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/snapshot"
	"repro/internal/vtime"
	"repro/internal/wire"
)

func init() { channel.Register() }

// hello opens a channel: the dialing node announces which hosted
// subsystem it wants to bind to which remote subsystem.
type hello struct {
	FromNode string
	FromSub  string
	ToSub    string
	Policy   uint8
	Link     channel.LinkModel
}

// helloAck confirms or rejects the binding.
type helloAck struct {
	OK    bool
	Error string
}

// frame is the single frame type exchanged after the handshake.
type frame struct {
	Msg channel.Message
}

// Hosted bundles a subsystem with its channel hub and snapshot agent
// on a node.
type Hosted struct {
	Sub   *core.Subsystem
	Hub   *channel.Hub
	Agent *snapshot.Agent

	// OnChannel, when set, is invoked after an incoming handshake
	// creates a server-side endpoint — the place to bind split nets.
	OnChannel func(ep *channel.Endpoint)
}

// Node is a Pia node: a number of sockets, each of which can
// facilitate a connection to a design tool, a simulator subsystem or
// a remote device.
type Node struct {
	name string

	mu     sync.Mutex
	hosted map[string]*Hosted
	ln     net.Listener
	conns  []*wire.Conn
	closed bool
	wg     sync.WaitGroup

	coalesce    channel.CoalesceConfig
	coalesceSet bool

	// Tracer receives connection-level diagnostics.
	Tracer func(string)
}

// New creates a node.
func New(name string) *Node {
	return &Node{name: name, hosted: make(map[string]*Hosted)}
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Host registers a subsystem on the node, creating its hub and
// snapshot agent. Call before Listen/Connect involving the
// subsystem. Note the agent attaches to endpoints created later, so
// Host wires agents lazily: the agent is created on first use.
func (n *Node) Host(sub *core.Subsystem) *Hosted {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h, ok := n.hosted[sub.Name()]; ok {
		return h
	}
	h := &Hosted{Sub: sub, Hub: channel.NewHub(sub)}
	n.hosted[sub.Name()] = h
	return h
}

// Hosted returns the named hosted subsystem, or nil.
func (n *Node) Hosted(name string) *Hosted {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hosted[name]
}

// FinishAgents creates the snapshot agents once all channels exist.
// Call after every Listen/Connect binding is set up and before
// running.
func (n *Node) FinishAgents() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, h := range n.hosted {
		if h.Agent == nil {
			h.Agent = snapshot.NewAgent(h.Hub)
		}
	}
}

// SetCoalescing applies an egress coalescing policy to every channel
// endpoint the node has created and every endpoint it creates later
// (both dialed and accepted). Node transports implement batching, so
// this is the switch that turns one-frame-per-drive into batched
// frames.
func (n *Node) SetCoalescing(cfg channel.CoalesceConfig) {
	n.mu.Lock()
	n.coalesce = cfg
	n.coalesceSet = true
	hosted := make([]*Hosted, 0, len(n.hosted))
	for _, h := range n.hosted {
		hosted = append(hosted, h)
	}
	n.mu.Unlock()
	for _, h := range hosted {
		h.Hub.SetCoalescing(cfg)
	}
}

// applyCoalescing configures a freshly created endpoint with the
// node-wide policy, if one was set.
func (n *Node) applyCoalescing(ep *channel.Endpoint) {
	n.mu.Lock()
	cfg, set := n.coalesce, n.coalesceSet
	n.mu.Unlock()
	if set {
		ep.SetCoalescing(cfg)
	}
}

// WireStats sums the framing counters of every connection the node
// owns: bytes and frames, in and out. The frame counts are what the
// coalescing ablation reports — fewer frames for the same drives is
// the whole point.
func (n *Node) WireStats() (bytesIn, bytesOut, framesIn, framesOut int64) {
	n.mu.Lock()
	conns := append([]*wire.Conn(nil), n.conns...)
	n.mu.Unlock()
	for _, c := range conns {
		bi, bo, fi, fo := c.Stats()
		bytesIn += bi
		bytesOut += bo
		framesIn += fi
		framesOut += fo
	}
	return
}

// trace logs through the tracer if set.
func (n *Node) trace(format string, args ...any) {
	if n.Tracer != nil {
		n.Tracer(fmt.Sprintf(format, args...))
	}
}

// Listen starts accepting channel connections on addr (use ":0" for
// an ephemeral port) and returns the bound address.
func (n *Node) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("node %s: listen: %w", n.name, err)
	}
	n.mu.Lock()
	n.ln = ln
	n.mu.Unlock()
	n.wg.Add(1)
	go n.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (n *Node) acceptLoop(ln net.Listener) {
	defer n.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		if t, ok := c.(*net.TCPConn); ok {
			t.SetNoDelay(true)
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			if err := n.serveConn(wire.NewConn(c)); err != nil && !n.isClosed() {
				n.trace("node %s: connection error: %v", n.name, err)
			}
		}()
	}
}

// serveConn handles the server side of one channel connection.
func (n *Node) serveConn(c *wire.Conn) error {
	var h hello
	if err := c.Recv(&h); err != nil {
		c.Close()
		return fmt.Errorf("handshake: %w", err)
	}
	hosted := n.Hosted(h.ToSub)
	if hosted == nil {
		_ = c.Send(helloAck{Error: fmt.Sprintf("node %s hosts no subsystem %q", n.name, h.ToSub)})
		c.Close()
		return fmt.Errorf("unknown subsystem %q", h.ToSub)
	}
	ep, err := hosted.Hub.NewEndpoint(h.FromSub, channel.Policy(h.Policy), h.Link, &connTransport{c: c})
	if err != nil {
		_ = c.Send(helloAck{Error: err.Error()})
		c.Close()
		return err
	}
	n.applyCoalescing(ep)
	if hosted.OnChannel != nil {
		hosted.OnChannel(ep)
	}
	if err := c.Send(helloAck{OK: true}); err != nil {
		c.Close()
		return err
	}
	n.addConn(c)
	n.trace("node %s: accepted channel %s <- %s@%s", n.name, h.ToSub, h.FromSub, h.FromNode)
	return n.pump(c, ep)
}

// Connect dials a remote node and opens a channel between the local
// hosted subsystem and a subsystem hosted there. Both sides share
// the policy and link model.
func (n *Node) Connect(localSub, addr, remoteSub string, policy channel.Policy, link channel.LinkModel) (*channel.Endpoint, error) {
	hosted := n.Hosted(localSub)
	if hosted == nil {
		return nil, fmt.Errorf("node %s hosts no subsystem %q", n.name, localSub)
	}
	c, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	if err := c.Send(hello{FromNode: n.name, FromSub: localSub, ToSub: remoteSub, Policy: uint8(policy), Link: link}); err != nil {
		c.Close()
		return nil, err
	}
	var ack helloAck
	if err := c.Recv(&ack); err != nil {
		c.Close()
		return nil, fmt.Errorf("node %s: handshake with %s: %w", n.name, addr, err)
	}
	if !ack.OK {
		c.Close()
		return nil, fmt.Errorf("node %s: peer rejected channel: %s", n.name, ack.Error)
	}
	ep, err := hosted.Hub.NewEndpoint(remoteSub, policy, link, &connTransport{c: c})
	if err != nil {
		c.Close()
		return nil, err
	}
	n.applyCoalescing(ep)
	n.addConn(c)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		if err := n.pump(c, ep); err != nil && !n.isClosed() {
			n.trace("node %s: channel to %s: %v", n.name, remoteSub, err)
		}
	}()
	n.trace("node %s: opened channel %s -> %s@%s", n.name, localSub, remoteSub, addr)
	return ep, nil
}

// pump reads frames and hands them to the endpoint until the
// connection drops. Gob frames carry one message each (the legacy
// path and the fallback); batch frames carry many. Both may
// interleave freely on one connection — the sender picks per flush.
func (n *Node) pump(c *wire.Conn, ep *channel.Endpoint) error {
	dec := channel.NewBatchDecoder()
	for {
		kind, payload, err := c.RecvFrame()
		if err != nil {
			return err
		}
		switch kind {
		case wire.FrameGob:
			var f frame
			if err := wire.DecodeGob(payload, &f); err != nil {
				return err
			}
			ep.OnMessage(f.Msg)
			if f.Msg.Kind == channel.KindClose {
				return nil
			}
		case wire.FrameBatch:
			closed, err := dec.DecodeBatch(payload, ep.OnMessage)
			if err != nil {
				return err
			}
			if closed {
				return nil
			}
		default:
			return fmt.Errorf("node %s: unknown frame kind %d", n.name, kind)
		}
	}
}

func (n *Node) addConn(c *wire.Conn) {
	n.mu.Lock()
	n.conns = append(n.conns, c)
	n.mu.Unlock()
}

func (n *Node) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

// RunAll runs every hosted subsystem concurrently until the horizon
// and returns the first error.
func (n *Node) RunAll(until vtime.Time) error {
	n.mu.Lock()
	hosted := make([]*Hosted, 0, len(n.hosted))
	for _, h := range n.hosted {
		hosted = append(hosted, h)
	}
	n.mu.Unlock()
	errs := make([]error, len(hosted))
	var wg sync.WaitGroup
	for i, h := range hosted {
		wg.Add(1)
		go func(i int, h *Hosted) {
			defer wg.Done()
			errs[i] = h.Sub.Run(until)
		}(i, h)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// CloseChannels announces completion on every hosted hub (grants of
// Infinity / Close messages) without tearing down the node.
func (n *Node) CloseChannels() error {
	n.mu.Lock()
	hosted := make([]*Hosted, 0, len(n.hosted))
	for _, h := range n.hosted {
		hosted = append(hosted, h)
	}
	n.mu.Unlock()
	var first error
	for _, h := range hosted {
		if err := h.Hub.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close tears the node down: listener, connections, hubs.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	ln := n.ln
	conns := n.conns
	n.mu.Unlock()
	_ = n.CloseChannels()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	n.wg.Wait()
	return nil
}

// connTransport adapts a wire.Conn to channel.Transport and
// channel.BatchTransport.
type connTransport struct {
	c *wire.Conn
}

func (t *connTransport) Send(m channel.Message) error { return t.c.Send(frame{Msg: m}) }
func (t *connTransport) Close() error                 { return nil } // node owns the conn

// SendBatch encodes the messages into as few batch frames as the
// frame limit allows (almost always one) and writes them in order.
// The encode buffer is pooled, so a steady-state flush allocates
// nothing beyond what gob fallback entries need.
func (t *connTransport) SendBatch(msgs []channel.Message) error {
	buf := wire.GetBuf()
	defer func() { wire.PutBuf(buf) }()
	for len(msgs) > 0 {
		payload, done, err := channel.AppendBatch(buf[:0], msgs, wire.MaxFrame)
		if err != nil {
			return err
		}
		buf = payload
		if err := t.c.SendRaw(wire.FrameBatch, payload); err != nil {
			return err
		}
		msgs = msgs[done:]
	}
	return nil
}
