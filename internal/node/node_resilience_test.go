package node

import (
	"sync"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/resilience"
	"repro/internal/vtime"
	"repro/internal/wire"
)

// tsender emits values on "out" with a fixed period.
type tsender struct {
	Next, Count int
	Period      vtime.Duration
}

func (s *tsender) Run(p *core.Proc) error {
	for s.Next < s.Count {
		p.Delay(s.Period)
		p.Send("out", s.Next)
		s.Next++
	}
	return nil
}

func (s *tsender) SaveState() ([]byte, error)  { return core.GobSave(s) }
func (s *tsender) RestoreState(b []byte) error { return core.GobRestore(s, b) }

// trecv records every value with its virtual arrival time — the
// ground truth that fault-injected runs must reproduce exactly.
type trecv struct {
	Got   []int
	Times []vtime.Time
}

func (r *trecv) Run(p *core.Proc) error {
	for {
		m, ok := p.Recv("in")
		if !ok {
			return nil
		}
		r.Got = append(r.Got, m.Value.(int))
		r.Times = append(r.Times, m.Time)
	}
}

func (r *trecv) SaveState() ([]byte, error)  { return core.GobSave(r) }
func (r *trecv) RestoreState(b []byte) error { return core.GobRestore(r, b) }

// chaosPair is one two-node deployment of the sender/receiver
// workload, ready to run.
type chaosPair struct {
	n1, n2 *Node
	s1, s2 *core.Subsystem
	rcv    *trecv
}

// buildChaosPair wires the workload across two nodes on loopback
// TCP. configure, when non-nil, arms faults/resilience on both nodes
// before any connection exists.
func buildChaosPair(t *testing.T, count int, period, latency vtime.Duration, configure func(n1, n2 *Node)) *chaosPair {
	t.Helper()
	p := &chaosPair{}
	p.s1 = core.NewSubsystem("handheld")
	p.s2 = core.NewSubsystem("server")
	snd := &tsender{Count: count, Period: period}
	p.rcv = &trecv{}
	sc, _ := p.s1.NewComponent("prod", snd)
	sc.AddPort("out")
	rc, _ := p.s2.NewComponent("cons", p.rcv)
	rc.AddPort("in")
	l1, _ := p.s1.NewNet("link", 0)
	p.s1.Connect(l1, sc.Port("out"))
	l2, _ := p.s2.NewNet("link", 0)
	p.s2.Connect(l2, rc.Port("in"))

	p.n1 = New("node1")
	p.n2 = New("node2")
	p.n1.Host(p.s1)
	p.n2.Host(p.s2)
	if configure != nil {
		configure(p.n1, p.n2)
	}
	addr, err := p.n2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	link := channel.LinkModel{Latency: latency, PerMessage: 1}
	ep, err := p.n1.Connect("handheld", addr, "server", channel.Conservative, link)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.BindNet(l1, "link"); err != nil {
		t.Fatal(err)
	}
	ep2 := p.n2.Hosted("server").Hub.Endpoint("handheld")
	if ep2 == nil {
		t.Fatal("server side endpoint missing after handshake")
	}
	if err := ep2.BindNet(l2, "link"); err != nil {
		t.Fatal(err)
	}
	p.n1.FinishAgents()
	p.n2.FinishAgents()
	t.Cleanup(func() { p.n1.Close(); p.n2.Close() })
	return p
}

// run drives both subsystems to the horizon.
func (p *chaosPair) run(t *testing.T, horizon vtime.Time) {
	t.Helper()
	var wg sync.WaitGroup
	var e1, e2 error
	wg.Add(2)
	go func() { defer wg.Done(); e1 = p.s1.Run(horizon) }()
	go func() { defer wg.Done(); e2 = p.s2.Run(horizon) }()
	wg.Wait()
	if e1 != nil || e2 != nil {
		t.Fatalf("runs: %v / %v", e1, e2)
	}
}

// assertSameResults compares a chaotic run's delivery against the
// clean reference: same values, same order, same virtual times.
func assertSameResults(t *testing.T, clean, chaotic *trecv) {
	t.Helper()
	if len(chaotic.Got) != len(clean.Got) {
		t.Fatalf("chaotic run delivered %d values, clean run %d", len(chaotic.Got), len(clean.Got))
	}
	for i := range clean.Got {
		if chaotic.Got[i] != clean.Got[i] {
			t.Fatalf("value %d diverged: chaotic %d, clean %d", i, chaotic.Got[i], clean.Got[i])
		}
		if chaotic.Times[i] != clean.Times[i] {
			t.Fatalf("virtual time of value %d diverged: chaotic %v, clean %v",
				i, chaotic.Times[i], clean.Times[i])
		}
	}
}

// TestResilientRemoteDelivery: the session layer under a healthy
// network is invisible — same results as the plain path.
func TestResilientRemoteDelivery(t *testing.T) {
	clean := buildChaosPair(t, 10, 10, 5, nil)
	clean.run(t, 500)

	resil := buildChaosPair(t, 10, 10, 5, func(n1, n2 *Node) {
		cfg := resilience.Config{Heartbeat: 20 * time.Millisecond}
		n1.SetResilience(cfg)
		n2.SetResilience(cfg)
	})
	resil.run(t, 500)
	assertSameResults(t, clean.rcv, resil.rcv)
	st := resil.n1.ResilienceStats()
	if st.Resumes != 1 || st.EpochDeaths != 0 {
		t.Fatalf("healthy run session stats: %+v", st)
	}
}

// TestReconnectMidRun kills the TCP connection repeatedly mid-run;
// the session resumes each time and the simulation's drives and
// virtual times must match the uninterrupted run exactly.
func TestReconnectMidRun(t *testing.T) {
	clean := buildChaosPair(t, 40, 10, 5, nil)
	clean.run(t, 2000)
	if len(clean.rcv.Got) != 40 {
		t.Fatalf("clean run delivered %d", len(clean.rcv.Got))
	}

	chaos := buildChaosPair(t, 40, 10, 5, func(n1, n2 *Node) {
		cfg := resilience.Config{
			Heartbeat: 10 * time.Millisecond, HeartbeatMiss: 3,
			RetryBase: 2 * time.Millisecond, RetryMax: 50,
		}
		n1.SetResilience(cfg)
		n2.SetResilience(cfg)
	})
	stop := make(chan struct{})
	var killer sync.WaitGroup
	killer.Add(1)
	go func() {
		defer killer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(3 * time.Millisecond):
				chaos.n1.BreakConns()
			}
		}
	}()
	chaos.run(t, 2000)
	close(stop)
	killer.Wait()
	assertSameResults(t, clean.rcv, chaos.rcv)
	st := chaos.n1.ResilienceStats()
	if st.EpochDeaths == 0 || st.Resumes < 2 {
		t.Fatalf("connection kills never exercised the resume path: %+v", st)
	}
}

// TestDeliveryUnderInjectedFaults runs the workload over faultnet
// links injecting drops, duplicates, reordering and corruption in
// both directions, with a scripted partition/heal cycle. Results
// must be identical to the clean run, and each link's live fault
// schedule must verify against its pure replay digest.
func TestDeliveryUnderInjectedFaults(t *testing.T) {
	clean := buildChaosPair(t, 30, 10, 5, nil)
	clean.run(t, 2000)

	chaos := buildChaosPair(t, 30, 10, 5, func(n1, n2 *Node) {
		fcfg := faultnet.Config{
			Seed:     7,
			DropProb: 0.03, DupProb: 0.02, ReorderProb: 0.02, CorruptProb: 0.02,
			Partitions: []faultnet.Partition{{AtFrame: 40, Heal: 30 * time.Millisecond}},
		}
		rcfg := resilience.Config{
			Heartbeat: 10 * time.Millisecond, HeartbeatMiss: 3,
			RetryBase: 2 * time.Millisecond, RetryMax: 200,
		}
		for _, n := range []*Node{n1, n2} {
			n.SetFaults(fcfg)
			n.SetResilience(rcfg)
		}
	})
	chaos.run(t, 2000)
	assertSameResults(t, clean.rcv, chaos.rcv)

	links := append(chaos.n1.FaultLinks(), chaos.n2.FaultLinks()...)
	if len(links) == 0 {
		t.Fatal("no fault links created")
	}
	injected := int64(0)
	for _, l := range links {
		if err := l.VerifyDigest(); err != nil {
			t.Fatalf("link %s: %v", l.Name(), err)
		}
		st := l.Stats()
		injected += st.Dropped + st.Duplicated + st.Reordered + st.Corrupted + st.Cuts
	}
	if injected == 0 {
		t.Fatalf("fault links injected nothing: %+v", chaos.n1.FaultStats())
	}
	if st := chaos.n1.ResilienceStats(); st.EpochDeaths == 0 {
		t.Fatalf("faults never exercised recovery: %+v", st)
	}
}

// TestSnapshotRewindAcrossReconnect forces the checkpoint-rewind
// recovery: retention is tiny, a distributed snapshot completes
// early, then the connection dies while the sender still has a large
// granted window to emit into. The frames emitted during the outage
// overflow retention, so the resume negotiates a rewind to the
// snapshot — and the restored run must still produce exactly the
// clean run's drives and virtual times.
func TestSnapshotRewindAcrossReconnect(t *testing.T) {
	// Large link latency = large lookahead window: the sender can run
	// far ahead of the receiver's acks while the link is down.
	clean := buildChaosPair(t, 120, 1, 200, nil)
	clean.run(t, 3000)
	if len(clean.rcv.Got) != 120 {
		t.Fatalf("clean run delivered %d", len(clean.rcv.Got))
	}

	// The kill below races the workload's tail: if the run drains
	// before the outage, too few frames land in retention and no
	// rewind is needed (single-write framing makes this more likely —
	// one session envelope per flush instead of two per frame). The
	// test only proves something when the rewind path actually fired,
	// so retry the chaos leg a few times; every attempt still asserts
	// result correctness.
	for attempt := 0; ; attempt++ {
		chaos := buildChaosPair(t, 120, 1, 200, func(n1, n2 *Node) {
			cfg := resilience.Config{
				Heartbeat: 20 * time.Millisecond, HeartbeatMiss: 4,
				RetryBase: 5 * time.Millisecond, RetryMax: 100,
				RetentionFrames: 2,
			}
			n1.SetResilience(cfg)
			n2.SetResilience(cfg)
		})

		// Complete a distributed snapshot before any chaos.
		a1 := chaos.n1.Hosted("handheld").Agent
		a2 := chaos.n2.Hosted("server").Agent
		tag := a1.Initiate()
		var wg sync.WaitGroup
		var e1, e2 error
		wg.Add(2)
		go func() { defer wg.Done(); e1 = chaos.s1.Run(3000) }()
		go func() { defer wg.Done(); e2 = chaos.s2.Run(3000) }()
		deadline := time.Now().Add(10 * time.Second)
		for !(a1.HasTag(tag) && a2.HasTag(tag)) {
			if time.Now().After(deadline) {
				t.Fatal("snapshot never completed")
			}
			time.Sleep(time.Millisecond)
		}
		// Kill the connection; the sender keeps emitting into its
		// granted window, overflowing the 2-frame retention during
		// the outage.
		chaos.n1.BreakConns()
		wg.Wait()
		if e1 != nil || e2 != nil {
			t.Fatalf("runs: %v / %v", e1, e2)
		}
		assertSameResults(t, clean.rcv, chaos.rcv)
		st := chaos.n1.ResilienceStats()
		if st.Rewinds > 0 {
			return
		}
		if attempt == 4 {
			t.Fatalf("retention overflow never forced a rewind in %d attempts: %+v", attempt+1, st)
		}
	}
}

// TestPeerLostTyped: a vanished peer surfaces as PeerLostError
// carrying the peer name, matchable via errors.Is(err, ErrPeerLost).
func TestPeerLostTyped(t *testing.T) {
	errc := make(chan string, 8)
	p := buildChaosPair(t, 5, 10, 5, func(n1, n2 *Node) {
		n1.Tracer = func(line string) {
			select {
			case errc <- line:
			default:
			}
		}
	})
	// Sever the transport abruptly: close the server node's raw
	// connections without a channel Close handshake, then watch the
	// client pump fail.
	p.n2.mu.Lock()
	conns := append([]*wire.Conn(nil), p.n2.conns...)
	p.n2.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case line := <-errc:
			if containsAll(line, "peer", "lost", "server") {
				return
			}
		case <-deadline:
			t.Fatal("pump never reported the lost peer")
		}
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
