package node

import (
	"os"

	"repro/internal/faultnet"
	"repro/internal/metrics"
	"repro/internal/resilience"
	"repro/internal/timeline"
)

// EnableTimeline attaches a timeline recorder to everything this node
// owns: every hosted subsystem (scheduler lifecycle events) and its
// hub (channel protocol events), every faultnet link, and every
// resilient session — existing ones immediately, future ones as they
// are created. The recorder is stamped with the node's name so
// per-node timeline files merge unambiguously.
//
// Idempotent per node; with the timeline never enabled every hook
// stays nil and the hot paths are untouched. When a metrics registry
// is (or later becomes) wired, recorder health counters are exported
// through it.
func (n *Node) EnableTimeline(rec *timeline.Recorder) {
	if rec == nil {
		return
	}
	rec.SetNode(n.name)
	n.mu.Lock()
	if n.tlRec != nil {
		n.mu.Unlock()
		return
	}
	n.tlRec = rec
	hosted := make([]*Hosted, 0, len(n.hosted))
	for _, h := range n.hosted {
		hosted = append(hosted, h)
	}
	flinks := append([]*faultnet.Link(nil), n.flinks...)
	sessions := append([]*resilience.Session(nil), n.sessions...)
	n.mu.Unlock()

	for _, h := range hosted {
		h.Sub.EnableTimeline(rec)
		h.Hub.EnableTimeline(rec)
	}
	for _, l := range flinks {
		l.SetTimeline(rec)
	}
	for _, s := range sessions {
		s.SetTimeline(rec)
	}
	n.maybeExportTimelineMetrics()
}

// Timeline returns the recorder wired by EnableTimeline, or nil.
func (n *Node) Timeline() *timeline.Recorder {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tlRec
}

// WriteTimeline writes the node's timeline as a per-node native JSON
// file at path, ready for cross-node merging (timeline.MergeFiles or
// `pianode -timeline-merge`).
func (n *Node) WriteTimeline(path string) error {
	rec := n.Timeline()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteNative(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// maybeExportTimelineMetrics registers a pull collector over the
// recorder's counters once both the registry and the recorder exist.
// Called from both EnableTimeline and EnableMetrics, whichever comes
// second.
func (n *Node) maybeExportTimelineMetrics() {
	n.mu.Lock()
	reg, rec := n.metricsReg, n.tlRec
	if reg == nil || rec == nil || n.tlMetricsOn {
		n.mu.Unlock()
		return
	}
	n.tlMetricsOn = true
	name := n.name
	n.mu.Unlock()
	reg.AddCollector(func(emit func(metrics.Sample)) {
		st := rec.Stats()
		metrics.EmitCounters(emit, []string{"node", name},
			metrics.KV{Name: "pia_timeline_recorded", Value: int64(st.Recorded)},
			metrics.KV{Name: "pia_timeline_evicted", Value: int64(st.Evicted)},
			metrics.KV{Name: "pia_timeline_rewind_dropped", Value: int64(st.RewindDropped)},
			metrics.KV{Name: "pia_timeline_buffered", Value: int64(st.Buffered)},
		)
	})
}
