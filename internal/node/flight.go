package node

import (
	"errors"
	"strconv"

	"repro/internal/flight"
)

// EnableFlight attaches a flight observer to the node's failure
// triggers: an unrecoverable transport loss on a resumable session
// (the pump surfacing *PeerLostError) records the loss and trips the
// recorder, and the node's metrics registry / timeline recorder (when
// wired) are attached so post-mortems are self-contained. Idempotent
// per node; with flight never enabled the error paths pay one nil
// check.
func (n *Node) EnableFlight(o *flight.Observer) {
	if !o.Enabled() {
		return
	}
	n.mu.Lock()
	if n.flightObs != nil {
		n.mu.Unlock()
		return
	}
	n.flightObs = o
	reg, rec := n.metricsReg, n.tlRec
	n.mu.Unlock()

	o.Rec.SetInfo("node", n.name)
	if reg != nil {
		o.Rec.AttachRegistry(reg)
	}
	if rec != nil {
		o.Rec.AttachTimeline(rec)
	}
}

// flightObserver returns the attached observer (nil-safe to use).
func (n *Node) flightObserver() *flight.Observer {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.flightObs
}

// notePeerLost inspects a pump/serve error and, when it is a
// *PeerLostError (a resumable session exhausting its transport for
// good), records the transition and trips the flight recorder. Any
// other connection error is recorded as a transition but does not
// freeze the ring.
func (n *Node) notePeerLost(err error) {
	o := n.flightObserver()
	if !o.Enabled() {
		return
	}
	var lost *PeerLostError
	if errors.As(err, &lost) {
		o.Event("peer", lost.Peer, "peer lost: "+err.Error(), int64(lost.LastSeq))
		o.Trip("peer-lost", lost.Peer+" last_seq="+strconv.FormatUint(lost.LastSeq, 10))
		return
	}
	o.Event("conn", n.name, err.Error(), 0)
}
