package hwstub

import (
	"testing"

	"repro/internal/core"
	"repro/internal/signal"
	"repro/internal/vtime"
)

// pulseLogic raises an interrupt on line 1 every `period` ticks, and
// echoes register 0 into register 1 (doubled).
func pulseLogic(period vtime.Duration) Logic {
	return func(regs map[uint32]uint32, from, to vtime.Time) []Interrupt {
		var out []Interrupt
		first := (from/vtime.Time(period) + 1) * vtime.Time(period)
		for t := first; t <= to; t += vtime.Time(period) {
			out = append(out, Interrupt{Line: 1, At: t, Data: regs[0]})
		}
		regs[1] = regs[0] * 2
		return out
	}
}

func TestSimBoardBasics(t *testing.T) {
	b := NewSimBoard(pulseLogic(10))
	if err := b.SetTime(100); err != nil {
		t.Fatal(err)
	}
	if got, _ := b.ReadTime(); got != 100 {
		t.Fatalf("ReadTime = %v", got)
	}
	b.WriteReg(0, 21)
	irqs, err := b.RunFor(25)
	if err != nil {
		t.Fatal(err)
	}
	// Window (100,125]: pulses at 110, 120.
	if len(irqs) != 2 || irqs[0].At != 110 || irqs[1].At != 120 {
		t.Fatalf("irqs = %v", irqs)
	}
	if v, _ := b.ReadReg(1); v != 42 {
		t.Fatalf("reg1 = %d", v)
	}
	if _, err := b.RunFor(-1); err == nil {
		t.Fatal("negative window accepted")
	}
	if err := b.Stall(); err != nil || !b.Stalled() {
		t.Fatal("Stall broken")
	}
	if _, err := b.RunFor(1); err != nil {
		t.Fatal(err)
	}
	if b.Stalled() {
		t.Fatal("RunFor did not clear stall")
	}
}

func TestSimBoardBuffering(t *testing.T) {
	b := NewSimBoard(nil)
	b.Buffer(Interrupt{Line: 3, At: 7})
	got, _ := b.Pending()
	if len(got) != 1 || got[0].Line != 3 {
		t.Fatalf("Pending = %v", got)
	}
	if again, _ := b.Pending(); len(again) != 0 {
		t.Fatal("Pending did not drain")
	}
	// Buffered interrupts ride along with the next RunFor.
	b.Buffer(Interrupt{Line: 4, At: 9})
	irqs, _ := b.RunFor(5)
	if len(irqs) != 1 || irqs[0].Line != 4 {
		t.Fatalf("RunFor did not deliver buffered irq: %v", irqs)
	}
}

// irqCollector receives IRQ messages.
type irqCollector struct {
	Lines []int
	Times []vtime.Time
}

func (c *irqCollector) Run(p *core.Proc) error {
	for {
		m, ok := p.Recv("irq")
		if !ok {
			return nil
		}
		if irq, isIRQ := m.Value.(signal.IRQ); isIRQ {
			c.Lines = append(c.Lines, irq.Line)
			c.Times = append(c.Times, m.Time)
		}
	}
}

func (c *irqCollector) SaveState() ([]byte, error)  { return core.GobSave(c) }
func (c *irqCollector) RestoreState(b []byte) error { return core.GobRestore(c, b) }

func buildHWSim(t *testing.T, dev Device) (*core.Subsystem, *irqCollector, *Adapter) {
	t.Helper()
	s := core.NewSubsystem("hw")
	ad := &Adapter{Dev: dev, Quantum: 10, Horizon: 100}
	hc, _ := s.NewComponent("board", ad)
	hc.AddPort("bus")
	hc.AddPort("irq")
	col := &irqCollector{}
	cc, _ := s.NewComponent("cpu", col)
	cc.AddPort("irq")
	nIRQ, _ := s.NewNet("irqline", 0)
	s.Connect(nIRQ, hc.Port("irq"), cc.Port("irq"))
	nBus, _ := s.NewNet("bus", 0)
	s.Connect(nBus, hc.Port("bus"))
	return s, col, ad
}

func TestAdapterForwardsInterrupts(t *testing.T) {
	b := NewSimBoard(pulseLogic(25))
	s, col, ad := buildHWSim(t, b)
	if err := s.Run(200); err != nil {
		t.Fatal(err)
	}
	s.Teardown()
	// Horizon 100: pulses at 25, 50, 75, 100.
	if len(col.Lines) != 4 {
		t.Fatalf("forwarded %d interrupts (%v), want 4", len(col.Lines), col.Times)
	}
	if ad.Forwarded != 4 {
		t.Fatalf("Forwarded = %d", ad.Forwarded)
	}
	// Hardware and simulator time stayed in lock step: each IRQ is
	// delivered within one quantum of its raise time.
	for i, at := range col.Times {
		raise := vtime.Time(25 * (i + 1))
		if at < raise || at > raise.Add(10) {
			t.Fatalf("irq %d delivered at %v, raised %v (quantum 10)", i, at, raise)
		}
	}
	if !b.Stalled() {
		t.Fatal("adapter did not stall the hardware at the horizon")
	}
}

func TestAdapterBusWrites(t *testing.T) {
	b := NewSimBoard(nil)
	s := core.NewSubsystem("bus")
	ad := &Adapter{Dev: b, Quantum: 10, Horizon: 200}
	hc, _ := s.NewComponent("board", ad)
	hc.AddPort("bus")
	hc.AddPort("irq")
	drv := core.BehaviorFunc(func(p *core.Proc) error {
		p.Delay(15)
		p.Send("bus", signal.BusCycle{Addr: 5, Data: 77, Write: true})
		return nil
	})
	dc, _ := s.NewComponent("drv", drv)
	dc.AddPort("bus")
	n, _ := s.NewNet("bus", 0)
	s.Connect(n, hc.Port("bus"), dc.Port("bus"))
	nIRQ, _ := s.NewNet("irq", 0)
	s.Connect(nIRQ, hc.Port("irq"))
	if err := s.Run(300); err != nil {
		t.Fatal(err)
	}
	s.Teardown()
	if v, _ := b.ReadReg(5); v != 77 {
		t.Fatalf("register write did not reach the device: reg5=%d", v)
	}
}

func TestRemoteDevice(t *testing.T) {
	b := NewSimBoard(pulseLogic(25))
	srv, addr, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dev, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	if err := dev.SetTime(50); err != nil {
		t.Fatal(err)
	}
	if got, err := dev.ReadTime(); err != nil || got != 50 {
		t.Fatalf("remote ReadTime = %v, %v", got, err)
	}
	if err := dev.WriteReg(9, 123); err != nil {
		t.Fatal(err)
	}
	if v, err := dev.ReadReg(9); err != nil || v != 123 {
		t.Fatalf("remote reg = %d, %v", v, err)
	}
	irqs, err := dev.RunFor(30)
	if err != nil {
		t.Fatal(err)
	}
	if len(irqs) != 1 || irqs[0].At != 75 {
		t.Fatalf("remote RunFor irqs = %v", irqs)
	}
	if err := dev.Stall(); err != nil {
		t.Fatal(err)
	}
	if !b.Stalled() {
		t.Fatal("remote stall did not reach the board")
	}
	if _, err := dev.Pending(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteDeviceInSimulation(t *testing.T) {
	// The full §2.3 scenario: a remotely located device patched into
	// a simulated circuit through the stub.
	b := NewSimBoard(pulseLogic(25))
	srv, addr, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dev, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	s, col, _ := buildHWSim(t, dev)
	if err := s.Run(200); err != nil {
		t.Fatal(err)
	}
	s.Teardown()
	if len(col.Lines) != 4 {
		t.Fatalf("remote hardware forwarded %d interrupts, want 4", len(col.Lines))
	}
}

func TestRemoteDeviceErrors(t *testing.T) {
	b := NewSimBoard(nil)
	srv, addr, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dev, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	if _, err := dev.RunFor(-5); err == nil {
		t.Fatal("remote negative window accepted")
	}
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to dead port succeeded")
	}
}
