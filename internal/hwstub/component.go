package hwstub

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/signal"
	"repro/internal/vtime"
)

// Adapter wraps a Device as a Pia component behaviour: the
// hardware/software stub. It keeps the device's time in lock step
// with the component's local time, forwards register writes arriving
// as BusCycle messages on port "bus", and raises the device's
// buffered interrupts as IRQ messages on port "irq".
//
// Adapter is deliberately not checkpointable: real hardware cannot be
// rolled back, so components backed by hardware belong behind
// conservative channels — which is also why the paper's conservative
// protocol exists.
type Adapter struct {
	Dev Device
	// Quantum is how far the hardware may run per step while idle;
	// smaller quanta mean finer interrupt timing, more stub calls.
	Quantum vtime.Duration
	// Horizon stops the adapter (hardware has no natural end).
	Horizon vtime.Time

	// Forwarded counts interrupts passed up to the simulator.
	Forwarded int64
}

// Run implements core.Behavior.
func (a *Adapter) Run(p *core.Proc) error {
	if a.Dev == nil {
		return fmt.Errorf("hwstub: adapter without device")
	}
	q := a.Quantum
	if q <= 0 {
		q = vtime.Duration(1 * vtime.Microsecond)
	}
	if err := a.Dev.SetTime(p.Time()); err != nil {
		return fmt.Errorf("hwstub: set time: %w", err)
	}
	for a.Horizon == 0 || p.Time() < a.Horizon {
		// Service bus traffic that is due before letting the
		// hardware run another quantum.
		m, ok := p.RecvDeadline(p.Time().Add(q), "bus")
		if ok {
			switch v := m.Value.(type) {
			case signal.BusCycle:
				if v.Write {
					if err := a.Dev.WriteReg(v.Addr, uint32(v.Data)); err != nil {
						return fmt.Errorf("hwstub: write reg: %w", err)
					}
				} else {
					rv, err := a.Dev.ReadReg(v.Addr)
					if err != nil {
						return fmt.Errorf("hwstub: read reg: %w", err)
					}
					p.Send("bus", signal.BusCycle{Addr: v.Addr, Data: signal.Word(rv)})
				}
			case signal.Word:
				if err := a.Dev.WriteReg(0, uint32(v)); err != nil {
					return fmt.Errorf("hwstub: write reg0: %w", err)
				}
			}
			// The hardware ran while we serviced the bus: bring its
			// clock up to our local time.
			if err := a.syncTo(p); err != nil {
				return err
			}
			continue
		}
		// Deadline expired: local time advanced by one quantum; run
		// the hardware for the same window and collect interrupts.
		if err := a.syncTo(p); err != nil {
			return err
		}
		if !p.Pending() && p.Time() >= a.Horizon && a.Horizon != 0 {
			break
		}
	}
	return a.Dev.Stall()
}

// syncTo advances the device to the component's local time and
// forwards any interrupts raised in the window.
func (a *Adapter) syncTo(p *core.Proc) error {
	ht, err := a.Dev.ReadTime()
	if err != nil {
		return fmt.Errorf("hwstub: read time: %w", err)
	}
	if ht >= p.Time() {
		return nil
	}
	irqs, err := a.Dev.RunFor(p.Time().Sub(ht))
	if err != nil {
		return fmt.Errorf("hwstub: run: %w", err)
	}
	for _, irq := range irqs {
		a.Forwarded++
		p.SendAt("irq", signal.IRQ{Line: irq.Line, Cause: fmt.Sprintf("hw@%v", irq.At)}, vtime.Max(irq.At, p.Time()))
	}
	return nil
}
