package hwstub

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/vtime"
	"repro/internal/wire"
)

// The remote hardware protocol: a tiny request/response RPC over the
// wire framing. This is the paper's "small server which resides on
// the embedded system": it exposes the stub operations so a remotely
// located device can be patched into a simulated circuit.

type hwReq struct {
	Op   string // "settime", "readtime", "runfor", "stall", "pending", "write", "read"
	Time vtime.Time
	Dur  vtime.Duration
	Addr uint32
	Val  uint32
}

type hwResp struct {
	Err  string
	Time vtime.Time
	Val  uint32
	IRQs []Interrupt
}

// Server makes a Device remotely accessible.
type Server struct {
	dev Device
	ln  net.Listener
	wg  sync.WaitGroup
}

// Serve starts a hardware server for dev on addr (":0" for
// ephemeral); it returns the bound address.
func Serve(dev Device, addr string) (*Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("hwstub: listen: %w", err)
	}
	s := &Server{dev: dev, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(wire.NewConn(c))
		}()
	}
}

func (s *Server) serve(c *wire.Conn) {
	defer c.Close()
	for {
		var req hwReq
		if err := c.Recv(&req); err != nil {
			return
		}
		var resp hwResp
		switch req.Op {
		case "settime":
			resp.Err = errStr(s.dev.SetTime(req.Time))
		case "readtime":
			t, err := s.dev.ReadTime()
			resp.Time, resp.Err = t, errStr(err)
		case "runfor":
			irqs, err := s.dev.RunFor(req.Dur)
			resp.IRQs, resp.Err = irqs, errStr(err)
		case "stall":
			resp.Err = errStr(s.dev.Stall())
		case "pending":
			irqs, err := s.dev.Pending()
			resp.IRQs, resp.Err = irqs, errStr(err)
		case "write":
			resp.Err = errStr(s.dev.WriteReg(req.Addr, req.Val))
		case "read":
			v, err := s.dev.ReadReg(req.Addr)
			resp.Val, resp.Err = v, errStr(err)
		default:
			resp.Err = fmt.Sprintf("hwstub: unknown op %q", req.Op)
		}
		if err := c.Send(resp); err != nil {
			return
		}
	}
}

// Close shuts the server down.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func errStr(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// RemoteDevice is a Device backed by a hardware server across the
// network. It is safe for use by one adapter at a time.
type RemoteDevice struct {
	mu sync.Mutex
	c  *wire.Conn
}

// Dial connects to a hardware server.
func Dial(addr string) (*RemoteDevice, error) {
	c, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &RemoteDevice{c: c}, nil
}

// Close releases the connection.
func (r *RemoteDevice) Close() error { return r.c.Close() }

func (r *RemoteDevice) call(req hwReq) (hwResp, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.c.Send(req); err != nil {
		return hwResp{}, err
	}
	var resp hwResp
	if err := r.c.Recv(&resp); err != nil {
		return hwResp{}, err
	}
	if resp.Err != "" {
		return resp, fmt.Errorf("%s", resp.Err)
	}
	return resp, nil
}

// SetTime implements Device.
func (r *RemoteDevice) SetTime(t vtime.Time) error {
	_, err := r.call(hwReq{Op: "settime", Time: t})
	return err
}

// ReadTime implements Device.
func (r *RemoteDevice) ReadTime() (vtime.Time, error) {
	resp, err := r.call(hwReq{Op: "readtime"})
	return resp.Time, err
}

// RunFor implements Device.
func (r *RemoteDevice) RunFor(d vtime.Duration) ([]Interrupt, error) {
	resp, err := r.call(hwReq{Op: "runfor", Dur: d})
	return resp.IRQs, err
}

// Stall implements Device.
func (r *RemoteDevice) Stall() error {
	_, err := r.call(hwReq{Op: "stall"})
	return err
}

// Pending implements Device.
func (r *RemoteDevice) Pending() ([]Interrupt, error) {
	resp, err := r.call(hwReq{Op: "pending"})
	return resp.IRQs, err
}

// WriteReg implements Device.
func (r *RemoteDevice) WriteReg(addr, v uint32) error {
	_, err := r.call(hwReq{Op: "write", Addr: addr, Val: v})
	return err
}

// ReadReg implements Device.
func (r *RemoteDevice) ReadReg(addr uint32) (uint32, error) {
	resp, err := r.call(hwReq{Op: "read", Addr: addr})
	return resp.Val, err
}

var _ Device = (*RemoteDevice)(nil)
