package trace

import (
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/vtime"
)

// refRecorder is the pre-ring reference implementation: a plain slice
// that re-copies the retained window on every overflowing append. The
// ring buffer must stay bit-identical to it through any sequence of
// record and dropAfter calls.
type refRecorder struct {
	events []Event
	limit  int
}

func (r *refRecorder) record(e Event) {
	r.events = append(r.events, e)
	if r.limit > 0 && len(r.events) > r.limit {
		r.events = append(r.events[:0], r.events[len(r.events)-r.limit:]...)
	}
}

func (r *refRecorder) dropAfter(sub string, t vtime.Time) {
	kept := r.events[:0]
	for _, e := range r.events {
		if e.Sub == sub && e.Time > t {
			continue
		}
		kept = append(kept, e)
	}
	r.events = kept
}

func (r *refRecorder) digest() uint64 {
	h := fnv.New64a()
	for i := range r.events {
		e := &r.events[i]
		fmt.Fprintf(h, "%d|%s|%s|%s|%v\n", e.Time, e.Sub, e.Net, e.Source, e.Value)
	}
	return h.Sum64()
}

// step drives both implementations with one deterministic pseudo-
// random operation derived from a tiny LCG (math/rand would work too;
// this keeps the sequence explicit and stable).
func TestRingMatchesReference(t *testing.T) {
	for _, limit := range []int{0, 1, 7, 64} {
		t.Run(fmt.Sprintf("limit=%d", limit), func(t *testing.T) {
			ring := NewRecorder(limit)
			ref := &refRecorder{limit: limit}
			state := uint64(12345)
			next := func(n uint64) uint64 {
				state = state*6364136223846793005 + 1442695040888963407
				return (state >> 33) % n
			}
			subs := []string{"a", "b"}
			for op := 0; op < 2000; op++ {
				if next(20) == 0 {
					// A restore: drop one subsystem's future.
					sub := subs[next(2)]
					cut := vtime.Time(next(1000))
					ring.dropAfter(sub, cut)
					ref.dropAfter(sub, cut)
				} else {
					e := Event{
						Time:   vtime.Time(next(1000)),
						Sub:    subs[next(2)],
						Net:    "n",
						Source: "s",
						Value:  int(next(100)),
					}
					ring.record(e)
					ref.record(e)
				}
				if ring.Len() != len(ref.events) {
					t.Fatalf("op %d: Len %d != ref %d", op, ring.Len(), len(ref.events))
				}
				if ring.Digest() != ref.digest() {
					t.Fatalf("op %d: digest diverged from reference", op)
				}
			}
			// Events() must agree too (same copy, same stable sort).
			got := ring.Events()
			want := (&Recorder{events: append([]Event(nil), ref.events...), n: len(ref.events)}).Events()
			if len(got) != len(want) {
				t.Fatalf("Events len %d != %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Events[%d] = %+v, want %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestRecordSteadyStateZeroAllocs pins the bugfix: once a limited
// recorder's window is full, each further record must touch O(1)
// memory — overwrite in place, no re-copy, no allocation.
func TestRecordSteadyStateZeroAllocs(t *testing.T) {
	r := NewRecorder(1024)
	e := Event{Time: 1, Sub: "s", Net: "n", Source: "c", Value: 7}
	for i := 0; i < 1024; i++ {
		r.record(e)
	}
	allocs := testing.AllocsPerRun(1000, func() { r.record(e) })
	if allocs != 0 {
		t.Fatalf("steady-state record allocates %.1f times/op, want 0", allocs)
	}
}

// BenchmarkRecorderRecord measures steady-state appends on a full
// limited recorder. Before the ring buffer this was O(limit) per
// event (the whole window re-copied each time), so ns/op scaled with
// the limit; now the two sizes must cost the same and allocate
// nothing.
func BenchmarkRecorderRecord(b *testing.B) {
	for _, limit := range []int{1024, 65536} {
		b.Run(fmt.Sprintf("limit=%d", limit), func(b *testing.B) {
			r := NewRecorder(limit)
			e := Event{Time: 1, Sub: "sub", Net: "net", Source: "comp", Value: 42}
			for i := 0; i < limit; i++ {
				r.record(e) // fill to steady state
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Time = vtime.Time(i)
				r.record(e)
			}
		})
	}
}
