package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/signal"
	"repro/internal/vtime"
)

// wiggler drives a level net and a word net. It keeps its loop index
// in saved state and paces itself with DelayUntil, so a rollback
// re-enters exactly where the checkpoint left off.
type wiggler struct {
	N int
	I int
}

func (g *wiggler) Run(p *core.Proc) error {
	for ; g.I < g.N; g.I++ {
		p.DelayUntil(vtime.Time(10 * (g.I + 1)))
		p.Send("bit", signal.Level(g.I%2 == 0))
		p.Send("word", signal.Word(g.I*1000))
	}
	return nil
}

func (g *wiggler) SaveState() ([]byte, error)  { return core.GobSave(g) }
func (g *wiggler) RestoreState(b []byte) error { return core.GobRestore(g, b) }

func buildTraced(t *testing.T, n int) (*core.Subsystem, *Recorder) {
	t.Helper()
	s := core.NewSubsystem("dut")
	c, _ := s.NewComponent("gen", &wiggler{N: n})
	c.AddPort("bit")
	c.AddPort("word")
	nb, _ := s.NewNet("bitline", 0)
	s.Connect(nb, c.Port("bit"))
	nw, _ := s.NewNet("wordbus", 0)
	s.Connect(nw, c.Port("word"))
	r := NewRecorder(0)
	r.Attach(s)
	return s, r
}

func TestRecorderCollectsDrives(t *testing.T) {
	s, r := buildTraced(t, 5)
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	evs := r.Events()
	if len(evs) != 10 {
		t.Fatalf("recorded %d events, want 10", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatal("events not time-ordered")
		}
	}
	if evs[0].Sub != "dut" || evs[0].Source != "gen" {
		t.Fatalf("event metadata wrong: %+v", evs[0])
	}
	if r.Len() != 10 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRecorderLimit(t *testing.T) {
	s := core.NewSubsystem("lim")
	c, _ := s.NewComponent("gen", &wiggler{N: 50})
	c.AddPort("bit")
	c.AddPort("word")
	nb, _ := s.NewNet("b", 0)
	s.Connect(nb, c.Port("bit"))
	nw, _ := s.NewNet("w", 0)
	s.Connect(nw, c.Port("word"))
	r := NewRecorder(20)
	r.Attach(s)
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 20 {
		t.Fatalf("Len = %d with limit 20", r.Len())
	}
	// The retained events are the most recent ones.
	evs := r.Events()
	if evs[len(evs)-1].Time != 500 {
		t.Fatalf("last event at %v, want 500", evs[len(evs)-1].Time)
	}
}

func TestWriteText(t *testing.T) {
	s, r := buildTraced(t, 2)
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "dut/bitline") || !strings.Contains(out, "dut/wordbus") {
		t.Fatalf("text log missing nets:\n%s", out)
	}
}

func TestWriteVCD(t *testing.T) {
	s, r := buildTraced(t, 3)
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteVCD(&buf); err != nil {
		t.Fatal(err)
	}
	vcd := buf.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module dut $end",
		"$var wire 1 ",
		"$var wire 32 ",
		"bitline",
		"wordbus",
		"$enddefinitions $end",
		"#10",
		"#30",
	} {
		if !strings.Contains(vcd, want) {
			t.Fatalf("VCD missing %q:\n%s", want, vcd)
		}
	}
	// Level changes appear as scalar 0/1 followed by the id; words as
	// binary vectors.
	if !strings.Contains(vcd, "1!") && !strings.Contains(vcd, "1\"") {
		t.Fatalf("no scalar level change found:\n%s", vcd)
	}
	if !strings.Contains(vcd, "b11111010000 ") { // 2000 in binary
		t.Fatalf("word vector for 2000 missing:\n%s", vcd)
	}
	// Timestamps strictly increasing.
	lastTS := int64(-1)
	for _, line := range strings.Split(vcd, "\n") {
		if strings.HasPrefix(line, "#") {
			var ts int64
			if _, err := fmtSscan(line[1:], &ts); err != nil {
				t.Fatalf("bad timestamp line %q", line)
			}
			if ts <= lastTS {
				t.Fatalf("timestamps not increasing at %q", line)
			}
			lastTS = ts
		}
	}
}

func fmtSscan(s string, v *int64) (int, error) {
	n := int64(0)
	if len(s) == 0 {
		return 0, errEmpty
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, errEmpty
		}
		n = n*10 + int64(s[i]-'0')
	}
	*v = n
	return 1, nil
}

var errEmpty = bytes.ErrTooLarge // any sentinel

func TestRollbackDropsFuture(t *testing.T) {
	s, r := buildTraced(t, 10)
	s.SetAutoCheckpoint(30)
	rolled := false
	s.OnStep = func(now vtime.Time) {
		if now >= 80 && !rolled {
			rolled = true
			s.RequestRollback(50)
		}
	}
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	evs := r.Events()
	// Final committed run: 10 steps => 20 events, but NOT duplicated
	// from the rolled-back attempt.
	if len(evs) != 20 {
		t.Fatalf("recorded %d events after rollback, want 20", len(evs))
	}
	seen := map[string]int{}
	for _, e := range evs {
		seen[e.Net]++
	}
	if seen["bitline"] != 10 || seen["wordbus"] != 10 {
		t.Fatalf("per-net counts %v", seen)
	}
}

func TestVCDIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		seen[id] = true
		for j := 0; j < len(id); j++ {
			if id[j] < 33 || id[j] > 126 {
				t.Fatalf("id %q contains non-printable byte", id)
			}
		}
	}
}

func TestSanitize(t *testing.T) {
	if sanitize("a b/c-d") != "a_b_c_d" || sanitize("") != "_" || sanitize("ok_9") != "ok_9" {
		t.Fatal("sanitize wrong")
	}
}
