package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/signal"
	"repro/internal/vtime"
)

// wiggler drives a level net and a word net. It keeps its loop index
// in saved state and paces itself with DelayUntil, so a rollback
// re-enters exactly where the checkpoint left off.
type wiggler struct {
	N int
	I int
}

func (g *wiggler) Run(p *core.Proc) error {
	for ; g.I < g.N; g.I++ {
		p.DelayUntil(vtime.Time(10 * (g.I + 1)))
		p.Send("bit", signal.Level(g.I%2 == 0))
		p.Send("word", signal.Word(g.I*1000))
	}
	return nil
}

func (g *wiggler) SaveState() ([]byte, error)  { return core.GobSave(g) }
func (g *wiggler) RestoreState(b []byte) error { return core.GobRestore(g, b) }

func buildTraced(t *testing.T, n int) (*core.Subsystem, *Recorder) {
	t.Helper()
	s := core.NewSubsystem("dut")
	c, _ := s.NewComponent("gen", &wiggler{N: n})
	c.AddPort("bit")
	c.AddPort("word")
	nb, _ := s.NewNet("bitline", 0)
	s.Connect(nb, c.Port("bit"))
	nw, _ := s.NewNet("wordbus", 0)
	s.Connect(nw, c.Port("word"))
	r := NewRecorder(0)
	r.Attach(s)
	return s, r
}

func TestRecorderCollectsDrives(t *testing.T) {
	s, r := buildTraced(t, 5)
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	evs := r.Events()
	if len(evs) != 10 {
		t.Fatalf("recorded %d events, want 10", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatal("events not time-ordered")
		}
	}
	if evs[0].Sub != "dut" || evs[0].Source != "gen" {
		t.Fatalf("event metadata wrong: %+v", evs[0])
	}
	if r.Len() != 10 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRecorderLimit(t *testing.T) {
	s := core.NewSubsystem("lim")
	c, _ := s.NewComponent("gen", &wiggler{N: 50})
	c.AddPort("bit")
	c.AddPort("word")
	nb, _ := s.NewNet("b", 0)
	s.Connect(nb, c.Port("bit"))
	nw, _ := s.NewNet("w", 0)
	s.Connect(nw, c.Port("word"))
	r := NewRecorder(20)
	r.Attach(s)
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 20 {
		t.Fatalf("Len = %d with limit 20", r.Len())
	}
	// The retained events are the most recent ones.
	evs := r.Events()
	if evs[len(evs)-1].Time != 500 {
		t.Fatalf("last event at %v, want 500", evs[len(evs)-1].Time)
	}
}

func TestWriteText(t *testing.T) {
	s, r := buildTraced(t, 2)
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "dut/bitline") || !strings.Contains(out, "dut/wordbus") {
		t.Fatalf("text log missing nets:\n%s", out)
	}
}

func TestWriteVCD(t *testing.T) {
	s, r := buildTraced(t, 3)
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteVCD(&buf); err != nil {
		t.Fatal(err)
	}
	vcd := buf.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module dut $end",
		"$var wire 1 ",
		"$var wire 32 ",
		"bitline",
		"wordbus",
		"$enddefinitions $end",
		"#10",
		"#30",
	} {
		if !strings.Contains(vcd, want) {
			t.Fatalf("VCD missing %q:\n%s", want, vcd)
		}
	}
	// Level changes appear as scalar 0/1 followed by the id; words as
	// binary vectors.
	if !strings.Contains(vcd, "1!") && !strings.Contains(vcd, "1\"") {
		t.Fatalf("no scalar level change found:\n%s", vcd)
	}
	if !strings.Contains(vcd, "b11111010000 ") { // 2000 in binary
		t.Fatalf("word vector for 2000 missing:\n%s", vcd)
	}
	// Timestamps strictly increasing.
	lastTS := int64(-1)
	for _, line := range strings.Split(vcd, "\n") {
		if strings.HasPrefix(line, "#") {
			var ts int64
			if _, err := fmtSscan(line[1:], &ts); err != nil {
				t.Fatalf("bad timestamp line %q", line)
			}
			if ts <= lastTS {
				t.Fatalf("timestamps not increasing at %q", line)
			}
			lastTS = ts
		}
	}
}

func fmtSscan(s string, v *int64) (int, error) {
	n := int64(0)
	if len(s) == 0 {
		return 0, errEmpty
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, errEmpty
		}
		n = n*10 + int64(s[i]-'0')
	}
	*v = n
	return 1, nil
}

var errEmpty = bytes.ErrTooLarge // any sentinel

func TestRollbackDropsFuture(t *testing.T) {
	s, r := buildTraced(t, 10)
	s.SetAutoCheckpoint(30)
	rolled := false
	s.OnStep = func(now vtime.Time) {
		if now >= 80 && !rolled {
			rolled = true
			s.RequestRollback(50)
		}
	}
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	evs := r.Events()
	// Final committed run: 10 steps => 20 events, but NOT duplicated
	// from the rolled-back attempt.
	if len(evs) != 20 {
		t.Fatalf("recorded %d events after rollback, want 20", len(evs))
	}
	seen := map[string]int{}
	for _, e := range evs {
		seen[e.Net]++
	}
	if seen["bitline"] != 10 || seen["wordbus"] != 10 {
		t.Fatalf("per-net counts %v", seen)
	}
}

func TestVCDIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		seen[id] = true
		for j := 0; j < len(id); j++ {
			if id[j] < 33 || id[j] > 126 {
				t.Fatalf("id %q contains non-printable byte", id)
			}
		}
	}
}

func TestSanitize(t *testing.T) {
	if sanitize("a b/c-d") != "a_b_c_d" || sanitize("") != "_" || sanitize("ok_9") != "ok_9" {
		t.Fatal("sanitize wrong")
	}
}

// TestVCDSanitizedCollisions checks that raw names which sanitize to
// the same identifier — nets "a-b" vs "a_b" in one subsystem, or
// subsystems "s-1" vs "s_1" — are disambiguated in the declarations,
// while the Digest (computed over raw names) is untouched.
func TestVCDSanitizedCollisions(t *testing.T) {
	r := NewRecorder(0)
	r.record(Event{Time: 10, Sub: "s-1", Net: "a-b", Source: "x", Value: signal.Word(1)})
	r.record(Event{Time: 20, Sub: "s-1", Net: "a_b", Source: "x", Value: signal.Word(2)})
	r.record(Event{Time: 30, Sub: "s_1", Net: "a_b", Source: "x", Value: signal.Word(3)})
	before := r.Digest()
	var buf bytes.Buffer
	if err := r.WriteVCD(&buf); err != nil {
		t.Fatal(err)
	}
	vcd := buf.String()
	// Both nets of subsystem "s-1" must be declared under distinct
	// names, and the two subsystems under distinct scope names.
	for _, want := range []string{
		"$var wire 32 ! a_b $end",
		"$var wire 32 \" a_b_2 $end",
		"$scope module s_1 $end",
		"$scope module s_1_2 $end",
	} {
		if !strings.Contains(vcd, want) {
			t.Fatalf("VCD missing %q:\n%s", want, vcd)
		}
	}
	if got := r.Digest(); got != before {
		t.Fatalf("Digest changed across WriteVCD: %x -> %x", before, got)
	}
}

// TestVCDLevelOnWidenedVar: a net that carried both Level and Word
// values (detail switch mid-run) is declared as a 32-bit vector, so
// its Level changes must use vector (b0/b1) syntax — a scalar change
// on a vector var is malformed.
func TestVCDLevelOnWidenedVar(t *testing.T) {
	r := NewRecorder(0)
	r.record(Event{Time: 10, Sub: "dut", Net: "dma", Source: "x", Value: signal.Level(true)})
	r.record(Event{Time: 20, Sub: "dut", Net: "dma", Source: "x", Value: signal.Word(7)})
	r.record(Event{Time: 30, Sub: "dut", Net: "dma", Source: "x", Value: signal.Level(false)})
	var buf bytes.Buffer
	if err := r.WriteVCD(&buf); err != nil {
		t.Fatal(err)
	}
	vcd := buf.String()
	if !strings.Contains(vcd, "$var wire 32 ! dma $end") {
		t.Fatalf("dma not widened to 32 bits:\n%s", vcd)
	}
	if !strings.Contains(vcd, "b1 !") || !strings.Contains(vcd, "b0 !") {
		t.Fatalf("level changes on widened var not in vector form:\n%s", vcd)
	}
	if strings.Contains(vcd, "\n1!") || strings.Contains(vcd, "\n0!") {
		t.Fatalf("scalar change emitted for vector var:\n%s", vcd)
	}
}

// TestDropAfterInterleavedRestores: two subsystems share one recorder;
// each restores independently, and each restore drops only its own
// subsystem's future while the other's interleaved events survive —
// including with ring retention in play.
func TestDropAfterInterleavedRestores(t *testing.T) {
	for _, limit := range []int{0, 6} {
		r := NewRecorder(limit)
		for i := 1; i <= 6; i++ {
			r.record(Event{Time: vtime.Time(10 * i), Sub: "a", Net: "na", Source: "x", Value: signal.Word(i)})
			r.record(Event{Time: vtime.Time(10*i + 5), Sub: "b", Net: "nb", Source: "y", Value: signal.Word(i)})
		}
		// With limit 6 the ring keeps the last 6: a@50, b@55, a@60, b@65
		// plus the tail of round 4. Restore a back to 40, then b to 55:
		// the drops must interleave correctly regardless of ring state.
		r.dropAfter("a", 40)
		r.dropAfter("b", 55)
		for _, e := range r.Events() {
			if e.Sub == "a" && e.Time > 40 {
				t.Fatalf("limit %d: a's future event @%v survived", limit, e.Time)
			}
			if e.Sub == "b" && e.Time > 55 {
				t.Fatalf("limit %d: b's future event @%v survived", limit, e.Time)
			}
		}
		if limit == 0 {
			// Unlimited: a keeps 10..40 (4 events), b keeps 15..55 (5).
			counts := map[string]int{}
			for _, e := range r.Events() {
				counts[e.Sub]++
			}
			if counts["a"] != 4 || counts["b"] != 5 {
				t.Fatalf("kept counts %v, want a:4 b:5", counts)
			}
		}
		// The recorder must still accept and retain new events after
		// interleaved drops reset the ring.
		r.record(Event{Time: 100, Sub: "a", Net: "na", Source: "x", Value: signal.Word(99)})
		evs := r.Events()
		if evs[len(evs)-1].Time != 100 {
			t.Fatalf("limit %d: post-drop record lost", limit)
		}
	}
}
