// Package trace records simulation activity and exports it in
// standard EDA formats. A Recorder taps every net drive of one or
// more subsystems and can dump the result as a VCD (Value Change
// Dump, IEEE 1364) waveform readable by GTKWave and every commercial
// wave viewer, or as a plain text event log. Rollbacks are handled:
// when a subsystem restores a checkpoint, recorded events from the
// discarded future are dropped, so the exported waveform reflects the
// committed execution only.
package trace

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/signal"
	"repro/internal/vtime"
)

// Event is one recorded net drive.
type Event struct {
	Time   vtime.Time
	Sub    string
	Net    string
	Source string
	Value  any
}

// Recorder collects events from attached subsystems. Safe for
// concurrent attachment to multiple subsystems (each scheduler calls
// in on its own goroutine).
//
// With a retention limit the storage is a ring buffer: once full,
// each append overwrites the oldest event in place, so steady-state
// recording is O(1) per event instead of re-copying the whole
// retained window (which made a limited recorder O(n·limit) over a
// run).
type Recorder struct {
	mu sync.Mutex
	// events holds the retained window. Unlimited (limit == 0) it is
	// a plain append slice with head == 0. Limited, it fills like a
	// slice until len == limit, then becomes a ring: head indexes the
	// oldest event and appends overwrite in place.
	events []Event
	head   int
	n      int // retained count; always == len(events) until the ring wraps
	limit  int
}

// NewRecorder creates a recorder; limit bounds retained events
// (oldest dropped first), 0 means unlimited.
func NewRecorder(limit int) *Recorder {
	return &Recorder{limit: limit}
}

// Attach taps a subsystem's net drives and restore events. Call
// before running; chains any existing hooks.
func (r *Recorder) Attach(s *core.Subsystem) {
	name := s.Name()
	prevDrive := s.OnDrive
	s.OnDrive = func(net, src string, t vtime.Time, v any) {
		if prevDrive != nil {
			prevDrive(net, src, t, v)
		}
		r.record(Event{Time: t, Sub: name, Net: net, Source: src, Value: v})
	}
	prevRestore := s.OnRestore
	s.OnRestore = func(cs *core.CheckpointSet) {
		if prevRestore != nil {
			prevRestore(cs)
		}
		r.dropAfter(name, cs.Time)
	}
}

func (r *Recorder) record(e Event) {
	r.mu.Lock()
	if r.limit > 0 && r.n == r.limit {
		// Ring full: overwrite the oldest in place. O(1) steady
		// state, no re-copying of the retained window.
		r.events[r.head] = e
		r.head++
		if r.head == r.limit {
			r.head = 0
		}
	} else {
		r.events = append(r.events, e)
		r.n++
	}
	r.mu.Unlock()
}

// forEachLocked visits the retained events in record order (oldest
// first). Caller holds r.mu.
func (r *Recorder) forEachLocked(fn func(*Event)) {
	if r.n == 0 {
		return
	}
	for i := r.head; i < len(r.events); i++ {
		fn(&r.events[i])
	}
	for i := 0; i < r.head; i++ {
		fn(&r.events[i])
	}
}

// dropAfter removes a subsystem's events from its discarded future.
// Rare (one call per checkpoint restore), so it linearizes the ring
// into a fresh compact slice rather than compacting in place.
func (r *Recorder) dropAfter(sub string, t vtime.Time) {
	r.mu.Lock()
	kept := make([]Event, 0, r.n)
	r.forEachLocked(func(e *Event) {
		if e.Sub == sub && e.Time > t {
			return
		}
		kept = append(kept, *e)
	})
	r.events = kept
	r.head = 0
	r.n = len(kept)
	r.mu.Unlock()
}

// Events returns a copy of the recorded events in time order (ties
// keep record order).
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	out := make([]Event, 0, r.n)
	r.forEachLocked(func(e *Event) { out = append(out, *e) })
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// Digest returns an FNV-1a hash over the recorded event stream in
// order — a cheap fingerprint for asserting that two runs (e.g.
// sequential vs. parallel scheduling, or clean vs. faulted links)
// produced bit-for-bit identical traces.
func (r *Recorder) Digest() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := fnv.New64a()
	r.forEachLocked(func(e *Event) {
		fmt.Fprintf(h, "%d|%s|%s|%s|%v\n", e.Time, e.Sub, e.Net, e.Source, e.Value)
	})
	return h.Sum64()
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// WriteText dumps a human-readable event log.
func (r *Recorder) WriteText(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintf(w, "%-12v %s/%s <- %s = %s\n",
			e.Time, e.Sub, e.Net, e.Source, signal.String(e.Value)); err != nil {
			return err
		}
	}
	return nil
}

// --- VCD export ---

// vcdVar is one declared VCD signal.
type vcdVar struct {
	id    string
	width int
	kind  string // "wire" or "real" or "event"
}

// WriteVCD dumps the recording as a Value Change Dump. Each net
// becomes a signal inside a scope named after its subsystem. Signal
// widths are inferred from the values observed: Level -> 1-bit wire,
// Byte -> 8, Word/BusCycle -> 32, packets and frames -> a 32-bit
// "bytes transferred" vector, everything else -> a 32-bit event
// counter.
func (r *Recorder) WriteVCD(w io.Writer) error {
	events := r.Events()
	// Collect signals per (sub, net).
	type key struct{ sub, net string }
	vars := make(map[key]*vcdVar)
	var order []key
	for _, e := range events {
		k := key{e.Sub, e.Net}
		if vars[k] == nil {
			vars[k] = &vcdVar{width: valueWidth(e.Value)}
			order = append(order, k)
		} else if wd := valueWidth(e.Value); wd > vars[k].width {
			vars[k].width = wd
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].sub != order[j].sub {
			return order[i].sub < order[j].sub
		}
		return order[i].net < order[j].net
	})
	for i, k := range order {
		vars[k].id = vcdID(i)
		vars[k].kind = "wire"
	}

	// Sanitizing can collide distinct raw names ("a-b" and "a_b" both
	// become "a_b"); two $var declarations sharing one name inside a
	// scope — or two sibling scopes sharing one name — confuse every
	// viewer even though the ids differ. Disambiguate with a numeric
	// suffix, raw sort order deciding who keeps the bare name.
	scopeNames := make(map[string]string) // raw sub -> unique scope name
	usedScopes := make(map[string]bool)
	netNames := make(map[key]string) // (sub, net) -> unique var name
	usedNets := make(map[key]bool)   // (scope name, var name) seen
	for _, k := range order {
		if _, ok := scopeNames[k.sub]; !ok {
			scopeNames[k.sub] = uniqueName(sanitize(k.sub), usedScopes)
		}
		scope := scopeNames[k.sub]
		base := sanitize(k.net)
		name := base
		for n := 2; usedNets[key{scope, name}]; n++ {
			name = fmt.Sprintf("%s_%d", base, n)
		}
		usedNets[key{scope, name}] = true
		netNames[k] = name
	}

	if _, err := fmt.Fprintf(w, "$version pia co-simulator trace $end\n$timescale 1ns $end\n"); err != nil {
		return err
	}
	cur := ""
	for _, k := range order {
		if k.sub != cur {
			if cur != "" {
				fmt.Fprintf(w, "$upscope $end\n")
			}
			fmt.Fprintf(w, "$scope module %s $end\n", scopeNames[k.sub])
			cur = k.sub
		}
		v := vars[k]
		fmt.Fprintf(w, "$var %s %d %s %s $end\n", v.kind, v.width, v.id, netNames[k])
	}
	if cur != "" {
		fmt.Fprintf(w, "$upscope $end\n")
	}
	if _, err := fmt.Fprintf(w, "$enddefinitions $end\n"); err != nil {
		return err
	}

	last := vtime.Time(-1)
	counters := make(map[key]uint32)
	for _, e := range events {
		if e.Time != last {
			if _, err := fmt.Fprintf(w, "#%d\n", int64(e.Time)); err != nil {
				return err
			}
			last = e.Time
		}
		k := key{e.Sub, e.Net}
		v := vars[k]
		counters[k]++
		if err := writeChange(w, v, e.Value, counters[k]); err != nil {
			return err
		}
	}
	return nil
}

func writeChange(w io.Writer, v *vcdVar, value any, counter uint32) error {
	var err error
	switch x := value.(type) {
	case signal.Level:
		bit := "0"
		if x {
			bit = "1"
		}
		if v.width > 1 {
			// The net also carried wider values (a detail-level switch
			// mid-run), so it was declared as a vector; a scalar change
			// on a vector var is malformed VCD.
			_, err = fmt.Fprintf(w, "b%s %s\n", bit, v.id)
			break
		}
		_, err = fmt.Fprintf(w, "%s%s\n", bit, v.id)
	case signal.Byte:
		_, err = fmt.Fprintf(w, "b%b %s\n", uint8(x), v.id)
	case signal.Word:
		_, err = fmt.Fprintf(w, "b%b %s\n", uint32(x), v.id)
	case signal.BusCycle:
		_, err = fmt.Fprintf(w, "b%b %s\n", uint32(x.Data), v.id)
	case signal.Packet:
		_, err = fmt.Fprintf(w, "b%b %s\n", uint32(len(x)), v.id)
	case signal.Frame:
		_, err = fmt.Fprintf(w, "b%b %s\n", uint32(len(x.Payload)), v.id)
	case signal.IRQ:
		_, err = fmt.Fprintf(w, "b%b %s\n", uint32(x.Line), v.id)
	default:
		// Arbitrary payloads: expose the drive counter so activity is
		// visible in the wave.
		_, err = fmt.Fprintf(w, "b%b %s\n", counter, v.id)
	}
	return err
}

// valueWidth infers a signal width from a sample value.
func valueWidth(v any) int {
	switch v.(type) {
	case signal.Level:
		return 1
	case signal.Byte:
		return 8
	default:
		return 32
	}
}

// vcdID generates the i-th VCD identifier (printable ASCII 33..126).
func vcdID(i int) string {
	const base = 94
	id := []byte{}
	for {
		id = append(id, byte(33+i%base))
		i = i/base - 1
		if i < 0 {
			break
		}
	}
	return string(id)
}

// uniqueName returns base, or base_2, base_3, ... — the first form
// not yet in used — and marks it used.
func uniqueName(base string, used map[string]bool) string {
	name := base
	for n := 2; used[name]; n++ {
		name = fmt.Sprintf("%s_%d", base, n)
	}
	used[name] = true
	return name
}

// sanitize makes a name VCD-identifier safe.
func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "_"
	}
	return string(out)
}
