package graph

import (
	"strings"
	"testing"
)

func buildView(t *testing.T) *View {
	t.Helper()
	v := NewView()
	for comp, sub := range map[string]string{
		"cpu": "ss1", "mem": "ss1", "asic": "ss2", "ui": "ss1",
	} {
		if err := v.AddComponent(comp, sub); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.AddNet("bus", 1, PortRef{"cpu", "bus"}, PortRef{"mem", "bus"}, PortRef{"asic", "bus"}); err != nil {
		t.Fatal(err)
	}
	if err := v.AddNet("lcd", 0, PortRef{"cpu", "lcd"}, PortRef{"ui", "in"}); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestPartitionSplitsCrossingNet(t *testing.T) {
	v := buildView(t)
	splits, chans, err := v.Partition()
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 2 {
		t.Fatalf("splits = %d, want 2", len(splits))
	}
	bus := splits[0]
	if bus.Net != "bus" || !bus.Crossing {
		t.Fatalf("bus split = %+v", bus)
	}
	if len(bus.Fragments) != 2 {
		t.Fatalf("bus fragments = %d, want 2", len(bus.Fragments))
	}
	if bus.Fragments[0].Subsystem != "ss1" || len(bus.Fragments[0].Ports) != 2 {
		t.Fatalf("ss1 fragment = %+v", bus.Fragments[0])
	}
	if bus.Fragments[1].Subsystem != "ss2" || len(bus.Fragments[1].Ports) != 1 {
		t.Fatalf("ss2 fragment = %+v", bus.Fragments[1])
	}
	lcd := splits[1]
	if lcd.Crossing || len(lcd.Fragments) != 1 {
		t.Fatalf("lcd split = %+v", lcd)
	}
	if len(chans) != 1 || chans[0].A != "ss1" || chans[0].B != "ss2" {
		t.Fatalf("channels = %+v", chans)
	}
	if len(chans[0].Nets) != 1 || chans[0].Nets[0] != "bus" {
		t.Fatalf("channel nets = %v", chans[0].Nets)
	}
}

func TestMoveRederivesSplits(t *testing.T) {
	v := buildView(t)
	// Move the UI to a third subsystem: the lcd net must now split
	// between ss1 and ss3, and the bus net must be untouched by it.
	if err := v.Move("ss3", "ui"); err != nil {
		t.Fatal(err)
	}
	splits, chans, err := v.Partition()
	if err != nil {
		t.Fatal(err)
	}
	var lcd *Split
	for i := range splits {
		if splits[i].Net == "lcd" {
			lcd = &splits[i]
		}
	}
	if lcd == nil || !lcd.Crossing {
		t.Fatalf("lcd not split after move: %+v", splits)
	}
	// No fragment of lcd on ss2 — the net never passes through an
	// irrelevant subsystem.
	for _, f := range lcd.Fragments {
		if f.Subsystem == "ss2" {
			t.Fatal("lcd net routed through irrelevant subsystem ss2")
		}
	}
	if len(chans) != 2 {
		t.Fatalf("channels after move = %+v", chans)
	}
}

func TestMoveUnknownComponent(t *testing.T) {
	v := buildView(t)
	if err := v.Move("ss9", "ghost"); err == nil {
		t.Fatal("move of unknown component accepted")
	}
}

func TestViewAccessors(t *testing.T) {
	v := buildView(t)
	if v.Subsystem("cpu") != "ss1" || v.Subsystem("ghost") != "" {
		t.Fatal("Subsystem accessor wrong")
	}
	subs := v.Subsystems()
	if len(subs) != 2 || subs[0] != "ss1" || subs[1] != "ss2" {
		t.Fatalf("Subsystems = %v", subs)
	}
	comps := v.Components("ss1")
	if len(comps) != 3 {
		t.Fatalf("ss1 components = %v", comps)
	}
}

func TestViewErrors(t *testing.T) {
	v := NewView()
	if err := v.AddComponent("", "s"); err == nil {
		t.Fatal("empty name accepted")
	}
	v.AddComponent("a", "s")
	if err := v.AddComponent("a", "s"); err == nil {
		t.Fatal("duplicate component accepted")
	}
	if err := v.AddNet("n", 0, PortRef{"ghost", "p"}); err == nil {
		t.Fatal("net on unknown component accepted")
	}
	v.AddNet("n", 0, PortRef{"a", "p"})
	if err := v.AddNet("n", 0); err == nil {
		t.Fatal("duplicate net accepted")
	}
}

func TestNames(t *testing.T) {
	if HiddenPortName("bus", "ss2") != "bus$ss2" {
		t.Fatal("HiddenPortName format changed")
	}
	if !strings.Contains(ChannelComponentName("ss1", "ss2"), "ss1") {
		t.Fatal("ChannelComponentName missing local name")
	}
}

func TestTopologySimpleCyclesAllowed(t *testing.T) {
	tp := NewTopology()
	// Fig 4's three subsystems: SS1 <-> SS2, SS1 <-> SS3 — all
	// bidirectional edges, no long cycle.
	tp.AddEdge("ss1", "ss2")
	tp.AddEdge("ss2", "ss1")
	tp.AddEdge("ss1", "ss3")
	tp.AddEdge("ss3", "ss1")
	if err := tp.Validate(); err != nil {
		t.Fatalf("bidirectional edges rejected: %v", err)
	}
}

func TestTopologyLongCycleRejected(t *testing.T) {
	tp := NewTopology()
	tp.AddEdge("a", "b")
	tp.AddEdge("b", "c")
	tp.AddEdge("c", "a")
	err := tp.Validate()
	if err == nil {
		t.Fatal("3-cycle accepted")
	}
	if !strings.Contains(err.Error(), "length 3") {
		t.Fatalf("error does not name the cycle: %v", err)
	}
}

func TestTopologyDAGAllowed(t *testing.T) {
	tp := NewTopology()
	tp.AddEdge("a", "b")
	tp.AddEdge("b", "c")
	tp.AddEdge("a", "c")
	if err := tp.Validate(); err != nil {
		t.Fatalf("DAG rejected: %v", err)
	}
}

func TestTopologyMixed(t *testing.T) {
	// A bidirectional pair feeding a chain is fine; adding a back
	// edge that closes a long cycle is not.
	tp := NewTopology()
	tp.AddEdge("a", "b")
	tp.AddEdge("b", "a")
	tp.AddEdge("b", "c")
	tp.AddEdge("c", "d")
	if err := tp.Validate(); err != nil {
		t.Fatalf("mixed topology rejected: %v", err)
	}
	tp.AddEdge("d", "a")
	if err := tp.Validate(); err == nil {
		t.Fatal("long cycle through bidirectional pair accepted")
	}
}

func TestTopologyNodes(t *testing.T) {
	tp := NewTopology()
	tp.AddNode("z")
	tp.AddNode("a")
	tp.AddEdge("a", "m")
	nodes := tp.Nodes()
	if len(nodes) != 3 || nodes[0] != "a" || nodes[2] != "z" {
		t.Fatalf("Nodes = %v", nodes)
	}
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
}
