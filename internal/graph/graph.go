// Package graph maintains the global view of a distributed Pia
// system: which components live on which subsystem, which logical
// nets connect them, and how those nets must be split when they cross
// subsystem boundaries.
//
// When a set of components moves from one subsystem to another, the
// split in the affected nets is determined by a cut of the component
// graph: a boundary is drawn around the moved components and every
// net crossing the boundary is split. Pia performs each split against
// the global view — never just locally — because repeated local
// splits could force a net to pass through subsystems that contain no
// components relevant to the net. Computing splits from the global
// view, as Partition does, makes that impossible: a net is realized
// only on subsystems that actually host one of its ports.
package graph

import (
	"fmt"
	"sort"

	"repro/internal/vtime"
)

// PortRef names a port on a component, globally.
type PortRef struct {
	Component string
	Port      string
}

func (r PortRef) String() string { return r.Component + "." + r.Port }

// LogicalNet is a net in the designer's view, before any splitting.
type LogicalNet struct {
	Name  string
	Delay vtime.Duration
	Ports []PortRef
}

// View is the global view of the system: the component graph with
// subsystem assignments.
type View struct {
	comps map[string]string // component -> subsystem
	nets  map[string]*LogicalNet
	order []string // net insertion order, for deterministic output
}

// NewView creates an empty global view.
func NewView() *View {
	return &View{comps: make(map[string]string), nets: make(map[string]*LogicalNet)}
}

// AddComponent registers a component on a subsystem.
func (v *View) AddComponent(comp, subsystem string) error {
	if comp == "" || subsystem == "" {
		return fmt.Errorf("graph: empty component or subsystem name")
	}
	if _, dup := v.comps[comp]; dup {
		return fmt.Errorf("graph: duplicate component %q", comp)
	}
	v.comps[comp] = subsystem
	return nil
}

// AddNet registers a logical net connecting the given ports.
func (v *View) AddNet(name string, delay vtime.Duration, ports ...PortRef) error {
	if _, dup := v.nets[name]; dup {
		return fmt.Errorf("graph: duplicate net %q", name)
	}
	for _, p := range ports {
		if _, ok := v.comps[p.Component]; !ok {
			return fmt.Errorf("graph: net %q references unknown component %q", name, p.Component)
		}
	}
	v.nets[name] = &LogicalNet{Name: name, Delay: delay, Ports: append([]PortRef(nil), ports...)}
	v.order = append(v.order, name)
	return nil
}

// Subsystem returns the subsystem hosting the component ("" if
// unknown).
func (v *View) Subsystem(comp string) string { return v.comps[comp] }

// Components returns the components assigned to the named subsystem,
// sorted.
func (v *View) Components(subsystem string) []string {
	var out []string
	for c, s := range v.comps {
		if s == subsystem {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// Subsystems returns all subsystem names, sorted.
func (v *View) Subsystems() []string {
	seen := make(map[string]bool)
	for _, s := range v.comps {
		seen[s] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Move reassigns a set of components to a new subsystem — drawing a
// boundary around them and re-deriving every split from the global
// view.
func (v *View) Move(subsystem string, comps ...string) error {
	for _, c := range comps {
		if _, ok := v.comps[c]; !ok {
			return fmt.Errorf("graph: move of unknown component %q", c)
		}
	}
	for _, c := range comps {
		v.comps[c] = subsystem
	}
	return nil
}

// Fragment is the portion of a logical net realized on one subsystem.
type Fragment struct {
	Subsystem string
	Ports     []PortRef
}

// Split describes how one logical net is realized: one fragment per
// subsystem hosting at least one of its ports, plus the channel pairs
// that bridge the fragments.
type Split struct {
	Net       string
	Delay     vtime.Duration
	Fragments []Fragment // sorted by subsystem
	// Crossing reports whether the net spans more than one subsystem
	// (needs hidden ports and channel components).
	Crossing bool
}

// ChannelSpec is an unordered subsystem pair that needs a channel
// because at least one net crosses between them. A < B always.
type ChannelSpec struct {
	A, B string
	Nets []string // crossing nets carried by this channel, sorted
}

// Partition computes, from the global view, the realization of every
// net: fragments per subsystem and the set of required channels.
// A net's fragments exist only on subsystems that host one of its
// ports, so no net ever passes through an irrelevant subsystem.
func (v *View) Partition() ([]Split, []ChannelSpec, error) {
	var splits []Split
	chans := make(map[[2]string]*ChannelSpec)
	for _, name := range v.order {
		n := v.nets[name]
		bySub := make(map[string][]PortRef)
		for _, p := range n.Ports {
			bySub[v.comps[p.Component]] = append(bySub[v.comps[p.Component]], p)
		}
		subs := make([]string, 0, len(bySub))
		for s := range bySub {
			subs = append(subs, s)
		}
		sort.Strings(subs)
		sp := Split{Net: n.Name, Delay: n.Delay, Crossing: len(subs) > 1}
		for _, s := range subs {
			ports := bySub[s]
			sort.Slice(ports, func(i, j int) bool { return ports[i].String() < ports[j].String() })
			sp.Fragments = append(sp.Fragments, Fragment{Subsystem: s, Ports: ports})
		}
		splits = append(splits, sp)
		if sp.Crossing {
			for i := 0; i < len(subs); i++ {
				for j := i + 1; j < len(subs); j++ {
					key := [2]string{subs[i], subs[j]}
					cs := chans[key]
					if cs == nil {
						cs = &ChannelSpec{A: subs[i], B: subs[j]}
						chans[key] = cs
					}
					cs.Nets = append(cs.Nets, n.Name)
				}
			}
		}
	}
	keys := make([][2]string, 0, len(chans))
	for k := range chans {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	specs := make([]ChannelSpec, 0, len(keys))
	for _, k := range keys {
		cs := chans[k]
		sort.Strings(cs.Nets)
		specs = append(specs, *cs)
	}
	return splits, specs, nil
}

// UnknownHostError reports a component assigned to a host (node or
// subsystem placement target) the deployment does not know about. It
// is returned at build time so a bad placement map fails fast, naming
// the offender, instead of panicking at connect time.
type UnknownHostError struct {
	Component string // first affected component (sorted), "" if none
	Host      string // the unknown host / placement target
}

func (e *UnknownHostError) Error() string {
	if e.Component == "" {
		return fmt.Sprintf("graph: placement names unknown host %q", e.Host)
	}
	return fmt.Sprintf("graph: component %q is assigned to unknown host %q", e.Component, e.Host)
}

// HiddenPortName names the hidden port added to a net fragment for
// the channel toward the given peer subsystem.
func HiddenPortName(net, peer string) string { return net + "$" + peer }

// ChannelComponentName names the channel (proxy) component a
// subsystem hosts for its channel to a peer.
func ChannelComponentName(local, peer string) string { return "chan:" + local + ">" + peer }
