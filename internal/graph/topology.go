package graph

import (
	"fmt"
	"sort"
)

// Topology is the directed graph of conservative time restrictions
// between subsystems: an edge A->B means B restricts A (A must obtain
// safe times from B before advancing). Pia requires this graph to
// have only simple cycles — a simple cycle being a bidirectional edge
// — because eliminating self-restriction on the fly for general
// graphs is computationally hard.
type Topology struct {
	edges map[string]map[string]bool
	nodes map[string]bool
}

// NewTopology creates an empty restriction graph.
func NewTopology() *Topology {
	return &Topology{edges: make(map[string]map[string]bool), nodes: make(map[string]bool)}
}

// AddNode registers a subsystem.
func (t *Topology) AddNode(name string) {
	t.nodes[name] = true
	if t.edges[name] == nil {
		t.edges[name] = make(map[string]bool)
	}
}

// AddEdge records that `to` restricts `from` (a conservative channel
// from `from`'s point of view).
func (t *Topology) AddEdge(from, to string) {
	t.AddNode(from)
	t.AddNode(to)
	t.edges[from][to] = true
}

// Nodes returns the subsystems, sorted.
func (t *Topology) Nodes() []string {
	out := make([]string, 0, len(t.nodes))
	for n := range t.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Validate checks the only-simple-cycles rule: no directed cycle of
// length three or more may exist. Bidirectional edges (2-cycles) are
// the allowed "simple cycles". A long cycle exists exactly when some
// arc u->v can be closed by a return path v->...->u of length >= 2 —
// that is, when u is reachable from v without using the direct
// reverse arc v->u. Validate names the offending cycle.
func (t *Topology) Validate() error {
	for _, u := range t.Nodes() {
		succs := make([]string, 0, len(t.edges[u]))
		for w := range t.edges[u] {
			succs = append(succs, w)
		}
		sort.Strings(succs)
		for _, v := range succs {
			if u == v {
				continue
			}
			if path := t.pathAvoidingArc(v, u); path != nil && len(path) >= 3 {
				cycle := append([]string{u}, path...)
				return fmt.Errorf("graph: restriction cycle of length %d through %v; only simple (bidirectional) cycles are allowed", len(cycle)-1, cycle[:len(cycle)-1])
			}
		}
	}
	return nil
}

// pathAvoidingArc BFSes from src to dst while forbidding the single
// direct arc src->dst; it returns the node path src..dst (inclusive)
// or nil. Any path found has length >= 2 arcs because the 1-arc path
// is exactly the forbidden one.
func (t *Topology) pathAvoidingArc(src, dst string) []string {
	parent := map[string]string{src: ""}
	queue := []string{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		succs := make([]string, 0, len(t.edges[cur]))
		for w := range t.edges[cur] {
			succs = append(succs, w)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if cur == src && w == dst {
				continue // the forbidden direct arc
			}
			if _, seen := parent[w]; seen {
				continue
			}
			parent[w] = cur
			if w == dst {
				var path []string
				for n := dst; n != ""; n = parent[n] {
					path = append([]string{n}, path...)
				}
				return path
			}
			queue = append(queue, w)
		}
	}
	return nil
}
