package detail

import (
	"bufio"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/timeline"
	"repro/internal/vtime"
)

// Action is one runlevel change performed when a switchpoint fires.
type Action struct {
	Component string
	Level     string
}

// Switchpoint is a parsed "when <cond>: a->l, b->l" rule. Each
// switchpoint fires at most once (re-arm by adding it again).
type Switchpoint struct {
	Source  string // original text, for diagnostics
	Cond    Expr
	Actions []Action
	fired   bool
}

// Fired reports whether the switchpoint has triggered.
func (sp *Switchpoint) Fired() bool { return sp.fired }

// String returns the canonical text of the switchpoint.
func (sp *Switchpoint) String() string {
	acts := make([]string, len(sp.Actions))
	for i, a := range sp.Actions {
		acts[i] = fmt.Sprintf("%s->%s", a.Component, a.Level)
	}
	return fmt.Sprintf("when %s: %s", sp.Cond, strings.Join(acts, ", "))
}

// ParseSwitchpoint parses one switchpoint rule. The leading "when"
// keyword is optional.
func ParseSwitchpoint(src string) (*Switchpoint, error) {
	text := strings.TrimSpace(src)
	body := strings.TrimSpace(strings.TrimPrefix(text, "when "))
	toks, err := lex(body)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon, ":"); err != nil {
		return nil, err
	}
	var actions []Action
	for {
		comp, err := p.expect(tokIdent, "component name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokArrow, "->"); err != nil {
			return nil, err
		}
		level, err := p.expect(tokIdent, "runlevel name")
		if err != nil {
			return nil, err
		}
		actions = append(actions, Action{Component: comp.text, Level: level.text})
		if p.cur().kind != tokComma {
			break
		}
		p.next()
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("detail: trailing input %q", p.cur().text)
	}
	return &Switchpoint{Source: text, Cond: cond, Actions: actions}, nil
}

// ParseScript parses a simulation run control file: one switchpoint
// per line, with blank lines and '#' comments ignored.
func ParseScript(src string) ([]*Switchpoint, error) {
	var out []*Switchpoint
	sc := bufio.NewScanner(strings.NewReader(src))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp, err := ParseSwitchpoint(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, sp)
	}
	return out, sc.Err()
}

// Engine evaluates switchpoints against a subsystem at every
// scheduling step. Components are all parked when the scheduler calls
// the hook, so runlevel changes are applied at safe points — the
// state of every interface is stable.
type Engine struct {
	sub          *core.Subsystem
	switchpoints []*Switchpoint

	// Switches counts applied runlevel changes.
	Switches int64

	// OnSwitch is invoked for every applied action.
	OnSwitch func(sp *Switchpoint, a Action)

	prevStep func(vtime.Time)
	hooked   bool
}

// NewEngine creates a switchpoint engine for the subsystem. The
// per-step hook is installed lazily, on the first registered
// switchpoint: a per-step hook pins the scheduler to its
// step-at-a-time path (no inline fast paths, no parallel rounds), so
// an engine with no rules must not cost anything.
func NewEngine(s *core.Subsystem) *Engine {
	return &Engine{sub: s}
}

// ensureHook attaches the engine to the subsystem's step hook
// (chaining any existing hook). Idempotent.
func (e *Engine) ensureHook() {
	if e.hooked {
		return
	}
	e.hooked = true
	s := e.sub
	e.prevStep = s.OnStep
	s.OnStep = func(now vtime.Time) {
		if e.prevStep != nil {
			e.prevStep(now)
		}
		e.Step()
	}
}

// Add registers a switchpoint.
func (e *Engine) Add(sp *Switchpoint) {
	e.ensureHook()
	e.switchpoints = append(e.switchpoints, sp)
}

// AddRule parses and registers a switchpoint rule.
func (e *Engine) AddRule(src string) (*Switchpoint, error) {
	sp, err := ParseSwitchpoint(src)
	if err != nil {
		return nil, err
	}
	e.Add(sp)
	return sp, nil
}

// EnableTimeline records every applied switchpoint action as a
// runlevel event, chained through OnSwitch. The firing is stamped
// with the subsystem's current virtual time; the component itself
// adopts the level at its next safe point (core's OnRunlevel chain,
// wired by Subsystem.EnableTimeline, records that consultation
// separately).
func (e *Engine) EnableTimeline(rec *timeline.Recorder) {
	if rec == nil {
		return
	}
	sub := e.sub.Name()
	prev := e.OnSwitch
	e.OnSwitch = func(sp *Switchpoint, a Action) {
		if prev != nil {
			prev(sp, a)
		}
		rec.Runlevel(sub, a.Component, a.Level, e.sub.Now())
	}
}

// LoadScript parses a run control file and registers every rule.
func (e *Engine) LoadScript(src string) error {
	sps, err := ParseScript(src)
	if err != nil {
		return err
	}
	for _, sp := range sps {
		e.Add(sp)
	}
	return nil
}

// Switchpoints returns the registered switchpoints.
func (e *Engine) Switchpoints() []*Switchpoint {
	out := make([]*Switchpoint, len(e.switchpoints))
	copy(out, e.switchpoints)
	return out
}

// Step evaluates all unfired switchpoints once; called from the
// scheduler hook but also usable directly in tests.
func (e *Engine) Step() {
	ts := func(name string) (vtime.Time, bool) {
		c := e.sub.Component(name)
		if c == nil {
			return 0, false
		}
		return c.LocalTime(), true
	}
	for _, sp := range e.switchpoints {
		if sp.fired || !sp.Cond.Eval(ts) {
			continue
		}
		sp.fired = true
		for _, a := range sp.Actions {
			if c := e.sub.Component(a.Component); c != nil {
				c.SetRunlevel(a.Level)
				e.Switches++
				if e.OnSwitch != nil {
					e.OnSwitch(sp, a)
				}
			}
		}
	}
}

// Slider sets every component in the subsystem to the given runlevel
// — the user's detail-level slider. It takes effect at each
// component's next safe point (the next time its behaviour consults
// Proc.Runlevel).
func (e *Engine) Slider(level string) {
	for _, c := range e.sub.Components() {
		c.SetRunlevel(level)
		e.Switches++
	}
}
