package detail

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/vtime"
)

func src(times map[string]vtime.Time) TimeSource {
	return func(name string) (vtime.Time, bool) {
		t, ok := times[name]
		return t, ok
	}
}

func TestParseExprComparisons(t *testing.T) {
	cases := []struct {
		expr  string
		times map[string]vtime.Time
		want  bool
	}{
		{"a >= 10", map[string]vtime.Time{"a": 10}, true},
		{"a >= 10", map[string]vtime.Time{"a": 9}, false},
		{"a > 10", map[string]vtime.Time{"a": 10}, false},
		{"a > 10", map[string]vtime.Time{"a": 11}, true},
		{"a <= 10", map[string]vtime.Time{"a": 10}, true},
		{"a < 10", map[string]vtime.Time{"a": 10}, false},
		{"a == 10", map[string]vtime.Time{"a": 10}, true},
		{"a == 10", map[string]vtime.Time{"a": 11}, false},
		{"missing >= 0", map[string]vtime.Time{}, false},
		{"a >= 1_000", map[string]vtime.Time{"a": 1000}, true},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.expr)
		if err != nil {
			t.Fatalf("parse %q: %v", c.expr, err)
		}
		if got := e.Eval(src(c.times)); got != c.want {
			t.Errorf("%q with %v = %v, want %v", c.expr, c.times, got, c.want)
		}
	}
}

func TestParseExprBoolean(t *testing.T) {
	times := map[string]vtime.Time{"a": 5, "b": 20}
	cases := []struct {
		expr string
		want bool
	}{
		{"a >= 5 & b >= 20", true},
		{"a >= 6 & b >= 20", false},
		{"a >= 6 | b >= 20", true},
		{"a >= 6 | b >= 21", false},
		{"(a >= 6 | b >= 20) & a >= 5", true},
		{"a >= 6 | b >= 21 | a >= 1", true},
		{"a >= 5 && b >= 20", true}, // && accepted as &
		{"a >= 6 || b >= 20", true}, // || accepted as |
	}
	for _, c := range cases {
		e, err := ParseExpr(c.expr)
		if err != nil {
			t.Fatalf("parse %q: %v", c.expr, err)
		}
		if got := e.Eval(src(times)); got != c.want {
			t.Errorf("%q = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "a", "a >=", ">= 5", "a >= x", "a = 5", "a >= 5 &",
		"(a >= 5", "a >= 5 extra", "a >= 5 ! b >= 3", "a ~ 5",
	}
	for _, s := range bad {
		if _, err := ParseExpr(s); err == nil {
			t.Errorf("ParseExpr(%q) accepted", s)
		}
	}
}

func TestExprString(t *testing.T) {
	e, err := ParseExpr("(a >= 5 | b < 3) & c == 7")
	if err != nil {
		t.Fatal(err)
	}
	s := e.String()
	for _, want := range []string{"a >= 5", "b < 3", "c == 7", "&", "|"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestParseSwitchpoint(t *testing.T) {
	// The paper's example, in our concrete syntax.
	sp, err := ParseSwitchpoint("when I2CComponent >= 67: I2CComponent->hardwareLevel, VidCamComponent->byteLevel")
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Actions) != 2 {
		t.Fatalf("actions = %d, want 2", len(sp.Actions))
	}
	if sp.Actions[0] != (Action{"I2CComponent", "hardwareLevel"}) {
		t.Fatalf("action[0] = %+v", sp.Actions[0])
	}
	if sp.Actions[1] != (Action{"VidCamComponent", "byteLevel"}) {
		t.Fatalf("action[1] = %+v", sp.Actions[1])
	}
	if !sp.Cond.Eval(src(map[string]vtime.Time{"I2CComponent": 67})) {
		t.Fatal("condition false at t=67")
	}
	// "when" is optional.
	if _, err := ParseSwitchpoint("a >= 1: a->x"); err != nil {
		t.Fatal(err)
	}
	if s := sp.String(); !strings.Contains(s, "I2CComponent->hardwareLevel") {
		t.Errorf("String = %q", s)
	}
}

func TestParseSwitchpointErrors(t *testing.T) {
	bad := []string{
		"when : a->x",
		"when a >= 1",
		"when a >= 1: a",
		"when a >= 1: a->",
		"when a >= 1: a->x,",
		"when a >= 1: a->x b->y",
	}
	for _, s := range bad {
		if _, err := ParseSwitchpoint(s); err == nil {
			t.Errorf("ParseSwitchpoint(%q) accepted", s)
		}
	}
}

func TestParseScript(t *testing.T) {
	script := `
# run control file
when a >= 10: a->low

when b >= 20 & a >= 5: b->high, a->high
`
	sps, err := ParseScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if len(sps) != 2 {
		t.Fatalf("parsed %d switchpoints, want 2", len(sps))
	}
	if _, err := ParseScript("garbage !!"); err == nil {
		t.Fatal("bad script accepted")
	}
}

// clockComp advances its local time and records the runlevel it
// observes at each step.
type clockComp struct {
	Levels []string
	Steps  int
}

func (c *clockComp) Run(p *core.Proc) error {
	for i := 0; i < c.Steps; i++ {
		p.Delay(10)
		c.Levels = append(c.Levels, p.Runlevel())
	}
	return nil
}

func (c *clockComp) SaveState() ([]byte, error)  { return core.GobSave(c) }
func (c *clockComp) RestoreState(b []byte) error { return core.GobRestore(c, b) }

func TestEngineFiresSwitchpoint(t *testing.T) {
	s := core.NewSubsystem("rl")
	cc := &clockComp{Steps: 10}
	comp, _ := s.NewComponent("cpu", cc)
	comp.SetRunlevel("word")
	e := NewEngine(s)
	sp, err := e.AddRule("when cpu >= 50: cpu->packet")
	if err != nil {
		t.Fatal(err)
	}
	var switched []Action
	e.OnSwitch = func(_ *Switchpoint, a Action) { switched = append(switched, a) }
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if !sp.Fired() {
		t.Fatal("switchpoint never fired")
	}
	if len(switched) != 1 || switched[0].Level != "packet" {
		t.Fatalf("switched = %v", switched)
	}
	// The component saw "word" strictly before t=50 and "packet"
	// after the switch took effect.
	if cc.Levels[0] != "word" {
		t.Fatalf("initial level = %q", cc.Levels[0])
	}
	if last := cc.Levels[len(cc.Levels)-1]; last != "packet" {
		t.Fatalf("final level = %q", last)
	}
	if e.Switches != 1 {
		t.Fatalf("Switches = %d", e.Switches)
	}
}

func TestEngineFiresOnce(t *testing.T) {
	s := core.NewSubsystem("once")
	cc := &clockComp{Steps: 10}
	comp, _ := s.NewComponent("cpu", cc)
	comp.SetRunlevel("a")
	e := NewEngine(s)
	if _, err := e.AddRule("when cpu >= 10: cpu->b"); err != nil {
		t.Fatal(err)
	}
	fires := 0
	e.OnSwitch = func(*Switchpoint, Action) { fires++ }
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if fires != 1 {
		t.Fatalf("switchpoint fired %d times, want 1", fires)
	}
}

func TestEngineUnknownComponentIgnored(t *testing.T) {
	s := core.NewSubsystem("unk")
	cc := &clockComp{Steps: 3}
	s.NewComponent("cpu", cc)
	e := NewEngine(s)
	if _, err := e.AddRule("when cpu >= 10: ghost->x"); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if e.Switches != 0 {
		t.Fatal("switch applied to unknown component")
	}
}

func TestSlider(t *testing.T) {
	s := core.NewSubsystem("slider")
	a := &clockComp{Steps: 1}
	b := &clockComp{Steps: 1}
	s.NewComponent("a", a)
	s.NewComponent("b", b)
	e := NewEngine(s)
	e.Slider("hw")
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if a.Levels[0] != "hw" || b.Levels[0] != "hw" {
		t.Fatalf("slider levels: a=%v b=%v", a.Levels, b.Levels)
	}
}

func TestEngineChainsExistingHook(t *testing.T) {
	s := core.NewSubsystem("chain")
	cc := &clockComp{Steps: 3}
	s.NewComponent("cpu", cc)
	prevCalls := 0
	s.OnStep = func(vtime.Time) { prevCalls++ }
	NewEngine(s)
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if prevCalls == 0 {
		t.Fatal("engine replaced the existing OnStep hook instead of chaining")
	}
}

func TestSwitchpointsAccessor(t *testing.T) {
	s := core.NewSubsystem("acc")
	e := NewEngine(s)
	if err := e.LoadScript("when a >= 1: a->x\nwhen b >= 2: b->y\n"); err != nil {
		t.Fatal(err)
	}
	if got := len(e.Switchpoints()); got != 2 {
		t.Fatalf("Switchpoints = %d, want 2", got)
	}
	if err := e.LoadScript("bad !!"); err == nil {
		t.Fatal("bad script accepted")
	}
}
