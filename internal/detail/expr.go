// Package detail implements Pia's dynamic detail levels (runlevels):
// the switchpoint condition language, the engine that evaluates
// switchpoints at safe points in the execution, and the detail-level
// slider.
//
// A switchpoint is an expression that tells the simulator when and
// how to change runlevels, e.g.
//
//	when I2CComponent >= 67: I2CComponent->hardwareLevel, VidCamComponent->byteLevel
//
// which reads: as soon as I2CComponent shows a local time of 67 or
// later, change I2CComponent's runlevel to hardwareLevel and
// VidCamComponent's to byteLevel. Conditions may combine conjuncts
// (&) and disjuncts (|) of comparisons across multiple components.
// Switchpoints come from three places, all supported here: the
// detail-level slider (Engine.Slider), the simulation run control
// file (ParseScript), and imperative switch statements in component
// source (core.Proc.SetRunlevel).
package detail

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/vtime"
)

// TimeSource reports a component's local virtual time. ok=false means
// the component is unknown, which makes any comparison on it false.
type TimeSource func(component string) (vtime.Time, bool)

// Expr is a switchpoint condition.
type Expr interface {
	Eval(ts TimeSource) bool
	String() string
}

// cmpOp is a comparison operator.
type cmpOp int

const (
	opGE cmpOp = iota
	opGT
	opLE
	opLT
	opEQ
)

func (o cmpOp) String() string {
	switch o {
	case opGE:
		return ">="
	case opGT:
		return ">"
	case opLE:
		return "<="
	case opLT:
		return "<"
	default:
		return "=="
	}
}

// cmpExpr compares a component's local time against a constant.
type cmpExpr struct {
	comp string
	op   cmpOp
	t    vtime.Time
}

func (c *cmpExpr) Eval(ts TimeSource) bool {
	lt, ok := ts(c.comp)
	if !ok {
		return false
	}
	switch c.op {
	case opGE:
		return lt >= c.t
	case opGT:
		return lt > c.t
	case opLE:
		return lt <= c.t
	case opLT:
		return lt < c.t
	default:
		return lt == c.t
	}
}

func (c *cmpExpr) String() string {
	return fmt.Sprintf("%s %s %d", c.comp, c.op, int64(c.t))
}

// binExpr is a conjunction or disjunction.
type binExpr struct {
	and  bool
	l, r Expr
}

func (b *binExpr) Eval(ts TimeSource) bool {
	if b.and {
		return b.l.Eval(ts) && b.r.Eval(ts)
	}
	return b.l.Eval(ts) || b.r.Eval(ts)
}

func (b *binExpr) String() string {
	op := "|"
	if b.and {
		op = "&"
	}
	return fmt.Sprintf("(%s %s %s)", b.l, op, b.r)
}

// --- lexer ---

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokOp     // >= > <= < ==
	tokAnd    // &
	tokOr     // |
	tokLParen // (
	tokRParen // )
	tokArrow  // ->
	tokComma  // ,
	tokColon  // :
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		ch := l.src[l.pos]
		switch {
		case ch == ' ' || ch == '\t':
			l.pos++
		case ch == '(':
			l.emit(tokLParen, "(")
		case ch == ')':
			l.emit(tokRParen, ")")
		case ch == ',':
			l.emit(tokComma, ",")
		case ch == ':':
			l.emit(tokColon, ":")
		case ch == '&':
			if l.peek(1) == '&' {
				l.pos++
			}
			l.emit(tokAnd, "&")
		case ch == '|':
			if l.peek(1) == '|' {
				l.pos++
			}
			l.emit(tokOr, "|")
		case ch == '>' || ch == '<' || ch == '=':
			op := string(ch)
			if l.peek(1) == '=' {
				op += "="
				l.pos++
			}
			if op == "=" {
				return nil, fmt.Errorf("detail: position %d: use == for equality", l.pos)
			}
			l.emit(tokOp, op)
		case ch == '-':
			if l.peek(1) != '>' {
				return nil, fmt.Errorf("detail: position %d: unexpected '-'", l.pos)
			}
			l.pos++
			l.emit(tokArrow, "->")
		case ch >= '0' && ch <= '9':
			start := l.pos
			for l.pos < len(l.src) && isNumChar(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{tokNumber, l.src[start:l.pos], start})
		case isIdentChar(ch):
			start := l.pos
			for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{tokIdent, l.src[start:l.pos], start})
		default:
			return nil, fmt.Errorf("detail: position %d: unexpected character %q", l.pos, ch)
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", l.pos})
	return l.toks, nil
}

func (l *lexer) emit(k tokKind, s string) {
	l.toks = append(l.toks, token{k, s, l.pos})
	l.pos++
}

func (l *lexer) peek(n int) byte {
	if l.pos+n < len(l.src) {
		return l.src[l.pos+n]
	}
	return 0
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '.' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func isNumChar(c byte) bool {
	return (c >= '0' && c <= '9') || c == '_'
}

// --- parser ---

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expect(k tokKind, what string) (token, error) {
	if p.cur().kind != k {
		return token{}, fmt.Errorf("detail: position %d: expected %s, found %q", p.cur().pos, what, p.cur().text)
	}
	return p.next(), nil
}

// parseExpr parses disjunctions (lowest precedence).
func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOr {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &binExpr{and: false, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokAnd {
		p.next()
		r, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		l = &binExpr{and: true, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAtom() (Expr, error) {
	if p.cur().kind == tokLParen {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	id, err := p.expect(tokIdent, "component name")
	if err != nil {
		return nil, err
	}
	op, err := p.expect(tokOp, "comparison operator")
	if err != nil {
		return nil, err
	}
	num, err := p.expect(tokNumber, "time constant")
	if err != nil {
		return nil, err
	}
	n, err := strconv.ParseInt(strings.ReplaceAll(num.text, "_", ""), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("detail: bad number %q: %v", num.text, err)
	}
	var o cmpOp
	switch op.text {
	case ">=":
		o = opGE
	case ">":
		o = opGT
	case "<=":
		o = opLE
	case "<":
		o = opLT
	case "==":
		o = opEQ
	default:
		return nil, fmt.Errorf("detail: unsupported operator %q", op.text)
	}
	return &cmpExpr{comp: id.text, op: o, t: vtime.Time(n)}, nil
}

// ParseExpr parses a standalone condition expression.
func ParseExpr(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("detail: position %d: trailing input %q", p.cur().pos, p.cur().text)
	}
	return e, nil
}
