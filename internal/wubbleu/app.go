package wubbleu

import (
	"fmt"

	pia "repro"
	"repro/internal/vtime"
)

// Placement maps the WubbleU modules onto subsystems — the degree of
// freedom the paper's experiment exercises. Local simulation places
// everything on one subsystem; the remote experiment moves the
// Modem (the cellular ASIC, plus the server behind its wireless
// link) onto a subsystem hosted by another Pia node.
type Placement struct {
	CPU    string // UI, recognizer, browser, parser, cache, decoder
	Modem  string // cellular ASIC
	Server string // dedicated server
}

// LocalPlacement puts the whole design in a single subsystem.
func LocalPlacement() Placement {
	return Placement{CPU: "main", Modem: "main", Server: "main"}
}

// RemotePlacement puts the network interface and the server it talks
// to on a separate subsystem (to be hosted by a remote node).
func RemotePlacement() Placement {
	return Placement{CPU: "handheld", Modem: "modemsite", Server: "modemsite"}
}

// App holds the instantiated module behaviours for inspection after a
// run.
type App struct {
	Cfg    Config
	UI     *UI
	Recog  *Recognizer
	Brow   *Browser
	Cache  *Cache
	JPEG   *JPEGDecoder
	ASIC   *ASIC
	Server *Server
}

// Install adds the WubbleU design to a system builder under the given
// placement. The nets follow Fig. 5; the "dma" net between the
// browser (CPU) and the ASIC is the link whose detail level the
// experiment switches, and the one that is split across subsystems
// in the remote configuration.
func Install(b *pia.SystemBuilder, cfg Config, pl Placement) (*App, error) {
	if cfg.URL == "" || cfg.PageSize <= 0 || cfg.Loads <= 0 {
		return nil, fmt.Errorf("wubbleu: incomplete config %+v", cfg)
	}
	app := &App{
		Cfg:    cfg,
		UI:     &UI{Cfg: cfg},
		Recog:  &Recognizer{Cfg: cfg},
		Brow:   &Browser{Cfg: cfg},
		Cache:  &Cache{},
		JPEG:   &JPEGDecoder{Cfg: cfg},
		ASIC:   &ASIC{Cfg: cfg},
		Server: &Server{Cfg: cfg},
	}
	b.AddComponent("ui", pl.CPU, app.UI, "ink", "screen").
		AddComponent("recog", pl.CPU, app.Recog, "ink", "url").
		AddComponent("browser", pl.CPU, app.Brow, "url", "screen", "cache", "jpeg", "dma").
		AddComponent("cache", pl.CPU, app.Cache, "bus").
		AddComponent("jpeg", pl.CPU, app.JPEG, "bus").
		AddComponent("asic", pl.Modem, app.ASIC, "dma", "radio").
		AddComponent("server", pl.Server, app.Server, "radio").
		AddNet("ink", 0, "ui.ink", "recog.ink").
		AddNet("url", 0, "recog.url", "browser.url").
		AddNet("screen", 0, "browser.screen", "ui.screen").
		AddNet("cachebus", 0, "browser.cache", "cache.bus").
		AddNet("jpegbus", 0, "browser.jpeg", "jpeg.bus").
		AddNet("dma", 0, "browser.dma", "asic.dma").
		AddNet("radio", 0, "asic.radio", "server.radio")
	b.SetRunlevel("asic", cfg.Level)
	if err := b.Err(); err != nil {
		return nil, err
	}
	return app, nil
}

// Result summarizes the loads the UI completed.
type Result struct {
	Loads     int
	PageBytes []int
	LoadVirt  []vtime.Duration // virtual duration per load
	DMADrives int              // net drives on the switchable link
	CacheHits int
}

// Result collects outcomes after a run.
func (a *App) Result() Result {
	r := Result{
		Loads:     a.UI.Done,
		PageBytes: append([]int(nil), a.UI.Bytes...),
		DMADrives: a.ASIC.DMADrives,
		CacheHits: a.Cache.Hits,
	}
	for i := 0; i < a.UI.Done; i++ {
		d, err := a.UI.LoadTime(i)
		if err == nil {
			r.LoadVirt = append(r.LoadVirt, d)
		}
	}
	return r
}

// CommunicationGraph returns the module adjacency of Fig. 5 as
// (from, to) pairs over net names — used by the Fig. 5 validation
// test and the documentation generator.
func CommunicationGraph() map[string][2]string {
	return map[string][2]string{
		"ink":      {"ui", "recog"},
		"url":      {"recog", "browser"},
		"screen":   {"browser", "ui"},
		"cachebus": {"browser", "cache"},
		"jpegbus":  {"browser", "jpeg"},
		"dma":      {"browser", "asic"},
		"radio":    {"asic", "server"},
	}
}
