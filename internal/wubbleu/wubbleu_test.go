package wubbleu

import (
	"testing"

	pia "repro"
	"repro/internal/proto"
	"repro/internal/vtime"
)

func TestGenPageRoundTrip(t *testing.T) {
	for _, total := range []int{1024, DefaultPageSize, 200_000} {
		data, err := GenPage(total, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != total {
			t.Fatalf("page size %d, want %d", len(data), total)
		}
		p, err := ParsePage(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Images) != 4 {
			t.Fatalf("images = %d", len(p.Images))
		}
		if p.TotalBytes() != total {
			t.Fatalf("TotalBytes = %d, want %d", p.TotalBytes(), total)
		}
	}
	if _, err := GenPage(10, 4); err == nil {
		t.Fatal("tiny page accepted")
	}
}

func TestParsePageErrors(t *testing.T) {
	if _, err := ParsePage([]byte{1, 2}); err == nil {
		t.Fatal("short page accepted")
	}
	data, _ := GenPage(2048, 2)
	data[0] ^= 0xff
	if _, err := ParsePage(data); err == nil {
		t.Fatal("bad magic accepted")
	}
	data[0] ^= 0xff
	if _, err := ParsePage(data[:100]); err == nil {
		t.Fatal("truncated page accepted")
	}
}

func TestStore(t *testing.T) {
	s, err := NewStore()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Get(DefaultURL); len(got) != DefaultPageSize {
		t.Fatalf("default page is %d bytes", len(got))
	}
	s.Put("x", []byte{1})
	if len(s.Get("x")) != 1 || s.Get("nope") != nil {
		t.Fatal("Put/Get broken")
	}
}

// runLocal builds and runs a local WubbleU and returns the app.
func runLocal(t *testing.T, cfg Config) *App {
	t.Helper()
	b := pia.NewSystem("wubbleu")
	app, err := Install(b, cfg, LocalPlacement())
	if err != nil {
		t.Fatal(err)
	}
	sim, err := b.BuildLocal()
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(pia.Infinity); err != nil {
		t.Fatal(err)
	}
	return app
}

func TestLocalPageLoadPacketLevel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PageSize = 8 * 1024 // keep the unit test fast
	cfg.Images = 2
	app := runLocal(t, cfg)
	res := app.Result()
	if res.Loads != 1 {
		t.Fatalf("loads = %d", res.Loads)
	}
	if res.PageBytes[0] != cfg.PageSize {
		t.Fatalf("page bytes = %d, want %d", res.PageBytes[0], cfg.PageSize)
	}
	if app.JPEG.Decoded != 2 || app.Server.Served != 1 || app.Recog.Recognized != 1 {
		t.Fatalf("module counters: jpeg=%d server=%d recog=%d", app.JPEG.Decoded, app.Server.Served, app.Recog.Recognized)
	}
	if res.LoadVirt[0] <= 0 {
		t.Fatal("non-positive load time")
	}
	// 8 KB at 1 Mbps is at least 64 ms of airtime.
	if res.LoadVirt[0] < 64*vtime.Millisecond {
		t.Fatalf("load time %v below radio physics", res.LoadVirt[0])
	}
	if res.DMADrives != proto.Drives(cfg.PageSize, proto.LevelPacket, cfg.Proto) {
		t.Fatalf("dma drives = %d", res.DMADrives)
	}
}

func TestWordLevelCostsMoreVirtualTime(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PageSize = 8 * 1024
	cfg.Images = 1
	word := cfg
	word.Level = proto.LevelWord
	packetApp := runLocal(t, cfg)
	wordApp := runLocal(t, word)
	pr, wr := packetApp.Result(), wordApp.Result()
	if wr.DMADrives <= pr.DMADrives {
		t.Fatalf("word drives %d <= packet drives %d", wr.DMADrives, pr.DMADrives)
	}
	if wr.LoadVirt[0] <= pr.LoadVirt[0] {
		t.Fatalf("word load %v <= packet load %v", wr.LoadVirt[0], pr.LoadVirt[0])
	}
}

func TestSecondLoadHitsCache(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PageSize = 4 * 1024
	cfg.Images = 1
	cfg.Loads = 2
	app := runLocal(t, cfg)
	res := app.Result()
	if res.Loads != 2 {
		t.Fatalf("loads = %d", res.Loads)
	}
	if res.CacheHits != 1 || app.Cache.Misses != 1 {
		t.Fatalf("cache hits=%d misses=%d", res.CacheHits, app.Cache.Misses)
	}
	if app.Server.Served != 1 {
		t.Fatalf("server served %d, want 1 (second load cached)", app.Server.Served)
	}
	// The cached load skips the radio transfer, so it is strictly
	// faster; recognition/decode/render costs dominate both, so the
	// gap equals roughly the network time.
	if res.LoadVirt[1] >= res.LoadVirt[0] {
		t.Fatalf("cached load %v not faster than network load %v", res.LoadVirt[1], res.LoadVirt[0])
	}
}

func TestRemotePlacementSplitsDMA(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PageSize = 4 * 1024
	cfg.Images = 1
	b := pia.NewSystem("wubbleu-remote")
	app, err := Install(b, cfg, RemotePlacement())
	if err != nil {
		t.Fatal(err)
	}
	b.SetDefaultChannel(pia.Conservative, pia.LoopbackLink)
	sim, err := b.BuildLocal()
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Run(pia.Time(pia.Seconds(30))); err != nil {
		t.Fatal(err)
	}
	res := app.Result()
	if res.Loads != 1 {
		t.Fatalf("remote load did not complete: %+v", res)
	}
	// The dma net exists as a fragment on both subsystems.
	if sim.Subsystem("handheld").Net("dma") == nil || sim.Subsystem("modemsite").Net("dma") == nil {
		t.Fatal("dma net not split")
	}
	// The radio net stays entirely on the modem site.
	if sim.Subsystem("handheld").Net("radio") != nil {
		t.Fatal("radio net leaked onto the handheld subsystem")
	}
}

func TestFig5CommunicationGraph(t *testing.T) {
	// The installed design's wiring must realize Fig. 5's module
	// graph: every edge is a net connecting exactly the two
	// endpoints.
	cfg := DefaultConfig()
	cfg.PageSize = 2048
	cfg.Images = 1
	b := pia.NewSystem("fig5")
	if _, err := Install(b, cfg, LocalPlacement()); err != nil {
		t.Fatal(err)
	}
	sim, err := b.BuildLocal()
	if err != nil {
		t.Fatal(err)
	}
	for net, ends := range CommunicationGraph() {
		n := sim.Subsystem("main").Net(net)
		if n == nil {
			t.Fatalf("Fig 5 net %q missing", net)
		}
		comps := map[string]bool{}
		for _, p := range n.Ports() {
			if p.Component() != nil {
				comps[p.Component().Name()] = true
			}
		}
		if !comps[ends[0]] || !comps[ends[1]] {
			t.Fatalf("net %q connects %v, want %v", net, comps, ends)
		}
	}
}

func TestInstallValidation(t *testing.T) {
	b := pia.NewSystem("bad")
	if _, err := Install(b, Config{}, LocalPlacement()); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestUILoadTimeError(t *testing.T) {
	u := &UI{}
	if _, err := u.LoadTime(0); err == nil {
		t.Fatal("LoadTime of incomplete load succeeded")
	}
}
