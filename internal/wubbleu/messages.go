package wubbleu

import "encoding/gob"

// Message types exchanged between the WubbleU modules. They are gob
// registered so any of the nets they travel on can be split across
// Pia nodes.

// Strokes is handwriting input from the UI to the recognizer.
type Strokes struct {
	URL string // the text the strokes encode (recognition is modelled)
}

// URLReq is the recognized request from the recognizer to the
// browser control.
type URLReq struct {
	URL string
}

// CacheReq is a browser request to the cache module.
type CacheReq struct {
	Op   string // "get" or "put"
	Key  string
	Data []byte
}

// CacheResp answers a "get".
type CacheResp struct {
	Key  string
	Hit  bool
	Data []byte
}

// DecodeReq asks the JPEG decoder to decode one image.
type DecodeReq struct {
	ID   int
	Size int
}

// DecodeResp announces a finished decode.
type DecodeResp struct {
	ID int
}

// NetReq asks the network interface (the cellular ASIC) to fetch a
// URL.
type NetReq struct {
	URL string
}

// Rendered tells the UI a page finished rendering.
type Rendered struct {
	URL   string
	Bytes int
}

func init() {
	gob.Register(Strokes{})
	gob.Register(URLReq{})
	gob.Register(CacheReq{})
	gob.Register(CacheResp{})
	gob.Register(DecodeReq{})
	gob.Register(DecodeResp{})
	gob.Register(NetReq{})
	gob.Register(Rendered{})
}
