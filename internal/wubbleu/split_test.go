package wubbleu

import (
	"sync"
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/vtime"
)

// TestSplitHalvesInterop wires InstallHandheld and InstallModemSite
// through an in-process channel — exactly what cmd/pianode and
// cmd/wubbleu do across two OS processes — and loads a page.
func TestSplitHalvesInterop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PageSize = 8 * 1024
	cfg.Images = 2

	hh := core.NewSubsystem("handheld")
	half, err := InstallHandheld(hh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mm := core.NewSubsystem("modemsite")
	modem, err := InstallModemSite(mm, cfg)
	if err != nil {
		t.Fatal(err)
	}

	h1, h2 := channel.NewHub(hh), channel.NewHub(mm)
	ep1, ep2, err := channel.Connect(h1, h2, channel.Conservative, channel.LoopbackLink)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep1.BindNet(hh.Net("dma"), "dma"); err != nil {
		t.Fatal(err)
	}
	if err := ep2.BindNet(mm.Net("dma"), "dma"); err != nil {
		t.Fatal(err)
	}

	horizon := vtime.Time(10 * vtime.Second)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); errs[0] = hh.Run(horizon) }()
	go func() { defer wg.Done(); errs[1] = mm.Run(horizon) }()
	wg.Wait()
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("runs: %v / %v", errs[0], errs[1])
	}
	if half.UI.Done != 1 {
		t.Fatalf("loads = %d", half.UI.Done)
	}
	if half.UI.Bytes[0] != cfg.PageSize {
		t.Fatalf("page bytes = %d", half.UI.Bytes[0])
	}
	if modem.Server.Served != 1 || modem.ASIC.Transfers != 1 {
		t.Fatalf("modem side: served=%d transfers=%d", modem.Server.Served, modem.ASIC.Transfers)
	}
	if half.JPEG.Decoded != 2 {
		t.Fatalf("decoded = %d", half.JPEG.Decoded)
	}
}

func TestInstallModemSiteNeedsLevel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Level = ""
	mm := core.NewSubsystem("m")
	if _, err := InstallModemSite(mm, cfg); err == nil {
		t.Fatal("empty level accepted")
	}
}
