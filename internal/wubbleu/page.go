// Package wubbleu implements the WubbleU application, the suggested
// benchmark for embedded system design tools the paper evaluates on:
// a hand-held Web browser — a hand-held unit plus a wireless
// connection to a dedicated server. The module set follows the
// paper's Fig. 5 communication flow graph (UI, handwriting
// recognition, browser control, HTML parser, JPEG decoder, cache,
// protocol stack / network interface, server), and the architecture
// builder follows Fig. 6: every process mapped onto the embedded CPU
// except the network interface, which lives on the cellular
// communication ASIC that transfers packets to the system through
// DMA — the chip that is the candidate for remote operation.
package wubbleu

import (
	"encoding/binary"
	"fmt"
	"math/rand"
)

// Page layout: a deterministic synthetic web page standing in for the
// 66 KB Pia home page ("approximately 66KB of data, including
// graphics"). The page is a header, an HTML body, and a sequence of
// embedded images:
//
//	[4B magic][4B htmlLen][4B imageCount] html... { [4B imgLen] img... }*
const pageMagic = 0x57754255 // "WuBU"

// DefaultPageSize matches the paper's page.
const DefaultPageSize = 66 * 1024

// DefaultImageCount is how many graphics the synthetic page embeds.
const DefaultImageCount = 4

// Page is a parsed page.
type Page struct {
	HTML   []byte
	Images [][]byte
}

// TotalBytes is the encoded size.
func (p *Page) TotalBytes() int {
	n := 12 + len(p.HTML)
	for _, img := range p.Images {
		n += 4 + len(img)
	}
	return n
}

// GenPage deterministically generates a page of exactly total bytes
// with the given number of embedded images (graphics take roughly
// two thirds of the page, as on a graphics-heavy 1998 home page).
func GenPage(total, images int) ([]byte, error) {
	overhead := 12 + 4*images
	if total < overhead+images+1 {
		return nil, fmt.Errorf("wubbleu: page of %d bytes cannot hold %d images", total, images)
	}
	payload := total - overhead
	imgBytes := payload * 2 / 3
	htmlBytes := payload - imgBytes

	rng := rand.New(rand.NewSource(0x77754255))
	html := make([]byte, htmlBytes)
	fill := []byte("<p>the pia home page, rendered by wubbleu </p>")
	for i := range html {
		html[i] = fill[i%len(fill)]
	}
	out := make([]byte, 0, total)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], pageMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(htmlBytes))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(images))
	out = append(out, hdr[:]...)
	out = append(out, html...)
	rem := imgBytes
	for i := 0; i < images; i++ {
		sz := rem / (images - i)
		img := make([]byte, sz)
		rng.Read(img)
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(sz))
		out = append(out, l[:]...)
		out = append(out, img...)
		rem -= sz
	}
	if len(out) != total {
		return nil, fmt.Errorf("wubbleu: generated %d bytes, want %d", len(out), total)
	}
	return out, nil
}

// ParsePage decodes a generated page.
func ParsePage(data []byte) (*Page, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("wubbleu: page too short (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint32(data[0:]) != pageMagic {
		return nil, fmt.Errorf("wubbleu: bad page magic")
	}
	htmlLen := int(binary.LittleEndian.Uint32(data[4:]))
	images := int(binary.LittleEndian.Uint32(data[8:]))
	pos := 12
	if pos+htmlLen > len(data) {
		return nil, fmt.Errorf("wubbleu: truncated html")
	}
	p := &Page{HTML: data[pos : pos+htmlLen]}
	pos += htmlLen
	for i := 0; i < images; i++ {
		if pos+4 > len(data) {
			return nil, fmt.Errorf("wubbleu: truncated image header %d", i)
		}
		sz := int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
		if pos+sz > len(data) {
			return nil, fmt.Errorf("wubbleu: truncated image %d", i)
		}
		p.Images = append(p.Images, data[pos:pos+sz])
		pos += sz
	}
	if pos != len(data) {
		return nil, fmt.Errorf("wubbleu: %d trailing bytes", len(data)-pos)
	}
	return p, nil
}

// Store is the dedicated server's page store.
type Store struct {
	pages map[string][]byte
}

// NewStore creates a store with the default page published at
// "http://www.cs.washington.edu/research/chinook/pia.html".
func NewStore() (*Store, error) {
	s := &Store{pages: make(map[string][]byte)}
	page, err := GenPage(DefaultPageSize, DefaultImageCount)
	if err != nil {
		return nil, err
	}
	s.pages[DefaultURL] = page
	return s, nil
}

// DefaultURL is the page the experiment loads.
const DefaultURL = "http://www.cs.washington.edu/research/chinook/pia.html"

// Put publishes a page.
func (s *Store) Put(url string, data []byte) { s.pages[url] = data }

// Get fetches a page; nil when absent.
func (s *Store) Get(url string) []byte { return s.pages[url] }
