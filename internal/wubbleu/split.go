package wubbleu

import (
	"fmt"

	"repro/internal/core"
)

// The split installers build each half of the remote WubbleU
// configuration directly onto a raw subsystem, for deployments where
// the two halves live in different processes (cmd/pianode serves the
// modem site; cmd/wubbleu runs the handheld side and dials it). The
// "dma" net is the fragment boundary: each side creates its own
// fragment and binds it to the channel endpoint.

// HandheldHalf is the CPU side of the split design.
type HandheldHalf struct {
	UI    *UI
	Recog *Recognizer
	Brow  *Browser
	Cache *Cache
	JPEG  *JPEGDecoder
}

// InstallHandheld builds the handheld subsystem: every module except
// the network interface, plus the local fragment of the "dma" net.
func InstallHandheld(sub *core.Subsystem, cfg Config) (*HandheldHalf, error) {
	h := &HandheldHalf{
		UI:    &UI{Cfg: cfg},
		Recog: &Recognizer{Cfg: cfg},
		Brow:  &Browser{Cfg: cfg},
		Cache: &Cache{},
		JPEG:  &JPEGDecoder{Cfg: cfg},
	}
	type compDef struct {
		name  string
		bhv   core.Behavior
		ports []string
	}
	comps := []compDef{
		{"ui", h.UI, []string{"ink", "screen"}},
		{"recog", h.Recog, []string{"ink", "url"}},
		{"browser", h.Brow, []string{"url", "screen", "cache", "jpeg", "dma"}},
		{"cache", h.Cache, []string{"bus"}},
		{"jpeg", h.JPEG, []string{"bus"}},
	}
	for _, cd := range comps {
		c, err := sub.NewComponent(cd.name, cd.bhv)
		if err != nil {
			return nil, err
		}
		for _, pn := range cd.ports {
			if _, err := c.AddPort(pn); err != nil {
				return nil, err
			}
		}
	}
	nets := []struct {
		name  string
		ports [][2]string
	}{
		{"ink", [][2]string{{"ui", "ink"}, {"recog", "ink"}}},
		{"url", [][2]string{{"recog", "url"}, {"browser", "url"}}},
		{"screen", [][2]string{{"browser", "screen"}, {"ui", "screen"}}},
		{"cachebus", [][2]string{{"browser", "cache"}, {"cache", "bus"}}},
		{"jpegbus", [][2]string{{"browser", "jpeg"}, {"jpeg", "bus"}}},
		{"dma", [][2]string{{"browser", "dma"}}},
	}
	for _, nd := range nets {
		n, err := sub.NewNet(nd.name, 0)
		if err != nil {
			return nil, err
		}
		ports := make([]*core.Port, 0, len(nd.ports))
		for _, pr := range nd.ports {
			ports = append(ports, sub.Component(pr[0]).Port(pr[1]))
		}
		if err := sub.Connect(n, ports...); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// ModemHalf is the network-interface side of the split design.
type ModemHalf struct {
	ASIC   *ASIC
	Server *Server
}

// InstallModemSite builds the modem subsystem: the cellular ASIC and
// the dedicated server behind its wireless link, plus the remote
// fragment of the "dma" net.
func InstallModemSite(sub *core.Subsystem, cfg Config) (*ModemHalf, error) {
	m := &ModemHalf{
		ASIC:   &ASIC{Cfg: cfg},
		Server: &Server{Cfg: cfg},
	}
	ac, err := sub.NewComponent("asic", m.ASIC)
	if err != nil {
		return nil, err
	}
	ac.AddPort("dma")
	ac.AddPort("radio")
	ac.SetRunlevel(cfg.Level)
	sc, err := sub.NewComponent("server", m.Server)
	if err != nil {
		return nil, err
	}
	sc.AddPort("radio")
	dma, err := sub.NewNet("dma", 0)
	if err != nil {
		return nil, err
	}
	if err := sub.Connect(dma, ac.Port("dma")); err != nil {
		return nil, err
	}
	radio, err := sub.NewNet("radio", 0)
	if err != nil {
		return nil, err
	}
	if err := sub.Connect(radio, ac.Port("radio"), sc.Port("radio")); err != nil {
		return nil, err
	}
	if cfg.Level == "" {
		return nil, fmt.Errorf("wubbleu: modem site needs an initial detail level")
	}
	return m, nil
}
