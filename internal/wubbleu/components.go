package wubbleu

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/signal"
	"repro/internal/timing"
	"repro/internal/vtime"
)

// Config parameterizes a WubbleU build.
type Config struct {
	URL      string
	PageSize int
	Images   int
	Loads    int    // page loads the UI performs
	Level    string // initial detail level of the ASIC<->CPU DMA link
	NoCache  bool   // bypass the page cache (every load fetches)
	Proto    proto.Config

	// Wireless link between the handheld and the dedicated server.
	RadioFrameLen   int
	RadioBitsPerSec int64

	// Cost knobs (cycles on the respective processor).
	RecognizeCycles   int64 // handwriting recognition per request
	ParseCyclesPerKB  int64 // HTML parse
	DecodeCyclesPerKB int64 // JPEG decode
	RenderCycles      int64 // final paint
	ServerCyclesPerKB int64 // server-side page assembly
}

// DefaultConfig reproduces the paper's experiment: a 66 KB page with
// graphics, transferred in 4-byte words or 1 KB packets.
func DefaultConfig() Config {
	return Config{
		URL:               DefaultURL,
		PageSize:          DefaultPageSize,
		Images:            DefaultImageCount,
		Loads:             1,
		Level:             proto.LevelPacket,
		Proto:             proto.DefaultConfig,
		RadioFrameLen:     1024,
		RadioBitsPerSec:   1_000_000, // early cellular data link
		RecognizeCycles:   3_000_000,
		ParseCyclesPerKB:  40_000,
		DecodeCyclesPerKB: 120_000,
		RenderCycles:      2_000_000,
		ServerCyclesPerKB: 5_000,
	}
}

// airtime is the wireless serialization time for n payload bytes.
func (c Config) airtime(n int) vtime.Duration {
	return vtime.Duration(int64(n) * 8 * int64(vtime.Second) / c.RadioBitsPerSec)
}

// UI is the user interface: it enters the URL (as ink strokes) and
// waits for the rendered page.
type UI struct {
	Cfg Config

	Requested []int64 // virtual times, ns
	RenderedT []int64
	Bytes     []int
	Done      int
}

// Run implements core.Behavior.
func (u *UI) Run(p *core.Proc) error {
	for u.Done < u.Cfg.Loads {
		p.Delay(1 * vtime.Millisecond) // the user taps "go"
		u.Requested = append(u.Requested, int64(p.Time()))
		p.Send("ink", Strokes{URL: u.Cfg.URL})
		for {
			m, ok := p.Recv("screen")
			if !ok {
				return nil
			}
			r, isR := m.Value.(Rendered)
			if !isR {
				continue
			}
			u.RenderedT = append(u.RenderedT, int64(p.Time()))
			u.Bytes = append(u.Bytes, r.Bytes)
			u.Done++
			break
		}
	}
	return nil
}

// LoadTime returns the virtual duration of load i.
func (u *UI) LoadTime(i int) (vtime.Duration, error) {
	if i >= len(u.RenderedT) {
		return 0, fmt.Errorf("wubbleu: load %d did not complete (%d done)", i, u.Done)
	}
	return vtime.Duration(u.RenderedT[i] - u.Requested[i]), nil
}

func (u *UI) SaveState() ([]byte, error)  { return core.GobSave(u) }
func (u *UI) RestoreState(b []byte) error { return core.GobRestore(u, b) }

// Recognizer models the handwriting recognition software: it burns
// CPU and forwards the recognized URL.
type Recognizer struct {
	Cfg        Config
	Recognized int

	est *timing.Estimator
}

// Run implements core.Behavior.
func (r *Recognizer) Run(p *core.Proc) error {
	if r.est == nil {
		r.est, _ = timing.NewEstimator(timing.EmbeddedCPU)
	}
	for {
		m, ok := p.Recv("ink")
		if !ok {
			return nil
		}
		s, isS := m.Value.(Strokes)
		if !isS {
			continue
		}
		r.est.ChargeCycles(p, r.Cfg.RecognizeCycles)
		r.Recognized++
		p.Send("url", URLReq{URL: s.URL})
	}
}

func (r *Recognizer) SaveState() ([]byte, error)  { return core.GobSave(r) }
func (r *Recognizer) RestoreState(b []byte) error { return core.GobRestore(r, b) }

// Cache is the handheld's page cache.
type Cache struct {
	Pages  map[string][]byte
	Hits   int
	Misses int
}

// Run implements core.Behavior.
func (c *Cache) Run(p *core.Proc) error {
	if c.Pages == nil {
		c.Pages = make(map[string][]byte)
	}
	for {
		m, ok := p.Recv("bus")
		if !ok {
			return nil
		}
		req, isReq := m.Value.(CacheReq)
		if !isReq {
			continue
		}
		switch req.Op {
		case "get":
			data, hit := c.Pages[req.Key]
			if hit {
				c.Hits++
			} else {
				c.Misses++
			}
			p.Advance(20 * vtime.Microsecond)
			p.Send("bus", CacheResp{Key: req.Key, Hit: hit, Data: data})
		case "put":
			c.Pages[req.Key] = req.Data
			p.Advance(vtime.Duration(len(req.Data)) * 2) // ~2ns/byte copy
		}
	}
}

func (c *Cache) SaveState() ([]byte, error)  { return core.GobSave(c) }
func (c *Cache) RestoreState(b []byte) error { return core.GobRestore(c, b) }

// JPEGDecoder models the image decoder.
type JPEGDecoder struct {
	Cfg     Config
	Decoded int

	est *timing.Estimator
}

// Run implements core.Behavior.
func (d *JPEGDecoder) Run(p *core.Proc) error {
	if d.est == nil {
		d.est, _ = timing.NewEstimator(timing.EmbeddedCPU)
	}
	for {
		m, ok := p.Recv("bus")
		if !ok {
			return nil
		}
		req, isReq := m.Value.(DecodeReq)
		if !isReq {
			continue
		}
		d.est.ChargeCycles(p, d.Cfg.DecodeCyclesPerKB*int64(req.Size)/1024)
		d.Decoded++
		p.Send("bus", DecodeResp{ID: req.ID})
	}
}

func (d *JPEGDecoder) SaveState() ([]byte, error)  { return core.GobSave(d) }
func (d *JPEGDecoder) RestoreState(b []byte) error { return core.GobRestore(d, b) }

// Browser is the control process: cache lookup, network fetch, parse,
// image decode, render.
type Browser struct {
	Cfg    Config
	Loaded int

	est *timing.Estimator
}

// Run implements core.Behavior.
func (b *Browser) Run(p *core.Proc) error {
	if b.est == nil {
		b.est, _ = timing.NewEstimator(timing.EmbeddedCPU)
	}
	for {
		m, ok := p.Recv("url")
		if !ok {
			return nil
		}
		req, isReq := m.Value.(URLReq)
		if !isReq {
			continue
		}
		page, err := b.fetch(p, req.URL)
		if err != nil {
			return err
		}
		if page == nil {
			return nil // simulation ended mid-fetch
		}
		parsed, err := ParsePage(page)
		if err != nil {
			return fmt.Errorf("wubbleu: browser: %w", err)
		}
		b.est.ChargeCycles(p, b.Cfg.ParseCyclesPerKB*int64(len(parsed.HTML))/1024)
		for i, img := range parsed.Images {
			p.Send("jpeg", DecodeReq{ID: i, Size: len(img)})
			if !b.awaitDecode(p, i) {
				return nil
			}
		}
		b.est.ChargeCycles(p, b.Cfg.RenderCycles)
		b.Loaded++
		p.Send("screen", Rendered{URL: req.URL, Bytes: len(page)})
	}
}

// fetch returns the page bytes, consulting the cache first and the
// network interface on a miss.
func (b *Browser) fetch(p *core.Proc, url string) ([]byte, error) {
	if !b.Cfg.NoCache {
		p.Send("cache", CacheReq{Op: "get", Key: url})
		for {
			m, ok := p.Recv("cache")
			if !ok {
				return nil, nil
			}
			resp, isResp := m.Value.(CacheResp)
			if !isResp {
				continue
			}
			if resp.Hit {
				return resp.Data, nil
			}
			break
		}
	}
	p.Send("dma", NetReq{URL: url})
	asm := proto.NewAssembler()
	page, ok, err := proto.ReceiveMessage(p, "dma", asm)
	if err != nil {
		return nil, fmt.Errorf("wubbleu: browser dma: %w", err)
	}
	if !ok {
		return nil, nil
	}
	if !b.Cfg.NoCache {
		p.Send("cache", CacheReq{Op: "put", Key: url, Data: page})
	}
	return page, nil
}

func (b *Browser) awaitDecode(p *core.Proc, id int) bool {
	for {
		m, ok := p.Recv("jpeg")
		if !ok {
			return false
		}
		if resp, isResp := m.Value.(DecodeResp); isResp && resp.ID == id {
			return true
		}
	}
}

func (b *Browser) SaveState() ([]byte, error)   { return core.GobSave(b) }
func (b *Browser) RestoreState(bs []byte) error { return core.GobRestore(b, bs) }

// ASIC is the cellular communication chip: it carries requests over
// the wireless link and transfers received pages to the system
// through DMA. Its runlevel chooses the DMA rendering — hardware
// (bus cycles), word passage, or packet passage — which is exactly
// the link whose abstraction level the paper's experiment varies.
type ASIC struct {
	Cfg       Config
	Transfers int
	DMADrives int
}

// Run implements core.Behavior.
func (a *ASIC) Run(p *core.Proc) error {
	asm := proto.NewAssembler()
	for {
		m, ok := p.Recv("dma", "radio")
		if !ok {
			return nil
		}
		switch v := m.Value.(type) {
		case NetReq:
			p.Advance(a.Cfg.airtime(len(v.URL) + 16)) // request frame airtime
			p.Send("radio", signal.Frame{Src: "asic", Dst: "server", Payload: []byte(v.URL), Last: true})
		case signal.Frame:
			page, done, err := asm.Feed(v)
			if err != nil {
				return fmt.Errorf("wubbleu: asic radio: %w", err)
			}
			if !done {
				continue
			}
			// Whole page buffered on the chip: DMA it to the CPU at
			// the current detail level.
			a.Transfers++
			a.DMADrives += proto.SendMessage(p, "dma", page, p.Runlevel(), a.Cfg.Proto)
		}
	}
}

func (a *ASIC) SaveState() ([]byte, error)  { return core.GobSave(a) }
func (a *ASIC) RestoreState(b []byte) error { return core.GobRestore(a, b) }

// Server is the dedicated server: a base station plus web gateway
// serving the page store over the wireless link.
type Server struct {
	Cfg    Config
	Served int

	store *Store
	est   *timing.Estimator
}

// Run implements core.Behavior.
func (s *Server) Run(p *core.Proc) error {
	if s.store == nil {
		st, err := NewStore()
		if err != nil {
			return err
		}
		s.store = st
	}
	if s.est == nil {
		s.est, _ = timing.NewEstimator(timing.ServerCPU)
	}
	if s.Cfg.PageSize != DefaultPageSize || s.Cfg.Images != DefaultImageCount {
		page, err := GenPage(s.Cfg.PageSize, s.Cfg.Images)
		if err != nil {
			return err
		}
		s.store.Put(s.Cfg.URL, page)
	}
	asm := proto.NewAssembler()
	for {
		m, ok := p.Recv("radio")
		if !ok {
			return nil
		}
		payload, done, err := asm.Feed(m.Value)
		if err != nil {
			return fmt.Errorf("wubbleu: server radio: %w", err)
		}
		if !done {
			continue
		}
		url := string(payload)
		page := s.store.Get(url)
		if page == nil {
			page = []byte{} // 404: empty body
		}
		s.est.ChargeCycles(p, s.Cfg.ServerCyclesPerKB*int64(len(page))/1024)
		s.Served++
		// Stream the page back over the air, one frame per radio
		// packet with its airtime.
		flen := s.Cfg.RadioFrameLen
		if flen <= 0 {
			flen = 1024
		}
		seq := uint32(0)
		for off := 0; off < len(page) || seq == 0; off += flen {
			end := off + flen
			if end > len(page) {
				end = len(page)
			}
			chunk := make([]byte, end-off)
			copy(chunk, page[off:end])
			p.Advance(s.Cfg.airtime(len(chunk) + 16))
			p.Send("radio", signal.Frame{Src: "server", Dst: "asic", Seq: seq, Payload: chunk, Last: end >= len(page)})
			seq++
		}
	}
}

func (s *Server) SaveState() ([]byte, error)  { return core.GobSave(s) }
func (s *Server) RestoreState(b []byte) error { return core.GobRestore(s, b) }
