package experiments

import "testing"

// TestSessionsExperiment runs a scaled-down version of the bench:
// every leg must complete with digests matching the isolated
// references and the determinism probes agreeing.
func TestSessionsExperiment(t *testing.T) {
	cfg := DefaultSessionsConfig()
	cfg.Sessions = 16
	cfg.Churn = 24
	cfg.Clients = 4
	cfg.Workers = []int{0, 2}
	cfg.Seeds = 6

	rows, err := Sessions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	legs := map[string]int{}
	for _, r := range rows {
		legs[r.Leg]++
		if !r.DigestsOK {
			t.Fatalf("leg %s workers=%d: digests diverged", r.Leg, r.Workers)
		}
		switch r.Leg {
		case "steady":
			if r.PeakLive != cfg.Sessions {
				t.Fatalf("steady workers=%d peak live %d, want %d", r.Workers, r.PeakLive, cfg.Sessions)
			}
			if r.Steps == 0 {
				t.Fatalf("steady workers=%d recorded no steps", r.Workers)
			}
		case "churn":
			if r.SessionsPerSec <= 0 {
				t.Fatalf("churn throughput %v", r.SessionsPerSec)
			}
		case "admission":
			if r.Rejected != int64(cfg.Sessions/2) {
				t.Fatalf("admission rejected %d, want %d", r.Rejected, cfg.Sessions/2)
			}
		case "evict":
			if r.Evicted != 1 || r.EvictSteps == 0 {
				t.Fatalf("evict row %+v", r)
			}
		}
	}
	if legs["steady"] != len(cfg.Workers) || legs["churn"] != 1 || legs["admission"] != 1 || legs["evict"] != 1 {
		t.Fatalf("leg coverage %v", legs)
	}
}
