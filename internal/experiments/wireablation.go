package experiments

import (
	"fmt"
	"runtime"

	pia "repro"
	"repro/internal/channel"
	"repro/internal/proto"
	"repro/internal/signal"
	"repro/internal/vtime"
)

// WireRow is one leg of the wire-codec ablation: the coalesced remote
// workload at a given detail level, run with either the gob fallback
// forced on every batch entry (the pre-zero-copy codec) or the
// zero-copy binary path.
type WireRow struct {
	Table1Row
	Codec string // "gob" or "zero-copy"

	// BytesPerFrame is the mean wire frame size (headers included).
	BytesPerFrame float64

	// EncodeAllocs and DecodeAllocs are codec-microbench figures for
	// this codec: allocations per batch encoded into a recycled
	// buffer / decoded into a recycled message slice.
	EncodeAllocs float64
	DecodeAllocs float64
}

// allocsPerRun measures heap allocations per call of f, after one
// warm-up call — the experiments-side analog of
// testing.AllocsPerRun, so piabench can report allocs/op without
// importing the testing package.
func allocsPerRun(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// codecAllocs measures encode and decode allocations per batch for
// the current forceGob setting, on the protocol mix the remote hot
// path actually carries (small-word drives, asks, grants).
func codecAllocs() (encode, decode float64, err error) {
	msgs := []channel.Message{
		{Kind: channel.KindData, From: "ss1", Seq: 1, Ack: 3, Net: "dmaLink", Source: "cpu", Time: 100, Value: signal.Word(17)},
		{Kind: channel.KindData, From: "ss1", Seq: 2, Ack: 3, Net: "dmaLink", Source: "cpu", Time: 110, Value: signal.Level(true)},
		{Kind: channel.KindSafeTimeReq, From: "ss1", Seq: 3, Ack: 4, Ask: 500},
		{Kind: channel.KindSafeTimeGrant, From: "ss1", Seq: 4, Ack: 5, Grant: vtime.Infinity},
	}
	var dst []byte
	var encErr error
	encode = allocsPerRun(200, func() {
		dst, _, encErr = channel.AppendBatch(dst[:0], msgs, 1<<20)
	})
	if encErr != nil {
		return 0, 0, encErr
	}
	payload, _, err := channel.AppendBatch(nil, msgs, 1<<20)
	if err != nil {
		return 0, 0, err
	}
	dec := channel.NewBatchDecoder()
	var buf []channel.Message
	var decErr error
	decode = allocsPerRun(200, func() {
		buf, _, decErr = dec.DecodeBatchInto(payload, buf)
	})
	if decErr != nil {
		return 0, 0, decErr
	}
	return encode, decode, nil
}

// WireAblation runs the coalesced remote workload at word and packet
// level, once per codec — gob forced everywhere versus the zero-copy
// binary path — on identical workloads, and attaches the codec
// microbench figures. The virtual results of the two codecs must be
// bit-identical (same times, same drives); any divergence is an
// error, because the wire format must never leak into simulation
// semantics.
func WireAblation(c Table1Config) ([]WireRow, error) {
	if !c.Coalesce.Enabled() {
		c.Coalesce = pia.DefaultCoalesce
	}
	defer channel.SetForceGob(false)
	var rows []WireRow
	for _, level := range []string{proto.LevelWord, proto.LevelPacket} {
		var legs [2]WireRow
		for i, codec := range []string{"gob", "zero-copy"} {
			channel.SetForceGob(codec == "gob")
			enc, dec, err := codecAllocs()
			if err != nil {
				return nil, err
			}
			row, err := Remote(c, level)
			if err != nil {
				return nil, fmt.Errorf("wire ablation (%s, %s): %w", level, codec, err)
			}
			row.Location = "remote+coalesce"
			legs[i] = WireRow{Table1Row: row, Codec: codec, EncodeAllocs: enc, DecodeAllocs: dec}
			if row.FramesOut > 0 {
				legs[i].BytesPerFrame = float64(row.WireBytesOut) / float64(row.FramesOut)
			}
		}
		if legs[0].Virt != legs[1].Virt || legs[0].Drives != legs[1].Drives {
			return nil, fmt.Errorf("wire ablation (%s): codecs diverge: gob virt=%v drives=%d, zero-copy virt=%v drives=%d",
				level, legs[0].Virt, legs[0].Drives, legs[1].Virt, legs[1].Drives)
		}
		rows = append(rows, legs[0], legs[1])
	}
	return rows, nil
}
