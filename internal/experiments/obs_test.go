package experiments

import (
	"testing"
	"time"
)

// TestObsExperiment runs a scaled-down observability overhead
// experiment: both legs must complete with virtual results identical
// under the full flight stack (Obs errors on any divergence), a live
// SSE watcher must receive frames, and no subscriber may be dropped.
func TestObsExperiment(t *testing.T) {
	cfg := DefaultObsConfig()
	cfg.Table1 = Table1Config{PageSize: 4 * 1024, Images: 2}
	cfg.Sessions.Sessions = 8
	cfg.Sessions.Seeds = 4
	cfg.Sessions.WorkIters = 256
	cfg.Sessions.Workers = []int{2}
	cfg.Runs = 1
	cfg.WatchInterval = 20 * time.Millisecond

	rows, err := Obs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if !r.DigestsOK {
			t.Fatalf("%s: digests diverged", r.Leg)
		}
		if r.OffWall <= 0 || r.OnWall <= 0 {
			t.Fatalf("%s: missing walls %v/%v", r.Leg, r.OffWall, r.OnWall)
		}
		if r.EventsStreamed == 0 {
			t.Fatalf("%s: live watcher streamed nothing", r.Leg)
		}
		if r.RingRecorded == 0 {
			t.Fatalf("%s: flight ring recorded nothing", r.Leg)
		}
		if r.Dropped != 0 {
			t.Fatalf("%s: healthy watcher dropped %d times", r.Leg, r.Dropped)
		}
	}
	if rows[0].Leg != "remote-word" || rows[0].Virt <= 0 || rows[0].Drives <= 0 {
		t.Fatalf("remote row malformed: %+v", rows[0])
	}
	if rows[1].Leg != "sessions-steady" || rows[1].Steps <= 0 {
		t.Fatalf("sessions row malformed: %+v", rows[1])
	}
}
