package experiments

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	pia "repro"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/service"
	"repro/internal/vtime"
)

// ObsConfig shapes the observability overhead experiment: each leg is
// run with the metrics layer wired (how any watched deployment already
// runs), then again with the full flight stack added on top — flight
// recorder, metrics sampler, a live SSE /watch subscriber streaming
// over real HTTP, and per-component cost attribution — on an otherwise
// identical workload. The figure of merit is the wall-clock cost of
// watching (the flight stack's delta over the metrics baseline), and
// the invariant is that the virtual results do not move at all.
type ObsConfig struct {
	Table1   Table1Config   // remote-word leg workload
	Sessions SessionsConfig // steady sessions leg workload

	// Runs is how many off/on pairs each leg executes (>=1). The
	// variants are interleaved — off, on, off, on, ... — so slow drift
	// in machine load lands on both sides of the delta instead of
	// biasing whichever block ran second; the min wall per variant is
	// kept.
	Runs          int
	WatchInterval time.Duration // sampler cadence feeding /watch
	TopN          int           // attribution top-N gauges
}

// DefaultObsConfig keeps each leg in benchmark territory: the paper
// workload for the remote row, a trimmed tenant count but heavier
// per-dispatch work for the sessions row (so the leg measures
// steady-state overhead, not per-session setup), and a 250ms sampling
// cadence — still 4x more aggressive than a realistic 1s-cadence
// dashboard. The cadence is the honest knob here: each sample pays one
// full catalog scrape (every tenant's registry re-labelled and
// diffed), so the sampling overhead ratio is scrape-cost/interval
// regardless of leg length.
func DefaultObsConfig() ObsConfig {
	s := DefaultSessionsConfig()
	s.Sessions = 60
	s.WorkIters = 32768
	return ObsConfig{
		Table1:        DefaultTable1Config(),
		Sessions:      s,
		Runs:          8,
		WatchInterval: 250 * time.Millisecond,
		TopN:          5,
	}
}

// ObsRow is one leg of the observability overhead experiment.
type ObsRow struct {
	Leg     string // "remote-word", "sessions-steady"
	Workers int

	OffWall     time.Duration // metrics-only baseline (min over Runs)
	OnWall      time.Duration // + flight stack + SSE watcher (min over Runs)
	OverheadPct float64       // (OnWall-OffWall)/OffWall * 100

	// DigestsOK is the whole point: the virtual results with observers
	// attached are bit-identical to the baseline run (drives + virtual
	// time on the remote leg, per-tenant drive digests on the sessions
	// leg). Obs returns an error on any divergence.
	DigestsOK bool
	Virt      vtime.Duration // remote leg: virtual load time
	Drives    int            // remote leg: DMA net drives
	Steps     int64          // sessions leg: scheduler steps

	// Flight-stack accounting from the final instrumented run.
	EventsStreamed uint64 // SSE frames enqueued to subscribers
	RingRecorded   uint64 // entries the flight ring recorded
	Dropped        uint64 // subscribers dropped for stalling (want 0)
}

// watcher is one live SSE client: the hub mounted on a real HTTP
// server and a streaming GET /watch reader draining it, so the
// measured overhead includes JSON encoding, the subscriber queue, and
// actual socket writes.
type watcher struct {
	srv  *httptest.Server
	resp *http.Response
	done chan struct{}
}

func newWatcher(hub *flight.Hub) (*watcher, error) {
	srv := httptest.NewServer(hub)
	resp, err := http.Get(srv.URL + "/watch")
	if err != nil {
		srv.Close()
		return nil, fmt.Errorf("obs: watch subscribe: %w", err)
	}
	w := &watcher{srv: srv, resp: resp, done: make(chan struct{})}
	go func() {
		defer close(w.done)
		_, _ = io.Copy(io.Discard, resp.Body)
	}()
	return w, nil
}

func (w *watcher) close() {
	if w == nil {
		return
	}
	_ = w.resp.Body.Close()
	w.srv.CloseClientConnections()
	w.srv.Close()
	<-w.done
}

// obsStack is the full telemetry stack one instrumented run attaches.
type obsStack struct {
	rec     *flight.Recorder
	hub     *flight.Hub
	obs     *flight.Observer
	sampler *flight.Sampler
	watch   *watcher
}

func newObsStack(reg *metrics.Registry, every time.Duration) (*obsStack, error) {
	rec := flight.New(0)
	rec.SetInfo("mode", "obs-experiment")
	rec.AttachRegistry(reg)
	hub := flight.NewHub()
	st := &obsStack{
		rec:     rec,
		hub:     hub,
		obs:     &flight.Observer{Rec: rec, Hub: hub},
		sampler: flight.NewSampler(reg, rec, hub, every),
	}
	w, err := newWatcher(hub)
	if err != nil {
		return nil, err
	}
	st.watch = w
	st.sampler.Start()
	return st, nil
}

// stop tears the stack down and returns its accounting; it errors if
// the recorder tripped (a healthy leg must not trigger a post-mortem)
// or the live watcher was dropped.
func (st *obsStack) stop(row *ObsRow) error {
	st.sampler.Stop()
	st.watch.close()
	if tripped, reason := st.rec.Tripped(); tripped {
		return fmt.Errorf("obs: %s: flight recorder tripped during healthy run: %s", row.Leg, reason)
	}
	row.EventsStreamed = st.hub.Sent()
	row.RingRecorded = st.rec.BuildDump().Recorded
	row.Dropped = st.hub.Dropped()
	if row.Dropped != 0 {
		return fmt.Errorf("obs: %s: live watcher dropped (%d) during run", row.Leg, row.Dropped)
	}
	return nil
}

// Obs measures the cost of watching: the remote word-passage row and
// a steady multi-tenant sessions leg, each against its metrics-only
// baseline, with virtual-result equality enforced.
func Obs(cfg ObsConfig) ([]ObsRow, error) {
	if cfg.Runs < 1 {
		cfg.Runs = 1
	}
	if cfg.WatchInterval <= 0 {
		cfg.WatchInterval = 25 * time.Millisecond
	}
	remote, err := obsRemoteLeg(cfg)
	if err != nil {
		return nil, err
	}
	sessions, err := obsSessionsLeg(cfg)
	if err != nil {
		return []ObsRow{remote}, err
	}
	return []ObsRow{remote, sessions}, nil
}

func overheadPct(off, on time.Duration) float64 {
	if off <= 0 {
		return 0
	}
	return (float64(on) - float64(off)) / float64(off) * 100
}

// obsRemoteLeg runs the paper's remote word-passage row with metrics
// wired (the baseline) and then fully instrumented. Equality is judged
// on the committed virtual outcome: the virtual load time and the DMA
// drive count.
func obsRemoteLeg(cfg ObsConfig) (ObsRow, error) {
	row := ObsRow{Leg: "remote-word", Workers: cfg.Table1.Workers}

	for r := 0; r < cfg.Runs; r++ {
		// Off half of the pair: metrics wired, no flight stack.
		c := cfg.Table1
		c.CollectMetrics = true
		t1, err := Remote(c, proto.LevelWord)
		if err != nil {
			return row, fmt.Errorf("obs: remote off run %d: %w", r, err)
		}
		if r == 0 {
			row.Virt, row.Drives, row.OffWall = t1.Virt, t1.Drives, t1.Wall
		} else {
			if t1.Virt != row.Virt || t1.Drives != row.Drives {
				return row, fmt.Errorf("obs: bare remote runs diverged: virt %v/%v drives %d/%d",
					t1.Virt, row.Virt, t1.Drives, row.Drives)
			}
			if t1.Wall < row.OffWall {
				row.OffWall = t1.Wall
			}
		}

		// On half: same workload with the full flight stack attached.
		c = cfg.Table1
		c.CollectMetrics = true
		var (
			reg     *pia.MetricsRegistry
			st      *obsStack
			hookErr error
		)
		c.OnMetrics = func(r *pia.MetricsRegistry) { reg = r }
		c.OnCluster = func(cl *pia.Cluster) {
			st, hookErr = newObsStack(reg, cfg.WatchInterval)
			if hookErr != nil {
				return
			}
			cl.EnableFlight(st.obs)
			cl.EnableCostAttribution(reg, cfg.TopN)
		}
		t1, err = Remote(c, proto.LevelWord)
		if hookErr != nil {
			return row, hookErr
		}
		if err != nil {
			st.sampler.Stop()
			st.watch.close()
			return row, fmt.Errorf("obs: remote on run %d: %w", r, err)
		}
		if err := st.stop(&row); err != nil {
			return row, err
		}
		if t1.Virt != row.Virt || t1.Drives != row.Drives {
			return row, fmt.Errorf("obs: instrumented remote diverged: virt %v want %v, drives %d want %d",
				t1.Virt, row.Virt, t1.Drives, row.Drives)
		}
		if r == 0 || t1.Wall < row.OnWall {
			row.OnWall = t1.Wall
		}
	}
	row.DigestsOK = true
	row.OverheadPct = overheadPct(row.OffWall, row.OnWall)
	return row, nil
}

// obsSessionsLeg holds the steady multi-tenant leg with metrics wired
// (the baseline) and then fully instrumented. Every tenant's drive
// digest is checked against its isolated single-session reference in
// both variants, so equality with observers attached is enforced per
// tenant.
func obsSessionsLeg(cfg ObsConfig) (ObsRow, error) {
	scfg := cfg.Sessions
	workers := 0
	if len(scfg.Workers) > 0 {
		workers = scfg.Workers[len(scfg.Workers)-1]
	}
	row := ObsRow{Leg: "sessions-steady", Workers: workers}

	refs, err := scfg.references()
	if err != nil {
		return row, err
	}

	for r := 0; r < cfg.Runs; r++ {
		// Off half of the pair: metrics wired, no flight stack.
		wall, steps, err := obsSteadyRun(scfg, service.Config{
			Workers: workers,
			Metrics: metrics.NewRegistry(),
		}, refs)
		if err != nil {
			return row, fmt.Errorf("obs: sessions off run %d: %w", r, err)
		}
		if r == 0 || wall < row.OffWall {
			row.OffWall = wall
		}
		row.Steps = steps

		// On half: same catalog workload with the full flight stack.
		reg := metrics.NewRegistry()
		st, err := newObsStack(reg, cfg.WatchInterval)
		if err != nil {
			return row, err
		}
		wall, steps, err = obsSteadyRun(scfg, service.Config{
			Workers:         workers,
			Metrics:         reg,
			Flight:          st.obs,
			AttributionTopN: cfg.TopN,
		}, refs)
		if err != nil {
			st.sampler.Stop()
			st.watch.close()
			return row, fmt.Errorf("obs: sessions on run %d: %w", r, err)
		}
		if err := st.stop(&row); err != nil {
			return row, err
		}
		if steps != row.Steps {
			return row, fmt.Errorf("obs: instrumented sessions step count diverged: %d want %d", steps, row.Steps)
		}
		if r == 0 || wall < row.OnWall {
			row.OnWall = wall
		}
	}
	row.DigestsOK = true
	row.OverheadPct = overheadPct(row.OffWall, row.OnWall)
	return row, nil
}

// obsSteadyRun is the steady fair-share serving pattern of the
// sessions benchmark under an arbitrary catalog config: hold every
// tenant live, advance all of them in interleaved StepChunk quanta
// until done, and digest-check each against its isolated reference.
func obsSteadyRun(cfg SessionsConfig, svc service.Config, refs []uint64) (time.Duration, int64, error) {
	cat := service.NewCatalog(svc)
	defer cat.Close()

	start := time.Now()
	ids := make([]string, cfg.Sessions)
	for i := range ids {
		info, err := cat.Create(cfg.spec(i))
		if err != nil {
			return 0, 0, fmt.Errorf("create %d: %w", i, err)
		}
		ids[i] = info.ID
	}
	done := make(map[string]service.Info, len(ids))
	maxRounds := int(vtime.Duration(cfg.Rounds+3)*10*vtime.Millisecond/cfg.StepChunk) + 4
	for round := 0; len(done) < len(ids); round++ {
		if round > maxRounds {
			return 0, 0, fmt.Errorf("stuck after %d rounds (%d/%d done)", round, len(done), len(ids))
		}
		for _, id := range ids {
			if _, ok := done[id]; ok {
				continue
			}
			info, err := cat.Step(id, 0, cfg.StepChunk)
			if err != nil {
				return 0, 0, fmt.Errorf("step %s: %w", id, err)
			}
			if info.State == service.StateDone {
				done[id] = info
			}
		}
	}
	wall := time.Since(start)
	var steps int64
	for i, id := range ids {
		info := done[id]
		steps += info.Steps
		if info.DigestU64 != refs[i%cfg.Seeds] {
			return 0, 0, fmt.Errorf("tenant %s digest %016x, want %016x", id, info.DigestU64, refs[i%cfg.Seeds])
		}
	}
	return wall, steps, nil
}
