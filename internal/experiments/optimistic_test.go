package experiments

import (
	"testing"
	"time"

	"repro/internal/vtime"
)

// quickOptConfig shrinks the ablation so the full sweep runs in well
// under a second while still exercising every leg shape.
func quickOptConfig() OptimisticConfig {
	c := DefaultOptimisticConfig()
	c.Workers = []int{4}
	c.Rounds = 3
	c.Service = 200 * time.Microsecond
	return c
}

// TestOptimisticAblation runs the full sweep and checks the structural
// expectations behind the headline numbers: every row agrees with the
// sequential reference (Optimistic errors otherwise), the high
// lookahead leg never speculates (the conservative horizon already
// clears every service), and the zero-lookahead leg speculates with a
// healthy commit rate.
func TestOptimisticAblation(t *testing.T) {
	rows, err := Optimistic(quickOptConfig())
	if err != nil {
		t.Fatal(err)
	}
	byLeg := map[string]map[string]OptimisticRow{}
	for _, r := range rows {
		if byLeg[r.Lookahead] == nil {
			byLeg[r.Lookahead] = map[string]OptimisticRow{}
		}
		byLeg[r.Lookahead][r.Mode] = r
	}
	for _, leg := range []string{"high", "low", "zero"} {
		if len(byLeg[leg]) != 3 {
			t.Fatalf("leg %s: got modes %v, want sequential+conservative+optimistic", leg, byLeg[leg])
		}
	}
	if hi := byLeg["high"]["optimistic"]; hi.SpecRounds != 0 {
		t.Errorf("high-lookahead leg speculated %d rounds; conservative horizon should clear every service", hi.SpecRounds)
	}
	if hc := byLeg["high"]["conservative"]; hc.ParRounds == 0 {
		t.Error("high-lookahead conservative leg ran no parallel rounds")
	}
	zo := byLeg["zero"]["optimistic"]
	if zo.SpecRounds == 0 {
		t.Error("zero-lookahead optimistic leg never speculated")
	}
	if zo.SpecCommits == 0 {
		t.Error("zero-lookahead optimistic leg committed no speculations")
	}
	if zo.CommitRatio < 0.9 {
		t.Errorf("zero-lookahead commit ratio %.2f, want >= 0.9 (independent lanes should almost always commit)", zo.CommitRatio)
	}
	if zc := byLeg["zero"]["conservative"]; zc.ParRounds != 0 {
		t.Errorf("zero-lookahead conservative leg ran %d parallel rounds; zero lookahead should serialize it", zc.ParRounds)
	}
	if lo := byLeg["low"]["optimistic"]; lo.SpecRounds == 0 {
		t.Error("low-lookahead optimistic leg never speculated")
	}
}

// TestOptimisticWindowKnob double-checks the sweep honors the window:
// a zero window is conservative by definition.
func TestOptimisticWindowKnob(t *testing.T) {
	c := quickOptConfig()
	row, err := runOptLeg(c, OptLookahead{Name: "zero", Delay: 0}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if row.SpecRounds != 0 || row.Rollbacks != 0 {
		t.Fatalf("conservative leg reported speculation: %+v", row)
	}
	opt, err := runOptLeg(c, OptLookahead{Name: "zero", Delay: 0}, 4, c.Window)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Virt != vtime.Duration(row.Virt) || opt.Drives != row.Drives || opt.Digest != row.Digest {
		t.Fatalf("optimistic leg diverged: %+v vs %+v", opt, row)
	}
}
