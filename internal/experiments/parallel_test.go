package experiments

import (
	"testing"
	"time"
)

// TestParallelSweepInvariant runs a scaled-down sweep and relies on
// Parallel's built-in divergence check: any difference in virtual
// time, drive count or drive digest between a parallel leg and the
// sequential reference returns an error.
func TestParallelSweepInvariant(t *testing.T) {
	cfg := ParallelConfig{
		Workers:   []int{0, 2, 4},
		Fanout:    8,
		Rounds:    6,
		WorkIters: 200,
		Service:   200 * time.Microsecond,
		SkipTable: true,
	}
	rows, _, err := Parallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	var parRounds int64
	for _, r := range rows[1:] {
		parRounds += r.ParRounds
	}
	if parRounds == 0 {
		t.Fatal("parallel legs never dispatched a round")
	}
}
