package experiments

import (
	"bytes"
	"testing"

	"repro/internal/timeline"
)

// TestTimelineChaosDeterminism mirrors TestChaosDeterminism for the
// timeline layer: the faulted, resilient two-node run produces a
// merged canonical export that is byte-identical across reruns with
// the same seed, contains cross-node flow arrows, and contains the
// scripted checkpoint-restore rewind marker.
func TestTimelineChaosDeterminism(t *testing.T) {
	cfg := ChaosConfig{Table1Config: smallTable1(), Seed: 7}
	first, err := ChaosTimeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := ChaosTimeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Evicted != 0 || second.Evicted != 0 {
		t.Fatalf("ring evicted events (%d, %d); determinism is only promised without eviction",
			first.Evicted, second.Evicted)
	}
	if first.Canonical == 0 {
		t.Fatal("merged canonical timeline is empty")
	}
	if first.Flows == 0 {
		t.Fatal("no committed cross-node sends: merged timeline would have no flow arrows")
	}
	if first.Delivers != first.Flows {
		t.Fatalf("%d sends but %d deliveries in the merge: some flow arrows are incomplete",
			first.Flows, first.Delivers)
	}
	if first.Rewinds == 0 {
		t.Fatal("scripted rewind left no rewind marker in the canonical view")
	}
	if !bytes.Equal(first.Trace, second.Trace) {
		t.Fatalf("merged canonical export diverged across same-seed runs (%d vs %d bytes)",
			len(first.Trace), len(second.Trace))
	}
	// The Perfetto file must actually carry the flow arrows and the
	// rewind span so the viewer shows them — every flow start (ph s)
	// paired with a flow finish (ph f).
	starts := bytes.Count(first.Trace, []byte(`"ph":"s"`))
	finishes := bytes.Count(first.Trace, []byte(`"ph":"f"`))
	if starts != first.Flows || finishes != first.Flows {
		t.Fatalf("export has %d flow starts and %d finishes, want %d of each",
			starts, finishes, first.Flows)
	}
	if !bytes.Contains(first.Trace, []byte(`"name":"rewind"`)) {
		t.Fatal("merged export lacks the rewind span")
	}
}

// TestTimelineChaosRewindDropsSpans asserts the rewind semantics at
// the export level: after the scripted restore, no committed handheld
// event sits past the restore point — the rolled-back spans are gone,
// replaced by the single rewind marker spanning the discarded window.
func TestTimelineChaosRewindDropsSpans(t *testing.T) {
	res, err := ChaosTimeline(ChaosConfig{Table1Config: smallTable1(), Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var rewind *timeline.Event
	for i := range res.Events {
		if res.Events[i].Kind == timeline.KindRewind && res.Events[i].Sub == "handheld" {
			rewind = &res.Events[i]
			break
		}
	}
	if rewind == nil {
		t.Fatal("no handheld rewind marker in the canonical view")
	}
	if rewind.VT2 <= rewind.VT {
		t.Fatalf("rewind window [%v, %v] is empty", rewind.VT, rewind.VT2)
	}
	cutoff := rewind.VT
	dropped := false
	for _, e := range res.Events {
		if e.Sub != "handheld" {
			continue
		}
		if e.VT > cutoff {
			t.Fatalf("rolled-back span survived the rewind: %s %q @%v (cutoff %v)",
				e.Kind, e.Net+e.Detail, e.VT, cutoff)
		}
		if e.Kind == timeline.KindDrive {
			dropped = true
		}
	}
	if !dropped {
		t.Fatal("no committed handheld drives at all; the scenario recorded nothing to roll back against")
	}
}
