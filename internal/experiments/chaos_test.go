package experiments

import "testing"

// TestChaosDeterminism runs the chaos experiment at a small page
// size: the faulty leg must reproduce the clean leg's virtual time
// and drive count exactly (Chaos itself asserts that), faults must
// actually have fired, and the session layer must have recovered at
// least one connection epoch.
func TestChaosDeterminism(t *testing.T) {
	cfg := ChaosConfig{Table1Config: smallTable1(), Seed: 7}
	clean, faulty, err := Chaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Virt == 0 || clean.Drives == 0 {
		t.Fatalf("clean leg empty: %+v", clean)
	}
	if faulty.Virt != clean.Virt || faulty.Drives != clean.Drives {
		t.Fatalf("legs diverged: clean %+v faulty %+v", clean, faulty)
	}
	if faulty.Injected() == 0 {
		t.Fatalf("no faults fired: %+v", faulty.Faults)
	}
	if faulty.Resil.EpochDeaths == 0 || faulty.Resil.Resumes == 0 {
		t.Fatalf("session layer never recovered: %+v", faulty.Resil)
	}
}

// TestChaosSeedReproducible re-runs the faulty leg with the same seed
// and checks the per-link fault totals are bit-identical — the
// schedule is a pure function of (seed, link name, frame index).
func TestChaosSeedReproducible(t *testing.T) {
	cfg := ChaosConfig{Table1Config: smallTable1(), Seed: 11}
	_, a, err := Chaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := Chaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Frame counts can differ (heartbeats and retransmissions are
	// wall-clock driven), but faults drawn per frame index cannot:
	// identical seeds must produce identical schedules over the
	// frames both runs pushed. Compare the deterministic invariant
	// instead: both runs produced the same simulation result.
	if a.Virt != b.Virt || a.Drives != b.Drives {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
	if a.Injected() == 0 || b.Injected() == 0 {
		t.Fatalf("faults did not fire: %d / %d", a.Injected(), b.Injected())
	}
}
