package experiments

import (
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/vtime"
)

// ParallelConfig scales the safe-horizon worker-pool experiment.
type ParallelConfig struct {
	// Workers lists the pool sizes to sweep; 0 is the sequential
	// scheduler and is always measured first as the reference.
	Workers []int
	// Fanout is how many service components each job reaches.
	Fanout int
	// Rounds is how many jobs the source emits.
	Rounds int
	// WorkIters sizes the deterministic compute each service does
	// per job.
	WorkIters int
	// Service is the wall-clock latency each service models per job
	// (a remote-hardware probe, a co-simulator call). This is what a
	// parallel round overlaps: goroutines sleeping in a round do not
	// occupy the scheduler, so even a single-CPU host sees the
	// speedup.
	Service time.Duration
	// PageKB sizes the Table 1 cross-check legs.
	PageKB int
	// SkipTable skips the WubbleU Table 1 legs (used by unit tests).
	SkipTable bool
}

// DefaultParallelConfig is what `piabench -exp parallel` runs.
func DefaultParallelConfig() ParallelConfig {
	return ParallelConfig{
		Workers:   []int{0, 2, 4, 8},
		Fanout:    32,
		Rounds:    24,
		WorkIters: 2000,
		Service:   time.Millisecond,
		PageKB:    66,
	}
}

// ParallelRow is one leg of the sweep. Wall is the measured quantity;
// Virt, Drives and Digest are the invariants — every row must agree
// with the sequential reference bit-for-bit.
type ParallelRow struct {
	Mode      string
	Workers   int
	Wall      time.Duration
	Virt      vtime.Duration
	Drives    int64
	ParRounds int64
	Digest    uint64
	Speedup   float64
}

// spin is the deterministic per-job compute: an xorshift64 walk.
func spin(seed uint64, iters int) uint64 {
	x := seed | 1
	for i := 0; i < iters; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

// fanSource emits one job every 10ms of virtual time.
type fanSource struct{ rounds int }

func (f *fanSource) Run(p *core.Proc) error {
	for i := 0; i < f.rounds; i++ {
		p.Send("out", i)
		p.Delay(10 * vtime.Millisecond)
	}
	return nil
}

// fanService models one remote-hardware service: receive a job, do
// deterministic compute, hold the wall clock for the service latency,
// advance virtual time, and report a result.
type fanService struct {
	id      int
	iters   int
	service time.Duration
}

func (w *fanService) Run(p *core.Proc) error {
	for {
		m, ok := p.Recv("in")
		if !ok {
			return nil
		}
		h := spin(uint64(m.Value.(int))*2654435761+uint64(w.id), w.iters)
		if w.service > 0 {
			time.Sleep(w.service)
		}
		p.Advance(vtime.Millisecond)
		p.Send("out", int(h>>33))
	}
}

// fanSink absorbs results from every lane.
type fanSink struct{ got int }

func (k *fanSink) Run(p *core.Proc) error {
	for {
		if _, ok := p.Recv(); !ok {
			return nil
		}
		k.got++
	}
}

// runFan measures one leg: Fanout services behind a shared jobs net,
// each with a private result lane to the sink, scheduled with the
// given worker-pool size.
func runFan(c ParallelConfig, workers int) (ParallelRow, error) {
	s := core.NewSubsystem("fan")
	s.SetWorkers(workers)

	digest := fnv.New64a()
	s.OnDrive = func(net, src string, t vtime.Time, v any) {
		fmt.Fprintf(digest, "%s|%s|%d|%v\n", net, src, t, v)
	}

	jobs, err := s.NewNet("jobs", vtime.Millisecond)
	if err != nil {
		return ParallelRow{}, err
	}
	src, err := s.NewComponent("source", &fanSource{rounds: c.Rounds})
	if err != nil {
		return ParallelRow{}, err
	}
	src.AddPort("out")
	if err := s.Connect(jobs, src.Port("out")); err != nil {
		return ParallelRow{}, err
	}

	sink := &fanSink{}
	sc, err := s.NewComponent("sink", sink)
	if err != nil {
		return ParallelRow{}, err
	}
	for i := 0; i < c.Fanout; i++ {
		lane, err := s.NewNet(fmt.Sprintf("lane%d", i), vtime.Millisecond)
		if err != nil {
			return ParallelRow{}, err
		}
		w, err := s.NewComponent(fmt.Sprintf("svc%d", i), &fanService{
			id: i, iters: c.WorkIters, service: c.Service,
		})
		if err != nil {
			return ParallelRow{}, err
		}
		w.AddPort("in")
		w.AddPort("out")
		if err := s.Connect(jobs, w.Port("in")); err != nil {
			return ParallelRow{}, err
		}
		sp, err := sc.AddPort(fmt.Sprintf("lane%d", i))
		if err != nil {
			return ParallelRow{}, err
		}
		if err := s.Connect(lane, w.Port("out"), sp); err != nil {
			return ParallelRow{}, err
		}
	}

	start := time.Now()
	if err := s.Run(vtime.Infinity); err != nil {
		return ParallelRow{}, err
	}
	wall := time.Since(start)
	if want := c.Fanout * c.Rounds; sink.got != want {
		return ParallelRow{}, fmt.Errorf("experiments: parallel leg workers=%d delivered %d results, want %d",
			workers, sink.got, want)
	}
	st := s.Stats()
	mode := "sequential"
	if workers > 0 {
		mode = fmt.Sprintf("%d workers", workers)
	}
	return ParallelRow{
		Mode:      mode,
		Workers:   workers,
		Wall:      wall,
		Virt:      vtime.Duration(s.Now()),
		Drives:    st.Drives,
		ParRounds: st.ParRounds,
		Digest:    digest.Sum64(),
	}, nil
}

// Parallel sweeps the worker-pool sizes over the fan-out workload and
// errors if any leg's virtual time, drive count or drive digest
// deviates from the sequential reference. Unless SkipTable is set it
// also runs the Table 1 local word-level leg sequentially and with 4
// workers and checks the same invariant on the paper's workload.
func Parallel(c ParallelConfig) ([]ParallelRow, []Table1Row, error) {
	if len(c.Workers) == 0 || c.Workers[0] != 0 {
		c.Workers = append([]int{0}, c.Workers...)
	}
	rows := make([]ParallelRow, 0, len(c.Workers))
	for _, w := range c.Workers {
		row, err := runFan(c, w)
		if err != nil {
			return nil, nil, err
		}
		ref := &rows
		if len(*ref) > 0 {
			r0 := (*ref)[0]
			if row.Virt != r0.Virt || row.Drives != r0.Drives || row.Digest != r0.Digest {
				return nil, nil, fmt.Errorf(
					"experiments: parallel leg %q diverged from sequential: virt %v/%v drives %d/%d digest %x/%x",
					row.Mode, row.Virt, r0.Virt, row.Drives, r0.Drives, row.Digest, r0.Digest)
			}
			if r0.Wall > 0 {
				row.Speedup = float64(r0.Wall) / float64(row.Wall)
			}
		} else {
			row.Speedup = 1
		}
		rows = append(rows, row)
	}

	var table []Table1Row
	if !c.SkipTable {
		cfg := Table1Config{PageSize: c.PageKB * 1024, Images: 4}
		seq, err := Local(cfg, proto.LevelWord)
		if err != nil {
			return nil, nil, err
		}
		seq.Location = "local (sequential)"
		cfg.Workers = 4
		par, err := Local(cfg, proto.LevelWord)
		if err != nil {
			return nil, nil, err
		}
		par.Location = "local (4 workers)"
		if par.Virt != seq.Virt || par.Drives != seq.Drives {
			return nil, nil, fmt.Errorf(
				"experiments: Table 1 local leg diverged with workers: virt %v/%v drives %d/%d",
				par.Virt, seq.Virt, par.Drives, seq.Drives)
		}
		table = []Table1Row{seq, par}
	}
	return rows, table, nil
}
