package experiments

import (
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/core"
	"repro/internal/vtime"
)

// OptimisticConfig scales the Time Warp ablation: a lookahead sweep
// (high/low/zero) crossed with scheduling mode (conservative vs
// optimistic) and worker-pool size over a fan-out probe workload.
type OptimisticConfig struct {
	// Workers lists the pool sizes each mode runs with; the
	// sequential scheduler (0 workers) is always measured first per
	// leg as the correctness reference.
	Workers []int
	// Window is the optimism window W handed to SetOptimism on the
	// optimistic legs: how far past the safe horizon the scheduler
	// may speculate.
	Window vtime.Duration
	// Fanout is the number of independent probe services.
	Fanout int
	// Rounds is how many job batches the source emits.
	Rounds int
	// WorkIters sizes the deterministic compute per job.
	WorkIters int
	// Service is the wall-clock latency each service models per job.
	// Overlapping these sleeps is the entire speedup; a round that
	// serializes them pays Fanout * Service of wall clock.
	Service time.Duration
	// Advance is the virtual time a service charges per job.
	Advance vtime.Duration
	// Lookaheads lists the probe-bus delays to sweep. Each service
	// owns a port on a shared (and silent) probe bus with this
	// propagation delay, so the bus delay IS the component's output
	// lookahead: large values let the conservative horizon clear
	// every service, small ones collapse it to (almost) nothing.
	Lookaheads []OptLookahead
}

// OptLookahead is one leg of the lookahead sweep.
type OptLookahead struct {
	Name  string
	Delay vtime.Duration
}

// DefaultOptimisticConfig is what `piabench -exp optimistic` runs.
func DefaultOptimisticConfig() OptimisticConfig {
	return OptimisticConfig{
		Workers:   []int{2, 8},
		Window:    8 * vtime.Microsecond,
		Fanout:    8,
		Rounds:    6,
		WorkIters: 2000,
		Service:   2 * time.Millisecond,
		Advance:   4 * vtime.Microsecond,
		Lookaheads: []OptLookahead{
			{Name: "high", Delay: vtime.Microsecond},
			{Name: "low", Delay: 2},
			{Name: "zero", Delay: 0},
		},
	}
}

// OptimisticRow is one measured leg. Virt, Drives and Digest are the
// invariants — every row must agree with its leg's sequential
// reference bit-for-bit; the wall clock and the speculation counters
// are the measured quantities.
type OptimisticRow struct {
	Lookahead   string
	Mode        string // sequential | conservative | optimistic
	Workers     int
	Wall        time.Duration
	Virt        vtime.Duration
	Drives      int64
	ParRounds   int64
	SpecRounds  int64
	SpecCommits int64
	Rollbacks   int64
	RolledBack  int64
	CommitRatio float64 // committed / dispatched speculations
	Digest      uint64
	Speedup     float64 // sequential wall / this wall
	VsCons      float64 // conservative wall at same leg+workers / this wall
}

// optSource emits one batch of jobs per period, one job per lane,
// staggering the lanes by a nanosecond of virtual time so the lanes'
// keys are strictly ordered (which is what lets a small nonzero
// lookahead admit a strict subset of the services per round).
type optSource struct {
	lanes  int
	rounds int
	period vtime.Duration
}

func (o *optSource) Run(p *core.Proc) error {
	for k := 0; k < o.rounds; k++ {
		start := p.Time()
		for i := 0; i < o.lanes; i++ {
			p.Send(fmt.Sprintf("lane%d", i), k)
			p.Advance(1)
		}
		p.DelayUntil(start.Add(o.period))
	}
	return nil
}

// optService models one remote probe: receive a job, spin
// deterministically, hold the wall clock for the service latency,
// advance virtual time, report the result. The loop carries no
// iteration state of its own — everything derives from consumed
// messages — so the checkpoint image is empty and a rollback replay
// is trivially identical.
type optService struct {
	id      int
	iters   int
	service time.Duration
	advance vtime.Duration
}

func (w *optService) Run(p *core.Proc) error {
	for {
		m, ok := p.Recv("in")
		if !ok {
			return nil
		}
		h := spin(uint64(m.Value.(int))*2654435761+uint64(w.id), w.iters)
		if w.service > 0 {
			time.Sleep(w.service)
		}
		p.Advance(w.advance)
		p.Send("out", int(h>>33))
	}
}

func (w *optService) SaveState() ([]byte, error) { return nil, nil }
func (w *optService) RestoreState([]byte) error  { return nil }

// optSink absorbs results from every lane. Deliberately not a
// StateSaver: the sink is never speculated, it just accumulates.
type optSink struct{ got int }

func (k *optSink) Run(p *core.Proc) error {
	for {
		if _, ok := p.Recv(); !ok {
			return nil
		}
		k.got++
	}
}

// runOptLeg measures one leg: Fanout probe services, each fed by a
// private high-delay jobs net and reporting on a private high-delay
// result net, all sharing a silent probe bus whose delay is the
// lookahead under test. optimism == 0 selects conservative mode.
func runOptLeg(c OptimisticConfig, la OptLookahead, workers int, optimism vtime.Duration) (OptimisticRow, error) {
	const feed = vtime.Millisecond // jobs/result net delay; >= every lookahead
	s := core.NewSubsystem("probe")
	s.SetWorkers(workers)
	if optimism > 0 {
		s.SetOptimism(optimism)
	}

	digest := fnv.New64a()
	s.OnDrive = func(net, src string, t vtime.Time, v any) {
		fmt.Fprintf(digest, "%s|%s|%d|%v\n", net, src, t, v)
	}

	src, err := s.NewComponent("source", &optSource{
		lanes: c.Fanout, rounds: c.Rounds, period: 10 * vtime.Millisecond,
	})
	if err != nil {
		return OptimisticRow{}, err
	}
	probe, err := s.NewNet("probe", la.Delay)
	if err != nil {
		return OptimisticRow{}, err
	}
	sink := &optSink{}
	sc, err := s.NewComponent("sink", sink)
	if err != nil {
		return OptimisticRow{}, err
	}
	for i := 0; i < c.Fanout; i++ {
		jobs, err := s.NewNet(fmt.Sprintf("jobs%d", i), feed)
		if err != nil {
			return OptimisticRow{}, err
		}
		result, err := s.NewNet(fmt.Sprintf("result%d", i), feed)
		if err != nil {
			return OptimisticRow{}, err
		}
		w, err := s.NewComponent(fmt.Sprintf("svc%d", i), &optService{
			id: i, iters: c.WorkIters, service: c.Service, advance: c.Advance,
		})
		if err != nil {
			return OptimisticRow{}, err
		}
		w.AddPort("in")
		w.AddPort("out")
		w.AddPort("probe")
		lane, err := src.AddPort(fmt.Sprintf("lane%d", i))
		if err != nil {
			return OptimisticRow{}, err
		}
		sp, err := sc.AddPort(fmt.Sprintf("lane%d", i))
		if err != nil {
			return OptimisticRow{}, err
		}
		if err := s.Connect(jobs, lane, w.Port("in")); err != nil {
			return OptimisticRow{}, err
		}
		if err := s.Connect(result, w.Port("out"), sp); err != nil {
			return OptimisticRow{}, err
		}
		if err := s.Connect(probe, w.Port("probe")); err != nil {
			return OptimisticRow{}, err
		}
	}

	start := time.Now()
	if err := s.Run(vtime.Infinity); err != nil {
		return OptimisticRow{}, err
	}
	wall := time.Since(start)
	if want := c.Fanout * c.Rounds; sink.got != want {
		return OptimisticRow{}, fmt.Errorf("experiments: optimistic leg %s/%d delivered %d results, want %d",
			la.Name, workers, sink.got, want)
	}
	st := s.Stats()
	mode := "sequential"
	switch {
	case workers > 0 && optimism > 0:
		mode = "optimistic"
	case workers > 0:
		mode = "conservative"
	}
	row := OptimisticRow{
		Lookahead:   la.Name,
		Mode:        mode,
		Workers:     workers,
		Wall:        wall,
		Virt:        vtime.Duration(s.Now()),
		Drives:      st.Drives,
		ParRounds:   st.ParRounds,
		SpecRounds:  st.SpecRounds,
		SpecCommits: st.SpecCommits,
		Rollbacks:   st.Rollbacks,
		RolledBack:  st.RolledBack,
		Digest:      digest.Sum64(),
	}
	if st.SpecMembers > 0 {
		row.CommitRatio = float64(st.SpecCommits) / float64(st.SpecMembers)
	}
	return row, nil
}

// Optimistic sweeps lookahead x mode x workers and errors if any leg
// diverges from its lookahead's sequential reference in virtual time,
// drive count or drive digest. The interesting comparison is within a
// leg: at high lookahead the conservative horizon already clears every
// service, speculation never triggers, and the optimistic rows track
// the conservative ones; at low/zero lookahead the conservative rounds
// degenerate toward sequential service calls while the optimistic
// scheduler overlaps them and wins on wall clock.
func Optimistic(c OptimisticConfig) ([]OptimisticRow, error) {
	var rows []OptimisticRow
	for _, la := range c.Lookaheads {
		ref, err := runOptLeg(c, la, 0, 0)
		if err != nil {
			return nil, err
		}
		ref.Speedup = 1
		rows = append(rows, ref)
		for _, w := range c.Workers {
			cons, err := runOptLeg(c, la, w, 0)
			if err != nil {
				return nil, err
			}
			opt, err := runOptLeg(c, la, w, c.Window)
			if err != nil {
				return nil, err
			}
			for _, r := range []*OptimisticRow{&cons, &opt} {
				if r.Virt != ref.Virt || r.Drives != ref.Drives || r.Digest != ref.Digest {
					return nil, fmt.Errorf(
						"experiments: %s/%s workers=%d diverged from sequential: virt %v/%v drives %d/%d digest %x/%x",
						la.Name, r.Mode, w, r.Virt, ref.Virt, r.Drives, ref.Drives, r.Digest, ref.Digest)
				}
				if ref.Wall > 0 {
					r.Speedup = float64(ref.Wall) / float64(r.Wall)
				}
			}
			cons.VsCons = 1
			if opt.Wall > 0 {
				opt.VsCons = float64(cons.Wall) / float64(opt.Wall)
			}
			rows = append(rows, cons, opt)
		}
	}
	return rows, nil
}
