package experiments

import (
	"testing"

	"repro/internal/vtime"
)

func smallTable1() Table1Config { return Table1Config{PageSize: 8 * 1024, Images: 2} }

func TestNative(t *testing.T) {
	row, err := Native(smallTable1())
	if err != nil {
		t.Fatal(err)
	}
	if row.Wall <= 0 || row.Location != "N/A" {
		t.Fatalf("native row %+v", row)
	}
}

func TestLocalLevels(t *testing.T) {
	word, err := Local(smallTable1(), "wordLevel")
	if err != nil {
		t.Fatal(err)
	}
	packet, err := Local(smallTable1(), "packetLevel")
	if err != nil {
		t.Fatal(err)
	}
	if word.Drives <= packet.Drives {
		t.Fatalf("word drives %d <= packet drives %d", word.Drives, packet.Drives)
	}
	if word.Virt <= packet.Virt {
		t.Fatalf("word virtual time %v <= packet %v", word.Virt, packet.Virt)
	}
}

func TestRemoteLevel(t *testing.T) {
	row, err := Remote(smallTable1(), "packetLevel")
	if err != nil {
		t.Fatal(err)
	}
	if row.Location != "remote" || row.Drives == 0 {
		t.Fatalf("remote row %+v", row)
	}
}

func TestTable1ShapeSmall(t *testing.T) {
	// 16 KB keeps the word-level rows well clear of wall-clock
	// jitter while staying fast.
	rows, err := Table1(Table1Config{PageSize: 16 * 1024, Images: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Location+"/"+r.Level] = r
	}
	native := byName["N/A/HotJava"]
	lw := byName["local/word passage"]
	lp := byName["local/packet passage"]
	rw := byName["remote/word passage"]
	rp := byName["remote/packet passage"]
	// The paper's qualitative shape, using the rows whose gaps are
	// orders of magnitude (native vs local-packet is too close to
	// wall-clock jitter at this page size to assert reliably).
	if !(native.Wall < lw.Wall && native.Wall < rw.Wall) {
		t.Fatalf("baseline not fastest: %v vs %v/%v", native.Wall, lw.Wall, rw.Wall)
	}
	if !(lw.Wall > lp.Wall) {
		t.Fatalf("local word %v not slower than local packet %v", lw.Wall, lp.Wall)
	}
	if !(rw.Wall > rp.Wall) {
		t.Fatalf("remote word %v not slower than remote packet %v", rw.Wall, rp.Wall)
	}
	if !(rw.Wall > lw.Wall) {
		t.Fatalf("remote word %v not slower than local word %v", rw.Wall, lw.Wall)
	}
	// Word passage must cost more virtual time and far more drives.
	if !(lw.Virt > lp.Virt && lw.Drives > 10*lp.Drives) {
		t.Fatalf("word/packet virtual shape broken: %+v vs %+v", lw, lp)
	}
}

func TestFig3(t *testing.T) {
	rows, err := Fig3(10, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	cons, opt := rows[0], rows[1]
	if cons.Policy != "conservative" || opt.Policy != "optimistic" {
		t.Fatalf("policies: %v / %v", cons.Policy, opt.Policy)
	}
	if cons.Restores != 0 {
		t.Fatal("conservative run restored")
	}
	if opt.Stragglers == 0 || opt.Restores == 0 {
		t.Fatalf("optimistic run saw no stragglers/restores: %+v", opt)
	}
}

func TestFig4(t *testing.T) {
	res, err := Fig4(5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 10 {
		t.Fatalf("delivered %d, want 10", res.Delivered)
	}
	if res.AsksToSS2 == 0 || res.AsksToSS3 == 0 {
		t.Fatalf("SS1 did not ask both peers: %+v", res)
	}
	if res.GrantsFromSS2 == 0 || res.GrantsFromSS3 == 0 {
		t.Fatalf("SS1 did not receive grants from both peers: %+v", res)
	}
	if res.Violations {
		t.Fatal("causality violation in Fig 4 scenario")
	}
}

func TestFig2(t *testing.T) {
	splits, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	byNet := map[string]Fig2Split{}
	for _, s := range splits {
		byNet[s.Net] = s
	}
	if !byNet["dma"].Crossing {
		t.Fatalf("dma net not crossing: %+v", byNet["dma"])
	}
	if byNet["radio"].Crossing || byNet["ink"].Crossing {
		t.Fatal("non-crossing nets reported as split")
	}
	if len(byNet["dma"].Fragments) != 2 {
		t.Fatalf("dma fragments: %v", byNet["dma"].Fragments)
	}
}

func TestFig1(t *testing.T) {
	res, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if res.Loads != 1 {
		t.Fatalf("loads = %d", res.Loads)
	}
	if res.HWInterrupts == 0 {
		t.Fatal("remote hardware raised no interrupts")
	}
}

func TestRunlevelSwitch(t *testing.T) {
	rows, err := RunlevelSwitch(8 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]SwitchpointResult{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	w, p, s := byMode["word"], byMode["packet"], byMode["switchpoint"]
	// The switched run does one word-level and one packet-level load.
	if !(s.Drives < w.Drives && s.Drives > p.Drives) {
		t.Fatalf("switchpoint drives %d not between packet %d and word %d", s.Drives, p.Drives, w.Drives)
	}
}

func TestPolicySweep(t *testing.T) {
	rows, err := PolicySweep(5, 1000, []vtime.Duration{50, 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
}

func TestCheckpointInterval(t *testing.T) {
	rows, err := CheckpointInterval(400, []vtime.Duration{10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// More frequent checkpoints => more checkpoints, less replay.
	if rows[0].Checkpoints <= rows[1].Checkpoints {
		t.Fatalf("checkpoint counts not ordered: %+v", rows)
	}
	if rows[0].ReplaySteps > rows[1].ReplaySteps {
		t.Fatalf("replay steps not ordered: %+v", rows)
	}
}

func TestIncrementalCheckpoint(t *testing.T) {
	rows, err := IncrementalCheckpoint(64, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	full, incr := rows[0], rows[1]
	if incr.TotalBytes >= full.TotalBytes {
		t.Fatalf("incremental (%d B) not smaller than full (%d B)", incr.TotalBytes, full.TotalBytes)
	}
}

func TestSnapshotScale(t *testing.T) {
	rows, err := SnapshotScale([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Subsystems != 2 || rows[1].Subsystems != 4 {
		t.Fatalf("rows %+v", rows)
	}
}

func TestMemsync(t *testing.T) {
	rows, err := Memsync(50, 3)
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]MemsyncRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	if byMode["static"].Violations != 0 || byMode["static"].Restores != 0 {
		t.Fatalf("static mode rolled back: %+v", byMode["static"])
	}
	if byMode["optimistic"].Violations == 0 || byMode["optimistic"].SyncMarked == 0 {
		t.Fatalf("optimistic mode detected nothing: %+v", byMode["optimistic"])
	}
}
