// The live-migration experiment: the mesh demo workload on three
// members, run stationary, with a mid-run migration of the hot
// component, and with the same migration while faultnet mangles the
// data plane. The paper-level claim is zero virtual downtime and
// bit-identical drive digests across all three legs; the measured
// quantities are the wall-clock migration cost and the placement
// epoch propagation latency.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/faultnet"
	"repro/internal/mesh"
	"repro/internal/node"
	"repro/internal/resilience"
	"repro/internal/vtime"
)

// MigrateConfig shapes the migration experiment.
type MigrateConfig struct {
	// Seed drives the chaos leg's fault schedules (per-member offsets
	// keep the three schedules distinct but reproducible).
	Seed int64
	// Values/Sinks/Period override the demo workload defaults when
	// non-zero.
	Values int
	Sinks  int
	Period vtime.Duration
	// At is the virtual time of the migration (rounded up to the next
	// held barrier). Zero means 60ms.
	At vtime.Time
	// Step is the lock-step round length. Zero means 25ms.
	Step vtime.Duration
}

func (c MigrateConfig) withDefaults() MigrateConfig {
	if c.At == 0 {
		c.At = vtime.Time(60 * vtime.Millisecond)
	}
	if c.Step == 0 {
		c.Step = 25 * vtime.Millisecond
	}
	return c
}

// MigrateRow is one leg of the migration experiment.
type MigrateRow struct {
	Mode     string
	Wall     time.Duration
	Rounds   int64
	Reissues int64
	// Migrations counts completed live migrations in the leg.
	Migrations int64
	Epoch      uint64
	// VirtualDowntime is how long, in virtual time, the migrated
	// component was unavailable: zero by construction, recorded to
	// assert it.
	VirtualDowntime vtime.Duration
	// MigrationWall is the wall-clock span of the migration, prepare
	// order to final dial ack.
	MigrationWall time.Duration
	// EpochPropagation is the wall clock from the placement-epoch
	// broadcast to its final ack across the mesh.
	EpochPropagation time.Duration
	// Digests is the union of per-component drive digests across the
	// mesh at the end of the leg.
	Digests map[string]uint64
	// DigestsMatch reports bit-identity with the stationary leg (true
	// on the reference itself).
	DigestsMatch bool
}

// migrateMembers is the fixed member set; "alpha" (the smallest name)
// leads, hot starts there, and the migration moves it to "bravo".
var migrateMembers = []string{"alpha", "bravo", "charlie"}

// Migrate runs the three legs and checks the equivalence invariant.
// A digest divergence is returned as an error: it means migration is
// observable in virtual time, which the design forbids.
func Migrate(cfg MigrateConfig) ([]MigrateRow, error) {
	cfg = cfg.withDefaults()
	p := mesh.DemoParams{
		Members: migrateMembers,
		Values:  cfg.Values,
		Sinks:   cfg.Sinks,
		Period:  cfg.Period,
	}

	ref, err := migrateLeg("stationary", p, cfg, nil, false)
	if err != nil {
		return nil, err
	}
	ref.DigestsMatch = true
	mig, err := migrateLeg("migrated", p, cfg, nil, true)
	if err != nil {
		return nil, err
	}
	chaos, err := migrateLeg("chaos+migrated", p, cfg, chaosNodes(cfg.Seed), true)
	if err != nil {
		return nil, err
	}

	rows := []MigrateRow{ref, mig, chaos}
	for i := 1; i < len(rows); i++ {
		rows[i].DigestsMatch = digestsEqual(ref.Digests, rows[i].Digests)
		if !rows[i].DigestsMatch {
			return rows, fmt.Errorf("migrate: %s leg diverged from the stationary reference: %v vs %v",
				rows[i].Mode, rows[i].Digests, ref.Digests)
		}
	}
	return rows, nil
}

// migrateLeg runs one full mesh run of the demo workload in-process
// and collects the leader's control-plane stats plus the merged
// digests.
func migrateLeg(mode string, p mesh.DemoParams, cfg MigrateConfig, tune func(i int, mc *mesh.Config), migrate bool) (MigrateRow, error) {
	row := MigrateRow{Mode: mode}
	bp, err := mesh.DemoBlueprint(p)
	if err != nil {
		return row, err
	}
	start := time.Now()
	lm, err := mesh.StartLocalMesh(bp, p.Members, tune)
	if err != nil {
		return row, err
	}
	defer lm.Close()
	if migrate {
		if err := lm.Leader().MigrateAt(cfg.At, "hot", p.Members[1]); err != nil {
			return row, err
		}
	}
	if err := lm.Run(p.Horizon(), cfg.Step); err != nil {
		return row, err
	}
	row.Wall = time.Since(start)
	st := lm.Leader().Stats()
	row.Rounds = st.Rounds
	row.Reissues = st.Reissues
	row.Migrations = st.Migrations
	row.Epoch = st.Epoch
	row.VirtualDowntime = st.MigrationVirtual
	row.MigrationWall = st.MigrationWall
	row.EpochPropagation = st.EpochPropagation
	row.Digests = lm.Digests()
	return row, nil
}

// chaosNodes shapes every member's data plane with seeded faults and
// recovers it with resilient sessions; the control plane stays on
// plain TCP, like a management network.
func chaosNodes(seed int64) func(i int, mc *mesh.Config) {
	return func(i int, mc *mesh.Config) {
		n := node.New(mc.Name)
		n.SetFaults(faultnet.Config{
			Seed:        seed + int64(i),
			Jitter:      200 * time.Microsecond,
			DropProb:    0.03,
			DupProb:     0.02,
			ReorderProb: 0.02,
		})
		n.SetResilience(resilience.Config{
			Heartbeat: 20 * time.Millisecond,
			RetryBase: 2 * time.Millisecond,
			RetryCap:  50 * time.Millisecond,
			RetryMax:  40,
		})
		mc.Node = n
	}
}

func digestsEqual(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// DigestComponents returns the sorted component names of a digest
// map, for stable reporting.
func DigestComponents(d map[string]uint64) []string {
	out := make([]string, 0, len(d))
	for c := range d {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
