package experiments

import (
	"fmt"
	"runtime"
	"time"

	pia "repro"
	"repro/internal/core"
	"repro/internal/snapshot"
	"repro/internal/vtime"
)

// PolicyRow is one point of the conservative-vs-optimistic sweep:
// the §2.2.2 trade-off ("if there isn't much communication expected
// between subsystems, it is often reasonable for a subsystem to
// continue as if there were no asynchronous messages").
type PolicyRow struct {
	Policy     string
	Period     vtime.Duration // message spacing: small = dense traffic
	Wall       time.Duration
	Stalls     int64
	Restores   int64
	Stragglers int64
}

// PolicySweep runs a fixed message count at several densities under
// both channel policies. The optimistic arm lets the consuming
// subsystem race ahead before the producer starts (the situation
// optimism gambles on), so its rollback costs are actually exercised:
// dense traffic means many stragglers and restores, sparse traffic
// few.
func PolicySweep(messages, busySteps int, periods []vtime.Duration) ([]PolicyRow, error) {
	var out []PolicyRow
	for _, period := range periods {
		for _, pol := range []pia.Policy{pia.Conservative, pia.Optimistic} {
			src := &burster{Count: messages, Period: period}
			dst := &sink{}
			busy := &burster{Count: busySteps, Period: 1}
			b := pia.NewSystem("sweep").
				AddComponent("src", "ss2", src, "out").
				AddComponent("dst", "ss1", dst, "in").
				AddComponent("busy", "ss1", busy, "out").
				AddNet("wire", 0, "src.out", "dst.in").
				AddNet("noise", 0, "busy.out").
				SetDefaultChannel(pol, pia.LinkModel{Latency: 5, PerMessage: 1})
			sim, err := b.BuildLocal()
			if err != nil {
				return nil, err
			}
			horizon := pia.Time(vtime.Duration(messages)*period + vtime.Duration(busySteps) + 100_000)
			start := time.Now()
			if pol == pia.Optimistic {
				ss1, ss2 := sim.Subsystem("ss1"), sim.Subsystem("ss2")
				ss1.SetAutoCheckpoint(vtime.Duration(period))
				ss1.SetCheckpointRetention(1_000_000)
				done1 := make(chan error, 1)
				go func() { done1 <- ss1.Run(pia.Infinity) }()
				for {
					now, key := ss1.PublishedTimes()
					if int(now) >= busySteps/2 || key == pia.Infinity {
						break
					}
					runtime.Gosched()
				}
				if err := ss2.Run(horizon); err != nil {
					return nil, err
				}
				if err := sim.Hubs["ss2"].Close(); err != nil {
					return nil, err
				}
				if err := <-done1; err != nil {
					return nil, err
				}
			} else if err := sim.Run(horizon); err != nil {
				return nil, err
			}
			row := PolicyRow{
				Policy:   pol.String(),
				Period:   period,
				Wall:     time.Since(start),
				Stalls:   sim.Subsystem("ss1").Stats().Stalls,
				Restores: sim.Subsystem("ss1").Stats().Restores,
			}
			for _, ep := range sim.Hubs["ss1"].Endpoints() {
				row.Stragglers += ep.Stats().Stragglers
			}
			sim.Close()
			if len(dst.Got) != messages {
				return nil, fmt.Errorf("policy sweep %s/%v: delivered %d/%d", pol, period, len(dst.Got), messages)
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// CheckpointRow is one point of the checkpoint-interval trade-off:
// frequent checkpoints cost capture time, sparse ones cost replayed
// work per rollback.
type CheckpointRow struct {
	Interval    vtime.Duration
	Checkpoints int64
	ReplaySteps int64 // scheduler steps re-executed after the rollback
	Wall        time.Duration
}

// CheckpointInterval runs a single-subsystem workload, rolls back to
// a fixed point from the end, and measures the replay cost under
// several auto-checkpoint intervals.
func CheckpointInterval(workSteps int, intervals []vtime.Duration) ([]CheckpointRow, error) {
	var out []CheckpointRow
	for _, iv := range intervals {
		src := &burster{Count: workSteps, Period: 1}
		dst := &sink{}
		s := core.NewSubsystem("ck")
		sc, err := s.NewComponent("src", src)
		if err != nil {
			return nil, err
		}
		sc.AddPort("out")
		dc, _ := s.NewComponent("dst", dst)
		dc.AddPort("in")
		n, _ := s.NewNet("w", 0)
		s.Connect(n, sc.Port("out"), dc.Port("in"))
		s.SetAutoCheckpoint(iv)
		s.SetCheckpointRetention(1_000_000)
		start := time.Now()
		if err := s.Run(vtime.Time(workSteps) - 1); err != nil {
			return nil, err
		}
		stepsBefore := s.Stats().Steps
		// Roll back to the 70% point: coarse intervals overshoot the
		// target (rolling further back than necessary) and pay more
		// replayed work; fine intervals land close to it.
		target := vtime.Time(workSteps * 7 / 10)
		s.RequestRollback(target)
		if err := s.Run(vtime.Infinity); err != nil {
			return nil, err
		}
		row := CheckpointRow{
			Interval:    iv,
			Checkpoints: s.Stats().Checkpoints,
			ReplaySteps: s.Stats().Steps - stepsBefore,
			Wall:        time.Since(start),
		}
		if len(dst.Got) != workSteps || !ordered(dst.Got) {
			return nil, fmt.Errorf("checkpoint interval %v: replay corrupted (%d delivered)", iv, len(dst.Got))
		}
		out = append(out, row)
	}
	return out, nil
}

// IncrementalRow compares full and incremental checkpoint storage —
// the paper's stated future work ("changing the checkpoint mechanism
// to use incremental rather than total checkpoints").
type IncrementalRow struct {
	Mode        string
	Checkpoints int
	TotalBytes  int
}

// IncrementalCheckpoint measures checkpoint storage with a mostly
// idle large-state component, where incremental mode shines.
func IncrementalCheckpoint(stateKB, checkpoints int) ([]IncrementalRow, error) {
	var out []IncrementalRow
	for _, incr := range []bool{false, true} {
		s := core.NewSubsystem("incr")
		big := &bigState{Payload: make([]byte, stateKB*1024)}
		s.NewComponent("big", big)
		tick := &burster{Count: checkpoints * 10, Period: 10}
		tc, _ := s.NewComponent("tick", tick)
		tc.AddPort("out")
		n, _ := s.NewNet("void", 0)
		s.Connect(n, tc.Port("out"))
		s.SetIncrementalCheckpoints(incr)
		s.SetAutoCheckpoint(10)
		s.SetCheckpointRetention(1_000_000)
		if err := s.Run(vtime.Infinity); err != nil {
			return nil, err
		}
		total := 0
		for _, cs := range s.Checkpoints() {
			total += cs.Bytes()
		}
		mode := "full"
		if incr {
			mode = "incremental"
		}
		out = append(out, IncrementalRow{Mode: mode, Checkpoints: len(s.Checkpoints()), TotalBytes: total})
	}
	return out, nil
}

// bigState is a checkpointable component with a large, unchanging
// state.
type bigState struct {
	Payload []byte
}

func (b *bigState) Run(p *core.Proc) error {
	for {
		if _, ok := p.Recv(); !ok {
			return nil
		}
	}
}

func (b *bigState) SaveState() ([]byte, error)   { return core.GobSave(b) }
func (b *bigState) RestoreState(bs []byte) error { return core.GobRestore(b, bs) }

// SnapshotRow is one point of the Chandy-Lamport scaling measurement.
type SnapshotRow struct {
	Subsystems int
	Wall       time.Duration
	InFlight   int
}

// SnapshotScale takes a distributed snapshot across a chain of n
// subsystems carrying live traffic and measures completion time.
func SnapshotScale(ns []int) ([]SnapshotRow, error) {
	var out []SnapshotRow
	for _, n := range ns {
		if n < 2 {
			return nil, fmt.Errorf("snapshot scale needs >= 2 subsystems")
		}
		b := pia.NewSystem("snapchain")
		// A chain: stage i forwards to stage i+1.
		src := &burster{Count: 50, Period: 20}
		b.AddComponent("c0", sub(0), src, "out")
		for i := 1; i < n; i++ {
			fw := &forwarder{}
			b.AddComponent(fmt.Sprintf("c%d", i), sub(i), fw, "in", "out")
			b.AddNet(fmt.Sprintf("w%d", i-1), 0,
				fmt.Sprintf("c%d.out", i-1), fmt.Sprintf("c%d.in", i))
		}
		term := &sink{}
		b.AddComponent("end", sub(n-1), term, "in")
		b.AddNet("wend", 0, fmt.Sprintf("c%d.out", n-1), "end.in")
		b.SetDefaultChannel(pia.Conservative, pia.LinkModel{Latency: 5, PerMessage: 1})
		sim, err := b.BuildLocal()
		if err != nil {
			return nil, err
		}
		done := make(chan *snapshot.Snapshot, n)
		for _, name := range sim.SubsystemNames() {
			sim.Agents[name].OnComplete = func(s *snapshot.Snapshot) { done <- s }
		}
		start := time.Now()
		sim.Agents[sub(0)].Initiate()
		if err := sim.Run(pia.Time(pia.Milliseconds(10))); err != nil {
			return nil, err
		}
		wall := time.Since(start)
		inflight := 0
		complete := 0
	drain:
		for {
			select {
			case s := <-done:
				complete++
				inflight += s.Messages()
			default:
				break drain
			}
		}
		sim.Close()
		if complete != n {
			return nil, fmt.Errorf("snapshot scale %d: %d/%d subsystems completed", n, complete, n)
		}
		out = append(out, SnapshotRow{Subsystems: n, Wall: wall, InFlight: inflight})
	}
	return out, nil
}

func sub(i int) string { return fmt.Sprintf("ss%02d", i) }

// forwarder relays integers from "in" to "out" with one tick of
// processing.
type forwarder struct {
	N int
}

func (f *forwarder) Run(p *core.Proc) error {
	for {
		m, ok := p.Recv("in")
		if !ok {
			return nil
		}
		p.Advance(1)
		f.N++
		p.Send("out", m.Value)
	}
}

func (f *forwarder) SaveState() ([]byte, error)  { return core.GobSave(f) }
func (f *forwarder) RestoreState(b []byte) error { return core.GobRestore(f, b) }

// MemsyncRow compares interrupt-consistency strategies (§2.1.1).
type MemsyncRow struct {
	Mode       string
	Violations int64
	Restores   int64
	SyncMarked int
	Wall       time.Duration
}

// Memsync runs a processor whose main loop reads shared addresses
// while a device raises interrupts writing them, once with static
// marking and once optimistically with dynamic marking + rewind.
func Memsync(reads, irqs int) ([]MemsyncRow, error) {
	var out []MemsyncRow
	for _, static := range []bool{true, false} {
		s := core.NewSubsystem("memsync")
		cpu := &msCPU{Reads: reads, Static: static}
		cc, err := s.NewComponent("cpu", cpu)
		if err != nil {
			return nil, err
		}
		cc.AddPort("irq")
		dev := &burstIRQ{Count: irqs, Period: vtime.Duration(reads) * 10 / vtime.Duration(irqs+1)}
		dc, _ := s.NewComponent("dev", dev)
		dc.AddPort("irq")
		n, _ := s.NewNet("irqline", 0)
		s.Connect(n, cc.Port("irq"), dc.Port("irq"))
		if _, err := s.CaptureNow(""); err != nil {
			return nil, err
		}
		s.SetAutoCheckpoint(vtime.Duration(reads))
		s.SetCheckpointRetention(1_000_000)
		start := time.Now()
		if err := s.Run(vtime.Infinity); err != nil {
			return nil, err
		}
		mem := s.Component("cpu").Memory()
		mode := "static"
		if !static {
			mode = "optimistic"
		}
		out = append(out, MemsyncRow{
			Mode:       mode,
			Violations: mem.Violations,
			Restores:   s.Stats().Restores,
			SyncMarked: mem.SyncCount(),
			Wall:       time.Since(start),
		})
	}
	return out, nil
}

// msCPU reads a shared address in a loop; its interrupt handler
// writes it.
type msCPU struct {
	Reads  int
	Static bool
	Sum    uint64
	I      int
}

const msAddr uint32 = 0x2000

func (c *msCPU) Run(p *core.Proc) error {
	mem := p.Memory()
	if c.Static {
		mem.MarkSynchronous(msAddr)
	}
	p.SetInterruptHandler("irq", func(p *core.Proc, m core.Msg) {
		mem.HandlerWrite(p, msAddr, uint64(p.Time()), m.Sent)
	})
	for ; c.I < c.Reads; c.I++ {
		p.Advance(10)
		c.Sum += mem.Read(p, msAddr)
	}
	p.DrainInterrupts()
	return nil
}

func (c *msCPU) SaveState() ([]byte, error)  { return core.GobSave(c) }
func (c *msCPU) RestoreState(b []byte) error { return core.GobRestore(c, b) }

// burstIRQ raises interrupts periodically.
type burstIRQ struct {
	Fired, Count int
	Period       vtime.Duration
}

func (d *burstIRQ) Run(p *core.Proc) error {
	for ; d.Fired < d.Count; d.Fired++ {
		p.Delay(d.Period)
		p.Send("irq", d.Fired)
	}
	return nil
}

func (d *burstIRQ) SaveState() ([]byte, error)  { return core.GobSave(d) }
func (d *burstIRQ) RestoreState(b []byte) error { return core.GobRestore(d, b) }
