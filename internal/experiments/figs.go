package experiments

import (
	"fmt"
	"runtime"
	"time"

	pia "repro"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/hwstub"
	"repro/internal/proto"
	"repro/internal/signal"
	"repro/internal/vtime"
	"repro/internal/wubbleu"
)

// --- shared workload pieces ---

// burster sends Count integers on "out", spaced Period apart.
type burster struct {
	Next, Count int
	Period      vtime.Duration
}

func (s *burster) Run(p *core.Proc) error {
	for s.Next < s.Count {
		p.Delay(s.Period)
		p.Send("out", s.Next)
		s.Next++
	}
	return nil
}

func (s *burster) SaveState() ([]byte, error)  { return core.GobSave(s) }
func (s *burster) RestoreState(b []byte) error { return core.GobRestore(s, b) }

// sink records what it receives on "in".
type sink struct {
	Got   []int
	Times []int64
}

func (s *sink) Run(p *core.Proc) error {
	for {
		m, ok := p.Recv("in")
		if !ok {
			return nil
		}
		if v, isInt := m.Value.(int); isInt {
			s.Got = append(s.Got, v)
			s.Times = append(s.Times, int64(m.Time))
		}
	}
}

func (s *sink) SaveState() ([]byte, error)  { return core.GobSave(s) }
func (s *sink) RestoreState(b []byte) error { return core.GobRestore(s, b) }

// Fig3Result captures the Fig. 3 scenario: a subsystem with eager
// local work must stall under a conservative channel to maintain
// continuous consistency, or run ahead and pay restores under an
// optimistic one.
type Fig3Result struct {
	Policy     string
	Wall       time.Duration
	Delivered  int
	Ordered    bool
	Stalls     int64
	Restores   int64
	Stragglers int64
}

// Fig3 runs the scenario under both policies. messages is the number
// of cross-channel messages; busySteps the local work racing ahead.
func Fig3(messages, busySteps int) ([]Fig3Result, error) {
	var out []Fig3Result
	for _, pol := range []pia.Policy{pia.Conservative, pia.Optimistic} {
		src := &burster{Count: messages, Period: 100}
		dst := &sink{}
		busy := &burster{Count: busySteps, Period: 1}
		b := pia.NewSystem("fig3").
			AddComponent("src", "ss2", src, "out").
			AddComponent("dst", "ss1", dst, "in").
			AddComponent("busy", "ss1", busy, "out").
			AddNet("wire", 0, "src.out", "dst.in").
			AddNet("noise", 0, "busy.out").
			SetDefaultChannel(pol, pia.LinkModel{Latency: 5, PerMessage: 1})
		sim, err := b.BuildLocal()
		if err != nil {
			return nil, err
		}
		horizon := pia.Time(vtime.Duration(messages)*100 + vtime.Duration(busySteps) + 10_000)
		start := time.Now()
		if pol == pia.Optimistic {
			// Let ss1 race ahead before ss2 produces anything, so the
			// remote messages are guaranteed stragglers — the
			// scenario Fig. 3's conservative stall prevents.
			ss1, ss2 := sim.Subsystem("ss1"), sim.Subsystem("ss2")
			ss1.SetAutoCheckpoint(50)
			ss1.SetCheckpointRetention(10_000)
			done1 := make(chan error, 1)
			go func() { done1 <- ss1.Run(pia.Infinity) }()
			for {
				now, key := ss1.PublishedTimes()
				if int(now) >= busySteps/2 || key == pia.Infinity {
					break // raced far enough (or exhausted all local work)
				}
				runtime.Gosched()
			}
			if err := ss2.Run(horizon); err != nil {
				return nil, err
			}
			if err := sim.Hubs["ss2"].Close(); err != nil {
				return nil, err
			}
			if err := <-done1; err != nil {
				return nil, err
			}
		} else if err := sim.Run(horizon); err != nil {
			return nil, err
		}
		wall := time.Since(start)
		res := Fig3Result{
			Policy:    pol.String(),
			Wall:      wall,
			Delivered: len(dst.Got),
			Ordered:   ordered(dst.Got),
			Stalls:    sim.Subsystem("ss1").Stats().Stalls,
			Restores:  sim.Subsystem("ss1").Stats().Restores,
		}
		for _, ep := range sim.Hubs["ss1"].Endpoints() {
			res.Stragglers += ep.Stats().Stragglers
			if err := ep.Err(); err != nil {
				return nil, fmt.Errorf("fig3 %s: %w", pol, err)
			}
		}
		sim.Close()
		if res.Delivered != messages || !res.Ordered {
			return nil, fmt.Errorf("fig3 %s: delivered %d/%d ordered=%v", pol, res.Delivered, messages, res.Ordered)
		}
		out = append(out, res)
	}
	return out, nil
}

func ordered(xs []int) bool {
	for i, v := range xs {
		if v != i {
			return false
		}
	}
	return true
}

// Fig4Result shows the three-subsystem safe-time exchange: SS1 must
// obtain safe times from both SS2 and SS3 before advancing.
type Fig4Result struct {
	AsksToSS2, AsksToSS3         int64
	GrantsFromSS2, GrantsFromSS3 int64
	Delivered                    int
	Violations                   bool
}

// Fig4 runs SS2 and SS3 each feeding SS1, conservatively.
func Fig4(messages int) (Fig4Result, error) {
	d2 := &burster{Count: messages, Period: 70}
	d3 := &burster{Count: messages, Period: 110}
	dst := &sink{}
	dst2 := &sink{}
	b := pia.NewSystem("fig4").
		AddComponent("c12", "ss2", d2, "out").
		AddComponent("c13", "ss3", d3, "out").
		AddComponent("c4", "ss1", dst, "in").
		AddComponent("c5", "ss1", dst2, "in").
		AddNet("w2", 0, "c12.out", "c4.in").
		AddNet("w3", 0, "c13.out", "c5.in").
		SetDefaultChannel(pia.Conservative, pia.LinkModel{Latency: 5, PerMessage: 1})
	sim, err := b.BuildLocal()
	if err != nil {
		return Fig4Result{}, err
	}
	defer sim.Close()
	horizon := pia.Time(vtime.Duration(messages)*110 + 10_000)
	if err := sim.Run(horizon); err != nil {
		return Fig4Result{}, err
	}
	var res Fig4Result
	res.Delivered = len(dst.Got) + len(dst2.Got)
	if ep := sim.Hubs["ss1"].Endpoint("ss2"); ep != nil {
		res.AsksToSS2 = ep.Stats().AsksOut
		res.GrantsFromSS2 = ep.Stats().GrantsIn
		res.Violations = res.Violations || ep.Err() != nil
	}
	if ep := sim.Hubs["ss1"].Endpoint("ss3"); ep != nil {
		res.AsksToSS3 = ep.Stats().AsksOut
		res.GrantsFromSS3 = ep.Stats().GrantsIn
		res.Violations = res.Violations || ep.Err() != nil
	}
	return res, nil
}

// Fig2Split describes how a logical net is realized across
// subsystems.
type Fig2Split struct {
	Net       string
	Fragments []string // "subsystem(ports...)" plus hidden ports
	Crossing  bool
}

// Fig2 builds the remote WubbleU and reports how its nets were split
// — the hidden ports and channel components of Fig. 2.
func Fig2() ([]Fig2Split, error) {
	cfg := wubbleu.DefaultConfig()
	cfg.PageSize = 4096
	cfg.Images = 1
	b := pia.NewSystem("fig2")
	if _, err := wubbleu.Install(b, cfg, wubbleu.RemotePlacement()); err != nil {
		return nil, err
	}
	b.SetDefaultChannel(pia.Conservative, pia.LoopbackLink)
	sim, err := b.BuildLocal()
	if err != nil {
		return nil, err
	}
	defer sim.Close()
	var out []Fig2Split
	netNames := []string{"ink", "url", "screen", "cachebus", "jpegbus", "dma", "radio"}
	for _, name := range netNames {
		sp := Fig2Split{Net: name}
		for _, subName := range sim.SubsystemNames() {
			n := sim.Subsystem(subName).Net(name)
			if n == nil {
				continue
			}
			frag := subName + "("
			for i, p := range n.Ports() {
				if i > 0 {
					frag += " "
				}
				if p.Hidden() {
					frag += "[hidden:" + p.Name + "]"
				} else {
					frag += p.Component().Name() + "." + p.Name
				}
			}
			frag += ")"
			sp.Fragments = append(sp.Fragments, frag)
		}
		sp.Crossing = len(sp.Fragments) > 1
		out = append(out, sp)
	}
	return out, nil
}

// Fig1Result is the multi-node smoke test: subsystems on two nodes
// plus a remote hardware connection, all interconnected.
type Fig1Result struct {
	Loads        int
	HWInterrupts int64
	Wall         time.Duration
}

// Fig1 runs WubbleU across two Pia nodes over TCP while a simulated
// board behind a remote hardware server is patched into the handheld
// subsystem through the stub.
func Fig1() (Fig1Result, error) {
	cfg := wubbleu.DefaultConfig()
	cfg.PageSize = 8 * 1024
	cfg.Images = 2
	b := pia.NewSystem("fig1")
	app, err := wubbleu.Install(b, cfg, wubbleu.RemotePlacement())
	if err != nil {
		return Fig1Result{}, err
	}
	// Remote hardware: a watchdog board on a third site.
	board := hwstub.NewSimBoard(func(regs map[uint32]uint32, from, to vtime.Time) []hwstub.Interrupt {
		var irqs []hwstub.Interrupt
		period := vtime.Time(10 * vtime.Millisecond)
		first := (from/period + 1) * period
		for t := first; t <= to; t += period {
			irqs = append(irqs, hwstub.Interrupt{Line: 7, At: t})
		}
		return irqs
	})
	hwSrv, hwAddr, err := hwstub.Serve(board, "127.0.0.1:0")
	if err != nil {
		return Fig1Result{}, err
	}
	defer hwSrv.Close()
	dev, err := hwstub.Dial(hwAddr)
	if err != nil {
		return Fig1Result{}, err
	}
	defer dev.Close()
	adapter := &hwstub.Adapter{Dev: dev, Quantum: vtime.Duration(2 * vtime.Millisecond), Horizon: vtime.Time(60 * vtime.Millisecond)}
	irqs := &irqCounter{}
	b.AddComponent("watchdog", "handheld", adapter, "bus", "irq").
		AddComponent("irqmon", "handheld", irqs, "irq").
		AddNet("wdbus", 0, "watchdog.bus").
		AddNet("wdirq", 0, "watchdog.irq", "irqmon.irq")
	b.SetDefaultChannel(pia.Conservative, pia.LoopbackLink)

	n1, n2 := pia.NewNode("site-a"), pia.NewNode("site-b")
	cl, err := b.BuildOnNodes(map[string]*pia.Node{"handheld": n1, "modemsite": n2})
	if err != nil {
		return Fig1Result{}, err
	}
	defer cl.Close()
	start := time.Now()
	if err := cl.Run(horizon(cfg)); err != nil {
		return Fig1Result{}, err
	}
	res := app.Result()
	return Fig1Result{
		Loads:        res.Loads,
		HWInterrupts: adapter.Forwarded,
		Wall:         time.Since(start),
	}, nil
}

// irqCounter counts IRQ messages.
type irqCounter struct {
	N int
}

func (c *irqCounter) Run(p *core.Proc) error {
	for {
		m, ok := p.Recv("irq")
		if !ok {
			return nil
		}
		if _, isIRQ := m.Value.(signal.IRQ); isIRQ {
			c.N++
		}
	}
}

func (c *irqCounter) SaveState() ([]byte, error)  { return core.GobSave(c) }
func (c *irqCounter) RestoreState(b []byte) error { return core.GobRestore(c, b) }

// SwitchpointResult demonstrates dynamic detail switching: a load
// that starts at word level and is switched to packet level by a
// switchpoint mid-transfer recovers most of packet level's speed.
type SwitchpointResult struct {
	Mode   string
	Wall   time.Duration
	Drives int
}

// RunlevelSwitch compares fixed word, fixed packet, and
// word-switched-to-packet mid-run (two loads: the switchpoint fires
// after the first).
func RunlevelSwitch(pageSize int) ([]SwitchpointResult, error) {
	run := func(mode, level, rule string) (SwitchpointResult, int64, error) {
		cfg := wubbleu.DefaultConfig()
		cfg.PageSize = pageSize
		cfg.Images = 2
		cfg.Loads = 2
		cfg.Level = level
		cfg.NoCache = true // both loads must actually transfer
		b := pia.NewSystem("rl-" + mode)
		app, err := wubbleu.Install(b, cfg, wubbleu.LocalPlacement())
		if err != nil {
			return SwitchpointResult{}, 0, err
		}
		sim, err := b.BuildLocal()
		if err != nil {
			return SwitchpointResult{}, 0, err
		}
		if rule != "" {
			if _, err := sim.Engines["main"].AddRule(rule); err != nil {
				return SwitchpointResult{}, 0, err
			}
		}
		start := time.Now()
		if err := sim.Run(pia.Infinity); err != nil {
			return SwitchpointResult{}, 0, err
		}
		res := app.Result()
		if res.Loads != 2 {
			return SwitchpointResult{}, 0, fmt.Errorf("runlevel %s: %d loads", mode, res.Loads)
		}
		// When the first load finished, for placing the switchpoint.
		firstDone := app.UI.RenderedT[0]
		return SwitchpointResult{Mode: mode, Wall: time.Since(start), Drives: res.DMADrives}, firstDone, nil
	}
	var out []SwitchpointResult
	word, firstDone, err := run("word", proto.LevelWord, "")
	if err != nil {
		return nil, err
	}
	out = append(out, word)
	packet, _, err := run("packet", proto.LevelPacket, "")
	if err != nil {
		return nil, err
	}
	out = append(out, packet)
	// Switch the ASIC to packet level once the browser's local clock
	// passes the end of the first load (measured on the word run, which
	// the switched run replays identically up to that point) — the
	// paper's switchpoint form: a condition on a component's local
	// time, actions on components.
	switched, _, err := run("switchpoint", proto.LevelWord,
		fmt.Sprintf("when browser >= %d: asic->packetLevel", firstDone+1))
	if err != nil {
		return nil, err
	}
	out = append(out, switched)
	return out, nil
}

var _ = channel.Conservative // keep the import for documentation references
