package experiments

import (
	"fmt"
	"time"

	pia "repro"
	"repro/internal/proto"
	"repro/internal/vtime"
	"repro/internal/wubbleu"
)

// ChaosConfig drives the chaos experiment: the Table 1 remote
// word-level workload run once over a clean loopback TCP link and
// once over the same link with deterministic WAN faults injected
// underneath a resilient session layer.
type ChaosConfig struct {
	Table1Config

	// Seed fixes the whole fault schedule; the same seed reproduces
	// the same drops, duplicates, reorders, corruptions and the same
	// partition position, frame for frame.
	Seed int64

	// Faults overrides the injected fault mix. Zero value uses
	// DefaultChaosFaults(Seed).
	Faults pia.FaultConfig
	// Resilience overrides the recovery tuning. Zero value uses
	// DefaultChaosResilience().
	Resilience pia.ResilienceConfig
}

// DefaultChaosFaults is the paper-style WAN misbehaviour mix the
// chaos experiment injects: a few percent of frames dropped,
// duplicated, reordered or corrupted, sub-millisecond jitter, and one
// scripted partition/heal cycle early in the run.
func DefaultChaosFaults(seed int64) pia.FaultConfig {
	return pia.FaultConfig{
		Seed:        seed,
		Jitter:      200 * time.Microsecond,
		DropProb:    0.03,
		DupProb:     0.02,
		ReorderProb: 0.02,
		CorruptProb: 0.02,
		Partitions:  []pia.FaultPartition{{AtFrame: 50, Heal: 15 * time.Millisecond}},
	}
}

// DefaultChaosResilience tunes the session layer for the injected
// fault rate: a fast heartbeat so dropped tails are detected quickly,
// a short handshake timeout so an eaten hello costs milliseconds
// rather than the 5s WAN default, and a short reconnect backoff so
// the run spends its wall clock simulating rather than waiting.
func DefaultChaosResilience() pia.ResilienceConfig {
	return pia.ResilienceConfig{
		Heartbeat:        20 * time.Millisecond,
		HandshakeTimeout: 250 * time.Millisecond,
		RetryBase:        2 * time.Millisecond,
		RetryCap:         50 * time.Millisecond,
		RetryMax:         40,
	}
}

// ChaosRow is one leg of the chaos experiment.
type ChaosRow struct {
	Mode   string // "clean" or "faulty"
	Wall   time.Duration
	Virt   vtime.Duration // virtual load time — must match across legs
	Drives int            // DMA link drives — must match across legs

	// Fault-injection totals summed over every shaped link (faulty
	// leg only).
	Faults pia.FaultStats
	// Session recovery counters summed over both nodes (faulty leg
	// only).
	Resil pia.ResilienceStats
}

// Injected counts the faults that actually fired.
func (r ChaosRow) Injected() int64 {
	return r.Faults.Dropped + r.Faults.Duplicated + r.Faults.Reordered + r.Faults.Corrupted + r.Faults.Cuts
}

// Chaos runs the Table 1 remote word-level workload clean and then
// under deterministic faults with session recovery, and checks the
// paper-level invariant: the simulation's virtual-time result and
// link-drive count are identical — WAN misbehaviour costs wall-clock
// time, never simulation correctness. It also re-derives every
// link's fault schedule from (seed, link name) and verifies the
// digest, so the run is provably the scheduled one.
func Chaos(c ChaosConfig) (clean, faulty ChaosRow, err error) {
	if !c.Faults.Enabled() {
		c.Faults = DefaultChaosFaults(c.Seed)
	}
	if !c.Resilience.Enabled() {
		c.Resilience = DefaultChaosResilience()
	}
	if clean, err = chaosLeg(c.Table1Config, nil, nil); err != nil {
		return clean, faulty, fmt.Errorf("chaos: clean leg: %w", err)
	}
	clean.Mode = "clean"
	if faulty, err = chaosLeg(c.Table1Config, &c.Faults, &c.Resilience); err != nil {
		return clean, faulty, fmt.Errorf("chaos: faulty leg: %w", err)
	}
	faulty.Mode = "faulty"
	if faulty.Virt != clean.Virt {
		return clean, faulty, fmt.Errorf("chaos: virtual time diverged under faults: clean %v, faulty %v", clean.Virt, faulty.Virt)
	}
	if faulty.Drives != clean.Drives {
		return clean, faulty, fmt.Errorf("chaos: link drives diverged under faults: clean %d, faulty %d", clean.Drives, faulty.Drives)
	}
	return clean, faulty, nil
}

// chaosLeg runs the remote word-level workload once. With nil faults
// and resilience it is exactly the Table 1 remote row; otherwise the
// cross-node link is shaped and the session layer recovers.
func chaosLeg(c Table1Config, faults *pia.FaultConfig, resil *pia.ResilienceConfig) (ChaosRow, error) {
	cfg := c.wubbleu(proto.LevelWord)
	b := pia.NewSystem("wubbleu-chaos")
	app, err := wubbleu.Install(b, cfg, wubbleu.RemotePlacement())
	if err != nil {
		return ChaosRow{}, err
	}
	b.SetDefaultChannel(pia.Conservative, pia.LoopbackLink)
	if faults != nil {
		b.SetFaults(*faults)
	}
	if resil != nil {
		b.SetResilience(*resil)
	}
	n1, n2 := pia.NewNode("handheld-node"), pia.NewNode("modem-node")
	cl, err := b.BuildOnNodes(map[string]*pia.Node{
		"handheld":  n1,
		"modemsite": n2,
	})
	if err != nil {
		return ChaosRow{}, err
	}
	defer cl.Close()
	start := time.Now()
	if err := cl.Run(horizon(cfg)); err != nil {
		return ChaosRow{}, err
	}
	wall := time.Since(start)
	res := app.Result()
	if res.Loads != cfg.Loads {
		return ChaosRow{}, fmt.Errorf("load incomplete (%d/%d)", res.Loads, cfg.Loads)
	}
	row := ChaosRow{Wall: wall, Virt: res.LoadVirt[0], Drives: res.DMADrives}
	for _, n := range []*pia.Node{n1, n2} {
		for _, l := range n.FaultLinks() {
			if err := l.VerifyDigest(); err != nil {
				return ChaosRow{}, err
			}
			s := l.Stats()
			row.Faults.Frames += s.Frames
			row.Faults.Forwarded += s.Forwarded
			row.Faults.Dropped += s.Dropped
			row.Faults.Duplicated += s.Duplicated
			row.Faults.Reordered += s.Reordered
			row.Faults.Corrupted += s.Corrupted
			row.Faults.Cuts += s.Cuts
			row.Faults.BytesShaped += s.BytesShaped
		}
		rs := n.ResilienceStats()
		row.Resil.EpochDeaths += rs.EpochDeaths
		row.Resil.DialAttempts += rs.DialAttempts
		row.Resil.Resumes += rs.Resumes
		row.Resil.ReplayedFrames += rs.ReplayedFrames
		row.Resil.Rewinds += rs.Rewinds
		row.Resil.GapKills += rs.GapKills
		row.Resil.CrcKills += rs.CrcKills
		row.Resil.DupFramesIn += rs.DupFramesIn
		row.Resil.FramesOut += rs.FramesOut
		row.Resil.FramesIn += rs.FramesIn
		row.Resil.HeartbeatsOut += rs.HeartbeatsOut
	}
	return row, nil
}
