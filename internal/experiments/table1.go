// Package experiments regenerates every table and figure of the
// paper's evaluation: Table 1 (simulation time for the WubbleU page
// load across locations and detail levels) and the scenarios of
// Figs. 1-6, plus the ablations DESIGN.md calls out. Each experiment
// is a plain function returning structured rows, shared by the
// benchmark harness (bench_test.go) and the piabench command.
package experiments

import (
	"fmt"
	"time"

	pia "repro"
	"repro/internal/baseline"
	"repro/internal/proto"
	"repro/internal/vtime"
	"repro/internal/wubbleu"
)

// Table1Row is one row of Table 1: "Time and simulation overhead on
// several configurations of the WubbleU example".
type Table1Row struct {
	Location string // "N/A" (native), "local", "remote"
	Level    string // "HotJava", "word passage", "packet passage"
	Wall     time.Duration
	Virt     vtime.Duration // virtual load time (not in the paper's table)
	Drives   int            // net drives on the switchable DMA link
	Overhead float64        // Wall / native Wall

	// Wire traffic for remote rows (sent direction, both nodes
	// summed): how many TCP frames and bytes the run cost. The
	// coalescing ablation's figure of merit — same drives, fewer
	// frames.
	FramesOut    int64
	WireBytesOut int64

	// Metrics is the leg's unified metrics snapshot, taken right
	// after the run completes and before teardown. Populated only
	// with Table1Config.CollectMetrics; nil otherwise (the
	// zero-overhead default).
	Metrics []pia.MetricSample

	// TimelineEvents is the total number of timeline events the leg
	// recorded (all nodes summed). Populated only with
	// Table1Config.Timeline.
	TimelineEvents uint64
}

// Table1Config scales the experiment (the paper used the full 66 KB
// page; unit tests use less).
type Table1Config struct {
	PageSize int
	Images   int

	// Coalesce, when enabled, batches cross-node egress on remote
	// rows. The zero value keeps the one-frame-per-message path.
	Coalesce pia.CoalesceConfig

	// Workers sizes each subsystem's scheduler worker pool; 0 keeps
	// the sequential scheduler. Virtual results are identical either
	// way.
	Workers int

	// CollectMetrics wires each simulated leg into a fresh metrics
	// registry and attaches its end-of-run snapshot to the returned
	// row. Off by default so benchmarks measure the disabled path.
	CollectMetrics bool

	// OnMetrics, when set together with CollectMetrics, receives
	// each leg's live registry as soon as it is wired — the hook
	// piabench's -report ticker reads progress from while a leg is
	// still running.
	OnMetrics func(*pia.MetricsRegistry)

	// Timeline wires each simulated leg into timeline recorders (one
	// per node on remote legs) and reports the recorded-event count on
	// the returned row. Off by default so benchmarks measure the
	// disabled path.
	Timeline bool

	// OnCluster, when set, receives the built cluster of a Remote leg
	// after metrics/timeline wiring and before Run — the hook the
	// observability overhead experiment uses to attach a flight
	// recorder, streaming hub, and cost attribution to an otherwise
	// identical run.
	OnCluster func(*pia.Cluster)
}

// DefaultTable1Config reproduces the paper's setup.
func DefaultTable1Config() Table1Config {
	return Table1Config{PageSize: wubbleu.DefaultPageSize, Images: wubbleu.DefaultImageCount}
}

func (c Table1Config) wubbleu(level string) wubbleu.Config {
	cfg := wubbleu.DefaultConfig()
	cfg.PageSize = c.PageSize
	cfg.Images = c.Images
	cfg.Level = level
	return cfg
}

// Native measures the reference (HotJava-analog) load.
func Native(c Table1Config) (Table1Row, error) {
	store, err := wubbleu.NewStore()
	if err != nil {
		return Table1Row{}, err
	}
	if c.PageSize != wubbleu.DefaultPageSize || c.Images != wubbleu.DefaultImageCount {
		page, err := wubbleu.GenPage(c.PageSize, c.Images)
		if err != nil {
			return Table1Row{}, err
		}
		store.Put(wubbleu.DefaultURL, page)
	}
	srv, addr, err := baseline.Serve(store, "127.0.0.1:0")
	if err != nil {
		return Table1Row{}, err
	}
	defer srv.Close()
	res, err := baseline.Load(addr, wubbleu.DefaultURL)
	if err != nil {
		return Table1Row{}, err
	}
	return Table1Row{Location: "N/A", Level: "HotJava", Wall: res.Elapsed}, nil
}

// horizon bounds a simulated load generously in virtual time.
func horizon(cfg wubbleu.Config) pia.Time {
	// Radio transfer dominates virtual time; 100x margin.
	perLoad := vtime.Duration(int64(cfg.PageSize)*8*int64(vtime.Second)/cfg.RadioBitsPerSec) * 100
	if perLoad < vtime.Duration(1*vtime.Second) {
		perLoad = vtime.Duration(1 * vtime.Second)
	}
	return pia.Time(perLoad * vtime.Duration(cfg.Loads))
}

// Local runs the whole design in a single subsystem at the given
// detail level and measures wall-clock simulation time.
func Local(c Table1Config, level string) (Table1Row, error) {
	cfg := c.wubbleu(level)
	b := pia.NewSystem("wubbleu-local")
	app, err := wubbleu.Install(b, cfg, wubbleu.LocalPlacement())
	if err != nil {
		return Table1Row{}, err
	}
	b.SetWorkers(c.Workers)
	sim, err := b.BuildLocal()
	if err != nil {
		return Table1Row{}, err
	}
	var reg *pia.MetricsRegistry
	if c.CollectMetrics {
		reg = sim.EnableMetrics(pia.NewMetricsRegistry())
		if c.OnMetrics != nil {
			c.OnMetrics(reg)
		}
	}
	var rec *pia.TimelineRecorder
	if c.Timeline {
		rec = sim.EnableTimeline(nil)
	}
	start := time.Now()
	if err := sim.Run(pia.Infinity); err != nil {
		return Table1Row{}, err
	}
	wall := time.Since(start)
	res := app.Result()
	if res.Loads != cfg.Loads {
		return Table1Row{}, fmt.Errorf("experiments: local %s load incomplete (%d/%d)", level, res.Loads, cfg.Loads)
	}
	return Table1Row{
		Location: "local", Level: levelName(level),
		Wall: wall, Virt: res.LoadVirt[0], Drives: res.DMADrives,
		Metrics:        reg.Snapshot(),
		TimelineEvents: rec.Stats().Recorded,
	}, nil
}

// Remote places the cellular ASIC (and the server behind its
// wireless link) on a second Pia node reached over real loopback
// TCP, as in the paper's two-workstation setup, and measures
// wall-clock simulation time at the given detail level for the DMA
// link that now crosses the network.
func Remote(c Table1Config, level string) (Table1Row, error) {
	cfg := c.wubbleu(level)
	b := pia.NewSystem("wubbleu-remote")
	app, err := wubbleu.Install(b, cfg, wubbleu.RemotePlacement())
	if err != nil {
		return Table1Row{}, err
	}
	b.SetDefaultChannel(pia.Conservative, pia.LoopbackLink)
	b.SetWorkers(c.Workers)
	if c.Coalesce.Enabled() {
		b.SetCoalescing(c.Coalesce)
	}
	n1, n2 := pia.NewNode("handheld-node"), pia.NewNode("modem-node")
	cl, err := b.BuildOnNodes(map[string]*pia.Node{
		"handheld":  n1,
		"modemsite": n2,
	})
	if err != nil {
		return Table1Row{}, err
	}
	defer cl.Close()
	var reg *pia.MetricsRegistry
	if c.CollectMetrics {
		reg = cl.EnableMetrics(pia.NewMetricsRegistry())
		if c.OnMetrics != nil {
			c.OnMetrics(reg)
		}
	}
	if c.Timeline {
		cl.EnableTimeline(0)
	}
	if c.OnCluster != nil {
		c.OnCluster(cl)
	}
	start := time.Now()
	if err := cl.Run(horizon(cfg)); err != nil {
		return Table1Row{}, err
	}
	wall := time.Since(start)
	res := app.Result()
	if res.Loads != cfg.Loads {
		return Table1Row{}, fmt.Errorf("experiments: remote %s load incomplete (%d/%d)", level, res.Loads, cfg.Loads)
	}
	row := Table1Row{
		Location: "remote", Level: levelName(level),
		Wall: wall, Virt: res.LoadVirt[0], Drives: res.DMADrives,
		Metrics: reg.Snapshot(),
	}
	for _, rec := range cl.Timelines() {
		row.TimelineEvents += rec.Stats().Recorded
	}
	for _, n := range []*pia.Node{n1, n2} {
		ws := n.WireStats()
		row.FramesOut += ws.FramesOut
		row.WireBytesOut += ws.BytesOut
	}
	return row, nil
}

// CoalescingAblation runs the remote row at the given level twice —
// uncoalesced, then with the given (or default) coalescing policy —
// so the frame reduction and wall-clock change are measured on
// identical workloads.
func CoalescingAblation(c Table1Config, level string) (off, on Table1Row, err error) {
	plain := c
	plain.Coalesce = pia.CoalesceConfig{}
	if off, err = Remote(plain, level); err != nil {
		return off, on, err
	}
	batched := c
	if !batched.Coalesce.Enabled() {
		batched.Coalesce = pia.DefaultCoalesce
	}
	if on, err = Remote(batched, level); err != nil {
		return off, on, err
	}
	on.Location, off.Location = "remote+coalesce", "remote"
	return off, on, nil
}

func levelName(level string) string {
	switch level {
	case proto.LevelWord:
		return "word passage"
	case proto.LevelPacket:
		return "packet passage"
	case proto.LevelHardware:
		return "hardware passage"
	default:
		return level
	}
}

// Table1 regenerates the full table: native reference, then
// local/remote x word/packet.
func Table1(c Table1Config) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, 5)
	native, err := Native(c)
	if err != nil {
		return nil, err
	}
	rows = append(rows, native)
	for _, run := range []struct {
		f     func(Table1Config, string) (Table1Row, error)
		level string
	}{
		{Local, proto.LevelWord},
		{Local, proto.LevelPacket},
		{Remote, proto.LevelWord},
		{Remote, proto.LevelPacket},
	} {
		row, err := run.f(c, run.level)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	for i := range rows {
		if native.Wall > 0 {
			rows[i].Overhead = float64(rows[i].Wall) / float64(native.Wall)
		}
	}
	return rows, nil
}
