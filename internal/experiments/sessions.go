package experiments

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/service"
	"repro/internal/vtime"
)

// SessionsConfig shapes the multi-tenant service benchmark: the
// steady-state concurrent-session legs, the create/run/stop churn
// leg, and the admission/eviction determinism probes.
type SessionsConfig struct {
	Sessions int   // steady-state tenants held live per leg
	Churn    int   // total sessions churned through the churn leg
	Clients  int   // concurrent churn clients
	Workers  []int // shared-pool sizes for the steady legs

	// Fan workload shape shared by every session; the seed varies
	// per session over Seeds distinct values.
	Fanout    int
	Rounds    int
	WorkIters int
	Seeds     int

	StepChunk vtime.Duration // interleaved fair-share step quantum
}

// DefaultSessionsConfig holds ~120 tenants at steady state — the
// acceptance bar is ≥ 100 concurrent sessions on one host — and
// churns 240 through 8 concurrent clients.
func DefaultSessionsConfig() SessionsConfig {
	return SessionsConfig{
		Sessions:  120,
		Churn:     240,
		Clients:   8,
		Workers:   []int{0, 2, 4},
		Fanout:    4,
		Rounds:    8,
		WorkIters: 256,
		Seeds:     24,
		StepChunk: 20 * vtime.Millisecond,
	}
}

// SessionsRow is one benchmark leg.
type SessionsRow struct {
	Leg            string        // "steady", "churn", "admission", "evict"
	Workers        int           // shared-pool size (0 = sequential)
	Sessions       int           // sessions the leg ran
	PeakLive       int           // max concurrent sessions observed
	Wall           time.Duration // leg wall-clock
	SessionsPerSec float64       // churn leg: completed sessions per second
	Steps          int64         // scheduler steps summed over the leg
	DigestsOK      bool          // every digest matched its isolated reference
	Rejected       int64         // admission leg: budget rejections
	Evicted        int64         // evict leg: budget evictions
	EvictChunk     int           // evict leg: step-call index that crossed the budget
	EvictSteps     int64         // evict leg: step count at eviction
}

func (c SessionsConfig) spec(i int) service.Spec {
	return service.Spec{
		Seed:      int64(i % c.Seeds),
		Fanout:    c.Fanout,
		Rounds:    c.Rounds,
		WorkIters: c.WorkIters,
	}
}

// references runs each distinct seed alone — one session, one
// sequential catalog — and records the digest every multi-tenant run
// must reproduce bit-for-bit.
func (c SessionsConfig) references() ([]uint64, error) {
	refs := make([]uint64, c.Seeds)
	for s := 0; s < c.Seeds; s++ {
		cat := service.NewCatalog(service.Config{})
		info, err := cat.Create(c.spec(s))
		if err == nil {
			info, err = cat.Step(info.ID, 0, 0)
		}
		cat.Close()
		if err != nil {
			return nil, fmt.Errorf("sessions: isolated reference seed %d: %w", s, err)
		}
		if info.State != service.StateDone {
			return nil, fmt.Errorf("sessions: isolated reference seed %d ended %q", s, info.State)
		}
		refs[s] = info.DigestU64
	}
	return refs, nil
}

// Sessions measures the multi-tenant session service on one host:
// steady-state legs that hold Sessions tenants live and step them
// interleaved on a shared pool at each worker count, a churn leg
// that creates/runs/stops sessions from concurrent clients, and
// deterministic admission/eviction probes. Every session's drive
// digest is checked against its isolated single-session reference;
// any mismatch is an error (and DigestsOK false).
func Sessions(cfg SessionsConfig) ([]SessionsRow, error) {
	refs, err := cfg.references()
	if err != nil {
		return nil, err
	}
	var rows []SessionsRow

	for _, workers := range cfg.Workers {
		row, err := steadyLeg(cfg, workers, refs)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}

	churn, err := churnLeg(cfg, refs)
	if err != nil {
		return rows, err
	}
	rows = append(rows, churn)

	adm, err := admissionLeg(cfg)
	if err != nil {
		return rows, err
	}
	rows = append(rows, adm)

	ev, err := evictLeg(cfg)
	if err != nil {
		return rows, err
	}
	rows = append(rows, ev)
	return rows, nil
}

// steadyLeg holds cfg.Sessions tenants live at once and advances all
// of them in interleaved StepChunk quanta — the fair-share serving
// pattern — until every tenant finishes.
func steadyLeg(cfg SessionsConfig, workers int, refs []uint64) (SessionsRow, error) {
	row := SessionsRow{Leg: "steady", Workers: workers, Sessions: cfg.Sessions, DigestsOK: true}
	cat := service.NewCatalog(service.Config{Workers: workers})
	defer cat.Close()

	start := time.Now()
	ids := make([]string, cfg.Sessions)
	for i := range ids {
		info, err := cat.Create(cfg.spec(i))
		if err != nil {
			return row, fmt.Errorf("sessions: steady create %d: %w", i, err)
		}
		ids[i] = info.ID
	}
	row.PeakLive = cat.Stats().Live

	done := make(map[string]service.Info, len(ids))
	maxRounds := int(vtime.Duration(cfg.Rounds+3)*10*vtime.Millisecond/cfg.StepChunk) + 4
	for round := 0; len(done) < len(ids); round++ {
		if round > maxRounds {
			return row, fmt.Errorf("sessions: steady leg stuck after %d rounds (%d/%d done)", round, len(done), len(ids))
		}
		for _, id := range ids {
			if _, ok := done[id]; ok {
				continue
			}
			info, err := cat.Step(id, 0, cfg.StepChunk)
			if err != nil {
				return row, fmt.Errorf("sessions: steady step %s: %w", id, err)
			}
			if info.State == service.StateDone {
				done[id] = info
			}
		}
	}
	row.Wall = time.Since(start)
	for i, id := range ids {
		info := done[id]
		row.Steps += info.Steps
		if info.DigestU64 != refs[i%cfg.Seeds] {
			row.DigestsOK = false
			return row, fmt.Errorf("sessions: steady workers=%d tenant %s digest %016x, want %016x",
				workers, id, info.DigestU64, refs[i%cfg.Seeds])
		}
	}
	return row, nil
}

// churnLeg hammers the catalog lifecycle from concurrent clients:
// create, run to completion, digest-check, stop. Throughput is
// completed sessions per wall second through one shared pool.
func churnLeg(cfg SessionsConfig, refs []uint64) (SessionsRow, error) {
	workers := cfg.Workers[len(cfg.Workers)-1]
	row := SessionsRow{Leg: "churn", Workers: workers, Sessions: cfg.Churn, DigestsOK: true}
	cat := service.NewCatalog(service.Config{Workers: workers})
	defer cat.Close()

	perClient := cfg.Churn / cfg.Clients
	row.Sessions = perClient * cfg.Clients
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		peak int
		errs []error
	)
	start := time.Now()
	for g := 0; g < cfg.Clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				i := g*perClient + k
				info, err := cat.Create(cfg.spec(i))
				if err == nil {
					live := cat.Stats().Live
					mu.Lock()
					if live > peak {
						peak = live
					}
					mu.Unlock()
					info, err = cat.Step(info.ID, 0, 0)
				}
				if err == nil && info.DigestU64 != refs[i%cfg.Seeds] {
					err = fmt.Errorf("digest %016x, want %016x", info.DigestU64, refs[i%cfg.Seeds])
				}
				if err == nil {
					_, err = cat.Stop(info.ID, 0)
				}
				if err != nil {
					mu.Lock()
					errs = append(errs, fmt.Errorf("sessions: churn client %d session %d: %w", g, i, err))
					mu.Unlock()
					return
				}
			}
		}(g)
	}
	wg.Wait()
	row.Wall = time.Since(start)
	if len(errs) > 0 {
		row.DigestsOK = false
		return row, errs[0]
	}
	st := cat.Stats()
	row.PeakLive = peak
	if st.Created != int64(row.Sessions) || st.Stopped != int64(row.Sessions) {
		return row, fmt.Errorf("sessions: churn accounting: %+v, want %d created+stopped", st, row.Sessions)
	}
	if row.Wall > 0 {
		row.SessionsPerSec = float64(row.Sessions) / row.Wall.Seconds()
	}
	return row, nil
}

// admissionLeg verifies deterministic admission control: a catalog
// capped at half the offered sessions must reject exactly the
// overflow, every time.
func admissionLeg(cfg SessionsConfig) (SessionsRow, error) {
	limit := cfg.Sessions / 2
	if limit < 1 {
		limit = 1
	}
	offered := limit * 2
	row := SessionsRow{Leg: "admission", Sessions: offered, DigestsOK: true}
	cat := service.NewCatalog(service.Config{Limits: service.Limits{MaxSessions: limit}})
	defer cat.Close()
	start := time.Now()
	for i := 0; i < offered; i++ {
		_, err := cat.Create(cfg.spec(i))
		switch {
		case i < limit && err != nil:
			return row, fmt.Errorf("sessions: admission create %d: %w", i, err)
		case i >= limit && !errors.Is(err, service.ErrOverBudget):
			return row, fmt.Errorf("sessions: admission create %d: %v, want ErrOverBudget", i, err)
		}
	}
	row.Wall = time.Since(start)
	st := cat.Stats()
	row.PeakLive = st.Live
	row.Rejected = st.Rejected
	if st.Rejected != int64(offered-limit) {
		return row, fmt.Errorf("sessions: admission rejected %d, want %d", st.Rejected, offered-limit)
	}
	return row, nil
}

// evictLeg verifies deterministic step-budget eviction: the same
// over-budget tenant must be evicted at the same step-call boundary
// with the same step count on every run.
func evictLeg(cfg SessionsConfig) (SessionsRow, error) {
	row := SessionsRow{Leg: "evict", Sessions: 1, DigestsOK: true}
	run := func() (int, int64, error) {
		cat := service.NewCatalog(service.Config{Limits: service.Limits{MaxSteps: 40}})
		defer cat.Close()
		info, err := cat.Create(cfg.spec(0))
		if err != nil {
			return 0, 0, err
		}
		for chunk := 1; ; chunk++ {
			info, err = cat.Step(info.ID, 0, cfg.StepChunk)
			if err != nil {
				var be *service.BudgetError
				if !errors.As(err, &be) || !be.Evicted {
					return 0, 0, err
				}
				return chunk, info.Steps, nil
			}
			if chunk > 10_000 {
				return 0, 0, fmt.Errorf("budget never crossed")
			}
		}
	}
	start := time.Now()
	c1, s1, err := run()
	if err != nil {
		return row, fmt.Errorf("sessions: evict run 1: %w", err)
	}
	c2, s2, err := run()
	if err != nil {
		return row, fmt.Errorf("sessions: evict run 2: %w", err)
	}
	row.Wall = time.Since(start)
	if c1 != c2 || s1 != s2 {
		row.DigestsOK = false
		return row, fmt.Errorf("sessions: eviction boundary diverged: chunk %d/%d steps %d/%d", c1, c2, s1, s2)
	}
	row.Evicted = 1
	row.EvictChunk = c1
	row.EvictSteps = s1
	return row, nil
}
