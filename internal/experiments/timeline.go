package experiments

import (
	"bytes"
	"fmt"
	"time"

	pia "repro"
	"repro/internal/proto"
	"repro/internal/timeline"
	"repro/internal/vtime"
	"repro/internal/wubbleu"
)

// ChaosTimelineResult is the outcome of the chaos-timeline scenario:
// the faulty two-node run with per-node timeline recorders wired, a
// scripted checkpoint-restore rewind, and the merged canonical export.
type ChaosTimelineResult struct {
	Row ChaosRow // the instrumented faulty leg

	// Trace is the merged canonical Perfetto JSON: both nodes'
	// committed events on the virtual clock, with cross-node
	// send/delivery pairs stitched into flow arrows. Byte-identical
	// across reruns with the same seed.
	Trace []byte

	// Events is the merged canonical event list behind Trace, for
	// callers that want to assert on structure rather than bytes.
	Events []timeline.Event

	// Canonical counts the committed events in the merge; Flows the
	// committed cross-node sends and Delivers the committed deliveries
	// (the scenario pairs them all: every arrow is complete); Rewinds
	// the rewind markers (>= 1: the scenario scripts one).
	Canonical int
	Flows     int
	Delivers  int
	Rewinds   int

	// Evicted sums ring evictions over both recorders. The scenario
	// sizes the rings so this stays 0 — eviction order interleaves
	// wall-timing-dependent transient events, so a run that evicts
	// cannot promise byte-identical canonical exports.
	Evicted uint64
}

// ChaosTimeline runs the chaos experiment's faulty leg (remote word
// level under deterministic WAN faults with session recovery) with the
// timeline recorders enabled, then scripts a deterministic rewind.
//
// The workload is two page loads. Load 1 crosses nodes (the full
// radio + DMA word transfer); load 2 is served from the handheld's
// page cache, so its history is handheld-local. Between the loads the
// handheld captures a tagged checkpoint; once both loads have
// completed and been verified, the handheld is rolled back to it.
// Load 2 drops out of the committed view and a single rewind marker
// spanning the discarded-future window takes its place — while every
// one of load 1's cross-node send/delivery pairs survives, so the
// merged export has only complete flow arrows. All virtual times are
// pure functions of the seed, so the merged canonical export is
// byte-identical run to run.
func ChaosTimeline(c ChaosConfig) (ChaosTimelineResult, error) {
	if !c.Faults.Enabled() {
		c.Faults = DefaultChaosFaults(c.Seed)
	}
	if !c.Resilience.Enabled() {
		c.Resilience = DefaultChaosResilience()
	}
	cfg := c.wubbleu(proto.LevelWord)
	cfg.Loads = 2 // load 2 is a cache hit: it never leaves the handheld
	b := pia.NewSystem("wubbleu-chaos")
	app, err := wubbleu.Install(b, cfg, wubbleu.RemotePlacement())
	if err != nil {
		return ChaosTimelineResult{}, err
	}
	b.SetDefaultChannel(pia.Conservative, pia.LoopbackLink)
	b.SetFaults(c.Faults)
	b.SetResilience(c.Resilience)
	n1, n2 := pia.NewNode("handheld-node"), pia.NewNode("modem-node")
	cl, err := b.BuildOnNodes(map[string]*pia.Node{
		"handheld":  n1,
		"modemsite": n2,
	})
	if err != nil {
		return ChaosTimelineResult{}, err
	}
	defer cl.Close()
	// Ring large enough that nothing is evicted: determinism of the
	// canonical bytes depends on the full committed history surviving.
	cl.EnableTimeline(1 << 20)

	end := horizon(cfg)
	// Find the inter-load boundary without knowing it a priori: step
	// the horizon in fixed virtual increments until load 1 has
	// rendered. The stopping step is determined only by the workload's
	// virtual behaviour, so the capture point is a pure function of
	// the config — load 1's deliveries all precede it (they precede
	// the render), and load 2 (>= the recognizer's burn alone, far
	// longer than one step) cannot also have completed inside the
	// discovery step, so a discarded future is guaranteed to exist.
	step := pia.Time(5 * vtime.Millisecond)
	start := time.Now()
	for at := step; ; at += step {
		if at > end {
			return ChaosTimelineResult{}, fmt.Errorf("chaos-timeline: load 1 incomplete by horizon %v", end)
		}
		if err := cl.Run(at); err != nil {
			return ChaosTimelineResult{}, err
		}
		if app.Result().Loads >= 1 {
			break
		}
	}
	// Both schedulers are quiescent at the stepped horizon, so the
	// capture lands at a virtual time determined only by the workload.
	hh := cl.Subsystems["handheld"]
	cs, err := hh.CaptureNow("scripted-rewind")
	if err != nil {
		return ChaosTimelineResult{}, err
	}
	if err := cl.Run(end); err != nil {
		return ChaosTimelineResult{}, err
	}
	wall := time.Since(start)
	res := app.Result()
	if res.Loads != cfg.Loads {
		return ChaosTimelineResult{}, fmt.Errorf("chaos-timeline: load incomplete (%d/%d)", res.Loads, cfg.Loads)
	}
	if res.CacheHits == 0 {
		// The all-arrows-complete guarantee depends on load 2 staying
		// on the handheld; a cache miss would commit unmatched sends.
		return ChaosTimelineResult{}, fmt.Errorf("chaos-timeline: load 2 missed the page cache")
	}
	// Scripted rewind, after the result is in: roll the handheld
	// subsystem back to the inter-load checkpoint. Everything it
	// recorded past the capture point — load 2 — leaves the committed
	// view; the rewind marker documents the discarded window.
	if err := hh.RestoreCheckpoint(cs); err != nil {
		return ChaosTimelineResult{}, err
	}

	out := ChaosTimelineResult{
		Row: ChaosRow{Mode: "faulty+timeline", Wall: wall, Virt: res.LoadVirt[0], Drives: res.DMADrives},
	}
	batches := make([][]timeline.Event, 0, 2)
	for _, rec := range cl.Timelines() {
		batches = append(batches, rec.Events())
		out.Evicted += rec.Stats().Evicted
	}
	merged := timeline.Canonical(timeline.MergeEvents(batches...))
	out.Events = merged
	out.Canonical = len(merged)
	for _, e := range merged {
		switch e.Kind {
		case timeline.KindSend:
			out.Flows++
		case timeline.KindDeliver:
			out.Delivers++
		case timeline.KindRewind:
			out.Rewinds++
		}
	}
	var buf bytes.Buffer
	if err := timeline.WritePerfetto(&buf, merged, timeline.ExportOptions{}); err != nil {
		return ChaosTimelineResult{}, err
	}
	out.Trace = buf.Bytes()
	return out, nil
}

// TimelineOverhead measures what the timeline costs on the Table 1
// remote word-level leg: the same workload with recorders off and on.
// The virtual result must be bit-identical — instrumentation may cost
// wall clock, never simulation correctness.
func TimelineOverhead(c Table1Config) (off, on Table1Row, err error) {
	plain := c
	plain.Timeline = false
	if off, err = Remote(plain, proto.LevelWord); err != nil {
		return off, on, err
	}
	instr := c
	instr.Timeline = true
	if on, err = Remote(instr, proto.LevelWord); err != nil {
		return off, on, err
	}
	off.Location, on.Location = "remote", "remote+timeline"
	if on.Virt != off.Virt {
		return off, on, fmt.Errorf("timeline-overhead: virtual time diverged: off %v, on %v", off.Virt, on.Virt)
	}
	if on.Drives != off.Drives {
		return off, on, fmt.Errorf("timeline-overhead: link drives diverged: off %d, on %d", off.Drives, on.Drives)
	}
	return off, on, nil
}
