package experiments

import (
	"fmt"
	"testing"
	"time"

	pia "repro"
	"repro/internal/snapshot"
)

func TestSnapshotChainStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for iter := 0; iter < 60; iter++ {
		n := 2
		b := pia.NewSystem("snapchain")
		src := &burster{Count: 50, Period: 20}
		b.AddComponent("c0", sub(0), src, "out")
		fw := &forwarder{}
		b.AddComponent("c1", sub(1), fw, "in", "out")
		b.AddNet("w0", 0, "c0.out", "c1.in")
		term := &sink{}
		b.AddComponent("end", sub(1), term, "in")
		b.AddNet("wend", 0, "c1.out", "end.in")
		b.SetDefaultChannel(pia.Conservative, pia.LinkModel{Latency: 5, PerMessage: 1})
		sim, err := b.BuildLocal()
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range sim.SubsystemNames() {
			sim.Agents[name].OnComplete = func(s *snapshot.Snapshot) {}
		}
		sim.Agents[sub(0)].Initiate()
		done := make(chan error, 1)
		go func() { done <- sim.Run(pia.Time(pia.Milliseconds(10))) }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			sim.Close()
		case <-time.After(3 * time.Second):
			for _, name := range sim.SubsystemNames() {
				s := sim.Subsystem(name)
				now, key := s.PublishedTimes()
				fmt.Printf("%s now=%v key=%v\n", name, now, key)
				for _, ep := range sim.Hubs[name].Endpoints() {
					fmt.Println("  ", ep.DebugState())
				}
			}
			t.Fatalf("iter %d hung", iter)
		}
		_ = n
	}
}
