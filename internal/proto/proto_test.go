package proto

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/vtime"
)

// pipe runs one transfer at the given level through a subsystem and
// returns the received payload and the receiver's completion time.
func pipe(t *testing.T, payload []byte, level string, cfg Config) ([]byte, vtime.Time, int) {
	t.Helper()
	s := core.NewSubsystem("p")
	drives := 0
	tx := core.BehaviorFunc(func(p *core.Proc) error {
		drives = SendMessage(p, "out", payload, level, cfg)
		return nil
	})
	var got []byte
	var at vtime.Time
	rx := core.BehaviorFunc(func(p *core.Proc) error {
		a := NewAssembler()
		msg, ok, err := ReceiveMessage(p, "in", a)
		if err != nil {
			return err
		}
		if ok {
			got = msg
			at = p.Time()
		}
		return nil
	})
	tc, _ := s.NewComponent("tx", tx)
	tc.AddPort("out")
	rc, _ := s.NewComponent("rx", rx)
	rc.AddPort("in")
	n, _ := s.NewNet("w", 1)
	s.Connect(n, tc.Port("out"), rc.Port("in"))
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	return got, at, drives
}

func TestRoundTripAllLevels(t *testing.T) {
	payload := make([]byte, 3000)
	rng := rand.New(rand.NewSource(42))
	rng.Read(payload)
	for _, level := range []string{LevelHardware, LevelWord, LevelPacket} {
		got, _, drives := pipe(t, payload, level, DefaultConfig)
		if !bytes.Equal(got, payload) {
			t.Fatalf("%s: payload corrupted (%d vs %d bytes)", level, len(got), len(payload))
		}
		if want := Drives(len(payload), level, DefaultConfig); drives != want {
			t.Fatalf("%s: %d drives, Drives() predicts %d", level, drives, want)
		}
	}
}

func TestLevelsOrderedByCost(t *testing.T) {
	payload := make([]byte, 4096)
	_, tHW, dHW := pipe(t, payload, LevelHardware, DefaultConfig)
	_, tW, dW := pipe(t, payload, LevelWord, DefaultConfig)
	_, tP, dP := pipe(t, payload, LevelPacket, DefaultConfig)
	if !(dHW > dW && dW > dP) {
		t.Fatalf("drive counts not ordered: hw=%d word=%d packet=%d", dHW, dW, dP)
	}
	if !(tHW > tW && tW > tP) {
		t.Fatalf("virtual times not ordered: hw=%v word=%v packet=%v", tHW, tW, tP)
	}
}

func TestOddLengths(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 1023, 1024, 1025, 2048} {
		payload := bytes.Repeat([]byte{0xA5}, n)
		for _, level := range []string{LevelHardware, LevelWord, LevelPacket} {
			got, _, _ := pipe(t, payload, level, DefaultConfig)
			if !bytes.Equal(got, payload) {
				t.Fatalf("%s with %d bytes: corrupted", level, n)
			}
		}
	}
}

func TestUnknownLevelFallsBackToPacket(t *testing.T) {
	payload := bytes.Repeat([]byte{1}, 100)
	got, _, drives := pipe(t, payload, "strangeLevel", DefaultConfig)
	if !bytes.Equal(got, payload) {
		t.Fatal("fallback level corrupted payload")
	}
	if drives != 1 {
		t.Fatalf("fallback drives = %d, want 1 packet", drives)
	}
}

func TestAssemblerErrors(t *testing.T) {
	a := NewAssembler()
	// Word without header.
	if _, _, err := a.Feed(wordOf(1)); err == nil {
		t.Fatal("word without header accepted")
	}
	a.Reset()
	// Header inside a transfer.
	if _, _, err := a.Feed(lenCtl(8)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Feed(lenCtl(8)); err == nil {
		t.Fatal("nested header accepted")
	}
	a.Reset()
	// Frame inside a word transfer.
	if _, _, err := a.Feed(lenCtl(8)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Feed(frameOf([]byte{1}, true)); err == nil {
		t.Fatal("frame inside word transfer accepted")
	}
}

func TestAssemblerIgnoresForeignValues(t *testing.T) {
	a := NewAssembler()
	if _, done, err := a.Feed(42); err != nil || done {
		t.Fatal("foreign value disturbed the assembler")
	}
	if _, done, err := a.Feed(ctlOf("other", 3)); err != nil || done {
		t.Fatal("foreign control disturbed the assembler")
	}
}

func TestBarePacketIsComplete(t *testing.T) {
	a := NewAssembler()
	payload, done, err := a.Feed(packetOf([]byte{9, 8, 7}))
	if err != nil || !done || !bytes.Equal(payload, []byte{9, 8, 7}) {
		t.Fatalf("bare packet: %v %v %v", payload, done, err)
	}
	if a.Messages != 1 {
		t.Fatal("message counter wrong")
	}
}

// Property: Drives is monotone in payload length at every level.
func TestDrivesMonotoneProperty(t *testing.T) {
	f := func(n uint16, extra uint8) bool {
		for _, level := range []string{LevelHardware, LevelWord, LevelPacket} {
			if Drives(int(n)+int(extra), level, DefaultConfig) < Drives(int(n), level, DefaultConfig) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
