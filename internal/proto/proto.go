// Package proto is Pia's library of standard communication
// protocols, each with several built-in detail levels. A single
// logical action — "move this message to the peer" — has one
// implementation per level:
//
//   - LevelHardware renders the transfer as individual bus cycles
//     (one per byte), the most detailed and most expensive view;
//   - LevelWord passes four-byte words, the paper's "word passage"
//     transfer mode;
//   - LevelPacket passes 1 KB packets, the paper's "packet passage".
//
// Behaviours pick the implementation by consulting their component's
// current runlevel at each transfer — a safe point, since the
// interface state is idle between transfers. That is what lets the
// detail engine (package detail) retarget a running simulation.
package proto

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/signal"
	"repro/internal/vtime"
)

// Detail levels understood by the library. Components may define
// additional private levels; unknown levels fall back to
// LevelPacket.
const (
	LevelHardware = "hardwareLevel"
	LevelWord     = "wordLevel"
	LevelPacket   = "packetLevel"
)

// Config carries the per-unit costs a transfer charges against the
// sender's local time, modelling the work the real interface does.
type Config struct {
	PerByte   vtime.Duration // hardware level: cost per bus cycle
	PerWord   vtime.Duration // word level: cost per 4-byte word
	PerPacket vtime.Duration // packet level: cost per packet
	PacketLen int            // payload bytes per packet (default 1024)
}

// DefaultConfig matches the paper's experiment: 4-byte words, 1 KB
// packets.
var DefaultConfig = Config{
	PerByte:   400 * vtime.Nanosecond,
	PerWord:   800 * vtime.Nanosecond,
	PerPacket: 20 * vtime.Microsecond,
	PacketLen: 1024,
}

func (c Config) packetLen() int {
	if c.PacketLen <= 0 {
		return 1024
	}
	return c.PacketLen
}

// SendMessage transfers payload over the net attached to port, using
// the implementation selected by level. The transfer is framed so
// that an Assembler on the receiving side can reconstruct it at any
// level: a length header precedes word- and hardware-level streams,
// and packet-level transfers use signal.Frame with a Last marker.
// It returns the number of net drives performed.
func SendMessage(p *core.Proc, port string, payload []byte, level string, cfg Config) int {
	switch level {
	case LevelHardware:
		return sendBytes(p, port, payload, cfg)
	case LevelWord:
		return sendWords(p, port, payload, cfg)
	default:
		return sendPackets(p, port, payload, cfg)
	}
}

// sendBytes renders the transfer as one bus cycle per byte.
func sendBytes(p *core.Proc, port string, payload []byte, cfg Config) int {
	p.Send(port, signal.Control{Op: "len", Arg: int64(len(payload))})
	n := 1
	for i, b := range payload {
		p.Advance(cfg.PerByte)
		p.Send(port, signal.BusCycle{Addr: uint32(i), Data: signal.Word(b), Write: true})
		n++
	}
	return n
}

// sendWords passes individual four-byte words across the net.
func sendWords(p *core.Proc, port string, payload []byte, cfg Config) int {
	p.Send(port, signal.Control{Op: "len", Arg: int64(len(payload))})
	n := 1
	for i := 0; i < len(payload); i += 4 {
		var w [4]byte
		copy(w[:], payload[i:])
		p.Advance(cfg.PerWord)
		p.Send(port, signal.Word(binary.LittleEndian.Uint32(w[:])))
		n++
	}
	return n
}

// sendPackets sends the data in packets (default 1 KB).
func sendPackets(p *core.Proc, port string, payload []byte, cfg Config) int {
	plen := cfg.packetLen()
	n := 0
	if len(payload) == 0 {
		p.Advance(cfg.PerPacket)
		p.Send(port, signal.Frame{Seq: 0, Last: true})
		return 1
	}
	seq := uint32(0)
	for off := 0; off < len(payload); off += plen {
		end := off + plen
		if end > len(payload) {
			end = len(payload)
		}
		chunk := make([]byte, end-off)
		copy(chunk, payload[off:end])
		p.Advance(cfg.PerPacket)
		p.Send(port, signal.Frame{Seq: seq, Payload: chunk, Last: end == len(payload)})
		seq++
		n++
	}
	return n
}

// Assembler reconstructs messages from transfers at any detail
// level. Feed it every message received on the data port; when a
// complete payload is available it is returned with done=true.
type Assembler struct {
	buf      []byte
	expected int64 // -1: idle, >=0: word/byte stream in progress
	inFrame  bool

	// Messages counts completed payloads (diagnostics).
	Messages int64
}

// NewAssembler creates an idle assembler.
func NewAssembler() *Assembler { return &Assembler{expected: -1} }

// Feed consumes one received value. It returns the completed payload
// once the transfer finishes.
func (a *Assembler) Feed(v any) ([]byte, bool, error) {
	switch x := v.(type) {
	case signal.Control:
		if x.Op != "len" {
			return nil, false, nil // other control traffic is not ours
		}
		if a.expected >= 0 || a.inFrame {
			return nil, false, fmt.Errorf("proto: length header inside a transfer")
		}
		a.expected = x.Arg
		a.buf = a.buf[:0]
		if a.expected == 0 {
			return a.finish()
		}
		return nil, false, nil
	case signal.BusCycle:
		if a.expected < 0 {
			return nil, false, fmt.Errorf("proto: bus cycle without length header")
		}
		if !x.Write {
			return nil, false, nil
		}
		a.buf = append(a.buf, byte(x.Data))
		if int64(len(a.buf)) >= a.expected {
			return a.finish()
		}
		return nil, false, nil
	case signal.Word:
		if a.expected < 0 {
			return nil, false, fmt.Errorf("proto: word without length header")
		}
		var w [4]byte
		binary.LittleEndian.PutUint32(w[:], uint32(x))
		need := a.expected - int64(len(a.buf))
		if need > 4 {
			need = 4
		}
		a.buf = append(a.buf, w[:need]...)
		if int64(len(a.buf)) >= a.expected {
			return a.finish()
		}
		return nil, false, nil
	case signal.Frame:
		if a.expected >= 0 {
			return nil, false, fmt.Errorf("proto: frame inside a word/byte transfer")
		}
		a.inFrame = true
		a.buf = append(a.buf, x.Payload...)
		if x.Last {
			return a.finish()
		}
		return nil, false, nil
	case signal.Packet:
		// A bare packet is a complete message.
		a.Messages++
		out := make([]byte, len(x))
		copy(out, x)
		return out, true, nil
	default:
		return nil, false, nil
	}
}

func (a *Assembler) finish() ([]byte, bool, error) {
	out := make([]byte, len(a.buf))
	copy(out, a.buf)
	a.buf = a.buf[:0]
	a.expected = -1
	a.inFrame = false
	a.Messages++
	return out, true, nil
}

// Reset drops any partial transfer (used after a rollback when the
// assembler is not part of saved state).
func (a *Assembler) Reset() {
	a.buf = a.buf[:0]
	a.expected = -1
	a.inFrame = false
}

// ReceiveMessage blocks on the port until one complete message has
// been assembled, at whatever detail level the sender used. It
// returns ok=false if the simulation ends first.
func ReceiveMessage(p *core.Proc, port string, a *Assembler) ([]byte, bool, error) {
	for {
		m, ok := p.Recv(port)
		if !ok {
			return nil, false, nil
		}
		payload, done, err := a.Feed(m.Value)
		if err != nil {
			return nil, false, err
		}
		if done {
			return payload, true, nil
		}
	}
}

// Drives estimates the number of net drives a payload costs at a
// level — the quantity the remote experiments count, since each
// drive becomes one channel message.
func Drives(payloadLen int, level string, cfg Config) int {
	switch level {
	case LevelHardware:
		return 1 + payloadLen
	case LevelWord:
		return 1 + (payloadLen+3)/4
	default:
		n := (payloadLen + cfg.packetLen() - 1) / cfg.packetLen()
		if n == 0 {
			n = 1
		}
		return n
	}
}
