package proto

import "repro/internal/signal"

func wordOf(v uint32) signal.Word             { return signal.Word(v) }
func lenCtl(n int64) signal.Control           { return signal.Control{Op: "len", Arg: n} }
func ctlOf(op string, n int64) signal.Control { return signal.Control{Op: op, Arg: n} }
func packetOf(b []byte) signal.Packet         { return signal.Packet(b) }
func frameOf(b []byte, last bool) signal.Frame {
	return signal.Frame{Payload: b, Last: last}
}
