// Package event provides timestamped simulation events and the
// deterministic priority queue the Pia subsystem scheduler is built
// on.
//
// Every observable action in a Pia simulation — a net changing value,
// a timer firing, a message crossing a channel — is an Event. Events
// are ordered by (Time, Seq): the sequence number is assigned at
// enqueue time, so two events scheduled for the same instant are
// delivered in the order they were produced. That tie-break is what
// makes whole-simulation runs reproducible bit-for-bit.
//
// The queue is laid out struct-of-arrays: the heap itself is three
// parallel columns — times, seqs and row indices — while the bulky
// routing/payload fields live in a separate row store addressed by
// the index column. Ordering operations (NextTime, the scheduler's
// safe-horizon key scan, drains) touch only the contiguous time/seq
// columns; heap swaps move 20 bytes instead of whole events; and the
// row store recycles slots through a free list, so steady-state
// traffic allocates nothing. Events move in and out of the queue by
// value — there is no per-event heap object to pool or leak.
package event

import (
	"fmt"

	"repro/internal/vtime"
)

// Kind classifies an event for dispatch.
type Kind uint8

const (
	// KindNet is a value change on a net, destined for every port
	// connected to the net other than the driver.
	KindNet Kind = iota
	// KindTimer is a component-requested wakeup.
	KindTimer
	// KindControl is a scheduler-internal control action (runlevel
	// switch, checkpoint request, ...) executed at a point in virtual
	// time.
	KindControl
)

func (k Kind) String() string {
	switch k {
	case KindNet:
		return "net"
	case KindTimer:
		return "timer"
	case KindControl:
		return "control"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is a single scheduled occurrence. Events are plain values:
// they are copied into the queue on Push and copied back out on Pop.
type Event struct {
	Time vtime.Time // when the event takes effect
	Seq  uint64     // enqueue order, breaks Time ties
	Kind Kind

	// Target routing. For KindNet events, Net names the net whose
	// value changed and Component/Port name one receiving port (the
	// scheduler fans a net change out to one Event per listener).
	// For KindTimer, Component names the sleeper.
	Component string
	Port      string
	Net       string

	// Value is the payload (a signal value for net events, nil for
	// timers). It must be gob-encodable when the event crosses a
	// node boundary.
	Value any

	// Source identifies the component that produced the event;
	// empty for external injections.
	Source string

	// Exec is an optional control action for KindControl events.
	// Never serialized.
	Exec func() `json:"-"`
}

// Before reports whether e is ordered strictly before f.
func (e Event) Before(f Event) bool {
	if e.Time != f.Time {
		return e.Time < f.Time
	}
	return e.Seq < f.Seq
}

// String renders a compact description for traces.
func (e Event) String() string {
	switch e.Kind {
	case KindNet:
		return fmt.Sprintf("@%v net %s -> %s.%s = %v", e.Time, e.Net, e.Component, e.Port, e.Value)
	case KindTimer:
		return fmt.Sprintf("@%v timer %s", e.Time, e.Component)
	default:
		return fmt.Sprintf("@%v %s", e.Time, e.Kind)
	}
}

// payload is the row-store half of an event: everything except the
// (Time, Seq) ordering key, which lives in the heap columns.
type payload struct {
	kind      Kind
	component string
	port      string
	net       string
	source    string
	value     any
	exec      func()
}

// Queue is a priority queue of events ordered by (Time, Seq).
// The zero value is ready to use. Queue is not safe for concurrent
// use; the subsystem scheduler owns it.
type Queue struct {
	// Heap columns, parallel by heap position.
	times []vtime.Time
	seqs  []uint64
	rows  []int32 // index into store

	// Row store plus free list of recycled slots.
	store []payload
	free  []int32

	seq uint64
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.times) }

func (q *Queue) less(i, j int) bool {
	if q.times[i] != q.times[j] {
		return q.times[i] < q.times[j]
	}
	return q.seqs[i] < q.seqs[j]
}

func (q *Queue) swap(i, j int) {
	q.times[i], q.times[j] = q.times[j], q.times[i]
	q.seqs[i], q.seqs[j] = q.seqs[j], q.seqs[i]
	q.rows[i], q.rows[j] = q.rows[j], q.rows[i]
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.times)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && q.less(r, l) {
			m = r
		}
		if !q.less(m, i) {
			return
		}
		q.swap(i, m)
		i = m
	}
}

// alloc claims a row slot and fills it from e.
func (q *Queue) alloc(e *Event) int32 {
	var slot int32
	if n := len(q.free); n > 0 {
		slot = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		q.store = append(q.store, payload{})
		slot = int32(len(q.store) - 1)
	}
	q.store[slot] = payload{
		kind:      e.Kind,
		component: e.Component,
		port:      e.Port,
		net:       e.Net,
		source:    e.Source,
		value:     e.Value,
		exec:      e.Exec,
	}
	return slot
}

func (q *Queue) pushCols(t vtime.Time, seq uint64, slot int32) {
	q.times = append(q.times, t)
	q.seqs = append(q.seqs, seq)
	q.rows = append(q.rows, slot)
	q.up(len(q.times) - 1)
}

// Push schedules an event, stamping it with the next sequence number,
// which it returns.
func (q *Queue) Push(e Event) uint64 {
	q.seq++
	q.pushCols(e.Time, q.seq, q.alloc(&e))
	return q.seq
}

// PushStamped schedules an event that already carries a sequence
// number (used when replaying events captured in a snapshot, so the
// original ordering is preserved).
func (q *Queue) PushStamped(e Event) {
	if e.Seq > q.seq {
		q.seq = e.Seq
	}
	q.pushCols(e.Time, e.Seq, q.alloc(&e))
}

// eventAt materializes the event at heap position i without removing
// it.
func (q *Queue) eventAt(i int) Event {
	p := &q.store[q.rows[i]]
	return Event{
		Time:      q.times[i],
		Seq:       q.seqs[i],
		Kind:      p.kind,
		Component: p.component,
		Port:      p.port,
		Net:       p.net,
		Source:    p.source,
		Value:     p.value,
		Exec:      p.exec,
	}
}

// Peek returns the earliest event without removing it; ok is false
// when the queue is empty.
func (q *Queue) Peek() (e Event, ok bool) {
	if len(q.times) == 0 {
		return Event{}, false
	}
	return q.eventAt(0), true
}

// removeAt extracts the event at heap position i, restores heap order
// and recycles its row slot.
func (q *Queue) removeAt(i int) Event {
	e := q.eventAt(i)
	slot := q.rows[i]
	n := len(q.times) - 1
	q.swap(i, n)
	q.times = q.times[:n]
	q.seqs = q.seqs[:n]
	q.rows = q.rows[:n]
	if i < n {
		q.down(i)
		q.up(i)
	}
	q.store[slot] = payload{} // drop value/closure references
	q.free = append(q.free, slot)
	return e
}

// Pop removes and returns the earliest event; ok is false when empty.
func (q *Queue) Pop() (e Event, ok bool) {
	if len(q.times) == 0 {
		return Event{}, false
	}
	return q.removeAt(0), true
}

// NextTime returns the time of the earliest pending event, or
// vtime.Infinity when the queue is empty. It reads only the head of
// the time column — the safe-horizon scan's fast path.
func (q *Queue) NextTime() vtime.Time {
	if len(q.times) == 0 {
		return vtime.Infinity
	}
	return q.times[0]
}

// MinMatching returns the earliest event whose Port is in ports,
// without removing it. It scans the columns linearly: the (Time, Seq)
// pair is a total order, so the minimum over matches is exactly the
// event a sorted walk would find first. Used by filtered receives.
func (q *Queue) MinMatching(ports map[string]bool) (e Event, ok bool) {
	best := -1
	for i := range q.times {
		if !ports[q.store[q.rows[i]].port] {
			continue
		}
		if best < 0 || q.less(i, best) {
			best = i
		}
	}
	if best < 0 {
		return Event{}, false
	}
	return q.eventAt(best), true
}

// PopMatching removes and returns the earliest event whose Port is in
// ports; ok is false when none match.
func (q *Queue) PopMatching(ports map[string]bool) (e Event, ok bool) {
	best := -1
	for i := range q.times {
		if !ports[q.store[q.rows[i]].port] {
			continue
		}
		if best < 0 || q.less(i, best) {
			best = i
		}
	}
	if best < 0 {
		return Event{}, false
	}
	return q.removeAt(best), true
}

// Drain removes and returns all events with Time <= t, in order. It
// allocates a fresh slice per call; hot paths should use DrainInto
// with a reused scratch buffer instead.
func (q *Queue) Drain(t vtime.Time) []Event {
	return q.DrainInto(t, nil)
}

// DrainInto removes all events with Time <= t, in order, appending
// them to buf[:0] and returning it (grown as needed). Passing the
// returned slice back in on the next call makes the drive-fanout
// drain allocation-free in steady state.
func (q *Queue) DrainInto(t vtime.Time, buf []Event) []Event {
	buf = buf[:0]
	for len(q.times) > 0 && q.times[0] <= t {
		buf = append(buf, q.removeAt(0))
	}
	return buf
}

// PopBatch removes up to max events (all of them when max <= 0) with
// Time <= t, appending into buf[:0] like DrainInto. It lets a caller
// bound how much work one drain may claim.
func (q *Queue) PopBatch(t vtime.Time, max int, buf []Event) []Event {
	buf = buf[:0]
	for len(q.times) > 0 && q.times[0] <= t {
		if max > 0 && len(buf) >= max {
			break
		}
		buf = append(buf, q.removeAt(0))
	}
	return buf
}

// Snapshot returns the pending events in delivery order without
// disturbing the queue. Used by the checkpoint machinery.
func (q *Queue) Snapshot() []Event {
	n := len(q.times)
	if n == 0 {
		return nil
	}
	// Copy the heap columns and pop the copy down; the row store is
	// only read.
	tmp := Queue{
		times: append([]vtime.Time(nil), q.times...),
		seqs:  append([]uint64(nil), q.seqs...),
		rows:  append([]int32(nil), q.rows...),
		store: q.store,
	}
	out := make([]Event, 0, n)
	for len(tmp.times) > 0 {
		out = append(out, tmp.eventAt(0))
		m := len(tmp.times) - 1
		tmp.swap(0, m)
		tmp.times, tmp.seqs, tmp.rows = tmp.times[:m], tmp.seqs[:m], tmp.rows[:m]
		tmp.down(0)
	}
	return out
}

// DiscardAfter removes every pending event with Time > t and returns
// how many were removed. Used on rollback: events from the discarded
// future must not survive the restore.
//
// The dominant rollback case is a queue whose pending events all sit
// at or before the restore point (the speculated future was consumed,
// not scheduled), so the first pass is a pure read over the times
// column that touches nothing and skips the re-heapify entirely when
// there is nothing to remove. The opposite extreme — everything is in
// the discarded future — truncates the columns wholesale without the
// compaction walk. Only a genuinely mixed queue pays for compaction
// plus re-heapify.
func (q *Queue) DiscardAfter(t vtime.Time) int {
	doomed := 0
	for i := 0; i < len(q.times); i++ {
		if q.times[i] > t {
			doomed++
		}
	}
	if doomed == 0 {
		return 0
	}
	if doomed == len(q.times) {
		for i := 0; i < len(q.rows); i++ {
			slot := q.rows[i]
			q.store[slot] = payload{}
			q.free = append(q.free, slot)
		}
		q.times, q.seqs, q.rows = q.times[:0], q.seqs[:0], q.rows[:0]
		return doomed
	}
	kept := 0
	for i := 0; i < len(q.times); i++ {
		if q.times[i] > t {
			slot := q.rows[i]
			q.store[slot] = payload{}
			q.free = append(q.free, slot)
			continue
		}
		q.times[kept], q.seqs[kept], q.rows[kept] = q.times[i], q.seqs[i], q.rows[i]
		kept++
	}
	q.times, q.seqs, q.rows = q.times[:kept], q.seqs[:kept], q.rows[:kept]
	// Re-heapify the surviving columns.
	for i := kept/2 - 1; i >= 0; i-- {
		q.down(i)
	}
	return doomed
}

// Reset empties the queue but keeps the sequence counter monotone, so
// new events still order after everything ever scheduled.
func (q *Queue) Reset() {
	for i := range q.store {
		q.store[i] = payload{}
	}
	q.times = q.times[:0]
	q.seqs = q.seqs[:0]
	q.rows = q.rows[:0]
	q.free = q.free[:0]
	q.store = q.store[:0]
}
