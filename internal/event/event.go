// Package event provides timestamped simulation events and the
// deterministic priority queue the Pia subsystem scheduler is built
// on.
//
// Every observable action in a Pia simulation — a net changing value,
// a timer firing, a message crossing a channel — is an Event. Events
// are ordered by (Time, Seq): the sequence number is assigned at
// enqueue time, so two events scheduled for the same instant are
// delivered in the order they were produced. That tie-break is what
// makes whole-simulation runs reproducible bit-for-bit.
package event

import (
	"container/heap"
	"fmt"

	"repro/internal/vtime"
)

// Kind classifies an event for dispatch.
type Kind uint8

const (
	// KindNet is a value change on a net, destined for every port
	// connected to the net other than the driver.
	KindNet Kind = iota
	// KindTimer is a component-requested wakeup.
	KindTimer
	// KindControl is a scheduler-internal control action (runlevel
	// switch, checkpoint request, ...) executed at a point in virtual
	// time.
	KindControl
)

func (k Kind) String() string {
	switch k {
	case KindNet:
		return "net"
	case KindTimer:
		return "timer"
	case KindControl:
		return "control"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is a single scheduled occurrence.
type Event struct {
	Time vtime.Time // when the event takes effect
	Seq  uint64     // enqueue order, breaks Time ties
	Kind Kind

	// Target routing. For KindNet events, Net names the net whose
	// value changed and Component/Port name one receiving port (the
	// scheduler fans a net change out to one Event per listener).
	// For KindTimer, Component names the sleeper.
	Component string
	Port      string
	Net       string

	// Value is the payload (a signal value for net events, nil for
	// timers). It must be gob-encodable when the event crosses a
	// node boundary.
	Value any

	// Source identifies the component that produced the event;
	// empty for external injections.
	Source string

	// Exec is an optional control action for KindControl events.
	// Never serialized.
	Exec func() `json:"-"`
}

// Before reports whether e is ordered strictly before f.
func (e *Event) Before(f *Event) bool {
	if e.Time != f.Time {
		return e.Time < f.Time
	}
	return e.Seq < f.Seq
}

// String renders a compact description for traces.
func (e *Event) String() string {
	switch e.Kind {
	case KindNet:
		return fmt.Sprintf("@%v net %s -> %s.%s = %v", e.Time, e.Net, e.Component, e.Port, e.Value)
	case KindTimer:
		return fmt.Sprintf("@%v timer %s", e.Time, e.Component)
	default:
		return fmt.Sprintf("@%v %s", e.Time, e.Kind)
	}
}

// Queue is a priority queue of events ordered by (Time, Seq).
// The zero value is ready to use. Queue is not safe for concurrent
// use; the subsystem scheduler owns it.
type Queue struct {
	h   eventHeap
	seq uint64
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Push schedules an event, stamping it with the next sequence number.
// It returns the stamped event (the same pointer).
func (q *Queue) Push(e *Event) *Event {
	q.seq++
	e.Seq = q.seq
	heap.Push(&q.h, e)
	return e
}

// PushStamped schedules an event that already carries a sequence
// number (used when replaying events captured in a snapshot, so the
// original ordering is preserved).
func (q *Queue) PushStamped(e *Event) {
	if e.Seq > q.seq {
		q.seq = e.Seq
	}
	heap.Push(&q.h, e)
}

// Peek returns the earliest event without removing it, or nil when the
// queue is empty.
func (q *Queue) Peek() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// Pop removes and returns the earliest event, or nil when empty.
func (q *Queue) Pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Event)
}

// NextTime returns the time of the earliest pending event, or
// vtime.Infinity when the queue is empty.
func (q *Queue) NextTime() vtime.Time {
	if len(q.h) == 0 {
		return vtime.Infinity
	}
	return q.h[0].Time
}

// Drain removes and returns all events with Time <= t, in order. It
// allocates a fresh slice per call; hot paths should use DrainInto
// with a reused scratch buffer instead.
func (q *Queue) Drain(t vtime.Time) []*Event {
	return q.DrainInto(t, nil)
}

// DrainInto removes all events with Time <= t, in order, appending
// them to buf[:0] and returning it (grown as needed). Passing the
// returned slice back in on the next call makes the drive-fanout
// drain allocation-free in steady state; the caller owns the events
// and is expected to hand them back to the pool via Put once
// consumed.
func (q *Queue) DrainInto(t vtime.Time, buf []*Event) []*Event {
	buf = buf[:0]
	for len(q.h) > 0 && q.h[0].Time <= t {
		buf = append(buf, heap.Pop(&q.h).(*Event))
	}
	return buf
}

// PopBatch removes up to max events (all of them when max <= 0) with
// Time <= t, appending into buf[:0] like DrainInto. It lets a caller
// bound how much work one drain may claim.
func (q *Queue) PopBatch(t vtime.Time, max int, buf []*Event) []*Event {
	buf = buf[:0]
	for len(q.h) > 0 && q.h[0].Time <= t {
		if max > 0 && len(buf) >= max {
			break
		}
		buf = append(buf, heap.Pop(&q.h).(*Event))
	}
	return buf
}

// Snapshot returns the pending events in delivery order without
// disturbing the queue. Used by the checkpoint machinery.
func (q *Queue) Snapshot() []*Event {
	tmp := make(eventHeap, len(q.h))
	copy(tmp, q.h)
	out := make([]*Event, 0, len(tmp))
	for len(tmp) > 0 {
		out = append(out, heap.Pop(&tmp).(*Event))
	}
	return out
}

// DiscardAfter removes every pending event with Time > t and returns
// how many were removed. Used on rollback: events from the discarded
// future must not survive the restore.
func (q *Queue) DiscardAfter(t vtime.Time) int {
	kept := q.h[:0]
	removed := 0
	for _, e := range q.h {
		if e.Time > t {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	q.h = kept
	heap.Init(&q.h)
	return removed
}

// Reset empties the queue but keeps the sequence counter monotone, so
// new events still order after everything ever scheduled.
func (q *Queue) Reset() { q.h = q.h[:0] }

type eventHeap []*Event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].Before(h[j]) }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*Event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
