package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/vtime"
)

func mustPop(t *testing.T, q *Queue) Event {
	t.Helper()
	e, ok := q.Pop()
	if !ok {
		t.Fatal("Pop on empty queue")
	}
	return e
}

func TestQueueOrdering(t *testing.T) {
	var q Queue
	q.Push(Event{Time: 30})
	q.Push(Event{Time: 10})
	q.Push(Event{Time: 20})
	var got []vtime.Time
	for q.Len() > 0 {
		got = append(got, mustPop(t, &q).Time)
	}
	want := []vtime.Time{10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestQueueFIFOWithinSameTime(t *testing.T) {
	var q Queue
	for i := 0; i < 5; i++ {
		q.Push(Event{Time: 7, Component: string(rune('a' + i))})
	}
	for i := 0; i < 5; i++ {
		e := mustPop(t, &q)
		if e.Component != string(rune('a'+i)) {
			t.Fatalf("tie-break broken: got %q at position %d", e.Component, i)
		}
	}
}

func TestPeekAndNextTime(t *testing.T) {
	var q Queue
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue should report !ok")
	}
	if q.NextTime() != vtime.Infinity {
		t.Fatal("NextTime on empty queue should be Infinity")
	}
	q.Push(Event{Time: 42})
	head, ok := q.Peek()
	if !ok || head.Time != 42 || q.NextTime() != 42 {
		t.Fatal("Peek/NextTime disagree with contents")
	}
	if q.Len() != 1 {
		t.Fatal("Peek must not remove")
	}
}

func TestPopEmpty(t *testing.T) {
	var q Queue
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue should report !ok")
	}
}

func TestDrain(t *testing.T) {
	var q Queue
	for _, ts := range []vtime.Time{5, 1, 9, 3, 7} {
		q.Push(Event{Time: ts})
	}
	got := q.Drain(5)
	if len(got) != 3 {
		t.Fatalf("Drain(5) returned %d events, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Before(got[i-1]) {
			t.Fatal("Drain output not ordered")
		}
	}
	if q.Len() != 2 {
		t.Fatalf("queue left with %d events, want 2", q.Len())
	}
}

func TestDiscardAfter(t *testing.T) {
	var q Queue
	for _, ts := range []vtime.Time{5, 1, 9, 3, 7} {
		q.Push(Event{Time: ts})
	}
	n := q.DiscardAfter(5)
	if n != 2 {
		t.Fatalf("DiscardAfter removed %d, want 2", n)
	}
	var rest []vtime.Time
	for q.Len() > 0 {
		rest = append(rest, mustPop(t, &q).Time)
	}
	want := []vtime.Time{1, 3, 5}
	for i := range want {
		if rest[i] != want[i] {
			t.Fatalf("after discard: %v, want %v", rest, want)
		}
	}
}

func TestDiscardAfterFastPaths(t *testing.T) {
	// Zero-removal: nothing after t, the queue must be untouched and
	// still pop in order.
	var q Queue
	for _, ts := range []vtime.Time{5, 1, 9, 3, 7} {
		q.Push(Event{Time: ts})
	}
	if n := q.DiscardAfter(9); n != 0 {
		t.Fatalf("DiscardAfter(9) removed %d, want 0", n)
	}
	if q.Len() != 5 {
		t.Fatalf("zero-removal path shrank the queue: len %d", q.Len())
	}

	// Remove-all: everything after t, wholesale truncation, and the
	// freed rows must be reusable.
	if n := q.DiscardAfter(0); n != 5 {
		t.Fatalf("DiscardAfter(0) removed %d, want 5", n)
	}
	if q.Len() != 0 {
		t.Fatalf("remove-all left %d events", q.Len())
	}
	q.Push(Event{Time: 2})
	q.Push(Event{Time: 4})
	if got := mustPop(t, &q).Time; got != 2 {
		t.Fatalf("after remove-all reuse: popped %v, want 2", got)
	}

	// Mixed, with sequence order preserved among equal times.
	q.Reset()
	a := q.Push(Event{Time: 3, Port: "a"})
	b := q.Push(Event{Time: 3, Port: "b"})
	q.Push(Event{Time: 8})
	if n := q.DiscardAfter(3); n != 1 {
		t.Fatalf("mixed discard removed %d, want 1", n)
	}
	e1, e2 := mustPop(t, &q), mustPop(t, &q)
	if e1.Seq != a || e2.Seq != b {
		t.Fatalf("mixed discard broke seq order: %d,%d want %d,%d", e1.Seq, e2.Seq, a, b)
	}
}

func TestSnapshotDoesNotDisturb(t *testing.T) {
	var q Queue
	for _, ts := range []vtime.Time{5, 1, 9} {
		q.Push(Event{Time: ts})
	}
	snap := q.Snapshot()
	if len(snap) != 3 || snap[0].Time != 1 || snap[1].Time != 5 || snap[2].Time != 9 {
		t.Fatalf("snapshot wrong: %v", snap)
	}
	head, ok := q.Peek()
	if q.Len() != 3 || !ok || head.Time != 1 {
		t.Fatal("Snapshot disturbed the queue")
	}
}

func TestPushStampedPreservesOrder(t *testing.T) {
	var q Queue
	a := Event{Time: 4, Component: "a"}
	b := Event{Time: 4, Component: "b"}
	a.Seq = q.Push(a)
	b.Seq = q.Push(b)
	// Simulate replay into a fresh queue.
	var r Queue
	r.PushStamped(b)
	r.PushStamped(a)
	if e := mustPop(t, &r); e.Seq != a.Seq || e.Component != "a" {
		t.Fatal("PushStamped lost original ordering")
	}
	if e := mustPop(t, &r); e.Seq != b.Seq || e.Component != "b" {
		t.Fatal("PushStamped lost original ordering")
	}
	// New pushes must order after replayed ones at the same time.
	var s Queue
	s.PushStamped(b)
	if cSeq := s.Push(Event{Time: 4}); cSeq <= b.Seq {
		t.Fatal("sequence counter not kept monotone across PushStamped")
	}
}

func TestMinMatchingAndPopMatching(t *testing.T) {
	var q Queue
	q.Push(Event{Time: 3, Port: "irq"})
	q.Push(Event{Time: 1, Port: "bus"})
	q.Push(Event{Time: 2, Port: "irq"})
	q.Push(Event{Time: 2, Port: "bus"})

	irq := map[string]bool{"irq": true}
	e, ok := q.MinMatching(irq)
	if !ok || e.Time != 2 || e.Port != "irq" {
		t.Fatalf("MinMatching = %v ok=%v, want irq@2", e, ok)
	}
	if q.Len() != 4 {
		t.Fatal("MinMatching must not remove")
	}

	e, ok = q.PopMatching(irq)
	if !ok || e.Time != 2 || e.Port != "irq" {
		t.Fatalf("PopMatching = %v ok=%v, want irq@2", e, ok)
	}
	if q.Len() != 3 {
		t.Fatalf("PopMatching left %d events, want 3", q.Len())
	}
	// The untouched events still pop in global order.
	want := []vtime.Time{1, 2, 3}
	for i := 0; q.Len() > 0; i++ {
		if got := mustPop(t, &q).Time; got != want[i] {
			t.Fatalf("position %d: %v, want %v", i, got, want[i])
		}
	}

	if _, ok := q.MinMatching(map[string]bool{"none": true}); ok {
		t.Fatal("MinMatching matched a nonexistent port")
	}
	if _, ok := q.PopMatching(map[string]bool{"none": true}); ok {
		t.Fatal("PopMatching matched a nonexistent port")
	}
}

// Property: MinMatching agrees with a drain-and-filter reference.
func TestMinMatchingProperty(t *testing.T) {
	f := func(times []uint8, mask []bool) bool {
		var q Queue
		ports := map[string]bool{"a": true}
		anyMatch := false
		for i, ts := range times {
			port := "b"
			if i < len(mask) && mask[i] {
				port = "a"
				anyMatch = true
			}
			q.Push(Event{Time: vtime.Time(ts), Port: port})
		}
		got, ok := q.MinMatching(ports)
		if !anyMatch {
			return !ok
		}
		for _, e := range q.Snapshot() {
			if e.Port == "a" {
				return ok && got.Time == e.Time && got.Seq == e.Seq
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: popping the queue always yields a non-decreasing (Time,
// Seq) sequence, no matter the insertion order.
func TestQueueSortedProperty(t *testing.T) {
	f := func(times []uint16) bool {
		var q Queue
		for _, ts := range times {
			q.Push(Event{Time: vtime.Time(ts)})
		}
		prev := Event{Time: -1}
		for q.Len() > 0 {
			e, _ := q.Pop()
			if e.Before(prev) {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Drain(t) returns exactly the events with Time <= t.
func TestDrainPartitionProperty(t *testing.T) {
	f := func(times []uint8, cut uint8) bool {
		var q Queue
		for _, ts := range times {
			q.Push(Event{Time: vtime.Time(ts)})
		}
		got := q.Drain(vtime.Time(cut))
		for _, e := range got {
			if e.Time > vtime.Time(cut) {
				return false
			}
		}
		for q.Len() > 0 {
			e, _ := q.Pop()
			if e.Time <= vtime.Time(cut) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Time: 5, Kind: KindNet, Net: "bus", Component: "cpu", Port: "in", Value: 7}
	if s := e.String(); s == "" {
		t.Fatal("empty String for net event")
	}
	timer := Event{Time: 5, Kind: KindTimer, Component: "cpu"}
	if s := timer.String(); s == "" {
		t.Fatal("empty String for timer event")
	}
	ctl := Event{Time: 5, Kind: KindControl}
	if s := ctl.String(); s == "" {
		t.Fatal("empty String for control event")
	}
	for _, k := range []Kind{KindNet, KindTimer, KindControl, Kind(99)} {
		if k.String() == "" {
			t.Fatal("empty Kind string")
		}
	}
}

func BenchmarkQueuePushPop(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	times := make([]vtime.Time, 1024)
	for i := range times {
		times[i] = vtime.Time(rng.Int63n(1 << 20))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var q Queue
	for i := 0; i < b.N; i++ {
		q.Push(Event{Time: times[i%len(times)]})
		if q.Len() > 512 {
			q.Pop()
		}
	}
}

func TestStableAgainstSort(t *testing.T) {
	// Cross-check the heap against a reference stable sort.
	rng := rand.New(rand.NewSource(7))
	var q Queue
	type rec struct {
		time vtime.Time
		seq  int
	}
	var ref []rec
	for i := 0; i < 500; i++ {
		ts := vtime.Time(rng.Intn(50))
		q.Push(Event{Time: ts})
		ref = append(ref, rec{ts, i})
	}
	sort.SliceStable(ref, func(i, j int) bool { return ref[i].time < ref[j].time })
	for i := 0; q.Len() > 0; i++ {
		if got := mustPop(t, &q).Time; got != ref[i].time {
			t.Fatalf("position %d: heap %v, reference %v", i, got, ref[i].time)
		}
	}
}
