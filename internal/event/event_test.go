package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/vtime"
)

func TestQueueOrdering(t *testing.T) {
	var q Queue
	q.Push(&Event{Time: 30})
	q.Push(&Event{Time: 10})
	q.Push(&Event{Time: 20})
	var got []vtime.Time
	for q.Len() > 0 {
		got = append(got, q.Pop().Time)
	}
	want := []vtime.Time{10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestQueueFIFOWithinSameTime(t *testing.T) {
	var q Queue
	for i := 0; i < 5; i++ {
		q.Push(&Event{Time: 7, Component: string(rune('a' + i))})
	}
	for i := 0; i < 5; i++ {
		e := q.Pop()
		if e.Component != string(rune('a'+i)) {
			t.Fatalf("tie-break broken: got %q at position %d", e.Component, i)
		}
	}
}

func TestPeekAndNextTime(t *testing.T) {
	var q Queue
	if q.Peek() != nil {
		t.Fatal("Peek on empty queue should be nil")
	}
	if q.NextTime() != vtime.Infinity {
		t.Fatal("NextTime on empty queue should be Infinity")
	}
	q.Push(&Event{Time: 42})
	if q.Peek().Time != 42 || q.NextTime() != 42 {
		t.Fatal("Peek/NextTime disagree with contents")
	}
	if q.Len() != 1 {
		t.Fatal("Peek must not remove")
	}
}

func TestPopEmpty(t *testing.T) {
	var q Queue
	if q.Pop() != nil {
		t.Fatal("Pop on empty queue should be nil")
	}
}

func TestDrain(t *testing.T) {
	var q Queue
	for _, ts := range []vtime.Time{5, 1, 9, 3, 7} {
		q.Push(&Event{Time: ts})
	}
	got := q.Drain(5)
	if len(got) != 3 {
		t.Fatalf("Drain(5) returned %d events, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Before(got[i-1]) {
			t.Fatal("Drain output not ordered")
		}
	}
	if q.Len() != 2 {
		t.Fatalf("queue left with %d events, want 2", q.Len())
	}
}

func TestDiscardAfter(t *testing.T) {
	var q Queue
	for _, ts := range []vtime.Time{5, 1, 9, 3, 7} {
		q.Push(&Event{Time: ts})
	}
	n := q.DiscardAfter(5)
	if n != 2 {
		t.Fatalf("DiscardAfter removed %d, want 2", n)
	}
	var rest []vtime.Time
	for q.Len() > 0 {
		rest = append(rest, q.Pop().Time)
	}
	want := []vtime.Time{1, 3, 5}
	for i := range want {
		if rest[i] != want[i] {
			t.Fatalf("after discard: %v, want %v", rest, want)
		}
	}
}

func TestSnapshotDoesNotDisturb(t *testing.T) {
	var q Queue
	for _, ts := range []vtime.Time{5, 1, 9} {
		q.Push(&Event{Time: ts})
	}
	snap := q.Snapshot()
	if len(snap) != 3 || snap[0].Time != 1 || snap[1].Time != 5 || snap[2].Time != 9 {
		t.Fatalf("snapshot wrong: %v", snap)
	}
	if q.Len() != 3 || q.Peek().Time != 1 {
		t.Fatal("Snapshot disturbed the queue")
	}
}

func TestPushStampedPreservesOrder(t *testing.T) {
	var q Queue
	a := q.Push(&Event{Time: 4})
	b := q.Push(&Event{Time: 4})
	// Simulate replay into a fresh queue.
	var r Queue
	r.PushStamped(b)
	r.PushStamped(a)
	if r.Pop() != a || r.Pop() != b {
		t.Fatal("PushStamped lost original ordering")
	}
	// New pushes must order after replayed ones at the same time.
	var s Queue
	s.PushStamped(b)
	c := s.Push(&Event{Time: 4})
	if c.Seq <= b.Seq {
		t.Fatal("sequence counter not kept monotone across PushStamped")
	}
}

// Property: popping the queue always yields a non-decreasing (Time,
// Seq) sequence, no matter the insertion order.
func TestQueueSortedProperty(t *testing.T) {
	f := func(times []uint16) bool {
		var q Queue
		for _, ts := range times {
			q.Push(&Event{Time: vtime.Time(ts)})
		}
		prev := &Event{Time: -1}
		for q.Len() > 0 {
			e := q.Pop()
			if e.Before(prev) {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Drain(t) returns exactly the events with Time <= t.
func TestDrainPartitionProperty(t *testing.T) {
	f := func(times []uint8, cut uint8) bool {
		var q Queue
		for _, ts := range times {
			q.Push(&Event{Time: vtime.Time(ts)})
		}
		got := q.Drain(vtime.Time(cut))
		for _, e := range got {
			if e.Time > vtime.Time(cut) {
				return false
			}
		}
		for q.Len() > 0 {
			if q.Pop().Time <= vtime.Time(cut) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventString(t *testing.T) {
	e := &Event{Time: 5, Kind: KindNet, Net: "bus", Component: "cpu", Port: "in", Value: 7}
	if s := e.String(); s == "" {
		t.Fatal("empty String for net event")
	}
	timer := &Event{Time: 5, Kind: KindTimer, Component: "cpu"}
	if s := timer.String(); s == "" {
		t.Fatal("empty String for timer event")
	}
	ctl := &Event{Time: 5, Kind: KindControl}
	if s := ctl.String(); s == "" {
		t.Fatal("empty String for control event")
	}
	for _, k := range []Kind{KindNet, KindTimer, KindControl, Kind(99)} {
		if k.String() == "" {
			t.Fatal("empty Kind string")
		}
	}
}

func BenchmarkQueuePushPop(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	times := make([]vtime.Time, 1024)
	for i := range times {
		times[i] = vtime.Time(rng.Int63n(1 << 20))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var q Queue
	for i := 0; i < b.N; i++ {
		q.Push(&Event{Time: times[i%len(times)]})
		if q.Len() > 512 {
			q.Pop()
		}
	}
}

func TestStableAgainstSort(t *testing.T) {
	// Cross-check the heap against a reference stable sort.
	rng := rand.New(rand.NewSource(7))
	var q Queue
	type rec struct {
		time vtime.Time
		seq  int
	}
	var ref []rec
	for i := 0; i < 500; i++ {
		ts := vtime.Time(rng.Intn(50))
		q.Push(&Event{Time: ts})
		ref = append(ref, rec{ts, i})
	}
	sort.SliceStable(ref, func(i, j int) bool { return ref[i].time < ref[j].time })
	for i := 0; q.Len() > 0; i++ {
		if got := q.Pop().Time; got != ref[i].time {
			t.Fatalf("position %d: heap %v, reference %v", i, got, ref[i].time)
		}
	}
}
