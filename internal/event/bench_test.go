package event

import (
	"testing"

	"repro/internal/vtime"
)

// driveFanout models the scheduler's hottest loop: a drive fans one
// event value out to each of fanout listeners, and the listener-side
// drain consumes everything deliverable at the current time.
func driveFanout(q *Queue, t vtime.Time, fanout int, scratch []Event) []Event {
	for i := 0; i < fanout; i++ {
		q.Push(Event{Time: t, Kind: KindNet, Net: "bus", Value: i})
	}
	if scratch == nil {
		_ = q.Drain(t)
		return nil
	}
	return q.DrainInto(t, scratch)
}

// BenchmarkDriveFanout measures allocations per drive-fanout round.
// The scratch-buffer variant (what the scheduler fast path uses) must
// not allocate in steady state; the naive variant allocates a result
// slice per drain.
func BenchmarkDriveFanout(b *testing.B) {
	const fanout = 32

	b.Run("alloc", func(b *testing.B) {
		var q Queue
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			driveFanout(&q, vtime.Time(i), fanout, nil)
		}
	})

	b.Run("scratch", func(b *testing.B) {
		var q Queue
		scratch := make([]Event, 0, fanout)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scratch = driveFanout(&q, vtime.Time(i), fanout, scratch)
		}
	})
}

// TestDriveFanoutZeroAlloc is the CI guard behind BenchmarkDriveFanout:
// the struct-of-arrays queue's push/drain fast path must stay at
// exactly 0 allocs/op — the heap columns and the row store reach
// steady-state capacity and are recycled in place, and events move by
// value so there is no per-event object at all. The metrics layer is
// pull-based (collectors walk existing Stats() accessors at snapshot
// time) precisely so this number cannot move when observability ships
// disabled; a regression here means someone put work back on the
// drive hot path.
func TestDriveFanoutZeroAlloc(t *testing.T) {
	const fanout = 32
	var q Queue
	scratch := make([]Event, 0, fanout)
	tick := vtime.Time(0)
	// Warm the columns and the scratch buffer to steady state first.
	for i := 0; i < 16; i++ {
		scratch = driveFanout(&q, tick, fanout, scratch)
		tick++
	}
	allocs := testing.AllocsPerRun(200, func() {
		scratch = driveFanout(&q, tick, fanout, scratch)
		tick++
	})
	if allocs != 0 {
		t.Fatalf("drive fanout allocates %.1f times/op, want 0", allocs)
	}
}

// BenchmarkDiscardAfter guards the rollback truncation fast paths.
// "noop" is the dominant case (the speculated future was consumed, not
// scheduled): a pure column scan, no compaction, no re-heapify. "all"
// truncates the columns wholesale. "mixed" is the only shape that pays
// for compaction plus heapify.
func BenchmarkDiscardAfter(b *testing.B) {
	const n = 256
	fill := func(q *Queue) {
		for i := 0; i < n; i++ {
			q.Push(Event{Time: vtime.Time((i * 37) % n), Net: "bus"})
		}
	}

	b.Run("noop", func(b *testing.B) {
		var q Queue
		fill(&q)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if q.DiscardAfter(vtime.Time(n)) != 0 {
				b.Fatal("noop leg removed events")
			}
		}
	})

	b.Run("all", func(b *testing.B) {
		var q Queue
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fill(&q)
			if q.DiscardAfter(-1) != n {
				b.Fatal("all leg kept events")
			}
		}
	})

	b.Run("mixed", func(b *testing.B) {
		var q Queue
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fill(&q)
			if q.DiscardAfter(n/2) == 0 {
				b.Fatal("mixed leg removed nothing")
			}
		}
	})
}

// TestDiscardAfterNoopZeroAlloc pins the zero-removal fast path at 0
// allocs/op: rollback calls DiscardAfter on every restored inbox, and
// most inboxes have nothing in the discarded future.
func TestDiscardAfterNoopZeroAlloc(t *testing.T) {
	var q Queue
	for i := 0; i < 64; i++ {
		q.Push(Event{Time: vtime.Time(i), Net: "bus"})
	}
	allocs := testing.AllocsPerRun(200, func() {
		if q.DiscardAfter(vtime.Time(64)) != 0 {
			t.Fatal("removed events")
		}
	})
	if allocs != 0 {
		t.Fatalf("DiscardAfter noop allocates %.1f times/op, want 0", allocs)
	}
}

// TestQueueScanZeroAlloc guards the safe-horizon scan paths: NextTime
// (the scheduler key scan reads only the head of the time column),
// MinMatching (filtered receive), Peek, and a PopBatch/PushStamped
// recycle round must all run allocation-free against a warm queue.
func TestQueueScanZeroAlloc(t *testing.T) {
	var q Queue
	ports := map[string]bool{"irq": true}
	for i := 0; i < 64; i++ {
		port := "bus"
		if i%7 == 0 {
			port = "irq"
		}
		q.Push(Event{Time: vtime.Time(i), Port: port, Net: "bus"})
	}
	scratch := make([]Event, 0, 64)
	sink := vtime.Time(0)
	allocs := testing.AllocsPerRun(200, func() {
		sink += q.NextTime()
		if e, ok := q.Peek(); ok {
			sink += e.Time
		}
		if e, ok := q.MinMatching(ports); ok {
			sink += e.Time
		}
		scratch = q.PopBatch(vtime.Infinity, 8, scratch)
		for _, e := range scratch {
			q.PushStamped(e)
		}
	})
	if allocs != 0 {
		t.Fatalf("queue scan allocates %.1f times/op, want 0", allocs)
	}
	_ = sink
}
