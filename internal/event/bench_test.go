package event

import (
	"testing"

	"repro/internal/vtime"
)

// driveFanout models the scheduler's hottest loop: a drive fans one
// pooled event out to each of fanout listeners, and the listener-side
// drain consumes everything deliverable at the current time.
func driveFanout(q *Queue, t vtime.Time, fanout int, scratch []*Event, pooled bool) []*Event {
	for i := 0; i < fanout; i++ {
		var e *Event
		if pooled {
			e = Get()
		} else {
			e = &Event{}
		}
		e.Time = t
		e.Kind = KindNet
		e.Net = "bus"
		e.Value = i
		q.Push(e)
	}
	if pooled {
		scratch = q.DrainInto(t, scratch)
		for _, e := range scratch {
			Put(e)
		}
		return scratch
	}
	_ = q.Drain(t)
	return scratch
}

// BenchmarkDriveFanout measures allocations per drive-fanout round.
// The pooled + scratch-buffer variant (what the scheduler fast path
// uses) must not allocate in steady state; the naive variant
// allocates one event per listener plus a result slice per drain.
func BenchmarkDriveFanout(b *testing.B) {
	const fanout = 32

	b.Run("alloc", func(b *testing.B) {
		var q Queue
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			driveFanout(&q, vtime.Time(i), fanout, nil, false)
		}
	})

	b.Run("pooled-scratch", func(b *testing.B) {
		var q Queue
		scratch := make([]*Event, 0, fanout)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scratch = driveFanout(&q, vtime.Time(i), fanout, scratch, true)
		}
	})
}

// TestDriveFanoutZeroAlloc is the CI guard behind BenchmarkDriveFanout:
// the pooled + scratch-buffer fast path must stay at exactly 0
// allocs/op. The metrics layer is pull-based (collectors walk existing
// Stats() accessors at snapshot time) precisely so this number cannot
// move when observability ships disabled; a regression here means
// someone put work back on the drive hot path.
func TestDriveFanoutZeroAlloc(t *testing.T) {
	const fanout = 32
	var q Queue
	scratch := make([]*Event, 0, fanout)
	tick := vtime.Time(0)
	// Warm the pool and the scratch buffer to steady state first.
	for i := 0; i < 16; i++ {
		scratch = driveFanout(&q, tick, fanout, scratch, true)
		tick++
	}
	allocs := testing.AllocsPerRun(200, func() {
		scratch = driveFanout(&q, tick, fanout, scratch, true)
		tick++
	})
	if allocs != 0 {
		t.Fatalf("pooled drive fanout allocates %.1f times/op, want 0", allocs)
	}
}

func TestDrainIntoAndPopBatch(t *testing.T) {
	var q Queue
	for i := 10; i >= 1; i-- {
		q.Push(&Event{Time: vtime.Time(i)})
	}
	scratch := make([]*Event, 0, 4)
	got := q.DrainInto(5, scratch)
	if len(got) != 5 {
		t.Fatalf("DrainInto(5) returned %d events", len(got))
	}
	for i, e := range got {
		if e.Time != vtime.Time(i+1) {
			t.Fatalf("event %d at %v, want %v", i, e.Time, i+1)
		}
	}
	batch := q.PopBatch(vtime.Infinity, 3, got)
	if len(batch) != 3 || batch[0].Time != 6 {
		t.Fatalf("PopBatch(3) = %d events starting %v", len(batch), batch[0].Time)
	}
	rest := q.PopBatch(vtime.Infinity, 0, batch)
	if len(rest) != 2 || q.Len() != 0 {
		t.Fatalf("PopBatch(0=all) left %d queued, returned %d", q.Len(), len(rest))
	}
}
