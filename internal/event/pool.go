package event

import "sync"

// pool recycles Event structs. The scheduler's drive fanout creates
// one Event per (drive, listener) pair — by far the hottest
// allocation in a simulation — and every event is dead the moment its
// payload has been copied into the Msg handed to Recv, so the
// lifecycle is a textbook pool fit.
var pool = sync.Pool{New: func() any { return new(Event) }}

// Get returns a zeroed Event from the pool.
func Get() *Event {
	return pool.Get().(*Event)
}

// Put recycles an event. The caller must not retain the pointer; any
// reference that outlives delivery (checkpoint images, snapshots)
// must copy the Event by value first.
func Put(e *Event) {
	if e == nil {
		return
	}
	*e = Event{}
	pool.Put(e)
}
