package iss

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble turns assembly text into program words. One instruction
// per line; labels end with ':'; ';' and '#' start comments; branch
// and jump targets are labels (encoded as absolute instruction
// indices in the immediate field).
//
//	        li   r1, 0        ; sum
//	        li   r2, 1        ; i
//	        li   r3, 11       ; limit
//	loop:   add  r1, r1, r2
//	        addi r2, r2, 1
//	        blt  r2, r3, loop
//	        out  r1
//	        halt
func Assemble(src string) ([]uint32, error) {
	type pending struct {
		line  int
		instr Instr
		label string // branch target to resolve, "" if none
	}
	labels := make(map[string]int)
	var prog []pending

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Leading labels (several allowed).
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !validLabel(label) {
				return nil, fmt.Errorf("iss: line %d: bad label %q", lineNo+1, label)
			}
			if _, dup := labels[label]; dup {
				return nil, fmt.Errorf("iss: line %d: duplicate label %q", lineNo+1, label)
			}
			labels[label] = len(prog)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		instr, target, err := parseInstr(line)
		if err != nil {
			return nil, fmt.Errorf("iss: line %d: %w", lineNo+1, err)
		}
		prog = append(prog, pending{line: lineNo + 1, instr: instr, label: target})
	}

	words := make([]uint32, len(prog))
	for idx, p := range prog {
		if p.label != "" {
			t, ok := labels[p.label]
			if !ok {
				return nil, fmt.Errorf("iss: line %d: undefined label %q", p.line, p.label)
			}
			p.instr.Imm = int32(t)
		}
		w, err := p.instr.Encode()
		if err != nil {
			return nil, fmt.Errorf("iss: line %d: %w", p.line, err)
		}
		words[idx] = w
	}
	return words, nil
}

func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || (i > 0 && c >= '0' && c <= '9')) {
			return false
		}
	}
	return true
}

// parseInstr parses one instruction; target is a label to resolve
// later (branches/jumps), "" otherwise.
func parseInstr(line string) (Instr, string, error) {
	fields := strings.Fields(line)
	mnemonic := strings.ToLower(fields[0])
	rest := strings.Join(fields[1:], " ")
	args := splitArgs(rest)

	var op Op = numOps
	for o, name := range opNames {
		if name == mnemonic {
			op = Op(o)
			break
		}
	}
	if op == numOps {
		return Instr{}, "", fmt.Errorf("unknown mnemonic %q", mnemonic)
	}

	in := Instr{Op: op}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s wants %d operands, got %d", mnemonic, n, len(args))
		}
		return nil
	}
	switch op {
	case NOP, HALT, WFI:
		return in, "", need(0)
	case LI, LUI:
		if err := need(2); err != nil {
			return in, "", err
		}
		var err error
		if in.Rd, err = reg(args[0]); err != nil {
			return in, "", err
		}
		if in.Imm, err = imm(args[1]); err != nil {
			return in, "", err
		}
		return in, "", nil
	case MOV:
		if err := need(2); err != nil {
			return in, "", err
		}
		var err error
		if in.Rd, err = reg(args[0]); err != nil {
			return in, "", err
		}
		if in.Rs, err = reg(args[1]); err != nil {
			return in, "", err
		}
		return in, "", nil
	case ADD, SUB, MUL, AND, OR, XOR, SHL, SHR:
		if err := need(3); err != nil {
			return in, "", err
		}
		var err error
		if in.Rd, err = reg(args[0]); err != nil {
			return in, "", err
		}
		if in.Rs, err = reg(args[1]); err != nil {
			return in, "", err
		}
		if in.Rt, err = reg(args[2]); err != nil {
			return in, "", err
		}
		return in, "", nil
	case ADDI:
		if err := need(3); err != nil {
			return in, "", err
		}
		var err error
		if in.Rd, err = reg(args[0]); err != nil {
			return in, "", err
		}
		if in.Rs, err = reg(args[1]); err != nil {
			return in, "", err
		}
		if in.Imm, err = imm(args[2]); err != nil {
			return in, "", err
		}
		return in, "", nil
	case LD, ST:
		if err := need(2); err != nil {
			return in, "", err
		}
		r1, err := reg(args[0])
		if err != nil {
			return in, "", err
		}
		base, off, err := memOperand(args[1])
		if err != nil {
			return in, "", err
		}
		in.Rs, in.Imm = base, off
		if op == LD {
			in.Rd = r1
		} else {
			in.Rt = r1
		}
		return in, "", nil
	case BEQ, BNE, BLT:
		if err := need(3); err != nil {
			return in, "", err
		}
		var err error
		if in.Rs, err = reg(args[0]); err != nil {
			return in, "", err
		}
		if in.Rt, err = reg(args[1]); err != nil {
			return in, "", err
		}
		return withTarget(in, args[2])
	case JMP:
		if err := need(1); err != nil {
			return in, "", err
		}
		return withTarget(in, args[0])
	case OUT:
		if err := need(1); err != nil {
			return in, "", err
		}
		var err error
		in.Rs, err = reg(args[0])
		return in, "", err
	case IN:
		if err := need(1); err != nil {
			return in, "", err
		}
		var err error
		in.Rd, err = reg(args[0])
		return in, "", err
	}
	return in, "", fmt.Errorf("unhandled mnemonic %q", mnemonic)
}

// withTarget resolves a branch/jump operand: a numeric absolute
// instruction index is encoded directly; anything else is a label
// resolved in the second pass.
func withTarget(in Instr, arg string) (Instr, string, error) {
	if n, err := imm(arg); err == nil {
		in.Imm = n
		return in, "", nil
	}
	return in, arg, nil
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func reg(s string) (uint8, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 15 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func imm(s string) (int32, error) {
	n, err := strconv.ParseInt(strings.ReplaceAll(s, "_", ""), 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if n > immMax || n < immMin {
		return 0, fmt.Errorf("immediate %d out of 12-bit range", n)
	}
	return int32(n), nil
}

// memOperand parses "[rN+off]" / "[rN-off]" / "[rN]".
func memOperand(s string) (uint8, int32, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	body := s[1 : len(s)-1]
	sep := strings.IndexAny(body, "+-")
	if sep < 0 {
		r, err := reg(strings.TrimSpace(body))
		return r, 0, err
	}
	r, err := reg(strings.TrimSpace(body[:sep]))
	if err != nil {
		return 0, 0, err
	}
	off, err := imm(strings.TrimSpace(body[sep:]))
	if err != nil {
		return 0, 0, err
	}
	return r, off, nil
}

// Disassemble renders program words back to text (diagnostics).
func Disassemble(prog []uint32) []string {
	out := make([]string, len(prog))
	for i, w := range prog {
		out[i] = Decode(w).String()
	}
	return out
}
