package iss

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/signal"
	"repro/internal/timing"
	"repro/internal/vtime"
)

// CPU is the interpreter: a checkpointable core.Behavior executing a
// program. All architectural state lives in exported fields, so the
// component rolls back and resumes exactly.
type CPU struct {
	// Program and configuration.
	Prog      []uint32
	ModelName string // timing model: "i960", "embedded-risc", "server-cpu", "cellular-asic"
	OutPort   string // port driven by OUT ("out" default)
	InPort    string // port read by IN ("in" default)
	IRQPort   string // interrupt port for WFI and handlers ("" disables)

	// MMIOBase, when nonzero, makes loads/stores at addr >= MMIOBase
	// synchronous (statically marked, as for interrupt-shared
	// locations).
	MMIOBase uint32

	// Architectural state.
	PC     uint32
	Regs   [16]uint32
	Halted bool

	// Counters.
	Executed int64
	IRQs     int64

	est *timing.Estimator
}

func (c *CPU) model() *timing.Model {
	switch c.ModelName {
	case "", "embedded-risc":
		return timing.EmbeddedCPU
	case "i960":
		return timing.I960
	case "server-cpu":
		return timing.ServerCPU
	case "cellular-asic":
		return timing.CellularASIC
	default:
		return nil
	}
}

func (c *CPU) outPort() string {
	if c.OutPort == "" {
		return "out"
	}
	return c.OutPort
}

func (c *CPU) inPort() string {
	if c.InPort == "" {
		return "in"
	}
	return c.InPort
}

// Run implements core.Behavior: the fetch-decode-execute loop,
// charging instruction timing and yielding at I/O and interrupt
// boundaries.
func (c *CPU) Run(p *core.Proc) error {
	m := c.model()
	if m == nil {
		return fmt.Errorf("iss: unknown timing model %q", c.ModelName)
	}
	if c.est == nil {
		var err error
		if c.est, err = timing.NewEstimator(m); err != nil {
			return err
		}
	}
	mem := p.Memory()
	if c.IRQPort != "" {
		p.SetInterruptHandler(c.IRQPort, func(p *core.Proc, msg core.Msg) {
			c.IRQs++
			if irq, ok := msg.Value.(signal.IRQ); ok {
				// Deliver the interrupt cause to the IRQ mailbox.
				mem.HandlerWrite(p, mailboxAddr, uint64(irq.Line), msg.Sent)
			}
		})
	}

	for !c.Halted {
		if int(c.PC) >= len(c.Prog) {
			return fmt.Errorf("iss: PC %d past end of program (%d words)", c.PC, len(c.Prog))
		}
		in := Decode(c.Prog[c.PC])
		c.PC++
		c.Executed++
		c.charge(p, in)
		if err := c.exec(p, mem, in); err != nil {
			return err
		}
	}
	return nil
}

// mailboxAddr is where interrupt causes are delivered. It sits in
// the low MMIO page so programs can reach it with a single LI.
const mailboxAddr uint32 = 0x700

// charge applies the timing model to one instruction.
func (c *CPU) charge(p *core.Proc, in Instr) {
	var b timing.Block
	b.Instr = 1
	switch in.Op {
	case LD:
		b.Loads = 1
	case ST:
		b.Stores = 1
	case BEQ, BNE, BLT, JMP:
		b.Branches = 1
	case MUL:
		b.Mults = 1
	}
	c.est.Charge(p, b)
}

// exec executes one decoded instruction.
func (c *CPU) exec(p *core.Proc, mem *core.Memory, in Instr) error {
	r := &c.Regs
	switch in.Op {
	case NOP:
	case HALT:
		c.Halted = true
	case LI:
		r[in.Rd] = uint32(in.Imm)
	case LUI:
		r[in.Rd] = uint32(in.Imm) << immBits
	case MOV:
		r[in.Rd] = r[in.Rs]
	case ADD:
		r[in.Rd] = r[in.Rs] + r[in.Rt]
	case SUB:
		r[in.Rd] = r[in.Rs] - r[in.Rt]
	case MUL:
		r[in.Rd] = r[in.Rs] * r[in.Rt]
	case AND:
		r[in.Rd] = r[in.Rs] & r[in.Rt]
	case OR:
		r[in.Rd] = r[in.Rs] | r[in.Rt]
	case XOR:
		r[in.Rd] = r[in.Rs] ^ r[in.Rt]
	case SHL:
		r[in.Rd] = r[in.Rs] << (r[in.Rt] & 31)
	case SHR:
		r[in.Rd] = r[in.Rs] >> (r[in.Rt] & 31)
	case ADDI:
		r[in.Rd] = r[in.Rs] + uint32(in.Imm)
	case LD:
		addr := r[in.Rs] + uint32(in.Imm)
		if c.MMIOBase != 0 && addr >= c.MMIOBase {
			mem.MarkSynchronous(addr)
		}
		r[in.Rd] = uint32(mem.Read(p, addr))
	case ST:
		addr := r[in.Rs] + uint32(in.Imm)
		if c.MMIOBase != 0 && addr >= c.MMIOBase {
			mem.MarkSynchronous(addr)
		}
		mem.Write(p, addr, uint64(r[in.Rt]))
	case BEQ:
		if r[in.Rs] == r[in.Rt] {
			c.PC = uint32(in.Imm)
		}
	case BNE:
		if r[in.Rs] != r[in.Rt] {
			c.PC = uint32(in.Imm)
		}
	case BLT:
		if int32(r[in.Rs]) < int32(r[in.Rt]) {
			c.PC = uint32(in.Imm)
		}
	case JMP:
		c.PC = uint32(in.Imm)
	case OUT:
		p.Send(c.outPort(), signal.Word(r[in.Rs]))
	case IN:
		for {
			m, ok := p.Recv(c.inPort())
			if !ok {
				c.Halted = true
				return nil
			}
			if w, isWord := m.Value.(signal.Word); isWord {
				r[in.Rd] = uint32(w)
				break
			}
		}
	case WFI:
		if c.IRQPort == "" {
			return fmt.Errorf("iss: WFI without an IRQ port")
		}
		// Wait until the next interrupt arrives, then take it.
		m, ok := p.Recv(c.IRQPort)
		if !ok {
			c.Halted = true
			return nil
		}
		c.IRQs++
		if irq, isIRQ := m.Value.(signal.IRQ); isIRQ {
			p.Memory().HandlerWrite(p, mailboxAddr, uint64(irq.Line), m.Sent)
		}
	default:
		return fmt.Errorf("iss: illegal instruction %v at PC %d", in, c.PC-1)
	}
	return nil
}

// Mailbox returns the IRQ mailbox address for programs to load from.
func Mailbox() uint32 { return mailboxAddr }

// CyclesCharged reports the virtual time charged so far.
func (c *CPU) CyclesCharged() vtime.Duration {
	if c.est == nil {
		return 0
	}
	return c.est.Charged
}

// SaveState / RestoreState implement core.StateSaver. The timing
// estimator is reconstructed from ModelName on re-entry.
func (c *CPU) SaveState() ([]byte, error)  { return core.GobSave(c) }
func (c *CPU) RestoreState(b []byte) error { return core.GobRestore(c, b) }
