// Package iss implements an instruction set simulator component for
// Pia. The paper notes that "there is no reason that the component
// can't be an instruction set simulator of a particular processor,
// but we have not yet devoted any effort to either implementing such
// components or adapting an existing ISS to Pia" — this package does
// that work: a small 32-bit RISC (16 registers, load/store, ALU,
// branches, port I/O, wait-for-interrupt) whose interpreter runs as a
// core.Behavior, charges per-instruction time through the
// basic-block timing models, accesses data memory through the
// kernel's synchronous-memory model (so DMA and interrupt handlers
// compose with §2.1.1 consistency), and performs I/O by driving and
// receiving on ordinary Pia nets.
//
// Instructions are 32 bits: op(8) rd(4) rs(4) rt(4) imm(12, signed).
// An assembler (Assemble) turns readable text into program words.
package iss

import "fmt"

// Op is an opcode.
type Op uint8

// The instruction set.
const (
	NOP  Op = iota // nop
	HALT           // halt
	LI             // li rd, imm          rd = imm (sign-extended)
	LUI            // lui rd, imm         rd = imm << 12
	MOV            // mov rd, rs          rd = rs
	ADD            // add rd, rs, rt      rd = rs + rt
	SUB            // sub rd, rs, rt
	MUL            // mul rd, rs, rt
	AND            // and rd, rs, rt
	OR             // or rd, rs, rt
	XOR            // xor rd, rs, rt
	SHL            // shl rd, rs, rt      rd = rs << (rt & 31)
	SHR            // shr rd, rs, rt      rd = rs >> (rt & 31)
	ADDI           // addi rd, rs, imm    rd = rs + imm
	LD             // ld rd, [rs+imm]     rd = mem[rs+imm]
	ST             // st rt, [rs+imm]     mem[rs+imm] = rt
	BEQ            // beq rs, rt, target  if rs == rt: pc = target
	BNE            // bne rs, rt, target
	BLT            // blt rs, rt, target  (signed)
	JMP            // jmp target
	OUT            // out rs              send rs on the output port
	IN             // in rd               block until a word arrives
	WFI            // wfi                 wait for the next interrupt
	numOps
)

var opNames = [...]string{
	NOP: "nop", HALT: "halt", LI: "li", LUI: "lui", MOV: "mov",
	ADD: "add", SUB: "sub", MUL: "mul", AND: "and", OR: "or", XOR: "xor",
	SHL: "shl", SHR: "shr", ADDI: "addi", LD: "ld", ST: "st",
	BEQ: "beq", BNE: "bne", BLT: "blt", JMP: "jmp",
	OUT: "out", IN: "in", WFI: "wfi",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is a decoded instruction.
type Instr struct {
	Op         Op
	Rd, Rs, Rt uint8
	Imm        int32 // 12-bit signed as decoded
}

const (
	immBits = 12
	immMax  = 1<<(immBits-1) - 1
	immMin  = -(1 << (immBits - 1))
)

// Encode packs an instruction into a program word.
func (i Instr) Encode() (uint32, error) {
	if i.Rd > 15 || i.Rs > 15 || i.Rt > 15 {
		return 0, fmt.Errorf("iss: register out of range in %v", i)
	}
	if i.Imm > immMax || i.Imm < immMin {
		return 0, fmt.Errorf("iss: immediate %d out of 12-bit range", i.Imm)
	}
	w := uint32(i.Op)<<24 | uint32(i.Rd)<<20 | uint32(i.Rs)<<16 | uint32(i.Rt)<<12
	w |= uint32(i.Imm) & 0xFFF
	return w, nil
}

// Decode unpacks a program word.
func Decode(w uint32) Instr {
	imm := int32(w & 0xFFF)
	if imm&0x800 != 0 {
		imm -= 1 << immBits // sign extend
	}
	return Instr{
		Op:  Op(w >> 24),
		Rd:  uint8(w >> 20 & 0xF),
		Rs:  uint8(w >> 16 & 0xF),
		Rt:  uint8(w >> 12 & 0xF),
		Imm: imm,
	}
}

// String disassembles one instruction.
func (i Instr) String() string {
	switch i.Op {
	case NOP, HALT, WFI:
		return i.Op.String()
	case LI, LUI:
		return fmt.Sprintf("%s r%d, %d", i.Op, i.Rd, i.Imm)
	case MOV:
		return fmt.Sprintf("mov r%d, r%d", i.Rd, i.Rs)
	case ADDI:
		return fmt.Sprintf("addi r%d, r%d, %d", i.Rd, i.Rs, i.Imm)
	case LD:
		return fmt.Sprintf("ld r%d, [r%d%+d]", i.Rd, i.Rs, i.Imm)
	case ST:
		return fmt.Sprintf("st r%d, [r%d%+d]", i.Rt, i.Rs, i.Imm)
	case BEQ, BNE, BLT:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rs, i.Rt, i.Imm)
	case JMP:
		return fmt.Sprintf("jmp %d", i.Imm)
	case OUT:
		return fmt.Sprintf("out r%d", i.Rs)
	case IN:
		return fmt.Sprintf("in r%d", i.Rd)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs, i.Rt)
	}
}
