package iss

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/signal"
	"repro/internal/vtime"
)

// collectWords gathers OUT traffic.
type collectWords struct {
	Got []uint32
}

func (c *collectWords) Run(p *core.Proc) error {
	for {
		m, ok := p.Recv("in")
		if !ok {
			return nil
		}
		if w, isW := m.Value.(signal.Word); isW {
			c.Got = append(c.Got, uint32(w))
		}
	}
}

func (c *collectWords) SaveState() ([]byte, error)  { return core.GobSave(c) }
func (c *collectWords) RestoreState(b []byte) error { return core.GobRestore(c, b) }

// runProgram assembles src, runs it on a CPU wired to a collector,
// and returns the collected output and the CPU.
func runProgram(t *testing.T, src string) ([]uint32, *CPU) {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	cpu := &CPU{Prog: prog}
	s := core.NewSubsystem("iss")
	cc, _ := s.NewComponent("cpu", cpu)
	cc.AddPort("out")
	cc.AddPort("in")
	col := &collectWords{}
	kc, _ := s.NewComponent("col", col)
	kc.AddPort("in")
	n, _ := s.NewNet("bus", 0)
	s.Connect(n, cc.Port("out"), kc.Port("in"))
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	return col.Got, cpu
}

func TestSumLoop(t *testing.T) {
	got, cpu := runProgram(t, `
		li   r1, 0        ; sum
		li   r2, 1        ; i
		li   r3, 11       ; limit
	loop:	add  r1, r1, r2
		addi r2, r2, 1
		blt  r2, r3, loop
		out  r1
		halt
	`)
	if len(got) != 1 || got[0] != 55 {
		t.Fatalf("sum program output %v, want [55]", got)
	}
	if !cpu.Halted || cpu.Executed == 0 {
		t.Fatalf("cpu state: halted=%v executed=%d", cpu.Halted, cpu.Executed)
	}
}

func TestALUAndShifts(t *testing.T) {
	got, _ := runProgram(t, `
		li  r1, 12
		li  r2, 10
		sub r3, r1, r2   ; 2
		mul r4, r1, r2   ; 120
		and r5, r1, r2   ; 8
		or  r6, r1, r2   ; 14
		xor r7, r1, r2   ; 6
		li  r8, 2
		shl r9, r1, r8   ; 48
		shr r10, r1, r8  ; 3
		out r3
		out r4
		out r5
		out r6
		out r7
		out r9
		out r10
		halt
	`)
	want := []uint32{2, 120, 8, 14, 6, 48, 3}
	if len(got) != len(want) {
		t.Fatalf("outputs %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestMemoryAndLUI(t *testing.T) {
	got, _ := runProgram(t, `
		lui r1, 1        ; r1 = 4096
		li  r2, 77
		st  r2, [r1+4]
		ld  r3, [r1+4]
		out r3
		mov r4, r3
		out r4
		halt
	`)
	if len(got) != 2 || got[0] != 77 || got[1] != 77 {
		t.Fatalf("memory round trip output %v", got)
	}
}

func TestTimingCharges(t *testing.T) {
	_, cpu := runProgram(t, `
		li r1, 0
		li r2, 100
	loop:	addi r1, r1, 1
		blt r1, r2, loop
		halt
	`)
	// 2 + 100*(1+1 branch) + 1 halt instructions at 50 MHz (20ns/cycle,
	// branch penalty 1 cycle).
	if cpu.CyclesCharged() <= 0 {
		t.Fatal("no time charged")
	}
	perInstr := vtime.Duration(20)
	if cpu.CyclesCharged() < vtime.Duration(cpu.Executed)*perInstr {
		t.Fatalf("charged %v for %d instructions", cpu.CyclesCharged(), cpu.Executed)
	}
}

func TestInInstruction(t *testing.T) {
	prog, err := Assemble(`
	loop:	in   r1
		addi r1, r1, 1
		out  r1
		li   r2, 99
		bne  r1, r2, loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	cpu := &CPU{Prog: prog}
	s := core.NewSubsystem("io")
	cc, _ := s.NewComponent("cpu", cpu)
	cc.AddPort("out")
	cc.AddPort("in")
	feeder := core.BehaviorFunc(func(p *core.Proc) error {
		for _, v := range []uint32{10, 20, 98} {
			p.Delay(100)
			p.Send("out", signal.Word(v))
		}
		return nil
	})
	fc, _ := s.NewComponent("feed", &saver{feeder})
	fc.AddPort("out")
	col := &collectWords{}
	kc, _ := s.NewComponent("col", col)
	kc.AddPort("in")
	nin, _ := s.NewNet("cin", 0)
	s.Connect(nin, fc.Port("out"), cc.Port("in"))
	nout, _ := s.NewNet("cout", 0)
	s.Connect(nout, cc.Port("out"), kc.Port("in"))
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	want := []uint32{11, 21, 99}
	if len(col.Got) != 3 {
		t.Fatalf("echo output %v", col.Got)
	}
	for i := range want {
		if col.Got[i] != want[i] {
			t.Fatalf("echo %v, want %v", col.Got, want)
		}
	}
}

type saver struct{ B core.Behavior }

func (s *saver) Run(p *core.Proc) error     { return s.B.Run(p) }
func (s *saver) SaveState() ([]byte, error) { return []byte{}, nil }
func (s *saver) RestoreState([]byte) error  { return nil }

func TestWFIAndMailbox(t *testing.T) {
	prog, err := Assemble(`
		wfi                 ; take one interrupt
		li  r1, 0x700       ; the IRQ mailbox
		ld  r3, [r1]
		out r3
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	cpu := &CPU{Prog: prog, IRQPort: "irq"}
	s := core.NewSubsystem("irq")
	cc, _ := s.NewComponent("cpu", cpu)
	cc.AddPort("out")
	cc.AddPort("in")
	cc.AddPort("irq")
	dev := core.BehaviorFunc(func(p *core.Proc) error {
		p.Delay(500)
		p.Send("irq", signal.IRQ{Line: 7})
		return nil
	})
	dc, _ := s.NewComponent("dev", &saver{dev})
	dc.AddPort("irq")
	col := &collectWords{}
	kc, _ := s.NewComponent("col", col)
	kc.AddPort("in")
	nirq, _ := s.NewNet("irqline", 0)
	s.Connect(nirq, dc.Port("irq"), cc.Port("irq"))
	nout, _ := s.NewNet("cout", 0)
	s.Connect(nout, cc.Port("out"), kc.Port("in"))
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if cpu.IRQs != 1 {
		t.Fatalf("IRQs = %d", cpu.IRQs)
	}
	if len(col.Got) != 1 || col.Got[0] != 7 {
		t.Fatalf("mailbox output %v, want [7]", col.Got)
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(op uint8, rd, rs, rt uint8, imm int16) bool {
		in := Instr{
			Op: Op(op % uint8(numOps)),
			Rd: rd % 16, Rs: rs % 16, Rt: rt % 16,
			Imm: int32(imm) % 2048,
		}
		w, err := in.Encode()
		if err != nil {
			return false
		}
		return Decode(w) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"frob r1",
		"li r99, 1",
		"li r1, 99999",
		"beq r1, r2, nowhere\nhalt",
		"dup: nop\ndup: nop",
		"ld r1, r2",
		"add r1, r2",
		"1bad: nop",
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) accepted", src)
		}
	}
}

func TestDisassemble(t *testing.T) {
	prog, err := Assemble(`
		li r1, 5
		addi r2, r1, -3
		st r2, [r1+8]
		beq r1, r2, 0
		out r1
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	dis := Disassemble(prog)
	joined := strings.Join(dis, "\n")
	for _, want := range []string{"li r1, 5", "addi r2, r1, -3", "st r2, [r1+8]", "beq r1, r2, 0", "out r1", "halt"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, joined)
		}
	}
}

func TestIllegalInstruction(t *testing.T) {
	cpu := &CPU{Prog: []uint32{uint32(numOps) << 24}}
	s := core.NewSubsystem("ill")
	cc, _ := s.NewComponent("cpu", cpu)
	cc.AddPort("out")
	cc.AddPort("in")
	if err := s.Run(vtime.Infinity); err == nil {
		t.Fatal("illegal instruction did not error")
	}
}

func TestPCOffEnd(t *testing.T) {
	cpu := &CPU{Prog: []uint32{0}} // single nop, no halt
	s := core.NewSubsystem("off")
	cc, _ := s.NewComponent("cpu", cpu)
	cc.AddPort("out")
	cc.AddPort("in")
	if err := s.Run(vtime.Infinity); err == nil {
		t.Fatal("running off the end did not error")
	}
}

func TestCheckpointRestoreMidProgram(t *testing.T) {
	// Roll the CPU back mid-loop; the final output must be identical
	// because PC/registers are architectural state.
	prog, err := Assemble(`
		li r1, 0
		li r2, 0
		li r3, 20
	loop:	addi r1, r1, 3
		addi r2, r2, 1
		blt r2, r3, loop
		out r1
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	cpu := &CPU{Prog: prog}
	s := core.NewSubsystem("ckpt")
	cc, _ := s.NewComponent("cpu", cpu)
	cc.AddPort("out")
	cc.AddPort("in")
	col := &collectWords{}
	kc, _ := s.NewComponent("col", col)
	kc.AddPort("in")
	n, _ := s.NewNet("bus", 0)
	s.Connect(n, cc.Port("out"), kc.Port("in"))
	// The ISS never yields mid-run (no I/O in the loop), so capture
	// the initial state and roll back to it after completion, then
	// re-run.
	if _, err := s.CaptureNow(""); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if len(col.Got) != 1 || col.Got[0] != 60 {
		t.Fatalf("first run output %v", col.Got)
	}
	if err := s.RestoreCheckpoint(s.LatestCheckpoint()); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if len(col.Got) != 1 || col.Got[0] != 60 {
		t.Fatalf("replay output %v", col.Got)
	}
}
