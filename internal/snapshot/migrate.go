// Component extraction and adoption: the state-transfer half of live
// migration. At a drained step barrier every inter-subsystem channel
// is provably empty, so a local CaptureNow is a degenerate
// Chandy-Lamport cut — the only "in-flight" state is the undelivered
// events already absorbed into the component's inbox, and those travel
// inside the image.
package snapshot

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/vtime"
)

// WireEvent is the gob-encodable form of one undelivered inbox event.
// event.Event itself cannot cross a node boundary: its Exec field is a
// closure. Events carrying a non-nil Exec (scheduler-internal control
// actions) refuse to migrate.
type WireEvent struct {
	Time      vtime.Time
	Seq       uint64
	Kind      uint8
	Component string
	Port      string
	Net       string
	Value     any
	Source    string
}

// NetState is the sampling state (LastValue et al.) of one net the
// component connects to, carried so re-homed fragments answer Read
// exactly as the source's would have.
type NetState struct {
	Net    string
	Value  any
	Time   vtime.Time
	Source string
}

// ComponentImage is one component's complete migratable state: the
// behaviour state plus scheduler bookkeeping from the checkpoint
// image, the undelivered inbox in wire form, and the sampling state of
// every net the component touches. It is self-contained and
// gob-encodable (given the payload types are gob-registered).
type ComponentImage struct {
	Component string
	LocalTime vtime.Time
	Runlevel  string
	Live      bool
	EOF       bool
	State     []byte
	Inbox     []WireEvent
	MemData   map[uint32]uint64
	Nets      []NetState
}

// Encode serializes the image for transfer.
func (ci *ComponentImage) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ci); err != nil {
		return nil, fmt.Errorf("snapshot: encode image of %s: %w", ci.Component, err)
	}
	return buf.Bytes(), nil
}

// DecodeComponentImage parses an image produced by Encode.
func DecodeComponentImage(b []byte) (*ComponentImage, error) {
	var ci ComponentImage
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&ci); err != nil {
		return nil, fmt.Errorf("snapshot: decode component image: %w", err)
	}
	return &ci, nil
}

// ExtractComponent captures the subsystem (tagged, deduplicated) and
// lifts the named component's state out of the checkpoint into a
// transferable image. Only legal between runs, at a point where no
// message for the component is in flight on any channel — the mesh's
// drained step barrier guarantees exactly that.
func ExtractComponent(sub *core.Subsystem, tag, comp string) (*ComponentImage, error) {
	cs, err := sub.CaptureNow(tag)
	if err != nil {
		return nil, fmt.Errorf("snapshot: capture for migration of %s: %w", comp, err)
	}
	if cs == nil { // tag already captured (duplicate request)
		cs = sub.CheckpointByTag(tag)
	}
	if cs == nil {
		return nil, fmt.Errorf("snapshot: no checkpoint for tag %q", tag)
	}
	img := cs.Image(comp)
	if img == nil {
		return nil, fmt.Errorf("snapshot: checkpoint has no image for %q", comp)
	}
	ci := &ComponentImage{
		Component: img.Component,
		LocalTime: img.LocalTime,
		Runlevel:  img.Runlevel,
		Live:      img.Live,
		EOF:       img.EOF,
		State:     img.State,
		MemData:   img.MemData,
	}
	for _, e := range img.Inbox {
		if e.Exec != nil {
			return nil, fmt.Errorf("snapshot: component %s has a pending control event and cannot migrate", comp)
		}
		ci.Inbox = append(ci.Inbox, WireEvent{
			Time:      e.Time,
			Seq:       e.Seq,
			Kind:      uint8(e.Kind),
			Component: e.Component,
			Port:      e.Port,
			Net:       e.Net,
			Value:     e.Value,
			Source:    e.Source,
		})
	}
	c := sub.Component(comp)
	if c == nil {
		return nil, fmt.Errorf("snapshot: no component %q", comp)
	}
	for _, p := range c.Ports() {
		n := p.Net()
		if n == nil {
			continue
		}
		v, t, src := n.LastDrive()
		ci.Nets = append(ci.Nets, NetState{Net: n.Name, Value: v, Time: t, Source: src})
	}
	return ci, nil
}

// AdoptComponent restores a transferred image into the destination
// subsystem. The component must already exist there with the right
// behaviour, ports and net connections (the mesh rebuilds them from
// its blueprint); adoption supplies the state. Only legal between
// runs.
func AdoptComponent(sub *core.Subsystem, ci *ComponentImage) error {
	img := &core.Image{
		Component: ci.Component,
		LocalTime: ci.LocalTime,
		Runlevel:  ci.Runlevel,
		Live:      ci.Live,
		EOF:       ci.EOF,
		State:     ci.State,
		MemData:   ci.MemData,
	}
	for _, e := range ci.Inbox {
		img.Inbox = append(img.Inbox, event.Event{
			Time:      e.Time,
			Seq:       e.Seq,
			Kind:      event.Kind(e.Kind),
			Component: e.Component,
			Port:      e.Port,
			Net:       e.Net,
			Value:     e.Value,
			Source:    e.Source,
		})
	}
	if err := sub.RestoreComponentImage(img); err != nil {
		return err
	}
	for _, ns := range ci.Nets {
		if n := sub.Net(ns.Net); n != nil {
			n.RestoreLastDrive(ns.Value, ns.Time, ns.Source)
		}
	}
	return nil
}
