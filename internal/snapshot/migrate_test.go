package snapshot

import (
	"testing"

	"repro/internal/core"
	"repro/internal/vtime"
)

// migSender drives one value per period on "out".
type migSender struct {
	Next, Count int
	Period      vtime.Duration
}

func (s *migSender) Run(p *core.Proc) error {
	for s.Next < s.Count {
		p.DelayUntil(vtime.Time(int64(s.Next+1) * int64(s.Period)))
		p.Send("out", s.Next)
		s.Next++
	}
	return nil
}

func (s *migSender) SaveState() ([]byte, error)  { return core.GobSave(s) }
func (s *migSender) RestoreState(b []byte) error { return core.GobRestore(s, b) }

// migReceiver records each delivery with its exact receive time.
type migReceiver struct {
	Got   []int
	Times []vtime.Time
}

func (r *migReceiver) Run(p *core.Proc) error {
	for {
		m, ok := p.Recv("in")
		if !ok {
			return nil
		}
		r.Got = append(r.Got, m.Value.(int))
		r.Times = append(r.Times, p.Time())
	}
}

func (r *migReceiver) SaveState() ([]byte, error)  { return core.GobSave(r) }
func (r *migReceiver) RestoreState(b []byte) error { return core.GobRestore(r, b) }

// buildMigPair wires sender->net("wire", delay)->receiver on a fresh
// subsystem and returns it with the receiver behaviour.
func buildMigPair(t *testing.T, name string, count int, delay vtime.Duration) (*core.Subsystem, *migReceiver) {
	t.Helper()
	s := core.NewSubsystem(name)
	snd := &migSender{Count: count, Period: 10}
	rcv := &migReceiver{}
	sc, err := s.NewComponent("src", snd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.AddPort("out"); err != nil {
		t.Fatal(err)
	}
	rc, err := s.NewComponent("dst", rcv)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.AddPort("in"); err != nil {
		t.Fatal(err)
	}
	n, err := s.NewNet("wire", delay)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Connect(n, sc.Port("out"), rc.Port("in")); err != nil {
		t.Fatal(err)
	}
	return s, rcv
}

// TestAdoptIntoDifferentSubsystem captures a component on one
// subsystem and restores it into a separately built instance: the
// cross-node transfer path of live migration, minus the wire.
func TestAdoptIntoDifferentSubsystem(t *testing.T) {
	src, _ := buildMigPair(t, "origin", 8, 3)
	// Run to a horizon where dst has seen some values.
	if err := src.Run(45); err != nil {
		t.Fatalf("source run: %v", err)
	}
	ci, err := ExtractComponent(src, "mig-test", "dst")
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	b, err := ci.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	ci2, err := DecodeComponentImage(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}

	// The destination is a different Subsystem instance with its own
	// sender, pre-advanced to the same horizon so the adopted
	// component resumes in a consistent timebase.
	dstSub, dstRcv := buildMigPair(t, "destination", 8, 3)
	if err := dstSub.Run(45); err != nil {
		t.Fatalf("destination pre-run: %v", err)
	}
	if err := AdoptComponent(dstSub, ci2); err != nil {
		t.Fatalf("adopt: %v", err)
	}
	if err := dstSub.Run(vtime.Infinity); err != nil {
		t.Fatalf("destination run: %v", err)
	}
	if len(dstRcv.Got) != 8 {
		t.Fatalf("adopted receiver saw %d values, want 8: %v", len(dstRcv.Got), dstRcv.Got)
	}
	for i, v := range dstRcv.Got {
		if v != i {
			t.Fatalf("adopted receiver values out of order: %v", dstRcv.Got)
		}
	}
	for i, ts := range dstRcv.Times {
		want := vtime.Time(int64(i+1)*10 + 3)
		if ts != want {
			t.Fatalf("delivery %d at %v, want %v (times %v)", i, ts, want, dstRcv.Times)
		}
	}
}

// TestAdoptWithStraddlingEvents makes the cut fall between a send
// and its delivery: the receiver's pending inbox event has a
// timestamp beyond the capture horizon, travels inside the image,
// and must be delivered at its exact original virtual time in the
// new subsystem.
func TestAdoptWithStraddlingEvents(t *testing.T) {
	// Period 10, net delay 7: the value sent at t=40 is delivered at
	// t=47, so capturing at the Run(40) exit catches it in flight —
	// absorbed into dst's inbox but not yet delivered.
	src, srcRcv := buildMigPair(t, "origin", 8, 7)
	if err := src.Run(40); err != nil {
		t.Fatalf("source run: %v", err)
	}
	if got := len(srcRcv.Got); got != 3 {
		t.Fatalf("precondition: source receiver saw %d values before the cut, want 3", got)
	}
	ci, err := ExtractComponent(src, "straddle", "dst")
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	straddlers := 0
	for _, e := range ci.Inbox {
		if e.Time > 40 {
			straddlers++
		}
	}
	if straddlers == 0 {
		t.Fatalf("precondition: no straddling event in the image (inbox %+v)", ci.Inbox)
	}

	dstSub, dstRcv := buildMigPair(t, "destination", 8, 7)
	if err := dstSub.Run(40); err != nil {
		t.Fatalf("destination pre-run: %v", err)
	}
	if err := AdoptComponent(dstSub, ci); err != nil {
		t.Fatalf("adopt: %v", err)
	}
	if err := dstSub.Run(vtime.Infinity); err != nil {
		t.Fatalf("destination run: %v", err)
	}
	if len(dstRcv.Got) != 8 {
		t.Fatalf("adopted receiver saw %d values, want 8: %v", len(dstRcv.Got), dstRcv.Got)
	}
	for i, ts := range dstRcv.Times {
		want := vtime.Time(int64(i+1)*10 + 7)
		if ts != want {
			t.Fatalf("delivery %d at %v, want %v (straddler timing lost)", i, ts, want)
		}
	}
}

// TestExtractRefusesLiveWithoutSaver documents the failure mode: a
// live component with no StateSaver cannot be captured, so it cannot
// migrate.
type saverless struct{}

func (saverless) Run(p *core.Proc) error {
	for {
		if _, ok := p.Recv("in"); !ok {
			return nil
		}
	}
}

func TestExtractRefusesLiveWithoutSaver(t *testing.T) {
	s := core.NewSubsystem("bare")
	c, err := s.NewComponent("opaque", saverless{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddPort("in"); err != nil {
		t.Fatal(err)
	}
	n, err := s.NewNet("w", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Connect(n, c.Port("in")); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if _, err := ExtractComponent(s, "nope", "opaque"); err == nil {
		t.Fatal("extracting a live saverless component must fail")
	}
}
