package snapshot

import (
	"sync"
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/vtime"
)

// stepSender emits Count values on "out", spaced Period apart.
type stepSender struct {
	Next   int
	Count  int
	Period vtime.Duration
}

func (s *stepSender) Run(p *core.Proc) error {
	for s.Next < s.Count {
		p.Delay(s.Period)
		p.Send("out", s.Next)
		s.Next++
	}
	return nil
}

func (s *stepSender) SaveState() ([]byte, error)  { return core.GobSave(s) }
func (s *stepSender) RestoreState(b []byte) error { return core.GobRestore(s, b) }

type recorder struct {
	Got []int
}

func (r *recorder) Run(p *core.Proc) error {
	for {
		m, ok := p.Recv("in")
		if !ok {
			return nil
		}
		r.Got = append(r.Got, m.Value.(int))
	}
}

func (r *recorder) SaveState() ([]byte, error)  { return core.GobSave(r) }
func (r *recorder) RestoreState(b []byte) error { return core.GobRestore(r, b) }

// pair builds two subsystems connected by a channel, sender on ss1
// driving net "link" into a recorder on ss2.
func pair(t *testing.T, policy channel.Policy, count int, period vtime.Duration) (s1, s2 *core.Subsystem, snd *stepSender, rcv *recorder, a1, a2 *Agent, h1, h2 *channel.Hub) {
	t.Helper()
	s1 = core.NewSubsystem("ss1")
	s2 = core.NewSubsystem("ss2")
	snd = &stepSender{Count: count, Period: period}
	rcv = &recorder{}
	sc, _ := s1.NewComponent("prod", snd)
	sc.AddPort("out")
	rc, _ := s2.NewComponent("cons", rcv)
	rc.AddPort("in")
	n1, _ := s1.NewNet("link", 0)
	s1.Connect(n1, sc.Port("out"))
	n2, _ := s2.NewNet("link", 0)
	s2.Connect(n2, rc.Port("in"))
	h1, h2 = channel.NewHub(s1), channel.NewHub(s2)
	link := channel.LinkModel{Latency: 5, PerMessage: 1}
	ep1, ep2, err := channel.Connect(h1, h2, policy, link)
	if err != nil {
		t.Fatal(err)
	}
	ep1.BindNet(n1, "link")
	ep2.BindNet(n2, "link")
	a1, a2 = NewAgent(h1), NewAgent(h2)
	return
}

func runBoth(s1, s2 *core.Subsystem, until vtime.Time) (error, error) {
	var wg sync.WaitGroup
	var e1, e2 error
	wg.Add(2)
	go func() { defer wg.Done(); e1 = s1.Run(until) }()
	go func() { defer wg.Done(); e2 = s2.Run(until) }()
	wg.Wait()
	return e1, e2
}

func TestSnapshotCompletesOnBothSides(t *testing.T) {
	s1, s2, _, rcv, a1, a2, _, _ := pair(t, channel.Conservative, 5, 100)
	var got1, got2 *Snapshot
	var mu sync.Mutex
	a1.OnComplete = func(s *Snapshot) { mu.Lock(); got1 = s; mu.Unlock() }
	a2.OnComplete = func(s *Snapshot) { mu.Lock(); got2 = s; mu.Unlock() }
	tag := a1.Initiate()
	e1, e2 := runBoth(s1, s2, 1000)
	if e1 != nil || e2 != nil {
		t.Fatalf("run errors: %v / %v", e1, e2)
	}
	mu.Lock()
	defer mu.Unlock()
	if got1 == nil || got2 == nil {
		t.Fatal("snapshot did not complete on both sides")
	}
	if got1.Tag != tag || got2.Tag != tag {
		t.Fatalf("tags: %q / %q, want %q", got1.Tag, got2.Tag, tag)
	}
	if a1.Err() != nil || a2.Err() != nil {
		t.Fatalf("agent errors: %v / %v", a1.Err(), a2.Err())
	}
	if a1.Completed(tag) != got1 || a2.Completed(tag) != got2 {
		t.Fatal("Completed lookup broken")
	}
	if len(rcv.Got) != 5 {
		t.Fatalf("delivery disturbed by snapshot: %v", rcv.Got)
	}
	if got1.Checkpoint == nil || got2.Checkpoint == nil {
		t.Fatal("missing local checkpoints")
	}
}

// timedSender sends value i at absolute virtual time At[i].
type timedSender struct {
	Next int
	At   []int64
}

func (s *timedSender) Run(p *core.Proc) error {
	for s.Next < len(s.At) {
		target := vtime.Time(s.At[s.Next])
		if target > p.Time() {
			p.Delay(target.Sub(p.Time()))
		}
		p.Send("out", s.Next)
		s.Next++
	}
	return nil
}

func (s *timedSender) SaveState() ([]byte, error)  { return core.GobSave(s) }
func (s *timedSender) RestoreState(b []byte) error { return core.GobRestore(s, b) }

func TestCoordinatedRestoreReplaysTail(t *testing.T) {
	// A sender with a fixed schedule: three values before the cut,
	// two after it.
	s1 := core.NewSubsystem("ss1")
	s2 := core.NewSubsystem("ss2")
	snd := &timedSender{At: []int64{100, 200, 300, 700, 800}}
	rcv := &recorder{}
	sc, _ := s1.NewComponent("prod", snd)
	sc.AddPort("out")
	rc, _ := s2.NewComponent("cons", rcv)
	rc.AddPort("in")
	n1, _ := s1.NewNet("link", 0)
	s1.Connect(n1, sc.Port("out"))
	n2, _ := s2.NewNet("link", 0)
	s2.Connect(n2, rc.Port("in"))
	h1, h2 := channel.NewHub(s1), channel.NewHub(s2)
	ep1, ep2, err := channel.Connect(h1, h2, channel.Conservative, channel.LinkModel{Latency: 5, PerMessage: 1})
	if err != nil {
		t.Fatal(err)
	}
	ep1.BindNet(n1, "link")
	ep2.BindNet(n2, "link")
	a1, a2 := NewAgent(h1), NewAgent(h2)

	// Phase 1: deliver the first 3 values.
	e1, e2 := runBoth(s1, s2, 400)
	if e1 != nil || e2 != nil {
		t.Fatalf("phase1: %v / %v", e1, e2)
	}
	if len(rcv.Got) != 3 {
		t.Fatalf("phase1 deliveries = %v", rcv.Got)
	}

	// Snapshot at the cut (virtual ~400-500).
	var snapDone *Snapshot
	var mu sync.Mutex
	a2.OnComplete = func(s *Snapshot) { mu.Lock(); snapDone = s; mu.Unlock() }
	tag := a1.Initiate()
	e1, e2 = runBoth(s1, s2, 500)
	if e1 != nil || e2 != nil {
		t.Fatalf("snapshot phase: %v / %v", e1, e2)
	}
	mu.Lock()
	if snapDone == nil {
		mu.Unlock()
		t.Fatal("snapshot incomplete after phase")
	}
	mu.Unlock()

	// Phase 2: two more values after the cut.
	e1, e2 = runBoth(s1, s2, 1000)
	if e1 != nil || e2 != nil {
		t.Fatalf("phase2: %v / %v", e1, e2)
	}
	if len(rcv.Got) != 5 {
		t.Fatalf("phase2 deliveries = %v", rcv.Got)
	}

	// Coordinated restore: both subsystems rewind to the cut; the
	// sender's re-execution regenerates values 3 and 4. ss2 runs to
	// Infinity so it is guaranteed to be alive when the restore
	// order and the regenerated data arrive.
	restored2 := make(chan string, 1)
	a2.OnRestore = func(tg string) { restored2 <- tg }
	done2 := make(chan error, 1)
	go func() { done2 <- s2.Run(vtime.Infinity) }()
	a1.RestoreTag(tag)
	e1 = s1.Run(1000)
	if e1 != nil {
		t.Fatalf("replay s1: %v", e1)
	}
	if got := <-restored2; got != tag {
		t.Fatalf("ss2 restored %q, want %q", got, tag)
	}
	if err := h1.Close(); err != nil {
		t.Fatal(err)
	}
	if e2 = <-done2; e2 != nil {
		t.Fatalf("replay s2: %v", e2)
	}
	if a1.Err() != nil || a2.Err() != nil {
		t.Fatalf("agent errors: %v / %v", a1.Err(), a2.Err())
	}
	if s1.Stats().Restores != 1 || s2.Stats().Restores != 1 {
		t.Fatalf("restore counts: %d / %d", s1.Stats().Restores, s2.Stats().Restores)
	}
	if len(rcv.Got) != 5 {
		t.Fatalf("after replay: %v", rcv.Got)
	}
	for i, v := range rcv.Got {
		if v != i {
			t.Fatalf("replay order broken: %v", rcv.Got)
		}
	}
}

func TestThreeSubsystemMarkPropagation(t *testing.T) {
	// A chain a -> b -> c: initiating at a must complete snapshots
	// on all three via relayed marks.
	mk := func(name string) *core.Subsystem { return core.NewSubsystem(name) }
	sa, sb, sc := mk("a"), mk("b"), mk("c")
	// a: sender; b: forwarder; c: recorder.
	snd := &stepSender{Count: 3, Period: 50}
	ac, _ := sa.NewComponent("src", snd)
	ac.AddPort("out")
	fwd := core.BehaviorFunc(func(p *core.Proc) error {
		for {
			m, ok := p.Recv("in")
			if !ok {
				return nil
			}
			p.Advance(1)
			p.Send("out", m.Value)
		}
	})
	bc, _ := sb.NewComponent("fwd", &trivialState{B: fwd})
	bc.AddPort("in")
	bc.AddPort("out")
	rcv := &recorder{}
	cc, _ := sc.NewComponent("dst", rcv)
	cc.AddPort("in")

	na, _ := sa.NewNet("ab", 0)
	sa.Connect(na, ac.Port("out"))
	nbIn, _ := sb.NewNet("ab", 0)
	sb.Connect(nbIn, bc.Port("in"))
	nbOut, _ := sb.NewNet("bc", 0)
	sb.Connect(nbOut, bc.Port("out"))
	ncIn, _ := sc.NewNet("bc", 0)
	sc.Connect(ncIn, cc.Port("in"))

	ha, hb, hc := channel.NewHub(sa), channel.NewHub(sb), channel.NewHub(sc)
	link := channel.LinkModel{Latency: 5, PerMessage: 1}
	epAB, epBA, err := channel.Connect(ha, hb, channel.Conservative, link)
	if err != nil {
		t.Fatal(err)
	}
	epBC, epCB, err := channel.Connect(hb, hc, channel.Conservative, link)
	if err != nil {
		t.Fatal(err)
	}
	epAB.BindNet(na, "ab")
	epBA.BindNet(nbIn, "ab") // b never drives ab, but symmetric binding is harmless
	epBC.BindNet(nbOut, "bc")
	epCB.BindNet(ncIn, "bc")

	aa, ab, ac2 := NewAgent(ha), NewAgent(hb), NewAgent(hc)
	var mu sync.Mutex
	completed := map[string]bool{}
	for name, ag := range map[string]*Agent{"a": aa, "b": ab, "c": ac2} {
		n, g := name, ag
		g.OnComplete = func(*Snapshot) { mu.Lock(); completed[n] = true; mu.Unlock() }
	}
	tag := aa.Initiate()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i, s := range []*core.Subsystem{sa, sb, sc} {
		wg.Add(1)
		go func(i int, s *core.Subsystem) { defer wg.Done(); errs[i] = s.Run(500) }(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if !completed["a"] || !completed["b"] || !completed["c"] {
		t.Fatalf("snapshot %s incomplete: %v", tag, completed)
	}
	if len(rcv.Got) != 3 {
		t.Fatalf("chain delivered %v", rcv.Got)
	}
}

// trivialState wraps a stateless behaviour with empty state saving.
type trivialState struct {
	B core.Behavior
}

func (g *trivialState) Run(p *core.Proc) error     { return g.B.Run(p) }
func (g *trivialState) SaveState() ([]byte, error) { return []byte{}, nil }
func (g *trivialState) RestoreState([]byte) error  { return nil }

func TestSnapshotBasedStragglerRollback(t *testing.T) {
	// ss2 races ahead; its share of a completed coordinated snapshot
	// (cut at virtual ~0) serves as the rollback target when the
	// straggler arrives, and the straggler is redelivered.
	s1, s2, _, rcv, _, a2, h1, _ := pair(t, channel.Optimistic, 3, 100)
	a2.UseSnapshotsForRollback()
	busy := &stepSender{Count: 1200, Period: 1}
	bc, _ := s2.NewComponent("busy", busy)
	bc.AddPort("out")
	nb, _ := s2.NewNet("noise", 0)
	s2.Connect(nb, bc.Port("out"))

	// Initiate from ss2 so its local checkpoint is captured at cut
	// ~0, before the racing starts. Completion needs ss1's mark,
	// which arrives once ss1 runs — before ss1's data, because the
	// channel is FIFO.
	a2.Initiate()

	done2 := make(chan error, 1)
	go func() { done2 <- s2.Run(vtime.Infinity) }()
	// Wait until ss2 has raced well past the first send time.
	for {
		if now, _ := s2.PublishedTimes(); now >= 600 {
			break
		}
	}
	e1 := s1.Run(2000)
	if e1 != nil {
		t.Fatal(e1)
	}
	if err := h1.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := <-done2
	if e2 != nil {
		t.Fatal(e2)
	}
	if a2.Err() != nil {
		t.Fatalf("agent error: %v", a2.Err())
	}
	if s2.Stats().Restores == 0 {
		t.Fatal("no restore happened on ss2")
	}
	if s1.Stats().Restores != 0 {
		t.Fatal("receiver-local rollback leaked to the sender")
	}
	if len(rcv.Got) != 3 {
		t.Fatalf("after snapshot rollback: %v", rcv.Got)
	}
	for i, v := range rcv.Got {
		if v != i {
			t.Fatalf("order broken: %v", rcv.Got)
		}
	}
}

func TestLatestBefore(t *testing.T) {
	s1, s2, _, _, a1, _, _, _ := pair(t, channel.Conservative, 2, 50)
	tagA := a1.Initiate()
	e1, e2 := runBoth(s1, s2, 200)
	if e1 != nil || e2 != nil {
		t.Fatalf("%v / %v", e1, e2)
	}
	snap := a1.Completed(tagA)
	if snap == nil {
		t.Fatal("snapshot missing")
	}
	if got := a1.LatestBefore(vtime.Infinity); got != snap {
		t.Fatal("LatestBefore(Infinity) should find the snapshot")
	}
	if got := a1.LatestBefore(snap.Checkpoint.Time - 1); got != nil {
		t.Fatal("LatestBefore found a snapshot newer than the bound")
	}
	if snap.Messages() < 0 {
		t.Fatal("Messages() negative")
	}
}
