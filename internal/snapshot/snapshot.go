// Package snapshot implements distributed checkpoints for Pia using
// the Chandy-Lamport algorithm over the FIFO inter-subsystem
// channels, plus the coordinated restore that optimistic channels
// fall back on when a straggler arrives.
//
// After a subsystem receives (or generates) a checkpoint request, it
// performs a local checkpoint and transmits a mark on all of its
// outgoing channels. Upon receipt of a mark, a subsystem immediately
// performs a local checkpoint, before receiving anything else on that
// same channel. Each mark carries a tag (snapshot id), and a
// subsystem checkpoints only once per tag, so duplicate marks are
// ignored — exactly the paper's §2.2.4. The messages recorded on a
// channel between the local checkpoint and the arrival of the peer's
// mark are the channel's in-flight state; a coordinated restore
// replays them after rewinding every subsystem to its tagged local
// checkpoint.
//
// All agent state is touched only on the subsystem's scheduler
// goroutine: marks, data recording, captures and restores are
// serialized through the channel ingress queue, which preserves
// per-channel FIFO order — the property Chandy-Lamport requires.
package snapshot

import (
	"fmt"
	"sync"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/vtime"
)

// Snapshot is one subsystem's completed share of a distributed
// snapshot: its local checkpoint plus the in-flight messages captured
// on each incoming channel.
type Snapshot struct {
	Tag        string
	Checkpoint *core.CheckpointSet
	InFlight   map[string][]channel.Message // peer -> messages
}

// Messages returns the total number of captured in-flight messages.
func (s *Snapshot) Messages() int {
	n := 0
	for _, ms := range s.InFlight {
		n += len(ms)
	}
	return n
}

// state tracks an in-progress snapshot.
type state struct {
	tag        string
	checkpoint *core.CheckpointSet
	pending    map[string]bool // peers whose mark is still missing
	inflight   map[string][]channel.Message
}

// Agent coordinates distributed snapshots and restores for one
// subsystem. Create it after all channel endpoints exist.
type Agent struct {
	sub *core.Subsystem
	hub *channel.Hub

	states map[string]*state

	// mu guards done and doneOrder: they are written on the scheduler
	// goroutine but read by the resilience layer's rewind hooks from
	// session goroutines.
	mu        sync.Mutex
	done      map[string]*Snapshot
	doneOrder []string

	restored map[string]bool // restore tokens already executed
	initSeq  int
	rstSeq   int
	err      error

	// OnComplete fires (on the scheduler goroutine) when this
	// subsystem's share of a snapshot is complete.
	OnComplete func(*Snapshot)
	// OnRestore fires after a coordinated restore finished locally.
	OnRestore func(tag string)
}

// NewAgent attaches an agent to the hub's endpoints.
func NewAgent(hub *channel.Hub) *Agent {
	a := &Agent{
		sub:      hub.Subsystem(),
		hub:      hub,
		states:   make(map[string]*state),
		done:     make(map[string]*Snapshot),
		restored: make(map[string]bool),
	}
	for _, ep := range hub.Endpoints() {
		a.attach(ep)
	}
	return a
}

func (a *Agent) attach(ep *channel.Endpoint) {
	e := ep
	e.SetMarkHandler(func(tag string) { a.onMark(tag, e) })
	e.SetRestoreHandler(func(token string) { a.execRestore(token) })
}

// Attach wires the agent's mark and restore handlers onto an endpoint
// created after the agent was (a mesh channel dialed mid-run under a
// new placement epoch). Idempotent: attaching the same endpoint twice
// just replaces the handlers with equivalent ones.
func (a *Agent) Attach(ep *channel.Endpoint) { a.attach(ep) }

// UseSnapshotsForRollback makes optimistic stragglers rewind to this
// subsystem's portion of the latest completed coordinated snapshot at
// or before the straggler time, replaying the in-flight messages the
// snapshot captured. The rollback stays receiver-local — the paper's
// optimistic-channel semantics — so the straggler itself is
// redelivered afterwards. (A receiver-local rollback can orphan
// messages the receiver emitted in its discarded future; that is the
// paper's "more expensive restores if optimistic channels are poorly
// placed". A fully coordinated restore is available explicitly via
// RestoreTag.) Falls back to plain local checkpoints when no snapshot
// is old enough.
func (a *Agent) UseSnapshotsForRollback() {
	for _, ep := range a.hub.Endpoints() {
		a.setStraggler(ep)
	}
}

func (a *Agent) setStraggler(ep *channel.Endpoint) {
	ep.SetStragglerHandler(func(t vtime.Time) bool {
		if snap := a.LatestBefore(t); snap != nil {
			if err := a.restoreLocal(snap); err == nil {
				return true
			}
		}
		// No coordinated snapshot available; fall back to a local
		// rollback. Either way the message must be redelivered.
		a.sub.RequestRollback(t)
		return true
	})
}

// restoreLocal rewinds only this subsystem to its share of the
// snapshot and replays the captured in-flight messages. Runs on the
// scheduler goroutine.
func (a *Agent) restoreLocal(snap *Snapshot) error {
	if err := a.sub.RestoreCheckpoint(snap.Checkpoint); err != nil {
		if a.err == nil {
			a.err = fmt.Errorf("snapshot %s: local restore: %w", snap.Tag, err)
		}
		return err
	}
	a.replay(snap)
	if a.OnRestore != nil {
		a.OnRestore(snap.Tag)
	}
	return nil
}

// replay re-injects the snapshot's captured in-flight messages.
func (a *Agent) replay(snap *Snapshot) {
	for _, msgs := range snap.InFlight {
		for _, m := range msgs {
			if m.Kind != channel.KindData {
				continue
			}
			_ = a.sub.DriveNow(m.Net, m.Source, m.Time, m.Value)
		}
	}
}

// Err returns the first error the agent hit (e.g. an
// uncheckpointable component).
func (a *Agent) Err() error { return a.err }

// Initiate starts a distributed snapshot and returns its tag. The
// snapshot completes asynchronously; watch OnComplete or Completed.
func (a *Agent) Initiate() string {
	a.initSeq++
	tag := fmt.Sprintf("snap:%s:%d", a.sub.Name(), a.initSeq)
	a.sub.InjectFunc(func() bool {
		a.onMark(tag, nil)
		return false
	})
	return tag
}

// Completed returns the finished snapshot for a tag, or nil.
func (a *Agent) Completed(tag string) *Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.done[tag]
}

// LatestBefore returns the most recent completed snapshot whose cut
// time is <= t, or nil.
func (a *Agent) LatestBefore(t vtime.Time) *Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := len(a.doneOrder) - 1; i >= 0; i-- {
		s := a.done[a.doneOrder[i]]
		if s.Checkpoint != nil && s.Checkpoint.Time <= t {
			return s
		}
	}
	return nil
}

// LatestTag returns the most recent completed snapshot tag, or "".
// Safe from any goroutine — this is the resilience layer's
// latest-checkpoint rewind hook.
func (a *Agent) LatestTag() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := len(a.doneOrder) - 1; i >= 0; i-- {
		if s := a.done[a.doneOrder[i]]; s != nil && s.Checkpoint != nil {
			return a.doneOrder[i]
		}
	}
	return ""
}

// HasTag reports whether the tagged snapshot completed here. Safe
// from any goroutine — the resilience layer's tag-check rewind hook.
func (a *Agent) HasTag(tag string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.done[tag]
	return s != nil && s.Checkpoint != nil
}

// RewindTo restores the tagged snapshot locally in response to a
// session-level rewind (the peer is doing the same; no restore orders
// travel the channel, which has just been reset). The work runs on
// the scheduler goroutine after everything already queued — including
// every message of the dead connection epoch — has been processed.
// Hook order: beforeRestore fires first (the node layer resets the
// channel protocol there), then the checkpoint restore; beforeReplay
// fires between the restore and the in-flight replay (the node layer
// reopens channel egress there, since replayed drives may forward
// across the channel immediately); done fires last with the outcome.
// If the subsystem's run loop has already exited, done fires with an
// error instead of waiting on a scheduler that will never come back.
// Safe from any goroutine.
func (a *Agent) RewindTo(tag string, beforeRestore, beforeReplay func(), done func(error)) {
	fail := func(err error) {
		if a.err == nil {
			a.err = err
		}
		if done != nil {
			done(err)
		}
	}
	a.sub.InjectCtl(func() bool {
		if beforeRestore != nil {
			beforeRestore()
		}
		snap := a.Completed(tag)
		if snap == nil {
			fail(fmt.Errorf("snapshot: rewind to unknown tag %q", tag))
			return false
		}
		if err := a.sub.RestoreCheckpoint(snap.Checkpoint); err != nil {
			fail(fmt.Errorf("snapshot %s: rewind restore: %w", tag, err))
			return false
		}
		if beforeReplay != nil {
			beforeReplay()
		}
		a.replay(snap)
		if a.OnRestore != nil {
			a.OnRestore(tag)
		}
		if done != nil {
			done(nil)
		}
		return false
	}, func(err error) {
		// The run loop exited before servicing the rewind (it can
		// only happen in the narrow window between a clean departure
		// and the rewind negotiation — the departure gate holds the
		// loop alive while any session business is pending). Only
		// done may run here: this fires off the scheduler goroutine,
		// so a.err is out of bounds.
		if done != nil {
			done(fmt.Errorf("snapshot: rewind to %q: %w", tag, err))
		}
	})
}

// onMark handles a mark (from == nil means self-initiated). Runs on
// the scheduler goroutine.
func (a *Agent) onMark(tag string, from *channel.Endpoint) {
	st := a.states[tag]
	if st == nil {
		if a.Completed(tag) != nil {
			return // stale duplicate mark for a finished snapshot
		}
		// First mark for this tag: checkpoint locally before
		// receiving anything else, then relay marks everywhere and
		// start recording the other channels.
		cs, err := a.sub.CaptureNow(tag)
		if err != nil {
			if a.err == nil {
				a.err = fmt.Errorf("snapshot %s: %w", tag, err)
			}
			return
		}
		st = &state{
			tag:        tag,
			checkpoint: cs,
			pending:    make(map[string]bool),
			inflight:   make(map[string][]channel.Message),
		}
		a.states[tag] = st
		for _, ep := range a.hub.Endpoints() {
			ep.SendMark(tag)
			if from != nil && ep.Peer() == from.Peer() {
				// The channel the mark arrived on has an empty
				// in-flight state by definition.
				st.inflight[ep.Peer()] = nil
				continue
			}
			st.pending[ep.Peer()] = true
			ep.SetRecording(true)
		}
	} else if from != nil && st.pending[from.Peer()] {
		// Subsequent mark: the in-flight set of that channel is
		// whatever was recorded since our checkpoint.
		st.inflight[from.Peer()] = from.TakeRecorded()
		delete(st.pending, from.Peer())
	}
	if len(st.pending) == 0 {
		delete(a.states, tag)
		snap := &Snapshot{Tag: tag, Checkpoint: st.checkpoint, InFlight: st.inflight}
		a.mu.Lock()
		a.done[tag] = snap
		a.doneOrder = append(a.doneOrder, tag)
		a.mu.Unlock()
		if a.OnComplete != nil {
			a.OnComplete(snap)
		}
	}
}

// RestoreTag initiates a coordinated restore of the tagged snapshot
// across every subsystem. Safe from any goroutine.
func (a *Agent) RestoreTag(tag string) {
	token := a.newToken(tag)
	a.sub.InjectFunc(func() bool {
		a.doRestore(token)
		return false
	})
}

func (a *Agent) newToken(tag string) string {
	a.rstSeq++
	return fmt.Sprintf("%s|%s#%d", tag, a.sub.Name(), a.rstSeq)
}

// execRestore handles an incoming restore order (scheduler
// goroutine).
func (a *Agent) execRestore(token string) { a.doRestore(token) }

// doRestore executes a restore token locally and forwards it.
func (a *Agent) doRestore(token string) {
	if a.restored[token] {
		return
	}
	a.restored[token] = true
	tag := token
	for i := 0; i < len(token); i++ {
		if token[i] == '|' {
			tag = token[:i]
			break
		}
	}
	snap := a.Completed(tag)
	if snap == nil {
		if a.err == nil {
			a.err = fmt.Errorf("snapshot: restore of unknown tag %q", tag)
		}
		return
	}
	for _, ep := range a.hub.Endpoints() {
		ep.SendRestore(token)
	}
	if err := a.sub.RestoreCheckpoint(snap.Checkpoint); err != nil {
		if a.err == nil {
			a.err = fmt.Errorf("snapshot %s: restore: %w", tag, err)
		}
		return
	}
	// Replay the captured in-flight messages into the restored
	// state.
	a.replay(snap)
	if a.OnRestore != nil {
		a.OnRestore(tag)
	}
}
