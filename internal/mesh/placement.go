// Blueprint: the shared description of the simulated system that
// every mesh member compiles in. Behaviours are Go code, so they
// cannot travel over the wire — instead each member carries the same
// blueprint and a migration destination instantiates the component
// from its factory, then adoption supplies the captured state.
package mesh

import (
	"fmt"
	"sort"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/vtime"
)

// ComponentSpec describes one component: its ports and a factory for
// a fresh behaviour instance.
type ComponentSpec struct {
	Name  string
	Ports []string
	New   func() core.Behavior
}

// NetSpec describes one logical net in the global view.
type NetSpec struct {
	Name  string
	Delay vtime.Duration
	Ports []graph.PortRef
}

// Blueprint is the global system description plus the initial
// placement of components onto members. All cross-member channels
// share one policy and link model; migration transparency requires a
// pure-latency link (PerMessage == 0, BytesPerSecond == 0) so that a
// message's arrival time does not depend on channel serialization
// history, only on when it was sent.
type Blueprint struct {
	Components []ComponentSpec
	Nets       []NetSpec
	Placement  map[string]string // component -> member name
	Policy     channel.Policy
	Link       channel.LinkModel
}

// Component returns the spec for the named component, or nil.
func (bp *Blueprint) Component(name string) *ComponentSpec {
	for i := range bp.Components {
		if bp.Components[i].Name == name {
			return &bp.Components[i]
		}
	}
	return nil
}

// Validate checks the blueprint against the member set. A component
// placed on a member the mesh does not know about fails fast with a
// *graph.UnknownHostError naming both, mirroring the build-time check
// in pia.BuildOnNodes.
func (bp *Blueprint) Validate(members []string) error {
	known := make(map[string]bool, len(members))
	for _, m := range members {
		known[m] = true
	}
	comps := make([]string, 0, len(bp.Components))
	for _, cs := range bp.Components {
		comps = append(comps, cs.Name)
	}
	sort.Strings(comps)
	for _, c := range comps {
		host, ok := bp.Placement[c]
		if !ok {
			return fmt.Errorf("mesh: component %q has no placement", c)
		}
		if !known[host] {
			return &graph.UnknownHostError{Component: c, Host: host}
		}
	}
	for _, cs := range bp.Components {
		if cs.New == nil {
			return fmt.Errorf("mesh: component %q has no behaviour factory", cs.Name)
		}
	}
	return nil
}

// View builds the global graph view from the blueprint.
func (bp *Blueprint) View() (*graph.View, error) {
	v := graph.NewView()
	for _, cs := range bp.Components {
		if err := v.AddComponent(cs.Name, bp.Placement[cs.Name]); err != nil {
			return nil, err
		}
	}
	for _, ns := range bp.Nets {
		if err := v.AddNet(ns.Name, ns.Delay, ns.Ports...); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// netsByPeer extracts, for one member, the set of nets each of its
// channels carries: peer name -> net name set.
func netsByPeer(chans []graph.ChannelSpec, me string) map[string]map[string]bool {
	out := make(map[string]map[string]bool)
	for _, cs := range chans {
		var peer string
		switch me {
		case cs.A:
			peer = cs.B
		case cs.B:
			peer = cs.A
		default:
			continue
		}
		set := make(map[string]bool, len(cs.Nets))
		for _, n := range cs.Nets {
			set[n] = true
		}
		out[peer] = set
	}
	return out
}

// fragmentFor returns the fragment of a split realized on the given
// member, or nil when the member hosts none of the net's ports.
func fragmentFor(sp graph.Split, me string) *graph.Fragment {
	for i := range sp.Fragments {
		if sp.Fragments[i].Subsystem == me {
			return &sp.Fragments[i]
		}
	}
	return nil
}
