// Control-plane wire protocol. Members speak gob over dedicated TCP
// connections, one per unordered member pair (the lexicographically
// smaller name dials). The control plane is deliberately NOT routed
// through the data-plane wire layer: membership and migration
// coordination must stay reachable while faultnet is mangling the
// data links, exactly like a management network in a real cluster.
package mesh

import (
	"repro/internal/vtime"
)

// ctlHello opens a control connection (sent by the dialer).
// DataAddr is the sender's data-plane listen address, which peers
// need later to dial simulation channels toward it.
type ctlHello struct {
	From     string
	DataAddr string
}

// ctlWelcome acknowledges a hello (sent by the acceptor).
type ctlWelcome struct {
	From     string
	DataAddr string
}

// envelope is the single framed type exchanged after the handshake.
// Exactly one field is non-nil. A struct-of-pointers union keeps the
// stream self-describing without gob interface registration.
type envelope struct {
	Heartbeat  *heartbeatMsg
	Ready      *readyMsg
	StepGo     *stepGoMsg
	StepDone   *stepDoneMsg
	MigRequest *migRequestMsg
	MigPrepare *migPrepareMsg
	MigPrepared *migPreparedMsg
	MigApply   *migApplyMsg
	MigApplied *migAppliedMsg
	MigDial    *migDialMsg
	MigDialed  *migDialedMsg
	Finish     *finishMsg
	Finished   *finishedMsg
	Leave      *leaveMsg
}

// heartbeatMsg keeps the membership table warm. Any control traffic
// counts as a heartbeat; this one flows when nothing else does.
type heartbeatMsg struct {
	Seq uint64
}

// readyMsg reports that a member finished building its local plane
// (components, nets, data channels) and can accept step rounds.
type readyMsg struct {
	Err string
}

// stepGoMsg orders one lock-step round: run the local subsystem to
// the horizon, then report counters. The leader re-issues with a
// fresh Round number until the drain barrier holds.
type stepGoMsg struct {
	Round uint64
	Until vtime.Time
	Epoch uint64
}

// stepDoneMsg reports per-peer channel counters after a round. The
// barrier holds when, for every directed pair X->Y, X's Sent[Y]
// equals Y's Queued[X] equals Y's Handled[X]: every message sent has
// been received AND absorbed into the destination subsystem, so all
// channels are provably empty.
type stepDoneMsg struct {
	Round   uint64
	Sent    map[string]int64 // peer -> messages we sent toward it
	Queued  map[string]int64 // peer -> messages we enqueued from it
	Handled map[string]int64 // peer -> messages we absorbed from it
	Err     string
}

// migRequestMsg asks the leader to migrate a component. Any member
// (or an admin endpoint on any member) may send it; the leader
// executes at the next drained barrier.
type migRequestMsg struct {
	Comp string
	Dest string
}

// migPrepareMsg orders the source member to extract the component
// image at the held barrier.
type migPrepareMsg struct {
	Epoch uint64
	Comp  string
	Dest  string
}

// migPreparedMsg returns the encoded snapshot.ComponentImage plus the
// component's running drive-digest state, which must move with it so
// the digest stream stays continuous across homes.
type migPreparedMsg struct {
	Epoch  uint64
	Image  []byte
	Digest uint64
	Err    string
}

// migApplyMsg broadcasts the new placement epoch. Every member
// re-derives its net splits from the moved global view and splices
// channel bindings; Image is non-empty only toward the destination.
type migApplyMsg struct {
	Epoch  uint64
	Comp   string
	From   string
	To     string
	Image  []byte
	Digest uint64
}

// migAppliedMsg acks an epoch application.
type migAppliedMsg struct {
	Epoch uint64
	Err   string
}

// migDialMsg orders members to establish any data channels the new
// placement requires that did not exist before. It is a separate
// phase so every member has already applied the epoch (and therefore
// knows its bindings) before any new connection handshake begins.
type migDialMsg struct {
	Epoch uint64
}

// migDialedMsg acks the dial phase.
type migDialedMsg struct {
	Epoch uint64
	Err   string
}

// finishMsg ends the run: no more rounds will be issued.
type finishMsg struct{}

// finishedMsg acks a finish.
type finishedMsg struct {
	Err string
}

// leaveMsg announces a graceful departure from the mesh.
type leaveMsg struct{}
