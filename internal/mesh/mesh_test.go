package mesh

import (
	"errors"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/vtime"
)

var demoNames = []string{"alpha", "bravo", "charlie"}

func demoParams() DemoParams {
	return DemoParams{Members: demoNames}.withDefaults()
}

func runDemo(t *testing.T, plan func(lm *LocalMesh), tune func(i int, cfg *Config)) (*LocalMesh, DemoParams) {
	t.Helper()
	p := demoParams()
	bp, err := DemoBlueprint(p)
	if err != nil {
		t.Fatalf("blueprint: %v", err)
	}
	lm, err := StartLocalMesh(bp, demoNames, tune)
	if err != nil {
		t.Fatalf("start mesh: %v", err)
	}
	t.Cleanup(lm.Close)
	if plan != nil {
		plan(lm)
	}
	if err := lm.Run(p.Horizon(), 25*vtime.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	return lm, p
}

// hotState digs the hot component's behaviour out of whichever member
// currently hosts it.
func hotState(t *testing.T, lm *LocalMesh) *hotBeh {
	t.Helper()
	home := lm.Leader().Placement()["hot"]
	m := lm.Member(home)
	if m == nil {
		t.Fatalf("placement says hot is on unknown member %q", home)
	}
	c := m.Subsystem().Component("hot")
	if c == nil {
		t.Fatalf("member %s does not host hot despite placement", home)
	}
	return c.Behavior().(*hotBeh)
}

func TestMeshRunsDemo(t *testing.T) {
	lm, p := runDemo(t, nil, nil)
	h := hotState(t, lm)
	if h.I != p.Values || h.Got != p.Values*p.Sinks {
		t.Fatalf("hot finished I=%d Got=%d, want I=%d Got=%d", h.I, h.Got, p.Values, p.Values*p.Sinks)
	}
	dg := lm.Digests()
	for _, comp := range []string{"hot", "sink0", "pump-alpha", "pump-bravo"} {
		if dg[comp] == 0 {
			t.Errorf("no drive digest for %s: %v", comp, dg)
		}
	}
	st := lm.Leader().Stats()
	if st.Rounds == 0 {
		t.Errorf("leader recorded no rounds")
	}
	if st.Epoch != 0 {
		t.Errorf("epoch moved without migration: %d", st.Epoch)
	}
}

func TestMeshMigrationMovesComponent(t *testing.T) {
	lm, p := runDemo(t, func(lm *LocalMesh) {
		if err := lm.Leader().MigrateAt(vtime.Time(50*vtime.Millisecond), "hot", "bravo"); err != nil {
			t.Fatalf("schedule migration: %v", err)
		}
	}, nil)
	for _, m := range lm.Members {
		if got := m.Epoch(); got != 1 {
			t.Errorf("member %s at epoch %d, want 1", m.Name(), got)
		}
		if home := m.Placement()["hot"]; home != "bravo" {
			t.Errorf("member %s places hot on %q, want bravo", m.Name(), home)
		}
	}
	if lm.Member("alpha").Subsystem().Component("hot") != nil {
		t.Errorf("hot still instantiated on alpha after migration")
	}
	if lm.Member("bravo").Subsystem().Component("hot") == nil {
		t.Fatalf("hot not instantiated on bravo after migration")
	}
	h := hotState(t, lm)
	if h.I != p.Values || h.Got != p.Values*p.Sinks {
		t.Fatalf("migrated hot finished I=%d Got=%d, want I=%d Got=%d",
			h.I, h.Got, p.Values, p.Values*p.Sinks)
	}
	st := lm.Leader().Stats()
	if st.Migrations != 1 {
		t.Errorf("leader counted %d migrations, want 1", st.Migrations)
	}
	if st.MigrationVirtual != 0 {
		t.Errorf("migration consumed %v virtual time, want 0", st.MigrationVirtual)
	}
}

func TestMeshHealth(t *testing.T) {
	lm, _ := runDemo(t, nil, nil)
	h := lm.Leader().Health()
	if h.Total != 3 || h.Alive != 3 || h.QuorumDead {
		t.Fatalf("healthy mesh reported %+v", h)
	}
	lm.Member("charlie").Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		h = lm.Leader().Health()
		if h.Alive == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leader never noticed charlie leaving: %+v", h)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if h.QuorumDead {
		t.Fatalf("2/3 alive must keep quorum: %+v", h)
	}
	for _, ph := range h.Members {
		if ph.Name == "charlie" && !ph.Left {
			t.Fatalf("charlie not marked left: %+v", ph)
		}
	}
}

func TestBlueprintValidatePlacement(t *testing.T) {
	p := demoParams()
	bp, err := DemoBlueprint(p)
	if err != nil {
		t.Fatal(err)
	}
	bp.Placement["hot"] = "nowhere"
	err = bp.Validate(demoNames)
	var uh *graph.UnknownHostError
	if !errors.As(err, &uh) {
		t.Fatalf("want UnknownHostError, got %v", err)
	}
	if uh.Component != "hot" || uh.Host != "nowhere" {
		t.Fatalf("error names wrong offender: %+v", uh)
	}
}
