// Package mesh is the cluster control plane: it runs N pianodes as a
// full mesh with join/leave membership, per-peer heartbeat health, a
// replicated component->member placement map stamped with
// leader-issued epochs, and live component migration on top of the
// simulation layers below.
//
// # Roles
//
// Membership is a static peer list; the member with the
// lexicographically smallest name is the leader. The leader drives
// the run as lock-step rounds: it broadcasts a horizon, every member
// runs its local subsystem to it, and members report per-peer channel
// counters. A round's drain barrier holds when for every directed
// pair X->Y the count X sent equals the count Y enqueued equals the
// count Y absorbed — at that point every inter-member channel is
// provably empty and virtual time t <= horizon is globally final. The
// leader re-issues a round (cheap: re-entering Run at the same
// horizon is idempotent) until the barrier holds, which also rides
// out faultnet-induced retransmissions on the data plane.
//
// # Migration
//
// At a held barrier a local capture is a degenerate Chandy-Lamport
// cut (no in-flight channel state exists to record), so migration is:
// quiesce (the barrier itself) -> snapshot (extract the component
// image at the source) -> transfer (ship image + digest state to the
// destination inside the epoch broadcast) -> splice (every member
// moves the component in its replica of the global view, re-derives
// net splits, and rebinds channel endpoints; the destination rebuilds
// the component from the shared blueprint and adopts the state) ->
// resume (next round). Virtual time does not advance during any of
// this, so migration downtime in simulated time is exactly zero.
package mesh

import (
	"encoding/gob"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/timeline"
	"repro/internal/vtime"
)

// Config describes one mesh member.
type Config struct {
	// Name is the member's (and its subsystem's) unique name.
	Name string
	// Blueprint is the shared system description. Must be identical
	// on every member.
	Blueprint *Blueprint
	// Node optionally supplies a prebuilt node (so callers can
	// SetFaults/SetResilience before any listener starts). Nil
	// creates a plain node named after the member.
	Node *node.Node
	// CtlListen and DataListen are listen addresses; empty means an
	// ephemeral loopback port.
	CtlListen  string
	DataListen string
	// Heartbeat is the control-plane heartbeat interval (default
	// 250ms). A peer is reported dead after three missed intervals.
	Heartbeat time.Duration
	// ConnectTimeout bounds mesh formation and data-channel dials
	// (default 10s).
	ConnectTimeout time.Duration
	// StepTimeout bounds one coordination phase: a step round or a
	// migration phase (default 60s).
	StepTimeout time.Duration
	// Timeline, when non-nil, receives the member's timeline events
	// (and, on the leader, the migrate phase spans).
	Timeline *timeline.Recorder
	// NoDigest disables the per-component drive digest hook.
	NoDigest bool
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.CtlListen == "" {
		out.CtlListen = "127.0.0.1:0"
	}
	if out.DataListen == "" {
		out.DataListen = "127.0.0.1:0"
	}
	if out.Heartbeat <= 0 {
		out.Heartbeat = 250 * time.Millisecond
	}
	if out.ConnectTimeout <= 0 {
		out.ConnectTimeout = 10 * time.Second
	}
	if out.StepTimeout <= 0 {
		out.StepTimeout = 60 * time.Second
	}
	return out
}

// Stats counts control-plane activity on one member. Leader-only
// fields are zero elsewhere.
type Stats struct {
	Rounds     int64 // barriers that held (leader)
	Reissues   int64 // rounds re-issued because the barrier failed (leader)
	Migrations int64 // migrations completed (leader)
	Epoch      uint64
	// EpochPropagation is the wall-clock time from the last epoch
	// broadcast to its final ack (leader).
	EpochPropagation time.Duration
	// MigrationWall is the wall-clock span of the last migration,
	// prepare order to final dial ack (leader).
	MigrationWall time.Duration
	// MigrationVirtual is the virtual-time downtime of the last
	// migration: by construction zero, recorded to assert it.
	MigrationVirtual vtime.Duration
}

type inboundEnv struct {
	from string
	env  envelope
}

type migPlan struct {
	At   vtime.Time
	Comp string
	Dest string
}

// Member is one mesh participant: a node hosting one subsystem named
// after the member, plus the control-plane machinery.
type Member struct {
	cfg    Config
	name   string
	nd     *node.Node
	hosted *node.Hosted
	sub    *core.Subsystem
	hub    *channel.Hub

	bp        *Blueprint
	dataAddr  string
	ctlLn     net.Listener
	ctlAddr   string
	ms        *membership
	digest    *Digest
	tl        *timeline.Recorder
	epoch     atomic.Uint64
	leaderNm  string
	memberSet []string // all member names, sorted

	inbox    chan inboundEnv
	acks     chan inboundEnv
	migReqs  chan migRequestMsg
	accepted chan *channel.Endpoint

	mu        sync.Mutex
	view      *viewState // replicated placement (guarded by serve loop + mu for readers)
	plans     []migPlan  // leader: scheduled migrations, by virtual time
	stats     Stats
	runErr    error
	started   bool
	runDone   chan struct{}
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
	hbSeq     atomic.Uint64
}

// New creates a member: it builds the node, hosts the subsystem,
// starts the control and data listeners, and installs the digest and
// channel-accept hooks. Call Start to join the mesh.
func New(cfg Config) (*Member, error) {
	cfg = cfg.withDefaults()
	if cfg.Name == "" {
		return nil, fmt.Errorf("mesh: member needs a name")
	}
	if cfg.Blueprint == nil {
		return nil, fmt.Errorf("mesh: member %s needs a blueprint", cfg.Name)
	}
	m := &Member{
		cfg:      cfg,
		name:     cfg.Name,
		bp:       cfg.Blueprint,
		tl:       cfg.Timeline,
		inbox:    make(chan inboundEnv, 64),
		acks:     make(chan inboundEnv, 256),
		migReqs:  make(chan migRequestMsg, 16),
		accepted: make(chan *channel.Endpoint, 16),
		runDone:  make(chan struct{}),
		closed:   make(chan struct{}),
	}
	m.nd = cfg.Node
	if m.nd == nil {
		m.nd = node.New(cfg.Name)
	}
	if m.tl != nil {
		m.nd.EnableTimeline(m.tl)
	}
	m.sub = core.NewSubsystem(cfg.Name)
	m.hosted = m.nd.Host(m.sub)
	m.hub = m.hosted.Hub
	m.hosted.OnChannel = func(ep *channel.Endpoint) { m.accepted <- ep }
	if !cfg.NoDigest {
		m.digest = NewDigest()
		m.digest.Install(m.sub)
	}
	dataAddr, err := m.nd.Listen(cfg.DataListen)
	if err != nil {
		return nil, fmt.Errorf("mesh: %s data listen: %w", cfg.Name, err)
	}
	m.dataAddr = dataAddr
	ln, err := net.Listen("tcp", cfg.CtlListen)
	if err != nil {
		m.nd.Close()
		return nil, fmt.Errorf("mesh: %s control listen: %w", cfg.Name, err)
	}
	m.ctlLn = ln
	m.ctlAddr = ln.Addr().String()
	m.ms = newMembership(cfg.Name, cfg.Heartbeat)
	m.wg.Add(1)
	go m.acceptCtl()
	return m, nil
}

// CtlAddr returns the control-plane listen address.
func (m *Member) CtlAddr() string { return m.ctlAddr }

// DataAddr returns the data-plane listen address.
func (m *Member) DataAddr() string { return m.dataAddr }

// Name returns the member name.
func (m *Member) Name() string { return m.name }

// Subsystem exposes the hosted subsystem (for tests and tooling; do
// not call Run on it — the mesh drives rounds).
func (m *Member) Subsystem() *core.Subsystem { return m.sub }

// Node exposes the hosting node.
func (m *Member) Node() *node.Node { return m.nd }

// Digests returns this member's per-component drive digests.
func (m *Member) Digests() map[string]uint64 {
	if m.digest == nil {
		return nil
	}
	return m.digest.Snapshot()
}

// Health reports membership and heartbeat state.
func (m *Member) Health() Health { return m.ms.health() }

// Epoch returns the currently applied placement epoch.
func (m *Member) Epoch() uint64 { return m.epoch.Load() }

// IsLeader reports whether this member leads the mesh.
func (m *Member) IsLeader() bool { return m.name == m.leaderNm }

// Members returns all member names, sorted (valid after Start).
func (m *Member) Members() []string { return append([]string(nil), m.memberSet...) }

// Leader returns the leader's name (valid after Start).
func (m *Member) Leader() string { return m.leaderNm }

// Stats returns control-plane counters.
func (m *Member) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.Epoch = m.epoch.Load()
	return s
}

// Placement returns the member's replica of the component->member
// placement map at the current epoch.
func (m *Member) Placement() map[string]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]string)
	if m.view != nil {
		for c, s := range m.view.placement {
			out[c] = s
		}
	}
	return out
}

// Start joins the mesh: peers maps every member name (self included
// or not) to its control address. Start connects the full control
// mesh, exchanges data-plane addresses, builds the local slice of the
// simulation, establishes the initial data channels, and reports
// ready to the leader. It returns once this member is operational;
// the leader then calls Lead and followers call Wait.
func (m *Member) Start(peers map[string]string) error {
	names := make([]string, 0, len(peers)+1)
	seen := map[string]bool{m.name: true}
	names = append(names, m.name)
	for n := range peers {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	sort.Strings(names)
	m.memberSet = names
	m.leaderNm = names[0]
	if err := m.bp.Validate(names); err != nil {
		return err
	}

	// Connect the control mesh: the smaller name dials.
	deadline := time.Now().Add(m.cfg.ConnectTimeout)
	for _, peer := range names {
		if peer <= m.name {
			continue
		}
		if err := m.dialCtl(peer, peers[peer], deadline); err != nil {
			return err
		}
	}
	for m.ms.joinedCount() < len(names)-1 {
		if time.Now().After(deadline) {
			return fmt.Errorf("mesh: %s: mesh formation timed out (%d/%d peers)",
				m.name, m.ms.joinedCount(), len(names)-1)
		}
		time.Sleep(2 * time.Millisecond)
	}

	m.wg.Add(2)
	go m.serve()
	go m.heartbeatLoop()

	buildErr := m.buildData()
	env := envelope{Ready: &readyMsg{}}
	if buildErr != nil {
		env.Ready.Err = buildErr.Error()
	}
	if err := m.send(m.leaderNm, env); err != nil && buildErr == nil {
		buildErr = err
	}
	m.mu.Lock()
	m.started = true
	m.mu.Unlock()
	return buildErr
}

// dialCtl establishes the control connection to one peer, retrying
// until the deadline so members may start in any order.
func (m *Member) dialCtl(peer, addr string, deadline time.Time) error {
	if addr == "" {
		return fmt.Errorf("mesh: %s: no control address for peer %s", m.name, peer)
	}
	var lastErr error
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, time.Until(deadline))
		if err != nil {
			lastErr = err
			time.Sleep(50 * time.Millisecond)
			continue
		}
		enc, dec := gob.NewEncoder(c), gob.NewDecoder(c)
		if err := enc.Encode(ctlHello{From: m.name, DataAddr: m.dataAddr}); err != nil {
			c.Close()
			lastErr = err
			continue
		}
		var w ctlWelcome
		if err := dec.Decode(&w); err != nil {
			c.Close()
			lastErr = err
			continue
		}
		pc := newPeerConn(w.From, c, enc, dec)
		m.ms.join(w.From, pc, w.DataAddr)
		m.wg.Add(1)
		go m.readLoop(pc)
		return nil
	}
	return fmt.Errorf("mesh: %s: dial control %s (%s): %w", m.name, peer, addr, lastErr)
}

// acceptCtl accepts inbound control connections from smaller-named
// peers.
func (m *Member) acceptCtl() {
	defer m.wg.Done()
	for {
		c, err := m.ctlLn.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			enc, dec := gob.NewEncoder(c), gob.NewDecoder(c)
			var h ctlHello
			if err := dec.Decode(&h); err != nil {
				c.Close()
				return
			}
			if err := enc.Encode(ctlWelcome{From: m.name, DataAddr: m.dataAddr}); err != nil {
				c.Close()
				return
			}
			pc := newPeerConn(h.From, c, enc, dec)
			m.ms.join(h.From, pc, h.DataAddr)
			m.wg.Add(1)
			go m.readLoop(pc)
		}(c)
	}
}

// readLoop drains one control connection, routing messages.
func (m *Member) readLoop(pc *peerConn) {
	defer m.wg.Done()
	for {
		var env envelope
		if err := pc.dec.Decode(&env); err != nil {
			select {
			case <-m.closed:
			default:
				m.ms.markLeft(pc.name)
			}
			return
		}
		m.route(pc.name, env)
	}
}

// route dispatches one inbound control message. Heartbeats update
// membership inline; acks go to the leader's collector; everything
// else is a directive for the member loop.
func (m *Member) route(from string, env envelope) {
	m.ms.note(from)
	switch {
	case env.Heartbeat != nil:
		return
	case env.Leave != nil:
		m.ms.markLeft(from)
		return
	case env.MigRequest != nil:
		if m.IsLeader() {
			select {
			case m.migReqs <- *env.MigRequest:
			default:
			}
		}
		return
	case env.Ready != nil, env.StepDone != nil, env.MigPrepared != nil,
		env.MigApplied != nil, env.MigDialed != nil, env.Finished != nil:
		select {
		case m.acks <- inboundEnv{from, env}:
		case <-m.closed:
		}
	default:
		select {
		case m.inbox <- inboundEnv{from, env}:
		case <-m.closed:
		}
	}
}

// send delivers a control message to a member; sends to self are
// routed locally so the leader participates like any member.
func (m *Member) send(to string, env envelope) error {
	if to == m.name {
		m.route(m.name, env)
		return nil
	}
	pc := m.ms.conn(to)
	if pc == nil {
		return fmt.Errorf("mesh: %s: no control connection to %s", m.name, to)
	}
	return pc.send(env)
}

// broadcast sends to every member, self included.
func (m *Member) broadcast(env envelope) error {
	var first error
	for _, name := range m.memberSet {
		if err := m.send(name, env); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// heartbeatLoop keeps peers' membership tables warm.
func (m *Member) heartbeatLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-m.closed:
			return
		case <-t.C:
			seq := m.hbSeq.Add(1)
			for _, name := range m.memberSet {
				if name == m.name {
					continue
				}
				if pc := m.ms.conn(name); pc != nil {
					pc.send(envelope{Heartbeat: &heartbeatMsg{Seq: seq}})
				}
			}
		}
	}
}

// serve is the member loop: the single goroutine that touches the
// subsystem. Every Run call, every migration splice, and every
// mid-run channel dial happens here, which both serializes them
// logically and gives the race detector a visible happens-before
// between channel acceptance and the next scheduler pass.
func (m *Member) serve() {
	defer m.wg.Done()
	for {
		select {
		case <-m.closed:
			return
		case in := <-m.inbox:
			env := in.env
			switch {
			case env.StepGo != nil:
				m.handleStep(env.StepGo)
			case env.MigPrepare != nil:
				m.handlePrepare(env.MigPrepare)
			case env.MigApply != nil:
				m.handleApply(env.MigApply)
			case env.MigDial != nil:
				m.handleDial(env.MigDial)
			case env.Finish != nil:
				m.send(m.leaderNm, envelope{Finished: &finishedMsg{}})
				select {
				case <-m.runDone:
				default:
					close(m.runDone)
				}
			}
		}
	}
}

// handleStep runs one round and reports channel counters.
func (m *Member) handleStep(sg *stepGoMsg) {
	done := &stepDoneMsg{
		Round:   sg.Round,
		Sent:    make(map[string]int64),
		Queued:  make(map[string]int64),
		Handled: make(map[string]int64),
	}
	if err := m.sub.Run(sg.Until); err != nil {
		done.Err = err.Error()
		m.setRunErr(err)
	}
	for _, ep := range m.hub.Endpoints() {
		p := ep.Peer()
		done.Sent[p] += ep.SentCount()
		done.Queued[p] += ep.QueuedCount()
		done.Handled[p] += ep.HandledCount()
	}
	m.send(m.leaderNm, envelope{StepDone: done})
}

func (m *Member) setRunErr(err error) {
	m.mu.Lock()
	if m.runErr == nil {
		m.runErr = err
	}
	m.mu.Unlock()
}

// Wait blocks until the leader finishes the run (or the member is
// closed) and returns the member's local run error, if any.
func (m *Member) Wait() error {
	select {
	case <-m.runDone:
	case <-m.closed:
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.runErr
}

// MigrateAt schedules (on the leader) a live migration of comp to
// dest at the first drained barrier whose horizon is >= at. Calls
// before Lead are deterministic in virtual time: the same schedule
// yields the same cut on every run.
func (m *Member) MigrateAt(at vtime.Time, comp, dest string) error {
	if !m.IsLeader() {
		return fmt.Errorf("mesh: MigrateAt on non-leader %s", m.name)
	}
	m.mu.Lock()
	m.plans = append(m.plans, migPlan{At: at, Comp: comp, Dest: dest})
	sort.SliceStable(m.plans, func(i, j int) bool { return m.plans[i].At < m.plans[j].At })
	m.mu.Unlock()
	return nil
}

// RequestMigration asks the leader (from any member) to migrate comp
// to dest at the next drained barrier.
func (m *Member) RequestMigration(comp, dest string) error {
	return m.send(m.leaderNm, envelope{MigRequest: &migRequestMsg{Comp: comp, Dest: dest}})
}

// Lead drives the whole run from the leader: lock-step rounds of
// size step up to until, executing scheduled and requested
// migrations at drained barriers. It returns when every member has
// finished (or on the first error).
func (m *Member) Lead(until vtime.Time, step vtime.Duration) error {
	if !m.IsLeader() {
		return fmt.Errorf("mesh: Lead called on non-leader %s (leader is %s)", m.name, m.leaderNm)
	}
	if step <= 0 {
		return fmt.Errorf("mesh: non-positive step %v", step)
	}
	if err := m.collectReady(); err != nil {
		m.finishRun()
		return err
	}
	var (
		t     vtime.Time
		round uint64
	)
	for t < until {
		h := vtime.Min(t.Add(step), until)
		round++
		if err := m.broadcast(envelope{StepGo: &stepGoMsg{Round: round, Until: h, Epoch: m.epoch.Load()}}); err != nil {
			m.finishRun()
			return err
		}
		reports, err := m.collectStep(round)
		if err != nil {
			m.finishRun()
			return err
		}
		if !barrierHolds(reports) {
			m.mu.Lock()
			m.stats.Reissues++
			m.mu.Unlock()
			time.Sleep(500 * time.Microsecond)
			continue
		}
		m.mu.Lock()
		m.stats.Rounds++
		m.mu.Unlock()
		t = h
		if err := m.runMigrations(t); err != nil {
			m.finishRun()
			return err
		}
	}
	return m.finishRun()
}

// collectReady waits for every member's build report.
func (m *Member) collectReady() error {
	got := map[string]bool{}
	for len(got) < len(m.memberSet) {
		in, err := m.nextAck()
		if err != nil {
			return err
		}
		if in.env.Ready == nil {
			continue // stale ack from a previous phase
		}
		if in.env.Ready.Err != "" {
			return fmt.Errorf("mesh: member %s failed to build: %s", in.from, in.env.Ready.Err)
		}
		got[in.from] = true
	}
	return nil
}

// collectStep gathers the current round's reports from all members.
func (m *Member) collectStep(round uint64) (map[string]*stepDoneMsg, error) {
	reports := make(map[string]*stepDoneMsg)
	for len(reports) < len(m.memberSet) {
		in, err := m.nextAck()
		if err != nil {
			return nil, err
		}
		sd := in.env.StepDone
		if sd == nil || sd.Round != round {
			continue // stale report from a re-issued round
		}
		if sd.Err != "" {
			return nil, fmt.Errorf("mesh: member %s round %d: %s", in.from, round, sd.Err)
		}
		reports[in.from] = sd
	}
	return reports, nil
}

// nextAck reads one ack with the phase timeout.
func (m *Member) nextAck() (inboundEnv, error) {
	select {
	case in := <-m.acks:
		return in, nil
	case <-m.closed:
		return inboundEnv{}, fmt.Errorf("mesh: %s closed while coordinating", m.name)
	case <-time.After(m.cfg.StepTimeout):
		return inboundEnv{}, fmt.Errorf("mesh: %s: coordination timed out after %v", m.name, m.cfg.StepTimeout)
	}
}

// barrierHolds checks the drain condition over all members' reports:
// for every directed pair X->Y, X.Sent[Y] == Y.Queued[X] ==
// Y.Handled[X]. Counters are cumulative, so equality means nothing
// is in flight or queued anywhere.
func barrierHolds(reports map[string]*stepDoneMsg) bool {
	for x, rx := range reports {
		for y, sent := range rx.Sent {
			ry := reports[y]
			if ry == nil {
				return false
			}
			if ry.Queued[x] != sent || ry.Handled[x] != sent {
				return false
			}
		}
	}
	return true
}

// finishRun tells every member the run is over and collects acks.
func (m *Member) finishRun() error {
	if err := m.broadcast(envelope{Finish: &finishMsg{}}); err != nil {
		return err
	}
	got := map[string]bool{}
	for len(got) < len(m.memberSet) {
		in, err := m.nextAck()
		if err != nil {
			return err
		}
		if in.env.Finished == nil {
			continue
		}
		got[in.from] = true
	}
	m.mu.Lock()
	err := m.runErr
	m.mu.Unlock()
	return err
}

// Close leaves the mesh and tears down listeners, connections and
// the node.
func (m *Member) Close() error {
	var err error
	m.closeOnce.Do(func() {
		for _, name := range m.memberSet {
			if name == m.name {
				continue
			}
			if pc := m.ms.conn(name); pc != nil {
				pc.send(envelope{Leave: &leaveMsg{}})
			}
		}
		close(m.closed)
		m.ctlLn.Close()
		for _, name := range m.memberSet {
			if pc := m.ms.conn(name); pc != nil {
				pc.close()
			}
		}
		err = m.nd.Close()
		m.wg.Wait()
	})
	return err
}
