// In-process mesh harness: spin up N members on loopback, used by
// tests, piabench and the README demo.
package mesh

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/vtime"
)

// LocalMesh is a set of in-process members, sorted by name (so
// Members[0] is the leader).
type LocalMesh struct {
	Members []*Member
}

// StartLocalMesh creates and joins one member per name, all on
// loopback ephemeral ports. tune, when non-nil, may adjust each
// member's Config (e.g. install a prebuilt faulted node) before New.
// On error every already-created member is closed.
func StartLocalMesh(bp *Blueprint, names []string, tune func(i int, cfg *Config)) (*LocalMesh, error) {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	lm := &LocalMesh{}
	peers := make(map[string]string, len(sorted))
	for i, name := range sorted {
		cfg := Config{Name: name, Blueprint: bp}
		if tune != nil {
			tune(i, &cfg)
		}
		m, err := New(cfg)
		if err != nil {
			lm.Close()
			return nil, err
		}
		lm.Members = append(lm.Members, m)
		peers[name] = m.CtlAddr()
	}
	// Every Start blocks until the full control mesh is connected,
	// so the members must join concurrently.
	var wg sync.WaitGroup
	errs := make([]error, len(lm.Members))
	for i, m := range lm.Members {
		wg.Add(1)
		go func(i int, m *Member) {
			defer wg.Done()
			errs[i] = m.Start(peers)
		}(i, m)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			lm.Close()
			return nil, fmt.Errorf("mesh: start %s: %w", sorted[i], err)
		}
	}
	return lm, nil
}

// Leader returns the leading member.
func (lm *LocalMesh) Leader() *Member { return lm.Members[0] }

// Run drives the whole mesh to the horizon in steps: the leader
// leads on this goroutine while followers wait, and the first error
// from any member is returned.
func (lm *LocalMesh) Run(until vtime.Time, step vtime.Duration) error {
	var wg sync.WaitGroup
	errs := make([]error, len(lm.Members))
	for i, m := range lm.Members[1:] {
		wg.Add(1)
		go func(i int, m *Member) {
			defer wg.Done()
			errs[i+1] = m.Wait()
		}(i, m)
	}
	errs[0] = lm.Leader().Lead(until, step)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Digests merges every member's per-component drive digests. At a
// finished run each component has exactly one home, so the union is
// collision-free.
func (lm *LocalMesh) Digests() map[string]uint64 {
	out := make(map[string]uint64)
	for _, m := range lm.Members {
		for c, h := range m.Digests() {
			out[c] = h
		}
	}
	return out
}

// Member returns the named member, or nil.
func (lm *LocalMesh) Member(name string) *Member {
	for _, m := range lm.Members {
		if m.Name() == name {
			return m
		}
	}
	return nil
}

// Close tears down all members.
func (lm *LocalMesh) Close() {
	for _, m := range lm.Members {
		if m != nil {
			m.Close()
		}
	}
}
