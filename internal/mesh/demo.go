// The shared migration demo workload: a three-member mesh with a hot
// request/reply component whose traffic shape makes it location
// transparent, so migrating it mid-run must be bit-identical — in
// every virtual timestamp and every drive digest — to never moving
// it at all.
//
// Topology (members src, spare, far — sorted, so src leads):
//
//	hot  (on src)  --req-->  sink0..K-1 (on far)
//	hot  <--resp_i--  sink_i             (distinct delays per i)
//	pump/drain pairs on src and spare    (purely local filler)
//
// Every net hot touches crosses a channel with the mesh's single
// pure-latency link, and hot shares no net with a co-resident
// component; those two properties are exactly what make its virtual
// timing independent of which member hosts it.
package mesh

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/vtime"
)

// DemoParams sizes the demo workload.
type DemoParams struct {
	Members []string       // exactly three member names
	Values  int            // requests hot sends
	Sinks   int            // repliers on the far member
	Period  vtime.Duration // request cadence
	// RespBase/RespStep give sink i's reply net a delay of
	// RespBase + i*RespStep; distinct delays keep reply arrivals
	// untied, so delivery order is forced by time alone.
	RespBase vtime.Duration
	RespStep vtime.Duration
	ReqDelay vtime.Duration
	Filler   int // values each filler pump sends
}

func (p DemoParams) withDefaults() DemoParams {
	if p.Values == 0 {
		p.Values = 40
	}
	if p.Sinks == 0 {
		p.Sinks = 2
	}
	if p.Period == 0 {
		p.Period = 5 * vtime.Millisecond
	}
	if p.RespBase == 0 {
		p.RespBase = vtime.Millisecond
	}
	if p.RespStep == 0 {
		p.RespStep = 7 * vtime.Microsecond
	}
	if p.ReqDelay == 0 {
		p.ReqDelay = vtime.Millisecond
	}
	if p.Filler == 0 {
		p.Filler = 25
	}
	return p
}

// Horizon returns a virtual end time that comfortably covers the
// whole exchange.
func (p DemoParams) Horizon() vtime.Time {
	p = p.withDefaults()
	span := vtime.Duration(int64(p.Values)+4) * p.Period
	return vtime.Time(span) + vtime.Time(4*(p.ReqDelay+p.RespBase))
}

// DemoLink is the demo's channel model: pure latency, the shape
// migration transparency requires.
var DemoLink = channel.LinkModel{Latency: 2 * vtime.Millisecond}

// DemoBlueprint builds the workload for the given three members.
func DemoBlueprint(p DemoParams) (*Blueprint, error) {
	p = p.withDefaults()
	if len(p.Members) != 3 {
		return nil, fmt.Errorf("mesh: demo wants exactly 3 members, got %d", len(p.Members))
	}
	src, spare, far := p.Members[0], p.Members[1], p.Members[2]
	bp := &Blueprint{
		Placement: make(map[string]string),
		Policy:    channel.Conservative,
		Link:      DemoLink,
	}

	hotPorts := []string{"out"}
	for i := 0; i < p.Sinks; i++ {
		hotPorts = append(hotPorts, fmt.Sprintf("in%d", i))
	}
	values, period, sinks := p.Values, p.Period, p.Sinks
	bp.Components = append(bp.Components, ComponentSpec{
		Name: "hot", Ports: hotPorts,
		New: func() core.Behavior { return &hotBeh{N: values, Period: period, Sinks: sinks} },
	})
	bp.Placement["hot"] = src

	reqPorts := []graph.PortRef{{Component: "hot", Port: "out"}}
	for i := 0; i < p.Sinks; i++ {
		name := fmt.Sprintf("sink%d", i)
		bp.Components = append(bp.Components, ComponentSpec{
			Name: name, Ports: []string{"in", "out"},
			New: func() core.Behavior { return &sinkBeh{} },
		})
		bp.Placement[name] = far
		reqPorts = append(reqPorts, graph.PortRef{Component: name, Port: "in"})
		bp.Nets = append(bp.Nets, NetSpec{
			Name:  fmt.Sprintf("resp%d", i),
			Delay: p.RespBase + vtime.Duration(i)*p.RespStep,
			Ports: []graph.PortRef{
				{Component: name, Port: "out"},
				{Component: "hot", Port: fmt.Sprintf("in%d", i)},
			},
		})
	}
	bp.Nets = append(bp.Nets, NetSpec{Name: "req", Delay: p.ReqDelay, Ports: reqPorts})

	filler := p.Filler
	for _, host := range []string{src, spare} {
		pump, drain, net := "pump-"+host, "drain-"+host, "local-"+host
		bp.Components = append(bp.Components,
			ComponentSpec{Name: pump, Ports: []string{"out"},
				New: func() core.Behavior { return &pumpBeh{N: filler, Period: 3 * vtime.Millisecond} }},
			ComponentSpec{Name: drain, Ports: []string{"in"},
				New: func() core.Behavior { return &drainBeh{} }},
		)
		bp.Placement[pump] = host
		bp.Placement[drain] = host
		bp.Nets = append(bp.Nets, NetSpec{
			Name: net, Delay: 100 * vtime.Microsecond,
			Ports: []graph.PortRef{
				{Component: pump, Port: "out"},
				{Component: drain, Port: "in"},
			},
		})
	}
	return bp, nil
}

// hotBeh sends Values requests at a fixed cadence and folds every
// reply — with its exact receive time — into a running checksum.
// All progress lives in exported state, and the schedule is a pure
// function of that state, so the behaviour is restart-safe: a
// migrated instance resumes mid-exchange from adopted state alone.
type hotBeh struct {
	N      int
	Period vtime.Duration
	Sinks  int

	I   int    // requests sent
	Got int    // replies folded
	Sum uint64 // checksum over (receive time, value)
}

func (h *hotBeh) fold(t vtime.Time, v any) {
	if h.Sum == 0 {
		h.Sum = fnvOffset
	}
	h.Sum = fnvAdd(h.Sum, fmt.Sprintf("%d:%v", int64(t), v))
	h.Got++
}

func (h *hotBeh) Run(p *core.Proc) error {
	ins := make([]string, h.Sinks)
	for i := range ins {
		ins[i] = fmt.Sprintf("in%d", i)
	}
	for h.I < h.N || h.Got < h.N*h.Sinks {
		if h.I < h.N {
			next := vtime.Time(int64(h.I+1) * int64(h.Period))
			if m, ok := p.RecvDeadline(next, ins...); ok {
				h.fold(p.Time(), m.Value)
				continue
			}
			p.Send("out", h.I)
			h.I++
			continue
		}
		m, ok := p.Recv(ins...)
		if !ok {
			return nil
		}
		h.fold(p.Time(), m.Value)
	}
	return nil
}

func (h *hotBeh) SaveState() ([]byte, error)  { return core.GobSave(h) }
func (h *hotBeh) RestoreState(b []byte) error { return core.GobRestore(h, b) }

// sinkBeh echoes each request back on its reply net.
type sinkBeh struct {
	Count int
}

func (s *sinkBeh) Run(p *core.Proc) error {
	for {
		m, ok := p.Recv("in")
		if !ok {
			return nil
		}
		p.Send("out", m.Value)
		s.Count++
	}
}

func (s *sinkBeh) SaveState() ([]byte, error)  { return core.GobSave(s) }
func (s *sinkBeh) RestoreState(b []byte) error { return core.GobRestore(s, b) }

// pumpBeh generates purely local traffic on its host.
type pumpBeh struct {
	N      int
	Period vtime.Duration
	I      int
}

func (b *pumpBeh) Run(p *core.Proc) error {
	for b.I < b.N {
		p.DelayUntil(vtime.Time(int64(b.I+1) * int64(b.Period)))
		p.Send("out", b.I)
		b.I++
	}
	return nil
}

func (b *pumpBeh) SaveState() ([]byte, error)  { return core.GobSave(b) }
func (b *pumpBeh) RestoreState(bs []byte) error { return core.GobRestore(b, bs) }

// drainBeh absorbs local filler traffic.
type drainBeh struct {
	Count int
}

func (b *drainBeh) Run(p *core.Proc) error {
	for {
		if _, ok := p.Recv("in"); !ok {
			return nil
		}
		b.Count++
	}
}

func (b *drainBeh) SaveState() ([]byte, error)  { return core.GobSave(b) }
func (b *drainBeh) RestoreState(bs []byte) error { return core.GobRestore(b, bs) }
