// The headline property: a run that live-migrates the hot component
// is bit-identical — every drive digest and the component's own
// receive-time checksum — to the run that never moves it, including
// when faultnet is mangling the data plane underneath.
package mesh

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/node"
	"repro/internal/resilience"
	"repro/internal/vtime"
)

// runLeg executes one mesh run of the demo workload and returns the
// merged digests plus hot's final checksum state.
func runLeg(t *testing.T, p DemoParams, tune func(i int, cfg *Config), plan func(lm *LocalMesh)) (map[string]uint64, hotBeh) {
	t.Helper()
	bp, err := DemoBlueprint(p)
	if err != nil {
		t.Fatalf("blueprint: %v", err)
	}
	lm, err := StartLocalMesh(bp, p.Members, tune)
	if err != nil {
		t.Fatalf("start mesh: %v", err)
	}
	defer lm.Close()
	if plan != nil {
		plan(lm)
	}
	if err := lm.Run(p.Horizon(), 25*vtime.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	return lm.Digests(), *hotState(t, lm)
}

func compareLegs(t *testing.T, label string, refDg, gotDg map[string]uint64, refHot, gotHot hotBeh) {
	t.Helper()
	if gotHot.Sum != refHot.Sum || gotHot.Got != refHot.Got || gotHot.I != refHot.I {
		t.Errorf("%s: hot checksum diverged: got {I:%d Got:%d Sum:%#x}, want {I:%d Got:%d Sum:%#x}",
			label, gotHot.I, gotHot.Got, gotHot.Sum, refHot.I, refHot.Got, refHot.Sum)
	}
	if len(gotDg) != len(refDg) {
		t.Errorf("%s: digest component sets differ: got %v, want %v", label, gotDg, refDg)
		return
	}
	for comp, want := range refDg {
		if got := gotDg[comp]; got != want {
			t.Errorf("%s: digest for %s = %#x, want %#x", label, comp, got, want)
		}
	}
}

func TestMigrationEquivalence(t *testing.T) {
	p := demoParams()
	refDg, refHot := runLeg(t, p, nil, nil)
	migDg, migHot := runLeg(t, p, nil, func(lm *LocalMesh) {
		lm.Leader().MigrateAt(vtime.Time(60*vtime.Millisecond), "hot", "bravo")
	})
	compareLegs(t, "migrated", refDg, migDg, refHot, migHot)
}

func TestMigrationEquivalenceThereAndBack(t *testing.T) {
	p := demoParams()
	refDg, refHot := runLeg(t, p, nil, nil)
	migDg, migHot := runLeg(t, p, nil, func(lm *LocalMesh) {
		lm.Leader().MigrateAt(vtime.Time(50*vtime.Millisecond), "hot", "bravo")
		lm.Leader().MigrateAt(vtime.Time(150*vtime.Millisecond), "hot", "alpha")
	})
	compareLegs(t, "there-and-back", refDg, migDg, refHot, migHot)
}

// chaosTune shapes every member's data plane with faultnet and
// recovers it with resilient sessions. The control plane stays on
// plain TCP, like a management network.
func chaosTune(seed int64) func(i int, cfg *Config) {
	return func(i int, cfg *Config) {
		n := node.New(cfg.Name)
		n.SetFaults(faultnet.Config{
			Seed:        seed + int64(i),
			Jitter:      200 * time.Microsecond,
			DropProb:    0.03,
			DupProb:     0.02,
			ReorderProb: 0.02,
		})
		n.SetResilience(resilience.Config{
			Heartbeat: 20 * time.Millisecond,
			RetryBase: 2 * time.Millisecond,
			RetryCap:  50 * time.Millisecond,
			RetryMax:  40,
		})
		cfg.Node = n
	}
}

func TestMigrationEquivalenceUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos leg is wall-clock heavy")
	}
	p := demoParams()
	refDg, refHot := runLeg(t, p, nil, nil) // clean, stationary reference
	migDg, migHot := runLeg(t, p, chaosTune(0xC0FFEE), func(lm *LocalMesh) {
		lm.Leader().MigrateAt(vtime.Time(60*vtime.Millisecond), "hot", "bravo")
	})
	compareLegs(t, "chaos+migrated", refDg, migDg, refHot, migHot)
}

// TestMigrationEquivalenceProperty randomizes the workload shape and
// the migration point: any topology the demo family can express must
// migrate transparently at any drained barrier.
func TestMigrationEquivalenceProperty(t *testing.T) {
	iters := 4
	if testing.Short() {
		iters = 2
	}
	for i := 0; i < iters; i++ {
		seed := int64(7919*i + 13)
		rng := rand.New(rand.NewSource(seed))
		p := DemoParams{
			Members:  demoNames,
			Values:   20 + rng.Intn(30),
			Sinks:    1 + rng.Intn(3),
			Period:   vtime.Duration(3+rng.Intn(5)) * vtime.Millisecond,
			RespStep: vtime.Duration(1+rng.Intn(20)) * vtime.Microsecond,
			Filler:   5 + rng.Intn(30),
		}.withDefaults()
		step := 25 * vtime.Millisecond
		maxBarriers := int64(p.Horizon()) / int64(step)
		if maxBarriers < 2 {
			t.Fatalf("seed %d: horizon too small for a mid-run barrier", seed)
		}
		barrier := 1 + rng.Int63n(maxBarriers-1)
		at := vtime.Time(barrier * int64(step))
		dest := demoNames[1]

		refDg, refHot := runLeg(t, p, nil, nil)
		migDg, migHot := runLeg(t, p, nil, func(lm *LocalMesh) {
			lm.Leader().MigrateAt(at, "hot", dest)
		})
		t.Logf("seed %d: values=%d sinks=%d period=%v migrate@%v", seed, p.Values, p.Sinks, p.Period, at)
		compareLegs(t, "property", refDg, migDg, refHot, migHot)
	}
}
