// Local data-plane construction: each member compiles the shared
// blueprint, instantiates only its own slice of the system, and
// establishes the initial inter-member channels.
package mesh

import (
	"fmt"
	"time"

	"repro/internal/channel"
	"repro/internal/graph"
)

// viewState is a member's replica of the global placement: the graph
// view, the flat component->member map, the channel specs derived
// from the current epoch, and the dial work queued by an epoch
// application for the dial phase.
type viewState struct {
	view      *graph.View
	placement map[string]string
	chanSpecs []graph.ChannelSpec

	pendingDial   []string // peers I must dial new channels to
	pendingAccept []string // peers that will dial me
}

// buildData builds the member's local fragment — components placed
// here, net fragments touching them — and connects the initial
// channels: for each channel spec the lexicographically smaller
// member dials, the larger accepts, and both bind the crossing nets.
func (m *Member) buildData() error {
	view, err := m.bp.View()
	if err != nil {
		return err
	}
	splits, chans, err := view.Partition()
	if err != nil {
		return err
	}
	vs := &viewState{
		view:      view,
		placement: make(map[string]string, len(m.bp.Components)),
		chanSpecs: chans,
	}
	for _, cs := range m.bp.Components {
		vs.placement[cs.Name] = m.bp.Placement[cs.Name]
	}

	for _, cs := range m.bp.Components {
		if vs.placement[cs.Name] != m.name {
			continue
		}
		c, err := m.sub.NewComponent(cs.Name, cs.New())
		if err != nil {
			return err
		}
		for _, pn := range cs.Ports {
			if _, err := c.AddPort(pn); err != nil {
				return err
			}
		}
	}
	if err := m.buildNets(splits); err != nil {
		return err
	}

	for _, cs := range chans {
		switch m.name {
		case cs.A: // smaller name: dial
			ep, err := m.nd.Connect(m.name, m.ms.dataAddr(cs.B), cs.B, m.bp.Policy, m.bp.Link)
			if err != nil {
				return fmt.Errorf("mesh: %s: dial data channel to %s: %w", m.name, cs.B, err)
			}
			if err := m.bindChannel(ep, cs.Nets); err != nil {
				return err
			}
		case cs.B: // larger name: accept
			ep, err := m.acceptChannel(cs.A, m.cfg.ConnectTimeout)
			if err != nil {
				return err
			}
			if err := m.bindChannel(ep, cs.Nets); err != nil {
				return err
			}
		}
	}
	m.nd.FinishAgents()
	m.mu.Lock()
	m.view = vs
	m.mu.Unlock()
	return nil
}

// buildNets realizes the net fragments this member hosts, creating
// missing nets and connecting locally-placed component ports. It is
// idempotent for nets and used both at build time and when an epoch
// application homes a migrated component here.
func (m *Member) buildNets(splits []graph.Split) error {
	for _, sp := range splits {
		frag := fragmentFor(sp, m.name)
		if frag == nil {
			continue
		}
		n := m.sub.Net(sp.Net)
		if n == nil {
			var err error
			if n, err = m.sub.NewNet(sp.Net, sp.Delay); err != nil {
				return err
			}
		}
		for _, pr := range frag.Ports {
			c := m.sub.Component(pr.Component)
			if c == nil {
				return fmt.Errorf("mesh: %s: net %s references missing local component %s",
					m.name, sp.Net, pr.Component)
			}
			p := c.Port(pr.Port)
			if p == nil {
				return fmt.Errorf("mesh: %s: component %s has no port %s", m.name, pr.Component, pr.Port)
			}
			if p.Net() == n {
				continue // already connected
			}
			if err := m.sub.Connect(n, p); err != nil {
				return err
			}
		}
	}
	return nil
}

// bindChannel binds the crossing nets on a fresh endpoint. Remote
// fragments share the logical net's name, so the remote name equals
// the local one.
func (m *Member) bindChannel(ep *channel.Endpoint, nets []string) error {
	for _, nn := range nets {
		n := m.sub.Net(nn)
		if n == nil {
			return fmt.Errorf("mesh: %s: channel to %s binds unknown net %s", m.name, ep.Peer(), nn)
		}
		if err := ep.BindNet(n, nn); err != nil {
			return err
		}
	}
	return nil
}

// acceptChannel waits for the node's accept path to hand over an
// endpoint from the given peer. The OnChannel hook fires on the
// accept goroutine after the endpoint is fully registered and before
// the handshake ack releases the dialer, so receiving the token here
// both sequences the build and carries the happens-before the race
// detector needs.
func (m *Member) acceptChannel(peer string, timeout time.Duration) (*channel.Endpoint, error) {
	deadline := time.After(timeout)
	for {
		select {
		case ep := <-m.accepted:
			if ep.Peer() == peer {
				return ep, nil
			}
			// A channel from another peer arrived first; park it back.
			// Channel specs are processed in deterministic order on
			// both sides, so this is rare and bounded.
			select {
			case m.accepted <- ep:
			default:
				return nil, fmt.Errorf("mesh: %s: accepted-channel overflow", m.name)
			}
			time.Sleep(time.Millisecond)
		case <-deadline:
			return nil, fmt.Errorf("mesh: %s: timed out waiting for channel from %s", m.name, peer)
		case <-m.closed:
			return nil, fmt.Errorf("mesh: %s closed", m.name)
		}
	}
}
