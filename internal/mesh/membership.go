// Membership: the per-member table of peers, their control
// connections, data-plane addresses, and heartbeat freshness.
package mesh

import (
	"encoding/gob"
	"net"
	"sort"
	"sync"
	"time"
)

// peerConn is one control connection with gob framing. Writes are
// serialized; reads happen on a single reader goroutine.
type peerConn struct {
	name string
	c    net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	wmu  sync.Mutex
}

func newPeerConn(name string, c net.Conn, enc *gob.Encoder, dec *gob.Decoder) *peerConn {
	return &peerConn{name: name, c: c, enc: enc, dec: dec}
}

func (pc *peerConn) send(env envelope) error {
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	return pc.enc.Encode(env)
}

func (pc *peerConn) close() { pc.c.Close() }

// peerState is everything the membership table knows about one peer.
type peerState struct {
	name     string
	conn     *peerConn
	dataAddr string
	lastHB   time.Time
	joined   bool
	left     bool
}

// membership tracks the full member set: self plus every peer.
type membership struct {
	mu      sync.Mutex
	self    string
	hbEvery time.Duration
	peers   map[string]*peerState
}

func newMembership(self string, hbEvery time.Duration) *membership {
	return &membership{self: self, hbEvery: hbEvery, peers: make(map[string]*peerState)}
}

// join registers a peer's established control connection.
func (ms *membership) join(name string, pc *peerConn, dataAddr string) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ps := ms.peers[name]
	if ps == nil {
		ps = &peerState{name: name}
		ms.peers[name] = ps
	}
	ps.conn = pc
	ps.dataAddr = dataAddr
	ps.joined = true
	ps.left = false
	ps.lastHB = time.Now()
}

// note refreshes a peer's heartbeat; any control traffic counts.
func (ms *membership) note(name string) {
	ms.mu.Lock()
	if ps := ms.peers[name]; ps != nil {
		ps.lastHB = time.Now()
	}
	ms.mu.Unlock()
}

// markLeft records a graceful leave (or a dead connection).
func (ms *membership) markLeft(name string) {
	ms.mu.Lock()
	if ps := ms.peers[name]; ps != nil {
		ps.left = true
	}
	ms.mu.Unlock()
}

// conn returns the control connection toward a peer, or nil.
func (ms *membership) conn(name string) *peerConn {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if ps := ms.peers[name]; ps != nil {
		return ps.conn
	}
	return nil
}

// dataAddr returns the peer's data-plane listen address.
func (ms *membership) dataAddr(name string) string {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if ps := ms.peers[name]; ps != nil {
		return ps.dataAddr
	}
	return ""
}

// joinedCount reports how many peers have completed the handshake.
func (ms *membership) joinedCount() int {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	n := 0
	for _, ps := range ms.peers {
		if ps.joined {
			n++
		}
	}
	return n
}

// PeerHealth is one row of a member's health report.
type PeerHealth struct {
	Name          string        `json:"name"`
	Self          bool          `json:"self"`
	Joined        bool          `json:"joined"`
	Left          bool          `json:"left"`
	LastHeartbeat time.Time     `json:"lastHeartbeat,omitzero"`
	Age           time.Duration `json:"heartbeatAgeNs"`
	Alive         bool          `json:"alive"`
}

// Health is a member's view of the mesh: per-peer membership and
// heartbeat age, plus the quorum verdict. QuorumDead (alive*2 <=
// total) is the only condition that makes /healthz report 503: a
// member that merely lost one peer of a large mesh is degraded, not
// dead.
type Health struct {
	Members    []PeerHealth `json:"members"`
	Alive      int          `json:"alive"`
	Total      int          `json:"total"`
	QuorumDead bool         `json:"quorumDead"`
}

// health assembles the report. A peer is alive when it has joined,
// has not left, and its last heartbeat is fresher than three
// intervals.
func (ms *membership) health() Health {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	now := time.Now()
	stale := 3 * ms.hbEvery
	h := Health{}
	h.Members = append(h.Members, PeerHealth{Name: ms.self, Self: true, Joined: true, Alive: true})
	h.Alive, h.Total = 1, 1
	names := make([]string, 0, len(ms.peers))
	for n := range ms.peers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ps := ms.peers[n]
		age := now.Sub(ps.lastHB)
		alive := ps.joined && !ps.left && age < stale
		h.Members = append(h.Members, PeerHealth{
			Name: n, Joined: ps.joined, Left: ps.left,
			LastHeartbeat: ps.lastHB, Age: age, Alive: alive,
		})
		h.Total++
		if alive {
			h.Alive++
		}
	}
	h.QuorumDead = h.Alive*2 <= h.Total
	sort.Slice(h.Members, func(i, j int) bool { return h.Members[i].Name < h.Members[j].Name })
	return h
}
