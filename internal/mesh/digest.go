// Per-component drive digests: the equivalence oracle for live
// migration. Every drive a component originates is folded (net name,
// virtual time, value) into an FNV-64a stream keyed by the component,
// on whichever member currently hosts it. Because a migrated
// component's pre-barrier sends all happened at the source and its
// post-barrier sends all happen at the destination, the stream splits
// cleanly at the barrier — transferring the running hash with the
// component keeps it bit-identical to the stationary run.
package mesh

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/vtime"
)

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvAdd(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// Digest accumulates per-component drive hashes for one member.
type Digest struct {
	mu sync.Mutex
	m  map[string]uint64
}

// NewDigest creates an empty digest table.
func NewDigest() *Digest { return &Digest{m: make(map[string]uint64)} }

// Install chains onto the subsystem's OnDrive hook (preserving any
// hook already installed, e.g. the timeline's) and hashes every drive
// whose source component is locally hosted. Origin filtering is what
// makes the digest placement-independent: the member that hosts the
// driver hashes the drive exactly once, and remote fragments —
// where the same drive arrives via a channel with src preserved —
// skip it because the source is not local there.
func (d *Digest) Install(sub *core.Subsystem) {
	prev := sub.OnDrive
	sub.OnDrive = func(net, src string, t vtime.Time, v any) {
		if prev != nil {
			prev(net, src, t, v)
		}
		if sub.Component(src) == nil {
			return
		}
		d.mu.Lock()
		h := d.m[src]
		if h == 0 {
			h = fnvOffset
		}
		h = fnvAdd(h, net)
		h = fnvAdd(h, "\x00")
		h = fnvAdd(h, fmt.Sprintf("%d", int64(t)))
		h = fnvAdd(h, "\x00")
		h = fnvAdd(h, fmt.Sprintf("%v", v))
		d.m[src] = h
		d.mu.Unlock()
	}
}

// Value returns the running hash for a component (0 if it never
// drove anything here).
func (d *Digest) Value(comp string) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.m[comp]
}

// Seed installs a transferred hash state for a component arriving by
// migration.
func (d *Digest) Seed(comp string, h uint64) {
	if h == 0 {
		return
	}
	d.mu.Lock()
	d.m[comp] = h
	d.mu.Unlock()
}

// Take removes and returns a departing component's hash state.
func (d *Digest) Take(comp string) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	h := d.m[comp]
	delete(d.m, comp)
	return h
}

// Snapshot copies the table: component -> hash.
func (d *Digest) Snapshot() map[string]uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]uint64, len(d.m))
	for k, v := range d.m {
		out[k] = v
	}
	return out
}
