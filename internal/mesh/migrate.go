// Live component migration: the leader-side protocol driver and the
// member-side phase handlers.
//
// Protocol state machine (leader), entered only at a held drain
// barrier with horizon h:
//
//	quiesce   barrier held: all channels empty, virtual time <= h final
//	   |
//	snapshot  migPrepare -> source extracts ComponentImage at tag
//	   |      "mig-<epoch>" (a degenerate Chandy-Lamport cut)
//	transfer  migApply broadcast carries image + digest to everyone
//	   |      (image only toward dest); members ack after splicing
//	splice    each member: view.Move, re-derive Partition, source
//	   |      removes the component, dest rebuilds it from the
//	   |      blueprint and adopts the state, everyone rebinds
//	   |      channel endpoints to the new net splits
//	resume    migDial establishes channels the new placement needs
//	          that did not exist; next stepGo resumes the run
//
// Failure cases: a member that cannot apply the epoch acks with an
// error and the leader aborts the run (placement must never fork); a
// component with a pending scheduler-control event refuses to
// migrate at the snapshot phase; rewinds to snapshot tags taken
// under an older epoch are refused by construction (tags do not
// survive migration — see DESIGN.md §10).
package mesh

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/channel"
	"repro/internal/snapshot"
	"repro/internal/vtime"
)

// runMigrations executes every migration due at the held barrier t:
// scheduled plans with At <= t plus any queued live requests.
func (m *Member) runMigrations(t vtime.Time) error {
	var due []migPlan
	m.mu.Lock()
	for len(m.plans) > 0 && m.plans[0].At <= t {
		due = append(due, m.plans[0])
		m.plans = m.plans[1:]
	}
	m.mu.Unlock()
	for {
		select {
		case req := <-m.migReqs:
			due = append(due, migPlan{At: t, Comp: req.Comp, Dest: req.Dest})
			continue
		default:
		}
		break
	}
	for _, p := range due {
		if err := m.migrate(t, p.Comp, p.Dest); err != nil {
			return err
		}
	}
	return nil
}

// migrate moves one component at the held barrier with horizon t.
func (m *Member) migrate(t vtime.Time, comp, dest string) error {
	m.mu.Lock()
	from := ""
	if m.view != nil {
		from = m.view.placement[comp]
	}
	m.mu.Unlock()
	if from == "" {
		return fmt.Errorf("mesh: migrate unknown component %q", comp)
	}
	found := false
	for _, n := range m.memberSet {
		if n == dest {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("mesh: migrate %s to unknown member %q", comp, dest)
	}
	if from == dest {
		return nil // already home
	}
	epoch := m.epoch.Load() + 1
	start := time.Now()
	startVT := t
	if m.tl != nil {
		m.tl.Migrate(m.name, comp, from, dest, "quiesce", t)
	}

	// snapshot: extract at the source.
	if err := m.send(from, envelope{MigPrepare: &migPrepareMsg{Epoch: epoch, Comp: comp, Dest: dest}}); err != nil {
		return err
	}
	var prep *migPreparedMsg
	for prep == nil {
		in, err := m.nextAck()
		if err != nil {
			return err
		}
		if p := in.env.MigPrepared; p != nil && p.Epoch == epoch {
			if p.Err != "" {
				return fmt.Errorf("mesh: prepare migration of %s on %s: %s", comp, from, p.Err)
			}
			prep = p
		}
	}
	if m.tl != nil {
		m.tl.Migrate(m.name, comp, from, dest, "snapshot", t)
	}

	// transfer + splice: broadcast the epoch; the image rides only
	// toward the destination.
	applyStart := time.Now()
	for _, name := range m.memberSet {
		msg := &migApplyMsg{Epoch: epoch, Comp: comp, From: from, To: dest}
		if name == dest {
			msg.Image = prep.Image
			msg.Digest = prep.Digest
		}
		if err := m.send(name, envelope{MigApply: msg}); err != nil {
			return err
		}
	}
	if m.tl != nil {
		m.tl.Migrate(m.name, comp, from, dest, "transfer", t)
	}
	if err := m.collectPhase(epoch, "apply"); err != nil {
		return err
	}
	propagation := time.Since(applyStart)
	if m.tl != nil {
		m.tl.Migrate(m.name, comp, from, dest, "splice", t)
	}

	// resume: establish channels the new placement needs.
	if err := m.broadcast(envelope{MigDial: &migDialMsg{Epoch: epoch}}); err != nil {
		return err
	}
	if err := m.collectPhase(epoch, "dial"); err != nil {
		return err
	}
	if m.tl != nil {
		m.tl.Migrate(m.name, comp, from, dest, "resume", t)
	}

	m.mu.Lock()
	m.stats.Migrations++
	m.stats.EpochPropagation = propagation
	m.stats.MigrationWall = time.Since(start)
	m.stats.MigrationVirtual = t.Sub(startVT) // zero by construction
	m.mu.Unlock()
	return nil
}

// collectPhase gathers one migration phase's acks from all members.
func (m *Member) collectPhase(epoch uint64, phase string) error {
	got := map[string]bool{}
	for len(got) < len(m.memberSet) {
		in, err := m.nextAck()
		if err != nil {
			return fmt.Errorf("mesh: migration %s phase: %w", phase, err)
		}
		var gotEpoch uint64
		var errStr string
		switch {
		case phase == "apply" && in.env.MigApplied != nil:
			gotEpoch, errStr = in.env.MigApplied.Epoch, in.env.MigApplied.Err
		case phase == "dial" && in.env.MigDialed != nil:
			gotEpoch, errStr = in.env.MigDialed.Epoch, in.env.MigDialed.Err
		default:
			continue
		}
		if gotEpoch != epoch {
			continue
		}
		if errStr != "" {
			return fmt.Errorf("mesh: member %s migration %s phase: %s", in.from, phase, errStr)
		}
		got[in.from] = true
	}
	return nil
}

// handlePrepare extracts the migrating component's image (source
// member only). The checkpoint tag is derived from the epoch so a
// re-sent prepare deduplicates onto the same capture.
func (m *Member) handlePrepare(p *migPrepareMsg) {
	reply := &migPreparedMsg{Epoch: p.Epoch}
	ci, err := snapshot.ExtractComponent(m.sub, fmt.Sprintf("mig-%d", p.Epoch), p.Comp)
	if err == nil {
		var b []byte
		if b, err = ci.Encode(); err == nil {
			reply.Image = b
			if m.digest != nil {
				reply.Digest = m.digest.Value(p.Comp)
			}
		}
	}
	if err != nil {
		reply.Err = err.Error()
	}
	m.send(m.leaderNm, envelope{MigPrepared: reply})
}

// handleApply applies one placement epoch locally: move the
// component in the replicated view, re-derive the net splits, remove
// or rebuild-and-adopt the component, and rebind channel endpoints
// to the new splits. Channels that newly appear are queued for the
// dial phase; channels that lost all nets stay connected but idle
// (reused if a later epoch routes nets over them again).
func (m *Member) handleApply(a *migApplyMsg) {
	reply := &migAppliedMsg{Epoch: a.Epoch}
	if err := m.applyEpoch(a); err != nil {
		reply.Err = err.Error()
	}
	m.send(m.leaderNm, envelope{MigApplied: reply})
}

func (m *Member) applyEpoch(a *migApplyMsg) error {
	m.mu.Lock()
	vs := m.view
	m.mu.Unlock()
	if vs == nil {
		return fmt.Errorf("mesh: %s: epoch %d before build", m.name, a.Epoch)
	}
	oldNets := netsByPeer(vs.chanSpecs, m.name)
	if err := vs.view.Move(a.To, a.Comp); err != nil {
		return err
	}
	splits, chans, err := vs.view.Partition()
	if err != nil {
		return err
	}

	if m.name == a.From {
		if m.digest != nil {
			m.digest.Take(a.Comp)
		}
		if err := m.sub.RemoveComponent(a.Comp); err != nil {
			return err
		}
	}
	if m.name == a.To {
		spec := m.bp.Component(a.Comp)
		if spec == nil {
			return fmt.Errorf("mesh: %s: blueprint has no component %q", m.name, a.Comp)
		}
		c, err := m.sub.NewComponent(a.Comp, spec.New())
		if err != nil {
			return err
		}
		for _, pn := range spec.Ports {
			if _, err := c.AddPort(pn); err != nil {
				return err
			}
		}
		if err := m.buildNets(splits); err != nil {
			return err
		}
		ci, err := snapshot.DecodeComponentImage(a.Image)
		if err != nil {
			return err
		}
		if err := snapshot.AdoptComponent(m.sub, ci); err != nil {
			return err
		}
		if m.digest != nil {
			m.digest.Seed(a.Comp, a.Digest)
		}
	}

	// Splice: rebind endpoints to the new per-peer net sets.
	newNets := netsByPeer(chans, m.name)
	vs.pendingDial, vs.pendingAccept = nil, nil
	peers := map[string]bool{}
	for p := range oldNets {
		peers[p] = true
	}
	for p := range newNets {
		peers[p] = true
	}
	for _, peer := range m.memberSet {
		if !peers[peer] {
			continue
		}
		ep := m.hub.Endpoint(peer)
		if ep == nil {
			if len(newNets[peer]) > 0 {
				if m.name < peer {
					vs.pendingDial = append(vs.pendingDial, peer)
				} else {
					vs.pendingAccept = append(vs.pendingAccept, peer)
				}
			}
			continue
		}
		for nn := range oldNets[peer] {
			if newNets[peer][nn] {
				continue
			}
			if n := m.sub.Net(nn); n != nil {
				if err := ep.UnbindNet(n); err != nil {
					return err
				}
			}
		}
		for nn := range newNets[peer] {
			if oldNets[peer][nn] {
				continue
			}
			n := m.sub.Net(nn)
			if n == nil {
				return fmt.Errorf("mesh: %s: epoch %d binds unknown net %s", m.name, a.Epoch, nn)
			}
			if err := ep.BindNet(n, nn); err != nil {
				return err
			}
		}
	}

	m.mu.Lock()
	vs.chanSpecs = chans
	vs.placement[a.Comp] = a.To
	m.mu.Unlock()
	m.epoch.Store(a.Epoch)
	return nil
}

// handleDial establishes the channels queued by the last epoch
// application. Every member has already applied the epoch (the
// leader sequences the phases), so both ends know the nets to bind.
func (m *Member) handleDial(d *migDialMsg) {
	reply := &migDialedMsg{Epoch: d.Epoch}
	if err := m.dialPending(); err != nil {
		reply.Err = err.Error()
	}
	m.send(m.leaderNm, envelope{MigDialed: reply})
}

func (m *Member) dialPending() error {
	m.mu.Lock()
	vs := m.view
	m.mu.Unlock()
	if vs == nil {
		return nil
	}
	nets := netsByPeer(vs.chanSpecs, m.name)
	for _, peer := range vs.pendingDial {
		ep, err := m.nd.Connect(m.name, m.ms.dataAddr(peer), peer, m.bp.Policy, m.bp.Link)
		if err != nil {
			return fmt.Errorf("mesh: %s: dial migration channel to %s: %w", m.name, peer, err)
		}
		if err := m.attachNew(ep, nets[peer]); err != nil {
			return err
		}
	}
	for _, peer := range vs.pendingAccept {
		ep, err := m.acceptChannel(peer, m.cfg.ConnectTimeout)
		if err != nil {
			return err
		}
		if err := m.attachNew(ep, nets[peer]); err != nil {
			return err
		}
	}
	vs.pendingDial, vs.pendingAccept = nil, nil
	return nil
}

// attachNew wires a mid-run endpoint: snapshot agent first (so marks
// and restores traverse it), then the net bindings the current epoch
// routes over it.
func (m *Member) attachNew(ep *channel.Endpoint, nets map[string]bool) error {
	if m.hosted.Agent != nil {
		m.hosted.Agent.Attach(ep)
	}
	names := make([]string, 0, len(nets))
	for nn := range nets {
		names = append(names, nn)
	}
	sort.Strings(names)
	return m.bindChannel(ep, names)
}
