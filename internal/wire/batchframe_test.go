package wire

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestMixedFrameKindsInterleave checks that gob frames and raw batch
// frames share one connection: each arrives with its own kind tag, in
// write order.
func TestMixedFrameKindsInterleave(t *testing.T) {
	a, b := pipePair()
	ca, cb := NewConn(a), NewConn(b)
	raw := []byte{0xca, 0xfe, 0xba, 0xbe}
	go func() {
		ca.Send(payload{N: 1, S: "gob"})
		ca.SendRaw(FrameBatch, raw)
		ca.Send(payload{N: 2, S: "gob2"})
	}()
	kind, _, err := cb.RecvFrame()
	if err != nil || kind != FrameGob {
		t.Fatalf("frame 1: kind=%d err=%v", kind, err)
	}
	kind, body, err := cb.RecvFrame()
	if err != nil || kind != FrameBatch || !bytes.Equal(body, raw) {
		t.Fatalf("frame 2: kind=%d body=%v err=%v", kind, body, err)
	}
	var got payload
	if err := cb.Recv(&got); err != nil || got.N != 2 {
		t.Fatalf("frame 3: %+v err=%v", got, err)
	}
	if st := cb.Stats(); st.FramesIn != 3 {
		t.Fatalf("frames in = %d, want 3", st.FramesIn)
	}
}

// TestRecvRejectsBatchFrame: the gob-only Recv must not silently
// misread a batch frame.
func TestRecvRejectsBatchFrame(t *testing.T) {
	a, b := pipePair()
	ca, cb := NewConn(a), NewConn(b)
	go ca.SendRaw(FrameBatch, []byte{1, 2, 3})
	var got payload
	if err := cb.Recv(&got); err == nil {
		t.Fatal("Recv accepted a batch frame")
	}
}

// TestConcurrentMixedSenders hammers one conn with gob and raw
// senders under the race detector: frames must never interleave
// mid-frame.
func TestConcurrentMixedSenders(t *testing.T) {
	a, b := pipePair()
	ca, cb := NewConn(a), NewConn(b)
	const senders, per = 8, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				var err error
				if s%2 == 0 {
					err = ca.Send(payload{N: s*1000 + i})
				} else {
					err = ca.SendRaw(FrameBatch, []byte(fmt.Sprintf("r%04d", s*1000+i)))
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	seen := make(map[string]bool)
	for i := 0; i < senders*per; i++ {
		kind, body, err := cb.RecvFrame()
		if err != nil {
			t.Fatal(err)
		}
		var key string
		switch kind {
		case FrameGob:
			var got payload
			if err := DecodeGob(body, &got); err != nil {
				t.Fatal(err)
			}
			key = fmt.Sprintf("g%04d", got.N)
		case FrameBatch:
			key = string(body)
		default:
			t.Fatalf("unknown kind %d", kind)
		}
		if seen[key] {
			t.Fatalf("duplicate frame %q (torn write?)", key)
		}
		seen[key] = true
	}
	wg.Wait()
}

// TestSendRawTooLarge: a payload beyond MaxFrame is refused before
// anything hits the stream.
func TestSendRawTooLarge(t *testing.T) {
	a, _ := pipePair()
	ca := NewConn(a)
	if err := ca.SendRaw(FrameBatch, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestBufPoolRoundTrip(t *testing.T) {
	b := GetBuf()
	if len(b) != 0 {
		t.Fatalf("pooled buffer not empty: len=%d", len(b))
	}
	b = append(b, 1, 2, 3)
	PutBuf(b)
	b2 := GetBuf()
	if len(b2) != 0 {
		t.Fatalf("reused buffer not reset: len=%d", len(b2))
	}
	PutBuf(b2)
}
