// Package wire implements the framing Pia nodes speak over TCP:
// length-prefixed, kind-tagged frames. Each frame is a 4-byte
// big-endian payload length, a 1-byte frame kind, and the payload.
// Two kinds exist today: FrameGob carries a single gob-encoded value
// (the self-describing fallback, also used for the handshake), and
// FrameBatch carries a batch of channel messages in the hand-rolled
// binary format of internal/channel. The length prefix keeps the
// stream self-describing, lets both sides count bytes, and makes
// partial reads detectable.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// MaxFrame bounds a single frame; anything larger is a protocol
// error, not a legitimate simulation message.
const MaxFrame = 64 << 20

// Frame kinds.
const (
	// FrameGob is a single gob-encoded value (handshake, fallback).
	FrameGob byte = 0
	// FrameBatch is a batch of channel messages in the binary batch
	// format (see internal/channel).
	FrameBatch byte = 1
)

// Conn frames values over a byte stream. Send, SendRaw and
// BeginEgress are safe for concurrent use; Recv and RecvFrame must be
// called from a single reader.
type Conn struct {
	rwc io.ReadWriteCloser

	wmu    sync.Mutex
	wbuf   bytes.Buffer
	ebuf   []byte // egress assembly buffer, recycled across flushes
	egress Egress // the Conn's single egress builder, guarded by wmu

	rbuf []byte // receive buffer, reused across frames

	bytesIn   atomic.Int64
	bytesOut  atomic.Int64
	framesIn  atomic.Int64
	framesOut atomic.Int64
}

// NewConn wraps a stream (usually a *net.TCPConn).
func NewConn(rwc io.ReadWriteCloser) *Conn {
	c := &Conn{rwc: rwc}
	return c
}

// headerLen is the frame overhead: 4-byte length + 1-byte kind.
const headerLen = 5

// Send writes one FrameGob frame containing v.
func (c *Conn) Send(v any) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf.Reset()
	if err := gob.NewEncoder(&c.wbuf).Encode(v); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	return c.writeFrameLocked(FrameGob, c.wbuf.Bytes())
}

// SendRaw writes one frame of the given kind with an already-encoded
// payload. The payload is copied to the stream before SendRaw
// returns, so the caller may reuse its buffer.
func (c *Conn) SendRaw(kind byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.writeFrameLocked(kind, payload)
}

func (c *Conn) writeFrameLocked(kind byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	// Assemble header + payload contiguously and flush with a single
	// Write: one syscall per frame, and exactly one envelope when the
	// stream is a resilient session (which frames every Write it
	// sees). The counters record precisely what was handed to the
	// stream, on every path — gob fallback included.
	buf := append(c.ebuf[:0], 0, 0, 0, 0, kind)
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	buf = append(buf, payload...)
	n, err := c.rwc.Write(buf)
	c.retainEbuf(buf)
	c.bytesOut.Add(int64(n))
	if err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	c.framesOut.Add(1)
	return nil
}

// retainEbuf keeps the egress assembly buffer for the next flush,
// unless it has grown pathological.
func (c *Conn) retainEbuf(buf []byte) {
	if cap(buf) <= MaxFrame {
		c.ebuf = buf[:0]
	}
}

// RecvFrame reads one frame and returns its kind and payload. The
// payload slice is owned by the Conn and only valid until the next
// RecvFrame or Recv call; decode it before reading again.
func (c *Conn) RecvFrame() (kind byte, payload []byte, err error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(c.rwc, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: incoming frame of %d bytes exceeds limit", n)
	}
	if cap(c.rbuf) < int(n) {
		c.rbuf = make([]byte, n)
	}
	c.rbuf = c.rbuf[:n]
	if _, err := io.ReadFull(c.rwc, c.rbuf); err != nil {
		return 0, nil, fmt.Errorf("wire: read body: %w", err)
	}
	c.bytesIn.Add(int64(headerLen + n))
	c.framesIn.Add(1)
	return hdr[4], c.rbuf, nil
}

// Recv reads one FrameGob frame into v. It fails on any other frame
// kind; readers that must handle batch frames use RecvFrame.
func (c *Conn) Recv(v any) error {
	kind, payload, err := c.RecvFrame()
	if err != nil {
		return err
	}
	if kind != FrameGob {
		return fmt.Errorf("wire: expected gob frame, got kind %d", kind)
	}
	return DecodeGob(payload, v)
}

// DecodeGob decodes a FrameGob payload into v.
func DecodeGob(payload []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("wire: decode: %w", err)
	}
	return nil
}

// bufPool recycles scratch buffers for callers assembling frame
// payloads (EncodeGob and the node batch path), so steady-state
// sends allocate nothing.
var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 4<<10) }}

// GetBuf returns a scratch byte slice (length 0) from the pool.
func GetBuf() []byte { return bufPool.Get().([]byte)[:0] }

// PutBuf returns a scratch buffer to the pool.
func PutBuf(b []byte) {
	if cap(b) > MaxFrame {
		return // do not retain pathological buffers
	}
	bufPool.Put(b[:0]) //nolint:staticcheck // slices are pointer-shaped
}

// Egress is a multi-frame egress builder: callers encode frame
// payloads directly into the connection's recycled assembly buffer —
// no intermediate per-frame slice — and Flush hands the whole run of
// frames to the stream in a single Write (the writev-style batched
// flush). Obtain one with BeginEgress; it holds the connection's
// write lock until Close.
type Egress struct {
	c      *Conn
	buf    []byte
	hdr    int // offset of the open frame's header, -1 when none
	frames int
	err    error
}

// BeginEgress locks the connection for writing and returns its egress
// builder (no allocation: the builder is part of the Conn). The
// caller must call Close exactly once, typically via defer; Flush
// before Close to actually send.
func (c *Conn) BeginEgress() *Egress {
	c.wmu.Lock()
	e := &c.egress
	e.c = c
	e.buf = c.ebuf[:0]
	e.hdr = -1
	e.frames = 0
	e.err = nil
	return e
}

// BeginFrame opens a frame of the given kind and returns the buffer
// to append the payload to. The caller encodes in place and hands the
// grown buffer to EndFrame.
func (e *Egress) BeginFrame(kind byte) []byte {
	if e.hdr >= 0 {
		e.err = fmt.Errorf("wire: BeginFrame with a frame already open")
		return e.buf
	}
	e.hdr = len(e.buf)
	e.buf = append(e.buf, 0, 0, 0, 0, kind)
	return e.buf
}

// EndFrame seals the frame whose payload was appended to buf (the
// slice returned by BeginFrame, possibly reallocated by appends) by
// patching the length prefix in place.
func (e *Egress) EndFrame(buf []byte) error {
	if e.err != nil {
		return e.err
	}
	if e.hdr < 0 {
		e.err = fmt.Errorf("wire: EndFrame without BeginFrame")
		return e.err
	}
	e.buf = buf
	payload := len(buf) - e.hdr - headerLen
	if payload < 0 {
		e.err = fmt.Errorf("wire: EndFrame buffer shorter than its header")
		return e.err
	}
	if payload > MaxFrame {
		e.err = fmt.Errorf("wire: frame of %d bytes exceeds limit", payload)
		return e.err
	}
	binary.BigEndian.PutUint32(buf[e.hdr:e.hdr+4], uint32(payload))
	e.hdr = -1
	e.frames++
	return nil
}

// Flush writes every sealed frame with one Write call and resets the
// builder for further frames. Byte and frame counters record what was
// actually handed to the stream.
func (e *Egress) Flush() error {
	if e.err != nil {
		return e.err
	}
	if e.hdr >= 0 {
		e.err = fmt.Errorf("wire: Flush with an unsealed frame")
		return e.err
	}
	if len(e.buf) == 0 {
		return nil
	}
	n, err := e.c.rwc.Write(e.buf)
	e.c.bytesOut.Add(int64(n))
	if err != nil {
		e.err = fmt.Errorf("wire: write frames: %w", err)
		return e.err
	}
	e.c.framesOut.Add(int64(e.frames))
	e.frames = 0
	e.buf = e.buf[:0]
	return nil
}

// Close releases the connection's write lock and recycles the
// assembly buffer. Unflushed frames are dropped (an abort).
func (e *Egress) Close() {
	c := e.c
	c.retainEbuf(e.buf)
	e.buf = nil
	e.c = nil
	c.wmu.Unlock()
}

// Close closes the underlying stream.
func (c *Conn) Close() error { return c.rwc.Close() }

// Stats is a snapshot of one connection's framing counters. Totals
// include the frame headers; FramesOut is the coalescing ablation's
// figure of merit (fewer frames for the same drives).
type Stats struct {
	BytesIn, BytesOut   int64
	FramesIn, FramesOut int64
}

// Add accumulates o into s, for callers summing several connections.
func (s *Stats) Add(o Stats) {
	s.BytesIn += o.BytesIn
	s.BytesOut += o.BytesOut
	s.FramesIn += o.FramesIn
	s.FramesOut += o.FramesOut
}

// Stats returns a snapshot of the connection's counters (atomic
// loads; safe concurrently with traffic).
func (c *Conn) Stats() Stats {
	return Stats{
		BytesIn:   c.bytesIn.Load(),
		BytesOut:  c.bytesOut.Load(),
		FramesIn:  c.framesIn.Load(),
		FramesOut: c.framesOut.Load(),
	}
}

// Dial connects to a Pia node.
func Dial(addr string) (*Conn, error) {
	tc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	if t, ok := tc.(*net.TCPConn); ok {
		t.SetNoDelay(true)
	}
	return NewConn(tc), nil
}
