// Package wire implements the framing Pia nodes speak over TCP:
// length-prefixed gob frames. Each frame is a gob-encoded value
// preceded by a big-endian uint32 length, which keeps the stream
// self-describing, lets both sides count bytes, and makes partial
// reads detectable.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// MaxFrame bounds a single frame; anything larger is a protocol
// error, not a legitimate simulation message.
const MaxFrame = 64 << 20

// Conn frames gob values over a byte stream. Send is safe for
// concurrent use; Recv must be called from a single reader.
type Conn struct {
	rwc io.ReadWriteCloser

	wmu  sync.Mutex
	enc  *gob.Encoder
	wbuf bytes.Buffer

	dec  *gob.Decoder
	rbuf frameReader

	bytesIn   atomic.Int64
	bytesOut  atomic.Int64
	framesIn  atomic.Int64
	framesOut atomic.Int64
}

// frameReader feeds the gob decoder exactly one frame at a time.
type frameReader struct {
	src io.Reader
	buf []byte
	pos int
}

func (f *frameReader) Read(p []byte) (int, error) {
	if f.pos >= len(f.buf) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[f.pos:])
	f.pos += n
	return n, nil
}

// NewConn wraps a stream (usually a *net.TCPConn).
func NewConn(rwc io.ReadWriteCloser) *Conn {
	c := &Conn{rwc: rwc}
	return c
}

// Send writes one frame containing v.
func (c *Conn) Send(v any) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf.Reset()
	if err := gob.NewEncoder(&c.wbuf).Encode(v); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	if c.wbuf.Len() > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", c.wbuf.Len())
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(c.wbuf.Len()))
	if _, err := c.rwc.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := c.rwc.Write(c.wbuf.Bytes()); err != nil {
		return fmt.Errorf("wire: write body: %w", err)
	}
	c.bytesOut.Add(int64(4 + c.wbuf.Len()))
	c.framesOut.Add(1)
	return nil
}

// Recv reads one frame into v.
func (c *Conn) Recv(v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(c.rwc, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("wire: incoming frame of %d bytes exceeds limit", n)
	}
	if cap(c.rbuf.buf) < int(n) {
		c.rbuf.buf = make([]byte, n)
	}
	c.rbuf.buf = c.rbuf.buf[:n]
	c.rbuf.pos = 0
	if _, err := io.ReadFull(c.rwc, c.rbuf.buf); err != nil {
		return fmt.Errorf("wire: read body: %w", err)
	}
	if err := gob.NewDecoder(&c.rbuf).Decode(v); err != nil {
		return fmt.Errorf("wire: decode: %w", err)
	}
	c.bytesIn.Add(int64(4 + n))
	c.framesIn.Add(1)
	return nil
}

// Close closes the underlying stream.
func (c *Conn) Close() error { return c.rwc.Close() }

// Stats returns (bytes in, bytes out, frames in, frames out).
func (c *Conn) Stats() (bi, bo, fi, fo int64) {
	return c.bytesIn.Load(), c.bytesOut.Load(), c.framesIn.Load(), c.framesOut.Load()
}

// Dial connects to a Pia node.
func Dial(addr string) (*Conn, error) {
	tc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	if t, ok := tc.(*net.TCPConn); ok {
		t.SetNoDelay(true)
	}
	return NewConn(tc), nil
}
