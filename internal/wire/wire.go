// Package wire implements the framing Pia nodes speak over TCP:
// length-prefixed, kind-tagged frames. Each frame is a 4-byte
// big-endian payload length, a 1-byte frame kind, and the payload.
// Two kinds exist today: FrameGob carries a single gob-encoded value
// (the self-describing fallback, also used for the handshake), and
// FrameBatch carries a batch of channel messages in the hand-rolled
// binary format of internal/channel. The length prefix keeps the
// stream self-describing, lets both sides count bytes, and makes
// partial reads detectable.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// MaxFrame bounds a single frame; anything larger is a protocol
// error, not a legitimate simulation message.
const MaxFrame = 64 << 20

// Frame kinds.
const (
	// FrameGob is a single gob-encoded value (handshake, fallback).
	FrameGob byte = 0
	// FrameBatch is a batch of channel messages in the binary batch
	// format (see internal/channel).
	FrameBatch byte = 1
)

// Conn frames values over a byte stream. Send, SendRaw are safe for
// concurrent use; Recv and RecvFrame must be called from a single
// reader.
type Conn struct {
	rwc io.ReadWriteCloser

	wmu  sync.Mutex
	wbuf bytes.Buffer

	rbuf []byte // receive buffer, reused across frames

	bytesIn   atomic.Int64
	bytesOut  atomic.Int64
	framesIn  atomic.Int64
	framesOut atomic.Int64
}

// NewConn wraps a stream (usually a *net.TCPConn).
func NewConn(rwc io.ReadWriteCloser) *Conn {
	c := &Conn{rwc: rwc}
	return c
}

// headerLen is the frame overhead: 4-byte length + 1-byte kind.
const headerLen = 5

// Send writes one FrameGob frame containing v.
func (c *Conn) Send(v any) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf.Reset()
	if err := gob.NewEncoder(&c.wbuf).Encode(v); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	return c.writeFrameLocked(FrameGob, c.wbuf.Bytes())
}

// SendRaw writes one frame of the given kind with an already-encoded
// payload. The payload is copied to the stream before SendRaw
// returns, so the caller may reuse its buffer.
func (c *Conn) SendRaw(kind byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.writeFrameLocked(kind, payload)
}

func (c *Conn) writeFrameLocked(kind byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [headerLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = kind
	if _, err := c.rwc.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := c.rwc.Write(payload); err != nil {
		return fmt.Errorf("wire: write body: %w", err)
	}
	c.bytesOut.Add(int64(headerLen + len(payload)))
	c.framesOut.Add(1)
	return nil
}

// RecvFrame reads one frame and returns its kind and payload. The
// payload slice is owned by the Conn and only valid until the next
// RecvFrame or Recv call; decode it before reading again.
func (c *Conn) RecvFrame() (kind byte, payload []byte, err error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(c.rwc, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: incoming frame of %d bytes exceeds limit", n)
	}
	if cap(c.rbuf) < int(n) {
		c.rbuf = make([]byte, n)
	}
	c.rbuf = c.rbuf[:n]
	if _, err := io.ReadFull(c.rwc, c.rbuf); err != nil {
		return 0, nil, fmt.Errorf("wire: read body: %w", err)
	}
	c.bytesIn.Add(int64(headerLen + n))
	c.framesIn.Add(1)
	return hdr[4], c.rbuf, nil
}

// Recv reads one FrameGob frame into v. It fails on any other frame
// kind; readers that must handle batch frames use RecvFrame.
func (c *Conn) Recv(v any) error {
	kind, payload, err := c.RecvFrame()
	if err != nil {
		return err
	}
	if kind != FrameGob {
		return fmt.Errorf("wire: expected gob frame, got kind %d", kind)
	}
	return DecodeGob(payload, v)
}

// DecodeGob decodes a FrameGob payload into v.
func DecodeGob(payload []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("wire: decode: %w", err)
	}
	return nil
}

// bufPool recycles scratch buffers for callers assembling frame
// payloads (EncodeGob and the node batch path), so steady-state
// sends allocate nothing.
var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 4<<10) }}

// GetBuf returns a scratch byte slice (length 0) from the pool.
func GetBuf() []byte { return bufPool.Get().([]byte)[:0] }

// PutBuf returns a scratch buffer to the pool.
func PutBuf(b []byte) {
	if cap(b) > MaxFrame {
		return // do not retain pathological buffers
	}
	bufPool.Put(b[:0]) //nolint:staticcheck // slices are pointer-shaped
}

// Close closes the underlying stream.
func (c *Conn) Close() error { return c.rwc.Close() }

// Stats is a snapshot of one connection's framing counters. Totals
// include the frame headers; FramesOut is the coalescing ablation's
// figure of merit (fewer frames for the same drives).
type Stats struct {
	BytesIn, BytesOut   int64
	FramesIn, FramesOut int64
}

// Add accumulates o into s, for callers summing several connections.
func (s *Stats) Add(o Stats) {
	s.BytesIn += o.BytesIn
	s.BytesOut += o.BytesOut
	s.FramesIn += o.FramesIn
	s.FramesOut += o.FramesOut
}

// Stats returns a snapshot of the connection's counters (atomic
// loads; safe concurrently with traffic).
func (c *Conn) Stats() Stats {
	return Stats{
		BytesIn:   c.bytesIn.Load(),
		BytesOut:  c.bytesOut.Load(),
		FramesIn:  c.framesIn.Load(),
		FramesOut: c.framesOut.Load(),
	}
}

// Dial connects to a Pia node.
func Dial(addr string) (*Conn, error) {
	tc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	if t, ok := tc.(*net.TCPConn); ok {
		t.SetNoDelay(true)
	}
	return NewConn(tc), nil
}
