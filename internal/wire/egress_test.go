package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// countStream records every Write it sees; Read serves whatever was
// written, so frames can be parsed back for equivalence checks.
type countStream struct {
	buf    bytes.Buffer
	writes int
	// failAfter, when >= 0, makes the next Write accept only that
	// many bytes and return an error — the short-write case.
	failAfter int
}

func newCountStream() *countStream { return &countStream{failAfter: -1} }

func (s *countStream) Write(p []byte) (int, error) {
	s.writes++
	if s.failAfter >= 0 {
		n := s.failAfter
		if n > len(p) {
			n = len(p)
		}
		s.buf.Write(p[:n])
		return n, errors.New("stream torn mid-frame")
	}
	s.buf.Write(p)
	return len(p), nil
}

func (s *countStream) Read(p []byte) (int, error) { return s.buf.Read(p) }
func (s *countStream) Close() error               { return nil }

// TestSendIsOneWritePerFrame pins the single-write framing property:
// header and payload leave in one Write call (one syscall, and one
// envelope on a resilient session), and BytesOut counts exactly what
// the stream was handed — gob fallback path included.
func TestSendIsOneWritePerFrame(t *testing.T) {
	s := newCountStream()
	c := NewConn(s)
	if err := c.Send(payload{N: 7, S: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := c.SendRaw(FrameBatch, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if s.writes != 2 {
		t.Fatalf("2 frames took %d writes, want 2 (one per frame)", s.writes)
	}
	st := c.Stats()
	if st.BytesOut != int64(s.buf.Len()) {
		t.Fatalf("BytesOut=%d but the stream received %d bytes", st.BytesOut, s.buf.Len())
	}
	if st.FramesOut != 2 {
		t.Fatalf("FramesOut=%d, want 2", st.FramesOut)
	}
}

// TestBytesOutCountsShortWrite is the wire-stats regression test: on
// a torn write the counter must record the bytes actually flushed,
// not the frame size we wished we had sent.
func TestBytesOutCountsShortWrite(t *testing.T) {
	s := newCountStream()
	s.failAfter = 3
	c := NewConn(s)
	if err := c.SendRaw(FrameBatch, bytes.Repeat([]byte{9}, 100)); err == nil {
		t.Fatal("short write did not surface an error")
	}
	if got := c.Stats().BytesOut; got != 3 {
		t.Fatalf("BytesOut=%d after a 3-byte short write, want 3", got)
	}
	if got := c.Stats().FramesOut; got != 0 {
		t.Fatalf("FramesOut=%d after a failed frame, want 0", got)
	}
}

// TestEgressSingleFlush checks the writev-style batched flush: several
// frames sealed into the builder leave in exactly one Write, counters
// match the stream, and the frames parse back identically.
func TestEgressSingleFlush(t *testing.T) {
	s := newCountStream()
	c := NewConn(s)
	want := [][]byte{[]byte("alpha"), {}, bytes.Repeat([]byte{0xAB}, 300)}

	eg := c.BeginEgress()
	for _, p := range want {
		buf := eg.BeginFrame(FrameBatch)
		buf = append(buf, p...)
		if err := eg.EndFrame(buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := eg.Flush(); err != nil {
		t.Fatal(err)
	}
	eg.Close()

	if s.writes != 1 {
		t.Fatalf("3 frames took %d writes, want 1", s.writes)
	}
	st := c.Stats()
	if st.FramesOut != 3 {
		t.Fatalf("FramesOut=%d, want 3", st.FramesOut)
	}
	if st.BytesOut != int64(s.buf.Len()) {
		t.Fatalf("BytesOut=%d but the stream received %d bytes", st.BytesOut, s.buf.Len())
	}

	// The builder's output must be indistinguishable from SendRaw's.
	rc := NewConn(s)
	for i, p := range want {
		kind, got, err := rc.RecvFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if kind != FrameBatch || !bytes.Equal(got, p) {
			t.Fatalf("frame %d parsed back wrong: kind=%d payload=%q", i, kind, got)
		}
	}
	if _, _, err := rc.RecvFrame(); err != io.EOF {
		t.Fatalf("extra bytes after the flushed frames: %v", err)
	}
}

// TestEgressShortWriteCountsActualBytes extends the stats regression
// to the batched flush path.
func TestEgressShortWriteCountsActualBytes(t *testing.T) {
	s := newCountStream()
	s.failAfter = 4
	c := NewConn(s)
	eg := c.BeginEgress()
	buf := eg.BeginFrame(FrameBatch)
	buf = append(buf, bytes.Repeat([]byte{1}, 64)...)
	if err := eg.EndFrame(buf); err != nil {
		t.Fatal(err)
	}
	if err := eg.Flush(); err == nil {
		t.Fatal("short write did not surface an error")
	}
	eg.Close()
	if got := c.Stats().BytesOut; got != 4 {
		t.Fatalf("BytesOut=%d after a 4-byte short write, want 4", got)
	}
}

// TestEgressMisuseLatches pins the builder's error discipline: a
// protocol misuse poisons the builder until Close, and an abandoned
// (never flushed) builder sends nothing.
func TestEgressMisuseLatches(t *testing.T) {
	s := newCountStream()
	c := NewConn(s)

	eg := c.BeginEgress()
	if err := eg.EndFrame(eg.buf); err == nil {
		t.Fatal("EndFrame without BeginFrame succeeded")
	}
	if err := eg.Flush(); err == nil {
		t.Fatal("Flush after misuse succeeded")
	}
	eg.Close()

	eg = c.BeginEgress()
	buf := eg.BeginFrame(FrameBatch)
	buf = append(buf, 1, 2, 3)
	_ = buf // sealed never: Flush must refuse the open frame
	if err := eg.Flush(); err == nil {
		t.Fatal("Flush with an unsealed frame succeeded")
	}
	eg.Close()

	// A fresh builder is clean after the poisoned ones closed.
	eg = c.BeginEgress()
	buf = eg.BeginFrame(FrameBatch)
	buf = append(buf, 42)
	if err := eg.EndFrame(buf); err != nil {
		t.Fatal(err)
	}
	if err := eg.Flush(); err != nil {
		t.Fatal(err)
	}
	eg.Close()
	if c.Stats().FramesOut != 1 {
		t.Fatalf("FramesOut=%d, want 1 (misused builders must send nothing)", c.Stats().FramesOut)
	}
}

// TestEgressAbandonedSendsNothing: Close without Flush drops the
// sealed-but-unflushed frames.
func TestEgressAbandonedSendsNothing(t *testing.T) {
	s := newCountStream()
	c := NewConn(s)
	eg := c.BeginEgress()
	buf := eg.BeginFrame(FrameBatch)
	buf = append(buf, 1)
	if err := eg.EndFrame(buf); err != nil {
		t.Fatal(err)
	}
	eg.Close()
	if s.writes != 0 || c.Stats().BytesOut != 0 {
		t.Fatalf("abandoned egress wrote %d times, %d bytes", s.writes, c.Stats().BytesOut)
	}
}
