package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// memStream serves a fixed byte slice as the read side of a Conn and
// discards writes — the harness for parsing hostile input.
type memStream struct{ r *bytes.Reader }

func (m memStream) Read(p []byte) (int, error)  { return m.r.Read(p) }
func (m memStream) Write(p []byte) (int, error) { return len(p), nil }
func (m memStream) Close() error                { return nil }

// frameBytes assembles a well-formed frame for seeding the corpus.
func frameBytes(kind byte, payload []byte) []byte {
	buf := make([]byte, headerLen+len(payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	buf[4] = kind
	copy(buf[headerLen:], payload)
	return buf
}

// FuzzFrameParser feeds arbitrary byte streams to the frame reader.
// RecvFrame must never panic, never hand back a payload larger than
// the frame limit, and must terminate (every iteration either returns
// an error or consumes at least a header's worth of input).
func FuzzFrameParser(f *testing.F) {
	f.Add([]byte{})
	f.Add(frameBytes(FrameGob, []byte("not really gob")))
	f.Add(frameBytes(FrameBatch, []byte{1, 0, 9}))
	f.Add(frameBytes(FrameGob, nil))
	// A header declaring more payload than follows (truncated body).
	f.Add(frameBytes(FrameBatch, bytes.Repeat([]byte{7}, 32))[:12])
	// A length prefix beyond MaxFrame.
	huge := frameBytes(99, nil)
	binary.BigEndian.PutUint32(huge[:4], MaxFrame+1)
	f.Add(huge)
	// Two valid frames back to back.
	f.Add(append(frameBytes(FrameBatch, []byte{0}), frameBytes(FrameGob, []byte{1, 2})...))

	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(memStream{bytes.NewReader(data)})
		for {
			kind, payload, err := c.RecvFrame()
			if err != nil {
				return
			}
			if len(payload) > MaxFrame {
				t.Fatalf("RecvFrame returned %d-byte payload past the limit", len(payload))
			}
			// Gob payloads must decode or error, never panic.
			if kind == FrameGob {
				var v any
				_ = DecodeGob(payload, &v)
			}
		}
	})
}
