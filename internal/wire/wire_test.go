package wire

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
)

// duplex is an in-memory ReadWriteCloser pair.
type duplex struct {
	r *io.PipeReader
	w *io.PipeWriter
}

func (d duplex) Read(p []byte) (int, error)  { return d.r.Read(p) }
func (d duplex) Write(p []byte) (int, error) { return d.w.Write(p) }
func (d duplex) Close() error                { d.r.Close(); return d.w.Close() }

func pipePair() (duplex, duplex) {
	ar, bw := io.Pipe()
	br, aw := io.Pipe()
	return duplex{ar, aw}, duplex{br, bw}
}

type payload struct {
	N int
	S string
	B []byte
}

func TestRoundTrip(t *testing.T) {
	a, b := pipePair()
	ca, cb := NewConn(a), NewConn(b)
	want := payload{N: 42, S: "hello", B: bytes.Repeat([]byte{7}, 1000)}
	done := make(chan error, 1)
	go func() { done <- ca.Send(want) }()
	var got payload
	if err := cb.Recv(&got); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got.N != want.N || got.S != want.S || !bytes.Equal(got.B, want.B) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	st := cb.Stats()
	if st.FramesIn != 1 || st.BytesIn <= 0 {
		t.Fatalf("stats: frames=%d bytes=%d", st.FramesIn, st.BytesIn)
	}
}

func TestManyFramesInOrder(t *testing.T) {
	a, b := pipePair()
	ca, cb := NewConn(a), NewConn(b)
	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			if err := ca.Send(payload{N: i}); err != nil {
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		var got payload
		if err := cb.Recv(&got); err != nil {
			t.Fatal(err)
		}
		if got.N != i {
			t.Fatalf("frame %d carried %d", i, got.N)
		}
	}
}

func TestConcurrentSenders(t *testing.T) {
	a, b := pipePair()
	ca, cb := NewConn(a), NewConn(b)
	const senders, per = 8, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := ca.Send(payload{N: s*1000 + i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	seen := make(map[int]bool)
	for i := 0; i < senders*per; i++ {
		var got payload
		if err := cb.Recv(&got); err != nil {
			t.Fatal(err)
		}
		if seen[got.N] {
			t.Fatalf("duplicate frame %d (interleaved writes?)", got.N)
		}
		seen[got.N] = true
	}
	wg.Wait()
}

func TestRecvOnClosed(t *testing.T) {
	a, b := pipePair()
	ca, cb := NewConn(a), NewConn(b)
	ca.Close()
	var got payload
	if err := cb.Recv(&got); err == nil {
		t.Fatal("Recv on closed pipe succeeded")
	}
}

func TestDialRealTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan payload, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		var got payload
		if err := NewConn(c).Recv(&got); err == nil {
			done <- got
		}
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(payload{N: 9, S: "tcp"}); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if got.N != 9 || got.S != "tcp" {
		t.Fatalf("got %+v", got)
	}
}

func TestDialError(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}
