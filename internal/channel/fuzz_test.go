package channel

import (
	"reflect"
	"testing"

	"repro/internal/signal"
	"repro/internal/vtime"
)

func init() { Register() }

// fuzzMessage builds one message from fuzz primitives. Kinds cycle
// through the whole protocol; empty byte payloads are normalised to
// nil because both codecs (binary and gob) decode a zero-length slice
// as nil.
func fuzzMessage(kindSel uint8, seq, ack uint64, from, name, tag string, tick uint64, word uint32, pkt []byte) Message {
	kinds := []Kind{KindData, KindSafeTimeReq, KindSafeTimeGrant, KindMark, KindRestore, KindClose}
	m := Message{Kind: kinds[int(kindSel)%len(kinds)], From: from, Seq: seq, Ack: ack}
	switch m.Kind {
	case KindData:
		m.Net, m.Source, m.Time = name, from, vtime.Time(tick)
		if len(pkt) == 0 {
			m.Value = signal.Word(word)
		} else {
			m.Value = signal.Packet(pkt)
		}
	case KindSafeTimeReq:
		m.Ask = vtime.Time(tick)
	case KindSafeTimeGrant:
		m.Grant = vtime.Time(tick)
	case KindMark, KindRestore:
		m.Tag = tag
	}
	return m
}

// FuzzBatchRoundTrip encodes fuzz-derived message batches — on both
// the binary fast path and the forced-gob fallback — and requires the
// decode to reproduce them exactly. This covers the fallback boundary
// (same batch, either encoding) that a hand-written table never
// exhausts: hostile strings, extreme times, empty payloads.
func FuzzBatchRoundTrip(f *testing.F) {
	f.Add(false, uint8(0), uint64(1), uint64(0), "ss1", "link", "snap", uint64(10), uint32(300), []byte{1, 2, 3})
	f.Add(true, uint8(0), uint64(1), uint64(0), "ss1", "link", "snap", uint64(10), uint32(300), []byte{1, 2, 3})
	f.Add(false, uint8(5), uint64(9), uint64(9), "", "", "", ^uint64(0), uint32(0), []byte{})
	f.Add(true, uint8(3), uint64(0), uint64(1), "a\xffb", "n", "t\x00", uint64(1)<<62, uint32(1), []byte(nil))

	f.Fuzz(func(t *testing.T, gobOnly bool, kindSel uint8, seq, ack uint64, from, name, tag string, tick uint64, word uint32, pkt []byte) {
		SetForceGob(gobOnly)
		defer SetForceGob(false)

		msgs := []Message{
			fuzzMessage(kindSel, seq, ack, from, name, tag, tick, word, pkt),
			fuzzMessage(kindSel+1, seq+1, ack, from, name, tag, tick/2, word+1, nil),
			fuzzMessage(kindSel+2, seq+2, ack+1, name, from, tag, tick+1, word, pkt),
		}
		payload, n, err := AppendBatch(nil, msgs, 1<<20)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		if n != len(msgs) {
			t.Fatalf("encode consumed %d of %d", n, len(msgs))
		}
		got, closed, err := NewBatchDecoder().DecodeBatchInto(payload, nil)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		wantClosed := false
		for _, m := range msgs {
			wantClosed = wantClosed || m.Kind == KindClose
		}
		if closed != wantClosed {
			t.Fatalf("closed=%v, want %v", closed, wantClosed)
		}
		if len(got) != len(msgs) {
			t.Fatalf("decoded %d messages, want %d", len(got), len(msgs))
		}
		for i := range msgs {
			if !reflect.DeepEqual(got[i], msgs[i]) {
				t.Fatalf("message %d (forceGob=%v) mismatch:\n got  %+v\n want %+v", i, gobOnly, got[i], msgs[i])
			}
		}
	})
}

// FuzzDecodeBatch throws arbitrary bytes at the batch decoder: it
// must error or succeed, never panic, and the callback and the
// into-buffer decoders must agree on what a payload contains.
func FuzzDecodeBatch(f *testing.F) {
	// Valid payloads as seeds, plus the garbage table.
	for _, msgs := range [][]Message{
		{{Kind: KindData, From: "ss1", Seq: 1, Net: "link", Source: "p", Time: 5, Value: signal.Word(1)}},
		{{Kind: KindSafeTimeReq, From: "ss1", Seq: 2, Ask: 100}, {Kind: KindClose, From: "ss1", Seq: 3}},
		{{Kind: KindData, From: "ss1", Seq: 4, Net: "dma", Source: "asic", Time: 9,
			Value: signal.Frame{Src: "a", Dst: "b", Seq: 1, Payload: []byte("xyz"), Last: true}}},
	} {
		payload, _, err := AppendBatch(nil, msgs, 1<<20)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
		// Truncations of a valid payload probe every partial-field path.
		f.Add(payload[:len(payload)/2])
	}
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x07, 0x01})
	f.Add([]byte{0x01, 0x00, 0x01, 0xff})

	f.Fuzz(func(t *testing.T, payload []byte) {
		viaCb := 0
		_, errCb := NewBatchDecoder().DecodeBatch(payload, func(Message) { viaCb++ })
		msgs, _, errInto := NewBatchDecoder().DecodeBatchInto(payload, nil)
		if (errCb == nil) != (errInto == nil) {
			t.Fatalf("decoders disagree on validity: cb=%v into=%v", errCb, errInto)
		}
		if errCb == nil && viaCb != len(msgs) {
			t.Fatalf("decoders disagree on count: cb=%d into=%d", viaCb, len(msgs))
		}
	})
}
