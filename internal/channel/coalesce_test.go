package channel

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/signal"
	"repro/internal/vtime"
)

// fakeBatchTr records what the endpoint hands the transport: whole
// batches via SendBatch, single messages via Send.
type fakeBatchTr struct {
	mu      sync.Mutex
	batches [][]Message
	singles []Message
}

func (f *fakeBatchTr) Send(m Message) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.singles = append(f.singles, m)
	return nil
}

func (f *fakeBatchTr) SendBatch(msgs []Message) error {
	cp := append([]Message(nil), msgs...)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.batches = append(f.batches, cp)
	return nil
}

func (f *fakeBatchTr) Close() error { return nil }

func (f *fakeBatchTr) snapshot() (batches [][]Message, singles []Message) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([][]Message(nil), f.batches...), append([]Message(nil), f.singles...)
}

func coalescingEndpoint(t *testing.T, cfg CoalesceConfig) (*Endpoint, *fakeBatchTr) {
	t.Helper()
	sub := core.NewSubsystem("ss1")
	h := NewHub(sub)
	tr := &fakeBatchTr{}
	// A small deterministic link (like the rest of the suite) so the
	// virtual arrival times in MaxHold tests are easy to reason about:
	// drive(i) arrives at roughly i+6 with no queueing.
	ep, err := h.NewEndpoint("peer", Conservative, LinkModel{Latency: 5, PerMessage: 1}, tr)
	if err != nil {
		t.Fatal(err)
	}
	ep.SetCoalescing(cfg)
	return ep, tr
}

func drive(ep *Endpoint, i int) {
	ep.egress("link", core.Msg{Sent: vtime.Time(i), Value: signal.Word(uint32(i)), Source: "prod"})
}

func TestEmptyFlushIsNoOp(t *testing.T) {
	ep, tr := coalescingEndpoint(t, CoalesceConfig{MaxMsgs: 16})
	ep.Flush()
	ep.Flush()
	batches, singles := tr.snapshot()
	if len(batches) != 0 || len(singles) != 0 {
		t.Fatalf("empty flush sent something: %d batches, %d singles", len(batches), len(singles))
	}
	if st := ep.Stats(); st.Flushes != 0 {
		t.Fatalf("empty flushes counted: %d", st.Flushes)
	}
}

// TestFlushBeforeAsk is the safety property coalescing must not
// break: a safe-time ask leaves immediately, and every data message
// queued before it goes on the wire first (same batch, earlier
// positions) so FIFO seq order holds at the receiver.
func TestFlushBeforeAsk(t *testing.T) {
	ep, tr := coalescingEndpoint(t, CoalesceConfig{MaxMsgs: 100, MaxBytes: 1 << 20})
	for i := 0; i < 3; i++ {
		drive(ep, i)
	}
	if batches, singles := tr.snapshot(); len(batches) != 0 || len(singles) != 0 {
		t.Fatalf("drives under budget flushed early: %d batches, %d singles", len(batches), len(singles))
	}
	if n := ep.PendingOut(); n != 3 {
		t.Fatalf("pending %d, want 3", n)
	}
	ep.Request(1000)
	batches, singles := tr.snapshot()
	if len(singles) != 0 {
		t.Fatalf("unexpected single sends: %v", singles)
	}
	if len(batches) != 1 {
		t.Fatalf("want 1 batch, got %d", len(batches))
	}
	b := batches[0]
	if len(b) != 4 {
		t.Fatalf("batch carries %d messages, want 4 (3 data + ask)", len(b))
	}
	for i := 0; i < 3; i++ {
		if b[i].Kind != KindData {
			t.Fatalf("batch[%d] = %v, want data before the ask", i, b[i].Kind)
		}
	}
	if b[3].Kind != KindSafeTimeReq || b[3].Ask != 1000 {
		t.Fatalf("batch tail = %+v, want the ask", b[3])
	}
	for i, m := range b {
		if m.Seq != uint64(i+1) {
			t.Fatalf("seq order broken in batch: %+v", b)
		}
	}
	if n := ep.PendingOut(); n != 0 {
		t.Fatalf("queue not drained: %d pending", n)
	}
}

func TestCoalesceCountBudget(t *testing.T) {
	ep, tr := coalescingEndpoint(t, CoalesceConfig{MaxMsgs: 4})
	for i := 0; i < 8; i++ {
		drive(ep, i)
	}
	batches, _ := tr.snapshot()
	if len(batches) != 2 || len(batches[0]) != 4 || len(batches[1]) != 4 {
		t.Fatalf("count budget of 4 over 8 drives gave %d batches", len(batches))
	}
	if st := ep.Stats(); st.Flushes != 2 || st.FlushedMsgs != 8 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCoalesceByteBudget(t *testing.T) {
	// Each Word is 4 payload bytes; an 8-byte budget trips on every
	// second drive.
	ep, tr := coalescingEndpoint(t, CoalesceConfig{MaxMsgs: 100, MaxBytes: 8})
	for i := 0; i < 6; i++ {
		drive(ep, i)
	}
	batches, _ := tr.snapshot()
	if len(batches) != 3 {
		t.Fatalf("byte budget gave %d batches, want 3", len(batches))
	}
}

func TestCoalesceMaxHold(t *testing.T) {
	ep, tr := coalescingEndpoint(t, CoalesceConfig{MaxMsgs: 100, MaxHold: 10})
	// Drives sent at 0..4 arrive ~1 tick apart: within the hold span,
	// no flush.
	for i := 0; i < 5; i++ {
		drive(ep, i)
	}
	if batches, _ := tr.snapshot(); len(batches) != 0 {
		t.Fatalf("hold span not reached but %d batches flushed", len(batches))
	}
	// A drive arriving 20 ticks later exceeds MaxHold and forces the
	// flush.
	drive(ep, 30)
	batches, _ := tr.snapshot()
	if len(batches) != 1 || len(batches[0]) != 6 {
		t.Fatalf("hold-span flush: %d batches", len(batches))
	}
}

func TestDisableCoalescingFlushesAndReverts(t *testing.T) {
	ep, tr := coalescingEndpoint(t, CoalesceConfig{MaxMsgs: 100})
	drive(ep, 0)
	drive(ep, 1)
	ep.SetCoalescing(CoalesceConfig{}) // disable: must drain the queue
	batches, singles := tr.snapshot()
	if len(batches) != 1 || len(batches[0]) != 2 {
		t.Fatalf("disable did not flush the queue: %d batches %d singles", len(batches), len(singles))
	}
	drive(ep, 2) // now back on the immediate path
	_, singles = tr.snapshot()
	if len(singles) != 1 {
		t.Fatalf("disabled endpoint still batching: %d singles", len(singles))
	}
}

// TestCoalescedConservativeDelivery asks pipe-connected endpoints to
// coalesce. Pipes cannot batch, so SetCoalescing must degrade to the
// immediate path with delivery unchanged — the guarantee that lets
// the builder apply one coalescing policy to mixed deployments.
// (Batched end-to-end delivery over real TCP is covered in the node
// package tests.)
func TestCoalescedConservativeDelivery(t *testing.T) {
	s1, s2, _, rcv, h1, h2 := twoSubs(t, Conservative, LinkModel{Latency: 5, PerMessage: 1}, 25, 10)
	for _, h := range []*Hub{h1, h2} {
		for _, ep := range h.Endpoints() {
			ep.SetCoalescing(CoalesceConfig{MaxMsgs: 8})
		}
	}
	e1, e2 := runBoth(s1, s2, 1000)
	if e1 != nil || e2 != nil {
		t.Fatalf("runs: %v / %v", e1, e2)
	}
	if len(rcv.Got) != 25 {
		t.Fatalf("delivered %d, want 25", len(rcv.Got))
	}
	for i, v := range rcv.Got {
		if v != i {
			t.Fatalf("order broken: %v", rcv.Got)
		}
	}
}
