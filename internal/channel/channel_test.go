package channel

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/vtime"
)

// sender emits Count values on "out", spaced Period apart.
type sender struct {
	Next   int
	Count  int
	Period vtime.Duration
}

func (s *sender) Run(p *core.Proc) error {
	for s.Next < s.Count {
		p.Delay(s.Period)
		p.Send("out", s.Next)
		s.Next++
	}
	return nil
}

func (s *sender) SaveState() ([]byte, error)  { return core.GobSave(s) }
func (s *sender) RestoreState(b []byte) error { return core.GobRestore(s, b) }

// receiver records what arrives on "in".
type receiver struct {
	Got   []int
	Times []vtime.Time
}

func (r *receiver) Run(p *core.Proc) error {
	for {
		m, ok := p.Recv("in")
		if !ok {
			return nil
		}
		r.Got = append(r.Got, m.Value.(int))
		r.Times = append(r.Times, m.Time)
	}
}

func (r *receiver) SaveState() ([]byte, error)  { return core.GobSave(r) }
func (r *receiver) RestoreState(b []byte) error { return core.GobRestore(r, b) }

// twoSubs builds SS1 (sender) and SS2 (receiver) with the logical net
// "link" split between them, bridged by a channel of the given policy.
func twoSubs(t *testing.T, policy Policy, link LinkModel, count int, period vtime.Duration) (s1, s2 *core.Subsystem, snd *sender, rcv *receiver, h1, h2 *Hub) {
	t.Helper()
	s1 = core.NewSubsystem("ss1")
	s2 = core.NewSubsystem("ss2")
	snd = &sender{Count: count, Period: period}
	rcv = &receiver{}
	sc, _ := s1.NewComponent("prod", snd)
	sc.AddPort("out")
	rc, _ := s2.NewComponent("cons", rcv)
	rc.AddPort("in")
	// The split net: one fragment per subsystem.
	n1, _ := s1.NewNet("link", 0)
	if err := s1.Connect(n1, sc.Port("out")); err != nil {
		t.Fatal(err)
	}
	n2, _ := s2.NewNet("link", 0)
	if err := s2.Connect(n2, rc.Port("in")); err != nil {
		t.Fatal(err)
	}
	h1, h2 = NewHub(s1), NewHub(s2)
	ep1, ep2, err := Connect(h1, h2, policy, link)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep1.BindNet(n1, "link"); err != nil {
		t.Fatal(err)
	}
	if err := ep2.BindNet(n2, "link"); err != nil {
		t.Fatal(err)
	}
	return
}

// runBoth runs both subsystems to the horizon concurrently and
// returns their errors.
func runBoth(s1, s2 *core.Subsystem, until vtime.Time) (error, error) {
	var wg sync.WaitGroup
	var e1, e2 error
	wg.Add(2)
	go func() { defer wg.Done(); e1 = s1.Run(until) }()
	go func() { defer wg.Done(); e2 = s2.Run(until) }()
	wg.Wait()
	return e1, e2
}

func TestConservativeDelivery(t *testing.T) {
	link := LinkModel{Latency: 5, PerMessage: 1}
	s1, s2, _, rcv, _, _ := twoSubs(t, Conservative, link, 10, 10)
	e1, e2 := runBoth(s1, s2, 1000)
	if e1 != nil || e2 != nil {
		t.Fatalf("run errors: %v / %v", e1, e2)
	}
	if len(rcv.Got) != 10 {
		t.Fatalf("received %d values, want 10", len(rcv.Got))
	}
	for i, v := range rcv.Got {
		if v != i {
			t.Fatalf("value %d = %d (out of order?)", i, v)
		}
	}
	// Arrival times must be strictly increasing (FIFO link) and
	// reflect the link model: send at 10i+10, arrive >= send+6.
	for i, at := range rcv.Times {
		sendT := vtime.Time(10 * (i + 1))
		if at < sendT.Add(link.Lookahead()) {
			t.Fatalf("arrival %d at %v, earlier than physics allows (%v)", i, at, sendT.Add(link.Lookahead()))
		}
		if i > 0 && at <= rcv.Times[i-1] {
			t.Fatalf("arrivals not increasing: %v", rcv.Times)
		}
	}
}

func TestConservativeNoCausalityViolation(t *testing.T) {
	// The receiver's subsystem runs a local busy component that would
	// race far ahead of the sender if the gate did not stall it
	// (Fig 3: Subsystem 1 must stall to maintain consistency).
	link := LinkModel{Latency: 5, PerMessage: 1}
	s1, s2, _, rcv, _, h2 := twoSubs(t, Conservative, link, 20, 10)
	busy := &sender{Count: 1000, Period: 1} // local noise on ss2
	bc, _ := s2.NewComponent("busy", busy)
	bc.AddPort("out")
	nb, _ := s2.NewNet("noise", 0)
	s2.Connect(nb, bc.Port("out"))

	e1, e2 := runBoth(s1, s2, 2000)
	if e1 != nil || e2 != nil {
		t.Fatalf("run errors: %v / %v", e1, e2)
	}
	if len(rcv.Got) != 20 {
		t.Fatalf("received %d, want 20", len(rcv.Got))
	}
	for _, ep := range h2.Endpoints() {
		if err := ep.Err(); err != nil {
			t.Fatalf("conservative causality violation detected: %v", err)
		}
	}
}

func TestConservativeBidirectional(t *testing.T) {
	// Ping-pong across the channel: a requester on ss1, an echo on
	// ss2. Exercises the mutual-blocking lifting (Fig 4 semantics:
	// each side needs safe times from the other).
	s1 := core.NewSubsystem("ss1")
	s2 := core.NewSubsystem("ss2")
	const rounds = 5
	var rtts []vtime.Duration
	ping := core.BehaviorFunc(func(p *core.Proc) error {
		for i := 0; i < rounds; i++ {
			start := p.Time()
			p.Send("out", i)
			m, ok := p.Recv("in")
			if !ok {
				return nil
			}
			if m.Value.(int) != i {
				t.Errorf("echo %d = %v", i, m.Value)
			}
			rtts = append(rtts, p.Time().Sub(start))
		}
		return nil
	})
	pc, _ := s1.NewComponent("ping", &gobBehavior{B: ping})
	pc.AddPort("out")
	pc.AddPort("in")
	echo := core.BehaviorFunc(func(p *core.Proc) error {
		for {
			m, ok := p.Recv("in")
			if !ok {
				return nil
			}
			p.Advance(3)
			p.Send("out", m.Value)
		}
	})
	ec, _ := s2.NewComponent("echo", &gobBehavior{B: echo})
	ec.AddPort("in")
	ec.AddPort("out")

	req1, _ := s1.NewNet("req", 0)
	s1.Connect(req1, pc.Port("out"))
	rsp1, _ := s1.NewNet("rsp", 0)
	s1.Connect(rsp1, pc.Port("in"))
	req2, _ := s2.NewNet("req", 0)
	s2.Connect(req2, ec.Port("in"))
	rsp2, _ := s2.NewNet("rsp", 0)
	s2.Connect(rsp2, ec.Port("out"))

	h1, h2 := NewHub(s1), NewHub(s2)
	link := LinkModel{Latency: 10, PerMessage: 2}
	ep1, ep2, err := Connect(h1, h2, Conservative, link)
	if err != nil {
		t.Fatal(err)
	}
	ep1.BindNet(req1, "req")
	ep2.BindNet(rsp2, "rsp")

	e1, e2 := runBoth(s1, s2, 10000)
	if e1 != nil || e2 != nil {
		t.Fatalf("run errors: %v / %v", e1, e2)
	}
	if len(rtts) != rounds {
		t.Fatalf("completed %d rounds, want %d", len(rtts), rounds)
	}
	// Round trip >= 2 * lookahead + compute.
	min := vtime.Duration(2*12 + 3)
	for i, d := range rtts {
		if d < min {
			t.Fatalf("round %d RTT %v below physical minimum %v", i, d, min)
		}
	}
}

// gobBehavior wraps a stateless BehaviorFunc with trivial state
// saving so it can live in checkpointable subsystems.
type gobBehavior struct {
	B core.Behavior
}

func (g *gobBehavior) Run(p *core.Proc) error      { return g.B.Run(p) }
func (g *gobBehavior) SaveState() ([]byte, error)  { return []byte{}, nil }
func (g *gobBehavior) RestoreState(b []byte) error { return nil }

func TestOptimisticStragglerRollsBack(t *testing.T) {
	// ss2 has local work that races far ahead; the optimistic
	// channel lets it, then the first remote message arrives in its
	// past and forces a rollback.
	link := LinkModel{Latency: 5, PerMessage: 1}
	s1, s2, _, rcv, h1, h2 := twoSubs(t, Optimistic, link, 5, 100)
	busy := &sender{Count: 2000, Period: 1}
	bc, _ := s2.NewComponent("busy", busy)
	bc.AddPort("out")
	nb, _ := s2.NewNet("noise", 0)
	s2.Connect(nb, bc.Port("out"))
	s2.SetAutoCheckpoint(10)
	s2.SetCheckpointRetention(1000)

	// Let ss2 race ahead optimistically before ss1 produces anything,
	// so ss1's messages are guaranteed to be stragglers.
	done2 := make(chan error, 1)
	go func() { done2 <- s2.Run(vtime.Infinity) }()
	for {
		if now, _ := s2.PublishedTimes(); now >= 1500 {
			break
		}
	}
	e1 := s1.Run(3000)
	if err := h1.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := <-done2
	if e1 != nil || e2 != nil {
		t.Fatalf("run errors: %v / %v", e1, e2)
	}
	if len(rcv.Got) != 5 {
		t.Fatalf("received %d, want 5: %v", len(rcv.Got), rcv.Got)
	}
	for i, v := range rcv.Got {
		if v != i {
			t.Fatalf("order broken after rollback: %v", rcv.Got)
		}
	}
	ep := h2.Endpoints()[0]
	if ep.Stats().Stragglers == 0 {
		t.Fatal("expected stragglers on the optimistic channel")
	}
	if s2.Stats().Restores == 0 {
		t.Fatal("straggler did not trigger a restore")
	}
}

func TestOptimisticNoGateNoStall(t *testing.T) {
	// An optimistic channel must not register a gate: ss2 should be
	// able to finish its local work without any grant exchange.
	link := LinkModel{Latency: 5, PerMessage: 1}
	s1, s2, _, _, h1, h2 := twoSubs(t, Optimistic, link, 1, 10)
	if err := s1.Run(50); err != nil {
		t.Fatal(err)
	}
	// ss2 drains what has arrived, then returns at the horizon
	// without waiting for grants.
	if err := s2.Run(50); err != nil {
		t.Fatal(err)
	}
	for _, h := range []*Hub{h1, h2} {
		for _, ep := range h.Endpoints() {
			st := ep.Stats()
			if st.AsksOut != 0 {
				t.Fatalf("optimistic endpoint sent %d asks", st.AsksOut)
			}
		}
	}
}

func TestHubDuplicateEndpoint(t *testing.T) {
	s := core.NewSubsystem("dup")
	h := NewHub(s)
	ta, _ := Pipe()
	if _, err := h.NewEndpoint("peer", Optimistic, LinkModel{Latency: 1}, ta); err != nil {
		t.Fatal(err)
	}
	if _, err := h.NewEndpoint("peer", Optimistic, LinkModel{Latency: 1}, ta); err == nil {
		t.Fatal("duplicate endpoint accepted")
	}
	if h.Endpoint("peer") == nil || h.Endpoint("ghost") != nil {
		t.Fatal("Endpoint lookup wrong")
	}
}

func TestConservativeRequiresLookahead(t *testing.T) {
	s := core.NewSubsystem("la")
	h := NewHub(s)
	ta, _ := Pipe()
	if _, err := h.NewEndpoint("peer", Conservative, LinkModel{}, ta); err == nil {
		t.Fatal("zero-lookahead conservative channel accepted")
	}
}

func TestLinkModel(t *testing.T) {
	lm := LinkModel{Latency: 100, BytesPerSecond: 1_000_000_000, PerMessage: 10}
	// 1 GB/s = 1 byte per ns.
	if d := lm.TransferTime(500); d != 510 {
		t.Fatalf("TransferTime = %v, want 510", d)
	}
	arrive, busy := lm.Arrival(1000, 500, 0)
	if busy != 1510 || arrive != 1610 {
		t.Fatalf("Arrival = %v busy %v", arrive, busy)
	}
	// Serialization: second message queues behind the first.
	arrive2, busy2 := lm.Arrival(1000, 500, busy)
	if busy2 != busy+510 || arrive2 != busy2+100 {
		t.Fatalf("serialized Arrival = %v busy %v", arrive2, busy2)
	}
	if lm.Lookahead() != 110 {
		t.Fatalf("Lookahead = %v", lm.Lookahead())
	}
	if err := (LinkModel{Latency: -1}).Validate(false); err == nil {
		t.Fatal("negative latency accepted")
	}
}

func TestPipeFIFO(t *testing.T) {
	a, b := Pipe()
	var got []uint64
	var mu sync.Mutex
	done := make(chan struct{})
	b.Receive(func(m Message) {
		mu.Lock()
		got = append(got, m.Seq)
		if len(got) == 100 {
			close(done)
		}
		mu.Unlock()
	})
	for i := 1; i <= 100; i++ {
		if err := a.Send(Message{Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	for i, s := range got {
		if s != uint64(i+1) {
			t.Fatalf("FIFO broken at %d: %v", i, s)
		}
	}
	b.Close()
	if err := a.Send(Message{}); err != ErrPipeClosed {
		t.Fatalf("send after close = %v, want ErrPipeClosed", err)
	}
}

func TestRecordingCapturesInFlight(t *testing.T) {
	link := LinkModel{Latency: 5, PerMessage: 1}
	s1, s2, _, _, _, h2 := twoSubs(t, Conservative, link, 3, 10)
	ep := h2.Endpoints()[0]
	ep.SetRecording(true)
	e1, e2 := runBoth(s1, s2, 1000)
	if e1 != nil || e2 != nil {
		t.Fatalf("run errors: %v / %v", e1, e2)
	}
	rec := ep.TakeRecorded()
	if len(rec) != 3 {
		t.Fatalf("recorded %d messages, want 3", len(rec))
	}
	for _, m := range rec {
		if m.Kind != KindData || m.Net != "link" {
			t.Fatalf("recorded wrong message: %v", m)
		}
	}
	if len(ep.TakeRecorded()) != 0 {
		t.Fatal("TakeRecorded did not clear")
	}
}

func TestMarkAndRestoreDelivery(t *testing.T) {
	// Marks are processed on the receiving subsystem's scheduler, so
	// b must be running for them to land.
	s1 := core.NewSubsystem("a")
	s2 := core.NewSubsystem("b")
	h1, h2 := NewHub(s1), NewHub(s2)
	ep1, ep2, err := Connect(h1, h2, Optimistic, LinkModel{Latency: 1})
	if err != nil {
		t.Fatal(err)
	}
	marks := make(chan string, 1)
	restores := make(chan string, 1)
	ep2.SetMarkHandler(func(tag string) { marks <- tag })
	ep2.SetRestoreHandler(func(tag string) { restores <- tag })
	done := make(chan error, 1)
	go func() { done <- s2.Run(vtime.Infinity) }()
	ep1.SendMark("snap-7")
	ep1.SendRestore("snap-7")
	if got := <-marks; got != "snap-7" {
		t.Fatalf("mark tag = %q", got)
	}
	if got := <-restores; got != "snap-7" {
		t.Fatalf("restore tag = %q", got)
	}
	if err := h1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestKindAndPolicyStrings(t *testing.T) {
	for _, k := range []Kind{KindData, KindSafeTimeReq, KindSafeTimeGrant, KindMark, KindRestore, KindClose, Kind(99)} {
		if k.String() == "" {
			t.Fatal("empty Kind string")
		}
	}
	if Conservative.String() != "conservative" || Optimistic.String() != "optimistic" {
		t.Fatal("Policy strings wrong")
	}
	m := Message{Kind: KindData, From: "a", Time: 5, Net: "n", Value: 3}
	if m.String() == "" {
		t.Fatal("empty Message string")
	}
}
