package channel

import (
	"errors"
	"sync"

	"repro/internal/signal"
)

// payloadSize charges the link model for a value's wire size.
func payloadSize(v any) int { return signal.Size(v) }

// ErrPipeClosed is returned by Send after Close.
var ErrPipeClosed = errors.New("channel: pipe closed")

// PipeEnd is an in-process Transport: two ends connected by unbounded
// FIFO queues with one pump goroutine per direction. Used when both
// subsystems live in the same Pia node; the node package provides the
// TCP equivalent for remote peers.
type PipeEnd struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool

	peer *PipeEnd
}

// Pipe creates a connected pair of transports.
func Pipe() (*PipeEnd, *PipeEnd) {
	a := &PipeEnd{}
	b := &PipeEnd{}
	a.cond = sync.NewCond(&a.mu)
	b.cond = sync.NewCond(&b.mu)
	a.peer = b
	b.peer = a
	return a, b
}

// Send enqueues a message for the peer. It never blocks.
func (p *PipeEnd) Send(m Message) error {
	q := p.peer
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrPipeClosed
	}
	q.queue = append(q.queue, m)
	q.cond.Signal()
	return nil
}

// Receive starts the pump: fn is invoked for every incoming message,
// in order, on a dedicated goroutine, until Close.
func (p *PipeEnd) Receive(fn func(Message)) {
	go func() {
		for {
			p.mu.Lock()
			for len(p.queue) == 0 && !p.closed {
				p.cond.Wait()
			}
			if len(p.queue) == 0 && p.closed {
				p.mu.Unlock()
				return
			}
			m := p.queue[0]
			p.queue = p.queue[1:]
			p.mu.Unlock()
			fn(m)
		}
	}()
}

// Close shuts down this end; pending messages are still delivered to
// the local pump, and the peer's sends start failing.
func (p *PipeEnd) Close() error {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	return nil
}

// Connect wires two subsystem hubs together with an in-process pipe
// and returns the two endpoints. Both sides use the same policy and
// link model, matching the paper's channels.
func Connect(a, b *Hub, policy Policy, link LinkModel) (*Endpoint, *Endpoint, error) {
	ta, tb := Pipe()
	epA, err := a.NewEndpoint(b.Subsystem().Name(), policy, link, ta)
	if err != nil {
		return nil, nil, err
	}
	epB, err := b.NewEndpoint(a.Subsystem().Name(), policy, link, tb)
	if err != nil {
		return nil, nil, err
	}
	// ta's queue holds what B sent; drain it into A's endpoint.
	ta.Receive(epA.OnMessage)
	tb.Receive(epB.OnMessage)
	return epA, epB, nil
}
