// Package channel implements the inter-subsystem channels of the Pia
// distributed co-simulation framework: the FIFO message streams that
// bridge split nets, the conservative safe-time protocol, optimistic
// channels with straggler-triggered rollback, the link model that
// charges virtual time for cross-channel traffic, and the marks used
// by Chandy-Lamport distributed snapshots.
//
// # Safe-time protocol
//
// Each conservative endpoint acts as a core.Gate on its subsystem:
// the scheduler may not advance to time t until the peer has granted
// a safe time >= t. A subsystem's grant to a peer is
//
//	min(own next event key, all grants it holds from conservative peers) + lookahead
//
// where the lookahead is the channel's link latency (plus fixed
// per-message overhead). Grants are pushed both in response to
// explicit safe-time requests and proactively whenever they rise —
// the null-message variant of the protocol. The mandatory positive
// lookahead is what breaks restriction cycles; the paper achieves the
// same deadlock freedom by removing the asking peer's restrictions
// from the reported time, and restricts topologies to simple cycles.
// A real Internet link always has positive latency, so requiring
// Latency > 0 on conservative channels is faithful to the deployment
// the paper describes.
package channel

import (
	"encoding/gob"
	"fmt"

	"repro/internal/signal"
	"repro/internal/vtime"
)

// Kind classifies channel messages.
type Kind uint8

const (
	// KindData carries a net value change across the channel.
	KindData Kind = iota
	// KindSafeTimeReq asks the peer to grant a safe time.
	KindSafeTimeReq
	// KindSafeTimeGrant promises the receiver that the sender will
	// never transmit data with a timestamp below Grant.
	KindSafeTimeGrant
	// KindMark is a Chandy-Lamport snapshot marker.
	KindMark
	// KindRestore orders a coordinated restore to a snapshot tag.
	KindRestore
	// KindClose announces that the sender has finished and will
	// never send again (equivalent to a grant of Infinity).
	KindClose
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindSafeTimeReq:
		return "safetime-req"
	case KindSafeTimeGrant:
		return "safetime-grant"
	case KindMark:
		return "mark"
	case KindRestore:
		return "restore"
	case KindClose:
		return "close"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Message is one unit on a channel. Channels are FIFO: Seq increases
// by one per message per direction, and receivers verify it.
type Message struct {
	Kind Kind
	From string // sending subsystem
	Seq  uint64

	// Data fields.
	Net    string     // destination net, in the receiver's namespace
	Source string     // driving component
	Time   vtime.Time // arrival in virtual time (link model applied)
	Value  any

	// Safe-time fields. Ack piggybacks on every message: the highest
	// sequence number from the receiver that the sender had processed
	// when it sent this. Messages beyond Ack are still "in flight"
	// from the sender's point of view and bound its earliest possible
	// reaction.
	Ask   vtime.Time
	Grant vtime.Time
	Ack   uint64

	// Snapshot tag for marks and restores.
	Tag string
}

func (m Message) String() string {
	switch m.Kind {
	case KindData:
		return fmt.Sprintf("data(%s @%v %s=%s)", m.From, m.Time, m.Net, signal.String(m.Value))
	case KindSafeTimeReq:
		return fmt.Sprintf("ask(%s -> %v)", m.From, m.Ask)
	case KindSafeTimeGrant:
		return fmt.Sprintf("grant(%s -> %v)", m.From, m.Grant)
	case KindMark:
		return fmt.Sprintf("mark(%s tag=%s)", m.From, m.Tag)
	case KindRestore:
		return fmt.Sprintf("restore(%s tag=%s)", m.From, m.Tag)
	default:
		return m.Kind.String() + "(" + m.From + ")"
	}
}

// Transport moves messages to the peer endpoint, preserving order.
// Send must not block indefinitely on the caller's goroutine: the
// subsystem scheduler calls it.
type Transport interface {
	Send(Message) error
	Close() error
}

// Register registers channel and signal types with gob for transports
// that serialize (the node package calls this).
func Register() {
	gob.Register(Message{})
	signal.Register()
}
