package channel

import (
	"encoding/gob"
	"reflect"
	"testing"

	"repro/internal/signal"
	"repro/internal/vtime"
)

// customVal has no binary fast path: it must ride the gob fallback.
type customVal struct {
	A int
	B string
}

func init() { gob.Register(customVal{}) }

func decodeAll(t *testing.T, dec *BatchDecoder, frames [][]byte) (got []Message, closed bool) {
	t.Helper()
	for _, f := range frames {
		c, err := dec.DecodeBatch(f, func(m Message) { got = append(got, m) })
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		closed = closed || c
	}
	return got, closed
}

func mustEqualMessages(t *testing.T, got, want []Message) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d messages, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("message %d mismatch:\n got  %+v\n want %+v", i, got[i], want[i])
		}
	}
}

func TestBatchRoundTripAllKindsAndValues(t *testing.T) {
	msgs := []Message{
		{Kind: KindData, From: "ss1", Seq: 1, Ack: 0, Net: "link", Source: "prod", Time: 10, Value: signal.Level(true)},
		{Kind: KindData, From: "ss1", Seq: 2, Ack: 1, Net: "link", Source: "prod", Time: 20, Value: signal.Word(0xdeadbeef)},
		{Kind: KindData, From: "ss1", Seq: 3, Ack: 1, Net: "link", Source: "prod", Time: 30, Value: signal.Byte(7)},
		{Kind: KindData, From: "ss1", Seq: 4, Ack: 2, Net: "dma", Source: "asic", Time: 40, Value: signal.Packet{1, 2, 3, 4, 5}},
		{Kind: KindData, From: "ss1", Seq: 5, Ack: 2, Net: "dma", Source: "asic", Time: 50,
			Value: signal.Frame{Src: "a", Dst: "b", Seq: 9, Payload: []byte("payload"), Last: true}},
		{Kind: KindData, From: "ss1", Seq: 6, Ack: 2, Net: "bus", Source: "cpu", Time: 60,
			Value: signal.BusCycle{Addr: 0x1000, Data: 42, Write: true}},
		{Kind: KindData, From: "ss1", Seq: 7, Ack: 3, Net: "ctl", Source: "ui", Time: 70,
			Value: signal.Control{Op: "load", Arg: -5}},
		{Kind: KindData, From: "ss1", Seq: 8, Ack: 3, Net: "irq", Source: "asic", Time: 80,
			Value: signal.IRQ{Line: 3, Cause: "dma-done"}},
		{Kind: KindData, From: "ss1", Seq: 9, Ack: 3, Net: "link", Source: "prod", Time: 90, Value: 123},
		{Kind: KindData, From: "ss1", Seq: 10, Ack: 3, Net: "link", Source: "prod", Time: 95, Value: nil},
		{Kind: KindSafeTimeReq, From: "ss1", Seq: 11, Ack: 4, Ask: 500},
		{Kind: KindSafeTimeGrant, From: "ss1", Seq: 12, Ack: 5, Grant: 400},
		{Kind: KindSafeTimeGrant, From: "ss1", Seq: 13, Ack: 5, Grant: vtime.Infinity},
		{Kind: KindMark, From: "ss1", Seq: 14, Ack: 5, Tag: "snap-1"},
		{Kind: KindRestore, From: "ss1", Seq: 15, Ack: 5, Tag: "snap-1"},
	}
	payload, n, err := AppendBatch(nil, msgs, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(msgs) {
		t.Fatalf("consumed %d of %d", n, len(msgs))
	}
	got, closed := decodeAll(t, NewBatchDecoder(), [][]byte{payload})
	if closed {
		t.Fatal("no close in batch, decoder says closed")
	}
	mustEqualMessages(t, got, msgs)
}

func TestBatchMixedFastPathAndGobFallback(t *testing.T) {
	msgs := []Message{
		{Kind: KindData, From: "ss1", Seq: 1, Net: "link", Source: "p", Time: 1, Value: signal.Word(1)},
		{Kind: KindData, From: "ss1", Seq: 2, Net: "link", Source: "p", Time: 2, Value: customVal{A: 7, B: "gob"}},
		{Kind: KindData, From: "ss1", Seq: 3, Net: "link", Source: "p", Time: 3, Value: signal.Word(3)},
		{Kind: KindData, From: "ss1", Seq: 4, Net: "link", Source: "p", Time: 4, Value: customVal{A: 9, B: "again"}},
		{Kind: KindSafeTimeReq, From: "ss1", Seq: 5, Ask: 100},
	}
	payload, n, err := AppendBatch(nil, msgs, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(msgs) {
		t.Fatalf("consumed %d of %d", n, len(msgs))
	}
	got, _ := decodeAll(t, NewBatchDecoder(), [][]byte{payload})
	mustEqualMessages(t, got, msgs)
}

func TestBatchSplitsAtLimit(t *testing.T) {
	const count = 40
	msgs := make([]Message, count)
	for i := range msgs {
		msgs[i] = Message{Kind: KindData, From: "ss1", Seq: uint64(i + 1), Net: "link",
			Source: "prod", Time: vtime.Time(i), Value: signal.Word(uint32(i))}
	}
	const limit = 128
	var frames [][]byte
	rest := msgs
	for len(rest) > 0 {
		payload, n, err := AppendBatch(nil, rest, limit)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatal("AppendBatch consumed nothing")
		}
		if len(payload) > limit {
			t.Fatalf("frame of %d bytes exceeds limit %d with %d messages", len(payload), limit, n)
		}
		frames = append(frames, payload)
		rest = rest[n:]
	}
	if len(frames) < 2 {
		t.Fatalf("expected the batch to split, got %d frame(s)", len(frames))
	}
	got, _ := decodeAll(t, NewBatchDecoder(), frames)
	mustEqualMessages(t, got, msgs)
}

func TestBatchOversizedSingleMessageStillEncodes(t *testing.T) {
	big := Message{Kind: KindData, From: "ss1", Seq: 1, Net: "link", Source: "p",
		Value: make(signal.Packet, 300)}
	payload, n, err := AppendBatch(nil, []Message{big}, 128)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("consumed %d, want 1", n)
	}
	if len(payload) <= 128 {
		t.Fatalf("oversized message fit in %d bytes?", len(payload))
	}
	got, _ := decodeAll(t, NewBatchDecoder(), [][]byte{payload})
	if len(got) != 1 || len(got[0].Value.(signal.Packet)) != 300 {
		t.Fatalf("round trip lost the payload: %+v", got)
	}
}

func TestBatchEmptyInputIsNoOp(t *testing.T) {
	payload, n, err := AppendBatch(nil, nil, 1<<20)
	if err != nil || n != 0 || len(payload) != 0 {
		t.Fatalf("empty AppendBatch: payload=%d n=%d err=%v", len(payload), n, err)
	}
}

func TestBatchCloseDetected(t *testing.T) {
	msgs := []Message{
		{Kind: KindData, From: "ss1", Seq: 1, Net: "link", Source: "p", Value: signal.Word(1)},
		{Kind: KindClose, From: "ss1", Seq: 2},
	}
	payload, _, err := AppendBatch(nil, msgs, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	got, closed := decodeAll(t, NewBatchDecoder(), [][]byte{payload})
	if !closed {
		t.Fatal("KindClose in batch not reported")
	}
	mustEqualMessages(t, got, msgs)
}

func TestBatchDecoderRejectsGarbage(t *testing.T) {
	dec := NewBatchDecoder()
	for _, payload := range [][]byte{
		{},                       // no count
		{0x01},                   // count 1, no entry
		{0x01, 0x00},             // entry without length
		{0x01, 0x00, 0x09},       // binary entry shorter than its length
		{0x01, 0x07, 0x01},       // unknown encoding 7
		{0x01, 0x00, 0x01, 0xff}, // unknown message kind 255
	} {
		if _, err := dec.DecodeBatch(payload, func(Message) {}); err == nil {
			t.Fatalf("payload %v decoded without error", payload)
		}
	}
}
