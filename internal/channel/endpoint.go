package channel

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/timeline"
	"repro/internal/vtime"
)

// Policy selects how a channel trades parallelism against restores.
type Policy uint8

const (
	// Conservative channels never let the subsystem advance past the
	// peer's granted safe time.
	Conservative Policy = iota
	// Optimistic channels let the subsystem run ahead; a straggler
	// message triggers a rollback to a checkpoint.
	Optimistic
)

func (p Policy) String() string {
	if p == Optimistic {
		return "optimistic"
	}
	return "conservative"
}

// Stats counts endpoint activity.
type Stats struct {
	DataOut, DataIn     int64
	BytesOut, BytesIn   int64
	AsksOut, AsksIn     int64
	GrantsOut, GrantsIn int64
	Stragglers          int64
	SeqErrors           int64
	Flushes             int64 // non-empty egress flushes
	FlushedMsgs         int64 // messages carried by those flushes
}

// CoalesceConfig tunes egress message coalescing. Data drives
// accumulate in the endpoint's egress queue until one of the budgets
// trips; urgent messages (safe-time asks and grants, marks, restores,
// close) always flush immediately, with any queued drives preceding
// them in the same batch so FIFO order is preserved.
type CoalesceConfig struct {
	// MaxMsgs flushes once this many messages are queued. Values
	// below 2 disable coalescing.
	MaxMsgs int
	// MaxBytes flushes once the queued payload bytes (signal sizes,
	// not wire encoding) reach this budget. 0 means no byte budget.
	MaxBytes int
	// MaxHold bounds the virtual-time span a queued drive may wait
	// behind the first queued drive. 0 means unbounded — safe because
	// timestamps are stamped at egress and every scheduler stall
	// flushes, so holding affects wall-clock delivery only.
	MaxHold vtime.Duration
}

// Enabled reports whether the config actually coalesces.
func (c CoalesceConfig) Enabled() bool { return c.MaxMsgs > 1 }

// DefaultCoalesce is a balanced policy: big enough batches to
// amortize framing, small enough to keep wall-clock latency low.
var DefaultCoalesce = CoalesceConfig{MaxMsgs: 64, MaxBytes: 32 << 10}

// BatchTransport is implemented by transports that can carry several
// messages in one frame. SetCoalescing only takes effect on
// endpoints whose Transport also implements BatchTransport.
type BatchTransport interface {
	Transport
	SendBatch(msgs []Message) error
}

// Hub manages all channel endpoints of one subsystem. It chains into
// the subsystem's publish hook so grants are computed and pushed on
// the scheduler goroutine, after injected messages have been routed —
// which is what makes the published next-event key an honest bound.
type Hub struct {
	sub *core.Subsystem

	mu  sync.Mutex
	eps []*Endpoint

	closed    bool
	metricsOn bool // EnableMetrics already wired a collector

	// tl, when non-nil, receives protocol timeline events from every
	// endpoint (see EnableTimeline). Nil costs one pointer check per
	// protocol action; the data hot path stays untouched.
	tl *timeline.Recorder
}

// NewHub creates the hub and installs its publish hook.
func NewHub(sub *core.Subsystem) *Hub {
	h := &Hub{sub: sub}
	prev := sub.OnPublish
	sub.OnPublish = func(now, key vtime.Time) {
		if prev != nil {
			prev(now, key)
		}
		h.publish(key)
	}
	prevDepart := sub.OnDepart
	sub.OnDepart = func(until vtime.Time) {
		if prevDepart != nil {
			prevDepart(until)
		}
		h.depart(until)
	}
	prevStall := sub.OnStall
	sub.OnStall = func() {
		if prevStall != nil {
			prevStall()
		}
		h.flushAll()
	}
	return h
}

// flushAll drains every endpoint's egress queue. Chained into the
// subsystem's stall hook: whenever the scheduler is about to block,
// anything still coalescing goes on the wire — the peer may be
// waiting on exactly those drives, and nothing further will top up
// the batch while we sleep.
func (h *Hub) flushAll() {
	h.mu.Lock()
	eps := append([]*Endpoint(nil), h.eps...)
	h.mu.Unlock()
	for _, ep := range eps {
		ep.Flush()
	}
}

// EnableTimeline attaches the timeline recorder to the hub: every
// endpoint (existing and future) records its committed data
// send/delivery pairs plus the transient ask/grant/straggler protocol
// chatter. Disabled (the default) the endpoints pay a nil check per
// protocol action and nothing on the byte path.
func (h *Hub) EnableTimeline(rec *timeline.Recorder) {
	if rec == nil {
		return
	}
	h.mu.Lock()
	h.tl = rec
	eps := append([]*Endpoint(nil), h.eps...)
	h.mu.Unlock()
	for _, ep := range eps {
		ep.setTimeline(rec)
	}
}

func (ep *Endpoint) setTimeline(rec *timeline.Recorder) {
	ep.mu.Lock()
	ep.tl = rec
	ep.mu.Unlock()
}

// SetCoalescing applies cfg to every endpoint of the hub.
func (h *Hub) SetCoalescing(cfg CoalesceConfig) {
	h.mu.Lock()
	eps := append([]*Endpoint(nil), h.eps...)
	h.mu.Unlock()
	for _, ep := range eps {
		ep.SetCoalescing(cfg)
	}
}

// depart pushes a final grant covering the horizon to every
// conservative peer when this subsystem leaves a finite-horizon run.
// Sound because the subsystem will not simulate at or below the
// horizon again: its future sends (in later runs) happen at times
// strictly beyond it, and reactions it might have to the peer's own
// in-flight messages are already covered by the peer's unacked-egress
// cap.
func (h *Hub) depart(until vtime.Time) {
	h.mu.Lock()
	eps := append([]*Endpoint(nil), h.eps...)
	h.mu.Unlock()
	for _, ep := range eps {
		ep.departGrant(until.Add(1))
		ep.Flush() // departGrant may dedupe to nothing; drives must still go out
	}
}

// departGrant sends a grant covering the horizon. It is always sent,
// even when it does not raise the peer's bound: the departing
// subsystem has processed everything it will process this run, and
// the grant's piggybacked Ack is what releases the peer's
// unacked-egress cap — without it the peer could wait forever on
// echoes that will never come.
func (ep *Endpoint) departGrant(g vtime.Time) {
	ep.mu.Lock()
	if ep.policy != Conservative || ep.closed || ep.paused || ep.peerDone {
		ep.mu.Unlock()
		return
	}
	if g <= ep.lastSent && ep.stats.DataIn <= ep.lastDepartData {
		// Nothing new to tell the peer: the grant would not raise its
		// bound and our Ack has not moved past any of its data.
		// Resending anyway would ping-pong departure grants between
		// idle peers forever in round-based drivers.
		ep.mu.Unlock()
		return
	}
	if g < ep.lastSent {
		g = ep.lastSent // idempotent re-grant as an ack carrier
	}
	ep.lastSent = g
	ep.lastDepartData = ep.stats.DataIn
	if ep.pendingAsk > 0 && g >= ep.pendingAsk {
		ep.pendingAsk = 0
	}
	ep.stats.GrantsOut++
	flush := ep.queueLocked(ep.nextOut(Message{Kind: KindSafeTimeGrant, Grant: g}), true)
	tl := ep.tl
	ep.mu.Unlock()
	tl.Grant(ep.local, ep.peer, g)
	if flush {
		ep.Flush()
	}
}

// Subsystem returns the hub's subsystem.
func (h *Hub) Subsystem() *core.Subsystem { return h.sub }

// Endpoints returns the endpoints in creation order.
func (h *Hub) Endpoints() []*Endpoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]*Endpoint(nil), h.eps...)
}

// Endpoint returns the endpoint toward the named peer, or nil.
func (h *Hub) Endpoint(peer string) *Endpoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, ep := range h.eps {
		if ep.peer == peer {
			return ep
		}
	}
	return nil
}

// NewEndpoint creates a channel endpoint toward the named peer
// subsystem. The endpoint registers itself as an ingress source and,
// for conservative policy, as a gate on the subsystem.
func (h *Hub) NewEndpoint(peer string, policy Policy, link LinkModel, tr Transport) (*Endpoint, error) {
	if err := link.Validate(policy == Conservative); err != nil {
		return nil, err
	}
	if h.Endpoint(peer) != nil {
		return nil, fmt.Errorf("channel: duplicate endpoint %s -> %s", h.sub.Name(), peer)
	}
	ep := &Endpoint{
		hub:    h,
		sub:    h.sub,
		local:  h.sub.Name(),
		peer:   peer,
		policy: policy,
		link:   link,
		tr:     tr,
	}
	h.mu.Lock()
	ep.tl = h.tl
	h.eps = append(h.eps, ep)
	h.mu.Unlock()
	h.sub.AddExternal()
	if policy == Conservative {
		h.sub.AddGate(ep)
	}
	return ep, nil
}

// inBound is the earliest virtual time at which anything can still
// arrive from this endpoint's peer, as far as the peer has promised:
// its latest grant (a finished peer counts as Infinity).
func (ep *Endpoint) inBound() (bound vtime.Time, conservative bool) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.policy != Conservative {
		return 0, false
	}
	return ep.boundLocked(), true
}

// publish runs on the scheduler goroutine after each key publication:
// push grants that have risen, answer pending asks, and forward asks
// we cannot yet satisfy. The grant toward peer X is
//
//	min(own next key, min over peers P != X of inBound(P)) + lookahead(X)
//
// — the paper's rule: "the time a subsystem reports is essentially
// its own subsystem time with all restrictions from the opposite
// processor removed. If this were not the case, there would be
// deadlock." Excluding X makes the grant independent of what X has
// granted us, so a bidirectional pair resolves immediately and a
// chain resolves in one hop per link; the influence of X's own
// in-flight messages on us is handled on X's side, which caps its
// gate bound by the arrival times of its unacknowledged egress (see
// Bound). This is also exactly why the paper restricts the subsystem
// graph to simple cycles: around a longer cycle the exclusions no
// longer decouple the recursion.
func (h *Hub) publish(_ vtime.Time) {
	_, key := h.sub.PublishedTimes()
	h.mu.Lock()
	eps := append([]*Endpoint(nil), h.eps...)
	h.mu.Unlock()
	f := key // global floor, for ask-forwarding decisions
	bounds := make([]vtime.Time, len(eps))
	for i, ep := range eps {
		b, conservative := ep.inBound()
		if !conservative {
			b = vtime.Infinity
		}
		bounds[i] = b
		if b < f {
			f = b
		}
	}
	for i, ep := range eps {
		// Floor excluding the target's own restriction.
		fx := key
		for j, b := range bounds {
			if j != i && b < fx {
				fx = b
			}
		}
		ep.pushGrant(fx)
	}
	// Ask forwarding: a pending ask we cannot satisfy because our
	// floor is capped by grants we hold (not by our own work) is
	// relayed upstream, so demand propagates along chains. Driven
	// only by genuine demand and bounded by the original ask, idle
	// systems stay silent.
	needed := vtime.Time(0)
	for _, ep := range eps {
		if ep.policy != Conservative {
			continue
		}
		ep.mu.Lock()
		if ep.pendingAsk > 0 {
			if want := ep.pendingAsk.Add(-ep.link.Lookahead()); want > needed {
				needed = want
			}
		}
		ep.mu.Unlock()
	}
	if needed == 0 || f >= needed || f >= key {
		// Nothing demanded, already satisfiable, or our own pending
		// work is the cap — forwarding cannot help.
		return
	}
	for _, ep := range eps {
		if ep.policy != Conservative {
			continue
		}
		ep.mu.Lock()
		below := !ep.peerDone && ep.boundLocked() < needed
		ep.mu.Unlock()
		if below {
			ep.Request(needed)
		}
	}
}

// Close announces completion to every peer (a grant of Infinity) and
// closes the transports. Call after the subsystem's Run returns.
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	eps := append([]*Endpoint(nil), h.eps...)
	h.mu.Unlock()
	var first error
	for _, ep := range eps {
		if err := ep.sendClose(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Endpoint is one side of a channel between two subsystems. It plays
// the role of the paper's channel component: a proxy for the
// subsystem on the opposite side, owning the hidden ports added to
// split nets, coordinating time across the channel, and carrying the
// snapshot marks. Like Pia's channel components it has no thread of
// its own — egress runs on the subsystem's scheduler, ingress on the
// transport's pump.
type Endpoint struct {
	hub    *Hub
	sub    *core.Subsystem
	local  string
	peer   string
	policy Policy
	link   LinkModel
	tr     Transport

	mu             sync.Mutex
	grants         []grantRec // frontier of the peer's promises (see bound)
	lastAsk        vtime.Time // ask we sent most recently
	lastAskData    int64      // stats.DataIn when it was sent
	lastAskSeqOut  uint64     // seqOut when it was sent
	lastGrantData  int64      // stats.DataIn at our last grant push
	lastGrantAck   uint64     // seqInNext at our last grant push
	lastDepartData int64      // stats.DataIn at our last departure grant
	pendingAsk     vtime.Time // the peer's latest ask, 0 none
	lastSent       vtime.Time // highest grant we pushed
	busyUntil      vtime.Time // link serialization horizon
	seqOut         uint64
	seqInNext      uint64
	unacked        []egressRec // our egress not yet covered by every frontier grant
	recording      bool
	recorded       []Message
	closed         bool
	paused         bool // rewind in progress: egress discarded
	peerDone       bool
	protoErr       error
	stats          Stats
	markFn         func(tag string)
	restoreFn      func(tag string)
	stragglerFn    func(t vtime.Time) bool
	tl             *timeline.Recorder // nil unless EnableTimeline wired it

	// binds tracks the nets this endpoint bridges: local net name ->
	// remote fragment name. Migration re-homes nets by unbinding here
	// and rebinding on another endpoint under the new placement epoch.
	binds map[string]string

	// Egress coalescing. Messages are appended to pendingOut under
	// ep.mu in nextOut order, so the queue is the seq order; flush
	// extracts the whole queue and hands it to the transport under
	// sendMu, which serializes flushes and keeps batches in order.
	coalesce     CoalesceConfig
	coalesceOn   bool
	btr          BatchTransport
	pendingOut   []Message
	spareOut     []Message // previous batch's backing array, reused
	pendingBytes int
	holdBase     vtime.Time // Time of the first queued drive

	sendMu sync.Mutex // serializes flushes; never taken under ep.mu

	// Flush accounting for round-based drivers (pia.Simulation.Run):
	// queuedN counts messages enqueued by the transport pump,
	// handledN counts messages fully processed by the scheduler.
	queuedN  atomic.Int64
	handledN atomic.Int64
}

// SentCount returns how many messages this endpoint has emitted.
func (ep *Endpoint) SentCount() int64 {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return int64(ep.seqOut)
}

// QueuedCount returns how many peer messages have reached the local
// injection queue.
func (ep *Endpoint) QueuedCount() int64 { return ep.queuedN.Load() }

// HandledCount returns how many peer messages the scheduler has fully
// processed.
func (ep *Endpoint) HandledCount() int64 { return ep.handledN.Load() }

// Name implements core.Gate.
func (ep *Endpoint) Name() string { return graph.ChannelComponentName(ep.local, ep.peer) }

// Peer returns the peer subsystem's name.
func (ep *Endpoint) Peer() string { return ep.peer }

// Policy returns the channel policy.
func (ep *Endpoint) Policy() Policy { return ep.policy }

// Link returns the channel's link model.
func (ep *Endpoint) Link() LinkModel { return ep.link }

// Stats returns a copy of the counters.
func (ep *Endpoint) Stats() Stats {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.stats
}

// Err returns any protocol error observed on ingress.
func (ep *Endpoint) Err() error {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.protoErr
}

// egressRec tracks one outgoing data message the peer may still react
// to under some frontier grant.
type egressRec struct {
	seq     uint64
	arrival vtime.Time
}

// grantRec is one promise from the peer: "given everything of yours I
// had processed up to Ack, nothing will arrive from me below Val."
// Your messages beyond Ack may provoke earlier reactions, so the
// promise is capped by their echo times at evaluation.
type grantRec struct {
	val vtime.Time
	ack uint64
}

// Quiesced implements core.GateQuiescer: the endpoint owes the peer
// nothing when no ask is outstanding.
func (ep *Endpoint) Quiesced() bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.pendingAsk == 0
}

// Bound implements core.Gate: the earliest virtual time at which
// anything can still arrive from the peer. Each frontier grant was
// computed with our restriction removed, so it does not account for
// the peer's reactions to messages of ours it had not yet processed
// when granting (seq beyond its Ack); each grant is therefore capped
// by the earliest echo of that egress (arrival at the peer plus the
// return lookahead), and the bound is the best-capped grant.
func (ep *Endpoint) Bound() vtime.Time {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.boundLocked()
}

func (ep *Endpoint) boundLocked() vtime.Time {
	if ep.peerDone {
		return vtime.Infinity
	}
	best := vtime.Time(0)
	for _, g := range ep.grants {
		cand := g.val
		for _, rec := range ep.unacked {
			if rec.seq <= g.ack {
				continue // the grant already accounted for this one
			}
			if echo := rec.arrival.Add(ep.link.Lookahead()); echo < cand {
				cand = echo
			}
		}
		if cand > best {
			best = cand
		}
	}
	return best
}

// addGrant merges a new promise into the frontier, dropping dominated
// entries and egress records covered by every remaining grant.
// Caller holds ep.mu.
func (ep *Endpoint) addGrant(val vtime.Time, ack uint64) {
	kept := ep.grants[:0]
	dominated := false
	for _, g := range ep.grants {
		if g.val <= val && g.ack <= ack {
			continue // dominated by the new grant
		}
		if g.val >= val && g.ack >= ack {
			dominated = true
		}
		kept = append(kept, g)
	}
	ep.grants = kept
	if !dominated {
		ep.grants = append(ep.grants, grantRec{val: val, ack: ack})
	}
	minAck := ^uint64(0)
	for _, g := range ep.grants {
		if g.ack < minAck {
			minAck = g.ack
		}
	}
	keptE := ep.unacked[:0]
	for _, rec := range ep.unacked {
		if rec.seq > minAck {
			keptE = append(keptE, rec)
		}
	}
	ep.unacked = keptE
}

// Request implements core.Gate: ask the peer for a safe time of at
// least t — a pure demand (the paper's "request a safe time from the
// subsystem on the far end of the channel"). An ask is re-sent when
// t rises, after new peer data has arrived since the last one (the
// piggybacked Ack then refreshes the peer's view of what is still in
// flight), or after we have sent new egress (whose echoes cap every
// grant issued against the old ask, so only a reply to a fresher ask
// can raise our bound).
func (ep *Endpoint) Request(t vtime.Time) {
	ep.mu.Lock()
	stale := ep.stats.DataIn > ep.lastAskData || ep.seqOut > ep.lastAskSeqOut
	if ep.peerDone || ep.closed || ep.paused || (t <= ep.lastAsk && !stale) {
		ep.mu.Unlock()
		return
	}
	if t < ep.lastAsk {
		t = ep.lastAsk // keep the strongest outstanding demand
	}
	ep.lastAsk = t
	ep.lastAskData = ep.stats.DataIn
	ep.stats.AsksOut++
	flush := ep.queueLocked(ep.nextOut(Message{Kind: KindSafeTimeReq, Ask: t}), true)
	ep.lastAskSeqOut = ep.seqOut
	tl := ep.tl
	ep.mu.Unlock()
	tl.Ask(ep.local, ep.peer, t)
	if flush {
		ep.Flush()
	}
}

// BindNet attaches the endpoint to a split net: a hidden port is
// added to the local fragment, and every value driven on it is
// forwarded to the peer's fragment named remoteNet.
func (ep *Endpoint) BindNet(localNet *core.Net, remoteNet string) error {
	name := graph.HiddenPortName(localNet.Name, ep.peer)
	_, err := ep.sub.AttachHidden(localNet, name, ep.Name(), func(m core.Msg) {
		ep.egress(remoteNet, m)
	})
	if err != nil {
		return err
	}
	ep.mu.Lock()
	if ep.binds == nil {
		ep.binds = make(map[string]string)
	}
	ep.binds[localNet.Name] = remoteNet
	ep.mu.Unlock()
	return nil
}

// UnbindNet removes the hidden port BindNet added for the given local
// net, so drives on it stop crossing this channel. Only legal between
// runs (the mesh splice step). The endpoint itself stays up — an empty
// channel still exchanges safe-time traffic.
func (ep *Endpoint) UnbindNet(localNet *core.Net) error {
	ep.mu.Lock()
	_, bound := ep.binds[localNet.Name]
	ep.mu.Unlock()
	if !bound {
		return fmt.Errorf("channel: %s does not bind net %s", ep.Name(), localNet.Name)
	}
	name := graph.HiddenPortName(localNet.Name, ep.peer)
	if err := ep.sub.DetachHidden(localNet, name); err != nil {
		return err
	}
	ep.mu.Lock()
	delete(ep.binds, localNet.Name)
	ep.mu.Unlock()
	return nil
}

// Binds returns the local->remote net bindings this endpoint carries.
func (ep *Endpoint) Binds() map[string]string {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	out := make(map[string]string, len(ep.binds))
	for k, v := range ep.binds {
		out[k] = v
	}
	return out
}

// egress forwards a local net drive across the channel.
func (ep *Endpoint) egress(remoteNet string, m core.Msg) {
	size := payloadSize(m.Value)
	ep.mu.Lock()
	if ep.closed || ep.paused {
		// Paused egress belongs to a timeline a rewind is abandoning:
		// the restored run regenerates these drives from scratch.
		ep.mu.Unlock()
		return
	}
	arrive, busy := ep.link.Arrival(m.Sent, size, ep.busyUntil)
	ep.busyUntil = busy
	ep.stats.DataOut++
	ep.stats.BytesOut += int64(size)
	out := ep.nextOut(Message{
		Kind:   KindData,
		Net:    remoteNet,
		Source: m.Source,
		Time:   arrive,
		Value:  m.Value,
	})
	ep.unacked = append(ep.unacked, egressRec{seq: out.Seq, arrival: arrive})
	flush := ep.queueLocked(out, false)
	tl := ep.tl
	ep.mu.Unlock()
	// Recorded at the drive's send time; the peer records the matching
	// delivery at the arrival time, and the exporter pairs the two by
	// committed index into one flow.
	tl.Send(ep.local, ep.peer, remoteNet, m.Sent)
	if flush {
		ep.Flush()
	}
}

// nextOut stamps common fields; caller holds ep.mu.
func (ep *Endpoint) nextOut(m Message) Message {
	ep.seqOut++
	m.Seq = ep.seqOut
	m.From = ep.local
	m.Ack = ep.seqInNext
	return m
}

func (ep *Endpoint) send(m Message) {
	if err := ep.tr.Send(m); err != nil {
		ep.setErr(fmt.Errorf("channel %s: send: %w", ep.Name(), err))
	}
}

func (ep *Endpoint) setErr(err error) {
	ep.mu.Lock()
	if ep.protoErr == nil {
		ep.protoErr = err
	}
	ep.mu.Unlock()
}

// SetCoalescing enables or disables egress coalescing. It only takes
// effect when the endpoint's transport can carry batches (the node
// wire transport can; the in-process pipe cannot and keeps the
// immediate path). Safe to call at any time; a disable flushes
// whatever is queued.
func (ep *Endpoint) SetCoalescing(cfg CoalesceConfig) {
	ep.mu.Lock()
	btr, batching := ep.tr.(BatchTransport)
	if cfg.Enabled() && batching {
		ep.coalesce = cfg
		ep.coalesceOn = true
		ep.btr = btr
		ep.mu.Unlock()
		return
	}
	wasOn := ep.coalesceOn
	ep.mu.Unlock()
	if wasOn {
		// Drain what is queued as one last batch before reverting to
		// the immediate path.
		ep.Flush()
	}
	ep.mu.Lock()
	ep.coalesceOn = false
	ep.btr = nil
	ep.mu.Unlock()
	// Catch anything that raced into the queue between the drain and
	// the disable; a clean queue makes this a no-op.
	ep.Flush()
}

// queueLocked appends m to the egress queue and reports whether the
// caller must flush after releasing ep.mu. Caller holds ep.mu; m must
// already be stamped by nextOut so queue order is seq order.
func (ep *Endpoint) queueLocked(m Message, urgent bool) bool {
	ep.pendingOut = append(ep.pendingOut, m)
	if !ep.coalesceOn || urgent {
		return true
	}
	ep.pendingBytes += payloadSize(m.Value)
	if len(ep.pendingOut) == 1 {
		ep.holdBase = m.Time
	}
	if ep.coalesce.MaxMsgs > 0 && len(ep.pendingOut) >= ep.coalesce.MaxMsgs {
		return true
	}
	if ep.coalesce.MaxBytes > 0 && ep.pendingBytes >= ep.coalesce.MaxBytes {
		return true
	}
	if ep.coalesce.MaxHold > 0 && m.Time.Sub(ep.holdBase) >= ep.coalesce.MaxHold {
		return true
	}
	return false
}

// Flush drains the egress queue onto the transport. An empty queue is
// a no-op. Concurrent flushes are serialized by sendMu, and the queue
// is extracted under ep.mu after sendMu is held, so batches leave in
// enqueue (= seq) order even when several goroutines race to flush.
func (ep *Endpoint) Flush() {
	ep.sendMu.Lock()
	defer ep.sendMu.Unlock()
	ep.mu.Lock()
	batch := ep.pendingOut
	// Swap in the previous batch's array: steady state allocates
	// nothing. The array being handed to the transport below is not
	// reused until the next flush, which sendMu holds off.
	ep.pendingOut = ep.spareOut[:0]
	ep.spareOut = batch
	ep.pendingBytes = 0
	useBatch := ep.coalesceOn && ep.btr != nil
	btr := ep.btr
	if len(batch) > 0 {
		ep.stats.Flushes++
		ep.stats.FlushedMsgs += int64(len(batch))
	}
	ep.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	if useBatch {
		if err := btr.SendBatch(batch); err != nil {
			ep.setErr(fmt.Errorf("channel %s: send batch: %w", ep.Name(), err))
		}
	} else {
		for _, m := range batch {
			ep.send(m)
		}
	}
}

// PendingOut returns how many egress messages are queued, unflushed.
func (ep *Endpoint) PendingOut() int {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return len(ep.pendingOut)
}

// pushGrant computes this subsystem's grant toward the peer from the
// given floor and pushes it when it helps an outstanding ask. Runs on
// the scheduler goroutine.
//
// Grants are strictly solicited and never exceed the pending ask.
// This is what keeps every grant fresh: the ask it answers was sent
// (FIFO) after everything the asker had transmitted, so the floor
// used here already accounts for every input that could make this
// subsystem act earlier — an unsolicited grant, by contrast, can be
// overtaken by a peer message already in flight when it is computed,
// leaving the peer holding a promise the grantor can no longer keep.
// "Never again" is expressed only by an explicit Close.
func (ep *Endpoint) pushGrant(floor vtime.Time) {
	g := floor.Add(ep.link.Lookahead())
	ep.mu.Lock()
	if ep.closed || ep.paused || ep.policy != Conservative {
		ep.mu.Unlock()
		return
	}
	pending := ep.pendingAsk
	if pending == 0 {
		ep.mu.Unlock()
		return
	}
	if g > pending {
		g = pending
	}
	// Send when the grant satisfies the demand, improves the last
	// sent value by at least one lookahead (the lifting chain moves
	// in >= lookahead increments, so holding back smaller
	// improvements bounds chatter without hurting liveness), or
	// repeats a value with a fresh Ack after new peer data — the
	// refreshed Ack is what lifts the peer's echo cap on that data.
	// Values need not be monotone: each grant stands on the floor of
	// its own instant, and the receiver's frontier keeps whichever
	// (value, ack) combinations bound it best.
	refresh := ep.stats.DataIn > ep.lastGrantData
	improved := g >= pending || g.Sub(ep.lastSent) >= ep.link.Lookahead()
	duplicate := g == ep.lastSent && ep.seqInNext == ep.lastGrantAck
	if duplicate || (!improved && !refresh) {
		ep.mu.Unlock()
		return
	}
	ep.lastSent = g
	ep.lastGrantData = ep.stats.DataIn
	ep.lastGrantAck = ep.seqInNext
	if g >= pending {
		ep.pendingAsk = 0
	}
	ep.stats.GrantsOut++
	if DebugHook != nil {
		dbg("%s PUSH grant=%v floor=%v pending=%v myAck=%d", ep.Name(), g, floor, pending, ep.seqInNext)
	}
	flush := ep.queueLocked(ep.nextOut(Message{Kind: KindSafeTimeGrant, Grant: g}), true)
	tl := ep.tl
	ep.mu.Unlock()
	tl.Grant(ep.local, ep.peer, g)
	if flush {
		ep.Flush()
	}
}

// sendClose announces completion.
func (ep *Endpoint) sendClose() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	ep.queueLocked(ep.nextOut(Message{Kind: KindClose}), true)
	ep.mu.Unlock()
	ep.Flush() // everything queued, then the close, then the transport goes down
	return ep.tr.Close()
}

// SetMarkHandler registers the Chandy-Lamport mark callback.
func (ep *Endpoint) SetMarkHandler(fn func(tag string)) {
	ep.mu.Lock()
	ep.markFn = fn
	ep.mu.Unlock()
}

// SetRestoreHandler registers the coordinated-restore callback.
func (ep *Endpoint) SetRestoreHandler(fn func(tag string)) {
	ep.mu.Lock()
	ep.restoreFn = fn
	ep.mu.Unlock()
}

// SetStragglerHandler overrides the default straggler reaction
// (Subsystem.RequestRollback); the snapshot coordinator installs a
// distributed restore here. The handler returns whether the straggler
// message itself must be redelivered after the rollback: true for a
// local-only rollback (the sender will not resend), false for a
// coordinated restore (the sender rewinds past its send and will
// regenerate the message).
func (ep *Endpoint) SetStragglerHandler(fn func(t vtime.Time) bool) {
	ep.mu.Lock()
	ep.stragglerFn = fn
	ep.mu.Unlock()
}

// SendMark emits a snapshot mark toward the peer.
func (ep *Endpoint) SendMark(tag string) {
	ep.mu.Lock()
	if ep.closed || ep.paused {
		ep.mu.Unlock()
		return
	}
	ep.queueLocked(ep.nextOut(Message{Kind: KindMark, Tag: tag}), true)
	ep.mu.Unlock()
	ep.Flush()
}

// SendRestore orders the peer to restore the tagged snapshot.
func (ep *Endpoint) SendRestore(tag string) {
	ep.mu.Lock()
	if ep.closed || ep.paused {
		ep.mu.Unlock()
		return
	}
	ep.queueLocked(ep.nextOut(Message{Kind: KindRestore, Tag: tag}), true)
	ep.mu.Unlock()
	ep.Flush()
}

// SetRecording starts or stops capturing incoming data messages (the
// channel-state half of a Chandy-Lamport snapshot).
func (ep *Endpoint) SetRecording(on bool) {
	ep.mu.Lock()
	ep.recording = on
	if on {
		ep.recorded = nil
	}
	ep.mu.Unlock()
}

// TakeRecorded returns and clears the captured in-flight messages.
func (ep *Endpoint) TakeRecorded() []Message {
	ep.mu.Lock()
	out := ep.recorded
	ep.recorded = nil
	ep.recording = false
	ep.mu.Unlock()
	return out
}

// Replay re-injects previously captured in-flight data messages
// after a coordinated restore.
func (ep *Endpoint) Replay(msgs []Message) {
	for _, m := range msgs {
		if m.Kind != KindData {
			continue
		}
		_ = ep.sub.InjectDrive(m.Net, m.Source, m.Time, m.Value)
	}
}

// OnMessage is the ingress entry point, called by the transport pump
// in arrival order. All processing is deferred to the subsystem's
// scheduler goroutine through the injection queue, which preserves
// the channel's FIFO order relative to every other ingress action —
// the property both the safe-time protocol and the Chandy-Lamport
// marks depend on.
func (ep *Endpoint) OnMessage(m Message) {
	ep.queuedN.Add(1)
	ep.sub.InjectFunc(func() bool {
		retry := ep.process(m)
		if !retry {
			ep.handledN.Add(1)
		}
		return retry
	})
}

// msgBufPool recycles the batch buffers OnMessages hands from the
// transport pump to the scheduler goroutine.
var msgBufPool = sync.Pool{New: func() any { return make([]Message, 0, 64) }}

// OnMessages is the batched ingress entry point: one decoded frame's
// worth of messages, queued as a single injection. Processing order —
// and therefore the channel's FIFO guarantee — is identical to
// calling OnMessage per message; what changes is the cost: one
// injection-queue append and one scheduler wakeup per frame instead
// of one per message. Straggler retry semantics are preserved by
// resuming the in-batch cursor: a message that requests a rollback is
// retried (and the rest of the batch stays behind it) exactly as the
// per-message path would re-queue it at the front.
//
// OnMessages copies msgs before returning, so the caller may reuse
// its slice (the pump's decode buffer) immediately.
func (ep *Endpoint) OnMessages(msgs []Message) {
	switch len(msgs) {
	case 0:
		return
	case 1:
		ep.OnMessage(msgs[0])
		return
	}
	batch := append(msgBufPool.Get().([]Message)[:0], msgs...)
	ep.queuedN.Add(int64(len(batch)))
	i := 0
	ep.sub.InjectFunc(func() bool {
		for i < len(batch) {
			if ep.process(batch[i]) {
				return true // straggler: retry this message after the rollback
			}
			ep.handledN.Add(1)
			i++
		}
		for j := range batch {
			batch[j] = Message{} // drop payload references
		}
		msgBufPool.Put(batch[:0]) //nolint:staticcheck // slices are pointer-shaped
		return false
	})
}

// process handles one message on the scheduler goroutine. It returns
// true (retry after rollback) for optimistic stragglers.
func (ep *Endpoint) process(m Message) bool {
	if DebugHook != nil {
		dbg("%s PROC seq=%d ack=%d %v", ep.Name(), m.Seq, m.Ack, m)
	}
	ep.mu.Lock()
	if !ep.seqChecked(m) {
		ep.seqInNext = m.Seq
	}
	switch m.Kind {
	case KindData:
		if ep.recording {
			ep.recorded = append(ep.recorded, m)
		}
		if m.Time < ep.sub.Now() {
			if ep.policy == Optimistic {
				ep.stats.Stragglers++
				fn := ep.stragglerFn
				// A straggler is not "received": undo the bookkeeping
				// this attempt did.
				if ep.recording {
					ep.recorded = ep.recorded[:len(ep.recorded)-1]
				}
				tl := ep.tl
				ep.mu.Unlock()
				tl.Straggler(ep.peer, ep.local, m.Net, m.Time, ep.sub.Now())
				redeliver := true
				if fn != nil {
					redeliver = fn(m.Time)
				} else {
					ep.sub.RequestRollback(m.Time)
				}
				if redeliver {
					ep.mu.Lock()
					ep.seqInNext--
					ep.mu.Unlock()
					return true // re-deliver after the restore
				}
				return false
			}
			if ep.protoErr == nil {
				ep.protoErr = fmt.Errorf("channel %s: conservative causality violation: data @%v behind subsystem time %v", ep.Name(), m.Time, ep.sub.Now())
			}
		}
		ep.stats.DataIn++
		ep.stats.BytesIn += int64(payloadSize(m.Value))
		tl := ep.tl
		ep.mu.Unlock()
		tl.Deliver(ep.peer, ep.local, m.Net, m.Time)
		_ = ep.sub.DriveNow(m.Net, m.Source, m.Time, m.Value)
	case KindSafeTimeReq:
		ep.stats.AsksIn++
		// Record the demand; the answer is always computed fresh at
		// the next publish, with the floor and Ack of the same
		// instant. (Replying here with a previously sent value would
		// pair an old promise with a new Ack — the new Ack may cover
		// data whose reactions the old value never accounted for.)
		if m.Ask > ep.pendingAsk {
			ep.pendingAsk = m.Ask
		}
		ep.mu.Unlock()
	case KindSafeTimeGrant:
		ep.stats.GrantsIn++
		// A grant is a promise relative to its Ack: merge it into the
		// frontier; Bound() evaluates each frontier grant capped by
		// the echoes of egress that grant had not seen.
		ep.addGrant(m.Grant, m.Ack)
		ep.mu.Unlock()
	case KindMark:
		fn := ep.markFn
		ep.mu.Unlock()
		if fn != nil {
			fn(m.Tag)
		}
	case KindRestore:
		fn := ep.restoreFn
		ep.mu.Unlock()
		if fn != nil {
			fn(m.Tag)
		}
	case KindClose:
		wasDone := ep.peerDone
		ep.peerDone = true
		ep.mu.Unlock()
		if !wasDone {
			ep.sub.RemoveExternal()
		}
	default:
		ep.mu.Unlock()
	}
	return false
}

// LastSeqIn returns the highest channel sequence number processed
// from the peer — diagnostic context for peer-loss errors.
func (ep *Endpoint) LastSeqIn() uint64 {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.seqInNext
}

// ResetProtocol zeroes all per-connection protocol state for a
// checkpoint rewind: both sides of the channel restart framing from
// sequence 1 with no outstanding grants, asks or unacked egress, as
// if the channel had just been built. Egress is paused — drives of
// the abandoned timeline are discarded — until ResumeProtocol.
//
// Call on the subsystem's scheduler goroutine (via InjectFunc), after
// every message of the dead connection epoch has drained from the
// injection queue; calling earlier would interleave old-timeline
// sequence numbers with the reset counters.
func (ep *Endpoint) ResetProtocol() {
	ep.mu.Lock()
	ep.paused = true
	ep.grants = nil
	ep.unacked = nil
	ep.pendingAsk = 0
	ep.lastAsk = 0
	ep.lastAskData = 0
	ep.lastAskSeqOut = 0
	ep.lastGrantData = 0
	ep.lastGrantAck = 0
	ep.lastDepartData = 0
	ep.lastSent = 0
	ep.busyUntil = 0
	ep.seqOut = 0
	ep.seqInNext = 0
	ep.pendingOut = ep.pendingOut[:0]
	ep.pendingBytes = 0
	ep.holdBase = 0
	// A transport error from the dying epoch is part of what the
	// rewind recovers from.
	ep.protoErr = nil
	ep.mu.Unlock()
}

// ResumeProtocol reopens egress after a rewind's restore completes.
func (ep *Endpoint) ResumeProtocol() {
	ep.mu.Lock()
	ep.paused = false
	ep.mu.Unlock()
}

// seqChecked verifies FIFO sequencing; caller holds ep.mu.
func (ep *Endpoint) seqChecked(m Message) bool {
	ep.seqInNext++
	if m.Seq == ep.seqInNext {
		return true
	}
	ep.stats.SeqErrors++
	if ep.protoErr == nil {
		ep.protoErr = fmt.Errorf("channel %s: FIFO violation: got seq %d, want %d", ep.Name(), m.Seq, ep.seqInNext)
	}
	return false
}
