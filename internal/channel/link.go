package channel

import (
	"fmt"

	"repro/internal/vtime"
)

// LinkModel charges virtual time for traffic crossing a channel. It
// is what makes the paper's word-passage vs packet-passage experiment
// meaningful: every message pays the fixed per-message overhead and
// the latency, so moving the same bytes as many four-byte words costs
// far more virtual (and wall-clock) time than as 1 KB packets.
type LinkModel struct {
	// Latency is the one-way propagation delay.
	Latency vtime.Duration
	// BytesPerSecond is the serialization bandwidth; 0 means
	// infinite (no per-byte cost).
	BytesPerSecond int64
	// PerMessage is a fixed protocol overhead charged per message
	// (packetization, framing, RPC dispatch).
	PerMessage vtime.Duration
}

// Validate reports configuration errors for a conservative channel,
// which requires strictly positive lookahead.
func (lm LinkModel) Validate(conservative bool) error {
	if lm.Latency < 0 || lm.PerMessage < 0 || lm.BytesPerSecond < 0 {
		return fmt.Errorf("channel: negative link parameter %+v", lm)
	}
	if conservative && lm.Lookahead() <= 0 {
		return fmt.Errorf("channel: conservative channel requires positive lookahead (latency or per-message overhead)")
	}
	return nil
}

// TransferTime is the serialization time for size payload bytes.
func (lm LinkModel) TransferTime(size int) vtime.Duration {
	d := lm.PerMessage
	if lm.BytesPerSecond > 0 {
		d += vtime.Duration(int64(size) * int64(vtime.Second) / lm.BytesPerSecond)
	}
	return d
}

// Lookahead is the minimum virtual time between a send decision and
// the earliest possible arrival at the peer — the quantity the
// safe-time protocol adds to every grant.
func (lm LinkModel) Lookahead() vtime.Duration {
	return lm.Latency + lm.PerMessage
}

// Arrival computes when a message sent at virtual time sent with the
// given payload size arrives at the peer, given that the link is busy
// until busyUntil (channel serialization: one message at a time). It
// returns the arrival time and the new busy horizon.
func (lm LinkModel) Arrival(sent vtime.Time, size int, busyUntil vtime.Time) (arrive, newBusy vtime.Time) {
	start := vtime.Max(sent, busyUntil)
	newBusy = start.Add(lm.TransferTime(size))
	arrive = newBusy.Add(lm.Latency)
	return arrive, newBusy
}

// Common link characterizations used by the examples and benchmarks.
var (
	// LoopbackLink approximates same-host IPC between subsystems.
	LoopbackLink = LinkModel{
		Latency:        50 * vtime.Microsecond,
		BytesPerSecond: 100 << 20, // 100 MB/s
		PerMessage:     20 * vtime.Microsecond,
	}

	// LANLink approximates two workstations on one subnet, the
	// paper's actual testbed.
	LANLink = LinkModel{
		Latency:        300 * vtime.Microsecond,
		BytesPerSecond: 1 << 20, // ~10 Mbit Ethernet
		PerMessage:     200 * vtime.Microsecond,
	}

	// InternetLink approximates the geographically distributed case
	// the framework targets.
	InternetLink = LinkModel{
		Latency:        40 * vtime.Millisecond,
		BytesPerSecond: 128 << 10, // 1 Mbit
		PerMessage:     1 * vtime.Millisecond,
	}
)
