package channel

import "fmt"

// DebugHook, when set, receives every message an endpoint processes
// and every grant push (test instrumentation).
var DebugHook func(string)

func dbg(format string, args ...any) {
	if DebugHook != nil {
		DebugHook(fmt.Sprintf(format, args...))
	}
}

// DebugState dumps an endpoint's protocol state for diagnostics.
func (ep *Endpoint) DebugState() string {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return fmt.Sprintf("%s grants=%v bound=%v lastAsk=%v lastAskData=%d pendingAsk=%v lastSent=%v unacked=%d seqOut=%d seqIn=%d stats=%+v",
		ep.Name(), ep.grants, ep.boundLocked(), ep.lastAsk, ep.lastAskData, ep.pendingAsk, ep.lastSent, len(ep.unacked), ep.seqOut, ep.seqInNext, ep.stats)
}
