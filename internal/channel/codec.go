package channel

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/signal"
	"repro/internal/vtime"
)

// Binary batch format.
//
// A batch frame payload (wire.FrameBatch) is
//
//	uvarint count
//	count x entry
//
// and each entry is
//
//	u8      encoding (encBinary | encGob)
//	uvarint length
//	length  bytes
//
// An encBinary entry is the hand-rolled codec below — it covers the
// hot message kinds (data drives carrying signal values, safe-time
// asks and grants) plus marks, restores and closes. Any message the
// fast path cannot express — in practice a data message whose Value
// is not a signal type — is carried as an encGob entry: the whole
// Message gob-encoded, self-describing, exactly as the pre-batch
// protocol framed every message. Entries of both encodings interleave
// freely inside one batch, so enabling the fast path never constrains
// what a channel may carry.
//
// The binary message layout is
//
//	u8      Kind
//	uvarint Seq
//	uvarint Ack
//	string  From            (uvarint length + bytes)
//	kind-specific fields:
//	  KindData:          string Net, string Source, uvarint Time, value
//	  KindSafeTimeReq:   uvarint Ask
//	  KindSafeTimeGrant: uvarint Grant
//	  KindMark/Restore:  string Tag
//	  KindClose:         (nothing)
//
// and values are tagged with one byte:
//
//	0 nil, 1 Level, 2 Word, 3 Byte, 4 Packet, 5 Frame, 6 BusCycle,
//	7 Control, 8 IRQ, 9 int (the common test/helper payload)
//
// Times are non-negative int64 ticks (Infinity = MaxInt64), encoded
// as uvarint.

const (
	encBinary byte = 0
	encGob    byte = 1
)

const (
	valNil      byte = 0
	valLevel    byte = 1
	valWord     byte = 2
	valByte     byte = 3
	valPacket   byte = 4
	valFrame    byte = 5
	valBusCycle byte = 6
	valControl  byte = 7
	valIRQ      byte = 8
	valInt      byte = 9
)

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendTime(dst []byte, t vtime.Time) []byte {
	return binary.AppendUvarint(dst, uint64(t))
}

// appendValue encodes a signal value on the fast path; ok=false means
// the value needs the gob fallback.
func appendValue(dst []byte, v any) ([]byte, bool) {
	switch x := v.(type) {
	case nil:
		return append(dst, valNil), true
	case signal.Level:
		b := byte(0)
		if x {
			b = 1
		}
		return append(dst, valLevel, b), true
	case signal.Word:
		dst = append(dst, valWord)
		return binary.BigEndian.AppendUint32(dst, uint32(x)), true
	case signal.Byte:
		return append(dst, valByte, byte(x)), true
	case signal.Packet:
		dst = append(dst, valPacket)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		return append(dst, x...), true
	case signal.Frame:
		dst = append(dst, valFrame)
		dst = appendString(dst, x.Src)
		dst = appendString(dst, x.Dst)
		dst = binary.BigEndian.AppendUint32(dst, x.Seq)
		dst = binary.AppendUvarint(dst, uint64(len(x.Payload)))
		dst = append(dst, x.Payload...)
		b := byte(0)
		if x.Last {
			b = 1
		}
		return append(dst, b), true
	case signal.BusCycle:
		dst = append(dst, valBusCycle)
		dst = binary.BigEndian.AppendUint32(dst, x.Addr)
		dst = binary.BigEndian.AppendUint32(dst, uint32(x.Data))
		b := byte(0)
		if x.Write {
			b = 1
		}
		return append(dst, b), true
	case signal.Control:
		dst = append(dst, valControl)
		dst = appendString(dst, x.Op)
		return binary.AppendUvarint(dst, uint64(int64(x.Arg))+math.MaxInt64+1), true
	case signal.IRQ:
		dst = append(dst, valIRQ)
		dst = binary.AppendUvarint(dst, uint64(int64(x.Line))+math.MaxInt64+1)
		return appendString(dst, x.Cause), true
	case int:
		dst = append(dst, valInt)
		return binary.AppendUvarint(dst, uint64(int64(x))+math.MaxInt64+1), true
	default:
		return dst, false
	}
}

// appendMessage encodes m on the binary fast path; ok=false means the
// caller must fall back to gob (dst is returned unchanged then).
func appendMessage(dst []byte, m Message) ([]byte, bool) {
	mark := len(dst)
	dst = append(dst, byte(m.Kind))
	dst = appendUvarint(dst, m.Seq)
	dst = appendUvarint(dst, m.Ack)
	dst = appendString(dst, m.From)
	switch m.Kind {
	case KindData:
		dst = appendString(dst, m.Net)
		dst = appendString(dst, m.Source)
		dst = appendTime(dst, m.Time)
		out, ok := appendValue(dst, m.Value)
		if !ok {
			return dst[:mark], false
		}
		return out, true
	case KindSafeTimeReq:
		return appendTime(dst, m.Ask), true
	case KindSafeTimeGrant:
		return appendTime(dst, m.Grant), true
	case KindMark, KindRestore:
		return appendString(dst, m.Tag), true
	case KindClose:
		return dst, true
	default:
		return dst[:mark], false
	}
}

// forceGob, when set, makes AppendBatch skip the binary fast path and
// carry every entry as self-describing gob — the pre-zero-copy wire
// codec. It exists so the -exp wire ablation (and anyone debugging a
// framing suspicion) can force the compatibility fallback; decoders
// accept both encodings unconditionally, so the knob only ever needs
// to be set on the sending side.
var forceGob atomic.Bool

// SetForceGob forces (or releases) the gob fallback encoding for
// every batch entry this process sends. Safe from any goroutine.
func SetForceGob(on bool) { forceGob.Store(on) }

// ForceGob reports whether the gob fallback encoding is forced.
func ForceGob() bool { return forceGob.Load() }

// entryLenWidth is the fixed width of the patchable per-entry length
// varint: 4 bytes encode up to 2^28-1, comfortably above the frame
// limit. Continuation-padded varints are what binary.Uvarint already
// accepts, so old decoders read the new layout unchanged.
const entryLenWidth = 4

const maxEntryLen = 1<<(7*entryLenWidth) - 1

// putFixedUvarint4 writes v as a 4-byte continuation-padded varint so
// an entry length can be patched in place after the body is encoded.
func putFixedUvarint4(dst []byte, v uint64) {
	for i := 0; i < entryLenWidth-1; i++ {
		dst[i] = byte(v&0x7f) | 0x80
		v >>= 7
	}
	dst[entryLenWidth-1] = byte(v & 0x7f)
}

// sliceWriter lets the gob fallback encode straight into the batch
// payload under construction, with no intermediate buffer.
type sliceWriter struct{ buf []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// appendEntry encodes one message as a batch entry appended to dst:
// encoding byte, fixed-width patchable length, body encoded in place.
// The zero-copy point: the body is written directly into dst — there
// is no per-message intermediate slice on either encoding.
func appendEntry(dst []byte, m Message) ([]byte, error) {
	mark := len(dst)
	if !forceGob.Load() {
		dst = append(dst, encBinary)
		lenPos := len(dst)
		dst = append(dst, 0, 0, 0, 0)
		if out, ok := appendMessage(dst, m); ok {
			putFixedUvarint4(out[lenPos:lenPos+entryLenWidth], uint64(len(out)-lenPos-entryLenWidth))
			return out, nil
		}
		dst = dst[:mark]
	}
	dst = append(dst, encGob)
	lenPos := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	w := sliceWriter{buf: dst}
	if err := gob.NewEncoder(&w).Encode(m); err != nil {
		return dst[:mark], fmt.Errorf("channel: batch gob fallback: %w", err)
	}
	dst = w.buf
	entry := len(dst) - lenPos - entryLenWidth
	if entry > maxEntryLen {
		return dst[:mark], fmt.Errorf("channel: batch entry of %d bytes exceeds limit", entry)
	}
	putFixedUvarint4(dst[lenPos:lenPos+entryLenWidth], uint64(entry))
	return dst, nil
}

// AppendBatch encodes messages into a batch frame payload appended to
// dst, stopping before the encoded payload would exceed limit bytes.
// It returns the payload and how many messages were consumed; at
// least one message is always encoded (a single oversized message is
// a protocol error surfaced by the transport's own frame limit, not
// silently truncated here). Messages the binary codec cannot express
// are embedded as gob entries; SetForceGob forces that fallback for
// every entry.
//
// Bodies are encoded directly into dst behind reserved fixed-width
// length varints that are patched afterwards, so the encode path
// performs no per-message allocation — callers that recycle dst (the
// wire egress builder does) encode whole batches with zero
// steady-state allocations.
func AppendBatch(dst []byte, msgs []Message, limit int) ([]byte, int, error) {
	if len(msgs) == 0 {
		return dst, 0, nil
	}
	base := len(dst)
	// Reserve a maximal uvarint for the count and patch it afterwards:
	// re-encoding with the real count would shift the entries.
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	entries := len(dst)
	n := 0
	for _, m := range msgs {
		mark := len(dst)
		var err error
		if dst, err = appendEntry(dst, m); err != nil {
			if n == 0 {
				return dst[:base], 0, err
			}
			break // ship what fits; the bad message surfaces next call
		}
		if n > 0 && len(dst)-base > limit {
			dst = dst[:mark] // does not fit: leave for the next frame
			break
		}
		n++
	}
	// Patch the count into the reserved bytes as a fixed-width
	// uvarint (10 bytes, high-bit continuation on the first nine).
	putFixedUvarint(dst[base:entries], uint64(n))
	return dst, n, nil
}

// putFixedUvarint writes v as a 10-byte varint (padded with
// continuation zeros) so the count can be patched in place.
func putFixedUvarint(dst []byte, v uint64) {
	for i := 0; i < 9; i++ {
		dst[i] = byte(v&0x7f) | 0x80
		v >>= 7
	}
	dst[9] = byte(v & 0x7f)
}

// BatchDecoder decodes batch frame payloads. It interns the small
// recurring strings (subsystem, net and component names) so
// steady-state decoding does not allocate a fresh string per message,
// and sub-allocates byte payload copies (packets, frame bodies) from
// a recycled slab so a burst of packets costs one allocation per slab
// rather than one per message.
type BatchDecoder struct {
	names map[string]string
	slab  []byte
}

const (
	// slabSize is the arena chunk the decoder sub-allocates payload
	// copies from; slabMax bounds what is worth placing there (larger
	// payloads get their own allocation so a giant packet cannot pin
	// a mostly-empty slab).
	slabSize = 64 << 10
	slabMax  = 4 << 10
)

// NewBatchDecoder creates a decoder (one per connection pump).
func NewBatchDecoder() *BatchDecoder {
	return &BatchDecoder{names: make(map[string]string)}
}

// copyBytes copies b out of the receive buffer (which is reused for
// the next frame) into the decoder's slab. The returned slice is
// capacity-clipped so appends by the consumer cannot clobber a
// neighbouring payload.
func (d *BatchDecoder) copyBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	if len(b) > slabMax {
		return append([]byte(nil), b...)
	}
	if cap(d.slab)-len(d.slab) < len(b) {
		d.slab = make([]byte, 0, slabSize)
	}
	off := len(d.slab)
	d.slab = append(d.slab, b...)
	return d.slab[off : off+len(b) : off+len(b)]
}

func (d *BatchDecoder) intern(b []byte) string {
	if s, ok := d.names[string(b)]; ok { // no alloc: map lookup by []byte
		return s
	}
	s := string(b)
	if len(d.names) < 1024 { // bound pathological name churn
		d.names[s] = s
	}
	return s
}

type reader struct {
	buf []byte
	pos int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("channel: truncated varint")
	}
	r.pos += n
	return v, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.buf) {
		return nil, fmt.Errorf("channel: truncated field (%d bytes wanted)", n)
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

func (r *reader) byte1() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (d *BatchDecoder) str(r *reader) (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return d.intern(b), nil
}

func (r *reader) zigzagless() (int64, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	return int64(v - math.MaxInt64 - 1), nil
}

func (d *BatchDecoder) value(r *reader) (any, error) {
	tag, err := r.byte1()
	if err != nil {
		return nil, err
	}
	switch tag {
	case valNil:
		return nil, nil
	case valLevel:
		b, err := r.byte1()
		return signal.Level(b != 0), err
	case valWord:
		w, err := r.u32()
		return signal.Word(w), err
	case valByte:
		b, err := r.byte1()
		return signal.Byte(b), err
	case valPacket:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := r.bytes(int(n))
		if err != nil {
			return nil, err
		}
		return signal.Packet(d.copyBytes(b)), nil
	case valFrame:
		var f signal.Frame
		if f.Src, err = d.str(r); err != nil {
			return nil, err
		}
		if f.Dst, err = d.str(r); err != nil {
			return nil, err
		}
		if f.Seq, err = r.u32(); err != nil {
			return nil, err
		}
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := r.bytes(int(n))
		if err != nil {
			return nil, err
		}
		f.Payload = d.copyBytes(b)
		last, err := r.byte1()
		if err != nil {
			return nil, err
		}
		f.Last = last != 0
		return f, nil
	case valBusCycle:
		var bc signal.BusCycle
		if bc.Addr, err = r.u32(); err != nil {
			return nil, err
		}
		w, err := r.u32()
		if err != nil {
			return nil, err
		}
		bc.Data = signal.Word(w)
		wr, err := r.byte1()
		if err != nil {
			return nil, err
		}
		bc.Write = wr != 0
		return bc, nil
	case valControl:
		var c signal.Control
		if c.Op, err = d.str(r); err != nil {
			return nil, err
		}
		if c.Arg, err = r.zigzagless(); err != nil {
			return nil, err
		}
		return c, nil
	case valIRQ:
		var q signal.IRQ
		line, err := r.zigzagless()
		if err != nil {
			return nil, err
		}
		q.Line = int(line)
		if q.Cause, err = d.str(r); err != nil {
			return nil, err
		}
		return q, nil
	case valInt:
		v, err := r.zigzagless()
		return int(v), err
	default:
		return nil, fmt.Errorf("channel: unknown value tag %d", tag)
	}
}

func (d *BatchDecoder) message(body []byte) (Message, error) {
	r := &reader{buf: body}
	var m Message
	k, err := r.byte1()
	if err != nil {
		return m, err
	}
	m.Kind = Kind(k)
	seq, err := r.uvarint()
	if err != nil {
		return m, err
	}
	m.Seq = seq
	ack, err := r.uvarint()
	if err != nil {
		return m, err
	}
	m.Ack = ack
	if m.From, err = d.str(r); err != nil {
		return m, err
	}
	switch m.Kind {
	case KindData:
		if m.Net, err = d.str(r); err != nil {
			return m, err
		}
		if m.Source, err = d.str(r); err != nil {
			return m, err
		}
		t, err := r.uvarint()
		if err != nil {
			return m, err
		}
		m.Time = vtime.Time(t)
		if m.Value, err = d.value(r); err != nil {
			return m, err
		}
	case KindSafeTimeReq:
		t, err := r.uvarint()
		if err != nil {
			return m, err
		}
		m.Ask = vtime.Time(t)
	case KindSafeTimeGrant:
		t, err := r.uvarint()
		if err != nil {
			return m, err
		}
		m.Grant = vtime.Time(t)
	case KindMark, KindRestore:
		if m.Tag, err = d.str(r); err != nil {
			return m, err
		}
	case KindClose:
	default:
		return m, fmt.Errorf("channel: unknown message kind %d in batch", k)
	}
	return m, nil
}

// entry decodes the next batch entry from r. The gob fallback lives
// in its own function so its escaping Message does not force a heap
// allocation onto the binary fast path.
func (d *BatchDecoder) entry(r *reader) (Message, error) {
	enc, err := r.byte1()
	if err != nil {
		return Message{}, err
	}
	n, err := r.uvarint()
	if err != nil {
		return Message{}, err
	}
	body, err := r.bytes(int(n))
	if err != nil {
		return Message{}, err
	}
	switch enc {
	case encBinary:
		return d.message(body)
	case encGob:
		return decodeGobEntry(body)
	default:
		return Message{}, fmt.Errorf("channel: unknown batch encoding %d", enc)
	}
}

func decodeGobEntry(body []byte) (Message, error) {
	var m Message
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&m); err != nil {
		return m, fmt.Errorf("channel: batch gob entry: %w", err)
	}
	return m, nil
}

// DecodeBatch decodes a batch frame payload, invoking fn for every
// message in order. It reports whether a KindClose was seen (the
// connection pump's signal to stop reading).
func (d *BatchDecoder) DecodeBatch(payload []byte, fn func(Message)) (closed bool, err error) {
	r := &reader{buf: payload}
	count, err := r.uvarint()
	if err != nil {
		return false, err
	}
	for i := uint64(0); i < count; i++ {
		m, err := d.entry(r)
		if err != nil {
			return closed, err
		}
		if m.Kind == KindClose {
			closed = true
		}
		fn(m)
	}
	return closed, nil
}

// DecodeBatchInto decodes a batch frame payload appending every
// message to buf[:0] and returning it. Message fields are slices of
// decoder-owned memory (interned names, slab payload copies) — never
// of the frame payload itself — so the caller may reuse the receive
// buffer immediately while the decoded batch travels on. Passing the
// returned slice back in keeps steady-state decoding allocation-free
// for protocol traffic.
func (d *BatchDecoder) DecodeBatchInto(payload []byte, buf []Message) (msgs []Message, closed bool, err error) {
	buf = buf[:0]
	r := &reader{buf: payload}
	count, err := r.uvarint()
	if err != nil {
		return buf, false, err
	}
	for i := uint64(0); i < count; i++ {
		m, err := d.entry(r)
		if err != nil {
			return buf, closed, err
		}
		if m.Kind == KindClose {
			closed = true
		}
		buf = append(buf, m)
	}
	return buf, closed, nil
}
