package channel

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/vtime"
)

// TestBidirectionalStress sweeps the request/response scenario across
// lookaheads, compute times and round counts: the configuration space
// where safe-time protocol bugs historically hid. Every combination
// must complete all rounds with physically plausible round trips.
func TestBidirectionalStress(t *testing.T) {
	type cfg struct {
		latency vtime.Duration
		perMsg  vtime.Duration
		compute vtime.Duration
		rounds  int
	}
	var cfgs []cfg
	for _, lat := range []vtime.Duration{1, 7, 500} {
		for _, cmp := range []vtime.Duration{0, 3, 1000} {
			for _, rounds := range []int{1, 5, 17} {
				cfgs = append(cfgs, cfg{latency: lat, perMsg: 1, compute: cmp, rounds: rounds})
			}
		}
	}
	for i, c := range cfgs {
		c := c
		t.Run(fmt.Sprintf("case%d_lat%d_cmp%d_r%d", i, c.latency, c.compute, c.rounds), func(t *testing.T) {
			s1 := core.NewSubsystem("cli")
			s2 := core.NewSubsystem("srv")
			completed := 0
			ping := core.BehaviorFunc(func(p *core.Proc) error {
				for r := 0; r < c.rounds; r++ {
					start := p.Time()
					p.Send("out", r)
					m, ok := p.Recv("in")
					if !ok {
						return nil
					}
					if m.Value.(int) != r {
						return fmt.Errorf("echo %d = %v", r, m.Value)
					}
					if rtt := p.Time().Sub(start); rtt < 2*(c.latency+1)+c.compute {
						return fmt.Errorf("round %d RTT %v below physics", r, rtt)
					}
					completed++
				}
				return nil
			})
			pc, _ := s1.NewComponent("ping", &trivial{ping})
			pc.AddPort("out")
			pc.AddPort("in")
			echo := core.BehaviorFunc(func(p *core.Proc) error {
				for {
					m, ok := p.Recv("in")
					if !ok {
						return nil
					}
					p.Advance(c.compute)
					p.Send("out", m.Value)
				}
			})
			ec, _ := s2.NewComponent("echo", &trivial{echo})
			ec.AddPort("in")
			ec.AddPort("out")
			req1, _ := s1.NewNet("req", 0)
			s1.Connect(req1, pc.Port("out"))
			rsp1, _ := s1.NewNet("rsp", 0)
			s1.Connect(rsp1, pc.Port("in"))
			req2, _ := s2.NewNet("req", 0)
			s2.Connect(req2, ec.Port("in"))
			rsp2, _ := s2.NewNet("rsp", 0)
			s2.Connect(rsp2, ec.Port("out"))
			h1, h2 := NewHub(s1), NewHub(s2)
			link := LinkModel{Latency: c.latency, PerMessage: 1}
			ep1, ep2, err := Connect(h1, h2, Conservative, link)
			if err != nil {
				t.Fatal(err)
			}
			ep1.BindNet(req1, "req")
			ep2.BindNet(rsp2, "rsp")

			horizon := vtime.Time(vtime.Duration(c.rounds+2) * (4*(c.latency+1) + c.compute + 100))
			var wg sync.WaitGroup
			errs := make([]error, 2)
			wg.Add(2)
			go func() { defer wg.Done(); errs[0] = s1.Run(horizon) }()
			go func() { defer wg.Done(); errs[1] = s2.Run(horizon) }()
			wg.Wait()
			if errs[0] != nil || errs[1] != nil {
				t.Fatalf("runs: %v / %v", errs[0], errs[1])
			}
			if completed != c.rounds {
				t.Fatalf("completed %d/%d rounds", completed, c.rounds)
			}
			for _, ep := range append(h1.Endpoints(), h2.Endpoints()...) {
				if err := ep.Err(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// trivial wraps a stateless behaviour with empty state saving.
type trivial struct{ B core.Behavior }

func (g *trivial) Run(p *core.Proc) error     { return g.B.Run(p) }
func (g *trivial) SaveState() ([]byte, error) { return []byte{}, nil }
func (g *trivial) RestoreState([]byte) error  { return nil }
