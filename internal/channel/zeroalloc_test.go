package channel

import (
	"testing"

	"repro/internal/signal"
	"repro/internal/vtime"
)

// protocolMix is the steady-state remote hot path: data drives
// carrying small words, safe-time asks and grants. Word values stay
// below 256 so decoding boxes them from the runtime's static cells;
// larger words cost one interface-box allocation per message on
// decode (runtime.convT32), which is the one residual allocation the
// codec cannot remove — see TestDecodeLargeWordBoxes.
func protocolMix() []Message {
	return []Message{
		{Kind: KindData, From: "ss1", Seq: 1, Ack: 3, Net: "dmaLink", Source: "cpu", Time: 100, Value: signal.Word(17)},
		{Kind: KindData, From: "ss1", Seq: 2, Ack: 3, Net: "dmaLink", Source: "cpu", Time: 110, Value: signal.Level(true)},
		{Kind: KindData, From: "ss1", Seq: 3, Ack: 4, Net: "dmaLink", Source: "cpu", Time: 120, Value: signal.Byte(200)},
		{Kind: KindSafeTimeReq, From: "ss1", Seq: 4, Ack: 4, Ask: 500},
		{Kind: KindSafeTimeGrant, From: "ss1", Seq: 5, Ack: 5, Grant: vtime.Infinity},
	}
}

// TestCodecZeroAlloc is the CI guard for the zero-copy wire path:
// with recycled buffers, encoding a protocol batch and decoding it
// back perform exactly zero allocations per operation.
func TestCodecZeroAlloc(t *testing.T) {
	msgs := protocolMix()

	var dst []byte
	if avg := testing.AllocsPerRun(200, func() {
		var err error
		dst, _, err = AppendBatch(dst[:0], msgs, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("AppendBatch allocates %.2f/op with a recycled buffer, want 0", avg)
	}

	payload, _, err := AppendBatch(nil, msgs, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewBatchDecoder()
	var buf []Message
	if avg := testing.AllocsPerRun(200, func() {
		var err error
		buf, _, err = dec.DecodeBatchInto(payload, buf)
		if err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("DecodeBatchInto allocates %.2f/op on protocol traffic, want 0", avg)
	}
}

// TestDecodePacketAmortizedAlloc pins the slab arena: decoding a
// packet costs exactly its interface box (the any-typed Value field
// heap-allocates a slice header — runtime.convTslice), while the
// payload bytes themselves come from the recycled slab. Without the
// slab each packet would cost two allocations; a regression past one
// box per packet (plus the rare slab refill) is caught here.
func TestDecodePacketAmortizedAlloc(t *testing.T) {
	msgs := []Message{
		{Kind: KindData, From: "ss1", Seq: 1, Net: "dma", Source: "asic", Time: 50, Value: make(signal.Packet, 64)},
		{Kind: KindData, From: "ss1", Seq: 2, Net: "dma", Source: "asic", Time: 60, Value: make(signal.Packet, 64)},
	}
	payload, _, err := AppendBatch(nil, msgs, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewBatchDecoder()
	var buf []Message
	if avg := testing.AllocsPerRun(500, func() {
		var err error
		buf, _, err = dec.DecodeBatchInto(payload, buf)
		if err != nil {
			t.Fatal(err)
		}
	}); avg > 2.05 {
		t.Fatalf("packet decode allocates %.3f/batch of 2 packets, want <= 2 boxes + amortized slab", avg)
	}
}

// TestDecodeLargeWordBoxes documents the residual allocation the
// zero-copy decode cannot remove: a signal.Word >= 256 boxes into the
// Message's any-typed Value field (one runtime.convT32 per message).
// The guard is an upper bound so a regression past one box per
// message is still caught.
func TestDecodeLargeWordBoxes(t *testing.T) {
	msgs := []Message{
		{Kind: KindData, From: "ss1", Seq: 1, Net: "dma", Source: "cpu", Time: 10, Value: signal.Word(0xdeadbeef)},
	}
	payload, _, err := AppendBatch(nil, msgs, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewBatchDecoder()
	var buf []Message
	if avg := testing.AllocsPerRun(200, func() {
		buf, _, _ = dec.DecodeBatchInto(payload, buf)
	}); avg > 1 {
		t.Fatalf("large-word decode allocates %.2f/op, want <= 1 (the interface box)", avg)
	}
}

// BenchmarkAppendBatch measures the steady-state encode of one
// protocol batch into a recycled buffer.
func BenchmarkAppendBatch(b *testing.B) {
	msgs := protocolMix()
	var dst []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		dst, _, err = AppendBatch(dst[:0], msgs, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeBatchInto measures the steady-state decode of one
// protocol batch into a recycled message buffer.
func BenchmarkDecodeBatchInto(b *testing.B) {
	payload, _, err := AppendBatch(nil, protocolMix(), 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	dec := NewBatchDecoder()
	var buf []Message
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, _, err = dec.DecodeBatchInto(payload, buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendBatchGobFallback is the ablation twin: the same
// batch forced onto the gob fallback, for comparison against the
// zero-copy binary path.
func BenchmarkAppendBatchGobFallback(b *testing.B) {
	SetForceGob(true)
	defer SetForceGob(false)
	msgs := protocolMix()
	var dst []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		dst, _, err = AppendBatch(dst[:0], msgs, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
	}
}
