package channel

import "repro/internal/metrics"

// EnableMetrics wires the hub's endpoints into reg, pull-style: a
// collector iterates the live endpoint list at snapshot time and
// reads each endpoint's race-safe Stats() copy plus its egress queue
// depth. No endpoint hot path changes — and endpoints created after
// this call (a vendor node accepting a new designer connection) are
// picked up automatically because the list is walked per snapshot.
// Idempotent per hub.
func (h *Hub) EnableMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	h.mu.Lock()
	if h.metricsOn {
		h.mu.Unlock()
		return
	}
	h.metricsOn = true
	h.mu.Unlock()
	sub := h.sub.Name()
	reg.AddCollector(func(emit func(metrics.Sample)) {
		for _, ep := range h.Endpoints() {
			st := ep.Stats()
			peer := ep.Peer()
			counter := func(metric string, v int64) {
				emit(metrics.Sample{
					Name:  metrics.Label(metric, "sub", sub, "peer", peer),
					Kind:  metrics.KindCounter,
					Value: v,
				})
			}
			counter("pia_chan_data_out", st.DataOut)
			counter("pia_chan_data_in", st.DataIn)
			counter("pia_chan_bytes_out", st.BytesOut)
			counter("pia_chan_bytes_in", st.BytesIn)
			counter("pia_chan_asks_out", st.AsksOut)
			counter("pia_chan_asks_in", st.AsksIn)
			counter("pia_chan_grants_out", st.GrantsOut)
			counter("pia_chan_grants_in", st.GrantsIn)
			counter("pia_chan_stragglers", st.Stragglers)
			counter("pia_chan_seq_errors", st.SeqErrors)
			counter("pia_chan_flushes", st.Flushes)
			counter("pia_chan_flushed_msgs", st.FlushedMsgs)
			emit(metrics.Sample{
				Name:  metrics.Label("pia_chan_egress_queue", "sub", sub, "peer", peer),
				Kind:  metrics.KindGauge,
				Value: int64(ep.PendingOut()),
			})
		}
	})
}
