package timeline

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/vtime"
)

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Drive("s", "c", "n", 1, 7)
	r.Send("a", "b", "n", 1)
	r.Deliver("a", "b", "n", 1)
	r.Checkpoint("s", "", 1)
	r.Restore("s", "", 0)
	r.Runlevel("s", "c", "word", 1)
	r.Stall("s", 1, 2)
	r.Resume("s", 2)
	r.Ask("a", "b", 1)
	r.Grant("a", "b", 1)
	r.Straggler("a", "b", "n", 1, 2)
	r.Fault("l", "drop", 3)
	r.SessionEvent("sess", "resume", "")
	r.Migrate("s", "c", "a", "b", "quiesce", 1)
	r.SetNode("x")
	if r.Len() != 0 || r.Events() != nil || r.NodeName() != "" {
		t.Fatal("nil recorder must be inert")
	}
	if (r.Stats() != Stats{}) {
		t.Fatal("nil recorder stats must be zero")
	}
}

func TestRingRetention(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Drive("s", "c", "n", vtime.Time(i), i)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if e.VT != vtime.Time(6+i) {
			t.Fatalf("event %d at vt %d, want %d (oldest must be evicted)", i, e.VT, 6+i)
		}
	}
	st := r.Stats()
	if st.Recorded != 10 || st.Evicted != 6 || st.Buffered != 4 {
		t.Fatalf("stats = %+v", st)
	}
	// Per-stream sequence numbers must be stable across eviction.
	if evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("seqs = %d..%d, want 7..10", evs[0].Seq, evs[3].Seq)
	}
}

func TestRestoreDropsRolledBackSpans(t *testing.T) {
	r := NewRecorder(0)
	r.Drive("a", "c", "n", 10, 1)
	r.Drive("a", "c", "n", 20, 2)
	r.Drive("b", "c", "n", 25, 9) // other sub: must survive a's rewind
	r.Drive("a", "c", "n", 30, 3)
	r.Checkpoint("a", "snap", 15)
	r.Restore("a", "snap", 15)

	evs := r.Events()
	var kinds []Kind
	for _, e := range evs {
		kinds = append(kinds, e.Kind)
	}
	// Surviving record order: a@10, b@25 (other sub), checkpoint a@15
	// (at the cut, not past it), then the rewind marker and restore.
	want := []Kind{KindDrive, KindDrive, KindCheckpoint, KindRewind, KindRestore}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	if evs[0].Sub != "a" || evs[0].VT != 10 {
		t.Fatalf("surviving a-drive = %+v", evs[0])
	}
	if evs[1].Sub != "b" || evs[1].VT != 25 {
		t.Fatalf("b's drive must survive, got %+v", evs[1])
	}
	rw := evs[3]
	if rw.VT != 15 || rw.VT2 != 30 {
		t.Fatalf("rewind window [%d,%d], want [15,30]", rw.VT, rw.VT2)
	}
	if st := r.Stats(); st.RewindDropped != 2 {
		// The a-drives at 20 and 30 roll back; nothing else does.
		t.Fatalf("RewindDropped = %d, want 2 (stats %+v)", st.RewindDropped, st)
	}
}

func TestRestoreWithNoFutureEmitsNoRewind(t *testing.T) {
	r := NewRecorder(0)
	r.Drive("a", "c", "n", 10, 1)
	r.Restore("a", "t", 10)
	for _, e := range r.Events() {
		if e.Kind == KindRewind {
			t.Fatal("no discarded future, but rewind marker emitted")
		}
	}
}

// TestCanonicalOrderIndependence records the same logical history with
// two different wall-clock interleavings of the per-stream event
// sources (as scheduler and transport-pump goroutines would produce)
// and asserts the canonical export bytes are identical.
func TestCanonicalOrderIndependence(t *testing.T) {
	mk := func(interleaved bool) []byte {
		r := NewRecorder(0)
		r.SetNode("n1")
		sched := func() {
			r.Drive("a", "cpu", "bus", 10, 1)
			r.Checkpoint("a", "", 20)
			r.Drive("a", "cpu", "bus", 30, 2)
		}
		channel := func() {
			r.Send("a", "b", "bus", 12)
			r.Deliver("b", "a", "ack", 14)
			r.Ask("a", "b", 40) // transient: must not affect canonical bytes
			r.Send("a", "b", "bus", 32)
		}
		if interleaved {
			// Simulate the pump goroutine landing between scheduler
			// steps: interleave stream records differently.
			r.Send("a", "b", "bus", 12)
			r.Drive("a", "cpu", "bus", 10, 1)
			r.Ask("a", "b", 40)
			r.Deliver("b", "a", "ack", 14)
			r.Checkpoint("a", "", 20)
			r.Drive("a", "cpu", "bus", 30, 2)
			r.Send("a", "b", "bus", 32)
		} else {
			sched()
			channel()
		}
		var buf bytes.Buffer
		if err := WritePerfetto(&buf, Canonical(r.Events()), ExportOptions{}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := mk(false), mk(true)
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical export depends on record interleaving:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if bytes.Contains(a, []byte("\"ask")) {
		t.Fatal("canonical export must exclude transient kinds")
	}
}

func TestFlowPairing(t *testing.T) {
	r := NewRecorder(0)
	r.SetNode("n1")
	r.Send("a", "b", "bus", 10)
	r.Send("a", "b", "bus", 20)
	s := NewRecorder(0)
	s.SetNode("n2")
	s.Deliver("a", "b", "bus", 11)
	s.Deliver("a", "b", "bus", 21)

	var buf bytes.Buffer
	merged := Canonical(MergeEvents(r.Events(), s.Events()))
	if err := WritePerfetto(&buf, merged, ExportOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	ids := regexp.MustCompile(`"id":"(0x[0-9a-f]+)"`).FindAllStringSubmatch(out, -1)
	if len(ids) != 4 {
		t.Fatalf("want 4 flow endpoints (2 sends + 2 delivers), got %d in:\n%s", len(ids), out)
	}
	count := map[string]int{}
	for _, m := range ids {
		count[m[1]]++
	}
	if len(count) != 2 {
		t.Fatalf("want 2 distinct flow ids each used twice, got %v", count)
	}
	for id, n := range count {
		if n != 2 {
			t.Fatalf("flow id %s used %d times, want 2 (start+finish)", id, n)
		}
	}
	if !strings.Contains(out, `"ph":"s"`) || !strings.Contains(out, `"ph":"f"`) {
		t.Fatal("missing flow start/finish phases")
	}
}

func TestNativeRoundTripAndMergeFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, node string, fill func(r *Recorder)) string {
		r := NewRecorder(0)
		r.SetNode(node)
		fill(r)
		p := filepath.Join(dir, name)
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.WriteNative(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return p
	}
	p1 := write("n1.json", "n1", func(r *Recorder) {
		r.Drive("a", "cpu", "bus", 10, 1)
		r.Send("a", "b", "bus", 12)
		r.Fault("wan", "drop", 3)
	})
	p2 := write("n2.json", "n2", func(r *Recorder) {
		r.Deliver("a", "b", "bus", 13)
		r.Drive("b", "dma", "bus", 14, 2)
	})

	f, err := os.Open(p1)
	if err != nil {
		t.Fatal(err)
	}
	node, evs, err := ReadNative(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if node != "n1" || len(evs) != 3 {
		t.Fatalf("round trip: node=%q events=%d", node, len(evs))
	}
	if evs[0].Node != "n1" || evs[0].Kind != KindDrive || evs[0].VT != 10 || evs[0].Detail != "1" {
		t.Fatalf("round trip event = %+v", evs[0])
	}

	var m1, m2 bytes.Buffer
	if err := MergeFiles(&m1, p1, p2); err != nil {
		t.Fatal(err)
	}
	if err := MergeFiles(&m2, p2, p1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m1.Bytes(), m2.Bytes()) {
		t.Fatal("merged output depends on file order")
	}
	if !strings.Contains(m1.String(), `"ph":"f"`) {
		t.Fatal("merged output missing cross-node flow finish")
	}
	if strings.Contains(m1.String(), "fault") {
		t.Fatal("canonical merge must drop transient fault events")
	}
}

func TestLogfmt(t *testing.T) {
	r := NewRecorder(0)
	r.SetNode("n1")
	r.Drive("a", "cpu", "bus", 10, 1)
	r.Stall("a", 11, 30)
	var buf bytes.Buffer
	if err := WriteLogfmt(&buf, r.Events(), ExportOptions{Wall: true, Transient: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "vt=10 kind=drive node=n1 sub=a comp=cpu net=bus seq=1") {
		t.Fatalf("logfmt drive line missing, got:\n%s", out)
	}
	if !strings.Contains(out, "kind=stall") || !strings.Contains(out, "vt2=30") {
		t.Fatalf("logfmt stall line missing, got:\n%s", out)
	}
	var canon bytes.Buffer
	if err := WriteLogfmt(&canon, r.Events(), ExportOptions{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(canon.String(), "stall") || strings.Contains(canon.String(), "wall=") {
		t.Fatalf("canonical logfmt leaked transient/wall fields:\n%s", canon.String())
	}
}

// TestMigrateCanonical pins the migrate span kind: it is part of the
// canonical (reproducible) set, survives Canonical filtering, and
// names its phases in the exported event title.
func TestMigrateCanonical(t *testing.T) {
	r := NewRecorder(16)
	for _, phase := range []string{"quiesce", "snapshot", "transfer", "splice", "resume"} {
		r.Migrate("alpha", "hot", "alpha", "bravo", phase, 100)
	}
	evs := Canonical(r.Events())
	if len(evs) != 5 {
		t.Fatalf("migrate events dropped by Canonical: %d of 5 kept", len(evs))
	}
	for _, e := range evs {
		if e.Kind != KindMigrate || !e.Kind.Canonical() {
			t.Fatalf("migrate event has non-canonical kind %v", e.Kind)
		}
		if e.From != "alpha" || e.To != "bravo" || e.VT != 100 {
			t.Fatalf("migrate event lost fields: %+v", e)
		}
	}
	if got := eventName(&evs[3]); got != "migrate hot splice alpha>bravo" {
		t.Fatalf("export name = %q", got)
	}
}
