package timeline

import (
	"testing"

	"repro/internal/vtime"
)

// TestDisabledTimelineZeroAlloc is the CI guard for the disabled
// path: every emission site in the scheduler, channel endpoint,
// faultnet link and resilience session holds a plain (possibly nil)
// *Recorder and calls it unconditionally, relying on the nil-receiver
// guard instead of its own branch. That guard must cost zero
// allocations, or disabling the timeline would still tax the drive
// fanout hot path (see TestDriveFanoutZeroAlloc in internal/event for
// the scheduler-side twin).
func TestDisabledTimelineZeroAlloc(t *testing.T) {
	var rec *Recorder // timeline disabled
	tick := vtime.Time(0)
	allocs := testing.AllocsPerRun(200, func() {
		rec.Drive("sub", "comp", "net", tick, 7)
		rec.Send("a", "b", "net", tick)
		rec.Deliver("a", "b", "net", tick)
		rec.Checkpoint("sub", "tag", tick)
		rec.Restore("sub", "tag", tick)
		rec.Runlevel("sub", "comp", "wordLevel", tick)
		rec.Migrate("sub", "comp", "a", "b", "splice", tick)
		rec.Stall("sub", tick, tick+1)
		rec.Resume("sub", tick)
		rec.Ask("a", "b", tick)
		rec.Grant("a", "b", tick)
		rec.Straggler("a", "b", "net", tick, tick)
		rec.Fault("link", "drop", 1)
		rec.SessionEvent("session-1", "resume", "")
		tick++
	})
	if allocs != 0 {
		t.Fatalf("disabled timeline emitters allocate %.1f times/op, want 0", allocs)
	}
}

// BenchmarkRecord measures the enabled-path cost of the hottest
// emitter (Drive) against the nil-receiver disabled path.
func BenchmarkRecord(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		var rec *Recorder
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec.Drive("sub", "comp", "net", vtime.Time(i), 7)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		rec := NewRecorder(1 << 12)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec.Drive("sub", "comp", "net", vtime.Time(i), 7)
		}
	})
}
