// Package timeline records causally-linked lifecycle events keyed by
// virtual time: component drives, channel send/delivery pairs,
// checkpoint/restore/rewind markers, runlevel switches, conservative
// protocol chatter, WAN fault injections, and resilient-session epoch
// transitions. It is distinct from the waveform recorder in
// internal/trace — trace answers "what value was on this net when",
// timeline answers "what happened, in what order, and what caused it".
//
// Events fall into two classes. Canonical kinds (drive, send, deliver,
// checkpoint, restore, rewind, runlevel) describe the committed
// virtual-time history of a run: on a conservative configuration they
// are bit-reproducible across same-seed reruns once rolled-back spans
// are dropped. Transient kinds (stall, ask, grant, straggler, fault,
// session) describe wall-clock-dependent mechanics — how the run got
// there — and are excluded from the canonical merged export so that it
// stays byte-identical run to run.
//
// The recorder is rewind-aware: when a subsystem restores a
// checkpoint, every recorded event of that subsystem past the restore
// point is dropped from the committed view and a single rewind marker
// spanning the discarded-future window is recorded in its place.
package timeline

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/vtime"
)

// Kind classifies a timeline event.
type Kind uint8

const (
	// Canonical kinds: deterministic in the committed view of a
	// conservative run. Keep KindMigrate last in this block —
	// Canonical() tests k <= KindMigrate.
	KindDrive      Kind = iota // a component drove a net
	KindSend                   // committed cross-subsystem data send
	KindDeliver                // committed cross-subsystem data delivery
	KindCheckpoint             // checkpoint captured (auto or tagged)
	KindRestore                // checkpoint restored
	KindRewind                 // discarded-future window after a restore
	KindRunlevel               // detail-level switch on a component
	KindMigrate                // live migration phase (quiesce … resume)

	// Transient kinds: wall-clock-timing-dependent mechanics,
	// excluded from canonical exports.
	KindStall     // scheduler stalled waiting for a safe-time grant
	KindResume    // stall ended
	KindAsk       // safe-time request sent to a peer
	KindGrant     // safe-time grant sent to a peer
	KindStraggler // data arrived behind the local clock
	KindFault     // faultnet injected a fault on a link
	KindSession   // resilient-session lifecycle (epoch death, resume, ...)
)

var kindNames = [...]string{
	"drive", "send", "deliver", "checkpoint", "restore", "rewind",
	"runlevel", "migrate", "stall", "resume", "ask", "grant",
	"straggler", "fault", "session",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Canonical reports whether events of this kind belong to the
// committed, reproducible history of a run.
func (k Kind) Canonical() bool { return k <= KindMigrate }

// Event is one timeline record. VT is the primary clock; Wall is
// advisory (it never participates in canonical ordering or canonical
// export bytes). Seq is a per-stream sequence number: each
// subsystem's scheduler, and each directed channel (from→to, per
// direction and kind class), counts its own events, so ordering
// within a stream is deterministic even though streams interleave at
// wall-clock-dependent points.
type Event struct {
	Kind Kind   `json:"k"`
	Node string `json:"node,omitempty"`
	Sub  string `json:"sub,omitempty"`  // owning actor (subsystem, link, or session)
	Comp string `json:"comp,omitempty"` // component, for drive/runlevel
	Net  string `json:"net,omitempty"`  // net name, for drive/send/deliver
	From string `json:"from,omitempty"` // source subsystem, for channel events
	To   string `json:"to,omitempty"`   // destination subsystem, for channel events

	VT  vtime.Time `json:"vt"`            // primary clock
	VT2 vtime.Time `json:"vt2,omitempty"` // span end (rewind high-water, stall need)

	Wall   int64  `json:"wall,omitempty"` // wall clock, ns since epoch (advisory)
	Seq    uint64 `json:"seq"`            // per-stream sequence
	Detail string `json:"d,omitempty"`    // value / tag / level / fault verb
}

// streamKey identifies the deterministic sub-stream an event's Seq is
// drawn from. Canonical scheduler events share one stream per
// subsystem; channel sends and deliveries get one stream per directed
// pair; transient events use separate streams so their wall-dependent
// counts never perturb canonical sequence numbers.
type streamKey struct {
	class uint8
	a, b  string
}

const (
	streamSched     uint8 = iota // canonical scheduler-side events of one sub
	streamOut                    // canonical sends, one per from→to
	streamIn                     // canonical deliveries, one per from→to
	streamTransient              // everything wall-dependent, per actor
)

func streamOf(e *Event) streamKey {
	switch e.Kind {
	case KindSend:
		return streamKey{streamOut, e.From, e.To}
	case KindDeliver:
		return streamKey{streamIn, e.From, e.To}
	}
	if e.Kind.Canonical() {
		return streamKey{class: streamSched, a: e.Sub}
	}
	return streamKey{class: streamTransient, a: e.Sub}
}

// Stats counts recorder activity. Evicted counts events lost to ring
// retention; RewindDropped counts events removed because a restore
// rolled them back.
type Stats struct {
	Recorded      uint64
	Evicted       uint64
	RewindDropped uint64
	Buffered      int
}

// DefaultLimit is the default ring retention, in events.
const DefaultLimit = 1 << 16

// Recorder is a bounded, mutex-protected, rewind-aware ring of
// timeline events. All methods are safe on a nil receiver (no-ops),
// so call sites can stay nil-guarded without their own checks, and
// safe for concurrent use — scheduler goroutines, transport pumps,
// and keepalive loops all record into the same ring.
type Recorder struct {
	mu     sync.Mutex
	node   string
	limit  int
	events []Event
	head   int // index of oldest event once the ring has wrapped
	n      int
	seqs   map[streamKey]uint64
	hw     map[string]vtime.Time // per-sub high-water of canonical VT
	hwAll  vtime.Time            // global canonical high-water, for clock-less events
	stats  Stats
}

// NewRecorder returns a recorder retaining at most limit events
// (DefaultLimit if limit <= 0).
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Recorder{
		limit: limit,
		seqs:  make(map[streamKey]uint64),
		hw:    make(map[string]vtime.Time),
	}
}

// SetNode stamps subsequently recorded events with the given node
// name, so per-node recorders can be merged without ambiguity.
func (r *Recorder) SetNode(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.node = name
	r.mu.Unlock()
}

// NodeName returns the node name set with SetNode.
func (r *Recorder) NodeName() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.node
}

func (r *Recorder) recordLocked(e Event) {
	if e.Node == "" {
		e.Node = r.node
	}
	e.Wall = time.Now().UnixNano()
	key := streamOf(&e)
	r.seqs[key]++
	e.Seq = r.seqs[key]
	// Only canonical events advance the high-waters: the rewind
	// marker's span end (VT2 = hw) is part of the canonical export, so
	// it must not depend on wall-timing-sensitive transient VTs.
	if e.Kind.Canonical() {
		if e.VT > r.hw[e.Sub] {
			r.hw[e.Sub] = e.VT
		}
		if e.VT > r.hwAll {
			r.hwAll = e.VT
		}
	}
	r.stats.Recorded++
	if r.n < r.limit {
		if r.n == len(r.events) {
			r.events = append(r.events, e)
		} else {
			r.events[(r.head+r.n)%len(r.events)] = e
		}
		r.n++
		return
	}
	r.events[r.head] = e
	r.head = (r.head + 1) % len(r.events)
	r.stats.Evicted++
}

func (r *Recorder) record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.recordLocked(e)
	r.mu.Unlock()
}

// Drive records a committed net drive by comp on sub at t.
func (r *Recorder) Drive(sub, comp, net string, t vtime.Time, v any) {
	if r == nil {
		return
	}
	r.record(Event{Kind: KindDrive, Sub: sub, Comp: comp, Net: net, VT: t, Detail: fmt.Sprint(v)})
}

// Send records a committed cross-subsystem data send from→to at t.
func (r *Recorder) Send(from, to, net string, t vtime.Time) {
	if r == nil {
		return
	}
	r.record(Event{Kind: KindSend, Sub: from, From: from, To: to, Net: net, VT: t})
}

// Deliver records the delivery on to of a data message sent by from,
// stamped with its (sender-side) virtual arrival time t.
func (r *Recorder) Deliver(from, to, net string, t vtime.Time) {
	if r == nil {
		return
	}
	r.record(Event{Kind: KindDeliver, Sub: to, From: from, To: to, Net: net, VT: t})
}

// Checkpoint records a checkpoint capture (tag "" for automatic).
func (r *Recorder) Checkpoint(sub, tag string, t vtime.Time) {
	if r == nil {
		return
	}
	r.record(Event{Kind: KindCheckpoint, Sub: sub, VT: t, Detail: tag})
}

// Restore records a checkpoint restore on sub back to t. Every event
// previously recorded for sub past t is dropped from the committed
// view, and if any existed a single rewind marker spanning
// [t, high-water] is recorded in their place, carrying the
// discarded-future window. The restore event itself follows.
func (r *Recorder) Restore(sub, tag string, t vtime.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	hw := r.hw[sub]
	r.dropAfterLocked(sub, t)
	if hw > t {
		r.recordLocked(Event{Kind: KindRewind, Sub: sub, VT: t, VT2: hw, Detail: tag})
	}
	r.recordLocked(Event{Kind: KindRestore, Sub: sub, VT: t, Detail: tag})
	r.hw[sub] = t
	r.mu.Unlock()
}

// Migrate records one phase of a live component migration (phase:
// quiesce, snapshot, transfer, splice, resume) of comp from subsystem
// `from` to subsystem `to`, cut at virtual time t. The five phases of
// one migration share the same VT — the drained barrier the handoff
// happened at — so a merged trace shows them as a tight span at the
// cut.
func (r *Recorder) Migrate(sub, comp, from, to, phase string, t vtime.Time) {
	if r == nil {
		return
	}
	r.record(Event{Kind: KindMigrate, Sub: sub, Comp: comp, From: from, To: to, VT: t, Detail: phase})
}

// Runlevel records a detail-level switch of comp to level at t.
func (r *Recorder) Runlevel(sub, comp, level string, t vtime.Time) {
	if r == nil {
		return
	}
	r.record(Event{Kind: KindRunlevel, Sub: sub, Comp: comp, VT: t, Detail: level})
}

// Stall records that sub's scheduler stalled at t waiting for its
// channel frontier to reach need.
func (r *Recorder) Stall(sub string, t, need vtime.Time) {
	if r == nil {
		return
	}
	r.record(Event{Kind: KindStall, Sub: sub, VT: t, VT2: need})
}

// Resume records that sub's scheduler left a stall at t.
func (r *Recorder) Resume(sub string, t vtime.Time) {
	if r == nil {
		return
	}
	r.record(Event{Kind: KindResume, Sub: sub, VT: t})
}

// Ask records a safe-time request from→to carrying horizon t.
func (r *Recorder) Ask(from, to string, t vtime.Time) {
	if r == nil {
		return
	}
	r.record(Event{Kind: KindAsk, Sub: from, From: from, To: to, VT: t})
}

// Grant records a safe-time grant from→to up to t.
func (r *Recorder) Grant(from, to string, t vtime.Time) {
	if r == nil {
		return
	}
	r.record(Event{Kind: KindGrant, Sub: from, From: from, To: to, VT: t})
}

// Straggler records a data message from from that arrived on to with
// timestamp t already behind to's local clock now.
func (r *Recorder) Straggler(from, to, net string, t, now vtime.Time) {
	if r == nil {
		return
	}
	r.record(Event{Kind: KindStraggler, Sub: to, From: from, To: to, Net: net, VT: t, VT2: now})
}

// Fault records a fault injection (what: drop, dup, reorder, corrupt,
// cut, heal) on the named link at wire frame index frame. Faults have
// no virtual clock of their own; they are stamped with the recorder's
// global high-water so they land near "now" in the viewer.
func (r *Recorder) Fault(link, what string, frame int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.recordLocked(Event{Kind: KindFault, Sub: link, VT: r.hwAll, Detail: fmt.Sprintf("%s#%d", what, frame)})
	r.mu.Unlock()
}

// SessionEvent records a resilient-session lifecycle event (what:
// epoch-death, resume, replay, rewind, gap-kill, ...) with free-form
// detail. Stamped like Fault with the global high-water.
func (r *Recorder) SessionEvent(session, what, detail string) {
	if r == nil {
		return
	}
	if detail != "" {
		what = what + " " + detail
	}
	r.mu.Lock()
	r.recordLocked(Event{Kind: KindSession, Sub: session, VT: r.hwAll, Detail: what})
	r.mu.Unlock()
}

// dropAfterLocked removes every event owned by sub with VT past
// cutoff, linearizing the ring. Stream sequence counters are not
// rolled back: gaps left by a rewind are themselves deterministic
// when the rewind is, and the merged export re-stamps a global
// sequence after canonical sorting anyway.
func (r *Recorder) dropAfterLocked(sub string, cutoff vtime.Time) {
	if r.n == 0 {
		return
	}
	kept := make([]Event, 0, r.n)
	for i := 0; i < r.n; i++ {
		e := r.events[(r.head+i)%len(r.events)]
		if e.Sub == sub && e.VT > cutoff {
			r.stats.RewindDropped++
			continue
		}
		kept = append(kept, e)
	}
	r.events = kept
	r.head = 0
	r.n = len(kept)
}

// Events returns a copy of the committed view, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.events[(r.head+i)%len(r.events)]
	}
	return out
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Stats returns recorder counters.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.Buffered = r.n
	return s
}
