package timeline

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"strconv"

	"repro/internal/vtime"
)

// ExportOptions controls the Perfetto/logfmt writers.
type ExportOptions struct {
	// Wall includes wall-clock args. Wall times differ run to run,
	// so the deterministic merged export leaves this off.
	Wall bool
	// Transient includes the wall-timing-dependent kinds (stall,
	// ask/grant, straggler, fault, session). Off for canonical
	// exports.
	Transient bool
}

// SortEvents orders events by the canonical key: virtual time, then
// kind, then actor/direction names, then per-stream sequence. The key
// is total over any one run's canonical events (two events of the
// same stream never share a sequence number), so sorting a merged
// batch from several nodes yields the same order every run.
func SortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := &evs[i], &evs[j]
		if a.VT != b.VT {
			return a.VT < b.VT
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Sub != b.Sub {
			return a.Sub < b.Sub
		}
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Node < b.Node
	})
}

// Canonical filters to the canonical kinds and sorts. The result is
// the committed, reproducible history of the run: on a conservative
// configuration its exported bytes are identical across same-seed
// reruns.
func Canonical(evs []Event) []Event {
	out := make([]Event, 0, len(evs))
	for _, e := range evs {
		if e.Kind.Canonical() {
			out = append(out, e)
		}
	}
	SortEvents(out)
	return out
}

// MergeEvents concatenates per-node event batches and sorts them on
// the canonical key.
func MergeEvents(batches ...[]Event) []Event {
	var total int
	for _, b := range batches {
		total += len(b)
	}
	out := make([]Event, 0, total)
	for _, b := range batches {
		out = append(out, b...)
	}
	SortEvents(out)
	return out
}

// flowID derives the causal flow id pairing the k-th committed send
// on a directed channel with its k-th committed delivery. Wire
// sequence numbers are deliberately not used: the endpoint resets
// them on rewinds and interleaves protocol chatter, so the committed
// index is the run-stable key.
func flowID(from, to string, k uint64) uint64 {
	h := fnv.New64a()
	io.WriteString(h, from)
	h.Write([]byte{'\x00'})
	io.WriteString(h, to)
	fmt.Fprintf(h, "\x00%d", k)
	return h.Sum64()
}

// vtUS renders a virtual time (integer nanosecond ticks) as the
// microsecond-unit "ts" field of the Chrome trace format without
// going through floating point, so output bytes are exact.
func vtUS(t vtime.Time) string {
	n := int64(t)
	neg := ""
	if n < 0 {
		neg, n = "-", -n
	}
	return fmt.Sprintf("%s%d.%03d", neg, n/1000, n%1000)
}

func eventName(e *Event) string {
	switch e.Kind {
	case KindDrive:
		return "drive " + e.Net
	case KindSend:
		return "send " + e.Net
	case KindDeliver:
		return "recv " + e.Net
	case KindCheckpoint:
		if e.Detail == "" {
			return "checkpoint"
		}
		return "checkpoint " + e.Detail
	case KindRestore:
		if e.Detail == "" {
			return "restore"
		}
		return "restore " + e.Detail
	case KindRewind:
		return "rewind"
	case KindRunlevel:
		return "runlevel " + e.Comp + "=" + e.Detail
	case KindMigrate:
		return "migrate " + e.Comp + " " + e.Detail + " " + e.From + ">" + e.To
	case KindStall:
		return "stall"
	case KindResume:
		return "resume"
	case KindAsk:
		return "ask " + e.To
	case KindGrant:
		return "grant " + e.To
	case KindStraggler:
		return "straggler " + e.Net
	case KindFault:
		return "fault " + e.Detail
	case KindSession:
		return "session " + e.Detail
	}
	return e.Kind.String()
}

// WritePerfetto writes events as Chrome trace-event JSON (loadable at
// ui.perfetto.dev or chrome://tracing). Virtual time is the primary
// clock: one trace "process" per node, one "thread" per actor
// (subsystem, link, or session). Committed send/deliver pairs are
// linked with flow events so cross-node message arrows render.
// Events must already be sorted (SortEvents / Canonical / Merge*).
func WritePerfetto(w io.Writer, evs []Event, opt ExportOptions) error {
	bw := bufio.NewWriter(w)

	// Assign pids to nodes and tids to per-node actors, in sorted
	// order so numbering is deterministic.
	type track struct{ node, sub string }
	nodeSet := map[string]bool{}
	trackSet := map[track]bool{}
	for i := range evs {
		e := &evs[i]
		if !opt.Transient && !e.Kind.Canonical() {
			continue
		}
		nodeSet[e.Node] = true
		trackSet[track{e.Node, e.Sub}] = true
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	pid := make(map[string]int, len(nodes))
	for i, n := range nodes {
		pid[n] = i + 1
	}
	tracks := make([]track, 0, len(trackSet))
	for t := range trackSet {
		tracks = append(tracks, t)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].node != tracks[j].node {
			return tracks[i].node < tracks[j].node
		}
		return tracks[i].sub < tracks[j].sub
	})
	tid := make(map[track]int, len(tracks))
	next := map[string]int{}
	for _, t := range tracks {
		next[t.node]++
		tid[t] = next[t.node]
	}

	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		fmt.Fprintf(bw, "\n"+format, args...)
	}
	for _, n := range nodes {
		name := n
		if name == "" {
			name = "local"
		}
		emit("{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\",\"args\":{\"name\":%s}}",
			pid[n], strconv.Quote(name))
	}
	for _, t := range tracks {
		emit("{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%s}}",
			pid[t.node], tid[t], strconv.Quote(t.sub))
	}

	// Committed send/deliver pairing: the k-th send on from→to links
	// to the k-th delivery, counted in canonical order.
	kOut := map[[2]string]uint64{}
	kIn := map[[2]string]uint64{}

	seq := 0
	for i := range evs {
		e := &evs[i]
		if !opt.Transient && !e.Kind.Canonical() {
			continue
		}
		p, t := pid[e.Node], tid[track{e.Node, e.Sub}]
		ts := vtUS(e.VT)

		args := fmt.Sprintf("\"seq\":%d", seq)
		seq++
		if e.Comp != "" {
			args += ",\"comp\":" + strconv.Quote(e.Comp)
		}
		if e.Net != "" {
			args += ",\"net\":" + strconv.Quote(e.Net)
		}
		if e.From != "" {
			args += ",\"from\":" + strconv.Quote(e.From)
		}
		if e.To != "" {
			args += ",\"to\":" + strconv.Quote(e.To)
		}
		if e.Detail != "" {
			args += ",\"detail\":" + strconv.Quote(e.Detail)
		}
		if e.Kind == KindRewind {
			args += fmt.Sprintf(",\"discarded_until\":%q", vtUS(e.VT2))
		}
		if e.Kind == KindStall && e.VT2 != 0 {
			args += fmt.Sprintf(",\"need\":%q", vtUS(e.VT2))
		}
		if opt.Wall {
			args += fmt.Sprintf(",\"wall_ns\":%d", e.Wall)
		}

		name := strconv.Quote(eventName(e))
		switch e.Kind {
		case KindRewind:
			dur := e.VT2 - e.VT
			emit("{\"name\":%s,\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":%d,\"tid\":%d,\"args\":{%s}}",
				name, ts, vtUS(dur), p, t, args)
		case KindSend:
			dir := [2]string{e.From, e.To}
			k := kOut[dir]
			kOut[dir]++
			id := flowID(e.From, e.To, k)
			emit("{\"name\":%s,\"ph\":\"X\",\"ts\":%s,\"dur\":0,\"pid\":%d,\"tid\":%d,\"args\":{%s}}",
				name, ts, p, t, args)
			emit("{\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":\"0x%x\",\"ts\":%s,\"pid\":%d,\"tid\":%d}",
				id, ts, p, t)
		case KindDeliver:
			dir := [2]string{e.From, e.To}
			k := kIn[dir]
			kIn[dir]++
			id := flowID(e.From, e.To, k)
			emit("{\"name\":%s,\"ph\":\"X\",\"ts\":%s,\"dur\":0,\"pid\":%d,\"tid\":%d,\"args\":{%s}}",
				name, ts, p, t, args)
			emit("{\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":\"0x%x\",\"ts\":%s,\"pid\":%d,\"tid\":%d}",
				id, ts, p, t)
		default:
			emit("{\"name\":%s,\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":%d,\"tid\":%d,\"args\":{%s}}",
				name, ts, p, t, args)
		}
	}
	fmt.Fprintf(bw, "\n]}\n")
	return bw.Flush()
}

// WriteLogfmt writes events one per line in logfmt, sorted order
// assumed. Wall and transient inclusion follow opt as in
// WritePerfetto.
func WriteLogfmt(w io.Writer, evs []Event, opt ExportOptions) error {
	bw := bufio.NewWriter(w)
	for i := range evs {
		e := &evs[i]
		if !opt.Transient && !e.Kind.Canonical() {
			continue
		}
		fmt.Fprintf(bw, "vt=%d kind=%s", int64(e.VT), e.Kind)
		if e.Node != "" {
			fmt.Fprintf(bw, " node=%s", e.Node)
		}
		if e.Sub != "" {
			fmt.Fprintf(bw, " sub=%s", e.Sub)
		}
		if e.Comp != "" {
			fmt.Fprintf(bw, " comp=%s", e.Comp)
		}
		if e.Net != "" {
			fmt.Fprintf(bw, " net=%s", e.Net)
		}
		if e.From != "" {
			fmt.Fprintf(bw, " from=%s", e.From)
		}
		if e.To != "" {
			fmt.Fprintf(bw, " to=%s", e.To)
		}
		if e.VT2 != 0 {
			fmt.Fprintf(bw, " vt2=%d", int64(e.VT2))
		}
		fmt.Fprintf(bw, " seq=%d", e.Seq)
		if e.Detail != "" {
			fmt.Fprintf(bw, " detail=%s", strconv.Quote(e.Detail))
		}
		if opt.Wall {
			fmt.Fprintf(bw, " wall=%d", e.Wall)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// nativeFile is the per-node on-disk schema: a node name plus the raw
// event list, suitable for cross-node merging.
type nativeFile struct {
	Node   string  `json:"node"`
	Events []Event `json:"events"`
}

// WriteNative writes the recorder's full committed view (all kinds,
// wall clocks included) as a per-node JSON file for later merging.
func (r *Recorder) WriteNative(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("timeline: nil recorder")
	}
	enc := json.NewEncoder(w)
	return enc.Encode(nativeFile{Node: r.NodeName(), Events: r.Events()})
}

// ReadNative reads a per-node file written by WriteNative, filling in
// the file-level node name on any event missing one.
func ReadNative(rd io.Reader) (node string, evs []Event, err error) {
	var f nativeFile
	if err := json.NewDecoder(rd).Decode(&f); err != nil {
		return "", nil, err
	}
	for i := range f.Events {
		if f.Events[i].Node == "" {
			f.Events[i].Node = f.Node
		}
	}
	return f.Node, f.Events, nil
}

// MergeFiles reads per-node timeline files, merges and canonicalizes
// them, and writes the deterministic merged Perfetto JSON to out.
func MergeFiles(out io.Writer, paths ...string) error {
	var batches [][]Event
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		_, evs, err := ReadNative(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("timeline: %s: %w", p, err)
		}
		batches = append(batches, evs)
	}
	return WritePerfetto(out, Canonical(MergeEvents(batches...)), ExportOptions{})
}
