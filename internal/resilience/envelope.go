package resilience

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Session envelope framing. Every envelope is
//
//	| 4-byte BE length of the rest | 1-byte type | body | 4-byte CRC32 |
//
// with the CRC computed over type and body. The leading length prefix
// follows the same convention as the wire package, which is what lets
// faultnet segment (and mangle) session traffic generically; the
// trailing CRC is what turns a mangled frame into a detected fault
// instead of silent corruption.
const (
	typeHello     byte = 1 // client -> server, first frame on every raw conn
	typeHelloAck  byte = 2 // server -> client, second frame
	typeData      byte = 3 // seq(8) ack(8) payload
	typeHeartbeat byte = 4 // ack(8)
)

// Hello/HelloAck status codes.
const (
	statusOK     byte = 0 // resume (or fresh session) accepted
	statusRewind byte = 1 // retention miss: both sides rewind to the tag
	statusReject byte = 2 // unknown session or no common checkpoint
)

// maxChunk bounds one data envelope's payload; Session.Write splits
// larger writes. maxEnvelope bounds what the reader will accept.
const (
	maxChunk    = 32 << 10
	maxEnvelope = maxChunk + 64
)

// envelope header/trailer overhead: length prefix + type + CRC.
const (
	envHeader  = 5
	envTrailer = 4
)

// appendEnvelope frames type+body into dst.
func appendEnvelope(dst []byte, typ byte, body []byte) []byte {
	n := 1 + len(body) + envTrailer
	var hdr [envHeader]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(n))
	hdr[4] = typ
	dst = append(dst, hdr[:]...)
	dst = append(dst, body...)
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(body)
	var tail [envTrailer]byte
	binary.BigEndian.PutUint32(tail[:], crc.Sum32())
	return append(dst, tail[:]...)
}

// encodeData builds one data envelope.
func encodeData(seq, ack uint64, payload []byte) []byte {
	body := make([]byte, 16, 16+len(payload))
	binary.BigEndian.PutUint64(body[0:8], seq)
	binary.BigEndian.PutUint64(body[8:16], ack)
	body = append(body, payload...)
	return appendEnvelope(nil, typeData, body)
}

// encodeHeartbeat builds one heartbeat envelope.
func encodeHeartbeat(ack uint64) []byte {
	var body [8]byte
	binary.BigEndian.PutUint64(body[:], ack)
	return appendEnvelope(nil, typeHeartbeat, body[:])
}

// hello is the resume handshake sent by the dialing side on every new
// raw connection.
type hello struct {
	SessionID uint64 // 0 = new session
	RecvNext  uint64 // next data seq the sender expects to receive
	Lowest    uint64 // lowest data seq the sender can still replay
	Tag       string // latest completed checkpoint tag, for rewind
}

// helloAck answers a hello.
type helloAck struct {
	Status    byte
	SessionID uint64
	RecvNext  uint64 // next data seq the responder expects to receive
	Tag       string // rewind tag both sides restore, when Status is statusRewind
}

func encodeHello(h hello) []byte {
	body := make([]byte, 26, 26+len(h.Tag))
	binary.BigEndian.PutUint64(body[0:8], h.SessionID)
	binary.BigEndian.PutUint64(body[8:16], h.RecvNext)
	binary.BigEndian.PutUint64(body[16:24], h.Lowest)
	binary.BigEndian.PutUint16(body[24:26], uint16(len(h.Tag)))
	body = append(body, h.Tag...)
	return appendEnvelope(nil, typeHello, body)
}

func decodeHello(body []byte) (hello, error) {
	if len(body) < 26 {
		return hello{}, fmt.Errorf("resilience: short hello (%d bytes)", len(body))
	}
	h := hello{
		SessionID: binary.BigEndian.Uint64(body[0:8]),
		RecvNext:  binary.BigEndian.Uint64(body[8:16]),
		Lowest:    binary.BigEndian.Uint64(body[16:24]),
	}
	tagLen := int(binary.BigEndian.Uint16(body[24:26]))
	if len(body) != 26+tagLen {
		return hello{}, fmt.Errorf("resilience: hello tag length mismatch")
	}
	h.Tag = string(body[26:])
	return h, nil
}

func encodeHelloAck(a helloAck) []byte {
	body := make([]byte, 19, 19+len(a.Tag))
	body[0] = a.Status
	binary.BigEndian.PutUint64(body[1:9], a.SessionID)
	binary.BigEndian.PutUint64(body[9:17], a.RecvNext)
	binary.BigEndian.PutUint16(body[17:19], uint16(len(a.Tag)))
	body = append(body, a.Tag...)
	return appendEnvelope(nil, typeHelloAck, body)
}

func decodeHelloAck(body []byte) (helloAck, error) {
	if len(body) < 19 {
		return helloAck{}, fmt.Errorf("resilience: short hello ack (%d bytes)", len(body))
	}
	a := helloAck{
		Status:    body[0],
		SessionID: binary.BigEndian.Uint64(body[1:9]),
		RecvNext:  binary.BigEndian.Uint64(body[9:17]),
	}
	tagLen := int(binary.BigEndian.Uint16(body[17:19]))
	if len(body) != 19+tagLen {
		return helloAck{}, fmt.Errorf("resilience: hello ack tag length mismatch")
	}
	a.Tag = string(body[19:])
	return a, nil
}

// readEnvelope reads and validates one envelope, returning its type
// and body. Any framing or checksum anomaly is an error: the caller
// kills the connection epoch and lets the resume protocol resync.
func readEnvelope(r io.Reader) (typ byte, body []byte, err error) {
	var hdr [envHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 1+envTrailer || n > maxEnvelope {
		return 0, nil, fmt.Errorf("resilience: envelope of %d bytes out of range", n)
	}
	typ = hdr[4]
	rest := make([]byte, n-1)
	if _, err := io.ReadFull(r, rest); err != nil {
		return 0, nil, err
	}
	body = rest[:len(rest)-envTrailer]
	wantCRC := binary.BigEndian.Uint32(rest[len(rest)-envTrailer:])
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(body)
	if crc.Sum32() != wantCRC {
		return 0, nil, fmt.Errorf("resilience: envelope checksum mismatch (type %d, %d bytes)", typ, len(body))
	}
	return typ, body, nil
}
