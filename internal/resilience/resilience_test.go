package resilience

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
)

// pair is one client/server session couple over loopback TCP, with a
// dial hook the tests use to sever or injure the raw connection.
type pair struct {
	client, server *Session
	ln             *Listener

	mu   sync.Mutex
	raw  net.Conn // latest raw conn dialed by the client
	wrap func(io.ReadWriteCloser) io.ReadWriteCloser
}

func newPair(t *testing.T, cfg Config) *pair {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &pair{}
	p.ln = NewListener(ln, cfg)
	go p.ln.Serve()
	t.Cleanup(func() { p.ln.Close() })
	addr := ln.Addr().String()
	dial := func() (io.ReadWriteCloser, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		p.mu.Lock()
		p.raw = c
		wrap := p.wrap
		p.mu.Unlock()
		if wrap != nil {
			return wrap(c), nil
		}
		return c, nil
	}
	accepted := make(chan *Session, 1)
	go func() {
		s, err := p.ln.Accept()
		if err == nil {
			accepted <- s
		}
	}()
	p.client, err = Dial(dial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.client.Close() })
	select {
	case p.server = <-accepted:
	case <-time.After(5 * time.Second):
		t.Fatal("listener never surfaced the session")
	}
	t.Cleanup(func() { p.server.Close() })
	return p
}

// killRaw severs the client's current raw TCP connection.
func (p *pair) killRaw() {
	p.mu.Lock()
	raw := p.raw
	p.mu.Unlock()
	if raw != nil {
		raw.Close()
	}
}

// drain reads exactly n bytes from s, failing after a timeout.
func drain(t *testing.T, s *Session, n int) []byte {
	t.Helper()
	out := make([]byte, 0, n)
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 4096)
		for len(out) < n {
			k, err := s.Read(buf)
			out = append(out, buf[:k]...)
			if err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v after %d/%d bytes", err, len(out), n)
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("drain: stuck at %d/%d bytes", len(out), n)
	}
	return out
}

// pattern builds a deterministic, self-describing payload.
func pattern(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*7 + i>>9)
	}
	return out
}

func TestCleanBidirectionalStream(t *testing.T) {
	p := newPair(t, Config{})
	const n = 256 << 10
	want := pattern(n)
	go func() {
		for i := 0; i < n; i += 8 << 10 {
			p.client.Write(want[i : i+8<<10])
		}
	}()
	go func() {
		for i := 0; i < n; i += 8 << 10 {
			p.server.Write(want[i : i+8<<10])
		}
	}()
	if got := drain(t, p.server, n); !bytes.Equal(got, want) {
		t.Fatal("client->server stream corrupted")
	}
	if got := drain(t, p.client, n); !bytes.Equal(got, want) {
		t.Fatal("server->client stream corrupted")
	}
	if st := p.client.Stats(); st.EpochDeaths != 0 || st.Resumes != 1 {
		t.Fatalf("clean run stats: %+v", st)
	}
}

// TestResumeAfterConnKill severs the TCP connection repeatedly in the
// middle of a transfer; the stream must come out exactly once, in
// order, with no gaps.
func TestResumeAfterConnKill(t *testing.T) {
	p := newPair(t, Config{RetryBase: 5 * time.Millisecond})
	const n = 512 << 10
	want := pattern(n)
	go func() {
		for i := 0; i < n; i += 4 << 10 {
			p.client.Write(want[i : i+4<<10])
			if i%(128<<10) == 64<<10 {
				p.killRaw() // mid-transfer cut
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
	if got := drain(t, p.server, n); !bytes.Equal(got, want) {
		t.Fatal("stream not continuous across connection kills")
	}
	st := p.client.Stats()
	if st.EpochDeaths == 0 || st.Resumes < 2 {
		t.Fatalf("expected kills and resumes, got %+v", st)
	}
	if st.ReplayedFrames == 0 {
		t.Fatalf("resume never replayed retained frames: %+v", st)
	}
}

// TestLossyLink runs the session over a faultnet link that drops,
// duplicates, reorders and corrupts frames. Every injected fault must
// surface as an epoch death plus resume, never as corrupted or lost
// application bytes.
func TestLossyLink(t *testing.T) {
	link := faultnet.NewLink("lossy-test", faultnet.Config{
		Seed: 99, DropProb: 0.02, DupProb: 0.02, ReorderProb: 0.02, CorruptProb: 0.02,
	})
	p := newPair(t, Config{
		Heartbeat: 20 * time.Millisecond, HeartbeatMiss: 3,
		RetryBase: 2 * time.Millisecond, RetryMax: 50,
	})
	p.mu.Lock()
	p.wrap = link.Wrap
	p.mu.Unlock()
	p.killRaw() // force a redial so the link wraps the transport

	const n = 256 << 10
	want := pattern(n)
	go func() {
		for i := 0; i < n; i += 2 << 10 {
			if _, err := p.client.Write(want[i : i+2<<10]); err != nil {
				return
			}
		}
	}()
	if got := drain(t, p.server, n); !bytes.Equal(got, want) {
		t.Fatal("stream corrupted across a lossy link")
	}
	if err := link.VerifyDigest(); err != nil {
		t.Fatal(err)
	}
	lst := link.Stats()
	if lst.Dropped+lst.Corrupted+lst.Reordered+lst.Duplicated == 0 {
		t.Fatalf("link too calm to prove anything: %+v", lst)
	}
	sst := p.client.Stats()
	if sst.EpochDeaths == 0 {
		t.Fatalf("faults never killed an epoch: session %+v link %+v", sst, lst)
	}
}

// blackhole swallows writes and blocks reads once tripped — a peer
// that is silently gone, as opposed to a closed TCP connection.
type blackhole struct {
	inner io.ReadWriteCloser
	mu    sync.Mutex
	dead  bool
}

func (b *blackhole) trip() {
	b.mu.Lock()
	b.dead = true
	b.mu.Unlock()
	b.inner.Close() // unblock the pending read; reads turn into hangs below
}

func (b *blackhole) isDead() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dead
}

func (b *blackhole) Read(p []byte) (int, error) {
	if b.isDead() {
		select {} // silent forever
	}
	n, err := b.inner.Read(p)
	if err != nil && b.isDead() {
		select {}
	}
	return n, err
}

func (b *blackhole) Write(p []byte) (int, error) {
	if b.isDead() {
		return len(p), nil
	}
	return b.inner.Write(p)
}

func (b *blackhole) Close() error { return b.inner.Close() }

// TestHeartbeatDetectsSilentPeer: when the transport turns into a
// black hole (no error, no data), heartbeat liveness must kill the
// epoch and the redial must resume the stream.
func TestHeartbeatDetectsSilentPeer(t *testing.T) {
	var (
		mu    sync.Mutex
		holes []*blackhole
	)
	p := newPair(t, Config{
		Heartbeat: 10 * time.Millisecond, HeartbeatMiss: 3,
		RetryBase: 2 * time.Millisecond, RetryMax: 20,
	})
	p.mu.Lock()
	p.wrap = func(c io.ReadWriteCloser) io.ReadWriteCloser {
		b := &blackhole{inner: c}
		mu.Lock()
		holes = append(holes, b)
		mu.Unlock()
		return b
	}
	p.mu.Unlock()
	p.killRaw() // move onto a blackhole-wrapped transport

	const n = 64 << 10
	want := pattern(n)
	half := n / 2
	go func() {
		for i := 0; i < half; i += 4 << 10 {
			p.client.Write(want[i : i+4<<10])
		}
		// Wait for the redial to actually wrap a transport, then
		// silently kill it.
		for {
			mu.Lock()
			if len(holes) > 0 {
				holes[0].trip()
				mu.Unlock()
				break
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
		}
		for i := half; i < n; i += 4 << 10 {
			p.client.Write(want[i : i+4<<10])
		}
	}()
	if got := drain(t, p.server, n); !bytes.Equal(got, want) {
		t.Fatal("stream not continuous across a silent peer death")
	}
	if st := p.client.Stats(); st.EpochDeaths == 0 || st.HeartbeatsOut == 0 {
		t.Fatalf("heartbeat liveness never fired: %+v", st)
	}
}

// TestRetryBudgetExhaustion: when the peer is unreachable for longer
// than the retry budget, the session dies with ErrSessionLost.
func TestRetryBudgetExhaustion(t *testing.T) {
	p := newPair(t, Config{RetryBase: time.Millisecond, RetryCap: 2 * time.Millisecond, RetryMax: 3})
	p.ln.Close() // no more accepts
	p.killRaw()
	deadline := time.After(10 * time.Second)
	for p.client.Err() == nil {
		select {
		case <-deadline:
			t.Fatal("session never died")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if !errors.Is(p.client.Err(), ErrSessionLost) {
		t.Fatalf("terminal error %v, want ErrSessionLost", p.client.Err())
	}
	if _, err := p.client.Read(make([]byte, 16)); !errors.Is(err, ErrSessionLost) {
		t.Fatalf("Read after loss: %v", err)
	}
}

// TestRewindOnRetentionMiss: the client keeps writing through a long
// outage until its retention evicts unacked frames; the resume then
// negotiates a rewind to the latest common checkpoint, both sides see
// RewoundError, and after ClearRewind the stream works from scratch.
func TestRewindOnRetentionMiss(t *testing.T) {
	p := newPair(t, Config{
		RetryBase: 2 * time.Millisecond, RetryMax: 100,
		RetentionFrames: 8,
	})
	hooks := func(s *Session) {
		s.SetRewindHooks(func() string { return "ckpt-7" }, func(tag string) bool { return tag == "ckpt-7" })
	}
	hooks(p.client)
	hooks(p.server)

	// Sever the link, then write far past the retention window so the
	// evicted frames can never be replayed.
	p.ln.mu.Lock() // pause the accept loop is not possible; instead kill and burn retention fast
	p.ln.mu.Unlock()
	p.killRaw()
	for i := 0; i < 64; i++ {
		if _, err := p.client.Write(pattern(1 << 10)); err != nil {
			t.Fatal(err)
		}
	}

	waitRewound := func(s *Session, side string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			_, err := s.Read(make([]byte, 1024))
			var rw *RewoundError
			if errors.As(err, &rw) {
				if rw.Tag != "ckpt-7" {
					t.Fatalf("%s rewound to %q", side, rw.Tag)
				}
				s.ClearRewind()
				return
			}
			if err != nil {
				t.Fatalf("%s: %v", side, err)
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never saw the rewind", side)
			}
		}
	}
	waitRewound(p.client, "client")
	waitRewound(p.server, "server")

	// The stream restarts clean: fresh bytes flow end to end.
	want := pattern(32 << 10)
	go func() {
		for i := 0; i < len(want); i += 4 << 10 {
			p.client.Write(want[i : i+4<<10])
		}
	}()
	if got := drain(t, p.server, len(want)); !bytes.Equal(got, want) {
		t.Fatal("stream broken after rewind")
	}
	if st := p.client.Stats(); st.Rewinds != 1 {
		t.Fatalf("client rewinds = %d, want 1: %+v", st.Rewinds, st)
	}
	if st := p.server.Stats(); st.Rewinds != 1 {
		t.Fatalf("server rewinds = %d, want 1: %+v", st.Rewinds, st)
	}
}

// TestRewindWithoutHooksIsTerminal: a retention miss with no
// checkpoint hooks installed must kill the session, not hang it.
func TestRewindWithoutHooksIsTerminal(t *testing.T) {
	p := newPair(t, Config{
		RetryBase: 2 * time.Millisecond, RetryMax: 100,
		RetentionFrames: 4,
	})
	p.killRaw()
	for i := 0; i < 32; i++ {
		p.client.Write(pattern(1 << 10))
	}
	deadline := time.After(10 * time.Second)
	for p.client.Err() == nil {
		select {
		case <-deadline:
			t.Fatal("session without checkpoints survived a retention miss")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if !errors.Is(p.client.Err(), ErrSessionLost) {
		t.Fatalf("terminal error %v", p.client.Err())
	}
}

// TestDataIntegrityAcrossManyEpochs hammers the kill path while
// verifying a large checksum-friendly payload end to end.
func TestDataIntegrityAcrossManyEpochs(t *testing.T) {
	p := newPair(t, Config{RetryBase: time.Millisecond})
	const n = 1 << 20
	want := pattern(n)
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(7 * time.Millisecond):
				p.killRaw()
			}
		}
	}()
	go func() {
		for i := 0; i < n; i += 16 << 10 {
			if _, err := p.client.Write(want[i : i+16<<10]); err != nil {
				return
			}
		}
	}()
	got := drain(t, p.server, n)
	close(stop)
	if !bytes.Equal(got, want) {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("first divergence at byte %d of %d", i, n)
			}
		}
		t.Fatal("length mismatch")
	}
}

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config enabled")
	}
	if !(Config{Heartbeat: time.Second}).Enabled() {
		t.Fatal("non-zero config disabled")
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	h := hello{SessionID: 7, RecvNext: 42, Lowest: 3, Tag: "snap-9"}
	typ, body, err := readEnvelope(bytes.NewReader(encodeHello(h)))
	if err != nil || typ != typeHello {
		t.Fatalf("hello: %v type %d", err, typ)
	}
	got, err := decodeHello(body)
	if err != nil || got != h {
		t.Fatalf("hello round trip: %+v %v", got, err)
	}
	a := helloAck{Status: statusRewind, SessionID: 7, RecvNext: 9, Tag: "snap-9"}
	typ, body, err = readEnvelope(bytes.NewReader(encodeHelloAck(a)))
	if err != nil || typ != typeHelloAck {
		t.Fatalf("ack: %v type %d", err, typ)
	}
	gotA, err := decodeHelloAck(body)
	if err != nil || gotA != a {
		t.Fatalf("ack round trip: %+v %v", gotA, err)
	}
	// Corruption must be detected.
	env := encodeData(5, 4, []byte("payload"))
	env[len(env)-6] ^= 0x40
	if _, _, err := readEnvelope(bytes.NewReader(env)); err == nil {
		t.Fatal("corrupted envelope accepted")
	}
}

func TestStatsSnapshot(t *testing.T) {
	p := newPair(t, Config{})
	msg := []byte("hello over the wan")
	if _, err := p.client.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := drain(t, p.server, len(msg))
	if !bytes.Equal(got, msg) {
		t.Fatal("payload mismatch")
	}
	if st := p.client.Stats(); st.FramesOut != 1 {
		t.Fatalf("client FramesOut = %d", st.FramesOut)
	}
	if st := p.server.Stats(); st.FramesIn != 1 {
		t.Fatalf("server FramesIn = %d", st.FramesIn)
	}
	if p.client.ID() == 0 || p.client.ID() != p.server.ID() {
		t.Fatalf("session ids: client %d server %d", p.client.ID(), p.server.ID())
	}
	_ = fmt.Sprintf("%v", p.client.Stats()) // Stats must be plain data
}
