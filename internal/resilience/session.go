// Package resilience makes Pia's cross-node channels survive the
// network the paper actually targets: geographically distributed,
// unreliable links. It layers a session protocol between TCP (or a
// faultnet-shaped stream) and the wire framing:
//
//   - every chunk of application bytes travels in a checksummed
//     envelope with a session sequence number and a piggybacked
//     cumulative ack;
//   - the sender retains unacked envelopes in a bounded egress buffer;
//   - any anomaly — connection loss, a sequence gap from a dropped
//     frame, a checksum failure from corruption — kills the current
//     connection epoch, and the dialing side reconnects with
//     exponential backoff, jitter and a retry budget;
//   - the resume handshake replays retained envelopes, so the
//     application sees one continuous, exactly-once, in-order byte
//     stream across any number of reconnects;
//   - when the retention buffer can no longer cover the peer's loss,
//     the handshake negotiates a rewind to a common checkpoint tag
//     instead — the paper's §2.1.2 checkpoint/restore mechanism,
//     promoted from sync-violation recovery to link-failure recovery;
//   - heartbeats bound how long a dead peer can go unnoticed.
//
// A Session implements io.ReadWriteCloser; wire.Conn runs on top
// unchanged.
package resilience

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"repro/internal/timeline"
)

// ErrSessionLost is wrapped by every terminal session failure: retry
// budget exhausted, peer rejection, heartbeat timeout with no
// reconnect, or an explicit Close.
var ErrSessionLost = errors.New("resilience: session lost")

// RewoundError signals that the session negotiated a checkpoint
// rewind: the byte stream was reset on both sides and the application
// must restore the tagged checkpoint, then call ClearRewind and
// resume with fresh framing. Read returns it (repeatedly) until
// ClearRewind; concurrent Writes are discarded, since they belong to
// the timeline the rewind abandons.
type RewoundError struct{ Tag string }

func (e *RewoundError) Error() string {
	return fmt.Sprintf("resilience: session rewound to checkpoint %q", e.Tag)
}

// Config tunes a session. The zero value is usable: see withDefaults.
type Config struct {
	// Heartbeat is the idle keepalive interval; 0 disables
	// heartbeats and liveness detection.
	Heartbeat time.Duration
	// HeartbeatMiss is how many silent heartbeat intervals kill the
	// connection epoch (default 4).
	HeartbeatMiss int
	// PeerTimeout bounds how long a session may sit with no
	// connection before it is declared lost; 0 means wait forever
	// (the dialing side's retry budget still applies).
	PeerTimeout time.Duration

	// RetryBase is the first reconnect backoff (default 20ms); the
	// delay doubles per attempt up to RetryCap (default 2s), with
	// ±50% jitter. RetryMax attempts per outage (default 10).
	RetryBase time.Duration
	RetryCap  time.Duration
	RetryMax  int

	// RetentionFrames and RetentionBytes bound the unacked egress
	// kept for resume replay (defaults 65536 frames, 32 MB). When an
	// outage outlives the retention, the next resume negotiates a
	// checkpoint rewind instead of a replay.
	RetentionFrames int
	RetentionBytes  int

	// HandshakeTimeout bounds one hello/ack exchange (default 5s).
	HandshakeTimeout time.Duration

	// Seed drives backoff jitter.
	Seed int64
}

// Enabled reports whether the config was explicitly populated; an
// all-zero config leaves the resilience layer off in the node stack.
func (c Config) Enabled() bool { return c != Config{} }

// DefaultConfig is a reasonable WAN policy: 1s heartbeats, generous
// retention, ten reconnect attempts per outage.
var DefaultConfig = Config{Heartbeat: time.Second}

func (c Config) withDefaults() Config {
	if c.HeartbeatMiss <= 0 {
		c.HeartbeatMiss = 4
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 20 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 2 * time.Second
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 10
	}
	if c.RetentionFrames <= 0 {
		c.RetentionFrames = 1 << 16
	}
	if c.RetentionBytes <= 0 {
		c.RetentionBytes = 32 << 20
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	return c
}

// Stats counts session activity.
type Stats struct {
	EpochDeaths    int64 // connection epochs killed (loss, gap, crc, heartbeat)
	DialAttempts   int64
	Resumes        int64 // successful resume handshakes (incl. the first)
	ReplayedFrames int64 // retained envelopes resent on resume
	Rewinds        int64 // checkpoint rewinds negotiated
	GapKills       int64 // epochs killed by a sequence gap
	CrcKills       int64 // epochs killed by a checksum failure
	DupFramesIn    int64 // duplicate envelopes discarded by seq
	FramesOut      int64
	FramesIn       int64
	HeartbeatsOut  int64
}

// retFrame is one retained egress envelope.
type retFrame struct {
	seq uint64
	env []byte
}

// Session is one reliable, resumable byte stream between two nodes.
// It implements io.ReadWriteCloser. Reads and writes are safe for
// one reader and any number of writers (writes are serialized).
type Session struct {
	cfg  Config
	dial func() (io.ReadWriteCloser, error) // nil on the accepting side

	// wmu serializes all connection writes (data, replay,
	// heartbeats) so envelopes leave in seq order. Lock order: wmu
	// before mu; never take wmu while holding mu.
	wmu sync.Mutex

	mu   sync.Mutex
	cond *sync.Cond
	id   uint64
	conn io.ReadWriteCloser // current epoch, nil while down
	err  error              // terminal
	done chan struct{}      // closed at terminal failure or Close

	// Egress.
	nextSeq     uint64 // next data seq to assign (first is 1)
	retention   []retFrame
	retBytes    int
	lowestAvail uint64 // lowest seq still replayable

	// Ingress.
	recvNext    uint64 // next data seq expected
	rbuf        bytes.Buffer
	lastTraffic time.Time
	ackStall    time.Time // last time the peer's acks made progress

	// Rewind.
	rewindPending bool
	rewindTag     string
	latestTag     func() string     // latest completed checkpoint tag
	hasTag        func(string) bool // is the tag restorable here?

	rng   *rand.Rand // backoff jitter; guarded by mu
	stats Stats

	// onChange, guarded by mu, is invoked (without locks held) after
	// any transition that can flip Quiescent: ack progress, epoch
	// death, resume, rewind arm/clear, terminal failure. The node
	// layer points it at the hosted subsystem's Wake so a scheduler
	// stalled on the departure gate re-evaluates promptly.
	onChange func()

	// Tracer receives connection-level diagnostics.
	Tracer func(string)

	// tl, when set via SetTimeline, receives structured session
	// lifecycle events (epoch deaths, resumes, negotiated rewinds).
	// They are transient timeline kinds: epoch boundaries are
	// wall-clock phenomena and never enter the canonical export.
	tl *timeline.Recorder
}

// SetTimeline attaches a timeline recorder to the session.
func (s *Session) SetTimeline(rec *timeline.Recorder) {
	s.mu.Lock()
	s.tl = rec
	s.mu.Unlock()
}

func (s *Session) timelineEvent(what, detail string) {
	s.mu.Lock()
	tl, id := s.tl, s.id
	s.mu.Unlock()
	tl.SessionEvent(fmt.Sprintf("session-%d", id), what, detail)
}

func newSession(cfg Config, dial func() (io.ReadWriteCloser, error)) *Session {
	s := &Session{
		cfg:         cfg.withDefaults(),
		dial:        dial,
		done:        make(chan struct{}),
		nextSeq:     1,
		recvNext:    1,
		lowestAvail: 1,
		lastTraffic: time.Now(),
		ackStall:    time.Now(),
	}
	s.cond = sync.NewCond(&s.mu)
	s.rng = rand.New(rand.NewSource(cfg.Seed ^ 0x5eed5e551))
	return s
}

// Dial establishes a new session over connections produced by dialFn
// (plain TCP, or a faultnet link's Dial). The first handshake happens
// synchronously; later reconnects are automatic.
func Dial(dialFn func() (io.ReadWriteCloser, error), cfg Config) (*Session, error) {
	s := newSession(cfg, dialFn)
	if err := s.reconnect(); err != nil {
		s.fail(err)
		return nil, err
	}
	go s.redialLoop()
	s.startKeepalive()
	return s, nil
}

// ID returns the session id assigned by the accepting side.
func (s *Session) ID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.id
}

// Stats returns a snapshot of the session counters.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// SetRewindHooks installs the checkpoint hooks the rewind negotiation
// consults: latest() names this side's most recent completed
// checkpoint tag, has(tag) reports whether a tag is restorable here.
// Until both sides have hooks, a retention miss is terminal instead
// of rewinding.
func (s *Session) SetRewindHooks(latest func() string, has func(string) bool) {
	s.mu.Lock()
	s.latestTag = latest
	s.hasTag = has
	s.mu.Unlock()
}

// ClearRewind acknowledges a RewoundError: the application has
// restored the checkpoint and the stream may flow again.
func (s *Session) ClearRewind() {
	s.mu.Lock()
	s.rewindPending = false
	s.cond.Broadcast()
	s.mu.Unlock()
	s.notify()
}

// SetOnChange installs the quiescence-transition callback (see the
// onChange field). Safe from any goroutine.
func (s *Session) SetOnChange(f func()) {
	s.mu.Lock()
	s.onChange = f
	s.mu.Unlock()
}

// notify fires the onChange callback, if any, without holding mu.
func (s *Session) notify() {
	s.mu.Lock()
	f := s.onChange
	s.mu.Unlock()
	if f != nil {
		f()
	}
}

// Quiescent reports whether this session can be left unattended by
// the subsystem scheduler: nothing it has sent is still at risk and
// no negotiated rewind awaits servicing. A terminally failed session
// is quiescent — nothing will ever need the scheduler again. A
// session mid-outage is not: the coming resume may negotiate a
// checkpoint rewind, which only a live run loop can execute. The
// node layer gates finite-horizon departure on this.
func (s *Session) Quiescent() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return true
	}
	if s.rewindPending || len(s.retention) > 0 {
		return false
	}
	return s.conn != nil
}

func (s *Session) trace(format string, args ...any) {
	if s.Tracer != nil {
		s.Tracer(fmt.Sprintf(format, args...))
	}
}

// Write chunks p into data envelopes: each gets a sequence number, is
// retained for resume replay, and is sent on the current connection
// if one is up. A down link does not fail Write — bytes accumulate in
// retention and flow on resume. Writes during a pending rewind are
// discarded: they belong to the abandoned timeline.
func (s *Session) Write(p []byte) (int, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	total := 0
	for len(p) > 0 {
		n := len(p)
		if n > maxChunk {
			n = maxChunk
		}
		chunk := p[:n]
		p = p[n:]
		s.mu.Lock()
		if s.err != nil {
			err := s.err
			s.mu.Unlock()
			return total, err
		}
		if s.rewindPending {
			s.mu.Unlock()
			total += n
			continue
		}
		seq := s.nextSeq
		s.nextSeq++
		env := encodeData(seq, s.recvNext-1, chunk)
		s.retainLocked(seq, env)
		conn := s.conn
		s.stats.FramesOut++
		s.mu.Unlock()
		if conn != nil {
			if _, err := conn.Write(env); err != nil {
				// Not fatal: retention holds the envelope; the epoch
				// dies and resume will replay it.
				s.epochDead(conn, fmt.Errorf("write: %w", err))
			}
		}
		total += n
	}
	return total, nil
}

// retainLocked appends an envelope to the retention buffer, evicting
// the oldest entries when over budget. Caller holds s.mu.
func (s *Session) retainLocked(seq uint64, env []byte) {
	if len(s.retention) == 0 {
		s.ackStall = time.Now()
	}
	s.retention = append(s.retention, retFrame{seq: seq, env: env})
	s.retBytes += len(env)
	for (s.cfg.RetentionFrames > 0 && len(s.retention) > s.cfg.RetentionFrames) ||
		(s.cfg.RetentionBytes > 0 && s.retBytes > s.cfg.RetentionBytes) {
		s.retBytes -= len(s.retention[0].env)
		s.retention = s.retention[1:]
	}
	if len(s.retention) > 0 {
		s.lowestAvail = s.retention[0].seq
	} else {
		s.lowestAvail = s.nextSeq
	}
}

// pruneLocked drops retained envelopes covered by a cumulative ack.
// Caller holds s.mu.
func (s *Session) pruneLocked(ack uint64) error {
	if ack >= s.nextSeq {
		return fmt.Errorf("resilience: peer acked %d beyond our %d", ack, s.nextSeq-1)
	}
	i := 0
	for i < len(s.retention) && s.retention[i].seq <= ack {
		s.retBytes -= len(s.retention[i].env)
		i++
	}
	if i > 0 {
		s.ackStall = time.Now()
	}
	s.retention = s.retention[i:]
	if len(s.retention) > 0 {
		s.lowestAvail = s.retention[0].seq
	} else {
		s.lowestAvail = s.nextSeq
	}
	return nil
}

// Read delivers in-order session bytes. It blocks until data, a
// negotiated rewind (RewoundError until ClearRewind), or terminal
// failure.
func (s *Session) Read(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.rewindPending {
			return 0, &RewoundError{Tag: s.rewindTag}
		}
		if s.rbuf.Len() > 0 {
			return s.rbuf.Read(p)
		}
		if s.err != nil {
			return 0, s.err
		}
		s.cond.Wait()
	}
}

// Close terminates the session.
func (s *Session) Close() error {
	s.fail(fmt.Errorf("%w: closed", ErrSessionLost))
	return nil
}

// fail makes the session terminally dead.
func (s *Session) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
		close(s.done)
		if s.conn != nil {
			s.conn.Close()
			s.conn = nil
		}
		s.cond.Broadcast()
		id := s.id
		s.mu.Unlock()
		s.trace("resilience session %d: terminal: %v", id, err)
		s.notify()
		return
	}
	s.mu.Unlock()
}

// BreakConn kills the current connection epoch as if the transport
// had died — the chaos-injection entry point for "kill the TCP
// connection mid-run". The session survives: the dialing side
// reconnects and resumes. A no-op while the session is between
// epochs.
func (s *Session) BreakConn() {
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	if conn != nil {
		s.epochDead(conn, errors.New("resilience: connection killed by chaos injection"))
	}
}

// Err returns the terminal error, if the session is dead.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Alive reports whether the session is still usable: it has not been
// terminally killed (retry budget exhausted, unresumable gap, peer
// refusal). A session mid-outage — dead epoch, redial in progress —
// is still alive. This is the liveness signal behind a node's
// /healthz endpoint.
func (s *Session) Alive() bool { return s.Err() == nil }

// epochDead retires one connection epoch. The session itself stays
// alive: the dialing side's redial loop takes over, the accepting
// side waits for the peer to come back.
func (s *Session) epochDead(conn io.ReadWriteCloser, cause error) {
	s.mu.Lock()
	if s.conn == conn && conn != nil {
		s.conn = nil
		s.stats.EpochDeaths++
		id := s.id
		s.cond.Broadcast()
		s.mu.Unlock()
		conn.Close()
		s.trace("resilience session %d: epoch died: %v", id, cause)
		s.timelineEvent("epoch-death", fmt.Sprint(cause))
		s.notify()
		return
	}
	s.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// attach splices a fresh connection epoch into the session and
// replays retained envelopes the peer has not seen. Caller must not
// hold wmu or mu.
func (s *Session) attach(conn io.ReadWriteCloser, peerRecvNext uint64) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		conn.Close()
		return
	}
	if s.conn != nil {
		old := s.conn
		s.conn = nil
		old.Close()
	}
	if peerRecvNext > 0 {
		_ = s.pruneLocked(peerRecvNext - 1)
	}
	var replay []retFrame
	for _, f := range s.retention {
		if f.seq >= peerRecvNext {
			replay = append(replay, f)
		}
	}
	s.conn = conn
	s.lastTraffic = time.Now()
	s.ackStall = time.Now()
	s.stats.Resumes++
	s.stats.ReplayedFrames += int64(len(replay))
	tl, id := s.tl, s.id
	s.mu.Unlock()
	tl.SessionEvent(fmt.Sprintf("session-%d", id), "resume", fmt.Sprintf("replay=%d", len(replay)))
	go s.readLoop(conn)
	for _, f := range replay {
		if _, err := conn.Write(f.env); err != nil {
			s.epochDead(conn, fmt.Errorf("replay: %w", err))
			return
		}
	}
	if len(replay) > 0 {
		s.trace("resilience session %d: resumed, replayed %d envelopes from seq %d",
			s.ID(), len(replay), replay[0].seq)
	}
	s.notify()
}

// resetForRewind clears all stream state for a negotiated checkpoint
// rewind and arms the RewoundError the application must observe.
func (s *Session) resetForRewind(tag string) {
	s.mu.Lock()
	s.retention = nil
	s.retBytes = 0
	s.nextSeq = 1
	s.recvNext = 1
	s.lowestAvail = 1
	s.rbuf.Reset()
	s.rewindPending = true
	s.rewindTag = tag
	s.stats.Rewinds++
	s.cond.Broadcast()
	s.mu.Unlock()
	s.trace("resilience session %d: rewinding to checkpoint %q", s.ID(), tag)
	s.timelineEvent("rewind", tag)
	s.notify()
}

// readLoop consumes envelopes from one connection epoch until it
// dies.
func (s *Session) readLoop(conn io.ReadWriteCloser) {
	for {
		typ, body, err := readEnvelope(conn)
		if err != nil {
			s.mu.Lock()
			crc := s.conn == conn && isCRCish(err)
			if crc {
				s.stats.CrcKills++
			}
			s.mu.Unlock()
			s.epochDead(conn, err)
			return
		}
		if fatal := s.handleEnvelope(conn, typ, body); fatal != nil {
			s.epochDead(conn, fatal)
			return
		}
		// Acks piggybacked on the envelope may have emptied
		// retention — a scheduler stalled on the departure gate
		// needs to hear about it.
		s.notify()
	}
}

// isCRCish classifies an envelope error as corruption (vs transport
// loss) for the stats.
func isCRCish(err error) bool {
	return err != nil && (containsStr(err.Error(), "checksum") || containsStr(err.Error(), "out of range"))
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// handleEnvelope processes one validated envelope; a non-nil return
// kills the epoch.
func (s *Session) handleEnvelope(conn io.ReadWriteCloser, typ byte, body []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn != conn {
		return fmt.Errorf("superseded epoch")
	}
	s.lastTraffic = time.Now()
	switch typ {
	case typeData:
		if len(body) < 16 {
			return fmt.Errorf("short data envelope")
		}
		seq := beUint64(body[0:8])
		ack := beUint64(body[8:16])
		if err := s.pruneLocked(ack); err != nil {
			return err
		}
		switch {
		case seq == s.recvNext:
			s.rbuf.Write(body[16:])
			s.recvNext++
			s.stats.FramesIn++
			s.cond.Broadcast()
		case seq < s.recvNext:
			s.stats.DupFramesIn++ // replay overlap or faultnet dup
		default:
			s.stats.GapKills++
			return fmt.Errorf("sequence gap: got %d, want %d", seq, s.recvNext)
		}
	case typeHeartbeat:
		if len(body) != 8 {
			return fmt.Errorf("short heartbeat")
		}
		if err := s.pruneLocked(beUint64(body)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unexpected envelope type %d mid-stream", typ)
	}
	return nil
}

func beUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[7]) | uint64(b[6])<<8 | uint64(b[5])<<16 | uint64(b[4])<<24 |
		uint64(b[3])<<32 | uint64(b[2])<<40 | uint64(b[1])<<48 | uint64(b[0])<<56
}

// redialLoop (dialing side only) watches for dead epochs and
// reconnects.
func (s *Session) redialLoop() {
	for {
		s.mu.Lock()
		for s.conn != nil && s.err == nil {
			s.cond.Wait()
		}
		dead := s.err != nil
		s.mu.Unlock()
		if dead {
			return
		}
		if err := s.reconnect(); err != nil {
			s.fail(err)
			return
		}
	}
}

// reconnect dials and handshakes with exponential backoff until the
// retry budget runs out.
func (s *Session) reconnect() error {
	var last error
	for attempt := 0; attempt < s.cfg.RetryMax; attempt++ {
		if attempt > 0 || s.ID() != 0 {
			s.sleepBackoff(attempt)
		}
		if err := s.Err(); err != nil {
			return err
		}
		s.mu.Lock()
		s.stats.DialAttempts++
		s.mu.Unlock()
		conn, err := s.dial()
		if err != nil {
			last = err
			continue
		}
		if err := s.clientHandshake(conn); err != nil {
			conn.Close()
			if errors.Is(err, ErrSessionLost) {
				return err
			}
			s.trace("resilience session %d: handshake attempt %d failed: %v", s.ID(), attempt, err)
			last = err
			continue
		}
		return nil
	}
	return fmt.Errorf("%w: retry budget exhausted after %d attempts: %v", ErrSessionLost, s.cfg.RetryMax, last)
}

// sleepBackoff waits the jittered exponential delay for an attempt.
func (s *Session) sleepBackoff(attempt int) {
	d := s.cfg.RetryBase << uint(attempt)
	if d > s.cfg.RetryCap || d <= 0 {
		d = s.cfg.RetryCap
	}
	s.mu.Lock()
	jitter := 0.5 + s.rng.Float64()
	s.mu.Unlock()
	t := time.NewTimer(time.Duration(float64(d) * jitter))
	defer t.Stop()
	select {
	case <-t.C:
	case <-s.done:
	}
}

// clientHandshake runs the dialing side of the hello exchange on a
// fresh raw connection.
func (s *Session) clientHandshake(conn io.ReadWriteCloser) error {
	s.mu.Lock()
	h := hello{SessionID: s.id, RecvNext: s.recvNext, Lowest: s.lowestAvail}
	if s.latestTag != nil {
		h.Tag = s.latestTag()
	}
	s.mu.Unlock()
	setReadDeadline(conn, time.Now().Add(s.cfg.HandshakeTimeout))
	if _, err := conn.Write(encodeHello(h)); err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	typ, body, err := readEnvelope(conn)
	if err != nil {
		return fmt.Errorf("hello ack: %w", err)
	}
	setReadDeadline(conn, time.Time{})
	if typ != typeHelloAck {
		return fmt.Errorf("expected hello ack, got type %d", typ)
	}
	ack, err := decodeHelloAck(body)
	if err != nil {
		return err
	}
	switch ack.Status {
	case statusOK:
		s.mu.Lock()
		s.id = ack.SessionID
		s.mu.Unlock()
		s.attach(conn, ack.RecvNext)
		return nil
	case statusRewind:
		s.mu.Lock()
		ok := s.hasTag != nil && ack.Tag != "" && s.hasTag(ack.Tag)
		s.mu.Unlock()
		if !ok {
			return fmt.Errorf("%w: peer ordered rewind to unknown checkpoint %q", ErrSessionLost, ack.Tag)
		}
		s.resetForRewind(ack.Tag)
		s.attach(conn, 1)
		return nil
	default:
		return fmt.Errorf("%w: peer rejected resume", ErrSessionLost)
	}
}

// startKeepalive launches the heartbeat/liveness goroutine when the
// config asks for one.
func (s *Session) startKeepalive() {
	if s.cfg.Heartbeat <= 0 && s.cfg.PeerTimeout <= 0 {
		return
	}
	go s.keepaliveLoop()
}

func (s *Session) keepaliveLoop() {
	interval := s.cfg.Heartbeat
	if interval <= 0 {
		interval = s.cfg.PeerTimeout / 4
	}
	if interval <= 0 {
		return
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
		}
		s.mu.Lock()
		conn := s.conn
		idle := time.Since(s.lastTraffic)
		ack := s.recvNext - 1
		unacked := len(s.retention)
		stalled := time.Since(s.ackStall)
		s.mu.Unlock()
		if conn == nil {
			if s.cfg.PeerTimeout > 0 && idle > s.cfg.PeerTimeout {
				s.fail(fmt.Errorf("%w: no connection for %v", ErrSessionLost, idle.Round(time.Millisecond)))
				return
			}
			continue
		}
		if s.cfg.Heartbeat > 0 && idle > s.cfg.Heartbeat*time.Duration(s.cfg.HeartbeatMiss) {
			s.epochDead(conn, fmt.Errorf("heartbeat: peer silent for %v", idle.Round(time.Millisecond)))
			continue
		}
		// Retransmission timeout: egress the peer never acks (e.g. a
		// tail frame dropped by the network with no follow-up traffic
		// to expose the gap) is recovered by killing the epoch — the
		// resume handshake replays everything unacked.
		if s.cfg.Heartbeat > 0 && unacked > 0 && stalled > s.cfg.Heartbeat*time.Duration(s.cfg.HeartbeatMiss) {
			s.epochDead(conn, fmt.Errorf("ack stall: %d envelopes unacked for %v", unacked, stalled.Round(time.Millisecond)))
			continue
		}
		if s.cfg.Heartbeat > 0 {
			env := encodeHeartbeat(ack)
			s.wmu.Lock()
			s.mu.Lock()
			cur := s.conn
			s.mu.Unlock()
			if cur == conn {
				if _, err := conn.Write(env); err != nil {
					s.wmu.Unlock()
					s.epochDead(conn, fmt.Errorf("heartbeat write: %w", err))
					continue
				}
				s.mu.Lock()
				s.stats.HeartbeatsOut++
				s.mu.Unlock()
			}
			s.wmu.Unlock()
		}
	}
}

// setReadDeadline applies a read deadline when the stream supports
// one (net.Conn and faultnet.Conn do).
func setReadDeadline(c io.ReadWriteCloser, t time.Time) {
	if d, ok := c.(interface{ SetReadDeadline(time.Time) error }); ok {
		_ = d.SetReadDeadline(t)
	}
}
