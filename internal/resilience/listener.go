package resilience

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Listener accepts raw connections and demuxes them into resumable
// Sessions: the first envelope on every raw conn is a hello naming a
// session id (0 for a new session), and the listener either creates a
// session, splices the conn into an existing one, or negotiates a
// checkpoint rewind when the resume cannot be served from retention.
type Listener struct {
	ln  net.Listener
	cfg Config

	// Wrap, when set, decorates every accepted raw connection before
	// the handshake — the hook faultnet uses to injure server-side
	// links.
	Wrap func(io.ReadWriteCloser) io.ReadWriteCloser
	// Tracer receives connection-level diagnostics and is inherited
	// by accepted sessions.
	Tracer func(string)

	mu       sync.Mutex
	nextID   uint64
	sessions map[uint64]*Session
	pending  chan *Session
	closed   bool
}

// NewListener wraps a net.Listener. Call Serve (usually in a
// goroutine) to start the demux, then Accept for each new session.
func NewListener(ln net.Listener, cfg Config) *Listener {
	return &Listener{
		ln:       ln,
		cfg:      cfg.withDefaults(),
		nextID:   1,
		sessions: make(map[uint64]*Session),
		pending:  make(chan *Session, 8),
	}
}

// Addr returns the underlying listener address.
func (l *Listener) Addr() net.Addr { return l.ln.Addr() }

// Close stops the demux. Live sessions are left to their own
// lifecycles.
func (l *Listener) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	return l.ln.Close()
}

// Serve accepts raw connections until the listener closes. Each
// handshake runs in its own goroutine so a stalled peer cannot block
// the demux.
func (l *Listener) Serve() error {
	for {
		raw, err := l.ln.Accept()
		if err != nil {
			l.mu.Lock()
			closed := l.closed
			l.mu.Unlock()
			if closed {
				close(l.pending)
				return nil
			}
			return err
		}
		go l.handshake(raw)
	}
}

// Accept returns the next new session (not resumes — those splice
// into their existing Session transparently).
func (l *Listener) Accept() (*Session, error) {
	s, ok := <-l.pending
	if !ok {
		return nil, fmt.Errorf("resilience: listener closed")
	}
	return s, nil
}

func (l *Listener) trace(format string, args ...any) {
	if l.Tracer != nil {
		l.Tracer(fmt.Sprintf(format, args...))
	}
}

// handshake runs the accepting side of the hello exchange on one raw
// connection.
func (l *Listener) handshake(raw net.Conn) {
	var conn io.ReadWriteCloser = raw
	if l.Wrap != nil {
		conn = l.Wrap(raw)
	}
	setReadDeadline(conn, time.Now().Add(l.cfg.HandshakeTimeout))
	typ, body, err := readEnvelope(conn)
	if err != nil || typ != typeHello {
		conn.Close()
		return
	}
	h, err := decodeHello(body)
	if err != nil {
		conn.Close()
		return
	}
	setReadDeadline(conn, time.Time{})

	if h.SessionID == 0 {
		l.acceptNew(conn)
		return
	}
	l.mu.Lock()
	s := l.sessions[h.SessionID]
	l.mu.Unlock()
	if s == nil || s.Err() != nil {
		l.trace("resilience listener: resume for unknown session %d rejected", h.SessionID)
		conn.Write(encodeHelloAck(helloAck{Status: statusReject}))
		conn.Close()
		return
	}
	l.resume(s, conn, h)
}

// acceptNew creates a session for a first-contact hello.
func (l *Listener) acceptNew(conn io.ReadWriteCloser) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		conn.Close()
		return
	}
	id := l.nextID
	l.nextID++
	s := newSession(l.cfg, nil)
	s.id = id
	s.Tracer = l.Tracer
	l.sessions[id] = s
	l.mu.Unlock()
	if _, err := conn.Write(encodeHelloAck(helloAck{Status: statusOK, SessionID: id, RecvNext: 1})); err != nil {
		conn.Close()
		return
	}
	s.attach(conn, 1)
	s.startKeepalive()
	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	if closed {
		s.Close()
		return
	}
	l.pending <- s
}

// resume splices a reconnect into an existing session, replaying
// retained envelopes — or, when the peer's loss outruns retention on
// either side, negotiates a rewind to a common checkpoint tag.
func (l *Listener) resume(s *Session, conn io.ReadWriteCloser, h hello) {
	s.mu.Lock()
	// Can we serve the peer's resume point from our retention, and
	// can the peer serve ours from theirs?
	canServe := h.RecvNext >= s.lowestAvail && h.RecvNext <= s.nextSeq
	canGet := s.recvNext >= h.Lowest
	recvNext := s.recvNext
	latest := ""
	if s.latestTag != nil {
		latest = s.latestTag()
	}
	hasPeerTag := s.hasTag != nil && h.Tag != "" && s.hasTag(h.Tag)
	s.mu.Unlock()

	if canServe && canGet {
		if _, err := conn.Write(encodeHelloAck(helloAck{Status: statusOK, SessionID: s.id, RecvNext: recvNext})); err != nil {
			conn.Close()
			return
		}
		s.attach(conn, h.RecvNext)
		return
	}

	// Retention miss: pick a checkpoint both sides can restore. The
	// client proposed its latest completed tag; prefer that when we
	// hold it too, else offer our own only if it matches the
	// client's (we cannot know the client's full tag set, so a
	// mismatch is a reject).
	tag := ""
	if hasPeerTag {
		tag = h.Tag
	} else if latest != "" && latest == h.Tag {
		tag = latest
	}
	if tag == "" {
		l.trace("resilience listener: session %d retention miss with no common checkpoint (peer wants %d, we retain from %d)",
			s.id, h.RecvNext, s.lowestAvail)
		conn.Write(encodeHelloAck(helloAck{Status: statusReject, SessionID: s.id}))
		conn.Close()
		s.fail(fmt.Errorf("%w: retention miss with no common checkpoint", ErrSessionLost))
		return
	}
	l.trace("resilience listener: session %d retention miss, rewinding to checkpoint %q", s.id, tag)
	if _, err := conn.Write(encodeHelloAck(helloAck{Status: statusRewind, SessionID: s.id, Tag: tag})); err != nil {
		conn.Close()
		return
	}
	s.resetForRewind(tag)
	s.attach(conn, 1)
}
