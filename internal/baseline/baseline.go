// Package baseline provides the non-simulated reference load the
// paper compares against: it timed loading the same page with Sun's
// HotJava browser "as a rough reference for estimating simulation
// overhead". Here the reference is a direct fetch of the identical
// synthetic page over a real loopback TCP connection, followed by the
// same parse and image-scan work a native browser would do — no
// co-simulation kernel anywhere on the path.
package baseline

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/wubbleu"
)

// Server is a minimal page server: one request line (the URL), one
// length-prefixed body.
type Server struct {
	store *wubbleu.Store
	ln    net.Listener
	wg    sync.WaitGroup
}

// Serve starts the reference server and returns its address.
func Serve(store *wubbleu.Store, addr string) (*Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("baseline: listen: %w", err)
	}
	s := &Server{store: store, ln: ln}
	s.wg.Add(1)
	go s.loop()
	return s, ln.Addr().String(), nil
}

func (s *Server) loop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer c.Close()
			r := bufio.NewReader(c)
			url, err := r.ReadString('\n')
			if err != nil {
				return
			}
			page := s.store.Get(strings.TrimSpace(url))
			fmt.Fprintf(c, "%d\n", len(page))
			c.Write(page)
		}()
	}
}

// Close stops the server.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Result is one reference load.
type Result struct {
	Bytes   int
	Images  int
	Elapsed time.Duration
}

// Load performs one direct page load against the reference server:
// fetch, parse, and a byte-scan of each image standing in for decode
// work. It returns the wall-clock duration — the paper's 0.54 s
// HotJava row.
func Load(addr, url string) (Result, error) {
	start := time.Now()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return Result{}, fmt.Errorf("baseline: dial: %w", err)
	}
	defer c.Close()
	if _, err := fmt.Fprintf(c, "%s\n", url); err != nil {
		return Result{}, err
	}
	r := bufio.NewReader(c)
	var n int
	if _, err := fmt.Fscanf(r, "%d\n", &n); err != nil {
		return Result{}, fmt.Errorf("baseline: bad header: %w", err)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Result{}, fmt.Errorf("baseline: body: %w", err)
	}
	page, err := wubbleu.ParsePage(body)
	if err != nil {
		return Result{}, err
	}
	// Native "decode": touch every image byte.
	var sink byte
	for _, img := range page.Images {
		for _, b := range img {
			sink ^= b
		}
	}
	_ = sink
	return Result{Bytes: n, Images: len(page.Images), Elapsed: time.Since(start)}, nil
}
