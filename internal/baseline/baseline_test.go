package baseline

import (
	"testing"

	"repro/internal/wubbleu"
)

func TestLoad(t *testing.T) {
	store, err := wubbleu.NewStore()
	if err != nil {
		t.Fatal(err)
	}
	srv, addr, err := Serve(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := Load(addr, wubbleu.DefaultURL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != wubbleu.DefaultPageSize {
		t.Fatalf("fetched %d bytes, want %d", res.Bytes, wubbleu.DefaultPageSize)
	}
	if res.Images != wubbleu.DefaultImageCount {
		t.Fatalf("images = %d", res.Images)
	}
	if res.Elapsed <= 0 {
		t.Fatal("non-positive elapsed time")
	}
}

func TestLoadMissingPageFails(t *testing.T) {
	store, err := wubbleu.NewStore()
	if err != nil {
		t.Fatal(err)
	}
	srv, addr, err := Serve(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// A missing page comes back as an empty body, which fails the
	// parse.
	if _, err := Load(addr, "http://nowhere/"); err == nil {
		t.Fatal("missing page parsed successfully")
	}
}

func TestLoadDialError(t *testing.T) {
	if _, err := Load("127.0.0.1:1", "x"); err == nil {
		t.Fatal("dial to dead port succeeded")
	}
}
