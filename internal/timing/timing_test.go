package timing

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/vtime"
)

func TestCycles(t *testing.T) {
	m := &Model{Name: "t", ClockHz: 1_000_000_000, CyclesPerInstr: 1, LoadPenalty: 2, StorePenalty: 1, BranchPenalty: 3, MultPenalty: 4}
	b := Block{Instr: 10, Loads: 2, Stores: 1, Branches: 1, Mults: 1}
	if got := m.Cycles(b); got != 10+4+1+3+4 {
		t.Fatalf("Cycles = %d, want 22", got)
	}
	// At 1 GHz, 22 cycles = 22 ticks.
	if got := m.Cost(b); got != 22 {
		t.Fatalf("Cost = %v, want 22", got)
	}
}

func TestCostScalesWithClock(t *testing.T) {
	slow := &Model{Name: "slow", ClockHz: 25_000_000, CyclesPerInstr: 1}
	fast := &Model{Name: "fast", ClockHz: 100_000_000, CyclesPerInstr: 1}
	b := Block{Instr: 100}
	if slow.Cost(b) != 4*fast.Cost(b) {
		t.Fatalf("4x clock should be 4x cheaper: %v vs %v", slow.Cost(b), fast.Cost(b))
	}
}

func TestValidate(t *testing.T) {
	bad := &Model{Name: "bad", ClockHz: 0, CyclesPerInstr: 1}
	if bad.Validate() == nil {
		t.Fatal("zero clock accepted")
	}
	bad2 := &Model{Name: "bad2", ClockHz: 1, CyclesPerInstr: 0}
	if bad2.Validate() == nil {
		t.Fatal("zero CPI accepted")
	}
	if _, err := NewEstimator(bad); err == nil {
		t.Fatal("NewEstimator accepted invalid model")
	}
}

func TestLibraryModelsValid(t *testing.T) {
	for _, m := range []*Model{I960, EmbeddedCPU, CellularASIC, ServerCPU} {
		if err := m.Validate(); err != nil {
			t.Errorf("library model %s invalid: %v", m.Name, err)
		}
	}
}

func TestEstimatorCharges(t *testing.T) {
	est, err := NewEstimator(EmbeddedCPU)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewSubsystem("tm")
	var final vtime.Time
	b := core.BehaviorFunc(func(p *core.Proc) error {
		est.Charge(p, Block{Instr: 50})
		est.ChargeCycles(p, 50)
		final = p.Time()
		return nil
	})
	s.NewComponent("c", b)
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	// 100 cycles at 50 MHz = 2000 ns.
	if final != 2000 {
		t.Fatalf("local time = %v, want 2000ns", final)
	}
	if est.Charged != 2000 {
		t.Fatalf("Charged = %v, want 2000ns", est.Charged)
	}
}

// Property: cost is monotone in every field of the block.
func TestCostMonotoneProperty(t *testing.T) {
	m := EmbeddedCPU
	f := func(i, l, s, br, mu uint8, extra uint8) bool {
		b := Block{Instr: int(i), Loads: int(l), Stores: int(s), Branches: int(br), Mults: int(mu)}
		bigger := b
		bigger.Instr += int(extra)
		return m.Cost(bigger) >= m.Cost(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
