// Package timing implements Pia's basic-block timing estimation.
//
// Pia characterizes a specific processor by its timing characteristics
// in the form of a basic-block timing estimator: timing estimates are
// embedded in the (simulated) source code, and when the simulator
// encounters one it updates the component's version of virtual time.
// The paper performed the estimation by hand; this package provides
// the models such hand estimates plug into, plus a small library of
// representative embedded processors.
package timing

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/vtime"
)

// Block describes the instruction mix of one basic block.
type Block struct {
	Instr    int // total instructions (covers simple ALU ops)
	Loads    int // memory loads
	Stores   int // memory stores
	Branches int // taken branches
	Mults    int // multiply/divide class ops
}

// Model is a processor timing characterization: a clock and per-class
// cycle costs.
type Model struct {
	Name    string
	ClockHz int64

	// Cycle costs per instruction class. Instr counts every
	// instruction once; the class fields add penalty cycles on top.
	CyclesPerInstr int64
	LoadPenalty    int64
	StorePenalty   int64
	BranchPenalty  int64
	MultPenalty    int64
}

// Validate reports configuration errors.
func (m *Model) Validate() error {
	if m.ClockHz <= 0 {
		return fmt.Errorf("timing: model %q has non-positive clock", m.Name)
	}
	if m.CyclesPerInstr <= 0 {
		return fmt.Errorf("timing: model %q has non-positive base CPI", m.Name)
	}
	return nil
}

// Cycles returns the estimated cycle count for a basic block.
func (m *Model) Cycles(b Block) int64 {
	c := int64(b.Instr) * m.CyclesPerInstr
	c += int64(b.Loads) * m.LoadPenalty
	c += int64(b.Stores) * m.StorePenalty
	c += int64(b.Branches) * m.BranchPenalty
	c += int64(b.Mults) * m.MultPenalty
	if c < 0 {
		c = 0
	}
	return c
}

// Cost converts a basic block into virtual time on this processor.
// One tick is one nanosecond, so cost = cycles / (GHz).
func (m *Model) Cost(b Block) vtime.Duration {
	cycles := m.Cycles(b)
	// ticks = cycles * 1e9 / ClockHz, computed without overflow for
	// realistic cycle counts.
	return vtime.Duration(cycles * int64(vtime.Second) / m.ClockHz)
}

// CyclesCost converts a raw cycle count into virtual time.
func (m *Model) CyclesCost(cycles int64) vtime.Duration {
	return vtime.Duration(cycles * int64(vtime.Second) / m.ClockHz)
}

// Estimator charges basic-block costs against a component's local
// time — the runtime half of the embedded annotations.
type Estimator struct {
	Model *Model
	// Charged accumulates total charged virtual time (diagnostics).
	Charged vtime.Duration
}

// NewEstimator builds an estimator for the model.
func NewEstimator(m *Model) (*Estimator, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Estimator{Model: m}, nil
}

// Charge advances the component's local time by the block's cost.
// This is the call sites compiled from "timing estimates embedded in
// the source code" make.
func (e *Estimator) Charge(p *core.Proc, b Block) {
	d := e.Model.Cost(b)
	e.Charged += d
	p.Advance(d)
}

// ChargeCycles advances local time by a raw cycle count.
func (e *Estimator) ChargeCycles(p *core.Proc, cycles int64) {
	d := e.Model.CyclesCost(cycles)
	e.Charged += d
	p.Advance(d)
}

// Library of representative processor characterizations. Values are
// plausible for the period's parts; experiments only depend on their
// relative shape.
var (
	// I960 approximates the Intel i960 embedded processor the paper's
	// remote evaluation discussion mentions: ~33 MHz, simple
	// pipeline.
	I960 = &Model{
		Name:           "i960",
		ClockHz:        33_000_000,
		CyclesPerInstr: 1,
		LoadPenalty:    2,
		StorePenalty:   1,
		BranchPenalty:  2,
		MultPenalty:    4,
	}

	// EmbeddedCPU is a generic mid-1990s embedded RISC at 50 MHz —
	// the WubbleU handheld's main processor.
	EmbeddedCPU = &Model{
		Name:           "embedded-risc",
		ClockHz:        50_000_000,
		CyclesPerInstr: 1,
		LoadPenalty:    1,
		StorePenalty:   1,
		BranchPenalty:  1,
		MultPenalty:    3,
	}

	// CellularASIC is the fixed-function cellular-modem chip: one
	// operation per clock at 20 MHz.
	CellularASIC = &Model{
		Name:           "cellular-asic",
		ClockHz:        20_000_000,
		CyclesPerInstr: 1,
	}

	// ServerCPU is the dedicated server's workstation-class CPU
	// (200 MHz Pentium Pro class, as in the paper's testbed).
	ServerCPU = &Model{
		Name:           "server-cpu",
		ClockHz:        200_000_000,
		CyclesPerInstr: 1,
		LoadPenalty:    1,
		StorePenalty:   1,
		BranchPenalty:  1,
		MultPenalty:    2,
	}
)
