package flight

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/timeline"
	"repro/internal/vtime"
)

func TestNilEverythingIsInert(t *testing.T) {
	var r *Recorder
	r.Record("a", "b", "c", 1)
	r.Trip("x", "y")
	r.SetInfo("k", "v")
	r.AttachRegistry(nil)
	r.AttachTimeline(nil)
	r.OnTrip(func(*Dump) {})
	if d := r.BuildDump(); d != nil {
		t.Fatalf("nil recorder dump = %+v, want nil", d)
	}
	if ok, _ := r.Tripped(); ok {
		t.Fatal("nil recorder cannot trip")
	}

	var h *Hub
	h.PublishEvent(Transition{Kind: "x"})
	h.PublishMetrics(1, []MetricDelta{{Name: "n"}})
	if h.Subscribers() != 0 || h.Dropped() != 0 || h.Sent() != 0 {
		t.Fatal("nil hub must read zero")
	}

	var o *Observer
	o.Event("a", "b", "c", 1)
	o.Trip("x", "y")
	if o.Enabled() {
		t.Fatal("nil observer must be disabled")
	}

	var s *Sampler
	s.Tick()
	s.Start()
	s.Stop()
	s.SetPoll(func() {})
}

func TestDisabledPathZeroAllocs(t *testing.T) {
	var r *Recorder
	if n := testing.AllocsPerRun(200, func() {
		r.Record("session", "s-1", "stepped", 42)
	}); n != 0 {
		t.Fatalf("nil recorder Record = %v allocs/op, want 0", n)
	}
	var o *Observer
	if n := testing.AllocsPerRun(200, func() {
		o.Event("session", "s-1", "stepped", 42)
	}); n != 0 {
		t.Fatalf("nil observer Event = %v allocs/op, want 0", n)
	}
}

func TestEnabledRecordZeroAllocs(t *testing.T) {
	// The ring is pre-allocated and entries are overwritten in place:
	// even the ENABLED record path must not allocate.
	r := New(64)
	if n := testing.AllocsPerRun(200, func() {
		r.Record("session", "s-1", "stepped", 42)
	}); n != 0 {
		t.Fatalf("enabled Record = %v allocs/op, want 0", n)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := New(4)
	for i := 1; i <= 10; i++ {
		r.Record("k", fmt.Sprintf("e%d", i), "", int64(i))
	}
	d := r.BuildDump()
	if len(d.Entries) != 4 {
		t.Fatalf("entries = %d, want 4", len(d.Entries))
	}
	for i, e := range d.Entries {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("entry %d seq = %d, want %d (oldest-first tail)", i, e.Seq, want)
		}
	}
	if d.Recorded != 10 {
		t.Fatalf("recorded_total = %d, want 10", d.Recorded)
	}
}

func TestTripFreezesAndDumps(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("pia_x").Add(7)
	tl := timeline.NewRecorder(0)
	tl.Drive("sub", "comp", "net", vtime.Time(5), nil)

	r := New(8)
	r.SetInfo("node", "n1")
	r.AttachRegistry(reg)
	r.AttachTimeline(tl)

	dumps := make(chan *Dump, 1)
	r.OnTrip(func(d *Dump) { dumps <- d })

	r.Record("session", "s-1", "created", 0)
	r.Trip("session-failed", "boom")
	r.Record("session", "s-2", "too late", 0) // after freeze: counted, not kept
	r.Trip("second", "ignored")               // first trip wins

	var d *Dump
	select {
	case d = <-dumps:
	case <-time.After(5 * time.Second):
		t.Fatal("OnTrip never fired")
	}
	if !d.Tripped || d.Reason != "session-failed" || d.Detail != "boom" {
		t.Fatalf("dump header = %+v", d)
	}
	if d.AfterFreeze != 1 {
		t.Fatalf("dropped_after_freeze = %d, want 1", d.AfterFreeze)
	}
	if d.Info["node"] != "n1" || d.Info["version"] == "" {
		t.Fatalf("info = %v", d.Info)
	}
	// Ring holds the pre-failure record plus the trip marker itself.
	last := d.Entries[len(d.Entries)-1]
	if last.Kind != "trip" || last.Name != "session-failed" {
		t.Fatalf("last entry = %+v, want the trip marker", last)
	}
	foundMetric := false
	for _, s := range d.Metrics {
		if s.Name == "pia_x" && s.Value == 7 {
			foundMetric = true
		}
	}
	if !foundMetric {
		t.Fatalf("dump metrics missing registry state: %+v", d.Metrics)
	}
	if len(d.Timeline) != 1 || d.Timeline[0].Comp != "comp" {
		t.Fatalf("dump timeline tail = %+v", d.Timeline)
	}
	if ok, why := r.Tripped(); !ok || why != "session-failed" {
		t.Fatalf("Tripped() = %v %q", ok, why)
	}

	// The whole dump must round-trip as self-contained JSON.
	var buf strings.Builder
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Dump
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if back.Reason != "session-failed" || len(back.Entries) != len(d.Entries) {
		t.Fatalf("round-trip lost data: %+v", back)
	}
}

func TestTripSafeUnderCallerLock(t *testing.T) {
	// Callers trip while holding their own locks (session mutex,
	// scheduler goroutine). A registry collector that takes such a
	// lock must not deadlock against Trip, because the dump is built
	// asynchronously with no recorder lock held.
	var callerMu sync.Mutex
	reg := metrics.NewRegistry()
	reg.AddCollector(func(emit func(metrics.Sample)) {
		callerMu.Lock()
		defer callerMu.Unlock()
		emit(metrics.Sample{Name: "locked", Kind: metrics.KindGauge, Value: 1})
	})
	r := New(8)
	r.AttachRegistry(reg)
	done := make(chan *Dump, 1)
	r.OnTrip(func(d *Dump) { done <- d })

	callerMu.Lock()
	r.Trip("under-lock", "")
	callerMu.Unlock() // dump goroutine can now snapshot

	select {
	case d := <-done:
		if len(d.Metrics) != 1 {
			t.Fatalf("dump metrics = %+v", d.Metrics)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock: dump never completed")
	}
}

func TestHubDropsStalledSubscriber(t *testing.T) {
	h := NewHub()
	stalled := h.subscribe("", "")
	healthy := h.subscribe("", "")
	if h.Subscribers() != 2 {
		t.Fatalf("subscribers = %d", h.Subscribers())
	}

	// Publish past the stalled subscriber's queue depth, draining the
	// healthy queue as we go; never read the stalled one. Every call
	// must return promptly even though nobody reads `stalled`.
	var got int
	start := time.Now()
	for i := 0; i < subQueueCap+16; i++ {
		h.PublishEvent(Transition{Kind: "session", Name: "s", Value: int64(i)})
		for drained := false; !drained; {
			select {
			case <-healthy.ch:
				got++
			default:
				drained = true
			}
		}
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("publishing blocked on a stalled subscriber: %v", el)
	}
	if h.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", h.Dropped())
	}
	if h.Subscribers() != 1 {
		t.Fatalf("subscribers after drop = %d, want 1", h.Subscribers())
	}
	// The stalled channel must be closed so its handler unwinds.
	select {
	case _, ok := <-stalled.ch:
		if !ok {
			break
		}
		// Drain buffered frames until close.
		for range stalled.ch {
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled subscriber channel never closed")
	}
	h.unsubscribe(stalled) // idempotent with the publisher-side drop
	h.unsubscribe(healthy)
}

func TestHubFilters(t *testing.T) {
	h := NewHub()
	all := h.subscribe("", "")
	tenant := h.subscribe("s-1", "")
	prefixed := h.subscribe("", "pia_sched")
	defer func() { h.unsubscribe(all); h.unsubscribe(tenant); h.unsubscribe(prefixed) }()

	h.PublishEvent(Transition{Kind: "session", Name: "s-1", Session: "s-1"})
	h.PublishEvent(Transition{Kind: "session", Name: "s-2", Session: "s-2"})
	h.PublishEvent(Transition{Kind: "health", Name: "node"}) // global

	recv := func(s *subscriber) []string {
		var names []string
		for {
			select {
			case f := <-s.ch:
				var tr Transition
				_ = json.Unmarshal(f.data, &tr)
				names = append(names, tr.Name)
			default:
				return names
			}
		}
	}
	if got := recv(all); len(got) != 3 {
		t.Fatalf("unfiltered subscriber got %v", got)
	}
	if got := recv(tenant); strings.Join(got, ",") != "s-1,node" {
		t.Fatalf("tenant subscriber got %v, want [s-1 node]", got)
	}
	recv(prefixed) // drain its queued transitions before the metrics frame

	h.PublishMetrics(1, []MetricDelta{
		{Name: `pia_sched_steps{sub="a"}`, Value: 5, Delta: 5},
		{Name: `pia_wire_bytes{node="n"}`, Value: 9, Delta: 9},
		{Name: `pia_sched_steps{sub="b",session="s-1"}`, Value: 2, Delta: 2},
	})
	var mf metricFrame
	_ = json.Unmarshal((<-prefixed.ch).data, &mf)
	if len(mf.Changed) != 2 {
		t.Fatalf("prefix filter passed %+v", mf.Changed)
	}
	for _, d := range mf.Changed {
		if !strings.HasPrefix(d.Name, "pia_sched") {
			t.Fatalf("prefix filter leaked %s", d.Name)
		}
	}
	_ = json.Unmarshal((<-tenant.ch).data, &mf)
	if len(mf.Changed) != 1 || !strings.Contains(mf.Changed[0].Name, `session="s-1"`) {
		t.Fatalf("session filter passed %+v", mf.Changed)
	}
}

func TestWatchSSEEndToEnd(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.Counter("pia_live")
	rec := New(32)
	rec.AttachRegistry(reg)
	h := NewHub()
	smp := NewSampler(reg, rec, h, time.Hour) // ticked manually
	defer smp.Stop()

	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/?prefix=pia_")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %s", ct)
	}
	rd := bufio.NewReader(resp.Body)
	readEvent := func() (string, string) {
		var event, data string
		for {
			line, err := rd.ReadString('\n')
			if err != nil {
				t.Fatalf("stream read: %v", err)
			}
			line = strings.TrimRight(line, "\n")
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data = strings.TrimPrefix(line, "data: ")
			case line == "" && event != "":
				return event, data
			}
		}
	}

	if ev, _ := readEvent(); ev != "hello" {
		t.Fatalf("first event = %s, want hello", ev)
	}

	// Wait for the subscriber to land before publishing.
	deadline := time.Now().Add(5 * time.Second)
	for h.Subscribers() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	c.Add(3)
	smp.Tick()
	ev, data := readEvent()
	if ev != "metrics" {
		t.Fatalf("event = %s, want metrics", ev)
	}
	var mf metricFrame
	if err := json.Unmarshal([]byte(data), &mf); err != nil {
		t.Fatalf("bad metrics frame %q: %v", data, err)
	}
	if len(mf.Changed) != 1 || mf.Changed[0].Name != "pia_live" || mf.Changed[0].Delta != 3 {
		t.Fatalf("metrics frame = %+v", mf.Changed)
	}

	// Unchanged registry → no frame; next change streams only deltas.
	smp.Tick()
	c.Add(2)
	smp.Tick()
	ev, data = readEvent()
	_ = json.Unmarshal([]byte(data), &mf)
	if ev != "metrics" || mf.Changed[0].Value != 5 || mf.Changed[0].Delta != 2 {
		t.Fatalf("delta frame = %s %+v", ev, mf.Changed)
	}

	h.PublishEvent(Transition{Kind: "trip", Name: "quorum-dead"})
	ev, data = readEvent()
	var tr Transition
	_ = json.Unmarshal([]byte(data), &tr)
	if ev != "transition" || tr.Name != "quorum-dead" {
		t.Fatalf("transition frame = %s %+v", ev, tr)
	}

	// The sampler also fed the ring.
	d := rec.BuildDump()
	foundRing := false
	for _, e := range d.Entries {
		if e.Kind == "metric" && e.Name == "pia_live" {
			foundRing = true
		}
	}
	if !foundRing {
		t.Fatalf("sampler did not record metric deltas in ring: %+v", d.Entries)
	}

	// Teardown: unblock any handler stuck in Write before closing.
	resp.Body.Close()
	srv.CloseClientConnections()
}

func TestSamplerPollHook(t *testing.T) {
	reg := metrics.NewRegistry()
	rec := New(8)
	smp := NewSampler(reg, rec, nil, time.Hour)
	defer smp.Stop()
	polled := 0
	smp.SetPoll(func() {
		polled++
		rec.Trip("quorum-dead", "2/5 members")
	})
	smp.Tick()
	if polled != 1 {
		t.Fatalf("poll ran %d times, want 1", polled)
	}
	if ok, why := rec.Tripped(); !ok || why != "quorum-dead" {
		t.Fatalf("poll-driven trip missing: %v %q", ok, why)
	}
}

func TestSamplerStartStop(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.Counter("pia_t")
	rec := New(64)
	smp := NewSampler(reg, rec, nil, time.Millisecond)
	smp.Start()
	smp.Start() // idempotent
	c.Add(1)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if d := rec.BuildDump(); len(d.Entries) > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	smp.Stop()
	smp.Stop() // idempotent
	if d := rec.BuildDump(); len(d.Entries) == 0 {
		t.Fatal("ticker goroutine never sampled")
	}
}

func TestRecorderHTTPHandler(t *testing.T) {
	rec := New(8)
	rec.Record("session", "s-1", "created", 0)
	srv := httptest.NewServer(rec)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d Dump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if d.Tripped || len(d.Entries) != 1 || d.Entries[0].Name != "s-1" {
		t.Fatalf("handler dump = %+v", d)
	}
}
