package flight

import (
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// DefaultInterval is the sampling cadence when NewSampler is given a
// non-positive interval.
const DefaultInterval = time.Second

// Sampler periodically snapshots a metrics registry, computes which
// samples changed since the previous tick, and feeds the deltas to
// the flight recorder ring and the streaming hub. An optional Poll
// hook runs first on every tick so callers can fold in checks that
// are not registry-driven (e.g. mesh quorum health).
//
// The sampler owns its goroutine; the scheduler, merge loop, and
// scrape path never run sampling work.
type Sampler struct {
	reg      *metrics.Registry
	rec      *Recorder
	hub      *Hub
	interval time.Duration

	mu   sync.Mutex
	poll func()
	prev map[string]int64

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewSampler wires a registry to a recorder and/or hub (either may be
// nil). The interval defaults to DefaultInterval if non-positive.
func NewSampler(reg *metrics.Registry, rec *Recorder, hub *Hub, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = DefaultInterval
	}
	return &Sampler{
		reg:      reg,
		rec:      rec,
		hub:      hub,
		interval: interval,
		prev:     make(map[string]int64),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// SetPoll installs a hook run at the start of every tick (before the
// registry snapshot). Used by pianode's mesh mode to trip the
// recorder on quorum loss.
func (s *Sampler) SetPoll(f func()) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.poll = f
	s.mu.Unlock()
}

// Tick runs one sampling pass synchronously: poll hook, snapshot,
// delta computation, publication. Exported so tests and one-shot
// callers can sample deterministically without the goroutine.
func (s *Sampler) Tick() {
	if s == nil {
		return
	}
	s.mu.Lock()
	poll := s.poll
	s.mu.Unlock()
	if poll != nil {
		poll()
	}

	snap := s.reg.Snapshot()
	now := time.Now().UnixNano()

	s.mu.Lock()
	var changed []MetricDelta
	for _, sm := range snap {
		// Histogram detail stays in /metrics; the stream carries the
		// observation count so watchers still see activity.
		old, seen := s.prev[sm.Name]
		if sm.Value == old && seen {
			continue
		}
		s.prev[sm.Name] = sm.Value
		changed = append(changed, MetricDelta{
			Name:  sm.Name,
			Value: sm.Value,
			Delta: sm.Value - old,
		})
	}
	s.mu.Unlock()
	if len(changed) == 0 {
		return
	}
	// Deterministic order for the ring and the stream.
	sort.Slice(changed, func(i, j int) bool { return changed[i].Name < changed[j].Name })
	for _, d := range changed {
		s.rec.Record("metric", d.Name, "", d.Value)
	}
	s.hub.PublishMetrics(now, changed)
}

// Start launches the sampling goroutine. Idempotent.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.startOnce.Do(func() {
		go func() {
			defer close(s.done)
			t := time.NewTicker(s.interval)
			defer t.Stop()
			for {
				select {
				case <-s.stop:
					return
				case <-t.C:
					s.Tick()
				}
			}
		}()
	})
}

// Stop halts the sampling goroutine and waits for it to exit.
// Idempotent; safe on a sampler that was never started.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() { close(s.stop) })
	s.startOnce.Do(func() { close(s.done) }) // never started: unblock Stop
	<-s.done
}
