// Package flight is Pia's black-box layer: a bounded, allocation-
// recycled ring of recent observability events (the flight recorder),
// a fan-out hub for live SSE telemetry streaming, and the glue that
// freezes the recorder into a self-contained JSON post-mortem when a
// failure trigger fires.
//
// The same design constraint that shapes internal/metrics applies
// here: simulations that never enable flight recording must pay
// nothing. Every entry point is nil-receiver-safe, and the enabled
// record path writes into a pre-allocated ring slot — no per-record
// allocation.
//
// Lock discipline: the recorder mutex is a leaf lock. Trip only
// freezes the ring and stamps the reason under it, then builds the
// dump (registry snapshot, timeline tail) on a fresh goroutine with
// no locks held — so Trip is safe to call from the scheduler
// goroutine, from under a session mutex, or from a node's pump
// goroutine without deadlocking against the collectors that those
// paths feed.
package flight

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/timeline"
)

// DefaultRingSize is the recorder capacity when New is given a
// non-positive size.
const DefaultRingSize = 512

// dumpTimelineTail caps how many trailing timeline events a dump
// embeds; the full timeline is still available via WriteTimeline.
const dumpTimelineTail = 256

// Entry is one recorded observation: a session/health transition, a
// changed metric, or a trigger note. Entries live in a fixed ring and
// are overwritten in place; strings are retained by reference.
type Entry struct {
	Seq    uint64 `json:"seq"`
	WallNS int64  `json:"wall_ns"`
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	Detail string `json:"detail,omitempty"`
	Value  int64  `json:"value,omitempty"`
}

// Dump is a frozen, self-contained post-mortem: recent recorder
// entries oldest-first, the final metrics snapshot, the tail of the
// canonical timeline, and the build/identity info of the process that
// produced it.
type Dump struct {
	GeneratedNS int64             `json:"generated_ns"`
	Tripped     bool              `json:"tripped"`
	Reason      string            `json:"reason,omitempty"`
	Detail      string            `json:"detail,omitempty"`
	TrippedNS   int64             `json:"tripped_ns,omitempty"`
	Info        map[string]string `json:"info,omitempty"`
	Recorded    uint64            `json:"recorded_total"`
	AfterFreeze uint64            `json:"dropped_after_freeze,omitempty"`
	Entries     []Entry           `json:"entries"`
	Metrics     []metrics.Sample  `json:"metrics,omitempty"`
	Timeline    []timeline.Event  `json:"timeline,omitempty"`
}

// WriteJSON writes the dump as indented JSON.
func (d *Dump) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Recorder is the flight recorder: a fixed ring of Entry slots
// recycled in place. A nil *Recorder is inert, which is the whole
// disabled path.
type Recorder struct {
	mu     sync.Mutex
	ring   []Entry
	next   int    // next write slot
	filled bool   // ring has wrapped at least once
	total  uint64 // lifetime records
	frozen bool
	reason string
	detail string
	tripNS int64
	after  uint64 // records attempted after freeze
	info   map[string]string
	reg    *metrics.Registry
	tl     *timeline.Recorder
	onTrip []func(*Dump)
}

// New returns a recorder with the given ring capacity (DefaultRingSize
// if size <= 0).
func New(size int) *Recorder {
	if size <= 0 {
		size = DefaultRingSize
	}
	return &Recorder{
		ring: make([]Entry, size),
		info: map[string]string{
			"version": metrics.BuildVersion(),
		},
	}
}

// SetInfo stamps an identity key (node name, mode, session id) into
// every future dump. Nil-safe.
func (r *Recorder) SetInfo(k, v string) {
	if r == nil || k == "" {
		return
	}
	r.mu.Lock()
	r.info[k] = v
	r.mu.Unlock()
}

// AttachRegistry sets the metrics registry whose final snapshot dumps
// embed. Nil-safe; last attach wins.
func (r *Recorder) AttachRegistry(reg *metrics.Registry) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.reg = reg
	r.mu.Unlock()
}

// AttachTimeline sets the timeline recorder whose tail dumps embed.
// Nil-safe; last attach wins.
func (r *Recorder) AttachTimeline(tl *timeline.Recorder) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.tl = tl
	r.mu.Unlock()
}

// OnTrip registers a callback invoked (on a fresh goroutine, no locks
// held) with the post-mortem dump after the recorder trips. Nil-safe.
func (r *Recorder) OnTrip(f func(*Dump)) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	r.onTrip = append(r.onTrip, f)
	r.mu.Unlock()
}

// Record appends one entry to the ring, overwriting the oldest slot
// when full. After a trip the ring is frozen: the post-mortem keeps
// the moments before the failure, and later records only bump a
// counter. Nil-safe and allocation-free.
func (r *Recorder) Record(kind, name, detail string, value int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.frozen {
		r.after++
		r.mu.Unlock()
		return
	}
	r.total++
	e := &r.ring[r.next]
	e.Seq = r.total
	e.WallNS = time.Now().UnixNano()
	e.Kind = kind
	e.Name = name
	e.Detail = detail
	e.Value = value
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.filled = true
	}
	r.mu.Unlock()
}

// Tripped reports whether the recorder has frozen, and why.
func (r *Recorder) Tripped() (bool, string) {
	if r == nil {
		return false, ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frozen, r.reason
}

// Trip freezes the ring on the first failure trigger and kicks off
// dump delivery to the OnTrip callbacks on a fresh goroutine. Only
// the first trip wins; later ones are no-ops. Safe to call while
// holding any caller-side lock: nothing beyond the recorder's own
// leaf mutex is touched synchronously.
func (r *Recorder) Trip(reason, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.frozen {
		r.mu.Unlock()
		return
	}
	r.total++
	e := &r.ring[r.next]
	e.Seq = r.total
	e.WallNS = time.Now().UnixNano()
	e.Kind = "trip"
	e.Name = reason
	e.Detail = detail
	e.Value = 0
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.filled = true
	}
	r.frozen = true
	r.reason = reason
	r.detail = detail
	r.tripNS = e.WallNS
	cbs := append([]func(*Dump){}, r.onTrip...)
	r.mu.Unlock()
	if len(cbs) == 0 {
		return
	}
	go func() {
		d := r.BuildDump()
		for _, cb := range cbs {
			cb(d)
		}
	}()
}

// BuildDump assembles a dump from the current state: ring entries
// oldest-first, the attached registry's snapshot, and the attached
// timeline's tail. Works whether or not the recorder has tripped, so
// GET /debug/flight is useful as a live "recent history" view too.
// The recorder mutex is released before the registry and timeline are
// consulted — their own collectors may take wider locks.
func (r *Recorder) BuildDump() *Dump {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	d := &Dump{
		GeneratedNS: time.Now().UnixNano(),
		Tripped:     r.frozen,
		Reason:      r.reason,
		Detail:      r.detail,
		TrippedNS:   r.tripNS,
		Recorded:    r.total,
		AfterFreeze: r.after,
		Info:        make(map[string]string, len(r.info)),
	}
	for k, v := range r.info {
		d.Info[k] = v
	}
	n := r.next
	if r.filled {
		d.Entries = make([]Entry, 0, len(r.ring))
		d.Entries = append(d.Entries, r.ring[n:]...)
		d.Entries = append(d.Entries, r.ring[:n]...)
	} else {
		d.Entries = append([]Entry(nil), r.ring[:n]...)
	}
	reg, tl := r.reg, r.tl
	r.mu.Unlock()

	d.Metrics = reg.Snapshot()
	if tl != nil {
		evs := tl.Events()
		if len(evs) > dumpTimelineTail {
			evs = evs[len(evs)-dumpTimelineTail:]
		}
		d.Timeline = evs
	}
	return d
}

// ServeHTTP serves the current dump as JSON — the GET /debug/flight
// handler. The dump is built at serve time with no locks held across
// the write.
func (r *Recorder) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	d := r.BuildDump()
	if d == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = d.WriteJSON(w)
}

// Observer bundles the recorder and the streaming hub behind one
// nil-safe handle, so instrumented layers hold a single pointer and
// a nil Observer (or nil members) costs one branch.
type Observer struct {
	Rec *Recorder
	Hub *Hub
}

// Event records a transition in the ring and streams it to watchers.
// Transitions whose kind is "session" carry the name as the session
// id so ?session= filters apply.
func (o *Observer) Event(kind, name, detail string, value int64) {
	if o == nil {
		return
	}
	o.Rec.Record(kind, name, detail, value)
	if o.Hub != nil {
		session := ""
		if kind == "session" {
			session = name
		}
		o.Hub.PublishEvent(Transition{
			Kind:    kind,
			Name:    name,
			Detail:  detail,
			Value:   value,
			Session: session,
			WallNS:  time.Now().UnixNano(),
		})
	}
}

// Trip freezes the recorder (see Recorder.Trip) and streams the trip
// as a transition so live watchers see the failure the moment it
// happens.
func (o *Observer) Trip(reason, detail string) {
	if o == nil {
		return
	}
	o.Rec.Trip(reason, detail)
	if o.Hub != nil {
		o.Hub.PublishEvent(Transition{
			Kind:   "trip",
			Name:   reason,
			Detail: detail,
			WallNS: time.Now().UnixNano(),
		})
	}
}

// Enabled reports whether the observer does anything at all.
func (o *Observer) Enabled() bool {
	return o != nil && (o.Rec != nil || o.Hub != nil)
}
