package flight

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// subQueueCap bounds each subscriber's frame queue. A client that
// falls this many frames behind is dropped rather than ever exerting
// backpressure on a publisher. Sized to absorb lifecycle bursts —
// a catalog teardown emits one "stopped" transition per live session
// faster than any reader can drain frames — while still catching a
// genuinely stalled client within one sampling interval's traffic.
const subQueueCap = 256

// Transition is one streamed state change: a session lifecycle event,
// a health flip, a peer loss, a trip.
type Transition struct {
	Kind    string `json:"kind"`
	Name    string `json:"name"`
	Detail  string `json:"detail,omitempty"`
	Value   int64  `json:"value,omitempty"`
	Session string `json:"session,omitempty"`
	WallNS  int64  `json:"wall_ns"`
}

// MetricDelta is one changed metric in a sampling interval.
type MetricDelta struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
	Delta int64  `json:"delta"`
}

// metricFrame is the JSON body of one "metrics" SSE event.
type metricFrame struct {
	WallNS  int64         `json:"wall_ns"`
	Changed []MetricDelta `json:"changed"`
}

// frame is one SSE event queued to a subscriber.
type frame struct {
	event string
	data  []byte
}

type subscriber struct {
	ch      chan frame
	session string // ?session= filter ("" = all)
	prefix  string // ?prefix= filter on metric names ("" = all)
	gone    bool   // closed and removed (guarded by Hub.mu)
}

// matchTransition reports whether a transition passes the
// subscriber's filters. Global transitions (no session) always pass
// the session filter so a tenant watching one session still sees
// node-wide failures.
func (s *subscriber) matchTransition(t Transition) bool {
	if s.session != "" && t.Session != "" && t.Session != s.session {
		return false
	}
	if s.prefix != "" && t.Kind == "metric" && !strings.HasPrefix(t.Name, s.prefix) {
		return false
	}
	return true
}

// matchMetric reports whether a metric sample name passes the
// subscriber's filters. The session filter matches the rendered
// session="id" label the service-mode aggregator stamps on tenant
// samples.
func (s *subscriber) matchMetric(name string) bool {
	if s.prefix != "" && !strings.HasPrefix(name, s.prefix) {
		return false
	}
	if s.session != "" && !strings.Contains(name, `session="`+s.session+`"`) {
		return false
	}
	return true
}

// Hub fans observability frames out to SSE subscribers. Delivery is
// strictly non-blocking: each subscriber owns a bounded queue, and a
// publisher that finds the queue full closes and drops the subscriber
// on the spot. Publishers (scheduler hooks, the sampler, session
// lifecycle paths) therefore never wait on a slow or dead client. A
// nil *Hub is inert.
type Hub struct {
	mu      sync.Mutex
	subs    map[*subscriber]struct{}
	dropped atomic.Uint64
	sent    atomic.Uint64
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{subs: make(map[*subscriber]struct{})}
}

// Subscribers returns the current live subscriber count.
func (h *Hub) Subscribers() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Dropped returns how many subscribers have been dropped for falling
// behind.
func (h *Hub) Dropped() uint64 {
	if h == nil {
		return 0
	}
	return h.dropped.Load()
}

// Sent returns how many frames have been enqueued to subscribers.
func (h *Hub) Sent() uint64 {
	if h == nil {
		return 0
	}
	return h.sent.Load()
}

// enqueueLocked delivers a frame to one subscriber or drops it.
// Caller holds h.mu, which is what makes close-vs-send race-free.
func (h *Hub) enqueueLocked(s *subscriber, f frame) {
	select {
	case s.ch <- f:
		h.sent.Add(1)
	default:
		// Queue full: the client is stalled. Cut it loose so no
		// publisher ever blocks on it.
		h.removeLocked(s)
		h.dropped.Add(1)
	}
}

func (h *Hub) removeLocked(s *subscriber) {
	if s.gone {
		return
	}
	s.gone = true
	delete(h.subs, s)
	close(s.ch)
}

// PublishEvent streams one transition to every matching subscriber.
// Nil-safe and non-blocking.
func (h *Hub) PublishEvent(t Transition) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.subs) == 0 {
		return
	}
	b, err := json.Marshal(t)
	if err != nil {
		return
	}
	for s := range h.subs {
		if s.matchTransition(t) {
			h.enqueueLocked(s, frame{event: "transition", data: b})
		}
	}
}

// PublishMetrics streams a batch of changed metrics. Each subscriber
// receives only the samples passing its filters; subscribers whose
// filtered view is empty get no frame. Nil-safe and non-blocking.
func (h *Hub) PublishMetrics(wallNS int64, changed []MetricDelta) {
	if h == nil || len(changed) == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for s := range h.subs {
		if s.gone {
			continue
		}
		view := changed
		if s.session != "" || s.prefix != "" {
			view = nil
			for _, d := range changed {
				if s.matchMetric(d.Name) {
					view = append(view, d)
				}
			}
			if len(view) == 0 {
				continue
			}
		}
		b, err := json.Marshal(metricFrame{WallNS: wallNS, Changed: view})
		if err != nil {
			continue
		}
		h.enqueueLocked(s, frame{event: "metrics", data: b})
	}
}

// subscribe registers a new subscriber with the given filters.
func (h *Hub) subscribe(session, prefix string) *subscriber {
	s := &subscriber{
		ch:      make(chan frame, subQueueCap),
		session: session,
		prefix:  prefix,
	}
	h.mu.Lock()
	h.subs[s] = struct{}{}
	h.mu.Unlock()
	return s
}

// unsubscribe removes a subscriber when its handler returns (client
// hung up). Idempotent with a publisher-side drop.
func (h *Hub) unsubscribe(s *subscriber) {
	h.mu.Lock()
	h.removeLocked(s)
	h.mu.Unlock()
}

// ServeHTTP is the GET /watch handler: a Server-Sent Events stream of
// "metrics" and "transition" frames. Query parameters:
//
//	?session=<id>   only that tenant's transitions and samples
//	                (plus global transitions)
//	?prefix=<base>  only metric names with this prefix
//
// The stream ends when the client disconnects or when the hub drops
// the subscriber for stalling.
func (h *Hub) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if h == nil {
		http.Error(w, "telemetry streaming disabled", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	// An SSE stream outlives any sane server WriteTimeout; clear the
	// per-request deadline so the hosting server can keep a tight
	// timeout for its other endpoints. Best-effort: a server that
	// does not support it just keeps its timeout.
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	q := req.URL.Query()
	sub := h.subscribe(q.Get("session"), q.Get("prefix"))
	defer h.unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write([]byte("event: hello\ndata: {\"wall_ns\":" +
		jsonInt(time.Now().UnixNano()) + "}\n\n")); err != nil {
		return
	}
	fl.Flush()

	ctx := req.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case f, ok := <-sub.ch:
			if !ok {
				// Dropped by a publisher for stalling.
				return
			}
			if _, err := w.Write([]byte("event: " + f.event + "\ndata: ")); err != nil {
				return
			}
			if _, err := w.Write(f.data); err != nil {
				return
			}
			if _, err := w.Write([]byte("\n\n")); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// jsonInt formats an int64 without pulling in fmt on the stream path.
func jsonInt(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}
