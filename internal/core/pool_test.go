package core

import (
	"fmt"
	"hash/fnv"
	"sync"
	"testing"

	"repro/internal/vtime"
)

// poolFingerprint runs the seeded system with its rounds dispatched
// into the given shared pool and returns the same fingerprint as
// runFingerprint.
func poolFingerprint(t *testing.T, seed int64, pool *SharedPool) (string, Stats) {
	t.Helper()
	s, cons, polls := randomParallelSystem(seed)
	s.SetPool(pool)
	defer pool.Forget(s)

	driveDigest := fnv.New64a()
	driveCounts := make(map[string]int64)
	s.OnDrive = func(net, src string, tt vtime.Time, v any) {
		driveCounts[net]++
		fmt.Fprintf(driveDigest, "%s|%s|%d|%v\n", net, src, tt, v)
	}
	traceDigest := fnv.New64a()
	s.Tracer = func(line string) { fmt.Fprintf(traceDigest, "%s\n", line) }

	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatalf("seed %d shared pool: %v", seed, err)
	}

	sig := signature(cons)
	for i, po := range polls {
		sig += fmt.Sprintf("|poll%d:", i)
		for j, v := range po.Got {
			sig += fmt.Sprintf("%d@%d,", v, po.Times[j])
		}
	}
	for _, c := range s.Components() {
		sig += fmt.Sprintf("|%s@%d", c.Name(), c.LocalTime())
	}
	sig += fmt.Sprintf("|now=%d", s.Now())
	for i := 0; ; i++ {
		name := fmt.Sprintf("n%d", i)
		if s.Net(name) == nil {
			break
		}
		sig += fmt.Sprintf("|%s=%d", name, driveCounts[name])
	}
	st := s.Stats()
	sig += fmt.Sprintf("|drv=%x|trc=%x|deliv=%d|drives=%d",
		driveDigest.Sum64(), traceDigest.Sum64(), st.Deliveries, st.Drives)
	return sig, st
}

// TestSharedPoolEquivalence: a subsystem whose rounds run on a shared
// pool must reproduce the sequential scheduler bit-for-bit, at every
// pool size.
func TestSharedPoolEquivalence(t *testing.T) {
	var rounds int64
	for seed := int64(1); seed <= 20; seed++ {
		want, _ := runFingerprint(t, seed, 0)
		for _, n := range []int{1, 2, 4} {
			pool := NewSharedPool(n)
			got, st := poolFingerprint(t, seed, pool)
			pool.Close()
			if got != want {
				t.Fatalf("seed %d: shared pool n=%d diverged from sequential\nseq: %s\npool: %s",
					seed, n, want, got)
			}
			rounds += st.ParRounds
		}
	}
	if rounds == 0 {
		t.Fatalf("no seed produced a parallel round on the shared pool")
	}
}

// TestSharedPoolConcurrentSubsystems: many subsystems running
// concurrently on ONE shared pool must each reproduce their own
// sequential fingerprint — interleaving another tenant's jobs between
// a subsystem's round members must be invisible in its results.
func TestSharedPoolConcurrentSubsystems(t *testing.T) {
	const tenants = 12
	want := make([]string, tenants)
	for i := 0; i < tenants; i++ {
		want[i], _ = runFingerprint(t, int64(i+1), 0)
	}

	pool := NewSharedPool(4)
	defer pool.Close()
	got := make([]string, tenants)
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], _ = poolFingerprint(t, int64(i+1), pool)
		}(i)
	}
	wg.Wait()
	for i := 0; i < tenants; i++ {
		if got[i] != want[i] {
			t.Fatalf("tenant %d diverged on the shared pool\nseq:  %s\npool: %s",
				i, want[i], got[i])
		}
	}
}

// TestSharedPoolForgetReuse: attach, run, forget, repeat — the ring
// bookkeeping must survive subsystems coming and going.
func TestSharedPoolForgetReuse(t *testing.T) {
	pool := NewSharedPool(2)
	defer pool.Close()
	want, _ := runFingerprint(t, 3, 0)
	for i := 0; i < 5; i++ {
		got, _ := poolFingerprint(t, 3, pool)
		if got != want {
			t.Fatalf("iteration %d diverged", i)
		}
	}
}
