package core

import (
	"fmt"

	"repro/internal/vtime"
)

// Port is a named connection point on a component. Ports are attached
// to nets; a component sends by driving a port and receives events
// that arrive on the nets its ports attach to.
type Port struct {
	Name      string
	comp      *Component // owning component; nil for hidden ports
	net       *Net
	iface     string // owning interface name, "" if direct
	hidden    bool   // hidden ports belong to channel endpoints
	sink      Sink   // delivery target for hidden ports
	sinkOwner string // diagnostic label for the sink
}

// Component returns the owning component, or nil for a hidden port.
func (p *Port) Component() *Component { return p.comp }

// Net returns the net the port is attached to, or nil.
func (p *Port) Net() *Net { return p.net }

// Hidden reports whether this is a hidden port (owned by a channel
// endpoint rather than a user component).
func (p *Port) Hidden() bool { return p.hidden }

// Interface is an organizational grouping of ports on a component, as
// in Pia's component/interface/port/net hierarchy. It carries no
// simulation semantics of its own: connecting and sending happen at
// port granularity.
type Interface struct {
	Name  string
	Ports []string
}

// Sink receives events delivered to a hidden port. It is called on
// the subsystem scheduler goroutine and must not block.
type Sink func(m Msg)

// Msg is a value delivered to a port.
type Msg struct {
	Time   vtime.Time // delivery time (== receiver local time on return from Recv)
	Sent   vtime.Time // time the driver sent it
	Port   string     // receiving port name
	Net    string     // net it travelled on
	Value  any
	Source string // driving component
}

// Net connects ports. A value driven onto the net is delivered to
// every attached port except the driver's after the net's propagation
// delay. Nets are intra-subsystem objects; a logical net split across
// subsystems is represented by one Net per side plus hidden ports
// bridged by a channel (package channel).
type Net struct {
	Name  string
	Delay vtime.Duration

	sub   *Subsystem
	ports []*Port

	// last value driven, for Read/sampling semantics
	lastValue  any
	lastTime   vtime.Time
	lastSource string
}

// Ports returns the ports attached to the net.
func (n *Net) Ports() []*Port { return n.ports }

// LastValue returns the most recently driven value and its drive time.
func (n *Net) LastValue() (any, vtime.Time) { return n.lastValue, n.lastTime }

// attach wires a port to the net.
func (n *Net) attach(p *Port) error {
	if p.net != nil {
		return fmt.Errorf("core: port %s already attached to net %s", p.Name, p.net.Name)
	}
	p.net = n
	n.ports = append(n.ports, p)
	return nil
}

// detach unwires a port from the net. Returns false when the port was
// not attached here.
func (n *Net) detach(p *Port) bool {
	if p.net != n {
		return false
	}
	for i, q := range n.ports {
		if q == p {
			n.ports = append(n.ports[:i], n.ports[i+1:]...)
			p.net = nil
			return true
		}
	}
	return false
}

// String implements fmt.Stringer.
func (n *Net) String() string {
	return fmt.Sprintf("net(%s, %d ports, delay=%v)", n.Name, len(n.ports), n.Delay)
}
