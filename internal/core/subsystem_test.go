package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/vtime"
)

// producer sends Count integers on port "out", spaced Period apart.
// It paces itself against absolute times derived from its state, so
// it is resume-exact under checkpoint/restore.
type producer struct {
	Next   int
	Count  int
	Period vtime.Duration
}

func (pr *producer) Run(p *Proc) error {
	for pr.Next < pr.Count {
		p.DelayUntil(vtime.Time(vtime.Duration(pr.Next+1) * pr.Period))
		p.Send("out", pr.Next)
		pr.Next++
	}
	return nil
}

func (pr *producer) SaveState() ([]byte, error)  { return GobSave(pr) }
func (pr *producer) RestoreState(b []byte) error { return GobRestore(pr, b) }

// consumer records everything it receives on port "in".
type consumer struct {
	Got   []int
	Times []vtime.Time
}

func (co *consumer) Run(p *Proc) error {
	for {
		m, ok := p.Recv("in")
		if !ok {
			return nil
		}
		co.Got = append(co.Got, m.Value.(int))
		co.Times = append(co.Times, m.Time)
	}
}

func (co *consumer) SaveState() ([]byte, error)  { return GobSave(co) }
func (co *consumer) RestoreState(b []byte) error { return GobRestore(co, b) }

// buildPipe wires producer -> consumer over one net.
func buildPipe(t *testing.T, delay vtime.Duration, count int, period vtime.Duration) (*Subsystem, *producer, *consumer) {
	t.Helper()
	s := NewSubsystem("pipe")
	pr := &producer{Count: count, Period: period}
	co := &consumer{}
	pc, err := s.NewComponent("prod", pr)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := s.NewComponent("cons", co)
	if err != nil {
		t.Fatal(err)
	}
	out, err := pc.AddPort("out")
	if err != nil {
		t.Fatal(err)
	}
	in, err := cc.AddPort("in")
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.NewNet("link", delay)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Connect(n, out, in); err != nil {
		t.Fatal(err)
	}
	return s, pr, co
}

func TestPipeDeliversInOrder(t *testing.T) {
	s, _, co := buildPipe(t, 2, 5, 10)
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if len(co.Got) != 5 {
		t.Fatalf("consumer got %d values, want 5", len(co.Got))
	}
	for i, v := range co.Got {
		if v != i {
			t.Fatalf("value %d = %d, want %d", i, v, i)
		}
		want := vtime.Time((i+1)*10 + 2)
		if co.Times[i] != want {
			t.Fatalf("delivery time %d = %v, want %v", i, co.Times[i], want)
		}
	}
}

func TestSubsystemTimeInvariant(t *testing.T) {
	// System time must never exceed any component's local time.
	s, _, _ := buildPipe(t, 1, 20, 3)
	violated := false
	s.OnStep = func(now vtime.Time) {
		for _, c := range s.Components() {
			if !c.Done() && now.After(c.LocalTime()) {
				violated = true
			}
		}
	}
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if violated {
		t.Fatal("subsystem time exceeded a component's local time")
	}
}

func TestRunUntilPausesAndResumes(t *testing.T) {
	s, _, co := buildPipe(t, 0, 10, 10)
	if err := s.Run(35); err != nil {
		t.Fatal(err)
	}
	if got := len(co.Got); got != 3 {
		t.Fatalf("after Run(35): %d deliveries, want 3", got)
	}
	if s.Now() != 35 {
		t.Fatalf("Now = %v, want 35", s.Now())
	}
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if got := len(co.Got); got != 10 {
		t.Fatalf("after full run: %d deliveries, want 10", got)
	}
}

func TestRecvDeadline(t *testing.T) {
	s := NewSubsystem("dl")
	var timeouts, got int
	poller := BehaviorFunc(func(p *Proc) error {
		for i := 0; i < 5; i++ {
			if _, ok := p.RecvDeadline(p.Time().Add(10), "in"); ok {
				got++
			} else {
				timeouts++
			}
		}
		return nil
	})
	c, _ := s.NewComponent("poll", poller)
	in, _ := c.AddPort("in")
	sender := BehaviorFunc(func(p *Proc) error {
		p.Delay(25)
		p.Send("out", 1)
		return nil
	})
	sc, _ := s.NewComponent("send", sender)
	out, _ := sc.AddPort("out")
	n, _ := s.NewNet("w", 0)
	if err := s.Connect(n, in, out); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if got != 1 || timeouts != 4 {
		t.Fatalf("got=%d timeouts=%d, want 1/4", got, timeouts)
	}
}

func TestMultiListenerFanout(t *testing.T) {
	s := NewSubsystem("bus")
	mk := func(name string) *consumer {
		co := &consumer{}
		c, _ := s.NewComponent(name, co)
		c.AddPort("in")
		return co
	}
	a, b := mk("a"), mk("b")
	src := BehaviorFunc(func(p *Proc) error {
		p.Delay(1)
		p.Send("out", 42)
		return nil
	})
	sc, _ := s.NewComponent("src", src)
	sc.AddPort("out")
	n, _ := s.NewNet("bus", 0)
	if err := s.Connect(n, sc.Port("out"), s.Component("a").Port("in"), s.Component("b").Port("in")); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if len(a.Got) != 1 || len(b.Got) != 1 || a.Got[0] != 42 || b.Got[0] != 42 {
		t.Fatalf("fanout wrong: a=%v b=%v", a.Got, b.Got)
	}
}

func TestDriverDoesNotHearItself(t *testing.T) {
	s := NewSubsystem("loop")
	heard := 0
	self := BehaviorFunc(func(p *Proc) error {
		p.Send("io", 1)
		if _, ok := p.RecvDeadline(100, "io"); ok {
			heard++
		}
		return nil
	})
	c, _ := s.NewComponent("self", self)
	c.AddPort("io")
	n, _ := s.NewNet("w", 0)
	s.Connect(n, c.Port("io"))
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if heard != 0 {
		t.Fatal("component heard its own drive")
	}
}

func TestSendAtSchedulesFuture(t *testing.T) {
	s := NewSubsystem("future")
	src := BehaviorFunc(func(p *Proc) error {
		p.SendAt("out", "later", 100)
		return nil
	})
	co := &consumer{}
	sc, _ := s.NewComponent("src", src)
	sc.AddPort("out")
	cc, _ := s.NewComponent("cons", React(reactorRecorder{co}))
	cc.AddPort("in")
	n, _ := s.NewNet("w", 0)
	s.Connect(n, sc.Port("out"), cc.Port("in"))
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if len(co.Times) != 1 || co.Times[0] != 100 {
		t.Fatalf("SendAt delivery = %v, want [100]", co.Times)
	}
}

// reactorRecorder adapts consumer storage to the Reactor interface.
type reactorRecorder struct{ co *consumer }

func (r reactorRecorder) OnMessage(p *Proc, m Msg) error {
	if v, ok := m.Value.(int); ok {
		r.co.Got = append(r.co.Got, v)
	}
	r.co.Times = append(r.co.Times, m.Time)
	return nil
}

func (r reactorRecorder) SaveState() ([]byte, error)  { return GobSave(r.co) }
func (r reactorRecorder) RestoreState(b []byte) error { return GobRestore(r.co, b) }

func TestDeterminism(t *testing.T) {
	run := func() ([]int, []vtime.Time) {
		s := NewSubsystem("det")
		co := &consumer{}
		cc, _ := s.NewComponent("cons", co)
		cc.AddPort("in")
		n, _ := s.NewNet("bus", 1)
		s.Connect(n, cc.Port("in"))
		// Three producers colliding at identical times.
		for i := 0; i < 3; i++ {
			id := i
			pb := BehaviorFunc(func(p *Proc) error {
				for k := 0; k < 4; k++ {
					p.Delay(5)
					p.Send("out", id*100+k)
				}
				return nil
			})
			pc, _ := s.NewComponent(fmt.Sprintf("p%d", id), pb)
			pc.AddPort("out")
			s.Connect(n, pc.Port("out"))
		}
		if err := s.Run(vtime.Infinity); err != nil {
			t.Fatal(err)
		}
		return co.Got, co.Times
	}
	g1, t1 := run()
	g2, t2 := run()
	if len(g1) != 12 {
		t.Fatalf("got %d deliveries, want 12", len(g1))
	}
	for i := range g1 {
		if g1[i] != g2[i] || t1[i] != t2[i] {
			t.Fatalf("nondeterministic at %d: (%d,%v) vs (%d,%v)", i, g1[i], t1[i], g2[i], t2[i])
		}
	}
}

func TestComponentErrorPropagates(t *testing.T) {
	s := NewSubsystem("err")
	bad := BehaviorFunc(func(p *Proc) error {
		p.Delay(1)
		return fmt.Errorf("boom")
	})
	s.NewComponent("bad", bad)
	err := s.Run(vtime.Infinity)
	if err == nil {
		t.Fatal("expected error from failing component")
	}
}

func TestComponentPanicBecomesError(t *testing.T) {
	s := NewSubsystem("panic")
	bad := BehaviorFunc(func(p *Proc) error {
		p.Delay(1)
		panic("kaboom")
	})
	s.NewComponent("bad", bad)
	err := s.Run(vtime.Infinity)
	if err == nil {
		t.Fatal("expected panic to surface as an error")
	}
}

func TestStop(t *testing.T) {
	s := NewSubsystem("stop")
	spinner := BehaviorFunc(func(p *Proc) error {
		for {
			p.Delay(1)
		}
	})
	s.NewComponent("spin", spinner)
	var wg sync.WaitGroup
	wg.Add(1)
	var runErr error
	go func() {
		defer wg.Done()
		runErr = s.Run(vtime.Infinity)
	}()
	s.Stop()
	wg.Wait()
	if runErr != ErrStopped {
		t.Fatalf("Run returned %v, want ErrStopped", runErr)
	}
	s.Teardown()
}

func TestInjectDrive(t *testing.T) {
	s := NewSubsystem("inj")
	co := &consumer{}
	cc, _ := s.NewComponent("cons", co)
	cc.AddPort("in")
	n, _ := s.NewNet("ext", 0)
	s.Connect(n, cc.Port("in"))
	s.AddExternal()
	done := make(chan error, 1)
	go func() { done <- s.Run(vtime.Infinity) }()
	for i := 0; i < 3; i++ {
		if err := s.InjectDrive("ext", "outside", vtime.Time(10*(i+1)), i); err != nil {
			t.Fatal(err)
		}
	}
	// Injections queued before the external source disappears are
	// guaranteed to be routed before the run terminates.
	s.RemoveExternal()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(co.Got) != 3 || co.Got[2] != 2 {
		t.Fatalf("injected deliveries wrong: %v", co.Got)
	}
	if co.Times[2] != 30 {
		t.Fatalf("injected time wrong: %v", co.Times)
	}
}

func TestInjectUnknownNet(t *testing.T) {
	s := NewSubsystem("inj2")
	if err := s.InjectDrive("nope", "x", 1, 1); err == nil {
		t.Fatal("expected error for unknown net")
	}
}

func TestHiddenPortSink(t *testing.T) {
	s := NewSubsystem("hidden")
	var seen []Msg
	src := BehaviorFunc(func(p *Proc) error {
		p.Delay(3)
		p.Send("out", "x")
		return nil
	})
	sc, _ := s.NewComponent("src", src)
	sc.AddPort("out")
	n, _ := s.NewNet("w", 2)
	s.Connect(n, sc.Port("out"))
	_, err := s.AttachHidden(n, "w$chan", "chan0", func(m Msg) { seen = append(seen, m) })
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0].Time != 5 || seen[0].Value != "x" {
		t.Fatalf("sink saw %v", seen)
	}
}

func TestBuilderErrors(t *testing.T) {
	s := NewSubsystem("b")
	if _, err := s.NewComponent("c", nil); err == nil {
		t.Fatal("nil behaviour accepted")
	}
	c, _ := s.NewComponent("c", BehaviorFunc(func(p *Proc) error { return nil }))
	if _, err := s.NewComponent("c", BehaviorFunc(func(p *Proc) error { return nil })); err == nil {
		t.Fatal("duplicate component accepted")
	}
	c.AddPort("p")
	if _, err := c.AddPort("p"); err == nil {
		t.Fatal("duplicate port accepted")
	}
	n, _ := s.NewNet("n", 0)
	if _, err := s.NewNet("n", 0); err == nil {
		t.Fatal("duplicate net accepted")
	}
	if _, err := s.NewNet("neg", -1); err == nil {
		t.Fatal("negative delay accepted")
	}
	if err := s.Connect(n, c.Port("p")); err != nil {
		t.Fatal(err)
	}
	if err := s.Connect(n, c.Port("p")); err == nil {
		t.Fatal("double attach accepted")
	}
	s2 := NewSubsystem("other")
	if err := s2.Connect(n); err == nil {
		t.Fatal("cross-subsystem net accepted")
	}
}

func TestInterfaceGrouping(t *testing.T) {
	s := NewSubsystem("i")
	c, _ := s.NewComponent("c", BehaviorFunc(func(p *Proc) error { return nil }))
	ifc, err := c.AddInterface("bus", "addr", "data")
	if err != nil {
		t.Fatal(err)
	}
	if len(ifc.Ports) != 2 || c.Port("addr") == nil || c.Port("data") == nil {
		t.Fatal("interface did not create its ports")
	}
	if _, err := c.AddInterface("bus"); err == nil {
		t.Fatal("duplicate interface accepted")
	}
}

func TestEOFDeliveredOnce(t *testing.T) {
	s := NewSubsystem("eof")
	falses := 0
	stubborn := BehaviorFunc(func(p *Proc) error {
		for {
			_, ok := p.Recv()
			if !ok {
				falses++
				// Misbehave: keep receiving anyway.
				if falses > 1 {
					return fmt.Errorf("got EOF twice")
				}
				continue
			}
		}
	})
	s.NewComponent("stubborn", stubborn)
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if falses != 1 {
		t.Fatalf("EOF delivered %d times, want 1", falses)
	}
}

func TestStatsCounters(t *testing.T) {
	s, _, _ := buildPipe(t, 0, 4, 1)
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Drives != 4 || st.Deliveries != 4 || st.Steps == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNextEventTime(t *testing.T) {
	s, _, _ := buildPipe(t, 0, 2, 10)
	if got := s.NextEventTime(); got != 0 {
		t.Fatalf("initial NextEventTime = %v, want 0", got)
	}
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if got := s.NextEventTime(); got != vtime.Infinity {
		t.Fatalf("final NextEventTime = %v, want Infinity", got)
	}
}
