package core

import (
	"sort"

	"repro/internal/vtime"
)

// Memory models a processor component's local memory for interrupt
// consistency (Pia §2.1.1). Addresses known to be touched by
// interrupt handlers can be statically marked *synchronous*: the
// component must then ensure its local time matches system time when
// it reads or writes them (the same requirement Pia applies to all
// receives). Addresses not statically known are handled
// optimistically: ordinary accesses proceed without synchronizing,
// every read is logged, and when an interrupt handler's write is
// found to land before a logged read the simulator marks the address
// synchronous and rewinds using the checkpoint facilities.
//
// Memory belongs to one component and is only accessed from that
// component's goroutine while it holds the run token.
type Memory struct {
	c    *Component
	data map[uint32]uint64

	syncAddrs map[uint32]bool // survives rollback: dynamic marks persist

	// readLog records optimistic reads since the last checkpoint,
	// newest appended last. Cleared on checkpoint capture and
	// restore.
	readLog []memAccess

	// Violations counts detected consistency violations (for tests
	// and benchmarks). Survives rollback.
	Violations int64
}

type memAccess struct {
	addr uint32
	t    vtime.Time
}

func newMemory(c *Component) *Memory {
	return &Memory{
		c:         c,
		data:      make(map[uint32]uint64),
		syncAddrs: make(map[uint32]bool),
	}
}

// MarkSynchronous statically marks addresses as touched by interrupt
// handlers, forcing synchronization on every access.
func (m *Memory) MarkSynchronous(addrs ...uint32) {
	for _, a := range addrs {
		m.syncAddrs[a] = true
	}
}

// Synchronous reports whether the address is marked.
func (m *Memory) Synchronous(addr uint32) bool { return m.syncAddrs[addr] }

// SyncCount returns how many addresses are currently marked.
func (m *Memory) SyncCount() int { return len(m.syncAddrs) }

// Read returns the value at addr. Reads of synchronous addresses
// first wait for subsystem time to catch up with the component's
// local time; optimistic reads are logged for violation detection.
// Must be called from the owning component's goroutine.
func (m *Memory) Read(p *Proc, addr uint32) uint64 {
	if m.syncAddrs[addr] {
		p.Sync()
		p.DrainInterrupts()
	} else {
		m.readLog = append(m.readLog, memAccess{addr, p.Time()})
	}
	return m.data[addr]
}

// Write stores v at addr from the component's main computation.
// Synchronous addresses synchronize first.
func (m *Memory) Write(p *Proc, addr uint32, v uint64) {
	if m.syncAddrs[addr] {
		p.Sync()
		p.DrainInterrupts()
	}
	m.data[addr] = v
}

// HandlerWrite stores v at addr on behalf of an interrupt handler
// whose interrupt was raised at virtual time raised. If the main
// computation already read addr at a local time later than raised,
// the optimistic assumption was violated: the address is marked
// synchronous and the subsystem is asked to rewind to a checkpoint at
// or before the interrupt time. The caller should simply continue;
// the rollback unwinds it at the next scheduling step, and
// re-execution will order the accesses correctly because the address
// is now synchronous.
//
// HandlerWrite returns true when a violation was detected.
func (m *Memory) HandlerWrite(p *Proc, addr uint32, v uint64, raised vtime.Time) bool {
	if m.violatedBy(addr, raised) {
		m.Violations++
		m.syncAddrs[addr] = true
		m.c.tracef("%s: consistency violation at addr %#x (irq @%v, read later); rewinding", m.c.name, addr, raised)
		// The rewind must put THIS component before the interrupt
		// time — a checkpoint whose cut time is early enough may
		// still hold this component far ahead (it ran uninterrupted).
		m.c.sub.RequestRollbackComponent(m.c.name, raised)
		return true
	}
	m.data[addr] = v
	return false
}

// violatedBy reports whether addr was optimistically read at a local
// time strictly later than t.
func (m *Memory) violatedBy(addr uint32, t vtime.Time) bool {
	for _, acc := range m.readLog {
		if acc.addr == addr && acc.t > t {
			return true
		}
	}
	return false
}

// snapshotData copies the memory contents for a checkpoint image.
// The read log survives captures — a later rewind may land on an
// older checkpoint, and reads since that one still matter for
// violation detection — but entries older than the oldest retained
// checkpoint can never be rewound to and are pruned.
func (m *Memory) snapshotData() map[uint32]uint64 {
	out := make(map[uint32]uint64, len(m.data))
	for k, v := range m.data {
		out[k] = v
	}
	if cks := m.c.sub.checkpoints; len(cks) > 0 {
		if img := cks[0].Image(m.c.name); img != nil {
			floor := img.LocalTime
			kept := m.readLog[:0]
			for _, acc := range m.readLog {
				if acc.t > floor {
					kept = append(kept, acc)
				}
			}
			m.readLog = kept
		}
	}
	return out
}

// restoreData resets the contents from a checkpoint image. The
// synchronous marks deliberately survive: rewinding exists precisely
// so that re-execution runs with the newly marked addresses.
func (m *Memory) restoreData(img map[uint32]uint64) {
	m.data = make(map[uint32]uint64, len(img))
	for k, v := range img {
		m.data[k] = v
	}
	m.readLog = m.readLog[:0]
}

// Addresses returns the allocated addresses in ascending order
// (diagnostics).
func (m *Memory) Addresses() []uint32 {
	out := make([]uint32, 0, len(m.data))
	for a := range m.data {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
