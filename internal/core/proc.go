package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/event"
	"repro/internal/vtime"
)

// Proc is the execution context handed to a component's Run. All of a
// component's interaction with virtual time and the rest of the
// system goes through it. A Proc is only valid on the component's own
// goroutine.
type Proc struct {
	c *Component
}

// Time returns the component's local virtual time.
func (p *Proc) Time() vtime.Time { return p.c.localTime }

// SubsystemTime returns the subsystem's current virtual time as seen
// from this component's schedule: the virtual time of the component's
// current (possibly fused) scheduling step. It is always <= Time().
func (p *Proc) SubsystemTime() vtime.Time { return p.c.viewNow }

// Name returns the component's name.
func (p *Proc) Name() string { return p.c.name }

// Runlevel returns the component's current detail level. Behaviours
// consult it to choose between communication methods.
func (p *Proc) Runlevel() string { return p.c.runlevel }

// SetRunlevel imperatively switches this component's detail level, as
// Pia allows from statements in the source code. The current point in
// the behaviour is by definition a safe point for the caller.
func (p *Proc) SetRunlevel(level string) {
	p.c.runlevel = level
	p.c.noteRunlevel(level)
}

// Advance moves the component's local time forward by d without
// yielding the processor. Basic-block timing annotations compile to
// Advance calls: the simulator updates the component's version of
// virtual time whenever it encounters an embedded timing estimate.
func (p *Proc) Advance(d vtime.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("core: %s advanced time backwards (%v)", p.c.name, d))
	}
	p.c.localTime = p.c.localTime.Add(d)
}

// Delay advances local time by d and yields, letting components with
// earlier local times run. Equivalent to Advance followed by Yield.
func (p *Proc) Delay(d vtime.Duration) {
	p.Advance(d)
	p.Yield()
}

// DelayUntil advances local time to t — a no-op when t has already
// passed — and yields. Checkpointable process-style behaviours should
// pace themselves with DelayUntil against times derived from their
// saved state rather than with relative Delay calls: a component
// restored from a checkpoint re-enters Run from the top, and a
// relative delay taken before the capture would otherwise be charged
// again, shifting its timeline.
func (p *Proc) DelayUntil(t vtime.Time) {
	if t > p.c.localTime {
		p.Advance(t.Sub(p.c.localTime))
	}
	p.Yield()
}

// Yield releases the processor; the scheduler will resume this
// component when its local time is again the minimum. Yield is a safe
// point: pending checkpoint requests and runlevel switches for this
// component are applied while it is parked here.
func (p *Proc) Yield() {
	c := p.c
	// Fast skip: when the component's local time is still below its
	// fast bound it would immediately be re-picked by the scheduler
	// — the handoff is a no-op, provided no external request has
	// arrived since the bound was computed.
	if c.fastUntil != 0 && c.localTime < c.fastUntil && c.sub.extGen.Load() == c.fastGen {
		if c.localTime > c.viewNow {
			c.viewNow = c.localTime
		}
		return
	}
	c.status = statusRunnable
	tok := c.sub.yield(c)
	if tok.kill {
		panic(killPanic{c.name})
	}
}

// Sync blocks until subsystem time has caught up with the component's
// local time — the synchronization Pia requires before a component
// may observe shared state. On return every message with an earlier
// timestamp has been delivered or is already in this component's
// inbox.
func (p *Proc) Sync() { p.Yield() }

// Send drives value v onto the net attached to the named port,
// stamped with the component's current local time. Delivery to each
// listening port happens after the net's propagation delay. Send does
// not yield.
func (p *Proc) Send(port string, v any) {
	c := p.c
	pt := c.ports[port]
	if pt == nil {
		panic(fmt.Sprintf("core: %s has no port %q", c.name, port))
	}
	if pt.net == nil {
		panic(fmt.Sprintf("core: port %s.%s is not attached to a net", c.name, port))
	}
	c.emit(pt.net, c.localTime, v)
}

// SendAt is Send with an explicit future timestamp (>= local time).
// Protocol models use it to schedule the completion of a transfer
// without blocking.
func (p *Proc) SendAt(port string, v any, t vtime.Time) {
	if t < p.c.localTime {
		panic(fmt.Sprintf("core: %s SendAt into its own past (%v < %v)", p.c.name, t, p.c.localTime))
	}
	c := p.c
	pt := c.ports[port]
	if pt == nil {
		panic(fmt.Sprintf("core: %s has no port %q", c.name, port))
	}
	if pt.net == nil {
		panic(fmt.Sprintf("core: port %s.%s is not attached to a net", c.name, port))
	}
	c.emit(pt.net, t, v)
}

// Recv blocks until a message arrives on one of the named ports (any
// port when none are named). The component's local time advances to
// the delivery time, which is never earlier than it was. Recv returns
// ok=false when the simulation has ended (no component can ever send
// again) or the run was stopped.
func (p *Proc) Recv(ports ...string) (Msg, bool) {
	return p.recv(vtime.Infinity, ports)
}

// RecvDeadline is Recv bounded by an absolute virtual-time deadline.
// If no message arrives by then, it returns ok=false with local time
// advanced to the deadline (a poll that found nothing).
func (p *Proc) RecvDeadline(deadline vtime.Time, ports ...string) (Msg, bool) {
	return p.recv(deadline, ports)
}

func (p *Proc) recv(deadline vtime.Time, ports []string) (Msg, bool) {
	c := p.c
	if len(ports) > 0 {
		c.recvPorts = make(map[string]bool, len(ports))
		for _, name := range ports {
			if c.ports[name] == nil {
				panic(fmt.Sprintf("core: %s has no port %q", c.name, name))
			}
			c.recvPorts[name] = true
		}
	} else {
		c.recvPorts = nil
	}
	// Fast path: deliver (or time out) inline when the outcome is
	// already determined below the component's fast bound — the
	// step-at-a-time scheduler would have picked this component right
	// back, so the handoff can be skipped entirely.
	if c.fastUntil != 0 && c.sub.extGen.Load() == c.fastGen {
		if m, ok, done := c.recvInline(deadline); done {
			c.recvPorts = nil
			return m, ok
		}
	}
	c.recvDeadline = deadline
	c.status = statusRecv
	tok := c.sub.yield(c)
	c.recvPorts = nil
	c.recvDeadline = vtime.Infinity
	if tok.kill {
		panic(killPanic{c.name})
	}
	if !tok.ok || tok.msg == nil {
		return Msg{Time: c.localTime}, false
	}
	return *tok.msg, true
}

// Pending reports whether a message is already waiting for the
// component (subject to no port filter). It does not yield.
func (p *Proc) Pending() bool { return p.c.inbox.Len() > 0 }

// Checkpoint declares an explicit safe point and, if a checkpoint
// request is pending for this component, captures its image here.
func (p *Proc) Checkpoint() { p.Yield() }

// Memory returns the component's synchronous-memory model.
func (p *Proc) Memory() *Memory { return p.c.Memory() }

// SetInterruptHandler registers fn to handle messages arriving on the
// named port as interrupts. Pending interrupts are drained — the
// handler invoked inline on this component's goroutine — at every
// synchronization point: explicit DrainInterrupts calls and accesses
// to synchronous memory addresses. Registration happens inside Run,
// so it is naturally re-established when Run is re-entered after a
// rollback.
func (p *Proc) SetInterruptHandler(port string, fn func(*Proc, Msg)) {
	if p.c.ports[port] == nil {
		panic(fmt.Sprintf("core: %s has no port %q for interrupts", p.c.name, port))
	}
	p.c.irqPort = port
	p.c.irqFn = fn
}

// DrainInterrupts synchronizes with subsystem time and delivers every
// interrupt pending at or before the component's local time to the
// registered handler. It models the hardware rule that a processor
// takes pending interrupts before executing the next synchronized
// access.
func (p *Proc) DrainInterrupts() {
	c := p.c
	if c.irqFn == nil {
		return
	}
	p.Sync()
	for {
		m, ok := p.RecvDeadline(p.Time(), c.irqPort)
		if !ok {
			return
		}
		c.irqFn(p, m)
	}
}

// Logf records a trace line through the subsystem's tracer, tagged
// with the component name and local time. Behaviours call this on
// every step, so the arguments must not be formatted (or even boxed
// into the inner Sprintf) when no tracer is listening.
func (p *Proc) Logf(format string, args ...any) {
	if p.c.sub.Tracer == nil {
		return
	}
	p.c.tracef("%s@%v: %s", p.c.name, p.c.localTime, fmt.Sprintf(format, args...))
}

// recvInline mirrors the scheduler's key()/step() pair for a single
// component: if the receive's outcome (a delivery or a deadline
// expiry) falls strictly below the component's fast bound, it is
// applied inline and done=true is returned. Anything at or past the
// bound parks normally, because another component — or the scheduler
// itself (gates, checkpoints, horizon) — may act first.
func (c *Component) recvInline(deadline vtime.Time) (Msg, bool, bool) {
	e, have := c.nextDeliverable()
	key := vtime.Infinity
	if have {
		key = vtime.Max(e.Time, c.localTime)
	}
	if deadline < key {
		key = vtime.Max(deadline, c.localTime)
	}
	if key >= c.fastUntil {
		return Msg{}, false, false
	}
	if have && vtime.Max(e.Time, c.localTime) == key {
		e, _ = c.popDeliverable()
		msg := c.msgFromEvent(e)
		if b := c.wbuf; b != nil {
			b.delivs++
		} else {
			atomic.AddInt64(&c.sub.stats.Deliveries, 1)
		}
		c.viewNow = key
		return *msg, true, true
	}
	// Deadline expiry: a negative observation a straggler can
	// invalidate — recorded so the member never passes for inert.
	if b := c.wbuf; b != nil {
		b.expired = true
	}
	c.localTime = vtime.Max(c.localTime, deadline)
	c.viewNow = key
	return Msg{Time: c.localTime}, false, true
}

// msgFromEvent converts a delivered event into the Msg handed to Recv,
// advancing the component's local time to the delivery time.
func (c *Component) msgFromEvent(e event.Event) *Msg {
	deliver := vtime.Max(e.Time, c.localTime)
	c.localTime = deliver
	return &Msg{
		Time:   deliver,
		Sent:   e.Time,
		Port:   e.Port,
		Net:    e.Net,
		Value:  e.Value,
		Source: e.Source,
	}
}
