package core

// Safe-horizon parallel rounds.
//
// Pia's two-level virtual time (subsystem time <= the local time of
// every component) is a conservative-lookahead structure: a component
// whose next action is at key k cannot affect any other component
// before k + outLA, where outLA is the minimum propagation delay of
// the nets its ports attach to. The horizon
//
//	H = min over runnable components of key + outLA
//
// therefore bounds the earliest instant at which any pending action
// could influence another component. Every component whose next
// action is strictly below H can be executed independently: whatever
// it sends arrives at or after H, so no round member can observe
// another member's output within the round.
//
// The scheduler exploits this by dispatching all such components to a
// bounded worker pool at once. Each member runs on its own goroutine
// (the ordinary cooperative handshake, just driven by a worker) and
// may keep acting inline up to H via the fast paths in proc.go. Side
// effects — net drives, trace lines, runlevel notes — are accumulated
// in a per-member buffer, tagged with the virtual time of the fused
// step that produced them, and replayed on the scheduler goroutine in
// (time, component-index) order once the round completes. That is
// exactly the order in which the step-at-a-time scheduler would have
// emitted them, so virtual times, per-net drive counts and trace
// digests are bit-for-bit identical to a sequential run.
//
// The horizon is additionally capped by every gate bound, by the run
// horizon `until`, and by the next automatic checkpoint cut, so a
// round never spans a point where the sequential scheduler would have
// stopped to stall, depart or capture. External requests (stop,
// injections, rollbacks, checkpoint tags) invalidate the round's
// cached generation counter, which makes members fall back to a real
// park; the requests are absorbed at the next loop top, exactly as in
// sequential execution.

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/event"
	"repro/internal/vtime"
)

// planInfo is the result of one runnable-index scan: the sequential
// pick (best/key), the runner-up under the same (key, index) order
// (the inline fast-path bound), and the safe horizon.
type planInfo struct {
	best    *Component
	key     vtime.Time
	key2    vtime.Time
	idx2    int
	horizon vtime.Time
}

// opKind tags a buffered side effect.
type opKind uint8

const (
	opDrive opKind = iota
	opTrace
	opRunlevel
)

// parOp is one deferred side effect produced while a worker held a
// component's token. at is the virtual time of the fused step that
// produced it; the merge replays ops across all round members in
// (at, component-index) order.
type parOp struct {
	at   vtime.Time
	kind opKind
	net  *Net
	t    vtime.Time
	v    any
	str  string
}

// workerBuf collects one round member's deferred side effects, the
// round-local stat counts, and — for speculative members — the
// rollback journal and straggler bookkeeping (see optimistic.go).
type workerBuf struct {
	c   *Component
	ops []parOp

	// Buffered stats, folded in at merge time iff the member commits.
	steps  int64
	delivs int64

	// Speculative (past-horizon) dispatch state.
	spec    bool          // member runs past the safe horizon
	aborted bool          // straggler detected: discard, restore, replay
	inert   bool          // observed and emitted nothing: commits freely
	expired bool          // a RecvDeadline expired: a negative observation
	popped  []event.Event // inbox pops journaled for rollback re-push
	postKey vtime.Time    // member's parked key after the round
}

func (b *workerBuf) push(op parOp) { b.ops = append(b.ops, op) }

// opRef orders buffered ops across members without copying them.
type opRef struct {
	buf *workerBuf
	i   int
}

// parJob is one dispatched round member.
type parJob struct {
	c   *Component
	key vtime.Time
}

// prepareLookahead caches each component's output lookahead. Topology
// is fixed while running, so this runs once per Run. A component with
// no attached nets can never affect anyone: infinite lookahead.
func (s *Subsystem) prepareLookahead() {
	for _, c := range s.order {
		la := vtime.Duration(vtime.Infinity)
		for _, p := range c.ports {
			if p.net != nil && p.net.Delay < la {
				la = p.net.Delay
			}
		}
		c.outLA = la
	}
}

// scan sweeps the runnable index: it compacts components that can no
// longer act without outside input, finds the minimum-key component
// under the (key, creation-index) order — the sequential pick — plus
// the runner-up, and computes the safe horizon.
func (s *Subsystem) scan() planInfo {
	pi := planInfo{key: vtime.Infinity, key2: vtime.Infinity, horizon: vtime.Infinity}
	kept := s.active[:0]
	for _, c := range s.active {
		k := c.key()
		if k == vtime.Infinity {
			c.active = false
			continue
		}
		kept = append(kept, c)
		c.planKey = k
		if h := k.Add(c.outLA); h < pi.horizon {
			pi.horizon = h
		}
		if pi.best == nil {
			pi.best, pi.key = c, k
		} else if k < pi.key || (k == pi.key && c.index < pi.best.index) {
			// The old best is, by induction, still ahead of the old
			// runner-up in (key, index) order: demote it.
			pi.key2, pi.idx2 = pi.key, pi.best.index
			pi.best, pi.key = c, k
		} else if k < pi.key2 || (k == pi.key2 && c.index < pi.idx2) {
			pi.key2, pi.idx2 = k, c.index
		}
	}
	// Clear compacted tail slots so dropped components can be
	// collected.
	for i := len(kept); i < len(s.active); i++ {
		s.active[i] = nil
	}
	s.active = kept
	return pi
}

// startPool launches the round workers for one Run.
func (s *Subsystem) startPool() {
	s.workCh = make(chan parJob, len(s.order)+1)
	for i := 0; i < s.workers; i++ {
		s.poolWG.Add(1)
		go func() {
			defer s.poolWG.Done()
			for job := range s.workCh {
				s.stepTimed(job.c, job.key)
				s.roundWG.Done()
			}
		}()
	}
}

// stopPool drains and joins the round workers.
func (s *Subsystem) stopPool() {
	close(s.workCh)
	s.poolWG.Wait()
	s.workCh = nil
}

// runParallelRound dispatches every component whose next action lies
// strictly inside the safe horizon to the worker pool and merges the
// buffered effects. Returns false — leaving the sequential path to
// execute the step — when the round would hold fewer than two
// components.
func (s *Subsystem) runParallelRound(pi planInfo, until vtime.Time) bool {
	if s.optimism == 0 && pi.horizon <= pi.key {
		return false
	}
	// Cap the round at every point where the step-at-a-time scheduler
	// would have paused: gate bounds (advancing to exactly Bound() is
	// allowed), the run horizon, the next automatic checkpoint cut.
	// The cap applies equally to the safe horizon and the speculation
	// bound: a speculation may be wrong about its peers, never about
	// an external synchronization point.
	roundCap := vtime.Infinity
	for _, g := range s.gates {
		if gb := g.Bound().Add(1); gb < roundCap {
			roundCap = gb
		}
	}
	if until != vtime.Infinity {
		if u := until.Add(1); u < roundCap {
			roundCap = u
		}
	}
	if s.autoCkpt > 0 {
		if t := s.lastAuto.Add(s.autoCkpt); t < roundCap {
			roundCap = t
		}
	}
	H := pi.horizon
	if roundCap < H {
		H = roundCap
	}

	members := s.members[:0]
	for _, c := range s.active {
		if c.planKey < H {
			members = append(members, c)
		}
	}
	safe := len(members)

	// Optimistic extension (see optimistic.go): when the safe cohort
	// would leave workers idle, dispatch checkpointable components
	// speculatively up to B = H + W. Their effects are buffered like
	// everyone else's; the merge detects stragglers and rolls the
	// affected members back to the image captured here.
	spec := 0
	B := H
	if W := s.optimismWindow(); W > 0 && safe < s.poolSize() && H < roundCap {
		B = H.Add(W)
		if roundCap < B {
			B = roundCap
		}
		if B > H {
			for _, c := range s.active {
				if c.planKey >= H && c.planKey < B && s.captureSpec(c) {
					members = append(members, c)
					spec++
				}
			}
		}
	}
	s.members = members
	if len(members) < 2 || (spec == 0 && H <= pi.key) {
		return false
	}
	// Canonical member order: the order the sequential scheduler
	// would first reach each member's pending action.
	sort.Slice(members, func(i, j int) bool {
		if members[i].planKey != members[j].planKey {
			return members[i].planKey < members[j].planKey
		}
		return members[i].index < members[j].index
	})
	gen := s.extGen.Load()
	for _, c := range members {
		c.wbuf = s.grabBuf(c)
		// The sequential clock would read the member's own key at its
		// step (keys are processed in ascending order).
		c.viewNow = c.planKey
		c.fastUntil = H
		if c.planKey >= H {
			// Speculative member: free to act up to the optimism
			// bound. Safe members stay pinned below H — they carry no
			// image and must never need one.
			c.wbuf.spec = true
			c.fastUntil = B
		}
		c.fastGen = gen
	}
	atomic.AddInt64(&s.stats.ParRounds, 1)
	if spec > 0 {
		atomic.AddInt64(&s.stats.SpecRounds, 1)
		atomic.AddInt64(&s.stats.SpecMembers, int64(spec))
	}
	s.roundWG.Add(len(members))
	if s.sharedPool != nil {
		// The shared pool copies the jobs into its own queue: members
		// aliases the s.members scratch slice, which the next round
		// reuses.
		s.sharedPool.submit(s, members)
	} else {
		for _, c := range members {
			s.workCh <- parJob{c: c, key: c.planKey}
		}
	}
	s.roundWG.Wait()
	s.mergeRound(members, spec)
	return true
}

// mergeRound replays the round's buffered side effects on the
// scheduler goroutine in canonical order and advances the subsystem
// clock to the last action the round executed. With speculative
// members in the round, detection runs first: straggler-hit members
// are marked aborted, their buffered effects are skipped entirely,
// and they are rolled back to their pre-round images after the
// surviving effects have been applied (so committed deliveries land
// in the restored inboxes).
func (s *Subsystem) mergeRound(members []*Component, spec int) {
	aborted := 0
	if spec > 0 {
		aborted = s.detectStragglers(members)
	}
	refs := s.mergeRefs[:0]
	for _, c := range members {
		buf := c.wbuf
		if buf.aborted {
			continue
		}
		for i := range buf.ops {
			refs = append(refs, opRef{buf: buf, i: i})
		}
	}
	// Stable: ops of one member are already in program order and
	// share an index, so equal (at, index) pairs keep their order.
	sort.SliceStable(refs, func(i, j int) bool {
		oa, ob := &refs[i].buf.ops[refs[i].i], &refs[j].buf.ops[refs[j].i]
		if oa.at != ob.at {
			return oa.at < ob.at
		}
		return refs[i].buf.c.index < refs[j].buf.c.index
	})
	for _, r := range refs {
		op := &r.buf.ops[r.i]
		switch op.kind {
		case opDrive:
			s.driveFrom(op.net, nil, r.buf.c.name, op.t, op.v, false)
		case opTrace:
			if s.Tracer != nil {
				s.Tracer(op.str)
			}
		case opRunlevel:
			s.noteRunlevel(r.buf.c, op.str)
		}
	}
	s.mergeRefs = refs[:0]

	maxView := s.now
	var failed *Component
	commits := 0
	for _, c := range members {
		b := c.wbuf
		if b.aborted {
			s.rollbackSpec(c)
		} else {
			if c.viewNow > maxView {
				maxView = c.viewNow
			}
			if b.steps != 0 {
				atomic.AddInt64(&s.stats.Steps, b.steps)
			}
			if b.delivs != 0 {
				atomic.AddInt64(&s.stats.Deliveries, b.delivs)
			}
			if b.spec {
				commits++
			}
			if failed == nil && c.err != nil && c.status == statusDone {
				failed = c
			}
		}
		s.activate(c)
		s.releaseBuf(b)
		c.wbuf = nil
	}
	if spec > 0 {
		if commits > 0 {
			atomic.AddInt64(&s.stats.SpecCommits, int64(commits))
		}
		s.noteSpecOutcome(spec, aborted)
	}
	// Catch the subsystem clock (and idle local times) up to the last
	// action executed, as the step-at-a-time scheduler would have
	// after stepping every member. Rolled-back members do not count:
	// their replay happens strictly after every committed action — the
	// GVT rule (see detectStragglers) guarantees maxView over
	// committed members never overtakes a restored member's earliest
	// replay action or pending delivery.
	if maxView > s.now {
		s.now = maxView
		for _, c := range s.order {
			if c.status == statusRecv && c.localTime < s.now {
				c.localTime = s.now
			}
		}
	}
	if failed != nil && s.fatal == nil {
		s.fatal = fmt.Errorf("core: component %s failed: %w", failed.name, failed.err)
	}
}

// grabBuf takes a recycled worker buffer or makes one.
func (s *Subsystem) grabBuf(c *Component) *workerBuf {
	if n := len(s.bufFree); n > 0 {
		b := s.bufFree[n-1]
		s.bufFree = s.bufFree[:n-1]
		b.c = c
		return b
	}
	return &workerBuf{c: c}
}

// releaseBuf recycles a worker buffer, dropping payload references.
func (s *Subsystem) releaseBuf(b *workerBuf) {
	for i := range b.ops {
		b.ops[i] = parOp{}
	}
	b.ops = b.ops[:0]
	for i := range b.popped {
		b.popped[i] = event.Event{}
	}
	b.popped = b.popped[:0]
	b.steps, b.delivs = 0, 0
	b.spec, b.aborted, b.inert, b.expired = false, false, false, false
	b.postKey = 0
	b.c = nil
	s.bufFree = append(s.bufFree, b)
}
